package powermove

import (
	"context"
	"fmt"
	"testing"

	"powermove/internal/circuit"
	"powermove/internal/pipeline"
)

// incrementalBenchCircuit builds the 40-block editing workload of the
// incremental-compilation benchmark: a deterministic 24-qubit circuit
// whose last block carries a variant tag, modeling an interactive user
// recompiling after editing the tail of a program. variant < 0 is the
// pristine seed; every variant >= 0 mutates only the final block.
func incrementalBenchCircuit(variant int) *circuit.Circuit {
	const n, blocks = 24, 40
	c := circuit.New("incr-bench", n)
	for i := 0; i < blocks; i++ {
		a := (3 * i) % (n - 3)
		oneQ := i % 4
		if i == blocks-1 && variant >= 0 {
			oneQ = 4 + variant%7 // tail edit: only the last block differs
		}
		c.AddBlock(oneQ, circuit.NewCZ(a, a+1), circuit.NewCZ(a+2, a+3))
	}
	return c
}

// BenchmarkIncrementalRecompile measures the tail-edit recompile loop:
// compile a 40-block circuit, mutate its last block, recompile. The
// cold sub-bench recompiles from scratch every time; the incremental
// sub-bench shares a snapshot store seeded with the pristine compile,
// so every iteration resumes from the 39-block shared prefix and lowers
// one block. The ratio of the two ns/op figures is the incremental
// speedup (the PR pins >= 2x); the outputs are byte-identical, which
// TestIncrementalPrefixReuse and the fuzz harness's
// mutate-and-recompile mode hold the implementation to.
func BenchmarkIncrementalRecompile(b *testing.B) {
	ctx := context.Background()
	jobFor := func(bench string, variant, aods int) pipeline.Job {
		circ := incrementalBenchCircuit(variant)
		return pipeline.NewJob(bench, pipeline.WithStorage, aods,
			func() (*circuit.Circuit, error) { return circ, nil })
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			job := jobFor(fmt.Sprintf("incr-cold-%d", i), i, 1)
			results, _, err := pipeline.Run(ctx, []pipeline.Job{job},
				pipeline.Options{Workers: 1, Cache: pipeline.NewCache()})
			if err != nil || results[0].Err != nil {
				b.Fatal(err, results[0].Err)
			}
		}
	})

	b.Run("incremental", func(b *testing.B) {
		snaps := pipeline.NewSnapshotStore(0)
		seed := jobFor("incr-seed", -1, 1)
		if results, _, err := pipeline.Run(ctx, []pipeline.Job{seed},
			pipeline.Options{Workers: 1, Cache: pipeline.NewCache(), Snapshots: snaps}); err != nil || results[0].Err != nil {
			b.Fatal(err, results[0].Err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A distinct bench name per iteration defeats the outcome
			// cache (the point is to measure recompilation), while the
			// snapshot store matches on content, not name.
			job := jobFor(fmt.Sprintf("incr-%d", i), i, 1)
			results, _, err := pipeline.Run(ctx, []pipeline.Job{job},
				pipeline.Options{Workers: 1, Cache: pipeline.NewCache(), Snapshots: snaps})
			if err != nil || results[0].Err != nil {
				b.Fatal(err, results[0].Err)
			}
		}
		b.StopTimer()
		st := snaps.Stats()
		if st.PrefixHits < int64(b.N) {
			b.Fatalf("only %d of %d iterations resumed from the prefix", st.PrefixHits, b.N)
		}
	})
}
