// Benchmark harness: one bench per table and figure of the paper's
// evaluation (Sec. 7), plus ablation benches for the compiler's design
// choices (see docs/ARCHITECTURE.md) and micro-benchmarks of the
// pipeline's hot paths.
//
// Quality metrics (fidelity, execution time, group counts) are attached to
// each bench via b.ReportMetric, so `go test -bench=.` regenerates both
// the performance and the quality side of every experiment:
//
//	go test -bench 'BenchmarkTable3' -benchmem     # Table 3
//	go test -bench 'BenchmarkFigure6' -benchmem    # Fig. 6 panels
//	go test -bench 'BenchmarkFigure7' -benchmem    # Fig. 7 sweep
//	go test -bench 'BenchmarkAblation' -benchmem   # ablations
//	go test -bench 'BenchmarkPipeline' -benchmem   # batch-engine scaling
package powermove

import (
	"context"
	"fmt"
	"testing"

	"powermove/internal/core"
	"powermove/internal/enola"
	"powermove/internal/experiments"
	"powermove/internal/graphutil"
	"powermove/internal/move"
	"powermove/internal/sim"
	"powermove/internal/workload"

	"math/rand"
)

// BenchmarkTable2 measures benchmark-circuit generation and architecture
// construction for every row of Table 2 (experiment E2).
func BenchmarkTable2(b *testing.B) {
	specs := experiments.Table2Specs()
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			if _, err := spec.Circuit(); err != nil {
				b.Fatal(err)
			}
			_ = spec.Arch(1)
		}
	}
}

// BenchmarkTable3 runs the full three-way comparison (Enola baseline,
// PowerMove non-storage, PowerMove with-storage) for every row of Table 3
// (experiment E3). Each sub-bench reports the three fidelities and
// execution times of its row as custom metrics.
func BenchmarkTable3(b *testing.B) {
	for _, spec := range experiments.Table2Specs() {
		spec := spec
		b.Run(spec.String(), func(b *testing.B) {
			var row *experiments.RowResult
			var err error
			for i := 0; i < b.N; i++ {
				row, err = experiments.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.Enola.Fidelity, "fid-enola")
			b.ReportMetric(row.NonStorage.Fidelity, "fid-nostore")
			b.ReportMetric(row.WithStorage.Fidelity, "fid-storage")
			b.ReportMetric(row.Enola.Texe, "texe-enola-us")
			b.ReportMetric(row.NonStorage.Texe, "texe-nostore-us")
			b.ReportMetric(row.WithStorage.Texe, "texe-storage-us")
			b.ReportMetric(row.TcompImprovement(), "tcomp-improv-x")
		})
	}
}

// BenchmarkFigure6 sweeps each Fig. 6 panel (experiments E4-E8) and
// reports the per-component fidelity factors of the with-storage pipeline
// at the largest size of the panel.
func BenchmarkFigure6(b *testing.B) {
	for _, fam := range experiments.Figure6Families() {
		fam := fam
		b.Run(string(fam), func(b *testing.B) {
			var points []experiments.Figure6Point
			var err error
			for i := 0; i < b.N; i++ {
				points, err = experiments.Figure6(fam)
				if err != nil {
					b.Fatal(err)
				}
			}
			last := points[len(points)-1].Row.WithStorage.Components
			b.ReportMetric(last.TwoQubit, "comp-2q")
			b.ReportMetric(last.Excitation, "comp-exc")
			b.ReportMetric(last.Transfer, "comp-trans")
			b.ReportMetric(last.Decoherence, "comp-deco")
		})
	}
}

// BenchmarkFigure7 sweeps AOD counts 1..4 over the five Fig. 7 benchmarks
// (experiment E9) and reports the 1-AOD/4-AOD execution-time ratio.
func BenchmarkFigure7(b *testing.B) {
	var points []experiments.Figure7Point
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.Figure7()
		if err != nil {
			b.Fatal(err)
		}
	}
	// points arrive grouped per spec, AODs ascending 1..4.
	var speedup float64
	count := 0
	for i := 0; i+3 < len(points); i += 4 {
		speedup += points[i].Result.Texe / points[i+3].Result.Texe
		count++
	}
	b.ReportMetric(speedup/float64(count), "mean-4aod-speedup-x")
}

// BenchmarkPipeline runs the full Table-3 suite (69 compile-and-simulate
// jobs) through the batch engine at several worker counts, with a fresh
// cache per iteration so every job compiles. On a multi-core host the
// jobs/8 sub-bench completes the suite at least ~2x faster than jobs/1;
// on a single-core host the worker counts tie.
func BenchmarkPipeline(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, _, err := CompileBatch(context.Background(),
					experiments.Table3Jobs(), BatchOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if err := BatchFirstError(results); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineCached measures a warm-cache pass over the Table-3
// suite: the engine's bookkeeping floor when every job is a cache hit.
func BenchmarkPipelineCached(b *testing.B) {
	cache := NewBatchCache()
	opts := BatchOptions{Workers: 8, Cache: cache}
	if _, _, err := CompileBatch(context.Background(), experiments.Table3Jobs(), opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, stats, err := CompileBatch(context.Background(), experiments.Table3Jobs(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := BatchFirstError(results); err != nil {
			b.Fatal(err)
		}
		if stats.Compiles != 0 {
			b.Fatalf("warm pass compiled %d jobs", stats.Compiles)
		}
	}
}

// benchAblation compiles QAOA-regular3-60 under two option sets and
// reports both executions' times, making the ablation's effect visible in
// the bench output.
func benchAblation(b *testing.B, baseline, variant Options, metric string) {
	b.Helper()
	circ := workload.QAOARegular(60, 3, 4)
	hw := DefaultArch(60, 1)
	var with, without float64
	for i := 0; i < b.N; i++ {
		r1, err := CompileAndRun(circ, hw, baseline)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := CompileAndRun(circ, hw, variant)
		if err != nil {
			b.Fatal(err)
		}
		with, without = r1.Execution.Time, r2.Execution.Time
	}
	b.ReportMetric(with, metric+"-on-us")
	b.ReportMetric(without, metric+"-off-us")
}

// BenchmarkAblationGrouping compares the displacement-bucketed Coll-Move
// grouping against the paper's ascending-distance first-fit.
func BenchmarkAblationGrouping(b *testing.B) {
	benchAblation(b,
		Options{UseStorage: true},
		Options{UseStorage: true, Grouping: core.GroupingDistance},
		"texe-merged-vs-distance")
}

// BenchmarkAblationStageOrder compares the zone-aware stage ordering of
// Sec. 4.2 against partition order.
func BenchmarkAblationStageOrder(b *testing.B) {
	benchAblation(b,
		Options{UseStorage: true},
		Options{UseStorage: true, DisableStageOrder: true},
		"texe-ordered-vs-unordered")
}

// BenchmarkAblationIntraStage compares the move-ins-first Coll-Move
// ordering of Sec. 6.1 against grouping order, reporting decoherence.
// QAOA stages interchange many qubits per transition, so the ordering's
// storage-dwell effect is visible there (it vanishes on benchmarks that
// move only a couple of qubits per stage, such as BV).
func BenchmarkAblationIntraStage(b *testing.B) {
	circ := workload.QAOARegular(60, 3, 4)
	hw := DefaultArch(60, 1)
	var on, off float64
	for i := 0; i < b.N; i++ {
		r1, err := CompileAndRun(circ, hw, Options{UseStorage: true})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := CompileAndRun(circ, hw, Options{UseStorage: true, DisableIntraStageOrder: true})
		if err != nil {
			b.Fatal(err)
		}
		on = r1.Execution.Components.Decoherence
		off = r2.Execution.Components.Decoherence
	}
	b.ReportMetric(on, "deco-ordered")
	b.ReportMetric(off, "deco-unordered")
}

// BenchmarkAblationMoverChoice compares the deterministic lower-index
// mover convention against the paper's random choice (Sec. 5.2 case 4).
func BenchmarkAblationMoverChoice(b *testing.B) {
	benchAblation(b,
		Options{UseStorage: true},
		Options{UseStorage: true, RandomMover: true, Seed: 1},
		"texe-deterministic-vs-random")
}

// BenchmarkCompilePowerMove measures the with-storage pipeline's
// compilation throughput on the largest Table-2 instance.
func BenchmarkCompilePowerMove(b *testing.B) {
	circ := workload.QAOARegular(100, 3, 9)
	hw := DefaultArch(100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(circ, hw, Options{UseStorage: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileEnola measures the baseline's compilation on the same
// instance; the Tcomp column of Table 3 is the ratio of these two benches.
func BenchmarkCompileEnola(b *testing.B) {
	circ := workload.QAOARegular(100, 3, 9)
	hw := DefaultArch(100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enola.Compile(circ, hw, enola.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecute measures the instruction-level executor.
func BenchmarkExecute(b *testing.B) {
	circ := workload.QAOARegular(100, 3, 9)
	hw := DefaultArch(100, 1)
	res, err := Compile(circ, hw, Options{UseStorage: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Execute(res.Program, res.Initial); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEdgeColoring measures the Misra-Gries stage-partition substrate
// on a 3-regular interaction graph of 100 qubits.
func BenchmarkEdgeColoring(b *testing.B) {
	g := graphutil.RandomRegular(100, 3, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if col := g.EdgeColoring(); len(col) != g.EdgeCount() {
			b.Fatal("incomplete coloring")
		}
	}
}

// BenchmarkGrouping measures the default Coll-Move grouping on a large
// random movement set.
func BenchmarkGrouping(b *testing.B) {
	hw := DefaultArch(100, 1)
	rng := rand.New(rand.NewSource(2))
	sites := hw.Sites(0) // compute zone
	var moves []move.Move
	for q := 0; q < 100; q++ {
		moves = append(moves, move.New(hw, q, sites[rng.Intn(len(sites))], sites[rng.Intn(len(sites))]))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		move.Group(moves)
	}
}

// BenchmarkAblationAlpha sweeps the stage-ordering weight of Sec. 4.2
// (alpha < 1 prefers moving qubits into storage over pulling them out)
// on a deep QAOA instance, reporting execution time per setting.
func BenchmarkAblationAlpha(b *testing.B) {
	circ := workload.QAOARegularP(40, 3, 3, 6)
	hw := DefaultArch(40, 1)
	for _, alpha := range []float64{0.25, 0.5, 0.75} {
		alpha := alpha
		b.Run(fmt.Sprintf("alpha=%.2f", alpha), func(b *testing.B) {
			var texe float64
			for i := 0; i < b.N; i++ {
				run, err := CompileAndRun(circ, hw, Options{UseStorage: true, Alpha: alpha})
				if err != nil {
					b.Fatal(err)
				}
				texe = run.Execution.Time
			}
			b.ReportMetric(texe, "texe-us")
		})
	}
}

// BenchmarkAblationFusion measures the optional block-fusion pre-pass on
// QSim in non-storage mode, the regime it targets: independent Pauli
// strings share Rydberg pulses after fusion, cutting the excitation
// exposure of idle computation-zone qubits.
func BenchmarkAblationFusion(b *testing.B) {
	circ := workload.QSim(20, 9)
	hw := DefaultArch(20, 1)
	var on, off float64
	var stagesOn, stagesOff int
	for i := 0; i < b.N; i++ {
		r1, err := CompileAndRun(circ, hw, Options{FuseBlocks: true})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := CompileAndRun(circ, hw, Options{})
		if err != nil {
			b.Fatal(err)
		}
		on, off = r1.Execution.Fidelity, r2.Execution.Fidelity
		stagesOn, stagesOff = r1.Execution.Stages, r2.Execution.Stages
	}
	b.ReportMetric(on, "fid-fused")
	b.ReportMetric(off, "fid-unfused")
	b.ReportMetric(float64(stagesOn), "stages-fused")
	b.ReportMetric(float64(stagesOff), "stages-unfused")
}

// calibrationSink defeats dead-code elimination of the calibration loop.
var calibrationSink uint64

// BenchmarkCalibration performs a fixed amount of pure-CPU work that no
// repository code influences: the machine-speed reference benchgate uses
// to normalize ns/op before gating a PR document against a baseline
// produced on different hardware. Keep it free of allocation, memory
// traffic, and any call into the compiler, or a code change could move
// the denominator and mask real regressions.
func BenchmarkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		x := uint64(88172645463325252)
		for j := 0; j < 150_000_000; j++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		calibrationSink = x
	}
}
