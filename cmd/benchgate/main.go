// Command benchgate turns `go test -bench` output into the repository's
// benchmark-trajectory JSON (BENCH_*.json) and gates CI on performance
// regressions against a checked-in baseline.
//
// Parse benchmark output into JSON:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchgate -parse -out BENCH_pr.json
//
// Compare a PR's numbers against the baseline, failing (exit 1) when any
// benchmark's ns/op regressed by more than the threshold:
//
//	benchgate -compare -baseline BENCH_baseline.json -current BENCH_pr.json -threshold 25
//
// Merge several parsed documents into a noise-robust baseline, keeping
// each benchmark's fastest observation (single-iteration timings have a
// heavy right tail; the minimum is the stable statistic):
//
//	benchgate -min -out BENCH_baseline.json run1.json run2.json run3.json
//
// Comparisons are machine-speed normalized: when both documents contain
// the code-independent calibration bench (BenchmarkCalibration in this
// repository's suite, a fixed pure-CPU loop), current ns/op are divided
// by the hosts' calibration ratio before gating, so a baseline recorded
// on one machine gates runs from another.
//
// Benchmarks below -min-ns in the baseline (default 10ms) are reported
// but never gated: measured across repeated runs, single-iteration
// timings under ~10ms swing 30-50% run to run on a shared machine —
// beyond the gate's threshold — while the 10ms+ end-to-end benches
// (full table/figure suites, the pipeline scaling benches) hold within
// a few percent.
// Benchmarks present on only one side are reported but never fail the
// gate, so adding or retiring a bench doesn't require touching the
// baseline in the same commit. The GOMAXPROCS suffix (`-8`) is stripped
// from names so documents compare across machines with different core
// counts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Doc is one BENCH_*.json document: every benchmark of one run.
type Doc struct {
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one benchmark's measurements: its wall-clock cost plus every
// custom quality metric attached via b.ReportMetric (fidelities,
// execution times, speedup ratios — the experiment side of the bench).
type Bench struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		parse     = flag.Bool("parse", false, "parse `go test -bench` output on stdin (or -in) into JSON")
		in        = flag.String("in", "", "with -parse: read benchmark output from this file instead of stdin")
		out       = flag.String("out", "", "with -parse: write JSON here instead of stdout")
		compare   = flag.Bool("compare", false, "compare -current against -baseline and gate on ns/op regressions")
		min       = flag.Bool("min", false, "merge the document args into one, keeping each bench's fastest ns/op")
		baseline  = flag.String("baseline", "BENCH_baseline.json", "with -compare: baseline document")
		current   = flag.String("current", "BENCH_pr.json", "with -compare: document under test")
		threshold = flag.Float64("threshold", 25, "with -compare: fail when ns/op regresses by more than this percentage")
		minNs     = flag.Float64("min-ns", 1e7, "with -compare: skip benchmarks whose baseline ns/op is below this (single-iteration noise)")
		calibrate = flag.String("calibrate", "BenchmarkCalibration", "with -compare: normalize ns/op by this code-independent reference bench before gating (empty disables)")
	)
	flag.Parse()

	modes := 0
	for _, m := range []bool{*parse, *compare, *min} {
		if m {
			modes++
		}
	}
	switch {
	case modes != 1:
		fail(fmt.Errorf("specify exactly one of -parse, -compare, and -min"))
	case *parse:
		if err := runParse(*in, *out); err != nil {
			fail(err)
		}
	case *compare:
		ok, err := runCompare(*baseline, *current, *threshold, *minNs, *calibrate)
		if err != nil {
			fail(err)
		}
		if !ok {
			os.Exit(1)
		}
	case *min:
		if err := runMin(flag.Args(), *out); err != nil {
			fail(err)
		}
	}
}

// cpuSuffix is the trailing GOMAXPROCS marker go test appends to
// benchmark names ("BenchmarkFoo-8"). It cannot be stripped per line:
// benchmark names here legitimately end in numbers ("Table3/BV-14"),
// and at GOMAXPROCS=1 go test appends no marker at all. stripCPUSuffix
// removes it only when every name of a run carries the same trailing
// number — the one thing a uniform suffix can be.
var cpuSuffix = regexp.MustCompile(`-(\d+)$`)

// stripCPUSuffix normalizes names in place so documents compare across
// machines with different core counts.
func stripCPUSuffix(benchmarks []Bench) {
	if len(benchmarks) == 0 {
		return
	}
	shared := ""
	for i, b := range benchmarks {
		m := cpuSuffix.FindStringSubmatch(b.Name)
		if m == nil {
			return // some name has no trailing number: no uniform marker
		}
		if i == 0 {
			shared = m[1]
		} else if m[1] != shared {
			return // trailing numbers differ: they are bench data, not a marker
		}
	}
	for i := range benchmarks {
		benchmarks[i].Name = strings.TrimSuffix(benchmarks[i].Name, "-"+shared)
	}
}

// runParse converts benchmark output to a sorted JSON document.
func runParse(in, out string) error {
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	doc, err := parseBenchOutput(r)
	if err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// parseBenchOutput extracts every "Benchmark... N <value unit>..." line.
// go test emits measurements as (value, unit) pairs after the iteration
// count; ns/op is the gate metric, everything else (including
// ReportMetric's custom units) lands in Metrics.
func parseBenchOutput(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // e.g. a "Benchmarking..." log line, not a result
		}
		b := Bench{Name: fields[0]}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", b.Name, fields[i])
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				b.NsPerOp = val
				continue
			}
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	stripCPUSuffix(doc.Benchmarks)
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	return doc, nil
}

// runMin merges parsed documents, keeping for each benchmark the entry
// with the fastest ns/op (its quality metrics ride along; they are
// deterministic, so any run's copy is the same).
func runMin(paths []string, out string) error {
	if len(paths) < 2 {
		return fmt.Errorf("-min needs at least two documents, got %d", len(paths))
	}
	best := make(map[string]Bench)
	var order []string
	for _, path := range paths {
		doc, err := readDoc(path)
		if err != nil {
			return err
		}
		for _, b := range doc.Benchmarks {
			prev, seen := best[b.Name]
			if !seen {
				order = append(order, b.Name)
			}
			if !seen || b.NsPerOp < prev.NsPerOp {
				best[b.Name] = b
			}
		}
	}
	sort.Strings(order)
	merged := &Doc{Benchmarks: make([]Bench, 0, len(order))}
	for _, name := range order {
		merged.Benchmarks = append(merged.Benchmarks, best[name])
	}
	enc, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// runCompare prints a per-benchmark verdict and reports whether the gate
// passed. When both documents carry the calibration bench, every
// current-side ns/op is divided by the machines' calibration ratio
// first, so a uniformly slower (or faster) host doesn't read as a
// regression (or mask one); the calibration bench itself is never
// gated — it is the denominator.
func runCompare(baselinePath, currentPath string, thresholdPct, minNs float64, calibrate string) (bool, error) {
	base, err := readDoc(baselinePath)
	if err != nil {
		return false, err
	}
	cur, err := readDoc(currentPath)
	if err != nil {
		return false, err
	}
	baseByName := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseByName[b.Name] = b
	}

	scale := 1.0
	if calibrate != "" {
		var curCal float64
		for _, c := range cur.Benchmarks {
			if c.Name == calibrate {
				curCal = c.NsPerOp
			}
		}
		baseCal := baseByName[calibrate].NsPerOp
		if curCal > 0 && baseCal > 0 {
			scale = curCal / baseCal
			fmt.Printf("calibration: %s %0.f -> %.0f ns/op; normalizing by %.3fx\n\n",
				calibrate, baseCal, curCal, scale)
		} else {
			fmt.Printf("calibration: %s missing from %s; comparing raw ns/op\n\n",
				calibrate, map[bool]string{true: baselinePath, false: currentPath}[baseCal == 0])
		}
	}

	limit := 1 + thresholdPct/100
	var regressions, skipped, fresh int
	// Benchstat-style geomeans of normalized new/old ratios, kept
	// separately for the gated benches (above the noise floor — the
	// trustworthy headline) and the full suite (informational; sub-floor
	// micro-benches jitter far more than they drift).
	var gatedLogSum, allLogSum float64
	var gatedCount, allCount int
	for _, c := range cur.Benchmarks {
		b, ok := baseByName[c.Name]
		delete(baseByName, c.Name)
		norm := c.NsPerOp / scale
		if ok && c.Name != calibrate && b.NsPerOp > 0 && norm > 0 {
			allLogSum += math.Log(norm / b.NsPerOp)
			allCount++
			if b.NsPerOp >= minNs {
				gatedLogSum += math.Log(norm / b.NsPerOp)
				gatedCount++
			}
		}
		switch {
		case !ok:
			fresh++
			fmt.Printf("  new      %-60s %12.0f ns/op (no baseline)\n", c.Name, c.NsPerOp)
		case c.Name == calibrate || b.NsPerOp < minNs:
			skipped++
		case norm > b.NsPerOp*limit:
			regressions++
			fmt.Printf("REGRESSED  %-60s %12.0f -> %.0f ns/op normalized (%+.1f%%, limit +%.0f%%)\n",
				c.Name, b.NsPerOp, norm, 100*(norm/b.NsPerOp-1), thresholdPct)
		default:
			fmt.Printf("  ok       %-60s %12.0f -> %.0f ns/op normalized (%+.1f%%)\n",
				c.Name, b.NsPerOp, norm, 100*(norm/b.NsPerOp-1))
		}
	}
	for name := range baseByName {
		fmt.Printf("  gone     %-60s (in baseline only)\n", name)
	}
	fmt.Printf("\nbenchgate: %d compared, %d regressed, %d below %.0fns floor, %d new, %d gone\n",
		len(cur.Benchmarks)-fresh, regressions, skipped, minNs, fresh, len(baseByName))
	if gatedCount > 0 {
		// The geomean of per-bench ratios is benchstat's summary
		// statistic: < 1.00x means the suite got faster overall. The
		// headline covers only gated benches; sub-floor ones are noise
		// by the gate's own standard.
		fmt.Printf("benchgate: geomean %.3fx over %d gated benches (new/old, normalized; <1 is faster)\n",
			math.Exp(gatedLogSum/float64(gatedCount)), gatedCount)
	}
	if allCount > gatedCount {
		fmt.Printf("benchgate: geomean %.3fx over all %d benches (includes sub-floor noise)\n",
			math.Exp(allLogSum/float64(allCount)), allCount)
	}
	if regressions > 0 {
		fmt.Printf("benchgate: FAIL — ns/op regression beyond +%.0f%% against %s\n", thresholdPct, baselinePath)
		return false, nil
	}
	fmt.Println("benchgate: PASS")
	return true, nil
}

func readDoc(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
