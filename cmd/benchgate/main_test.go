package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: powermove
cpu: Shared KVM processor
BenchmarkTable2-8             	       1	   1514644 ns/op
BenchmarkTable3/BV-14-8       	       1	   5167157 ns/op	         0.7795 fid-enola	         0.9445 fid-storage
BenchmarkEdgeColoring-8       	       1	     93145 ns/op
PASS
ok  	powermove	24.5s
`

func TestParseBenchOutput(t *testing.T) {
	doc, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	// Sorted by name, the uniform GOMAXPROCS suffix stripped.
	if doc.Benchmarks[0].Name != "BenchmarkEdgeColoring" {
		t.Errorf("first bench = %q", doc.Benchmarks[0].Name)
	}
	var table3 *Bench
	for i := range doc.Benchmarks {
		if doc.Benchmarks[i].Name == "BenchmarkTable3/BV-14" {
			table3 = &doc.Benchmarks[i]
		}
	}
	if table3 == nil {
		t.Fatalf("BenchmarkTable3/BV-14 missing from %+v", doc.Benchmarks)
	}
	if table3.NsPerOp != 5167157 {
		t.Errorf("ns/op = %v", table3.NsPerOp)
	}
	if table3.Metrics["fid-enola"] != 0.7795 || table3.Metrics["fid-storage"] != 0.9445 {
		t.Errorf("metrics = %v", table3.Metrics)
	}
}

// TestParseNoCPUSuffix covers GOMAXPROCS=1 output, where go test appends
// no marker: names that naturally end in numbers (qubit counts) must
// survive intact, so single-core and multi-core documents share names.
func TestParseNoCPUSuffix(t *testing.T) {
	const singleCore = `BenchmarkTable2 	       1	   1514644 ns/op
BenchmarkTable3/BV-14 	       1	   5167157 ns/op
BenchmarkTable3/QFT-18 	       1	   9000000 ns/op
`
	doc, err := parseBenchOutput(strings.NewReader(singleCore))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BenchmarkTable2", "BenchmarkTable3/BV-14", "BenchmarkTable3/QFT-18"}
	for i, b := range doc.Benchmarks {
		if b.Name != want[i] {
			t.Errorf("name[%d] = %q, want %q", i, b.Name, want[i])
		}
	}

	// The same benches on an 8-core machine normalize to the same names.
	const eightCore = `BenchmarkTable2-8 	       1	   1514644 ns/op
BenchmarkTable3/BV-14-8 	       1	   5167157 ns/op
BenchmarkTable3/QFT-18-8 	       1	   9000000 ns/op
`
	doc8, err := parseBenchOutput(strings.NewReader(eightCore))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range doc8.Benchmarks {
		if b.Name != want[i] {
			t.Errorf("8-core name[%d] = %q, want %q", i, b.Name, want[i])
		}
	}
}

func TestCompareGate(t *testing.T) {
	base := &Doc{Benchmarks: []Bench{
		{Name: "BenchmarkA", NsPerOp: 1_000_000},
		{Name: "BenchmarkB", NsPerOp: 1_000_000},
		{Name: "BenchmarkTiny", NsPerOp: 1_000}, // below the floor
		{Name: "BenchmarkGone", NsPerOp: 1_000_000},
	}}
	write := func(t *testing.T, doc *Doc) string { return writeDoc(t, doc) }

	// Within threshold, below-floor jumps, new and gone benches: pass.
	cur := &Doc{Benchmarks: []Bench{
		{Name: "BenchmarkA", NsPerOp: 1_200_000},  // +20%
		{Name: "BenchmarkB", NsPerOp: 900_000},    // improvement
		{Name: "BenchmarkTiny", NsPerOp: 100_000}, // 100x but under floor
		{Name: "BenchmarkNew", NsPerOp: 5_000_000},
	}}
	ok, err := runCompare(write(t, base), write(t, cur), 25, 1e5, "")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("gate failed on a within-threshold run")
	}

	// One real regression: fail.
	cur.Benchmarks[0].NsPerOp = 1_300_000 // +30%
	ok, err = runCompare(write(t, base), write(t, cur), 25, 1e5, "")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("gate passed a +30% ns/op regression at a 25% threshold")
	}
}

// TestCompareCalibration checks machine-speed normalization: a host
// running everything 2x slower — calibration bench included — is not a
// regression, while a bench that doubled on top of the machine ratio
// still fails. A genuinely faster machine must not mask one either.
func TestCompareCalibration(t *testing.T) {
	base := &Doc{Benchmarks: []Bench{
		{Name: "BenchmarkCalibration", NsPerOp: 100_000_000},
		{Name: "BenchmarkA", NsPerOp: 1_000_000},
		{Name: "BenchmarkB", NsPerOp: 1_000_000},
	}}
	// Uniformly 2x slower host: pass.
	cur := &Doc{Benchmarks: []Bench{
		{Name: "BenchmarkCalibration", NsPerOp: 200_000_000},
		{Name: "BenchmarkA", NsPerOp: 2_000_000},
		{Name: "BenchmarkB", NsPerOp: 2_100_000}, // +5% beyond machine ratio
	}}
	ok, err := runCompare(writeDoc(t, base), writeDoc(t, cur), 25, 1e5, "BenchmarkCalibration")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("gate failed a uniformly 2x-slower host")
	}

	// BenchmarkB regressed 2x beyond the machine ratio: fail.
	cur.Benchmarks[2].NsPerOp = 4_000_000
	ok, err = runCompare(writeDoc(t, base), writeDoc(t, cur), 25, 1e5, "BenchmarkCalibration")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("gate passed a real regression hidden behind a slow host")
	}

	// A 2x-faster host must not mask a 3x regression (net +50% raw).
	fast := &Doc{Benchmarks: []Bench{
		{Name: "BenchmarkCalibration", NsPerOp: 50_000_000},
		{Name: "BenchmarkA", NsPerOp: 1_500_000},
		{Name: "BenchmarkB", NsPerOp: 500_000},
	}}
	ok, err = runCompare(writeDoc(t, base), writeDoc(t, fast), 25, 1e5, "BenchmarkCalibration")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("gate passed a regression masked by a fast host")
	}
}

func writeDoc(t *testing.T, doc *Doc) string {
	t.Helper()
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	f := filepath.Join(t.TempDir(), "doc.json")
	if err := os.WriteFile(f, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}
