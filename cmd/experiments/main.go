// Command experiments regenerates the tables and figures of the paper's
// evaluation section (Sec. 7) on the simulated hardware model, batching
// the evaluation points across worker goroutines via internal/pipeline.
//
// Usage:
//
//	experiments -table 1            # hardware parameters (Table 1)
//	experiments -table 2            # benchmark suite and zone sizes (Table 2)
//	experiments -table 3            # main results (Table 3)
//	experiments -table 3 -summary   # plus the Sec. 7.2 aggregate claims
//	experiments -figure 6a          # fidelity ablation, QAOA-regular3
//	experiments -figure 6b..6e      # remaining Fig. 6 panels
//	experiments -figure 7           # multi-AOD sweep
//	experiments -all                # everything, in paper order
//	experiments -verify             # verification sweep: every family x
//	                                # every pipeline through the
//	                                # differential verifier (non-zero exit
//	                                # on any violation)
//	experiments -jobs 8             # compile on 8 workers (default GOMAXPROCS)
//	experiments -csv                # emit CSV instead of aligned text
//	experiments -json               # emit one JSON document instead of text
//	experiments -stable             # omit wall-clock columns: output is
//	                                # byte-identical across runs and -jobs
//	experiments -progress=false     # silence per-job streaming on stderr
//	experiments -cpuprofile cpu.pb.gz   # write a pprof CPU profile
//	experiments -memprofile mem.pb.gz   # write a pprof heap profile at exit
//
// Results are independent of -jobs: every evaluation point is a
// deterministic function of its (benchmark, scheme, AOD-count) key, and
// the engine returns results in job order. Only the measured compile-time
// columns vary run to run; -stable masks them. A single engine cache
// backs the whole invocation, so under -all the Fig. 6 and Fig. 7 points
// that revisit Table-3 compilations are served from cache (the stderr
// stats line reports the hit count). Interrupting with Ctrl-C cancels the
// batch cleanly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"powermove/internal/experiments"
	"powermove/internal/pipeline"
	"powermove/internal/report"
)

func main() {
	var (
		table      = flag.String("table", "", "regenerate a table: 1, 2, or 3")
		figure     = flag.String("figure", "", "regenerate a figure: 6a, 6b, 6c, 6d, 6e, or 7")
		verifyRun  = flag.Bool("verify", false, "run the verification sweep: every workload family x every pipeline through the differential verifier; exits non-zero on any violation")
		summary    = flag.Bool("summary", false, "with -table 3: also print the Sec. 7.2 aggregate claims")
		all        = flag.Bool("all", false, "regenerate every table and figure")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut    = flag.Bool("json", false, "emit one JSON document instead of text")
		jobs       = flag.Int("jobs", 0, "worker goroutines for the batch engine (<1 selects GOMAXPROCS)")
		stable     = flag.Bool("stable", false, "omit wall-clock compile times so output is byte-identical across runs")
		progress   = flag.Bool("progress", true, "stream per-job completions to stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	if !*all && !*verifyRun && *table == "" && *figure == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		fail(err)
		fail(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			fail(f.Close())
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			fail(err)
			runtime.GC() // settle live-heap accounting before the snapshot
			fail(pprof.WriteHeapProfile(f))
			fail(f.Close())
		}()
	}
	switch *table {
	case "", "1", "2", "3":
	default:
		fail(fmt.Errorf("unknown table %q", *table))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runner := &experiments.Runner{Jobs: *jobs}
	if *progress {
		runner.OnResult = func(done, total int, r pipeline.Result) {
			status := ""
			if r.Cached {
				status = "  (cached)"
			}
			if r.Err != nil {
				status = "  ERROR: " + r.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%*d/%d] %-40s %s%s\n",
				len(fmt.Sprint(total)), done, total, r.Key, r.Elapsed.Round(time.Microsecond), status)
		}
	}

	out := &document{Figure6: map[string][]experiments.Figure6Point{}}
	emit := func(t *report.Table) {
		if *jsonOut {
			return
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}

	if *all || *table == "1" {
		out.Table1 = experiments.Table1()
		emit(out.Table1)
	}
	if *all || *table == "2" {
		out.Table2 = experiments.Table2()
		emit(out.Table2)
	}
	if *all || *table == "3" {
		rows, err := runner.Table3Rows(ctx)
		fail(err)
		if *stable {
			for _, r := range rows {
				r.Stabilize()
			}
		}
		out.Table3 = rows
		emit(experiments.Table3Render(rows, *stable))
		if *all || *summary {
			out.Summary = experiments.Summary(rows, *stable)
			emit(out.Summary)
		}
	}
	figures := experiments.Figure6Panels()
	runFigure6 := func(panel string) {
		fam := figures[panel]
		points, err := runner.Figure6Panel(ctx, fam)
		fail(err)
		if *stable {
			for _, pt := range points {
				pt.Row.Stabilize()
			}
		}
		out.Figure6[panel] = points
		emit(experiments.Figure6Table(fam, points))
	}
	runFigure7 := func() {
		points, err := runner.Figure7Sweep(ctx)
		fail(err)
		if *stable {
			for i := range points {
				points[i].Result.Stabilize()
			}
		}
		out.Figure7 = points
		emit(experiments.Figure7Table(points))
	}
	switch {
	case *all:
		for _, panel := range []string{"6a", "6b", "6c", "6d", "6e"} {
			runFigure6(panel)
		}
		runFigure7()
	default:
		if _, ok := figures[*figure]; ok {
			runFigure6(*figure)
		} else if *figure == "7" {
			runFigure7()
		} else if *figure != "" {
			fail(fmt.Errorf("unknown figure %q", *figure))
		}
	}

	var verifyErr error
	if *verifyRun {
		points, err := runner.VerifySweep(ctx)
		fail(err)
		out.Verify = points
		emit(experiments.VerifySweepTable(points))
		// Surface the sweep table (and the JSON document, below) before
		// failing, so the report shows which points broke.
		verifyErr = experiments.VerifySweepErr(points)
	}

	stats := runner.Stats()
	if stats.Jobs > 0 {
		fmt.Fprintf(os.Stderr, "pipeline: %d jobs on %d workers: %d compiled, %d cache hits, %s\n",
			stats.Jobs, stats.Workers, stats.Compiles, stats.CacheHits, stats.Wall.Round(time.Millisecond))
	}
	if oracle := runner.Oracle(); oracle.States > 0 {
		elapsed := time.Duration(oracle.ElapsedNS)
		ampsPerSec := 0.0
		if elapsed > 0 {
			ampsPerSec = float64(oracle.Amps) / elapsed.Seconds()
		}
		fused := 0.0
		if oracle.GatesIn > 0 {
			fused = 1 - float64(oracle.GatesApplied)/float64(oracle.GatesIn)
		}
		fmt.Fprintf(os.Stderr, "oracle: %d states (%d amps) batched in %s, %.0f%% of gates fused away, %d sweep passes folded, %.1fM amps/sec\n",
			oracle.States, oracle.Amps, elapsed.Round(time.Millisecond), 100*fused, oracle.SweepPassesSaved, ampsPerSec/1e6)
	}
	if *jsonOut {
		// Engine accounting (wall time, worker count) is run metadata,
		// not results; it is omitted under -stable so the document is
		// byte-identical across runs and -jobs.
		if stats.Jobs > 0 && !*stable {
			out.Stats = &stats
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fail(enc.Encode(out))
	}
	fail(verifyErr)
}

// document is the -json output: every requested table and figure plus the
// engine accounting.
type document struct {
	Table1  *report.Table                         `json:"table1,omitempty"`
	Table2  *report.Table                         `json:"table2,omitempty"`
	Table3  []*experiments.RowResult              `json:"table3,omitempty"`
	Summary *report.Table                         `json:"summary,omitempty"`
	Figure6 map[string][]experiments.Figure6Point `json:"figure6,omitempty"`
	Figure7 []experiments.Figure7Point            `json:"figure7,omitempty"`
	Verify  []experiments.VerifyPoint             `json:"verify,omitempty"`
	Stats   *pipeline.Stats                       `json:"stats,omitempty"`
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
