// Command experiments regenerates the tables and figures of the paper's
// evaluation section (Sec. 7) on the simulated hardware model.
//
// Usage:
//
//	experiments -table 1            # hardware parameters (Table 1)
//	experiments -table 2            # benchmark suite and zone sizes (Table 2)
//	experiments -table 3            # main results (Table 3)
//	experiments -table 3 -summary   # plus the Sec. 7.2 aggregate claims
//	experiments -figure 6a          # fidelity ablation, QAOA-regular3
//	experiments -figure 6b..6e      # remaining Fig. 6 panels
//	experiments -figure 7           # multi-AOD sweep
//	experiments -all                # everything, in paper order
//	experiments -csv                # emit CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"os"

	"powermove/internal/experiments"
	"powermove/internal/report"
)

func main() {
	var (
		table   = flag.String("table", "", "regenerate a table: 1, 2, or 3")
		figure  = flag.String("figure", "", "regenerate a figure: 6a, 6b, 6c, 6d, 6e, or 7")
		summary = flag.Bool("summary", false, "with -table 3: also print the Sec. 7.2 aggregate claims")
		all     = flag.Bool("all", false, "regenerate every table and figure")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()

	if !*all && *table == "" && *figure == "" {
		flag.Usage()
		os.Exit(2)
	}
	emit := func(t *report.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}

	if *all || *table == "1" {
		emit(experiments.Table1())
	}
	if *all || *table == "2" {
		emit(experiments.Table2())
	}
	if *all || *table == "3" {
		t, rows, err := experiments.Table3()
		fail(err)
		emit(t)
		if *all || *summary {
			emit(experiments.Summary(rows))
		}
	}
	figures := map[string]experiments.Family{
		"6a": experiments.QAOARegular3,
		"6b": experiments.QSim,
		"6c": experiments.QFT,
		"6d": experiments.VQE,
		"6e": experiments.BV,
	}
	if *all {
		for _, panel := range []string{"6a", "6b", "6c", "6d", "6e"} {
			runFigure6(figures[panel], emit)
		}
		runFigure7(emit)
		return
	}
	if fam, ok := figures[*figure]; ok {
		runFigure6(fam, emit)
	} else if *figure == "7" {
		runFigure7(emit)
	} else if *figure != "" {
		fail(fmt.Errorf("unknown figure %q", *figure))
	}
}

func runFigure6(fam experiments.Family, emit func(*report.Table)) {
	points, err := experiments.Figure6(fam)
	fail(err)
	emit(experiments.Figure6Table(fam, points))
}

func runFigure7(emit func(*report.Table)) {
	points, err := experiments.Figure7()
	fail(err)
	emit(experiments.Figure7Table(points))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
