// Command powermove-router is the fleet tier: a consistent-hash
// router over N powermoved backends. It maps every request's canonical
// compile key onto one backend so identical compiles always land on
// the daemon whose LRU/snapshot caches and disk store already hold
// them, fails over to the next replica in ring order when a backend
// dies, and aggregates the fleet's metrics.
//
//	powermove-router -backend b1=http://127.0.0.1:8077 -backend b2=http://127.0.0.1:8078
//	powermove-router -addr :8070 -vnodes 128 -health-interval 2s
//
// Backends should run with matching -backend-id flags (the health
// checker verifies identity) and, for restart-durable results, a
// shared -store-dir.
//
// Endpoints:
//
//	/v1/*         proxied by routing key, with next-replica failover
//	GET /v1/jobs  merged across the fleet (jobs pin to their daemon)
//	GET /healthz  router liveness + per-backend verdicts
//	GET /metrics  routed/retried/failover counters, per-backend
//	              latency, and fleet-wide cache/queue totals
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"powermove/internal/fleet"
)

// backendFlags collects repeated -backend name=url values.
type backendFlags []fleet.Backend

func (b *backendFlags) String() string {
	names := make([]string, len(*b))
	for i, be := range *b {
		names[i] = be.Name
	}
	return strings.Join(names, ",")
}

func (b *backendFlags) Set(v string) error {
	name, raw, ok := strings.Cut(v, "=")
	if !ok || name == "" || raw == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	u, err := url.Parse(raw)
	if err != nil {
		return fmt.Errorf("backend %s: %w", name, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("backend %s: URL %q needs an http(s) scheme", name, raw)
	}
	*b = append(*b, fleet.Backend{Name: name, URL: u})
	return nil
}

func main() {
	var backends backendFlags
	var (
		addr           = flag.String("addr", ":8070", "listen address")
		vnodes         = flag.Int("vnodes", fleet.DefaultVNodes, "virtual nodes per backend on the hash ring")
		healthInterval = flag.Duration("health-interval", 2*time.Second, "active health-probe period for healthy backends")
		probeTimeout   = flag.Duration("probe-timeout", time.Second, "health-probe timeout")
		maxBackoff     = flag.Duration("max-backoff", 30*time.Second, "probe backoff cap for failed backends")
	)
	flag.Var(&backends, "backend", "backend as name=url; repeat per instance (name must match its -backend-id)")
	flag.Parse()

	if len(backends) == 0 {
		fail(errors.New("no backends; pass -backend name=url at least once"))
	}
	router, err := fleet.NewRouter(fleet.Config{
		Backends:       backends,
		VNodes:         *vnodes,
		HealthInterval: *healthInterval,
		ProbeTimeout:   *probeTimeout,
		MaxBackoff:     *maxBackoff,
	})
	if err != nil {
		fail(err)
	}
	defer router.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           router.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	names := make([]string, len(backends))
	for i, b := range backends {
		names[i] = b.Name
	}
	sort.Strings(names)
	log.Printf("powermove-router: serving on %s over backends %s (%d vnodes each)",
		*addr, strings.Join(names, ", "), *vnodes)

	select {
	case <-ctx.Done():
		log.Printf("powermove-router: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fail(err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "powermove-router:", err)
	os.Exit(1)
}
