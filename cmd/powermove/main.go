// Command powermove compiles a quantum circuit for a zoned neutral-atom
// machine and reports the compiled schedule and its simulated metrics.
//
// Input is either an OpenQASM 2.0 file or a generated benchmark:
//
//	powermove -qasm circuit.qasm
//	powermove -bench QAOA-regular3 -n 30
//
// Flags select the pipeline mode (-storage), AOD count (-aods), a baseline
// comparison (-baseline), a full instruction listing (-disasm), and
// differential verification of the compiled program (-verify: physical
// legality checker + semantic equivalence oracle, non-zero exit on any
// violation).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"powermove"
)

func main() {
	var (
		qasmPath = flag.String("qasm", "", "OpenQASM 2.0 file to compile")
		bench    = flag.String("bench", "", "benchmark family to generate: QAOA-regular3, QAOA-regular4, QAOA-random, QFT, BV, VQE, QSIM-rand")
		n        = flag.Int("n", 30, "qubit count for -bench")
		seed     = flag.Int64("seed", 42, "seed for randomized benchmarks")
		storage  = flag.Bool("storage", true, "use the storage zone (full zoned pipeline)")
		aods     = flag.Int("aods", 1, "number of AOD arrays")
		baseline = flag.Bool("baseline", false, "also compile with the Enola baseline and compare")
		disasm   = flag.Bool("disasm", false, "print the compiled instruction stream")
		traceOut = flag.Bool("trace", false, "print the execution timeline as an ASCII Gantt chart")
		timings  = flag.Bool("timings", false, "print the compiler's per-pass timing breakdown")
		layouts  = flag.Bool("layouts", false, "print the initial and final qubit layouts")
		jsonOut  = flag.Bool("json", false, "emit the compile-service JSON document instead of text (byte-identical to powermoved's /v1/compile response for the same request)")
		stable   = flag.Bool("stable", false, "with -json: omit measured wall-clock fields so output is byte-identical across runs")
		verify   = flag.Bool("verify", false, "run the differential verifier (physical legality checker + semantic equivalence oracle) and fail on any violation")
	)
	flag.Parse()

	if *jsonOut {
		if err := runJSON(*qasmPath, *bench, *n, *seed, *storage, *aods, *stable, *verify); err != nil {
			fail(err)
		}
		return
	}

	circ, err := loadCircuit(*qasmPath, *bench, *n, *seed)
	if err != nil {
		fail(err)
	}
	hw := powermove.DefaultArch(circ.Qubits, *aods)
	fmt.Printf("circuit:  %s\n", circ)
	fmt.Printf("hardware: %s\n", hw)

	run, err := powermove.CompileAndRun(circ, hw, powermove.Options{UseStorage: *storage})
	if err != nil {
		fail(err)
	}
	fmt.Printf("\npowermove (storage=%v, %d AOD):\n", *storage, *aods)
	printRun(run)
	if *verify {
		rep := powermove.Verify(circ, run.Compile)
		fmt.Printf("\n%s\n", rep)
		if !rep.OK() {
			os.Exit(1)
		}
	}
	if *timings {
		fmt.Println()
		printPasses(run.Compile.Stats.Passes)
	}
	if *disasm {
		fmt.Println()
		fmt.Print(run.Compile.Program.Disassemble())
	}
	if *traceOut {
		_, tr, err := powermove.ExecuteWithTrace(run.Compile.Program, run.Compile.Initial)
		if err != nil {
			fail(err)
		}
		fmt.Println()
		fmt.Print(tr.Gantt(100))
	}
	if *layouts {
		fmt.Println("\ninitial layout:")
		fmt.Print(powermove.RenderLayout(run.Compile.Initial))
		fmt.Println("\nfinal layout:")
		fmt.Print(powermove.RenderLayout(run.Execution.Final))
	}

	if *baseline {
		base, err := powermove.CompileEnola(circ, powermove.DefaultArch(circ.Qubits, 1), powermove.EnolaOptions{Seed: 1})
		if err != nil {
			fail(err)
		}
		exec, err := powermove.Execute(base.Program, base.Initial)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nenola baseline:\n")
		fmt.Printf("  fidelity: %.6g   (%s)\n", exec.Fidelity, exec.Components)
		fmt.Printf("  t_exe:    %.1f us   t_comp: %s   stages: %d\n",
			exec.Time, base.Stats.CompileTime, exec.Stages)
		fmt.Printf("\ncomparison: fidelity %.2fx, execution time %.2fx\n",
			run.Execution.Fidelity/exec.Fidelity, exec.Time/run.Execution.Time)
	}
}

// runJSON compiles through the service path and prints its canonical
// JSON document, the same bytes a powermoved daemon returns for this
// request on a cold cache. Named benchmarks compile the paper instance
// (spec-derived seed) unless -seed was given explicitly on the command
// line, matching a workload request without/with a "seed" field.
func runJSON(qasmPath, bench string, n int, seed int64, storage bool, aods int, stable, verify bool) error {
	req := powermove.ServiceCompileRequest{
		CompileSpec: powermove.ServiceCompileSpec{
			Scheme: "non-storage",
			AODs:   aods,
			Stable: stable,
			Verify: verify,
		},
	}
	if storage {
		req.Scheme = "with-storage"
	}
	switch {
	case qasmPath != "" && bench != "":
		return fmt.Errorf("specify only one of -qasm and -bench")
	case qasmPath != "":
		src, err := os.ReadFile(qasmPath)
		if err != nil {
			return err
		}
		req.QASM = string(src)
	case bench != "":
		req.Workload = &powermove.ServiceWorkloadSpec{Family: bench, Qubits: n}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				req.Workload.Seed = &seed
			}
		})
	default:
		return fmt.Errorf("specify -qasm or -bench (see -help)")
	}
	reqBytes, err := json.Marshal(req)
	if err != nil {
		return err
	}
	out, err := powermove.CompileJSON(context.Background(), reqBytes)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(out)
	return err
}

func loadCircuit(qasmPath, bench string, n int, seed int64) (*powermove.Circuit, error) {
	switch {
	case qasmPath != "" && bench != "":
		return nil, fmt.Errorf("specify only one of -qasm and -bench")
	case qasmPath != "":
		src, err := os.ReadFile(qasmPath)
		if err != nil {
			return nil, err
		}
		return powermove.ParseQASM(qasmPath, string(src))
	case bench != "":
		switch bench {
		case "QAOA-regular3":
			return powermove.QAOARegular(n, 3, seed), nil
		case "QAOA-regular4":
			return powermove.QAOARegular(n, 4, seed), nil
		case "QAOA-random":
			return powermove.QAOARandom(n, seed), nil
		case "QFT":
			return powermove.QFT(n), nil
		case "BV":
			return powermove.BV(n, seed), nil
		case "VQE":
			return powermove.VQE(n), nil
		case "QSIM-rand":
			return powermove.QSim(n, seed), nil
		default:
			return nil, fmt.Errorf("unknown benchmark family %q", bench)
		}
	default:
		return nil, fmt.Errorf("specify -qasm or -bench (see -help)")
	}
}

// printPasses renders the compiler's per-pass breakdown: self-time,
// call counts, and the schedule counters each pass advanced. Pass
// self-times sum to ~t_comp (the remainder is driver overhead).
func printPasses(passes powermove.PassStats) {
	fmt.Println("per-pass breakdown:")
	for _, p := range passes {
		counters := ""
		if len(p.Counters) > 0 {
			keys := make([]string, 0, len(p.Counters))
			for k := range p.Counters {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				counters += fmt.Sprintf("  %s=%d", k, p.Counters[k])
			}
		}
		fmt.Printf("  %-16s %5d call(s) %12s%s\n", p.Pass, p.Calls, p.Duration.Round(time.Microsecond), counters)
	}
	fmt.Printf("  %-16s %20s %12s\n", "total", "", passes.Total().Round(time.Microsecond))
}

func printRun(run *powermove.RunResult) {
	exec := run.Execution
	st := run.Compile.Stats
	fmt.Printf("  fidelity: %.6g   (%s)\n", exec.Fidelity, exec.Components)
	fmt.Printf("  t_exe:    %.1f us  (1q %.1f, move %.1f, transfer %.1f, rydberg %.2f)\n",
		exec.Time, exec.Breakdown.OneQ, exec.Breakdown.Move, exec.Breakdown.Transfer, exec.Breakdown.Rydberg)
	fmt.Printf("  t_comp:   %s\n", st.CompileTime)
	fmt.Printf("  schedule: %d blocks, %d stages, %d moves, %d coll-moves, %d batches\n",
		st.Blocks, st.Stages, st.Moves, st.CollMoves, st.Batches)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "powermove:", err)
	os.Exit(1)
}
