// Command powermove compiles a quantum circuit for a zoned neutral-atom
// machine and reports the compiled schedule and its simulated metrics.
//
// Input is either an OpenQASM 2.0 file or a generated benchmark:
//
//	powermove -qasm circuit.qasm
//	powermove -bench QAOA-regular3 -n 30
//
// Flags select the pipeline mode (-storage), AOD count (-aods), a baseline
// comparison (-baseline), and a full instruction listing (-disasm).
package main

import (
	"flag"
	"fmt"
	"os"

	"powermove"
)

func main() {
	var (
		qasmPath = flag.String("qasm", "", "OpenQASM 2.0 file to compile")
		bench    = flag.String("bench", "", "benchmark family to generate: QAOA-regular3, QAOA-regular4, QAOA-random, QFT, BV, VQE, QSIM-rand")
		n        = flag.Int("n", 30, "qubit count for -bench")
		seed     = flag.Int64("seed", 42, "seed for randomized benchmarks")
		storage  = flag.Bool("storage", true, "use the storage zone (full zoned pipeline)")
		aods     = flag.Int("aods", 1, "number of AOD arrays")
		baseline = flag.Bool("baseline", false, "also compile with the Enola baseline and compare")
		disasm   = flag.Bool("disasm", false, "print the compiled instruction stream")
		traceOut = flag.Bool("trace", false, "print the execution timeline as an ASCII Gantt chart")
		layouts  = flag.Bool("layouts", false, "print the initial and final qubit layouts")
	)
	flag.Parse()

	circ, err := loadCircuit(*qasmPath, *bench, *n, *seed)
	if err != nil {
		fail(err)
	}
	hw := powermove.DefaultArch(circ.Qubits, *aods)
	fmt.Printf("circuit:  %s\n", circ)
	fmt.Printf("hardware: %s\n", hw)

	run, err := powermove.CompileAndRun(circ, hw, powermove.Options{UseStorage: *storage})
	if err != nil {
		fail(err)
	}
	fmt.Printf("\npowermove (storage=%v, %d AOD):\n", *storage, *aods)
	printRun(run)
	if *disasm {
		fmt.Println()
		fmt.Print(run.Compile.Program.Disassemble())
	}
	if *traceOut {
		_, tr, err := powermove.ExecuteWithTrace(run.Compile.Program, run.Compile.Initial)
		if err != nil {
			fail(err)
		}
		fmt.Println()
		fmt.Print(tr.Gantt(100))
	}
	if *layouts {
		fmt.Println("\ninitial layout:")
		fmt.Print(powermove.RenderLayout(run.Compile.Initial))
		fmt.Println("\nfinal layout:")
		fmt.Print(powermove.RenderLayout(run.Execution.Final))
	}

	if *baseline {
		base, err := powermove.CompileEnola(circ, powermove.DefaultArch(circ.Qubits, 1), powermove.EnolaOptions{Seed: 1})
		if err != nil {
			fail(err)
		}
		exec, err := powermove.Execute(base.Program, base.Initial)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nenola baseline:\n")
		fmt.Printf("  fidelity: %.6g   (%s)\n", exec.Fidelity, exec.Components)
		fmt.Printf("  t_exe:    %.1f us   t_comp: %s   stages: %d\n",
			exec.Time, base.Stats.CompileTime, exec.Stages)
		fmt.Printf("\ncomparison: fidelity %.2fx, execution time %.2fx\n",
			run.Execution.Fidelity/exec.Fidelity, exec.Time/run.Execution.Time)
	}
}

func loadCircuit(qasmPath, bench string, n int, seed int64) (*powermove.Circuit, error) {
	switch {
	case qasmPath != "" && bench != "":
		return nil, fmt.Errorf("specify only one of -qasm and -bench")
	case qasmPath != "":
		src, err := os.ReadFile(qasmPath)
		if err != nil {
			return nil, err
		}
		return powermove.ParseQASM(qasmPath, string(src))
	case bench != "":
		switch bench {
		case "QAOA-regular3":
			return powermove.QAOARegular(n, 3, seed), nil
		case "QAOA-regular4":
			return powermove.QAOARegular(n, 4, seed), nil
		case "QAOA-random":
			return powermove.QAOARandom(n, seed), nil
		case "QFT":
			return powermove.QFT(n), nil
		case "BV":
			return powermove.BV(n, seed), nil
		case "VQE":
			return powermove.VQE(n), nil
		case "QSIM-rand":
			return powermove.QSim(n, seed), nil
		default:
			return nil, fmt.Errorf("unknown benchmark family %q", bench)
		}
	default:
		return nil, fmt.Errorf("specify -qasm or -bench (see -help)")
	}
}

func printRun(run *powermove.RunResult) {
	exec := run.Execution
	st := run.Compile.Stats
	fmt.Printf("  fidelity: %.6g   (%s)\n", exec.Fidelity, exec.Components)
	fmt.Printf("  t_exe:    %.1f us  (1q %.1f, move %.1f, transfer %.1f, rydberg %.2f)\n",
		exec.Time, exec.Breakdown.OneQ, exec.Breakdown.Move, exec.Breakdown.Transfer, exec.Breakdown.Rydberg)
	fmt.Printf("  t_comp:   %s\n", st.CompileTime)
	fmt.Printf("  schedule: %d blocks, %d stages, %d moves, %d coll-moves, %d batches\n",
		st.Blocks, st.Stages, st.Moves, st.CollMoves, st.Batches)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "powermove:", err)
	os.Exit(1)
}
