// Command powermoved is the long-running compile service: an HTTP
// daemon over the PowerMove batch engine with a shared LRU compile
// cache and singleflight request dedup (internal/service).
//
//	powermoved                        # serve on :8077
//	powermoved -addr :9000 -workers 4 -cache-size 512
//	powermoved -pprof                 # also serve /debug/pprof/*
//
// Endpoints:
//
//	GET    /v1                        endpoint catalog + build info
//	POST   /v1/compile                compile one circuit (QASM or workload;
//	                                  ?verify=1 runs the differential verifier)
//	POST   /v1/batch                  compile many points on the worker pool
//	GET    /v1/experiments/table/{id}   tables 1, 2, 3        (?stable=1)
//	GET    /v1/experiments/figure/{id}  figures 6a..6e, 7     (?stable=1)
//	POST   /v1/jobs                   submit async work (bounded queue;
//	                                  429 + Retry-After when full)
//	GET    /v1/jobs[/{id}[/result|/events]]  poll, fetch, or stream jobs
//	DELETE /v1/jobs/{id}              cancel a queued or running job
//	GET    /healthz                   liveness + uptime
//	GET    /metrics                   cache/compile/queue/store counters
//	GET    /debug/pprof/*             live profiling (opt-in via -pprof)
//
// For the same request, responses are byte-identical to
// `powermove -json` (both run powermove.CompileJSON's path); CI's smoke
// test holds the two to that contract. SIGINT/SIGTERM drain in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"powermove"
)

func main() {
	var (
		addr       = flag.String("addr", ":8077", "listen address")
		backendID  = flag.String("backend-id", "", `fleet identity of this daemon (labels /metrics and prefixes job ids for powermove-router); no "." allowed`)
		workers    = flag.Int("workers", 0, "max concurrent compiles (<1 selects GOMAXPROCS)")
		cacheSize  = flag.Int("cache-size", 4096, "compile-cache capacity in outcomes (0 = unbounded)")
		queueDepth = flag.Int("queue-depth", 256, "async job queue depth; submissions beyond it shed with 429 (<1 selects 256)")
		jobTTL     = flag.Duration("job-ttl", 15*time.Minute, "retention of finished jobs and their results")
		storeDir   = flag.String("store-dir", "", "disk result-store directory; compiled results survive restarts (empty = memory only)")
		storeMax   = flag.Int64("store-max-bytes", 256<<20, "disk result-store size bound in bytes (0 = unbounded)")
		pprofServe = flag.Bool("pprof", false, "expose /debug/pprof/* (CPU, heap, goroutine profiles) on the listen address")
		snapCache  = flag.Int("snapshot-cache", 64, "incremental-compilation snapshot entries retained (0 disables incremental compilation)")
		noWarm     = flag.Bool("no-warm-start", false, "disable warm-start placement donation from similar cached compiles")
		speculate  = flag.Bool("speculate", false, "precompile likely grouping/scheme variants of hot requests on idle worker slots")
	)
	flag.Parse()

	if strings.Contains(*backendID, ".") {
		fail(fmt.Errorf("-backend-id %q must not contain %q (the job-id separator)", *backendID, "."))
	}
	cfg := powermove.ServerConfig{
		Instance:    *backendID,
		Workers:     *workers,
		CacheSize:   *cacheSize,
		QueueDepth:  *queueDepth,
		JobTTL:      *jobTTL,
		NoWarmStart: *noWarm,
		Speculate:   *speculate,
	}
	// The flag speaks operator language (0 = off); the config speaks
	// Go-zero-value language (0 = default, negative = off).
	if *snapCache == 0 {
		cfg.SnapshotCache = -1
	} else {
		cfg.SnapshotCache = *snapCache
	}
	if *storeDir != "" {
		st, err := powermove.OpenResultStore(*storeDir, *storeMax)
		if err != nil {
			fail(err)
		}
		cfg.Store = st
	}
	srv := powermove.NewServer(cfg)
	defer srv.Close()
	handler := srv.Handler()
	if *pprofServe {
		// Opt-in only: profiles reveal internals and cost CPU while
		// sampling, so the endpoints never ship enabled by default.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	storeNote := "no disk store"
	if *storeDir != "" {
		storeNote = "store " + *storeDir
	}
	log.Printf("powermoved: serving on %s (cache %d entries, queue depth %d, %s)", *addr, *cacheSize, *queueDepth, storeNote)

	select {
	case <-ctx.Done():
		log.Printf("powermoved: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fail(err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "powermoved:", err)
	os.Exit(1)
}
