// Example http_service drives a running powermoved daemon: it compiles
// one named workload twice (the repeat is a cache hit), submits a small
// three-scheme batch, runs the same compile through the async /v1/jobs
// path (submit → poll → fetch the result document), and prints the
// daemon's cache and queue counters.
//
// Start the daemon, then run the client:
//
//	go run ./cmd/powermoved &
//	go run ./examples/http_service -addr http://localhost:8077
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"powermove"
)

func main() {
	addr := flag.String("addr", "http://localhost:8077", "powermoved base URL")
	flag.Parse()

	// One evaluation point, twice: the second response reports cached=true.
	req := powermove.ServiceCompileRequest{
		Workload:    &powermove.ServiceWorkloadSpec{Family: "QFT", Qubits: 18},
		CompileSpec: powermove.ServiceCompileSpec{Scheme: "with-storage"},
	}
	for _, label := range []string{"cold", "warm"} {
		var resp powermove.ServiceCompileResponse
		if err := post(*addr+"/v1/compile", req, &resp); err != nil {
			fail(err)
		}
		fmt.Printf("%s: %s fidelity=%.4f texe=%.1fus cached=%v\n",
			label, resp.Bench, resp.Fidelity, resp.TexeUS, resp.Cached)
	}

	// A batch: the three-way comparison of one Table-3 row, fanned
	// across the daemon's worker pool.
	bv := func(scheme string) powermove.ServiceCompileRequest {
		return powermove.ServiceCompileRequest{
			Workload:    &powermove.ServiceWorkloadSpec{Family: "BV", Qubits: 14},
			CompileSpec: powermove.ServiceCompileSpec{Scheme: scheme},
		}
	}
	batch := map[string]any{"requests": []powermove.ServiceCompileRequest{
		bv("enola"), bv("non-storage"), bv("with-storage"),
	}}
	var batchResp struct {
		Results []struct {
			Result *powermove.ServiceCompileResponse `json:"result"`
			Error  string                            `json:"error"`
		} `json:"results"`
	}
	if err := post(*addr+"/v1/batch", batch, &batchResp); err != nil {
		fail(err)
	}
	fmt.Println("\nBV-14 three-way comparison:")
	for _, item := range batchResp.Results {
		if item.Error != "" {
			fail(fmt.Errorf("batch item: %s", item.Error))
		}
		r := item.Result
		fmt.Printf("  %-12s fidelity=%.4f texe=%.1fus\n", r.Scheme, r.Fidelity, r.TexeUS)
	}

	// The same compile through the async path: submit a job (202 + id),
	// poll its snapshot until terminal, then fetch the result document —
	// byte-for-byte what /v1/compile returns for the same spec.
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := postStatus(*addr+"/v1/jobs", powermove.ServiceJobRequest{Compile: &req}, &job, http.StatusAccepted); err != nil {
		fail(err)
	}
	fmt.Printf("\nsubmitted job %s (%s)\n", job.ID, job.State)
	for job.State != "done" && job.State != "failed" && job.State != "canceled" {
		time.Sleep(50 * time.Millisecond)
		if err := get(*addr+"/v1/jobs/"+job.ID, &job); err != nil {
			fail(err)
		}
	}
	if job.State != "done" {
		fail(fmt.Errorf("job %s ended %s", job.ID, job.State))
	}
	var async powermove.ServiceCompileResponse
	if err := get(*addr+"/v1/jobs/"+job.ID+"/result", &async); err != nil {
		fail(err)
	}
	fmt.Printf("async:  %s fidelity=%.4f texe=%.1fus cached=%v\n",
		async.Bench, async.Fidelity, async.TexeUS, async.Cached)

	// The daemon's accounting: cache hits/misses/evictions, compiles,
	// singleflight dedups, queue counters, per-endpoint latency.
	var metrics struct {
		Cache    json.RawMessage `json:"cache"`
		Compiles int64           `json:"compiles"`
		Deduped  int64           `json:"deduped"`
		Jobs     struct {
			Submitted int64 `json:"submitted"`
			Done      int64 `json:"done"`
			Shed      int64 `json:"shed"`
		} `json:"jobs"`
	}
	if err := get(*addr+"/metrics", &metrics); err != nil {
		fail(err)
	}
	fmt.Printf("\nmetrics: compiles=%d deduped=%d jobs=%d/%d done cache=%s\n",
		metrics.Compiles, metrics.Deduped, metrics.Jobs.Done, metrics.Jobs.Submitted, metrics.Cache)
}

// get fetches url and decodes the JSON response into out.
func get(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", url, resp.Status, raw)
	}
	return json.Unmarshal(raw, out)
}

// post sends v as JSON and decodes the JSON response into out.
func post(url string, v, out any) error {
	return postStatus(url, v, out, http.StatusOK)
}

// postStatus is post expecting a specific success status (the async
// submit answers 202 Accepted).
func postStatus(url string, v, out any, want int) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("%s: %s: %s", url, resp.Status, raw)
	}
	return json.Unmarshal(raw, out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "http_service:", err)
	os.Exit(1)
}
