// Example http_service drives a running powermoved daemon: it compiles
// one named workload twice (the repeat is a cache hit), submits a small
// three-scheme batch, and prints the daemon's cache counters.
//
// Start the daemon, then run the client:
//
//	go run ./cmd/powermoved &
//	go run ./examples/http_service -addr http://localhost:8077
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"powermove"
)

func main() {
	addr := flag.String("addr", "http://localhost:8077", "powermoved base URL")
	flag.Parse()

	// One evaluation point, twice: the second response reports cached=true.
	req := powermove.ServiceCompileRequest{
		Workload: &powermove.ServiceWorkloadSpec{Family: "QFT", Qubits: 18},
		Scheme:   "with-storage",
	}
	for _, label := range []string{"cold", "warm"} {
		var resp powermove.ServiceCompileResponse
		if err := post(*addr+"/v1/compile", req, &resp); err != nil {
			fail(err)
		}
		fmt.Printf("%s: %s fidelity=%.4f texe=%.1fus cached=%v\n",
			label, resp.Bench, resp.Fidelity, resp.TexeUS, resp.Cached)
	}

	// A batch: the three-way comparison of one Table-3 row, fanned
	// across the daemon's worker pool.
	batch := map[string]any{"requests": []powermove.ServiceCompileRequest{
		{Workload: &powermove.ServiceWorkloadSpec{Family: "BV", Qubits: 14}, Scheme: "enola"},
		{Workload: &powermove.ServiceWorkloadSpec{Family: "BV", Qubits: 14}, Scheme: "non-storage"},
		{Workload: &powermove.ServiceWorkloadSpec{Family: "BV", Qubits: 14}, Scheme: "with-storage"},
	}}
	var batchResp struct {
		Results []struct {
			Result *powermove.ServiceCompileResponse `json:"result"`
			Error  string                            `json:"error"`
		} `json:"results"`
	}
	if err := post(*addr+"/v1/batch", batch, &batchResp); err != nil {
		fail(err)
	}
	fmt.Println("\nBV-14 three-way comparison:")
	for _, item := range batchResp.Results {
		if item.Error != "" {
			fail(fmt.Errorf("batch item: %s", item.Error))
		}
		r := item.Result
		fmt.Printf("  %-12s fidelity=%.4f texe=%.1fus\n", r.Scheme, r.Fidelity, r.TexeUS)
	}

	// The daemon's accounting: cache hits/misses/evictions, compiles,
	// singleflight dedups, per-endpoint latency.
	resp, err := http.Get(*addr + "/metrics")
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	var metrics struct {
		Cache    json.RawMessage `json:"cache"`
		Compiles int64           `json:"compiles"`
		Deduped  int64           `json:"deduped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		fail(err)
	}
	fmt.Printf("\nmetrics: compiles=%d deduped=%d cache=%s\n", metrics.Compiles, metrics.Deduped, metrics.Cache)
}

// post sends v as JSON and decodes the JSON response into out.
func post(url string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", url, resp.Status, raw)
	}
	return json.Unmarshal(raw, out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "http_service:", err)
	os.Exit(1)
}
