// Multi-AOD parallelism study (Fig. 7 of the paper): sweeping the number
// of independent AOD arrays on a movement-heavy workload. Coll-Moves that
// conflict within one AOD can run simultaneously on distinct arrays, so
// execution time drops and — because layout transitions shorten — so does
// decoherence.
//
//	go run ./examples/multi_aod
package main

import (
	"fmt"
	"log"

	"powermove"
)

func main() {
	circ := powermove.QAOARegular(100, 3, 7)
	fmt.Printf("workload: %s, zoned pipeline\n\n", circ)
	fmt.Printf("%5s  %11s  %10s  %12s\n", "AODs", "t_exe (us)", "fidelity", "decoherence")

	var base float64
	for aods := 1; aods <= 4; aods++ {
		hw := powermove.DefaultArch(circ.Qubits, aods)
		run, err := powermove.CompileAndRun(circ, hw, powermove.Options{UseStorage: true})
		if err != nil {
			log.Fatal(err)
		}
		exec := run.Execution
		if aods == 1 {
			base = exec.Time
		}
		fmt.Printf("%5d  %11.1f  %10.4f  %12.4f   (%.2fx faster)\n",
			aods, exec.Time, exec.Fidelity, exec.Components.Decoherence, base/exec.Time)
	}

	fmt.Println("\nEven a second AOD array absorbs most sequential Coll-Moves;")
	fmt.Println("returns diminish once batches are no longer the bottleneck.")
}
