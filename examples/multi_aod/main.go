// Multi-AOD parallelism study (Fig. 7 of the paper): sweeping the number
// of independent AOD arrays on a movement-heavy workload. Coll-Moves that
// conflict within one AOD can run simultaneously on distinct arrays, so
// execution time drops and — because layout transitions shorten — so does
// decoherence.
//
//	go run ./examples/multi_aod
package main

import (
	"fmt"
	"log"
	"time"

	"powermove"
)

func main() {
	circ := powermove.QAOARegular(100, 3, 7)
	fmt.Printf("workload: %s, zoned pipeline\n\n", circ)
	fmt.Printf("%5s  %11s  %10s  %12s  %11s  %10s\n",
		"AODs", "t_exe (us)", "fidelity", "decoherence", "coll-moves", "t_comp")

	var base float64
	for aods := 1; aods <= 4; aods++ {
		hw := powermove.DefaultArch(circ.Qubits, aods)
		run, err := powermove.CompileAndRun(circ, hw, powermove.Options{UseStorage: true})
		if err != nil {
			log.Fatal(err)
		}
		exec := run.Execution
		stats := run.Compile.Stats
		if aods == 1 {
			base = exec.Time
		}
		fmt.Printf("%5d  %11.1f  %10.4f  %12.4f  %11d  %10s   (%.2fx faster)\n",
			aods, exec.Time, exec.Fidelity, exec.Components.Decoherence,
			stats.CollMoves, stats.CompileTime.Round(time.Millisecond), base/exec.Time)
	}

	fmt.Println("\nEven a second AOD array absorbs most sequential Coll-Moves;")
	fmt.Println("returns diminish once batches are no longer the bottleneck.")
	fmt.Println("t_comp is the measured wall-clock compilation time: the grouping")
	fmt.Println("packs hundreds of 1Q movements into few Coll-Moves per stage via")
	fmt.Println("the interval-indexed conflict test (see docs/ARCHITECTURE.md,")
	fmt.Println("Performance).")
}
