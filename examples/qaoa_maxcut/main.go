// QAOA MaxCut scaling study: the workload the paper's introduction
// motivates (Sec. 1, evaluated in Sec. 7.2).
// Compiles depth-1 QAOA circuits on random 3-regular graphs of
// growing size with the Enola baseline and with PowerMove (both modes),
// and prints how fidelity and execution time scale.
//
//	go run ./examples/qaoa_maxcut
package main

import (
	"fmt"
	"log"

	"powermove"
)

func main() {
	fmt.Println("QAOA MaxCut on random 3-regular graphs (depth 1)")
	fmt.Printf("%6s  %22s  %22s  %22s\n", "", "enola", "powermove non-storage", "powermove with-storage")
	fmt.Printf("%6s  %10s %11s  %10s %11s  %10s %11s\n",
		"qubits", "fidelity", "t_exe (us)", "fidelity", "t_exe (us)", "fidelity", "t_exe (us)")

	for _, n := range []int{20, 40, 60, 80, 100} {
		circ := powermove.QAOARegular(n, 3, int64(n))
		hw := powermove.DefaultArch(n, 1)

		base, err := powermove.CompileEnola(circ, hw, powermove.EnolaOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		baseExec, err := powermove.Execute(base.Program, base.Initial)
		if err != nil {
			log.Fatal(err)
		}

		flat, err := powermove.CompileAndRun(circ, hw, powermove.Options{UseStorage: false})
		if err != nil {
			log.Fatal(err)
		}
		zoned, err := powermove.CompileAndRun(circ, hw, powermove.Options{UseStorage: true})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%6d  %10.4f %11.1f  %10.4f %11.1f  %10.4f %11.1f\n",
			n,
			baseExec.Fidelity, baseExec.Time,
			flat.Execution.Fidelity, flat.Execution.Time,
			zoned.Execution.Fidelity, zoned.Execution.Time)
	}

	fmt.Println("\nThe baseline reverts every qubit to its home site after each")
	fmt.Println("Rydberg stage; PowerMove's continuous router transitions the")
	fmt.Println("layout directly, and the storage zone removes excitation error,")
	fmt.Println("so the fidelity gap widens with qubit count.")
}
