// QASM ingestion: parse an OpenQASM 2.0 program (a 4-qubit GHZ-style
// circuit written with cx gates), lower it to the commutable-CZ-block IR
// of Sec. 2.2 of the paper, compile it, and print the instruction stream.
//
//	go run ./examples/qasm_compile
package main

import (
	"fmt"
	"log"

	"powermove"
)

const src = `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
barrier q;
rz(0.25) q[0];
cz q[0], q[3];
measure q[0] -> c[0];
`

func main() {
	circ, err := powermove.ParseQASM("ghz4", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed:", circ)
	for i, b := range circ.Blocks {
		fmt.Printf("  block %d: %d 1Q gates, CZ %v\n", i, b.OneQ, b.Gates)
	}

	fmt.Println("\ncanonical QASM round-trip:")
	fmt.Print(powermove.WriteQASM(circ))

	run, err := powermove.CompileAndRun(circ, powermove.DefaultArch(circ.Qubits, 1),
		powermove.Options{UseStorage: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncompiled instruction stream:")
	fmt.Print(run.Compile.Program.Disassemble())
	fmt.Printf("\nfidelity %.4f, execution %.1f us\n", run.Execution.Fidelity, run.Execution.Time)
}
