// Quickstart: build a tiny circuit by hand, compile it with the full
// zoned pipeline (Stage Scheduler, Continuous Router, and Coll-Move
// Scheduler — Sec. 4, 5, and 6 of the paper), and inspect the schedule
// and its simulated metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"powermove"
)

func main() {
	// A 6-qubit circuit with two dependent blocks of commutable CZ
	// gates — the two stages of Fig. 3 of the paper: first the pairs
	// (0,1), (2,3), (4,5), then the shifted pairs (1,2), (3,4).
	circ := powermove.NewCircuit("figure3", 6)
	circ.AddBlock(6, // Hadamard layer on all qubits
		powermove.NewCZ(0, 1), powermove.NewCZ(2, 3), powermove.NewCZ(4, 5))
	circ.AddBlock(0,
		powermove.NewCZ(1, 2), powermove.NewCZ(3, 4))

	// The paper's default geometry: ceil(sqrt(6)) = 3, so a 3x3
	// computation grid over a 6x3 storage grid, one AOD array.
	hw := powermove.DefaultArch(circ.Qubits, 1)
	fmt.Println("hardware:", hw)

	run, err := powermove.CompileAndRun(circ, hw, powermove.Options{UseStorage: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncompiled instruction stream:")
	fmt.Print(run.Compile.Program.Disassemble())

	exec := run.Execution
	fmt.Printf("\nfidelity:  %.4f\n", exec.Fidelity)
	fmt.Printf("  two-qubit   %.4f\n", exec.Components.TwoQubit)
	fmt.Printf("  excitation  %.4f (1.0 = storage zone shields every idle qubit)\n", exec.Components.Excitation)
	fmt.Printf("  transfer    %.4f\n", exec.Components.Transfer)
	fmt.Printf("  decoherence %.4f\n", exec.Components.Decoherence)
	fmt.Printf("execution: %.1f us across %d Rydberg stages\n", exec.Time, exec.Stages)
	fmt.Printf("compile:   %s\n", run.Compile.Stats.CompileTime)
}
