// Storage-zone ablation on Bernstein-Vazirani (the Fig. 6 excitation
// ablation of Sec. 7.3 of the paper), the workload where the zoned
// architecture (Sec. 2.1) matters most: every CZ touches the shared ancilla,
// so the circuit serializes into many single-gate Rydberg stages and every
// idle qubit left in the computation zone pays excitation error at every
// pulse. Parking idle qubits in the storage zone removes that error class
// entirely (the excitation component pins to 1.0).
//
//	go run ./examples/zoned_storage
package main

import (
	"fmt"
	"log"

	"powermove"
)

func main() {
	fmt.Println("Bernstein-Vazirani: computation-zone-only vs zoned pipeline")
	fmt.Printf("%6s  %8s  %28s  %28s\n", "", "", "non-storage", "with-storage")
	fmt.Printf("%6s  %8s  %9s %9s %8s  %9s %9s %8s\n",
		"qubits", "stages", "fidelity", "excit.", "decoh.", "fidelity", "excit.", "decoh.")

	for _, n := range []int{14, 30, 50, 70} {
		circ := powermove.BV(n, int64(n))
		hw := powermove.DefaultArch(n, 1)

		flat, err := powermove.CompileAndRun(circ, hw, powermove.Options{UseStorage: false})
		if err != nil {
			log.Fatal(err)
		}
		zoned, err := powermove.CompileAndRun(circ, hw, powermove.Options{UseStorage: true})
		if err != nil {
			log.Fatal(err)
		}

		fe, fz := flat.Execution, zoned.Execution
		fmt.Printf("%6d  %8d  %9.2g %9.2g %8.3f  %9.2g %9.2g %8.3f\n",
			n, fe.Stages,
			fe.Fidelity, fe.Components.Excitation, fe.Components.Decoherence,
			fz.Fidelity, fz.Components.Excitation, fz.Components.Decoherence)
	}

	fmt.Println("\nWith storage, the excitation component is exactly 1.0: no idle")
	fmt.Println("qubit ever sits in the computation zone during a Rydberg pulse.")
	fmt.Println("The inter-zone movement this costs is scheduled move-ins-first")
	fmt.Println("(Sec. 6.1), so dwell time in storage — where decoherence is")
	fmt.Println("negligible — is maximized.")
}
