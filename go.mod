module powermove

go 1.23
