module powermove

go 1.24
