// Package arch models the zoned neutral-atom hardware the compiler targets:
// a computation zone and a storage zone, each a 2D grid of trap sites, plus
// the AOD resources available for collective movement (Sec. 2.1 and
// Sec. 7.1 of the paper).
//
// The default configuration follows Table 2 of the paper: for an n-qubit
// program with C = ceil(sqrt(n)), the computation zone is a C x C site
// grid, the storage zone is a 2C x C grid placed below it, and the two are
// separated by a 30 um inter-zone gap. Sites are 15 um apart, so the
// computation zone measures 15C x 15C um^2 and the storage zone
// 15C x 30C um^2.
package arch

import (
	"fmt"
	"math"

	"powermove/internal/geom"
	"powermove/internal/phys"
)

// Zone identifies which functional region of the plane a site belongs to.
type Zone int

const (
	// Compute is the computation zone, where the global Rydberg laser
	// executes CZ gates and exposes idle qubits to excitation error.
	Compute Zone = iota
	// Storage is the storage zone, where qubits are shielded from the
	// Rydberg laser and decoherence is negligible.
	Storage
)

// String implements fmt.Stringer.
func (z Zone) String() string {
	switch z {
	case Compute:
		return "compute"
	case Storage:
		return "storage"
	default:
		return fmt.Sprintf("zone(%d)", int(z))
	}
}

// Site identifies one trap site: a zone plus a (row, col) grid index.
// Row 0 is the bottom row of its zone; rows grow upward.
type Site struct {
	Zone Zone
	Row  int
	Col  int
}

// String implements fmt.Stringer.
func (s Site) String() string {
	return fmt.Sprintf("%s[%d,%d]", s.Zone, s.Row, s.Col)
}

// Arch is an immutable description of one hardware instance.
type Arch struct {
	// ComputeRows and ComputeCols give the computation-zone grid shape.
	ComputeRows, ComputeCols int
	// StorageRows and StorageCols give the storage-zone grid shape.
	StorageRows, StorageCols int
	// AODs is the number of independently movable AOD arrays available
	// for parallel collective moves (Sec. 6.2). At least 1.
	AODs int

	// computeSites and storageSites cache the row-major site lists;
	// Sites is on the router's per-stage hot path.
	computeSites, storageSites []Site
	// positions caches Pos for every site, indexed by SiteIndex.
	positions []geom.Point
}

// Config controls New. The zero value of each field selects the paper's
// default for that field.
type Config struct {
	// Qubits is the program size the hardware must host. Required.
	Qubits int
	// AODs is the number of AOD arrays; defaults to 1, the paper's
	// default configuration.
	AODs int
}

// New builds the default architecture of Sec. 7.1 for the given
// configuration. It panics if the qubit count is not positive.
func New(cfg Config) *Arch {
	if cfg.Qubits <= 0 {
		panic(fmt.Sprintf("arch: non-positive qubit count %d", cfg.Qubits))
	}
	aods := cfg.AODs
	if aods == 0 {
		aods = 1
	}
	if aods < 0 {
		panic(fmt.Sprintf("arch: negative AOD count %d", aods))
	}
	c := int(math.Ceil(math.Sqrt(float64(cfg.Qubits))))
	a := &Arch{
		ComputeRows: c,
		ComputeCols: c,
		StorageRows: 2 * c,
		StorageCols: c,
		AODs:        aods,
	}
	a.computeSites = a.buildSites(Compute)
	a.storageSites = a.buildSites(Storage)
	a.positions = make([]geom.Point, a.TotalSites())
	for _, s := range a.computeSites {
		a.positions[a.SiteIndex(s)] = a.computePos(s)
	}
	for _, s := range a.storageSites {
		a.positions[a.SiteIndex(s)] = a.computePos(s)
	}
	return a
}

// TotalSites returns the number of sites across both zones.
func (a *Arch) TotalSites() int { return a.ComputeSites() + a.StorageSites() }

// Fingerprint hashes every field compiled output depends on — the two
// grid shapes and the AOD count — so caches can compare architectures
// without holding the instances. Equal fingerprints on distinct
// instances mean interchangeable compilation targets (FNV-1a over the
// five dimensions).
func (a *Arch) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [...]int{a.ComputeRows, a.ComputeCols, a.StorageRows, a.StorageCols, a.AODs} {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime64
			u >>= 8
		}
	}
	return h
}

// SiteIndex returns a dense index for s in [0, TotalSites()): computation
// sites in row-major order first, then storage sites. The layout and the
// router use it to keep occupancy in flat slices instead of maps.
func (a *Arch) SiteIndex(s Site) int {
	if !a.InBounds(s) {
		panic(fmt.Sprintf("arch: site %v out of bounds", s))
	}
	if s.Zone == Compute {
		return s.Row*a.ComputeCols + s.Col
	}
	return a.ComputeSites() + s.Row*a.StorageCols + s.Col
}

// SiteAt inverts SiteIndex.
func (a *Arch) SiteAt(idx int) Site {
	if idx < 0 || idx >= a.TotalSites() {
		panic(fmt.Sprintf("arch: site index %d out of range [0, %d)", idx, a.TotalSites()))
	}
	if idx < a.ComputeSites() {
		return Site{Zone: Compute, Row: idx / a.ComputeCols, Col: idx % a.ComputeCols}
	}
	idx -= a.ComputeSites()
	return Site{Zone: Storage, Row: idx / a.StorageCols, Col: idx % a.StorageCols}
}

// ZoneIndexRange returns the half-open SiteIndex range [lo, hi) covered by
// zone z. Compute sites occupy [0, ComputeSites()), storage sites the rest;
// within a zone, ascending index order is exactly the row-major order of
// Sites. The router's nearest-empty-site scan iterates these ranges
// directly instead of materializing Site values.
func (a *Arch) ZoneIndexRange(z Zone) (lo, hi int) {
	switch z {
	case Compute:
		return 0, a.ComputeSites()
	case Storage:
		return a.ComputeSites(), a.TotalSites()
	default:
		panic(fmt.Sprintf("arch: unknown zone %v", z))
	}
}

// PosAt returns Pos(SiteAt(idx)) straight from the position cache, without
// materializing the Site. It is the hot-path variant of Pos.
func (a *Arch) PosAt(idx int) geom.Point {
	if idx < 0 || idx >= len(a.positions) {
		panic(fmt.Sprintf("arch: site index %d out of range [0, %d)", idx, len(a.positions)))
	}
	return a.positions[idx]
}

// ComputeSites returns the number of sites in the computation zone.
func (a *Arch) ComputeSites() int { return a.ComputeRows * a.ComputeCols }

// StorageSites returns the number of sites in the storage zone.
func (a *Arch) StorageSites() int { return a.StorageRows * a.StorageCols }

// InBounds reports whether s is a valid site of this architecture.
func (a *Arch) InBounds(s Site) bool {
	switch s.Zone {
	case Compute:
		return s.Row >= 0 && s.Row < a.ComputeRows && s.Col >= 0 && s.Col < a.ComputeCols
	case Storage:
		return s.Row >= 0 && s.Row < a.StorageRows && s.Col >= 0 && s.Col < a.StorageCols
	default:
		return false
	}
}

// storageTopY returns the y coordinate of the highest storage row.
func (a *Arch) storageTopY() float64 {
	return float64(a.StorageRows-1) * phys.SitePitch
}

// computeBaseY returns the y coordinate of the lowest computation row. The
// two zones are separated by the ZoneGap of Sec. 5.1.
func (a *Arch) computeBaseY() float64 {
	return a.storageTopY() + phys.ZoneGap
}

// Pos returns the physical position of site s, in micrometres. The storage
// grid starts at the origin; the computation grid sits above it across the
// inter-zone gap.
func (a *Arch) Pos(s Site) geom.Point {
	if a.positions != nil {
		return a.positions[a.SiteIndex(s)]
	}
	return a.computePos(s)
}

func (a *Arch) computePos(s Site) geom.Point {
	if !a.InBounds(s) {
		panic(fmt.Sprintf("arch: site %v out of bounds", s))
	}
	x := float64(s.Col) * phys.SitePitch
	switch s.Zone {
	case Compute:
		return geom.Pt(x, a.computeBaseY()+float64(s.Row)*phys.SitePitch)
	default:
		return geom.Pt(x, float64(s.Row)*phys.SitePitch)
	}
}

// ZoneRect returns the bounding rectangle of a zone's site grid, measured
// in full site cells (one pitch per row/column), matching the zone sizes
// reported in Table 2 of the paper.
func (a *Arch) ZoneRect(z Zone) geom.Rect {
	switch z {
	case Compute:
		base := a.computeBaseY()
		return geom.NewRect(
			geom.Pt(0, base),
			geom.Pt(float64(a.ComputeCols)*phys.SitePitch, base+float64(a.ComputeRows)*phys.SitePitch),
		)
	case Storage:
		return geom.NewRect(
			geom.Pt(0, 0),
			geom.Pt(float64(a.StorageCols)*phys.SitePitch, float64(a.StorageRows)*phys.SitePitch),
		)
	default:
		panic(fmt.Sprintf("arch: unknown zone %v", z))
	}
}

// InterZoneRect returns the rectangle of the empty band separating the two
// zones (the "Inter Zone" column of Table 2).
func (a *Arch) InterZoneRect() geom.Rect {
	top := a.storageTopY() + phys.SitePitch
	return geom.NewRect(
		geom.Pt(0, top),
		geom.Pt(float64(a.StorageCols)*phys.SitePitch, top+phys.ZoneGap),
	)
}

// Sites returns every site of zone z in row-major order (row 0 first).
// The returned slice is shared and must not be mutated.
func (a *Arch) Sites(z Zone) []Site {
	switch z {
	case Compute:
		if a.computeSites == nil {
			a.computeSites = a.buildSites(Compute)
		}
		return a.computeSites
	case Storage:
		if a.storageSites == nil {
			a.storageSites = a.buildSites(Storage)
		}
		return a.storageSites
	default:
		panic(fmt.Sprintf("arch: unknown zone %v", z))
	}
}

func (a *Arch) buildSites(z Zone) []Site {
	var rows, cols int
	if z == Compute {
		rows, cols = a.ComputeRows, a.ComputeCols
	} else {
		rows, cols = a.StorageRows, a.StorageCols
	}
	out := make([]Site, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out = append(out, Site{Zone: z, Row: r, Col: c})
		}
	}
	return out
}

// String summarizes the architecture in the format of Table 2.
func (a *Arch) String() string {
	cz := a.ZoneRect(Compute)
	iz := a.InterZoneRect()
	sz := a.ZoneRect(Storage)
	return fmt.Sprintf("compute %.0fx%.0f um^2, inter %.0fx%.0f um^2, storage %.0fx%.0f um^2, %d AOD(s)",
		cz.Width(), cz.Height(), iz.Width(), iz.Height(), sz.Width(), sz.Height(), a.AODs)
}
