package arch

import (
	"math"
	"testing"
	"testing/quick"

	"powermove/internal/phys"
)

func TestNewDefaultGeometry(t *testing.T) {
	a := New(Config{Qubits: 30})
	if a.ComputeRows != 6 || a.ComputeCols != 6 {
		t.Errorf("compute grid = %dx%d, want 6x6", a.ComputeRows, a.ComputeCols)
	}
	if a.StorageRows != 12 || a.StorageCols != 6 {
		t.Errorf("storage grid = %dx%d, want 12x6", a.StorageRows, a.StorageCols)
	}
	if a.AODs != 1 {
		t.Errorf("default AODs = %d, want 1", a.AODs)
	}
	if a.ComputeSites() != 36 || a.StorageSites() != 72 || a.TotalSites() != 108 {
		t.Error("site counts wrong")
	}
}

// TestTable2ZoneSizes reproduces the zone-size columns of Table 2 of the
// paper for every benchmark size (experiment E2): compute
// 15C x 15C um^2, inter-zone 15C x 30 um^2, storage 15C x 30C um^2 with
// C = ceil(sqrt(n)).
func TestTable2ZoneSizes(t *testing.T) {
	cases := []struct {
		n                 int
		compute, storageH float64 // side of compute zone; height of storage
	}{
		{30, 90, 180},
		{40, 105, 210},
		{50, 120, 240},
		{60, 120, 240},
		{80, 135, 270},
		{100, 150, 300},
		{20, 75, 150},
		{18, 75, 150},
		{29, 90, 180},
		{14, 60, 120},
		{10, 60, 120},
	}
	for _, tc := range cases {
		a := New(Config{Qubits: tc.n})
		cz := a.ZoneRect(Compute)
		iz := a.InterZoneRect()
		sz := a.ZoneRect(Storage)
		if cz.Width() != tc.compute || cz.Height() != tc.compute {
			t.Errorf("n=%d: compute zone %vx%v, want %vx%v", tc.n, cz.Width(), cz.Height(), tc.compute, tc.compute)
		}
		if iz.Width() != tc.compute || iz.Height() != phys.ZoneGap {
			t.Errorf("n=%d: inter zone %vx%v, want %vx%v", tc.n, iz.Width(), iz.Height(), tc.compute, phys.ZoneGap)
		}
		if sz.Width() != tc.compute || sz.Height() != tc.storageH {
			t.Errorf("n=%d: storage zone %vx%v, want %vx%v", tc.n, sz.Width(), sz.Height(), tc.compute, tc.storageH)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero qubits":   {Qubits: 0},
		"negative AODs": {Qubits: 4, AODs: -1},
	} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		})
	}
}

func TestInBounds(t *testing.T) {
	a := New(Config{Qubits: 9}) // 3x3 compute, 6x3 storage
	good := []Site{
		{Compute, 0, 0}, {Compute, 2, 2}, {Storage, 0, 0}, {Storage, 5, 2},
	}
	for _, s := range good {
		if !a.InBounds(s) {
			t.Errorf("InBounds(%v) = false", s)
		}
	}
	bad := []Site{
		{Compute, 3, 0}, {Compute, 0, 3}, {Compute, -1, 0},
		{Storage, 6, 0}, {Storage, 0, -1}, {Zone(9), 0, 0},
	}
	for _, s := range bad {
		if a.InBounds(s) {
			t.Errorf("InBounds(%v) = true", s)
		}
	}
}

// TestZoneSeparation: the nearest compute and storage sites are exactly
// one ZoneGap apart vertically, and zone rectangles do not overlap.
func TestZoneSeparation(t *testing.T) {
	a := New(Config{Qubits: 16})
	topStorage := a.Pos(Site{Storage, a.StorageRows - 1, 0})
	bottomCompute := a.Pos(Site{Compute, 0, 0})
	if gap := bottomCompute.Y - topStorage.Y; gap != phys.ZoneGap {
		t.Errorf("vertical gap = %v, want %v", gap, phys.ZoneGap)
	}
	if a.ZoneRect(Compute).Intersects(a.ZoneRect(Storage)) {
		t.Error("zone rectangles overlap")
	}
}

// TestSitePitch: adjacent sites in either zone are one pitch apart.
func TestSitePitch(t *testing.T) {
	a := New(Config{Qubits: 25})
	right := a.Pos(Site{Compute, 0, 1}).Sub(a.Pos(Site{Compute, 0, 0}))
	up := a.Pos(Site{Compute, 1, 0}).Sub(a.Pos(Site{Compute, 0, 0}))
	if right.X != phys.SitePitch || right.Y != 0 {
		t.Errorf("column step = %v", right)
	}
	if up.X != 0 || up.Y != phys.SitePitch {
		t.Errorf("row step = %v", up)
	}
	sRight := a.Pos(Site{Storage, 0, 1}).Sub(a.Pos(Site{Storage, 0, 0}))
	if sRight.X != phys.SitePitch {
		t.Errorf("storage column step = %v", sRight)
	}
}

// TestSiteIndexRoundTrip: SiteAt inverts SiteIndex over every site, and
// indices are dense and unique.
func TestSiteIndexRoundTrip(t *testing.T) {
	a := New(Config{Qubits: 23})
	seen := make([]bool, a.TotalSites())
	for _, z := range []Zone{Compute, Storage} {
		for _, s := range a.Sites(z) {
			idx := a.SiteIndex(s)
			if idx < 0 || idx >= a.TotalSites() {
				t.Fatalf("index %d out of range for %v", idx, s)
			}
			if seen[idx] {
				t.Fatalf("duplicate index %d", idx)
			}
			seen[idx] = true
			if back := a.SiteAt(idx); back != s {
				t.Fatalf("SiteAt(SiteIndex(%v)) = %v", s, back)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d unused — indices not dense", i)
		}
	}
}

func TestSiteIndexPanics(t *testing.T) {
	a := New(Config{Qubits: 4})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SiteIndex(out of bounds) did not panic")
			}
		}()
		a.SiteIndex(Site{Compute, 9, 9})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SiteAt(out of range) did not panic")
			}
		}()
		a.SiteAt(a.TotalSites())
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Pos(out of bounds) did not panic")
			}
		}()
		a.Pos(Site{Storage, -1, 0})
	}()
}

// TestSitesRowMajor: Sites enumerates row 0 first, columns ascending.
func TestSitesRowMajor(t *testing.T) {
	a := New(Config{Qubits: 9})
	sites := a.Sites(Compute)
	if len(sites) != 9 {
		t.Fatalf("len(Sites) = %d, want 9", len(sites))
	}
	if sites[0] != (Site{Compute, 0, 0}) || sites[1] != (Site{Compute, 0, 1}) || sites[3] != (Site{Compute, 1, 0}) {
		t.Errorf("Sites not row-major: %v", sites[:4])
	}
}

// TestCeilSqrtScaling drives the C = ceil(sqrt(n)) rule through quick.
func TestCeilSqrtScaling(t *testing.T) {
	f := func(raw uint8) bool {
		n := 1 + int(raw%200)
		a := New(Config{Qubits: n})
		c := int(math.Ceil(math.Sqrt(float64(n))))
		return a.ComputeRows == c && a.ComputeCols == c &&
			a.StorageRows == 2*c && a.StorageCols == c &&
			a.ComputeSites() >= n && a.StorageSites() >= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZoneString(t *testing.T) {
	if Compute.String() != "compute" || Storage.String() != "storage" {
		t.Error("Zone.String wrong")
	}
	if (Site{Storage, 2, 3}).String() != "storage[2,3]" {
		t.Errorf("Site.String = %q", Site{Storage, 2, 3})
	}
}
