// Package bitset provides a dense, reusable set of small non-negative
// integers for the compiler's hot paths. The router, stage scheduler, and
// graph algorithms previously tracked qubit and occupancy sets in
// map[int]bool; a flat word array makes membership a shift-and-mask,
// supports word-at-a-time difference counts for the stage-ordering
// objective, and — unlike a map — can be cleared and reused without
// re-allocating, which matters when a set is rebuilt once per Rydberg
// stage.
package bitset

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Set is a fixed-universe bitset over [0, Len()). The zero value is an
// empty set over an empty universe; use New or Reset to size it.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	s := &Set{}
	s.Reset(n)
	return s
}

// Reset clears the set and resizes its universe to [0, n), reusing the
// existing allocation when it is large enough.
func (s *Set) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative universe size %d", n))
	}
	words := (n + wordBits - 1) / wordBits
	if cap(s.words) < words {
		s.words = make([]uint64, words)
	} else {
		s.words = s.words[:words]
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.n = n
}

// Len returns the universe size.
func (s *Set) Len() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d outside universe [0, %d)", i, s.n))
	}
}

// Add inserts i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of members.
func (s *Set) Count() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// NextSet returns the smallest member >= i, or -1 if there is none.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// NextClear returns the smallest non-member >= i, or -1 if every index of
// [i, Len()) is a member.
func (s *Set) NextClear(i int) int {
	if i < 0 {
		i = 0
	}
	for i < s.n {
		wi := i / wordBits
		w := ^s.words[wi] >> uint(i%wordBits)
		if w != 0 {
			j := i + bits.TrailingZeros64(w)
			if j < s.n {
				return j
			}
			return -1
		}
		i = (wi + 1) * wordBits
	}
	return -1
}

// AndNotCount returns |s \ o|: the number of members of s that are not
// members of o. The two sets may have different universe sizes; indexes
// beyond o's universe count as absent from o.
func (s *Set) AndNotCount(o *Set) int {
	total := 0
	for i, w := range s.words {
		if i < len(o.words) {
			w &^= o.words[i]
		}
		total += bits.OnesCount64(w)
	}
	return total
}
