package bitset

import (
	"math/rand"
	"testing"
)

// TestDifferentialAgainstMap drives a Set and a map[int]bool with the same
// random operation stream and asserts every query agrees — the reference
// semantics the hot paths swapped away from.
func TestDifferentialAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		s := New(n)
		ref := make(map[int]bool)
		for op := 0; op < 500; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Add(i)
				ref[i] = true
			case 1:
				s.Remove(i)
				delete(ref, i)
			default:
				if s.Contains(i) != ref[i] {
					t.Fatalf("trial %d: Contains(%d) = %v, ref %v", trial, i, s.Contains(i), ref[i])
				}
			}
		}
		if s.Count() != len(ref) {
			t.Fatalf("trial %d: Count = %d, ref %d", trial, s.Count(), len(ref))
		}
		for i := 0; i < n; i++ {
			if s.Contains(i) != ref[i] {
				t.Fatalf("trial %d: final Contains(%d) mismatch", trial, i)
			}
		}
	}
}

func TestNextSetNextClear(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		s := New(n)
		ref := make([]bool, n)
		for k := 0; k < n/2; k++ {
			i := rng.Intn(n)
			s.Add(i)
			ref[i] = true
		}
		for start := 0; start <= n; start++ {
			wantSet, wantClear := -1, -1
			for i := start; i < n; i++ {
				if ref[i] && wantSet < 0 {
					wantSet = i
				}
				if !ref[i] && wantClear < 0 {
					wantClear = i
				}
			}
			if got := s.NextSet(start); got != wantSet {
				t.Fatalf("trial %d: NextSet(%d) = %d, want %d", trial, start, got, wantSet)
			}
			if got := s.NextClear(start); got != wantClear {
				t.Fatalf("trial %d: NextClear(%d) = %d, want %d", trial, start, got, wantClear)
			}
		}
	}
}

func TestAndNotCount(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		na, nb := 1+rng.Intn(200), 1+rng.Intn(200)
		a, b := New(na), New(nb)
		ma, mb := make(map[int]bool), make(map[int]bool)
		for k := 0; k < na/2; k++ {
			i := rng.Intn(na)
			a.Add(i)
			ma[i] = true
		}
		for k := 0; k < nb/2; k++ {
			i := rng.Intn(nb)
			b.Add(i)
			mb[i] = true
		}
		want := 0
		for i := range ma {
			if !mb[i] {
				want++
			}
		}
		if got := a.AndNotCount(b); got != want {
			t.Fatalf("trial %d: AndNotCount = %d, want %d", trial, got, want)
		}
	}
}

func TestResetReuses(t *testing.T) {
	s := New(128)
	s.Add(0)
	s.Add(127)
	s.Reset(64)
	if s.Len() != 64 || s.Count() != 0 {
		t.Fatalf("Reset left Len=%d Count=%d", s.Len(), s.Count())
	}
	s.Add(63)
	if !s.Contains(63) || s.Contains(0) {
		t.Fatal("Reset did not clear")
	}
	// Growing again must not resurrect stale bits beyond the old universe.
	s.Reset(128)
	if s.Count() != 0 {
		t.Fatalf("grow after shrink resurrected %d bits", s.Count())
	}
}

func TestPanics(t *testing.T) {
	s := New(10)
	for _, f := range []func(){
		func() { s.Add(10) },
		func() { s.Add(-1) },
		func() { s.Contains(10) },
		func() { s.Remove(-1) },
		func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEmptyUniverse(t *testing.T) {
	s := New(0)
	if s.NextSet(0) != -1 || s.NextClear(0) != -1 || s.Count() != 0 {
		t.Error("empty-universe queries wrong")
	}
}
