// Package cache provides a generic, size-bounded LRU cache with hit,
// miss, and eviction accounting, safe for concurrent use. It is the
// storage substrate shared by the batch engine's keyed result cache
// (internal/pipeline) and the compile service's shared response cache
// (internal/service): both need "compute once, reuse everywhere"
// semantics over bounded memory, and both report their counters — the
// pipeline in its run stats, the service on /metrics.
//
// The cache stores values, not computations. Callers that must compute a
// value at most once per key (singleflight) store a handle whose
// computation is guarded separately — see pipeline.Cache for the idiom —
// so the cache lock is never held across a compute.
package cache

import (
	"container/list"
	"sync"
)

// LRU is a keyed cache bounded to a fixed number of entries, evicting the
// least recently used entry when a put exceeds capacity. The zero value
// is not usable; construct with New. All methods are safe for concurrent
// use.
type LRU[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *lruEntry[K, V]
	items map[K]*list.Element
	stats Stats
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// Stats is a snapshot of a cache's accounting.
type Stats struct {
	// Hits counts Get and GetOrAdd calls that found their key.
	Hits uint64 `json:"hits"`
	// Misses counts Get and GetOrAdd calls that did not.
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped to respect capacity.
	Evictions uint64 `json:"evictions"`
	// Size is the current entry count.
	Size int `json:"size"`
	// Capacity is the configured bound; 0 means unbounded.
	Capacity int `json:"capacity"`
}

// New returns an empty LRU holding at most capacity entries. A capacity
// of 0 (or negative) means unbounded: the cache never evicts, which is
// the right default for deterministic batch runs whose working set is the
// job list itself.
func New[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 0 {
		capacity = 0
	}
	return &LRU[K, V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[K]*list.Element),
	}
}

// Get returns the value for key and marks it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.stats.Hits++
		c.order.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// Put inserts or replaces the value for key, marks it most recently
// used, and evicts the least recently used entry if the insert exceeded
// capacity.
func (c *LRU[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, val)
}

// GetOrAdd returns the value for key if present (marking it most
// recently used), otherwise stores and returns create(). The boolean
// reports whether the key was already present. create runs under the
// cache lock and must therefore be cheap — allocate a handle, don't
// compute through it (see the package comment).
func (c *LRU[K, V]) GetOrAdd(key K, create func() V) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.stats.Hits++
		c.order.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val, true
	}
	c.stats.Misses++
	val := create()
	c.put(key, val)
	return val, false
}

// put inserts or replaces key with the lock held.
func (c *LRU[K, V]) put(key K, val V) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[K, V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry[K, V]{key: key, val: val})
	if c.cap > 0 && len(c.items) > c.cap {
		oldest := c.order.Back()
		entry := oldest.Value.(*lruEntry[K, V])
		c.order.Remove(oldest)
		delete(c.items, entry.key)
		c.stats.Evictions++
	}
}

// Remove drops key if present, reporting whether it was.
func (c *LRU[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.items, key)
	return true
}

// Len returns the current entry count.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Keys returns the cached keys from most to least recently used.
func (c *LRU[K, V]) Keys() []K {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]K, 0, len(c.items))
	for el := c.order.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*lruEntry[K, V]).key)
	}
	return keys
}

// Stats returns a snapshot of the cache's accounting.
func (c *LRU[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = len(c.items)
	s.Capacity = c.cap
	return s
}
