package cache

import (
	"fmt"
	"sync"
	"testing"
)

// TestEvictionOrder verifies the least-recently-used entry is the one
// evicted, with Get and Put both counting as use.
func TestEvictionOrder(t *testing.T) {
	c := New[string, int](3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)

	// Touch a, making b the LRU; inserting d must evict b.
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; want it dropped as LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s missing after eviction of b", k)
		}
	}

	// Re-putting an existing key refreshes recency rather than growing.
	c.Put("c", 33)
	c.Put("e", 5) // LRU is now a (d, c refreshed after it)
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived; want it dropped as LRU after c was refreshed")
	}
	if v, _ := c.Get("c"); v != 33 {
		t.Fatalf("c = %d after re-put; want 33", v)
	}
}

// TestCapacityBound verifies the entry count never exceeds capacity and
// that zero capacity means unbounded.
func TestCapacityBound(t *testing.T) {
	c := New[int, int](5)
	for i := 0; i < 100; i++ {
		c.Put(i, i)
		if n := c.Len(); n > 5 {
			t.Fatalf("len = %d after %d puts; capacity is 5", n, i+1)
		}
	}
	if n := c.Len(); n != 5 {
		t.Fatalf("len = %d after 100 puts; want 5", n)
	}
	if keys := c.Keys(); len(keys) != 5 || keys[0] != 99 || keys[4] != 95 {
		t.Fatalf("keys = %v; want [99 98 97 96 95]", keys)
	}

	u := New[int, int](0)
	for i := 0; i < 1000; i++ {
		u.Put(i, i)
	}
	if n := u.Len(); n != 1000 {
		t.Fatalf("unbounded len = %d; want 1000", n)
	}
	if ev := u.Stats().Evictions; ev != 0 {
		t.Fatalf("unbounded cache evicted %d entries", ev)
	}
}

// TestCounterAccuracy verifies hits, misses, and evictions count exactly.
func TestCounterAccuracy(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "one")
	c.Put(2, "two")

	c.Get(1)     // hit
	c.Get(3)     // miss
	c.Get(2)     // hit
	c.Put(3, "") // evicts 1
	c.Get(1)     // miss

	got := c.Stats()
	want := Stats{Hits: 2, Misses: 2, Evictions: 1, Size: 2, Capacity: 2}
	if got != want {
		t.Fatalf("stats = %+v; want %+v", got, want)
	}

	// GetOrAdd counts once per call: a miss when it creates, a hit after.
	if _, existed := c.GetOrAdd(9, func() string { return "nine" }); existed {
		t.Fatal("GetOrAdd(9) reported existing on first call")
	}
	if v, existed := c.GetOrAdd(9, func() string { return "other" }); !existed || v != "nine" {
		t.Fatalf("GetOrAdd(9) second call = %q, %v; want nine, true", v, existed)
	}
	got = c.Stats()
	if got.Hits != 3 || got.Misses != 3 {
		t.Fatalf("after GetOrAdd: hits=%d misses=%d; want 3, 3", got.Hits, got.Misses)
	}
}

// TestRemove verifies removal and its interaction with Len.
func TestRemove(t *testing.T) {
	c := New[string, int](0)
	c.Put("x", 1)
	if !c.Remove("x") {
		t.Fatal("Remove(x) = false; want true")
	}
	if c.Remove("x") {
		t.Fatal("second Remove(x) = true; want false")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after remove; want 0", c.Len())
	}
}

// TestConcurrentAccess hammers one small cache from many goroutines; run
// under -race it checks the locking discipline, and afterwards the
// capacity bound and counter consistency must still hold.
func TestConcurrentAccess(t *testing.T) {
	const (
		goroutines = 16
		ops        = 500
		capacity   = 8
	)
	c := New[int, int](capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := (g*ops + i) % 32
				switch i % 4 {
				case 0:
					c.Put(k, i)
				case 1:
					c.Get(k)
				case 2:
					c.GetOrAdd(k, func() int { return i })
				case 3:
					c.Keys()
				}
			}
		}(g)
	}
	wg.Wait()

	if n := c.Len(); n > capacity {
		t.Fatalf("len = %d; capacity is %d", n, capacity)
	}
	s := c.Stats()
	gets := goroutines * ops / 2 // ops%4 in {1,2} consult the cache
	if s.Hits+s.Misses != uint64(gets) {
		t.Fatalf("hits+misses = %d; want %d", s.Hits+s.Misses, gets)
	}
}

// TestStress covers mixed workloads across capacities, as a guard on the
// list/map bookkeeping staying consistent.
func TestStress(t *testing.T) {
	for _, capacity := range []int{1, 2, 7, 64} {
		t.Run(fmt.Sprintf("cap=%d", capacity), func(t *testing.T) {
			c := New[int, int](capacity)
			for i := 0; i < 10_000; i++ {
				c.Put(i%(capacity*3), i)
				c.Get(i % (capacity * 2))
				if n := c.Len(); n > capacity {
					t.Fatalf("len = %d > capacity %d", n, capacity)
				}
			}
			if got := len(c.Keys()); got != c.Len() {
				t.Fatalf("Keys() has %d entries, Len() = %d", got, c.Len())
			}
		})
	}
}
