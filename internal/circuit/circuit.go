// Package circuit defines the intermediate representation that the
// PowerMove compiler consumes: a quantum circuit synthesized into
// alternating layers of single-qubit gates and blocks of commutable CZ
// gates (Sec. 2.2 of the paper).
//
// Single-qubit layers execute in parallel across the whole plane and need
// no routing, so the IR only records how many 1Q gates each layer applies.
// CZ blocks carry the full gate list; gates within one block commute and
// may be partitioned into parallel Rydberg stages by the stage scheduler,
// while distinct blocks are dependent and must execute in order.
package circuit

import (
	"fmt"
	"sort"
)

// CZ is a two-qubit controlled-Z gate between qubits A and B. CZ is
// symmetric, so the constructor normalizes A < B; two CZ values are equal
// exactly when they act on the same qubit pair.
type CZ struct {
	A, B int
}

// NewCZ returns the normalized CZ gate on qubits a and b.
// It panics if a == b or either index is negative, because such a gate can
// never be part of a well-formed circuit.
func NewCZ(a, b int) CZ {
	if a == b {
		panic(fmt.Sprintf("circuit: CZ on identical qubits %d", a))
	}
	if a < 0 || b < 0 {
		panic(fmt.Sprintf("circuit: CZ on negative qubit (%d, %d)", a, b))
	}
	if a > b {
		a, b = b, a
	}
	return CZ{A: a, B: b}
}

// Other returns the partner of qubit q in the gate.
// It panics if q is not acted on by the gate.
func (g CZ) Other(q int) int {
	switch q {
	case g.A:
		return g.B
	case g.B:
		return g.A
	default:
		panic(fmt.Sprintf("circuit: qubit %d not in gate %v", q, g))
	}
}

// Acts reports whether the gate acts on qubit q.
func (g CZ) Acts(q int) bool { return g.A == q || g.B == q }

// Overlaps reports whether g and h share at least one qubit. Overlapping
// gates cannot execute in the same Rydberg stage.
func (g CZ) Overlaps(h CZ) bool {
	return g.A == h.A || g.A == h.B || g.B == h.A || g.B == h.B
}

// String implements fmt.Stringer.
func (g CZ) String() string { return fmt.Sprintf("CZ(%d,%d)", g.A, g.B) }

// Block is one dependent CZ block: a set of commutable CZ gates preceded by
// a layer of OneQ single-qubit gates. Blocks execute in circuit order;
// gates inside a block may be reordered and parallelized freely.
type Block struct {
	// OneQ is the number of single-qubit gates in the layer that
	// precedes the block's CZ gates. It contributes only the f1^g1 term
	// of the fidelity formula and a 1 us layer duration when positive.
	OneQ int
	// Gates are the commutable CZ gates of the block.
	Gates []CZ
}

// Qubits returns the sorted set of qubits the block's CZ gates act on.
func (b *Block) Qubits() []int {
	seen := make(map[int]bool, 2*len(b.Gates))
	for _, g := range b.Gates {
		seen[g.A] = true
		seen[g.B] = true
	}
	out := make([]int, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// Circuit is a full program in the synthesized form the compiler consumes.
type Circuit struct {
	// Name identifies the workload (for example "QAOA-regular3-30").
	Name string
	// Qubits is the number of program qubits; gates may only reference
	// indices in [0, Qubits).
	Qubits int
	// Blocks are the dependent CZ blocks in execution order.
	Blocks []Block
}

// New returns an empty circuit on n qubits.
// It panics if n is not positive.
func New(name string, n int) *Circuit {
	if n <= 0 {
		panic(fmt.Sprintf("circuit: non-positive qubit count %d", n))
	}
	return &Circuit{Name: name, Qubits: n}
}

// AddBlock appends a block with the given 1Q-layer size and CZ gates.
func (c *Circuit) AddBlock(oneQ int, gates ...CZ) {
	c.Blocks = append(c.Blocks, Block{OneQ: oneQ, Gates: gates})
}

// CZCount returns the total number of CZ gates in the circuit (the g2
// exponent of the output-fidelity formula).
func (c *Circuit) CZCount() int {
	n := 0
	for i := range c.Blocks {
		n += len(c.Blocks[i].Gates)
	}
	return n
}

// OneQCount returns the total number of single-qubit gates (the g1
// exponent of the output-fidelity formula).
func (c *Circuit) OneQCount() int {
	n := 0
	for i := range c.Blocks {
		n += c.Blocks[i].OneQ
	}
	return n
}

// MaxDegree returns, over all blocks, the maximum number of CZ gates any
// single qubit participates in within one block. It lower-bounds the number
// of Rydberg stages the block needs.
func (c *Circuit) MaxDegree() int {
	max := 0
	for i := range c.Blocks {
		deg := make(map[int]int)
		for _, g := range c.Blocks[i].Gates {
			deg[g.A]++
			deg[g.B]++
			if deg[g.A] > max {
				max = deg[g.A]
			}
			if deg[g.B] > max {
				max = deg[g.B]
			}
		}
	}
	return max
}

// Validate checks the structural invariants of the circuit: every gate
// references qubits inside [0, Qubits), and no block repeats a gate. It
// returns the first violation found, or nil.
func (c *Circuit) Validate() error {
	if c.Qubits <= 0 {
		return fmt.Errorf("circuit %q: non-positive qubit count %d", c.Name, c.Qubits)
	}
	for bi := range c.Blocks {
		b := &c.Blocks[bi]
		if b.OneQ < 0 {
			return fmt.Errorf("circuit %q block %d: negative 1Q gate count %d", c.Name, bi, b.OneQ)
		}
		seen := make(map[CZ]bool, len(b.Gates))
		for _, g := range b.Gates {
			if g.A < 0 || g.B >= c.Qubits || g.A >= g.B {
				return fmt.Errorf("circuit %q block %d: gate %v out of range for %d qubits", c.Name, bi, g, c.Qubits)
			}
			if seen[g] {
				return fmt.Errorf("circuit %q block %d: duplicate gate %v", c.Name, bi, g)
			}
			seen[g] = true
		}
	}
	return nil
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Name: c.Name, Qubits: c.Qubits, Blocks: make([]Block, len(c.Blocks))}
	for i := range c.Blocks {
		out.Blocks[i].OneQ = c.Blocks[i].OneQ
		out.Blocks[i].Gates = append([]CZ(nil), c.Blocks[i].Gates...)
	}
	return out
}

// String summarizes the circuit without dumping every gate.
func (c *Circuit) String() string {
	return fmt.Sprintf("%s: %d qubits, %d blocks, %d CZ, %d 1Q",
		c.Name, c.Qubits, len(c.Blocks), c.CZCount(), c.OneQCount())
}
