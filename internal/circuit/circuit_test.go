package circuit

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewCZNormalizes(t *testing.T) {
	g := NewCZ(5, 2)
	if g.A != 2 || g.B != 5 {
		t.Fatalf("NewCZ(5, 2) = %v, want CZ(2,5)", g)
	}
	if NewCZ(2, 5) != g {
		t.Error("NewCZ is not orientation-independent")
	}
}

func TestNewCZPanics(t *testing.T) {
	for _, pair := range [][2]int{{3, 3}, {-1, 2}, {2, -1}} {
		pair := pair
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCZ(%d, %d) did not panic", pair[0], pair[1])
				}
			}()
			NewCZ(pair[0], pair[1])
		}()
	}
}

func TestCZOther(t *testing.T) {
	g := NewCZ(1, 4)
	if g.Other(1) != 4 || g.Other(4) != 1 {
		t.Error("Other returned wrong partner")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other(non-member) did not panic")
		}
	}()
	g.Other(2)
}

func TestCZActsAndOverlaps(t *testing.T) {
	g := NewCZ(1, 4)
	if !g.Acts(1) || !g.Acts(4) || g.Acts(2) {
		t.Error("Acts wrong")
	}
	cases := []struct {
		h    CZ
		want bool
	}{
		{NewCZ(1, 4), true},
		{NewCZ(4, 7), true},
		{NewCZ(0, 1), true},
		{NewCZ(2, 3), false},
	}
	for _, c := range cases {
		if got := g.Overlaps(c.h); got != c.want {
			t.Errorf("Overlaps(%v, %v) = %v, want %v", g, c.h, got, c.want)
		}
		if got := c.h.Overlaps(g); got != c.want {
			t.Errorf("Overlaps not symmetric for %v", c.h)
		}
	}
}

// TestOverlapsSymmetric checks symmetry on arbitrary gate pairs.
func TestOverlapsSymmetric(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		if a == b || c == d {
			return true
		}
		g := NewCZ(int(a), int(b))
		h := NewCZ(int(c), int(d))
		return g.Overlaps(h) == h.Overlaps(g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockQubits(t *testing.T) {
	b := Block{Gates: []CZ{NewCZ(4, 1), NewCZ(2, 7)}}
	got := b.Qubits()
	want := []int{1, 2, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("Qubits() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Qubits() = %v, want %v", got, want)
		}
	}
}

func TestCircuitCounts(t *testing.T) {
	c := New("test", 8)
	c.AddBlock(8, NewCZ(0, 1), NewCZ(2, 3))
	c.AddBlock(3, NewCZ(0, 2))
	c.AddBlock(1)
	if got := c.CZCount(); got != 3 {
		t.Errorf("CZCount = %d, want 3", got)
	}
	if got := c.OneQCount(); got != 12 {
		t.Errorf("OneQCount = %d, want 12", got)
	}
	if got := len(c.Blocks); got != 3 {
		t.Errorf("blocks = %d, want 3", got)
	}
}

func TestMaxDegree(t *testing.T) {
	c := New("deg", 5)
	c.AddBlock(0, NewCZ(0, 1), NewCZ(0, 2), NewCZ(0, 3)) // qubit 0 in 3 gates
	c.AddBlock(0, NewCZ(1, 2))
	if got := c.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
	if got := New("empty", 2).MaxDegree(); got != 0 {
		t.Errorf("MaxDegree(empty) = %d, want 0", got)
	}
}

func TestValidate(t *testing.T) {
	good := New("ok", 4)
	good.AddBlock(4, NewCZ(0, 1), NewCZ(2, 3))
	if err := good.Validate(); err != nil {
		t.Fatalf("valid circuit rejected: %v", err)
	}

	outOfRange := New("oob", 3)
	outOfRange.AddBlock(0, NewCZ(1, 5))
	if err := outOfRange.Validate(); err == nil {
		t.Error("out-of-range gate accepted")
	}

	dup := New("dup", 4)
	dup.AddBlock(0, NewCZ(0, 1), NewCZ(1, 0))
	if err := dup.Validate(); err == nil {
		t.Error("duplicate gate within a block accepted")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate error = %v, want mention of duplicate", err)
	}

	negOneQ := New("neg", 2)
	negOneQ.Blocks = []Block{{OneQ: -1}}
	if err := negOneQ.Validate(); err == nil {
		t.Error("negative 1Q count accepted")
	}

	// Duplicates across different blocks are fine: blocks are
	// dependent and execute in order.
	crossDup := New("cross", 4)
	crossDup.AddBlock(0, NewCZ(0, 1))
	crossDup.AddBlock(0, NewCZ(0, 1))
	if err := crossDup.Validate(); err != nil {
		t.Errorf("cross-block repeat rejected: %v", err)
	}
}

func TestNewPanicsOnBadQubitCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0 qubits) did not panic")
		}
	}()
	New("bad", 0)
}

func TestCloneIsDeep(t *testing.T) {
	c := New("orig", 4)
	c.AddBlock(2, NewCZ(0, 1))
	d := c.Clone()
	d.Blocks[0].Gates[0] = NewCZ(2, 3)
	d.Blocks[0].OneQ = 99
	if c.Blocks[0].Gates[0] != NewCZ(0, 1) || c.Blocks[0].OneQ != 2 {
		t.Error("Clone shares storage with the original")
	}
}

func TestString(t *testing.T) {
	c := New("qft", 4)
	c.AddBlock(1, NewCZ(0, 1), NewCZ(0, 2))
	got := c.String()
	for _, piece := range []string{"qft", "4 qubits", "1 blocks", "2 CZ", "1 1Q"} {
		if !strings.Contains(got, piece) {
			t.Errorf("String() = %q, missing %q", got, piece)
		}
	}
	if got := NewCZ(0, 3).String(); got != "CZ(0,3)" {
		t.Errorf("CZ.String = %q", got)
	}
}
