// Package collsched implements the Coll-Move Scheduler of Sec. 6 of the
// paper: the intra-stage scheduler that orders collective moves to
// maximize qubit dwell time in the storage zone, and the multi-AOD
// scheduler that batches ordered Coll-Moves across independent AOD arrays
// for parallel execution.
package collsched

import (
	"fmt"
	"sort"

	"powermove/internal/isa"
	"powermove/internal/move"
)

// OrderByStorageFlow implements the intra-stage scheduler (Sec. 6.1): it
// returns the Coll-Moves sorted in descending order of
// (move-in count - move-out count) with respect to the storage zone, so
// moves that bring qubits *into* storage run first and moves that pull
// qubits *out* run last. Qubits therefore spend the largest possible
// fraction of the layout transition shielded in storage. The sort is
// stable, preserving the grouping order for equal keys; the input is not
// modified.
func OrderByStorageFlow(groups []move.CollMove) []move.CollMove {
	out := append([]move.CollMove(nil), groups...)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].NetStorageFlow() > out[j].NetStorageFlow()
	})
	return out
}

// Batch implements the multi-AOD scheduler (Sec. 6.2): given the ordered
// Coll-Moves G'_1..G'_k and n AOD arrays, it forms ceil(k/n) parallel
// batches {G'_1..G'_n}, {G'_{n+1}..G'_{2n}}, ... Each batch executes its
// groups simultaneously on distinct AODs; the batch's duration is one
// transfer overhead plus the slowest member's movement time. Moves on
// distinct AODs may conflict under the single-AOD predicate, because
// separate arrays operate independently.
//
// It panics if aods is not positive.
func Batch(groups []move.CollMove, aods int) []isa.MoveBatch {
	if aods <= 0 {
		panic(fmt.Sprintf("collsched: non-positive AOD count %d", aods))
	}
	var batches []isa.MoveBatch
	for start := 0; start < len(groups); start += aods {
		end := start + aods
		if end > len(groups) {
			end = len(groups)
		}
		batches = append(batches, isa.MoveBatch{
			Groups: append([]move.CollMove(nil), groups[start:end]...),
		})
	}
	return batches
}

// TotalDuration returns the wall-clock time of the batches executed in
// sequence, in microseconds.
func TotalDuration(batches []isa.MoveBatch) float64 {
	total := 0.0
	for _, b := range batches {
		total += b.Duration()
	}
	return total
}
