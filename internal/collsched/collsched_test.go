package collsched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"powermove/internal/arch"
	"powermove/internal/move"
	"powermove/internal/phys"
)

func testArch() *arch.Arch { return arch.New(arch.Config{Qubits: 16}) }

func intoStorage(a *arch.Arch, q, col int) move.Move {
	return move.New(a, q,
		arch.Site{Zone: arch.Compute, Row: 0, Col: col},
		arch.Site{Zone: arch.Storage, Row: 7, Col: col})
}

func outOfStorage(a *arch.Arch, q, col int) move.Move {
	return move.New(a, q,
		arch.Site{Zone: arch.Storage, Row: 7, Col: col},
		arch.Site{Zone: arch.Compute, Row: 0, Col: col})
}

func lateral(a *arch.Arch, q, col int) move.Move {
	return move.New(a, q,
		arch.Site{Zone: arch.Compute, Row: 1, Col: col},
		arch.Site{Zone: arch.Compute, Row: 1, Col: col + 1})
}

// TestOrderByStorageFlow: move-in-heavy groups run first, move-out-heavy
// groups last (Sec. 6.1).
func TestOrderByStorageFlow(t *testing.T) {
	a := testArch()
	groups := []move.CollMove{
		{Moves: []move.Move{outOfStorage(a, 0, 0), outOfStorage(a, 1, 1)}}, // flow -2
		{Moves: []move.Move{lateral(a, 2, 0)}},                             // flow 0
		{Moves: []move.Move{intoStorage(a, 3, 0), intoStorage(a, 4, 1)}},   // flow +2
		{Moves: []move.Move{intoStorage(a, 5, 2), outOfStorage(a, 6, 3)}},  // flow 0
	}
	ordered := OrderByStorageFlow(groups)
	flows := make([]int, len(ordered))
	for i, g := range ordered {
		flows[i] = g.NetStorageFlow()
	}
	for i := 1; i < len(flows); i++ {
		if flows[i-1] < flows[i] {
			t.Fatalf("flows not descending: %v", flows)
		}
	}
	if flows[0] != 2 || flows[len(flows)-1] != -2 {
		t.Errorf("flows = %v, want move-ins first and move-outs last", flows)
	}
	// Stability: the two zero-flow groups keep their relative order.
	if len(ordered[1].Moves) != 1 {
		t.Error("stable sort violated for equal keys")
	}
	// The input must not be reordered in place.
	if groups[0].NetStorageFlow() != -2 {
		t.Error("input slice mutated")
	}
}

func TestBatchChunking(t *testing.T) {
	a := testArch()
	var groups []move.CollMove
	for i := 0; i < 7; i++ {
		groups = append(groups, move.CollMove{Moves: []move.Move{lateral(a, i, i%3)}})
	}
	batches := Batch(groups, 3)
	if len(batches) != 3 {
		t.Fatalf("7 groups on 3 AODs = %d batches, want 3", len(batches))
	}
	sizes := []int{3, 3, 1}
	for i, b := range batches {
		if len(b.Groups) != sizes[i] {
			t.Errorf("batch %d has %d groups, want %d", i, len(b.Groups), sizes[i])
		}
	}
	if got := Batch(nil, 2); got != nil {
		t.Errorf("Batch(nil) = %v, want nil", got)
	}
}

func TestBatchSingleAODPreservesOrder(t *testing.T) {
	a := testArch()
	groups := []move.CollMove{
		{Moves: []move.Move{intoStorage(a, 0, 0)}},
		{Moves: []move.Move{lateral(a, 1, 0)}},
	}
	batches := Batch(groups, 1)
	if len(batches) != 2 {
		t.Fatalf("%d batches, want 2", len(batches))
	}
	if !batches[0].Groups[0].Moves[0].IntoStorage() {
		t.Error("batch order does not preserve group order")
	}
}

func TestBatchPanicsOnBadAODs(t *testing.T) {
	for _, aods := range []int{0, -1} {
		aods := aods
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Batch(aods=%d) did not panic", aods)
				}
			}()
			Batch(nil, aods)
		}()
	}
}

// TestBatchDuration: a batch costs two transfer intervals plus its
// slowest group, and parallelizing across AODs shortens the total.
func TestBatchDuration(t *testing.T) {
	a := testArch()
	slow := move.CollMove{Moves: []move.Move{intoStorage(a, 0, 0)}} // long inter-zone hop
	fast := move.CollMove{Moves: []move.Move{lateral(a, 1, 0)}}     // one pitch
	groups := []move.CollMove{slow, fast}

	serial := Batch(groups, 1)
	parallel := Batch(groups, 2)
	wantSerial := 2*(2*phys.DurationTransfer) + slow.Duration() + fast.Duration()
	if got := TotalDuration(serial); math.Abs(got-wantSerial) > 1e-9 {
		t.Errorf("serial duration = %v, want %v", got, wantSerial)
	}
	wantParallel := 2*phys.DurationTransfer + slow.Duration()
	if got := TotalDuration(parallel); math.Abs(got-wantParallel) > 1e-9 {
		t.Errorf("parallel duration = %v, want %v", got, wantParallel)
	}
	if TotalDuration(parallel) >= TotalDuration(serial) {
		t.Error("two AODs not faster than one")
	}
}

// TestMultiAODMonotone: more AODs never increase total movement time.
func TestMultiAODMonotone(t *testing.T) {
	a := testArch()
	rng := rand.New(rand.NewSource(13))
	var groups []move.CollMove
	for i := 0; i < 11; i++ {
		if rng.Intn(2) == 0 {
			groups = append(groups, move.CollMove{Moves: []move.Move{intoStorage(a, i, rng.Intn(4))}})
		} else {
			groups = append(groups, move.CollMove{Moves: []move.Move{lateral(a, i, rng.Intn(3))}})
		}
	}
	prev := math.Inf(1)
	for aods := 1; aods <= 5; aods++ {
		total := TotalDuration(Batch(groups, aods))
		if total > prev+1e-9 {
			t.Errorf("total duration increased from %v to %v at %d AODs", prev, total, aods)
		}
		prev = total
	}
}

// TestOrderIsPermutationQuick: the intra-stage scheduler only reorders;
// it never adds, drops, or mutates groups.
func TestOrderIsPermutationQuick(t *testing.T) {
	a := testArch()
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%12)
		groups := make([]move.CollMove, n)
		for i := range groups {
			switch rng.Intn(3) {
			case 0:
				groups[i] = move.CollMove{Moves: []move.Move{intoStorage(a, i, rng.Intn(4))}}
			case 1:
				groups[i] = move.CollMove{Moves: []move.Move{outOfStorage(a, i, rng.Intn(4))}}
			default:
				groups[i] = move.CollMove{Moves: []move.Move{lateral(a, i, rng.Intn(3))}}
			}
		}
		ordered := OrderByStorageFlow(groups)
		if len(ordered) != len(groups) {
			return false
		}
		// Multiset equality by the moved qubit of each singleton group.
		seen := make(map[int]int)
		for _, g := range groups {
			seen[g.Moves[0].Qubit]++
		}
		for _, g := range ordered {
			seen[g.Moves[0].Qubit]--
		}
		for _, v := range seen {
			if v != 0 {
				return false
			}
		}
		// Descending flow invariant.
		for i := 1; i < len(ordered); i++ {
			if ordered[i-1].NetStorageFlow() < ordered[i].NetStorageFlow() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
