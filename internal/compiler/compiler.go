// Package compiler is the pass-manager core shared by every compilation
// scheme in the repository. A compilation is a Pipeline: an ordered list
// of passes run over one Context (circuit, architecture, working layout,
// ISA program under construction, RNG, counters). The driver times every
// pass invocation — including passes run per block or per stage inside a
// composite pass — and records the per-pass wall-clock and counter
// deltas into a structured PassStats breakdown that rides on
// Result.Stats, so every front end (cmd/powermove -timings,
// cmd/experiments -json, the daemon's /v1/compile response and /metrics)
// can attribute compile cost to individual passes.
//
// The two pipelines of the paper's evaluation are built here:
//
//   - Zoned (internal/core's former monolithic loop): validate → fuse?
//     → place → per block: stage-partition → stage-order? → per stage:
//     route → group → collsched-order? → batch → emit.
//   - Enola (internal/enola's former duplicate skeleton): validate →
//     place → per block: mis-stage → per stage: route-home → group →
//     batch → emit (out-batches, Rydberg pulse, revert batches).
//
// Ablations are pass substitution at pipeline-construction time — an
// optional pass is simply not appended, and the grouping pass is chosen
// by name from a validated registry — instead of booleans threaded
// through a loop. Construction validates the configuration (unknown
// grouping names, out-of-range alpha, negative restart counts) so
// misconfiguration fails before any work happens.
package compiler

import (
	"fmt"
	"math/rand"
	"time"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/isa"
	"powermove/internal/layout"
	"powermove/internal/move"
	"powermove/internal/stage"
)

// Stats summarizes the compiler's work on one circuit. It is the one
// stats type shared by every pipeline (the former core.Stats and
// enola.Stats were field-for-field duplicates that could drift apart).
type Stats struct {
	// Blocks, Stages, Moves, CollMoves, and Batches count the pipeline
	// products at each level. For the Enola pipeline, CollMoves counts
	// emitted move batches (each carrying one group), preserving the
	// baseline's historical accounting.
	Blocks, Stages, Moves, CollMoves, Batches int
	// CompileTime is the wall-clock compilation duration.
	CompileTime time.Duration
	// Passes is the per-pass breakdown of CompileTime: one entry per
	// distinct pass name, in first-execution order, with cumulative
	// self-time, call counts, and counter deltas. Durations are
	// wall-clock measurements and vary run to run; every "stable"
	// output mode drops or zeroes them.
	Passes PassStats `json:"Passes,omitempty"`
}

// counterDelta returns the named counter increments from prev to s,
// omitting zero entries.
func (s Stats) counterDelta(prev Stats) map[string]int64 {
	var d map[string]int64
	add := func(name string, v int) {
		if v != 0 {
			if d == nil {
				d = make(map[string]int64, 5)
			}
			d[name] = int64(v)
		}
	}
	add("blocks", s.Blocks-prev.Blocks)
	add("stages", s.Stages-prev.Stages)
	add("moves", s.Moves-prev.Moves)
	add("coll_moves", s.CollMoves-prev.CollMoves)
	add("batches", s.Batches-prev.Batches)
	return d
}

// Result carries a compiled program together with the initial layout it
// must be executed from and the compiler's statistics.
type Result struct {
	Program *isa.Program
	Initial *layout.Layout
	Stats   Stats
}

// PassStat is the accounting of one pass across a compilation: how many
// times it ran, its cumulative self-time (nested sub-pass time is
// attributed to the sub-pass, not the parent, so a breakdown's durations
// sum to ~CompileTime without double counting), and the Stats counters
// it advanced.
type PassStat struct {
	// Pass is the pass name.
	Pass string `json:"pass"`
	// Calls counts invocations (stage-level passes run once per stage).
	Calls int `json:"calls"`
	// Duration is cumulative self-time, marshaled as nanoseconds.
	Duration time.Duration `json:"duration_ns"`
	// Counters holds the Stats counters this pass advanced, e.g.
	// {"moves": 420} for the routing pass. Empty for pure rewrites.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// PassStats is a compilation's per-pass breakdown, in first-execution
// order.
type PassStats []PassStat

// Total returns the summed self-time of all passes — the portion of
// CompileTime attributed to passes (the remainder is driver overhead).
func (ps PassStats) Total() time.Duration {
	var t time.Duration
	for _, p := range ps {
		t += p.Duration
	}
	return t
}

// Stabilized returns a copy with every duration zeroed, leaving the
// deterministic calls and counters. Stable output modes use it so
// repeated runs produce byte-identical documents. Counter maps are
// shared with the receiver; callers must not mutate them.
func (ps PassStats) Stabilized() PassStats {
	if ps == nil {
		return nil
	}
	out := make(PassStats, len(ps))
	copy(out, ps)
	for i := range out {
		out[i].Duration = 0
	}
	return out
}

// Pass is one unit of compilation work. Passes are stateless: per-run
// data lives in the Context, so a Pipeline can be reused across
// compilations and goroutines.
type Pass interface {
	// Name identifies the pass in PassStats breakdowns and error
	// messages. Passes occupying the same conceptual slot (e.g. the
	// three grouping heuristics) share a name so observability
	// aggregates across configurations.
	Name() string
	// Run executes the pass against ctx.
	Run(*Context) error
}

// passFunc adapts a function to the Pass interface.
type passFunc struct {
	name string
	fn   func(*Context) error
}

func (p passFunc) Name() string           { return p.name }
func (p passFunc) Run(ctx *Context) error { return p.fn(ctx) }

// NewPass wraps fn as a named Pass.
func NewPass(name string, fn func(*Context) error) Pass {
	return passFunc{name: name, fn: fn}
}

// Context is the shared state one compilation flows through. The
// top-level fields are the compilation's inputs and products; the
// dataflow fields below them carry intermediate results between the
// passes of the current block and stage (the composite lowering pass
// sets them before running its sub-passes).
type Context struct {
	// Circuit is the program being compiled. The fusion pass replaces
	// it with the fused circuit.
	Circuit *circuit.Circuit
	// Arch is the target hardware.
	Arch *arch.Arch
	// Initial is the layout the compiled program starts from, set by
	// the placement pass.
	Initial *layout.Layout
	// Layout is the working layout the router mutates stage by stage
	// (the Enola pipeline's fixed home layout never changes).
	Layout *layout.Layout
	// Program is the ISA instruction stream under construction.
	Program *isa.Program
	// RNG drives randomized passes (the zoned random-mover ablation,
	// Enola's randomized MIS restarts); nil for deterministic configs.
	RNG *rand.Rand
	// Stats accumulates the compilation counters. Passes update it
	// directly; the driver attributes deltas to the running pass.
	Stats Stats

	// Block and BlockIndex identify the commutable block being lowered.
	Block      *circuit.Block
	BlockIndex int
	// Stages is the current block's Rydberg schedule, set by the
	// staging pass and reordered in place by the stage-order pass.
	Stages []stage.Stage
	// Stage and StageID identify the stage the stage-level passes are
	// lowering; StageID is global across blocks.
	Stage   *stage.Stage
	StageID int
	// Moves/MovesBack carry routed movements (MovesBack is the Enola
	// revert leg; the zoned pipeline leaves it nil).
	Moves, MovesBack []move.Move
	// Groups/GroupsBack carry the grouped Coll-Moves.
	Groups, GroupsBack []move.CollMove
	// Batches/BatchesBack carry the AOD-batched move instructions.
	Batches, BatchesBack []isa.MoveBatch

	rec *recorder

	// Incremental-compilation state (see snapshot.go). capture, when
	// set, is invoked after every completed block; startBlock is the
	// first block the lowering loop runs (non-zero on resume); warmHint
	// seeds the placement pass; runStart/baseElapsed let checkpoints
	// report the wall clock invested up to their capture.
	capture     func(*Context)
	startBlock  int
	warmHint    *layout.Layout
	runStart    time.Time
	baseElapsed time.Duration
}

// RunPass executes p under the pipeline's timing recorder. Composite
// passes (the per-block lowering loop) run their sub-passes through it
// so nested invocations land in the same PassStats breakdown, with
// sub-pass time attributed to the sub-pass rather than the parent.
func (c *Context) RunPass(p Pass) error { return c.rec.run(c, p) }

// frame tracks one in-flight pass invocation so a parent's recorded
// self-time and counters exclude its children's. The name, start time,
// and entry counters let a checkpoint snapshot fold the frame's pending
// self-attribution mid-flight.
type frame struct {
	name        string
	start       time.Time
	before      Stats
	childTime   time.Duration
	childCounts Stats
}

// passAccum is the recorder's per-pass accumulator. Counters accumulate
// in the fixed Stats fields — no per-invocation map work — and are
// converted to the named-counter map once, when the breakdown is
// assembled. This keeps the always-on instrumentation to two clock
// reads, one map lookup, and integer arithmetic per pass invocation.
type passAccum struct {
	calls    int
	duration time.Duration
	counts   Stats
}

// recorder accumulates per-pass accounting across one Pipeline.Run.
type recorder struct {
	order  []string
	byName map[string]*passAccum
	stack  []frame
}

func newRecorder() *recorder {
	return &recorder{byName: make(map[string]*passAccum)}
}

// run times one pass invocation, attributing self-time and self counter
// deltas to the pass and charging the whole invocation to the parent
// frame's child accumulators.
func (r *recorder) run(ctx *Context, p Pass) error {
	// Register at invocation start so a composite pass precedes its
	// sub-passes in the breakdown's execution order.
	st := r.byName[p.Name()]
	if st == nil {
		st = &passAccum{}
		r.byName[p.Name()] = st
		r.order = append(r.order, p.Name())
	}

	before := ctx.Stats
	start := time.Now()
	r.stack = append(r.stack, frame{name: p.Name(), start: start, before: before})
	err := p.Run(ctx)
	elapsed := time.Since(start)

	fr := r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]

	if len(r.stack) > 0 {
		parent := &r.stack[len(r.stack)-1]
		parent.childTime += elapsed
		parent.childCounts.Blocks += ctx.Stats.Blocks - before.Blocks
		parent.childCounts.Stages += ctx.Stats.Stages - before.Stages
		parent.childCounts.Moves += ctx.Stats.Moves - before.Moves
		parent.childCounts.CollMoves += ctx.Stats.CollMoves - before.CollMoves
		parent.childCounts.Batches += ctx.Stats.Batches - before.Batches
	}

	st.calls++
	st.duration += elapsed - fr.childTime
	st.counts.Blocks += ctx.Stats.Blocks - before.Blocks - fr.childCounts.Blocks
	st.counts.Stages += ctx.Stats.Stages - before.Stages - fr.childCounts.Stages
	st.counts.Moves += ctx.Stats.Moves - before.Moves - fr.childCounts.Moves
	st.counts.CollMoves += ctx.Stats.CollMoves - before.CollMoves - fr.childCounts.CollMoves
	st.counts.Batches += ctx.Stats.Batches - before.Batches - fr.childCounts.Batches

	if err != nil {
		return fmt.Errorf("%s: %w", p.Name(), err)
	}
	return nil
}

// stats assembles the breakdown in first-execution order, materializing
// each pass's counter map from its accumulator.
func (r *recorder) stats() PassStats {
	out := make(PassStats, 0, len(r.order))
	for _, name := range r.order {
		a := r.byName[name]
		out = append(out, PassStat{
			Pass:     name,
			Calls:    a.calls,
			Duration: a.duration,
			Counters: a.counts.counterDelta(Stats{}),
		})
	}
	return out
}

// addCounts and subCounts combine the counter fields of two Stats
// values, leaving the wall-clock fields zero.
func addCounts(a, b Stats) Stats {
	return Stats{
		Blocks:    a.Blocks + b.Blocks,
		Stages:    a.Stages + b.Stages,
		Moves:     a.Moves + b.Moves,
		CollMoves: a.CollMoves + b.CollMoves,
		Batches:   a.Batches + b.Batches,
	}
}

func subCounts(a, b Stats) Stats {
	return Stats{
		Blocks:    a.Blocks - b.Blocks,
		Stages:    a.Stages - b.Stages,
		Moves:     a.Moves - b.Moves,
		CollMoves: a.CollMoves - b.CollMoves,
		Batches:   a.Batches - b.Batches,
	}
}

// recorderState is a recorder's accounting frozen at a checkpoint,
// self-contained so a later resumed run can continue it.
type recorderState struct {
	order  []string
	accums map[string]passAccum
}

// snapshot deep-copies the recorder's accounting and folds in the
// pending self-attribution of every in-flight frame (on a checkpoint
// path that is the lowering loop's frame): each frame's self-time and
// self counter deltas so far are its total elapsed/delta minus its
// finished children's and minus the still-running inner frames'. Call
// counts are not folded — an in-flight invocation counts its call when
// it completes, and a resumed run's fresh invocation supplies it — so a
// resumed breakdown's calls match a cold compile's exactly.
func (r *recorder) snapshot(ctx *Context, now time.Time) recorderState {
	st := recorderState{
		order:  append([]string(nil), r.order...),
		accums: make(map[string]passAccum, len(r.byName)),
	}
	for name, a := range r.byName {
		st.accums[name] = *a
	}
	var innerElapsed time.Duration
	var innerDelta Stats
	for i := len(r.stack) - 1; i >= 0; i-- {
		f := r.stack[i]
		elapsed := now.Sub(f.start)
		delta := subCounts(ctx.Stats, f.before)
		ac := st.accums[f.name]
		ac.duration += elapsed - f.childTime - innerElapsed
		ac.counts = addCounts(ac.counts, subCounts(subCounts(delta, f.childCounts), innerDelta))
		st.accums[f.name] = ac
		innerElapsed = elapsed
		innerDelta = delta
	}
	return st
}

// seededRecorder builds a live recorder primed with a checkpoint's
// accounting, so a resumed run's breakdown continues the donor's.
func seededRecorder(st recorderState) *recorder {
	r := newRecorder()
	r.order = append(r.order, st.order...)
	for name, a := range st.accums {
		ac := a
		r.byName[name] = &ac
	}
	return r
}

// Pipeline is a validated, reusable pass composition. Build one with
// New (or the Zoned/Enola constructors) and run it with Run; a Pipeline
// holds no per-run state and is safe for concurrent use.
type Pipeline struct {
	name   string
	init   []func(*Context) error
	passes []Pass
}

// New validates and assembles a pipeline: the name and every pass name
// must be non-empty, passes non-nil, and top-level pass names unique.
func New(name string, passes ...Pass) (*Pipeline, error) {
	if name == "" {
		return nil, fmt.Errorf("compiler: pipeline needs a name")
	}
	if len(passes) == 0 {
		return nil, fmt.Errorf("compiler: pipeline %q has no passes", name)
	}
	seen := make(map[string]bool, len(passes))
	for i, p := range passes {
		if p == nil {
			return nil, fmt.Errorf("compiler: pipeline %q: pass %d is nil", name, i)
		}
		if p.Name() == "" {
			return nil, fmt.Errorf("compiler: pipeline %q: pass %d has no name", name, i)
		}
		if seen[p.Name()] {
			return nil, fmt.Errorf("compiler: pipeline %q: duplicate pass %q", name, p.Name())
		}
		seen[p.Name()] = true
	}
	return &Pipeline{name: name, passes: passes}, nil
}

// Name returns the pipeline's name ("zoned", "enola").
func (p *Pipeline) Name() string { return p.name }

// Passes returns the top-level pass names in execution order.
func (p *Pipeline) Passes() []string {
	names := make([]string, len(p.passes))
	for i, pass := range p.passes {
		names[i] = pass.Name()
	}
	return names
}

// Run compiles circ for a: it builds a fresh Context, runs every pass
// under the timing recorder, and returns the program, initial layout,
// and statistics with the per-pass breakdown attached.
func (p *Pipeline) Run(circ *circuit.Circuit, a *arch.Arch) (*Result, error) {
	return p.RunOpts(circ, a, RunOptions{})
}

// blockLoop is the composite lowering pass shared by both pipelines: it
// walks the circuit's commutable blocks, emits each block's 1Q layer,
// runs the block-level passes (staging), then runs the stage-level
// passes once per scheduled stage. Its own recorded self-time is the
// loop overhead; sub-pass time is attributed to the sub-passes.
type blockLoop struct {
	blockPasses []Pass
	stagePasses []Pass
}

func (bl *blockLoop) Name() string { return "lower" }

func (bl *blockLoop) Run(ctx *Context) error {
	for bi := ctx.startBlock; bi < len(ctx.Circuit.Blocks); bi++ {
		ctx.Block = &ctx.Circuit.Blocks[bi]
		ctx.BlockIndex = bi
		ctx.Stats.Blocks++
		if ctx.Block.OneQ > 0 {
			ctx.Program.Instr = append(ctx.Program.Instr, isa.OneQLayer{Count: ctx.Block.OneQ})
		}
		ctx.Stages = nil
		for _, p := range bl.blockPasses {
			if err := ctx.RunPass(p); err != nil {
				return err
			}
		}
		for si := range ctx.Stages {
			ctx.Stage = &ctx.Stages[si]
			for _, p := range bl.stagePasses {
				if err := ctx.RunPass(p); err != nil {
					return err
				}
			}
			ctx.StageID++
		}
		if ctx.capture != nil {
			ctx.capture(ctx)
		}
	}
	return nil
}
