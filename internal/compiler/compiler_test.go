package compiler

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/layout"
	"powermove/internal/stage"
	"powermove/internal/workload"
)

// TestPipelineValidation: New rejects malformed compositions before any
// work happens.
func TestPipelineValidation(t *testing.T) {
	ok := NewPass("ok", func(*Context) error { return nil })
	cases := []struct {
		name   string
		pname  string
		passes []Pass
	}{
		{"empty name", "", []Pass{ok}},
		{"no passes", "p", nil},
		{"nil pass", "p", []Pass{ok, nil}},
		{"unnamed pass", "p", []Pass{NewPass("", nil)}},
		{"duplicate pass", "p", []Pass{ok, ok}},
	}
	for _, tc := range cases {
		if _, err := New(tc.pname, tc.passes...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := New("p", ok); err != nil {
		t.Errorf("valid pipeline rejected: %v", err)
	}
}

// TestConfigValidation: the pipeline constructors reject bad
// configurations with descriptive errors — the grouping registry is the
// one place unknown names fail.
func TestConfigValidation(t *testing.T) {
	if _, err := Zoned(ZonedConfig{Grouping: "grouping(7)"}); err == nil {
		t.Error("unknown grouping accepted")
	} else if !strings.Contains(err.Error(), "grouping(7)") || !strings.Contains(err.Error(), GroupingMerged) {
		t.Errorf("grouping error %q names neither the bad value nor the valid names", err)
	}
	if _, err := Zoned(ZonedConfig{Alpha: 1.5}); err == nil {
		t.Error("alpha out of range accepted")
	}
	if _, err := Enola(EnolaConfig{Restarts: -1}); err == nil {
		t.Error("negative restarts accepted")
	}
	for _, name := range GroupingNames() {
		if err := ValidateGrouping(name); err != nil {
			t.Errorf("registry name %q rejected: %v", name, err)
		}
		if _, err := Zoned(ZonedConfig{Grouping: name}); err != nil {
			t.Errorf("Zoned rejected registry name %q: %v", name, err)
		}
	}
	if err := ValidateGrouping("nope"); err == nil {
		t.Error("ValidateGrouping accepted an unknown name")
	}
}

// TestPipelinePassLists pins the pass compositions the ARCHITECTURE
// docs describe, including ablation-driven substitution.
func TestPipelinePassLists(t *testing.T) {
	cases := []struct {
		name string
		p    func() (*Pipeline, error)
		want string
	}{
		{"zoned", func() (*Pipeline, error) { return Zoned(ZonedConfig{UseStorage: true}) },
			"validate place lower"},
		{"zoned-fuse", func() (*Pipeline, error) { return Zoned(ZonedConfig{FuseBlocks: true}) },
			"validate fuse place lower"},
		{"enola", func() (*Pipeline, error) { return Enola(EnolaConfig{}) },
			"validate place lower"},
	}
	for _, tc := range cases {
		p, err := tc.p()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := strings.Join(p.Passes(), " "); got != tc.want {
			t.Errorf("%s passes = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestRunRejections: run-time validation still catches what only the
// circuit/architecture pair can reveal.
func TestRunRejections(t *testing.T) {
	small := arch.New(arch.Config{Qubits: 4})
	big := workload.VQE(10)
	for _, build := range []func() (*Pipeline, error){
		func() (*Pipeline, error) { return Zoned(ZonedConfig{}) },
		func() (*Pipeline, error) { return Enola(EnolaConfig{}) },
	} {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(big, small); err == nil {
			t.Errorf("%s: oversized circuit accepted", p.Name())
		}
		bad := circuit.New("bad", 4)
		bad.AddBlock(-1)
		if _, err := p.Run(bad, small); err == nil {
			t.Errorf("%s: invalid circuit accepted", p.Name())
		}
		if _, err := p.Run(nil, small); err == nil {
			t.Errorf("%s: nil circuit accepted", p.Name())
		}
	}
}

// TestPassErrorsCarryNames: a failing pass surfaces its pipeline and
// pass name in the error chain.
func TestPassErrorsCarryNames(t *testing.T) {
	sentinel := errors.New("boom")
	p, err := New("demo", NewPass("explode", func(*Context) error { return sentinel }))
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(circuit.New("c", 2), arch.New(arch.Config{Qubits: 2}))
	if !errors.Is(err, sentinel) {
		t.Fatalf("sentinel lost: %v", err)
	}
	if !strings.Contains(err.Error(), "demo") || !strings.Contains(err.Error(), "explode") {
		t.Errorf("error %q does not name the pipeline and pass", err)
	}
}

// TestNestedPassAccounting: a composite pass's recorded self-time and
// counters exclude its children's, so breakdowns sum without double
// counting.
func TestNestedPassAccounting(t *testing.T) {
	child := NewPass("child", func(ctx *Context) error {
		ctx.Stats.Moves += 3
		return nil
	})
	parent := NewPass("parent", func(ctx *Context) error {
		ctx.Stats.Blocks++
		for i := 0; i < 2; i++ {
			if err := ctx.RunPass(child); err != nil {
				return err
			}
		}
		return nil
	})
	p, err := New("demo", parent)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(circuit.New("c", 2), arch.New(arch.Config{Qubits: 2}))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PassStat{}
	for _, st := range res.Stats.Passes {
		byName[st.Pass] = st
	}
	if got := byName["child"]; got.Calls != 2 || got.Counters["moves"] != 6 {
		t.Errorf("child accounting = %+v", got)
	}
	pa := byName["parent"]
	if pa.Calls != 1 || pa.Counters["blocks"] != 1 {
		t.Errorf("parent accounting = %+v", pa)
	}
	if _, leaked := pa.Counters["moves"]; leaked {
		t.Error("parent was charged its child's counters")
	}
	if res.Stats.Moves != 6 || res.Stats.Blocks != 1 {
		t.Errorf("aggregate stats = %+v", res.Stats)
	}
	if res.Stats.Passes[0].Pass != "parent" {
		t.Errorf("breakdown order starts with %q, want the composite first", res.Stats.Passes[0].Pass)
	}
}

// TestPipelineReuse: a Pipeline holds no per-run state — repeated runs
// (the daemon reuses validated pipelines across requests) produce
// identical programs.
func TestPipelineReuse(t *testing.T) {
	c := workload.QAOARegular(20, 3, 8)
	a := arch.New(arch.Config{Qubits: 20})
	p, err := Zoned(ZonedConfig{UseStorage: true, RandomMover: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p.Run(c, a)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Run(c, a)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Program.Disassemble() != r2.Program.Disassemble() {
		t.Error("reusing a pipeline changed its output")
	}
}

// TestMISStagesDisjointAndComplete validates the baseline's scheduler on
// random commutable blocks (moved from internal/enola with the pass
// logic).
func TestMISStagesDisjointAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(20)
		var gates []circuit.CZ
		seen := make(map[circuit.CZ]bool)
		for k := 0; k < n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			g := circuit.NewCZ(a, b)
			if !seen[g] {
				seen[g] = true
				gates = append(gates, g)
			}
		}
		if len(gates) == 0 {
			continue
		}
		stages := misStages(gates, 4, rng)
		total := 0
		for _, st := range stages {
			if !st.Disjoint() {
				t.Fatalf("trial %d: stage not disjoint", trial)
			}
			total += len(st.Gates)
		}
		if total != len(gates) {
			t.Fatalf("trial %d: stages cover %d gates, want %d", trial, total, len(gates))
		}
	}
}

// TestMISFindsPerfectMatchingOnChain: with restarts, the baseline finds
// the 2-stage schedule of a linear chain, matching its near-optimal
// scheduling claim.
func TestMISFindsPerfectMatchingOnChain(t *testing.T) {
	var gates []circuit.CZ
	for i := 0; i+1 < 20; i++ {
		gates = append(gates, circuit.NewCZ(i, i+1))
	}
	stages := misStages(gates, 64, rand.New(rand.NewSource(1)))
	if len(stages) > 3 {
		t.Errorf("chain scheduled into %d stages, want <= 3", len(stages))
	}
}

// TestStageMoves: the lower-indexed qubit travels to its partner's home.
func TestStageMoves(t *testing.T) {
	a := arch.New(arch.Config{Qubits: 4})
	l := layout.New(a, 4)
	l.PlaceAll(arch.Compute)
	st := stage.Stage{Gates: []circuit.CZ{circuit.NewCZ(2, 0)}}
	moves := stageMoves(l, st)
	if len(moves) != 1 {
		t.Fatalf("%d moves, want 1", len(moves))
	}
	if moves[0].Qubit != 0 || moves[0].ToSite != l.SiteOf(2) {
		t.Errorf("move = %v, want q0 -> site of q2", moves[0])
	}
	rev := reverseMoves(moves)
	if rev[0].FromSite != moves[0].ToSite || rev[0].ToSite != moves[0].FromSite {
		t.Error("reverse did not invert endpoints")
	}
}

// TestCounterDeltaNames pins the counter naming shared by JSON
// consumers (CLI breakdowns, daemon /metrics).
func TestCounterDeltaNames(t *testing.T) {
	d := Stats{Blocks: 1, Stages: 2, Moves: 3, CollMoves: 4, Batches: 5}.counterDelta(Stats{})
	for _, k := range []string{"blocks", "stages", "moves", "coll_moves", "batches"} {
		if _, ok := d[k]; !ok {
			t.Errorf("counter %q missing from delta %v", k, d)
		}
	}
	if d := (Stats{}).counterDelta(Stats{}); d != nil {
		t.Errorf("zero delta allocated %v", d)
	}
}
