package compiler_test

// Differential golden tests: the pass-manager pipelines must be
// byte-identical to the monolithic compile loops they replaced. The
// legacy loops are preserved verbatim below (from internal/core and
// internal/enola before the pass refactor) and every workload family is
// compiled by both implementations across the full option matrix —
// storage on/off, every grouping, every ablation, fusion, the random
// mover — comparing program disassembly, initial layout, and the
// aggregate statistics counters.

import (
	"math/rand"
	"testing"
	"time"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/collsched"
	"powermove/internal/compiler"
	"powermove/internal/fuse"
	"powermove/internal/isa"
	"powermove/internal/layout"
	"powermove/internal/move"
	"powermove/internal/router"
	"powermove/internal/stage"
	"powermove/internal/viz"
	"powermove/internal/workload"
)

// legacyZonedOptions mirrors the pre-refactor core.Options.
type legacyZonedOptions struct {
	UseStorage             bool
	Alpha                  float64
	RandomMover            bool
	Seed                   int64
	DisableStageOrder      bool
	DisableIntraStageOrder bool
	Grouping               int // 0 merged, 1 distance, 2 in-order
	FuseBlocks             bool
}

type legacyStats struct {
	Blocks, Stages, Moves, CollMoves, Batches int
}

// legacyZonedCompile is the pre-refactor core.Compile loop, verbatim
// except for returning the bare counters instead of a Stats struct.
func legacyZonedCompile(t *testing.T, circ *circuit.Circuit, a *arch.Arch, opts legacyZonedOptions) (*isa.Program, *layout.Layout, legacyStats) {
	t.Helper()
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = stage.DefaultAlpha
	}
	if opts.FuseBlocks {
		circ = fuse.Circuit(circ, fuse.Options{})
	}

	initial := layout.New(a, circ.Qubits)
	if opts.UseStorage {
		initial.PlaceAll(arch.Storage)
	} else {
		initial.PlaceAll(arch.Compute)
	}

	l := initial.Clone()
	var rng *rand.Rand
	if opts.RandomMover {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	prog := &isa.Program{Name: circ.Name, Qubits: circ.Qubits}
	var stats legacyStats

	stageID := 0
	for bi := range circ.Blocks {
		b := &circ.Blocks[bi]
		stats.Blocks++
		if b.OneQ > 0 {
			prog.Instr = append(prog.Instr, isa.OneQLayer{Count: b.OneQ})
		}
		stages := stage.Partition(b.Gates)
		if opts.UseStorage && !opts.DisableStageOrder {
			stages = stage.Order(stages, alpha)
		}
		for _, st := range stages {
			moves, err := router.Route(l, st, opts.UseStorage, rng)
			if err != nil {
				t.Fatalf("legacy route: block %d stage %d: %v", bi, stageID, err)
			}
			var groups []move.CollMove
			switch opts.Grouping {
			case 1:
				groups = move.GroupByDistance(moves)
			case 2:
				groups = move.GroupInOrder(moves)
			default:
				groups = move.Group(moves)
			}
			if opts.UseStorage && !opts.DisableIntraStageOrder {
				groups = collsched.OrderByStorageFlow(groups)
			}
			batches := collsched.Batch(groups, a.AODs)
			for _, batch := range batches {
				prog.Instr = append(prog.Instr, batch)
			}
			prog.Instr = append(prog.Instr, isa.Rydberg{Stage: stageID, Pairs: st.Gates})

			stats.Stages++
			stats.Moves += len(moves)
			stats.CollMoves += len(groups)
			stats.Batches += len(batches)
			stageID++
		}
	}
	return prog, initial, stats
}

// legacyEnolaCompile is the pre-refactor enola.Compile loop, verbatim
// (the MIS helpers live in the compiler package and are pinned by their
// own unit tests there).
func legacyEnolaCompile(t *testing.T, circ *circuit.Circuit, a *arch.Arch, restarts int, seed int64) (*isa.Program, *layout.Layout, legacyStats) {
	t.Helper()
	home := layout.New(a, circ.Qubits)
	home.PlaceAll(arch.Compute)
	rng := rand.New(rand.NewSource(seed))
	prog := &isa.Program{Name: circ.Name, Qubits: circ.Qubits}
	var stats legacyStats

	stageID := 0
	for bi := range circ.Blocks {
		b := &circ.Blocks[bi]
		stats.Blocks++
		if b.OneQ > 0 {
			prog.Instr = append(prog.Instr, isa.OneQLayer{Count: b.OneQ})
		}
		r := restarts
		if r == 0 {
			r = 2 * len(b.Gates)
			if r < compiler.MinRestarts {
				r = compiler.MinRestarts
			}
		}
		for _, st := range compiler.MISStagesForTest(b.Gates, r, rng) {
			var forward []move.Move
			for _, g := range st.Gates {
				forward = append(forward, move.New(a, g.A, home.SiteOf(g.A), home.SiteOf(g.B)))
			}
			backward := make([]move.Move, len(forward))
			for i, m := range forward {
				backward[i] = move.Move{
					Qubit:    m.Qubit,
					FromSite: m.ToSite,
					ToSite:   m.FromSite,
					From:     m.To,
					To:       m.From,
				}
			}

			outBatches := collsched.Batch(move.GroupInOrder(forward), a.AODs)
			backBatches := collsched.Batch(move.GroupInOrder(backward), a.AODs)
			for _, batch := range outBatches {
				prog.Instr = append(prog.Instr, batch)
			}
			prog.Instr = append(prog.Instr, isa.Rydberg{Stage: stageID, Pairs: st.Gates})
			for _, batch := range backBatches {
				prog.Instr = append(prog.Instr, batch)
			}

			stats.Stages++
			stats.Moves += len(forward) + len(backward)
			stats.CollMoves += len(outBatches) + len(backBatches)
			stats.Batches += len(outBatches) + len(backBatches)
			stageID++
		}
	}

	initial := layout.New(a, circ.Qubits)
	initial.PlaceAll(arch.Compute)
	return prog, initial, stats
}

func diffWorkloads() []*circuit.Circuit {
	return []*circuit.Circuit{
		workload.QAOARegular(20, 3, 1),
		workload.QAOARegular(16, 4, 2),
		workload.QAOARandom(14, 3),
		workload.QFT(10),
		workload.BV(12, 4),
		workload.VQE(15),
		workload.QSim(12, 5),
	}
}

// compare pins a pipeline result against a legacy compile: identical
// instruction stream (by disassembly), identical initial layout, and
// identical counters.
func compare(t *testing.T, label string, res *compiler.Result, prog *isa.Program, initial *layout.Layout, stats legacyStats) {
	t.Helper()
	if got, want := res.Program.Disassemble(), prog.Disassemble(); got != want {
		t.Errorf("%s: compiled program diverges from the legacy loop\ngot:\n%s\nwant:\n%s", label, got, want)
	}
	if got, want := viz.Layout(res.Initial), viz.Layout(initial); got != want {
		t.Errorf("%s: initial layout diverges\ngot:\n%s\nwant:\n%s", label, got, want)
	}
	got := legacyStats{
		Blocks:    res.Stats.Blocks,
		Stages:    res.Stats.Stages,
		Moves:     res.Stats.Moves,
		CollMoves: res.Stats.CollMoves,
		Batches:   res.Stats.Batches,
	}
	if got != stats {
		t.Errorf("%s: stats diverge: got %+v, want %+v", label, got, stats)
	}
	if res.Stats.CompileTime <= 0 {
		t.Errorf("%s: CompileTime not recorded", label)
	}
}

// TestZonedMatchesLegacyCompile sweeps the option matrix over every
// workload family: the zoned pipeline must reproduce the pre-refactor
// monolithic loop byte for byte.
func TestZonedMatchesLegacyCompile(t *testing.T) {
	cases := []struct {
		name string
		cfg  compiler.ZonedConfig
		old  legacyZonedOptions
	}{
		{"non-storage", compiler.ZonedConfig{}, legacyZonedOptions{}},
		{"with-storage", compiler.ZonedConfig{UseStorage: true}, legacyZonedOptions{UseStorage: true}},
		{"grouping-distance", compiler.ZonedConfig{UseStorage: true, Grouping: compiler.GroupingDistance},
			legacyZonedOptions{UseStorage: true, Grouping: 1}},
		{"grouping-in-order", compiler.ZonedConfig{UseStorage: true, Grouping: compiler.GroupingInOrder},
			legacyZonedOptions{UseStorage: true, Grouping: 2}},
		{"no-stage-order", compiler.ZonedConfig{UseStorage: true, DisableStageOrder: true},
			legacyZonedOptions{UseStorage: true, DisableStageOrder: true}},
		{"no-intra-stage-order", compiler.ZonedConfig{UseStorage: true, DisableIntraStageOrder: true},
			legacyZonedOptions{UseStorage: true, DisableIntraStageOrder: true}},
		{"both-ablations", compiler.ZonedConfig{UseStorage: true, DisableStageOrder: true, DisableIntraStageOrder: true},
			legacyZonedOptions{UseStorage: true, DisableStageOrder: true, DisableIntraStageOrder: true}},
		{"random-mover", compiler.ZonedConfig{UseStorage: true, RandomMover: true, Seed: 7},
			legacyZonedOptions{UseStorage: true, RandomMover: true, Seed: 7}},
		{"random-mover-non-storage", compiler.ZonedConfig{RandomMover: true, Seed: 11},
			legacyZonedOptions{RandomMover: true, Seed: 11}},
		{"fuse", compiler.ZonedConfig{UseStorage: true, FuseBlocks: true},
			legacyZonedOptions{UseStorage: true, FuseBlocks: true}},
		{"fuse-non-storage", compiler.ZonedConfig{FuseBlocks: true},
			legacyZonedOptions{FuseBlocks: true}},
		{"alpha", compiler.ZonedConfig{UseStorage: true, Alpha: 0.3},
			legacyZonedOptions{UseStorage: true, Alpha: 0.3}},
	}
	for _, tc := range cases {
		p, err := compiler.Zoned(tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, c := range diffWorkloads() {
			a := arch.New(arch.Config{Qubits: c.Qubits})
			res, err := p.Run(c, a)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, c.Name, err)
			}
			prog, initial, stats := legacyZonedCompile(t, c, a, tc.old)
			compare(t, tc.name+"/"+c.Name, res, prog, initial, stats)
		}
	}
}

// TestZonedMatchesLegacyMultiAOD covers the AOD-count axis the batch
// sweep of Fig. 7 exercises.
func TestZonedMatchesLegacyMultiAOD(t *testing.T) {
	c := workload.QAOARegular(20, 3, 13)
	p, err := compiler.Zoned(compiler.ZonedConfig{UseStorage: true})
	if err != nil {
		t.Fatal(err)
	}
	for aods := 1; aods <= 4; aods++ {
		a := arch.New(arch.Config{Qubits: 20, AODs: aods})
		res, err := p.Run(c, a)
		if err != nil {
			t.Fatalf("aods=%d: %v", aods, err)
		}
		prog, initial, stats := legacyZonedCompile(t, c, a, legacyZonedOptions{UseStorage: true})
		compare(t, "aods", res, prog, initial, stats)
	}
}

// TestEnolaMatchesLegacyCompile: the enola pipeline must reproduce the
// pre-refactor baseline loop byte for byte, under both the default
// instance-scaled restarts and a fixed restart count.
func TestEnolaMatchesLegacyCompile(t *testing.T) {
	for _, restarts := range []int{0, 4} {
		p, err := compiler.Enola(compiler.EnolaConfig{Restarts: restarts, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range diffWorkloads() {
			a := arch.New(arch.Config{Qubits: c.Qubits})
			res, err := p.Run(c, a)
			if err != nil {
				t.Fatalf("restarts=%d/%s: %v", restarts, c.Name, err)
			}
			prog, initial, stats := legacyEnolaCompile(t, c, a, restarts, 1)
			compare(t, c.Name, res, prog, initial, stats)
		}
	}
}

// TestPassStatsConsistency: the per-pass breakdown must account for the
// compilation — durations sum to ~CompileTime (self-time accounting
// admits only driver overhead outside passes), counters sum to the
// aggregate Stats, and call counts match the schedule shape.
func TestPassStatsConsistency(t *testing.T) {
	c := workload.QAOARegular(60, 3, 8)
	a := arch.New(arch.Config{Qubits: 60})
	p, err := compiler.Zoned(compiler.ZonedConfig{UseStorage: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(c, a)
	if err != nil {
		t.Fatal(err)
	}
	ps := res.Stats.Passes
	if len(ps) == 0 {
		t.Fatal("no pass breakdown recorded")
	}

	total := ps.Total()
	if total > res.Stats.CompileTime {
		t.Errorf("pass self-times sum to %v, exceeding CompileTime %v", total, res.Stats.CompileTime)
	}
	if total < res.Stats.CompileTime/2 {
		t.Errorf("pass self-times sum to %v, under half of CompileTime %v — breakdown is not accounting for the compile",
			total, res.Stats.CompileTime)
	}

	sums := map[string]int64{}
	byName := map[string]compiler.PassStat{}
	for _, st := range ps {
		byName[st.Pass] = st
		for k, v := range st.Counters {
			sums[k] += v
		}
	}
	want := map[string]int64{
		"blocks":     int64(res.Stats.Blocks),
		"stages":     int64(res.Stats.Stages),
		"moves":      int64(res.Stats.Moves),
		"coll_moves": int64(res.Stats.CollMoves),
		"batches":    int64(res.Stats.Batches),
	}
	for k, w := range want {
		if sums[k] != w {
			t.Errorf("per-pass %s counters sum to %d, Stats says %d", k, sums[k], w)
		}
	}

	if got := byName["route"].Calls; got != res.Stats.Stages {
		t.Errorf("route ran %d times, schedule has %d stages", got, res.Stats.Stages)
	}
	if got := byName["stage-partition"].Calls; got != res.Stats.Blocks {
		t.Errorf("stage-partition ran %d times, circuit has %d blocks", got, res.Stats.Blocks)
	}
	if got := byName["validate"].Calls; got != 1 {
		t.Errorf("validate ran %d times, want 1", got)
	}
}

// TestPassStatsStabilized: Stabilized zeroes durations without touching
// the deterministic calls/counters or the receiver.
func TestPassStatsStabilized(t *testing.T) {
	ps := compiler.PassStats{
		{Pass: "route", Calls: 3, Duration: 5 * time.Millisecond, Counters: map[string]int64{"moves": 7}},
	}
	st := ps.Stabilized()
	if st[0].Duration != 0 || st[0].Calls != 3 || st[0].Counters["moves"] != 7 {
		t.Errorf("Stabilized = %+v", st[0])
	}
	if ps[0].Duration != 5*time.Millisecond {
		t.Error("Stabilized mutated its receiver")
	}
	if compiler.PassStats(nil).Stabilized() != nil {
		t.Error("nil breakdown did not stabilize to nil")
	}
}
