// The Enola pipeline: the revert-to-home baseline compiler the paper
// compares against (Sec. 3), as a pass composition over the same
// pass-manager driver as the zoned pipeline. See internal/enola for the
// baseline's characterization; the pass logic lives here so both
// schemes share one driver, one Stats type, and one observability path.
package compiler

import (
	"fmt"
	"math/rand"

	"powermove/internal/circuit"
	"powermove/internal/collsched"
	"powermove/internal/graphutil"
	"powermove/internal/isa"
	"powermove/internal/layout"
	"powermove/internal/move"
	"powermove/internal/stage"
)

// MinRestarts is the floor on the Enola pipeline's instance-scaled
// restart count: each stage extraction tries at least this many random
// greedy orders and keeps the largest independent set found. The
// default effort is max(MinRestarts, 2 * gates-in-block), approximating
// the scaling of the original's Maximum-Independent-Set solver.
const MinRestarts = 16

// EnolaConfig configures one baseline pipeline.
type EnolaConfig struct {
	// Restarts is the number of randomized restarts per
	// maximal-independent-set extraction; zero selects the default
	// instance-scaled effort (see MinRestarts). Negative counts fail
	// Enola.
	Restarts int
	// Seed drives the randomized restarts.
	Seed int64
}

// Enola validates cfg and assembles the baseline pipeline:
//
//	validate → place → lower(per block: mis-stage → per stage:
//	route-home → group → batch → emit)
//
// where route-home produces both the forward leg and the revert leg of
// the baseline's doubled movement, and emit interleaves them around the
// Rydberg pulse.
func Enola(cfg EnolaConfig) (*Pipeline, error) {
	if cfg.Restarts < 0 {
		return nil, fmt.Errorf("compiler: negative restart count %d", cfg.Restarts)
	}
	// The baseline shares the zoned pipeline's non-storage validate and
	// place passes: capacity-check against the computation zone, then
	// the row-major compute-zone home layout (which the baseline never
	// mutates — every stage starts from and reverts to home).
	p, err := New("enola",
		validatePass(false),
		placePass(false),
		&blockLoop{
			blockPasses: []Pass{misStagePass(cfg.Restarts)},
			stagePasses: []Pass{routeHomePass(), enolaGroupPass(), enolaBatchPass(), enolaEmitPass()},
		},
	)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	p.init = append(p.init, func(ctx *Context) error {
		ctx.RNG = rand.New(rand.NewSource(seed))
		return nil
	})
	return p, nil
}

// misStagePass schedules the block by iterated maximal-independent-set
// extraction with randomized restarts — the baseline's
// quality-over-speed trade-off and the source of its large compile
// times.
func misStagePass(restarts int) Pass {
	return NewPassEffects("mis-stage", ReadsBlock|ReadsConfig|ReadsRNG, func(ctx *Context) error {
		r := restarts
		if r == 0 {
			r = 2 * len(ctx.Block.Gates)
			if r < MinRestarts {
				r = MinRestarts
			}
		}
		ctx.Stages = misStages(ctx.Block.Gates, r, ctx.RNG)
		ctx.Stats.Stages += len(ctx.Stages)
		return nil
	})
}

// routeHomePass produces the baseline's doubled movement for one stage:
// the forward leg to the partners' home sites and the revert leg back.
func routeHomePass() Pass {
	return NewPassEffects("route-home", ReadsBlock|ReadsLayout, func(ctx *Context) error {
		ctx.Moves = stageMoves(ctx.Layout, *ctx.Stage)
		ctx.MovesBack = reverseMoves(ctx.Moves)
		ctx.Stats.Moves += len(ctx.Moves) + len(ctx.MovesBack)
		return nil
	})
}

// enolaGroupPass packs both legs arrival-order first-fit, the
// baseline's grouping.
func enolaGroupPass() Pass {
	return NewPassEffects("group", ReadsBlock, func(ctx *Context) error {
		ctx.Groups = move.GroupInOrder(ctx.Moves)
		ctx.GroupsBack = move.GroupInOrder(ctx.MovesBack)
		return nil
	})
}

// enolaBatchPass batches both legs. The baseline's historical
// accounting counts emitted batches as its CollMoves, preserved here so
// the unified Stats reproduces the legacy enola.Stats exactly.
func enolaBatchPass() Pass {
	return NewPassEffects("batch", ReadsBlock|ReadsArch, func(ctx *Context) error {
		ctx.Batches = collsched.Batch(ctx.Groups, ctx.Arch.AODs)
		ctx.BatchesBack = collsched.Batch(ctx.GroupsBack, ctx.Arch.AODs)
		n := len(ctx.Batches) + len(ctx.BatchesBack)
		ctx.Stats.CollMoves += n
		ctx.Stats.Batches += n
		return nil
	})
}

// enolaEmitPass interleaves the legs around the Rydberg pulse:
// out-batches, pulse, revert batches.
func enolaEmitPass() Pass {
	return NewPassEffects("emit", ReadsBlock|WritesProgram, func(ctx *Context) error {
		for _, batch := range ctx.Batches {
			ctx.Program.Instr = append(ctx.Program.Instr, batch)
		}
		ctx.Program.Instr = append(ctx.Program.Instr, isa.Rydberg{Stage: ctx.StageID, Pairs: ctx.Stage.Gates})
		for _, batch := range ctx.BatchesBack {
			ctx.Program.Instr = append(ctx.Program.Instr, batch)
		}
		return nil
	})
}

// misStages partitions a commutable block into Rydberg stages by
// repeatedly extracting a maximal independent set from the gate
// conflict graph. Each extraction runs the deterministic
// min-residual-degree greedy plus the configured number of
// random-permutation restarts and keeps the largest set found.
func misStages(gates []circuit.CZ, restarts int, rng *rand.Rand) []stage.Stage {
	if len(gates) == 0 {
		return nil
	}
	g := stage.ConflictGraph(gates)
	removed := make([]bool, len(gates))
	remaining := len(gates)
	var stages []stage.Stage
	for remaining > 0 {
		best := g.MaximalIndependentSet(removed)
		for r := 0; r < restarts; r++ {
			if cand := randomMIS(g, removed, rng); len(cand) > len(best) {
				best = cand
			}
		}
		st := stage.Stage{Gates: make([]circuit.CZ, 0, len(best))}
		for _, gi := range best {
			st.Gates = append(st.Gates, gates[gi])
			removed[gi] = true
		}
		remaining -= len(best)
		stages = append(stages, st)
	}
	return stages
}

// randomMIS builds a maximal independent set by scanning the unremoved
// vertices in a random order and keeping each vertex compatible with
// the set so far.
func randomMIS(g *graphutil.Graph, removed []bool, rng *rand.Rand) []int {
	order := rng.Perm(g.N())
	taken := make([]bool, g.N())
	var mis []int
	for _, v := range order {
		if removed[v] {
			continue
		}
		ok := true
		for _, u := range g.Adjacent(v) {
			if taken[u] {
				ok = false
				break
			}
		}
		if ok {
			taken[v] = true
			mis = append(mis, v)
		}
	}
	return mis
}

// stageMoves produces the baseline's forward movement for one stage:
// the lower-indexed qubit of each CZ pair travels to its partner's home
// site (the relocation distance is symmetric, so the choice is a
// deterministic convention). Home sites hold one qubit each, so the
// destination site ends with exactly the interacting pair and no
// clustering arises.
func stageMoves(home *layout.Layout, st stage.Stage) []move.Move {
	a := home.Arch()
	var moves []move.Move
	for _, g := range st.Gates {
		moves = append(moves, move.New(a, g.A, home.SiteOf(g.A), home.SiteOf(g.B)))
	}
	return moves
}

// reverseMoves inverts a set of moves, sending each mover back home.
func reverseMoves(moves []move.Move) []move.Move {
	out := make([]move.Move, len(moves))
	for i, m := range moves {
		out[i] = move.Move{
			Qubit:    m.Qubit,
			FromSite: m.ToSite,
			ToSite:   m.FromSite,
			From:     m.To,
			To:       m.From,
		}
	}
	return out
}
