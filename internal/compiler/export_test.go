package compiler

// MISStagesForTest exposes the Enola staging kernel to the package's
// external differential tests, which replay the pre-refactor baseline
// loop around it.
var MISStagesForTest = misStages
