// Incremental compilation support: per-pass effect declarations, block
// checkpoints, and resumable pipeline runs.
//
// A pass may declare the Context state it reads and writes (Effects).
// From those declarations the driver decides whether a pipeline is
// Resumable: a resumable pipeline's pre-loop passes depend only on the
// whole circuit and the architecture, and its per-block lowering
// depends only on the current block plus the state a Checkpoint
// restores (working layout, program prefix, stage counter). For such a
// pipeline, a compile of a circuit sharing a block prefix with an
// earlier compile can replay the earlier run's Checkpoint — skipping
// validation, placement, and every already-lowered block — and run only
// the divergent tail. The replayed run is byte-identical to a cold
// compile of the same circuit: layouts, programs, and stats counters
// are deterministic functions of the block prefix, and the recorder
// snapshot folds the in-flight lowering frame so per-pass call counts
// and counter deltas match the cold breakdown exactly.
package compiler

import (
	"fmt"
	"time"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/isa"
	"powermove/internal/layout"
)

// Effects is a bitmask declaring the Context state a pass reads and
// writes. The driver uses the declarations to decide resumability; they
// are documentation the compiler can act on, not an enforcement
// mechanism.
type Effects uint32

// The effect bits.
const (
	// ReadsBlock: the pass depends on the current block and the
	// per-block dataflow fields (Stages, Moves, Groups, Batches).
	ReadsBlock Effects = 1 << iota
	// ReadsCircuit: the pass depends on the whole circuit.
	ReadsCircuit
	// ReadsArch: the pass depends on the architecture.
	ReadsArch
	// ReadsConfig: the pass depends on construction-time configuration
	// (alpha, grouping choice, restart counts).
	ReadsConfig
	// ReadsLayout: the pass depends on the working layout.
	ReadsLayout
	// ReadsRNG: the pass consumes the Context RNG when one is seeded.
	ReadsRNG
	// WritesCircuit: the pass replaces the circuit (block fusion). A
	// pipeline with such a pass is never resumable — the caller's block
	// hashes no longer describe the circuit being lowered.
	WritesCircuit
	// WritesLayout: the pass mutates Initial or the working layout.
	WritesLayout
	// WritesProgram: the pass appends to the program under construction.
	WritesProgram
)

// EffectsDeclarer is implemented by passes that declare their effects.
// Passes built with plain NewPass declare nothing and are treated
// conservatively (their pipeline is not resumable).
type EffectsDeclarer interface {
	Effects() Effects
}

// effectsPass is a passFunc with an effect declaration.
type effectsPass struct {
	passFunc
	eff Effects
}

func (p effectsPass) Effects() Effects { return p.eff }

// NewPassEffects wraps fn as a named Pass declaring eff.
func NewPassEffects(name string, eff Effects, fn func(*Context) error) Pass {
	return effectsPass{passFunc{name: name, fn: fn}, eff}
}

// effectsOf returns a pass's declaration, reporting whether it made one.
func effectsOf(p Pass) (Effects, bool) {
	d, ok := p.(EffectsDeclarer)
	if !ok {
		return 0, false
	}
	return d.Effects(), true
}

// Resumable reports whether the pipeline supports checkpoint capture and
// resume. It requires:
//
//   - no init funcs (RNG seeding makes pass behavior depend on how many
//     random draws preceded the current block — state a Checkpoint does
//     not carry);
//   - exactly one lowering loop, in the final pass slot;
//   - every pre-loop pass declares effects and neither rewrites the
//     circuit nor consumes randomness;
//   - every loop sub-pass declares effects and depends only on the
//     current block, never the whole circuit. (ReadsRNG is tolerated
//     here: with no init funcs the RNG is nil and the declaration is
//     vacuous.)
func (p *Pipeline) Resumable() bool {
	if len(p.init) > 0 {
		return false
	}
	var loop *blockLoop
	for i, pass := range p.passes {
		if bl, ok := pass.(*blockLoop); ok {
			if loop != nil || i != len(p.passes)-1 {
				return false
			}
			loop = bl
			continue
		}
		eff, ok := effectsOf(pass)
		if !ok || eff&(WritesCircuit|ReadsRNG) != 0 {
			return false
		}
	}
	if loop == nil {
		return false
	}
	for _, pass := range loop.blockPasses {
		eff, ok := effectsOf(pass)
		if !ok || eff&(ReadsCircuit|WritesCircuit) != 0 {
			return false
		}
	}
	for _, pass := range loop.stagePasses {
		eff, ok := effectsOf(pass)
		if !ok || eff&(ReadsCircuit|WritesCircuit) != 0 {
			return false
		}
	}
	return true
}

// Checkpoint is the complete resumable state of a compilation after a
// whole number of blocks: enough to continue lowering from the next
// block as if the prefix had just been compiled. Checkpoints are
// immutable once captured — Resume clones the working layout and
// copy-on-append shares the instruction prefix — so one checkpoint can
// seed any number of concurrent resumed runs.
type Checkpoint struct {
	// Blocks is the number of completed blocks the checkpoint covers.
	Blocks int
	// StageID is the global stage counter after the covered blocks.
	StageID int
	// Initial is the placement the compiled program starts from. It is
	// shared, not cloned: placement never mutates it after the place
	// pass.
	Initial *layout.Layout
	// Layout is the working layout after the covered blocks (cloned at
	// capture).
	Layout *layout.Layout
	// Instr is the program prefix emitted by the covered blocks.
	Instr []isa.Instruction
	// Stats holds the compilation counters at capture (wall-clock
	// fields zeroed).
	Stats Stats
	// Elapsed is the compile wall clock invested up to the capture —
	// what a resume from this checkpoint saves.
	Elapsed time.Duration

	rec recorderState
}

// RunOptions parameterizes RunOpts beyond the plain Run path.
type RunOptions struct {
	// Resume continues compilation from a checkpoint instead of
	// starting cold: validation and placement are skipped (their
	// products are restored from the checkpoint) and lowering starts at
	// block Resume.Blocks. The circuit must agree with the checkpoint's
	// covered prefix — the caller establishes that via content hashes —
	// and the architecture must share the donor's shape.
	Resume *Checkpoint
	// WarmStart, on a cold run, seeds the placement pass with a hint
	// layout from a similar earlier compile; placement keeps every
	// compatible assignment and repairs the rest. Ignored on resume.
	WarmStart *layout.Layout
	// Capture, when set, receives a checkpoint after every completed
	// block.
	Capture func(Checkpoint)
}

// RunOpts is Run with incremental-compilation options. Zero opts is
// exactly Run.
func (p *Pipeline) RunOpts(circ *circuit.Circuit, a *arch.Arch, opts RunOptions) (*Result, error) {
	if circ == nil || a == nil {
		return nil, fmt.Errorf("%s: nil circuit or architecture", p.name)
	}
	if opts.Resume != nil {
		return p.resume(circ, a, opts)
	}
	return p.runCold(circ, a, opts)
}

// runCold is the ordinary full run, with optional capture and warm-start
// hint threaded into the context.
func (p *Pipeline) runCold(circ *circuit.Circuit, a *arch.Arch, opts RunOptions) (*Result, error) {
	start := time.Now()
	ctx := &Context{Circuit: circ, Arch: a, rec: newRecorder(), runStart: start, warmHint: opts.WarmStart}
	if opts.Capture != nil {
		ctx.capture = func(c *Context) { opts.Capture(c.checkpoint(time.Now())) }
	}
	for _, f := range p.init {
		if err := f(ctx); err != nil {
			return nil, fmt.Errorf("%s: %w", p.name, err)
		}
	}
	for _, pass := range p.passes {
		if err := ctx.rec.run(ctx, pass); err != nil {
			return nil, fmt.Errorf("%s: %w", p.name, err)
		}
	}
	ctx.Stats.CompileTime = time.Since(start)
	ctx.Stats.Passes = ctx.rec.stats()
	return &Result{Program: ctx.Program, Initial: ctx.Initial, Stats: ctx.Stats}, nil
}

// resume continues a compilation from a checkpoint: restore the
// context, then run only the lowering loop starting at the first
// uncovered block. The reported CompileTime is the checkpoint's
// invested wall clock plus the tail's, so the duration contract
// (pass self-times sum to ~CompileTime) still holds.
func (p *Pipeline) resume(circ *circuit.Circuit, a *arch.Arch, opts RunOptions) (*Result, error) {
	cp := opts.Resume
	if !p.Resumable() {
		return nil, fmt.Errorf("%s: pipeline is not resumable", p.name)
	}
	if cp.Initial == nil || cp.Layout == nil {
		return nil, fmt.Errorf("%s: checkpoint missing layouts", p.name)
	}
	if cp.Initial.Qubits() != circ.Qubits {
		return nil, fmt.Errorf("%s: checkpoint covers %d qubits, circuit has %d", p.name, cp.Initial.Qubits(), circ.Qubits)
	}
	if cp.Blocks > len(circ.Blocks) {
		return nil, fmt.Errorf("%s: checkpoint covers %d blocks, circuit has %d", p.name, cp.Blocks, len(circ.Blocks))
	}
	if !sameShape(cp.Initial.Arch(), a) {
		return nil, fmt.Errorf("%s: checkpoint architecture differs in shape", p.name)
	}
	// The validate pass ran before the checkpoint and its accounting is
	// part of the restored recorder state, but the tail blocks are new
	// input: re-check the structural invariants without recording.
	if err := circ.Validate(); err != nil {
		return nil, fmt.Errorf("%s: validate: %w", p.name, err)
	}
	start := time.Now()
	ctx := &Context{
		Circuit: circ,
		Arch:    a,
		Initial: cp.Initial,
		Layout:  cp.Layout.Clone(),
		// Full capacity forces the first tail append to copy, so the
		// checkpoint's prefix is never written through.
		Program:     &isa.Program{Name: circ.Name, Qubits: circ.Qubits, Instr: cp.Instr[:len(cp.Instr):len(cp.Instr)]},
		Stats:       cp.Stats,
		StageID:     cp.StageID,
		startBlock:  cp.Blocks,
		runStart:    start,
		baseElapsed: cp.Elapsed,
		rec:         seededRecorder(cp.rec),
	}
	if opts.Capture != nil {
		ctx.capture = func(c *Context) { opts.Capture(c.checkpoint(time.Now())) }
	}
	var loop Pass
	for _, pass := range p.passes {
		if _, ok := pass.(*blockLoop); ok {
			loop = pass
		}
	}
	if err := ctx.rec.run(ctx, loop); err != nil {
		return nil, fmt.Errorf("%s: %w", p.name, err)
	}
	ctx.Stats.CompileTime = cp.Elapsed + time.Since(start)
	ctx.Stats.Passes = ctx.rec.stats()
	return &Result{Program: ctx.Program, Initial: ctx.Initial, Stats: ctx.Stats}, nil
}

// sameShape reports whether two architectures agree in every field a
// checkpointed layout depends on.
func sameShape(x, y *arch.Arch) bool {
	return x.ComputeRows == y.ComputeRows && x.ComputeCols == y.ComputeCols &&
		x.StorageRows == y.StorageRows && x.StorageCols == y.StorageCols &&
		x.AODs == y.AODs
}

// checkpoint captures the context's resumable state after the current
// block.
func (c *Context) checkpoint(now time.Time) Checkpoint {
	st := c.Stats
	st.CompileTime = 0
	st.Passes = nil
	instr := make([]isa.Instruction, len(c.Program.Instr))
	copy(instr, c.Program.Instr)
	return Checkpoint{
		Blocks:  c.BlockIndex + 1,
		StageID: c.StageID,
		Initial: c.Initial,
		Layout:  c.Layout.Clone(),
		Instr:   instr,
		Stats:   st,
		Elapsed: c.baseElapsed + now.Sub(c.runStart),
		rec:     c.rec.snapshot(c, now),
	}
}

// placeWarm places every qubit on its hint site when the site is
// compatible — right zone, in bounds, still free — and repairs the rest
// onto the zone's first free sites in row-major order. With a row-major
// hint (every placement this compiler produces cold) the repair is the
// identity, so warm-started defaults stay byte-identical to cold runs;
// an arbitrary legal hint yields a different but equally valid initial
// layout, which the differential tests pin legal-and-equivalent.
func placeWarm(dst *layout.Layout, hint *layout.Layout, z arch.Zone) {
	a := dst.Arch()
	var deferred []int
	for q := 0; q < dst.Qubits(); q++ {
		if !hint.Placed(q) {
			deferred = append(deferred, q)
			continue
		}
		s := hint.SiteOf(q)
		if s.Zone == z && a.InBounds(s) && dst.Occupancy(s) == 0 {
			dst.Place(q, s)
			continue
		}
		deferred = append(deferred, q)
	}
	if len(deferred) == 0 {
		return
	}
	sites := a.Sites(z)
	next := 0
	for _, q := range deferred {
		for next < len(sites) && dst.Occupancy(sites[next]) > 0 {
			next++
		}
		if next >= len(sites) {
			// The validate pass guaranteed capacity; unreachable.
			panic(fmt.Sprintf("compiler: zone %v exhausted repairing warm placement", z))
		}
		dst.Place(q, sites[next])
		next++
	}
}
