package compiler

import (
	"reflect"
	"testing"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/layout"
)

// incrTestCircuit builds a deterministic multi-block circuit whose
// blocks all differ: block i carries i%3 single-qubit gates and two
// disjoint CZ pairs sliding across the register.
func incrTestCircuit(name string, n, blocks int) *circuit.Circuit {
	c := circuit.New(name, n)
	for i := 0; i < blocks; i++ {
		a := i % (n - 3)
		c.AddBlock(i%3, circuit.NewCZ(a, a+1), circuit.NewCZ(a+2, a+3))
	}
	return c
}

// TestResumableTable pins which pipeline compositions support
// checkpoint resume: the deterministic zoned pipelines do; anything
// seeding an RNG (enola's mis-stage, the random mover) or rewriting the
// circuit (block fusion) does not.
func TestResumableTable(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Pipeline, error)
		want  bool
	}{
		{"zoned", func() (*Pipeline, error) { return Zoned(ZonedConfig{UseStorage: true}) }, true},
		{"zoned-non-storage", func() (*Pipeline, error) { return Zoned(ZonedConfig{}) }, true},
		{"zoned-distance", func() (*Pipeline, error) { return Zoned(ZonedConfig{UseStorage: true, Grouping: GroupingDistance}) }, true},
		{"zoned-random-mover", func() (*Pipeline, error) { return Zoned(ZonedConfig{UseStorage: true, RandomMover: true, Seed: 7}) }, false},
		{"zoned-fuse", func() (*Pipeline, error) { return Zoned(ZonedConfig{UseStorage: true, FuseBlocks: true}) }, false},
		{"enola", func() (*Pipeline, error) { return Enola(EnolaConfig{}) }, false},
	}
	for _, tc := range cases {
		p, err := tc.build()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := p.Resumable(); got != tc.want {
			t.Errorf("%s: Resumable() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// stabilized strips the wall-clock fields that legitimately differ
// between a cold and a resumed run, leaving everything the byte-identity
// contract covers: program, counters, and the full per-pass breakdown
// (calls and counter deltas).
func stabilized(r *Result) (isaInstr any, stats Stats) {
	stats = r.Stats
	stats.CompileTime = 0
	stats.Passes = stats.Passes.Stabilized()
	return r.Program.Instr, stats
}

// sameSites reports whether two layouts place every qubit identically.
func sameSites(t *testing.T, a, b *layout.Layout) {
	t.Helper()
	if a.Qubits() != b.Qubits() {
		t.Fatalf("layout qubit counts differ: %d vs %d", a.Qubits(), b.Qubits())
	}
	for q := 0; q < a.Qubits(); q++ {
		if a.SiteOf(q) != b.SiteOf(q) {
			t.Fatalf("qubit %d placed at %v vs %v", q, a.SiteOf(q), b.SiteOf(q))
		}
	}
}

// TestResumeByteIdentity: resuming from any checkpoint of a captured
// run reproduces the cold compile exactly — same program, same initial
// layout, same counters, same per-pass calls and counter deltas — for
// the unchanged circuit at every prefix length, and for a tail-mutated
// circuit resumed from the last shared checkpoint.
func TestResumeByteIdentity(t *testing.T) {
	const n, blocks = 12, 8
	circ := incrTestCircuit("incr", n, blocks)
	hw := arch.New(arch.Config{Qubits: n})
	p, err := Zoned(ZonedConfig{UseStorage: true})
	if err != nil {
		t.Fatal(err)
	}

	var cps []Checkpoint
	captured, err := p.RunOpts(circ, hw, RunOptions{Capture: func(cp Checkpoint) { cps = append(cps, cp) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != blocks {
		t.Fatalf("captured %d checkpoints, want %d", len(cps), blocks)
	}
	cold, err := p.Run(circ, hw)
	if err != nil {
		t.Fatal(err)
	}
	// Capture must not perturb the compile itself.
	capInstr, capStats := stabilized(captured)
	coldInstr, coldStats := stabilized(cold)
	if !reflect.DeepEqual(capInstr, coldInstr) || !reflect.DeepEqual(capStats, coldStats) {
		t.Fatal("capturing checkpoints changed the compile output")
	}

	for k := 1; k <= blocks; k++ {
		res, err := p.RunOpts(circ, hw, RunOptions{Resume: &cps[k-1]})
		if err != nil {
			t.Fatalf("resume at k=%d: %v", k, err)
		}
		gotInstr, gotStats := stabilized(res)
		if !reflect.DeepEqual(gotInstr, coldInstr) {
			t.Errorf("resume at k=%d: program diverged from cold compile", k)
		}
		if !reflect.DeepEqual(gotStats, coldStats) {
			t.Errorf("resume at k=%d: stats diverged:\n got %+v\nwant %+v", k, gotStats, coldStats)
		}
		sameSites(t, res.Initial, cold.Initial)
	}

	// Tail mutation: the last block changes, the first blocks-1 are a
	// shared prefix. Resume from the deepest shared checkpoint must be
	// byte-identical to a cold compile of the mutated circuit.
	mut := circ.Clone()
	mut.Blocks[blocks-1].OneQ += 2
	mut.Blocks[blocks-1].Gates = mut.Blocks[blocks-1].Gates[:1]
	coldMut, err := p.Run(mut, hw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunOpts(mut, hw, RunOptions{Resume: &cps[blocks-2]})
	if err != nil {
		t.Fatal(err)
	}
	wantInstr, wantStats := stabilized(coldMut)
	gotInstr, gotStats := stabilized(res)
	if !reflect.DeepEqual(gotInstr, wantInstr) || !reflect.DeepEqual(gotStats, wantStats) {
		t.Errorf("tail-mutated resume diverged from cold compile of the mutated circuit:\n got %+v\nwant %+v", gotStats, wantStats)
	}
	sameSites(t, res.Initial, coldMut.Initial)

	// The resumed runs above must not have corrupted the checkpoints:
	// a second resume from an already-used checkpoint still matches.
	res2, err := p.RunOpts(circ, hw, RunOptions{Resume: &cps[blocks-2]})
	if err != nil {
		t.Fatal(err)
	}
	gotInstr2, gotStats2 := stabilized(res2)
	if !reflect.DeepEqual(gotInstr2, coldInstr) || !reflect.DeepEqual(gotStats2, coldStats) {
		t.Error("checkpoint reuse after a divergent resume no longer matches the cold compile")
	}
}

// TestResumeRejections: resume validates its inputs instead of
// producing corrupt programs.
func TestResumeRejections(t *testing.T) {
	const n, blocks = 12, 4
	circ := incrTestCircuit("rej", n, blocks)
	hw := arch.New(arch.Config{Qubits: n})
	p, err := Zoned(ZonedConfig{UseStorage: true})
	if err != nil {
		t.Fatal(err)
	}
	var cps []Checkpoint
	if _, err := p.RunOpts(circ, hw, RunOptions{Capture: func(cp Checkpoint) { cps = append(cps, cp) }}); err != nil {
		t.Fatal(err)
	}
	cp := cps[blocks-1]

	short := incrTestCircuit("short", n, blocks-2)
	if _, err := p.RunOpts(short, hw, RunOptions{Resume: &cp}); err == nil {
		t.Error("checkpoint deeper than the circuit accepted")
	}
	other := incrTestCircuit("other", n+2, blocks)
	bigHW := arch.New(arch.Config{Qubits: n + 2})
	if _, err := p.RunOpts(other, bigHW, RunOptions{Resume: &cp}); err == nil {
		t.Error("qubit-count mismatch accepted")
	}
	if _, err := p.RunOpts(circ, arch.New(arch.Config{Qubits: n, AODs: 2}), RunOptions{Resume: &cps[0]}); err == nil {
		t.Error("architecture shape mismatch accepted")
	}
	rm, err := Zoned(ZonedConfig{UseStorage: true, RandomMover: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rm.RunOpts(circ, hw, RunOptions{Resume: &cp}); err == nil {
		t.Error("non-resumable pipeline accepted a resume")
	}
}

// TestWarmStartIdentityHint: a warm-start hint that is itself a cold
// placement (row-major) repairs to the identity, so the warm-started
// compile stays byte-identical to the cold one — the property that lets
// the service leave warm-start on by default.
func TestWarmStartIdentityHint(t *testing.T) {
	const n, blocks = 12, 5
	circ := incrTestCircuit("warm-id", n, blocks)
	hw := arch.New(arch.Config{Qubits: n})
	p, err := Zoned(ZonedConfig{UseStorage: true})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.Run(circ, hw)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := p.RunOpts(circ, hw, RunOptions{WarmStart: cold.Initial})
	if err != nil {
		t.Fatal(err)
	}
	coldInstr, coldStats := stabilized(cold)
	warmInstr, warmStats := stabilized(warm)
	if !reflect.DeepEqual(warmInstr, coldInstr) || !reflect.DeepEqual(warmStats, coldStats) {
		t.Error("row-major warm hint changed the compile output")
	}
	sameSites(t, warm.Initial, cold.Initial)
}

// TestPlaceWarmRepair: incompatible hint assignments (wrong zone) are
// repaired onto free sites; compatible ones survive.
func TestPlaceWarmRepair(t *testing.T) {
	const n = 8
	hw := arch.New(arch.Config{Qubits: n})
	sites := hw.Sites(arch.Compute)
	if len(sites) < n {
		t.Fatalf("compute zone too small for the test: %d sites", len(sites))
	}

	hint := layout.New(hw, n)
	// Reversed placement: legal, scrambled relative to row-major.
	for q := 0; q < n; q++ {
		hint.Place(q, sites[n-1-q])
	}
	// Qubit 0 in the wrong zone: its hint is incompatible and must be
	// repaired onto a free compute site.
	storage := hw.Sites(arch.Storage)
	if len(storage) > 0 {
		hint.Move(0, storage[0])
	}

	dst := layout.New(hw, n)
	placeWarm(dst, hint, arch.Compute)
	for q := 0; q < n; q++ {
		if !dst.Placed(q) {
			t.Fatalf("qubit %d left unplaced after warm repair", q)
		}
		s := dst.SiteOf(q)
		if s.Zone != arch.Compute || dst.Occupancy(s) != 1 {
			t.Fatalf("qubit %d at %v: zone/occupancy violated", q, s)
		}
	}
	// Qubits 2..n-1 had compatible hints and must keep them.
	for q := 2; q < n; q++ {
		if dst.SiteOf(q) != sites[n-1-q] {
			t.Errorf("qubit %d lost its compatible hint site", q)
		}
	}
}
