package compiler_test

import (
	"testing"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/compiler"
	"powermove/internal/layout"
	"powermove/internal/verify"
	"powermove/internal/workload"
)

// TestWarmStartDifferential: warm-started compiles under arbitrary
// (legal but scrambled) placement hints must still produce physically
// legal programs semantically equivalent to their circuits — the PR 5
// differential suite's contract, extended to the warm-start path. The
// output may differ from the cold compile (a different initial layout
// is a different, equally valid starting point); what is pinned is
// legality and equivalence, plus that every qubit ends up placed
// exactly once in the requested zone.
func TestWarmStartDifferential(t *testing.T) {
	circuits := []*circuit.Circuit{
		workload.QFT(10),
		workload.VQE(12),
		workload.QSim(11, 3),
	}
	configs := []struct {
		name string
		cfg  compiler.ZonedConfig
	}{
		{"with-storage", compiler.ZonedConfig{UseStorage: true}},
		{"non-storage", compiler.ZonedConfig{}},
		{"distance", compiler.ZonedConfig{UseStorage: true, Grouping: compiler.GroupingDistance}},
	}
	for _, tc := range configs {
		p, err := compiler.Zoned(tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		zone := arch.Compute
		if tc.cfg.UseStorage {
			zone = arch.Storage
		}
		for _, circ := range circuits {
			hw := arch.New(arch.Config{Qubits: circ.Qubits})
			// A scrambled legal hint: qubits on the zone's sites in
			// reversed row-major order, so warm placement keeps every
			// assignment but produces a layout no cold run would.
			sites := hw.Sites(zone)
			hint := layout.New(hw, circ.Qubits)
			for q := 0; q < circ.Qubits; q++ {
				hint.Place(q, sites[len(sites)-1-q])
			}
			res, err := p.RunOpts(circ, hw, compiler.RunOptions{WarmStart: hint})
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, circ.Name, err)
			}
			for q := 0; q < circ.Qubits; q++ {
				if !res.Initial.Placed(q) || res.Initial.SiteOf(q) != sites[len(sites)-1-q] {
					t.Fatalf("%s/%s: qubit %d did not keep its legal hint site", tc.name, circ.Name, q)
				}
			}
			if r := verify.All(circ, res.Program, res.Initial); !r.OK() {
				t.Errorf("%s/%s: warm-started compile failed verification:\n%s", tc.name, circ.Name, r)
			}
		}
	}
}
