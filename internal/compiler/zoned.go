// The zoned pipeline: the PowerMove compiler of the paper (Fig. 1b) as
// a pass composition over the pass-manager driver — the Stage Scheduler
// (internal/stage), the Continuous Router (internal/router), and the
// Coll-Move Scheduler (internal/collsched), lowered to internal/isa.
package compiler

import (
	"fmt"
	"math/rand"
	"strings"

	"powermove/internal/arch"
	"powermove/internal/collsched"
	"powermove/internal/fuse"
	"powermove/internal/isa"
	"powermove/internal/layout"
	"powermove/internal/move"
	"powermove/internal/router"
	"powermove/internal/stage"
)

// The grouping pass implementations selectable by name. The names are
// the one registry every layer validates against: ZonedConfig.Grouping,
// core.Options.Grouping, and the service's "grouping" request field all
// resolve here, so an unknown name fails pipeline construction with a
// descriptive error instead of silently selecting a default.
const (
	// GroupingMerged is the default: displacement buckets greedily
	// merged in ascending distance order (move.Group).
	GroupingMerged = "merged"
	// GroupingDistance is the paper's literal ascending-distance
	// first-fit (move.GroupByDistance).
	GroupingDistance = "distance"
	// GroupingInOrder is arrival-order first-fit (move.GroupInOrder).
	GroupingInOrder = "in-order"
)

// GroupingNames returns the valid grouping pass names in preference
// order (the first is the default).
func GroupingNames() []string {
	return []string{GroupingMerged, GroupingDistance, GroupingInOrder}
}

// groupingFunc resolves a grouping name ("" selects the default) or
// reports a descriptive configuration error.
func groupingFunc(name string) (func([]move.Move) []move.CollMove, error) {
	switch name {
	case "", GroupingMerged:
		return move.Group, nil
	case GroupingDistance:
		return move.GroupByDistance, nil
	case GroupingInOrder:
		return move.GroupInOrder, nil
	default:
		return nil, fmt.Errorf("compiler: unknown grouping %q (want %s)",
			name, strings.Join(GroupingNames(), ", "))
	}
}

// ValidateGrouping reports whether name selects a grouping pass; the
// empty name selects the default. The service's request validation uses
// it so bad names fail as 400s before touching a worker.
func ValidateGrouping(name string) error {
	_, err := groupingFunc(name)
	return err
}

// NormalizeGrouping canonicalizes a grouping name: an explicit default
// collapses to the empty name, so cache identities and key renderings
// treat "merged" and an omitted grouping as the same configuration.
// Unknown names pass through unchanged for validation to reject.
func NormalizeGrouping(name string) string {
	if name == GroupingMerged {
		return ""
	}
	return name
}

// ZonedConfig configures one zoned pipeline. The zero value is the full
// with-storage-off default: continuous routing inside the computation
// zone with merged grouping.
type ZonedConfig struct {
	// UseStorage selects the full zoned pipeline; false runs the
	// continuous router alone inside the computation zone.
	UseStorage bool
	// Alpha is the stage-ordering weight of Sec. 4.2; zero selects
	// stage.DefaultAlpha. Must lie in (0, 1) when set.
	Alpha float64
	// RandomMover enables the paper's random mobile/static choice for
	// compute-zone pairs (Sec. 5.2 case 4); Seed drives it.
	RandomMover bool
	Seed        int64
	// DisableStageOrder drops the stage-order pass even in with-storage
	// mode (ablation).
	DisableStageOrder bool
	// DisableIntraStageOrder drops the collsched-order pass even in
	// with-storage mode (ablation).
	DisableIntraStageOrder bool
	// Grouping names the Coll-Move grouping pass; "" selects
	// GroupingMerged. Unknown names fail Zoned with a descriptive
	// error.
	Grouping string
	// FuseBlocks inserts the block-fusion pre-pass (internal/fuse).
	FuseBlocks bool
}

// Zoned validates cfg and assembles the PowerMove pipeline:
//
//	validate → fuse? → place → lower(per block: stage-partition →
//	stage-order? → per stage: route → group → collsched-order? →
//	batch → emit)
//
// Ablation flags substitute passes here, at construction, so the run
// path has no mode branches.
func Zoned(cfg ZonedConfig) (*Pipeline, error) {
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = stage.DefaultAlpha
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("compiler: alpha %v outside (0, 1)", alpha)
	}
	group, err := groupingFunc(cfg.Grouping)
	if err != nil {
		return nil, err
	}

	blockPasses := []Pass{stagePartitionPass()}
	if cfg.UseStorage && !cfg.DisableStageOrder {
		blockPasses = append(blockPasses, stageOrderPass(alpha))
	}
	stagePasses := []Pass{routePass(cfg.UseStorage), groupPass(group)}
	if cfg.UseStorage && !cfg.DisableIntraStageOrder {
		stagePasses = append(stagePasses, collschedOrderPass())
	}
	stagePasses = append(stagePasses, batchPass(), emitPass())

	passes := []Pass{validatePass(cfg.UseStorage)}
	if cfg.FuseBlocks {
		passes = append(passes, fusePass())
	}
	passes = append(passes,
		placePass(cfg.UseStorage),
		&blockLoop{blockPasses: blockPasses, stagePasses: stagePasses},
	)

	p, err := New("zoned", passes...)
	if err != nil {
		return nil, err
	}
	if cfg.RandomMover {
		seed := cfg.Seed
		p.init = append(p.init, func(ctx *Context) error {
			ctx.RNG = rand.New(rand.NewSource(seed))
			return nil
		})
	}
	return p, nil
}

// validatePass checks the circuit against the architecture's capacity.
func validatePass(useStorage bool) Pass {
	return NewPassEffects("validate", ReadsCircuit|ReadsArch, func(ctx *Context) error {
		if err := ctx.Circuit.Validate(); err != nil {
			return err
		}
		if ctx.Circuit.Qubits > ctx.Arch.ComputeSites() {
			return fmt.Errorf("%d qubits exceed %d computation sites", ctx.Circuit.Qubits, ctx.Arch.ComputeSites())
		}
		if useStorage && ctx.Circuit.Qubits > ctx.Arch.StorageSites() {
			return fmt.Errorf("%d qubits exceed %d storage sites", ctx.Circuit.Qubits, ctx.Arch.StorageSites())
		}
		return nil
	})
}

// fusePass merges consecutive blocks with disjoint gate supports
// (internal/fuse) so they share Rydberg stages.
func fusePass() Pass {
	return NewPassEffects("fuse", ReadsCircuit|WritesCircuit, func(ctx *Context) error {
		ctx.Circuit = fuse.Circuit(ctx.Circuit, fuse.Options{})
		return nil
	})
}

// placePass builds the initial layout (storage zone for the zoned mode,
// row-major computation zone otherwise), the working layout, and the
// empty program. A warm-start hint, when present and qubit-compatible,
// seeds the placement from a similar earlier compile's layout instead
// of from scratch; placeWarm keeps every compatible assignment and
// repairs the rest, so a row-major hint reproduces the cold placement
// exactly.
func placePass(useStorage bool) Pass {
	return NewPassEffects("place", ReadsCircuit|ReadsArch|WritesLayout|WritesProgram, func(ctx *Context) error {
		zone := arch.Compute
		if useStorage {
			zone = arch.Storage
		}
		ctx.Initial = layout.New(ctx.Arch, ctx.Circuit.Qubits)
		if hint := ctx.warmHint; hint != nil && hint.Qubits() == ctx.Circuit.Qubits {
			placeWarm(ctx.Initial, hint, zone)
		} else {
			ctx.Initial.PlaceAll(zone)
		}
		ctx.Layout = ctx.Initial.Clone()
		ctx.Program = &isa.Program{Name: ctx.Circuit.Name, Qubits: ctx.Circuit.Qubits}
		return nil
	})
}

// stagePartitionPass schedules the block's gates into Rydberg stages by
// greedy conflict-graph coloring (internal/stage).
func stagePartitionPass() Pass {
	return NewPassEffects("stage-partition", ReadsBlock, func(ctx *Context) error {
		ctx.Stages = stage.Partition(ctx.Block.Gates)
		ctx.Stats.Stages += len(ctx.Stages)
		return nil
	})
}

// stageOrderPass reorders the block's stages to minimize inter-zone
// traffic (Sec. 4.2).
func stageOrderPass(alpha float64) Pass {
	return NewPassEffects("stage-order", ReadsBlock|ReadsConfig, func(ctx *Context) error {
		ctx.Stages = stage.Order(ctx.Stages, alpha)
		return nil
	})
}

// routePass runs the continuous router for the current stage, mutating
// the working layout.
func routePass(useStorage bool) Pass {
	return NewPassEffects("route", ReadsBlock|ReadsLayout|ReadsArch|ReadsConfig|ReadsRNG|WritesLayout, func(ctx *Context) error {
		moves, err := router.Route(ctx.Layout, *ctx.Stage, useStorage, ctx.RNG)
		if err != nil {
			return fmt.Errorf("block %d stage %d: %w", ctx.BlockIndex, ctx.StageID, err)
		}
		ctx.Moves = moves
		ctx.Stats.Moves += len(moves)
		return nil
	})
}

// groupPass packs the stage's movements into Coll-Moves with the
// configured heuristic. All three grouping implementations share the
// pass name, so breakdowns aggregate per slot across configurations.
func groupPass(group func([]move.Move) []move.CollMove) Pass {
	return NewPassEffects("group", ReadsBlock|ReadsConfig, func(ctx *Context) error {
		ctx.Groups = group(ctx.Moves)
		ctx.Stats.CollMoves += len(ctx.Groups)
		return nil
	})
}

// collschedOrderPass orders Coll-Moves move-ins-first (Sec. 6).
func collschedOrderPass() Pass {
	return NewPassEffects("collsched-order", ReadsBlock, func(ctx *Context) error {
		ctx.Groups = collsched.OrderByStorageFlow(ctx.Groups)
		return nil
	})
}

// batchPass packs ordered Coll-Moves onto the architecture's AOD
// arrays.
func batchPass() Pass {
	return NewPassEffects("batch", ReadsBlock|ReadsArch, func(ctx *Context) error {
		ctx.Batches = collsched.Batch(ctx.Groups, ctx.Arch.AODs)
		ctx.Stats.Batches += len(ctx.Batches)
		return nil
	})
}

// emitPass appends the stage's move batches and Rydberg pulse to the
// program.
func emitPass() Pass {
	return NewPassEffects("emit", ReadsBlock|WritesProgram, func(ctx *Context) error {
		for _, batch := range ctx.Batches {
			ctx.Program.Instr = append(ctx.Program.Instr, batch)
		}
		ctx.Program.Instr = append(ctx.Program.Instr, isa.Rydberg{Stage: ctx.StageID, Pairs: ctx.Stage.Gates})
		return nil
	})
}
