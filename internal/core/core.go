// Package core assembles the PowerMove compiler pipeline (Fig. 1b of the
// paper) from its three components: the Stage Scheduler (internal/stage),
// the Continuous Router (internal/router), and the Coll-Move Scheduler
// (internal/collsched). Compile lowers a synthesized circuit to the
// executable instruction stream of internal/isa.
//
// Two modes mirror the paper's evaluation columns:
//
//   - with-storage (Options.UseStorage = true): the full pipeline. The
//     initial layout sits entirely in the storage zone, stages are ordered
//     to minimize inter-zone traffic, non-interacting qubits are parked in
//     storage every stage, and Coll-Moves are ordered move-ins-first.
//   - non-storage (Options.UseStorage = false): only the continuous router
//     is applied, within the computation zone, matching the paper's
//     "non-storage" ablation.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/collsched"
	"powermove/internal/fuse"
	"powermove/internal/isa"
	"powermove/internal/layout"
	"powermove/internal/move"
	"powermove/internal/router"
	"powermove/internal/stage"
)

// Options configures one compilation.
type Options struct {
	// UseStorage selects the full zoned pipeline; false runs the
	// continuous router alone inside the computation zone.
	UseStorage bool
	// Alpha is the stage-ordering weight of Sec. 4.2; zero selects
	// stage.DefaultAlpha. Must lie in (0, 1) when set.
	Alpha float64
	// RandomMover enables the paper's random mobile/static choice for
	// compute-zone pairs (Sec. 5.2 case 4). The default deterministic
	// lower-index convention groups movements more densely; RandomMover
	// exists for the ablation benches.
	RandomMover bool
	// Seed drives the random mover choice when RandomMover is set. The
	// same seed reproduces an identical program.
	Seed int64
	// DisableStageOrder keeps stages in partition order even in
	// with-storage mode. It exists for the ablation benches.
	DisableStageOrder bool
	// DisableIntraStageOrder keeps Coll-Moves in grouping order even in
	// with-storage mode. It exists for the ablation benches.
	DisableIntraStageOrder bool
	// Grouping selects the Coll-Move grouping heuristic; the zero value
	// is the default displacement-bucketed grouping. The alternatives
	// exist for the ablation benches.
	Grouping Grouping
	// FuseBlocks runs the block-fusion pre-pass (internal/fuse):
	// consecutive blocks with disjoint gate supports merge and share
	// Rydberg stages. Sound when each block's 1Q layer acts only on
	// that block's gate qubits — the convention of every
	// internal/workload generator; leave it off for circuits of unknown
	// provenance.
	FuseBlocks bool
}

// Grouping selects how 1Q movements are packed into Coll-Moves.
type Grouping int

const (
	// GroupingMerged is the default: displacement buckets greedily
	// merged in ascending distance order (move.Group).
	GroupingMerged Grouping = iota
	// GroupingDistance is the paper's literal ascending-distance
	// first-fit (move.GroupByDistance).
	GroupingDistance
	// GroupingInOrder is arrival-order first-fit (move.GroupInOrder).
	GroupingInOrder
)

// Stats summarizes the compiler's work on one circuit.
type Stats struct {
	// Blocks, Stages, Moves, CollMoves, and Batches count the pipeline
	// products at each level.
	Blocks, Stages, Moves, CollMoves, Batches int
	// CompileTime is the wall-clock compilation duration.
	CompileTime time.Duration
}

// Result carries a compiled program together with the initial layout it
// must be executed from.
type Result struct {
	Program *isa.Program
	Initial *layout.Layout
	Stats   Stats
}

// Compile lowers circ for architecture a. The returned program starts from
// Result.Initial: all qubits in storage (with-storage mode) or placed
// row-major in the computation zone (non-storage mode).
func Compile(circ *circuit.Circuit, a *arch.Arch, opts Options) (*Result, error) {
	start := time.Now()
	if err := circ.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = stage.DefaultAlpha
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("core: alpha %v outside (0, 1)", alpha)
	}
	if circ.Qubits > a.ComputeSites() {
		return nil, fmt.Errorf("core: %d qubits exceed %d computation sites", circ.Qubits, a.ComputeSites())
	}
	if opts.UseStorage && circ.Qubits > a.StorageSites() {
		return nil, fmt.Errorf("core: %d qubits exceed %d storage sites", circ.Qubits, a.StorageSites())
	}
	if opts.FuseBlocks {
		circ = fuse.Circuit(circ, fuse.Options{})
	}

	initial := layout.New(a, circ.Qubits)
	if opts.UseStorage {
		initial.PlaceAll(arch.Storage)
	} else {
		initial.PlaceAll(arch.Compute)
	}

	l := initial.Clone()
	var rng *rand.Rand
	if opts.RandomMover {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	prog := &isa.Program{Name: circ.Name, Qubits: circ.Qubits}
	var stats Stats

	stageID := 0
	for bi := range circ.Blocks {
		b := &circ.Blocks[bi]
		stats.Blocks++
		if b.OneQ > 0 {
			prog.Instr = append(prog.Instr, isa.OneQLayer{Count: b.OneQ})
		}
		stages := stage.Partition(b.Gates)
		if opts.UseStorage && !opts.DisableStageOrder {
			stages = stage.Order(stages, alpha)
		}
		for _, st := range stages {
			moves, err := router.Route(l, st, opts.UseStorage, rng)
			if err != nil {
				return nil, fmt.Errorf("core: block %d stage %d: %w", bi, stageID, err)
			}
			var groups []move.CollMove
			switch opts.Grouping {
			case GroupingDistance:
				groups = move.GroupByDistance(moves)
			case GroupingInOrder:
				groups = move.GroupInOrder(moves)
			default:
				groups = move.Group(moves)
			}
			if opts.UseStorage && !opts.DisableIntraStageOrder {
				groups = collsched.OrderByStorageFlow(groups)
			}
			batches := collsched.Batch(groups, a.AODs)
			for _, batch := range batches {
				prog.Instr = append(prog.Instr, batch)
			}
			prog.Instr = append(prog.Instr, isa.Rydberg{Stage: stageID, Pairs: st.Gates})

			stats.Stages++
			stats.Moves += len(moves)
			stats.CollMoves += len(groups)
			stats.Batches += len(batches)
			stageID++
		}
	}

	stats.CompileTime = time.Since(start)
	return &Result{Program: prog, Initial: initial, Stats: stats}, nil
}
