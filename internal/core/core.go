// Package core is the configuration front end of the PowerMove compiler
// (Fig. 1b of the paper). The pass logic lives in internal/compiler's
// zoned pipeline — validate → fuse? → place → per block:
// stage-partition → stage-order? → per stage: route → group →
// collsched-order? → batch → emit — and this package maps the public
// Options onto a pipeline configuration, so every existing caller keeps
// its API while both compilation schemes share one driver, one stats
// type, and one per-pass observability path.
//
// Two modes mirror the paper's evaluation columns:
//
//   - with-storage (Options.UseStorage = true): the full pipeline. The
//     initial layout sits entirely in the storage zone, stages are ordered
//     to minimize inter-zone traffic, non-interacting qubits are parked in
//     storage every stage, and Coll-Moves are ordered move-ins-first.
//   - non-storage (Options.UseStorage = false): only the continuous router
//     is applied, within the computation zone, matching the paper's
//     "non-storage" ablation.
package core

import (
	"fmt"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/compiler"
)

// Options configures one compilation.
type Options struct {
	// UseStorage selects the full zoned pipeline; false runs the
	// continuous router alone inside the computation zone.
	UseStorage bool
	// Alpha is the stage-ordering weight of Sec. 4.2; zero selects
	// stage.DefaultAlpha. Must lie in (0, 1) when set.
	Alpha float64
	// RandomMover enables the paper's random mobile/static choice for
	// compute-zone pairs (Sec. 5.2 case 4). The default deterministic
	// lower-index convention groups movements more densely; RandomMover
	// exists for the ablation benches.
	RandomMover bool
	// Seed drives the random mover choice when RandomMover is set. The
	// same seed reproduces an identical program.
	Seed int64
	// DisableStageOrder keeps stages in partition order even in
	// with-storage mode. It exists for the ablation benches.
	DisableStageOrder bool
	// DisableIntraStageOrder keeps Coll-Moves in grouping order even in
	// with-storage mode. It exists for the ablation benches.
	DisableIntraStageOrder bool
	// Grouping selects the Coll-Move grouping pass; the zero value is
	// the default displacement-bucketed grouping. Out-of-range values
	// are rejected by Compile (they used to silently select the
	// default).
	Grouping Grouping
	// FuseBlocks runs the block-fusion pre-pass (internal/fuse):
	// consecutive blocks with disjoint gate supports merge and share
	// Rydberg stages. Sound when each block's 1Q layer acts only on
	// that block's gate qubits — the convention of every
	// internal/workload generator; leave it off for circuits of unknown
	// provenance.
	FuseBlocks bool
}

// Grouping selects how 1Q movements are packed into Coll-Moves.
type Grouping int

const (
	// GroupingMerged is the default: displacement buckets greedily
	// merged in ascending distance order (move.Group).
	GroupingMerged Grouping = iota
	// GroupingDistance is the paper's literal ascending-distance
	// first-fit (move.GroupByDistance).
	GroupingDistance
	// GroupingInOrder is arrival-order first-fit (move.GroupInOrder).
	GroupingInOrder
)

// String returns the grouping's pass-registry name (see
// compiler.GroupingNames); out-of-range values render as "grouping(n)",
// which the registry rejects.
func (g Grouping) String() string {
	switch g {
	case GroupingMerged:
		return compiler.GroupingMerged
	case GroupingDistance:
		return compiler.GroupingDistance
	case GroupingInOrder:
		return compiler.GroupingInOrder
	default:
		return fmt.Sprintf("grouping(%d)", int(g))
	}
}

// Stats is the shared compiler statistics type, including the per-pass
// PassStats breakdown.
type Stats = compiler.Stats

// Result carries a compiled program together with the initial layout it
// must be executed from.
type Result = compiler.Result

// Pipeline maps opts onto a validated zoned pass pipeline. Unknown
// grouping values and out-of-range alphas are rejected here, before any
// compilation work.
func Pipeline(opts Options) (*compiler.Pipeline, error) {
	return compiler.Zoned(compiler.ZonedConfig{
		UseStorage:             opts.UseStorage,
		Alpha:                  opts.Alpha,
		RandomMover:            opts.RandomMover,
		Seed:                   opts.Seed,
		DisableStageOrder:      opts.DisableStageOrder,
		DisableIntraStageOrder: opts.DisableIntraStageOrder,
		Grouping:               opts.Grouping.String(),
		FuseBlocks:             opts.FuseBlocks,
	})
}

// Compile lowers circ for architecture a. The returned program starts from
// Result.Initial: all qubits in storage (with-storage mode) or placed
// row-major in the computation zone (non-storage mode).
func Compile(circ *circuit.Circuit, a *arch.Arch, opts Options) (*Result, error) {
	p, err := Pipeline(opts)
	if err != nil {
		return nil, err
	}
	return p.Run(circ, a)
}
