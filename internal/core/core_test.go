package core

import (
	"strings"
	"testing"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/isa"
	"powermove/internal/sim"
	"powermove/internal/workload"
)

func allWorkloads() []*circuit.Circuit {
	return []*circuit.Circuit{
		workload.QAOARegular(20, 3, 1),
		workload.QAOARegular(16, 4, 2),
		workload.QAOARandom(14, 3),
		workload.QFT(10),
		workload.BV(12, 4),
		workload.VQE(15),
		workload.QSim(12, 5),
	}
}

// TestCompileAndExecuteAllWorkloads is the pipeline's integration test:
// every benchmark family compiles in both modes and executes without any
// constraint violation, with every source CZ gate accounted for.
func TestCompileAndExecuteAllWorkloads(t *testing.T) {
	for _, c := range allWorkloads() {
		for _, storage := range []bool{false, true} {
			a := arch.New(arch.Config{Qubits: c.Qubits})
			res, err := Compile(c, a, Options{UseStorage: storage})
			if err != nil {
				t.Fatalf("%s storage=%v: compile: %v", c.Name, storage, err)
			}
			exec, err := sim.Execute(res.Program, res.Initial)
			if err != nil {
				t.Fatalf("%s storage=%v: execute: %v", c.Name, storage, err)
			}
			if exec.Counts.CZGates != c.CZCount() {
				t.Errorf("%s storage=%v: executed %d CZ, circuit has %d",
					c.Name, storage, exec.Counts.CZGates, c.CZCount())
			}
			if exec.Counts.OneQGates != c.OneQCount() {
				t.Errorf("%s storage=%v: executed %d 1Q, circuit has %d",
					c.Name, storage, exec.Counts.OneQGates, c.OneQCount())
			}
			if exec.Fidelity <= 0 || exec.Fidelity > 1 {
				t.Errorf("%s storage=%v: fidelity %v out of (0, 1]", c.Name, storage, exec.Fidelity)
			}
			if storage && exec.Counts.ExcitedIdle != 0 {
				t.Errorf("%s: storage mode exposed %d idle qubits to excitation",
					c.Name, exec.Counts.ExcitedIdle)
			}
		}
	}
}

// TestStorageEliminatesExcitationError is the paper's headline mechanism:
// with the storage zone, the excitation fidelity component is exactly 1.
func TestStorageEliminatesExcitationError(t *testing.T) {
	c := workload.BV(20, 1)
	a := arch.New(arch.Config{Qubits: 20})
	res, err := Compile(c, a, Options{UseStorage: true})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := sim.Execute(res.Program, res.Initial)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Components.Excitation != 1 {
		t.Errorf("excitation component = %v, want exactly 1", exec.Components.Excitation)
	}

	flat, err := Compile(c, a, Options{UseStorage: false})
	if err != nil {
		t.Fatal(err)
	}
	flatExec, err := sim.Execute(flat.Program, flat.Initial)
	if err != nil {
		t.Fatal(err)
	}
	if flatExec.Components.Excitation >= 1 {
		t.Error("non-storage mode shows no excitation error on BV — suspicious")
	}
	if exec.Fidelity <= flatExec.Fidelity {
		t.Errorf("with-storage fidelity %v not above non-storage %v", exec.Fidelity, flatExec.Fidelity)
	}
}

// TestDeterminism: the compiler is a pure function of (circuit, arch,
// options).
func TestDeterminism(t *testing.T) {
	c := workload.QAOARegular(30, 3, 8)
	a := arch.New(arch.Config{Qubits: 30})
	for _, opts := range []Options{
		{UseStorage: true},
		{UseStorage: false},
		{UseStorage: true, RandomMover: true, Seed: 7},
	} {
		r1, err := Compile(c, a, opts)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Compile(c, a, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Program.Instr) != len(r2.Program.Instr) {
			t.Fatalf("opts %+v: instruction counts differ", opts)
		}
		e1, err := sim.Execute(r1.Program, r1.Initial)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := sim.Execute(r2.Program, r2.Initial)
		if err != nil {
			t.Fatal(err)
		}
		if e1.Fidelity != e2.Fidelity || e1.Time != e2.Time {
			t.Fatalf("opts %+v: executions differ", opts)
		}
	}
}

// TestInitialLayoutPerMode: with storage everything starts in the storage
// zone (Sec. 4.2); without, in the computation zone.
func TestInitialLayoutPerMode(t *testing.T) {
	c := workload.VQE(9)
	a := arch.New(arch.Config{Qubits: 9})
	zoned, err := Compile(c, a, Options{UseStorage: true})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 9; q++ {
		if zoned.Initial.Zone(q) != arch.Storage {
			t.Fatalf("zoned initial layout has qubit %d in %v", q, zoned.Initial.Zone(q))
		}
	}
	flat, err := Compile(c, a, Options{UseStorage: false})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 9; q++ {
		if flat.Initial.Zone(q) != arch.Compute {
			t.Fatalf("flat initial layout has qubit %d in %v", q, flat.Initial.Zone(q))
		}
	}
}

func TestCompileRejections(t *testing.T) {
	c := workload.VQE(10)
	a := arch.New(arch.Config{Qubits: 10})
	if _, err := Compile(c, a, Options{Alpha: 1.5}); err == nil {
		t.Error("alpha out of range accepted")
	}
	// Out-of-range grouping values used to silently select the default;
	// the pipeline registry rejects them with a descriptive error.
	if _, err := Compile(c, a, Options{Grouping: Grouping(7)}); err == nil {
		t.Error("out-of-range grouping accepted")
	} else if !strings.Contains(err.Error(), "grouping(7)") {
		t.Errorf("grouping error %q does not name the bad value", err)
	}
	small := arch.New(arch.Config{Qubits: 4})
	if _, err := Compile(c, small, Options{}); err == nil {
		t.Error("circuit larger than compute zone accepted")
	}
	bad := circuit.New("bad", 4)
	bad.AddBlock(-1)
	if _, err := Compile(bad, small, Options{}); err == nil {
		t.Error("invalid circuit accepted")
	}
}

// TestAODBatching: with k AODs, no batch carries more than k groups, and
// more AODs never slow execution down.
func TestAODBatching(t *testing.T) {
	c := workload.QAOARegular(30, 3, 13)
	prev := 0.0
	for aods := 1; aods <= 4; aods++ {
		a := arch.New(arch.Config{Qubits: 30, AODs: aods})
		res, err := Compile(c, a, Options{UseStorage: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range res.Program.Instr {
			if mb, ok := in.(isa.MoveBatch); ok && len(mb.Groups) > aods {
				t.Fatalf("aods=%d: batch with %d groups", aods, len(mb.Groups))
			}
		}
		exec, err := sim.Execute(res.Program, res.Initial)
		if err != nil {
			t.Fatal(err)
		}
		if aods > 1 && exec.Time > prev {
			t.Errorf("aods=%d slower (%v) than aods=%d (%v)", aods, exec.Time, aods-1, prev)
		}
		prev = exec.Time
	}
}

// TestAblationOptionsCompile: every ablation switch still yields a valid
// executable program.
func TestAblationOptionsCompile(t *testing.T) {
	c := workload.QAOARegular(20, 3, 21)
	a := arch.New(arch.Config{Qubits: 20})
	for name, opts := range map[string]Options{
		"no stage order":       {UseStorage: true, DisableStageOrder: true},
		"no intra-stage order": {UseStorage: true, DisableIntraStageOrder: true},
		"distance grouping":    {UseStorage: true, Grouping: GroupingDistance},
		"in-order grouping":    {UseStorage: true, Grouping: GroupingInOrder},
		"random mover":         {UseStorage: true, RandomMover: true, Seed: 3},
	} {
		res, err := Compile(c, a, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := sim.Execute(res.Program, res.Initial); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestStatsConsistency: compiler statistics agree with the emitted
// program.
func TestStatsConsistency(t *testing.T) {
	c := workload.QAOARegular(20, 3, 34)
	a := arch.New(arch.Config{Qubits: 20})
	res, err := Compile(c, a, Options{UseStorage: true})
	if err != nil {
		t.Fatal(err)
	}
	count := res.Program.Count()
	if res.Stats.Stages != count.Rydbergs {
		t.Errorf("Stats.Stages = %d, program has %d Rydberg pulses", res.Stats.Stages, count.Rydbergs)
	}
	if res.Stats.Batches != count.MoveBatches {
		t.Errorf("Stats.Batches = %d, program has %d move batches", res.Stats.Batches, count.MoveBatches)
	}
	if res.Stats.Moves != count.MovedQubits {
		t.Errorf("Stats.Moves = %d, program moves %d qubits", res.Stats.Moves, count.MovedQubits)
	}
	if res.Stats.Blocks != len(c.Blocks) {
		t.Errorf("Stats.Blocks = %d, want %d", res.Stats.Blocks, len(c.Blocks))
	}
	if res.Stats.CompileTime <= 0 {
		t.Error("CompileTime not recorded")
	}
}

// TestEmptyCircuit: a circuit with only 1Q layers compiles to 1Q
// instructions and nothing else.
func TestOneQOnlyCircuit(t *testing.T) {
	c := circuit.New("only1q", 4)
	c.AddBlock(4)
	c.AddBlock(2)
	a := arch.New(arch.Config{Qubits: 4})
	res, err := Compile(c, a, Options{UseStorage: true})
	if err != nil {
		t.Fatal(err)
	}
	count := res.Program.Count()
	if count.Rydbergs != 0 || count.MoveBatches != 0 || count.OneQLayers != 2 {
		t.Errorf("instruction mix = %+v", count)
	}
	exec, err := sim.Execute(res.Program, res.Initial)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Fidelity != 1 {
		t.Errorf("1Q-only headline fidelity = %v, want 1 (1Q term excluded)", exec.Fidelity)
	}
}

// TestFullComputeZoneCapacity: n equal to the compute-site count compiles
// in both modes (the tightest Table-2 configuration, QAOA-regular3-100).
func TestFullComputeZoneCapacity(t *testing.T) {
	c := workload.QAOARegular(100, 3, 55)
	a := arch.New(arch.Config{Qubits: 100})
	for _, storage := range []bool{false, true} {
		res, err := Compile(c, a, Options{UseStorage: storage})
		if err != nil {
			t.Fatalf("storage=%v: %v", storage, err)
		}
		if _, err := sim.Execute(res.Program, res.Initial); err != nil {
			t.Fatalf("storage=%v: %v", storage, err)
		}
	}
}

// TestFuseBlocksOption: fusion reduces Rydberg stages on QSim while the
// executed gate set stays identical. The structural fidelity win shows in
// non-storage mode, where every eliminated pulse removes excitation error
// from all idle qubits (with storage, excitation is already zero and the
// fidelity effect is workload-dependent movement noise).
func TestFuseBlocksOption(t *testing.T) {
	c := workload.QSim(20, 9)
	a := arch.New(arch.Config{Qubits: 20})
	plain, err := Compile(c, a, Options{UseStorage: false})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Compile(c, a, Options{UseStorage: false, FuseBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if fused.Stats.Stages >= plain.Stats.Stages {
		t.Errorf("fusion did not reduce stages: %d vs %d", fused.Stats.Stages, plain.Stats.Stages)
	}
	pe, err := sim.Execute(plain.Program, plain.Initial)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := sim.Execute(fused.Program, fused.Initial)
	if err != nil {
		t.Fatal(err)
	}
	if pe.Counts.CZGates != fe.Counts.CZGates {
		t.Error("fusion changed executed gate count")
	}
	if fe.Counts.Excitations >= pe.Counts.Excitations {
		t.Errorf("fusion did not reduce Rydberg pulses: %d vs %d",
			fe.Counts.Excitations, pe.Counts.Excitations)
	}
	if fe.Counts.ExcitedIdle >= pe.Counts.ExcitedIdle {
		t.Errorf("fusion did not reduce excitation exposure: %d vs %d",
			fe.Counts.ExcitedIdle, pe.Counts.ExcitedIdle)
	}
}
