package core

import (
	"math/rand"
	"testing"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/isa"
	"powermove/internal/statevec"
	"powermove/internal/workload"
)

// applyCZSequence applies a sequence of CZ gates to a state.
func applyCZSequence(s *statevec.State, gates []circuit.CZ) {
	for _, g := range gates {
		s.CZ(g.A, g.B)
	}
}

// compiledCZOrder extracts the CZ gates a compiled program executes, in
// Rydberg-pulse order.
func compiledCZOrder(p *isa.Program) []circuit.CZ {
	var out []circuit.CZ
	for _, in := range p.Instr {
		if r, ok := in.(isa.Rydberg); ok {
			out = append(out, r.Pairs...)
		}
	}
	return out
}

// originalCZOrder lists the circuit's CZ gates in source order.
func originalCZOrder(c *circuit.Circuit) []circuit.CZ {
	var out []circuit.CZ
	for _, b := range c.Blocks {
		out = append(out, b.Gates...)
	}
	return out
}

// TestCompiledProgramsAreSemanticallyEquivalent is the compiler's
// correctness theorem, checked numerically: the only reordering the
// pipeline performs is within commutable CZ blocks, and CZ gates commute,
// so applying the compiled gate order to a random state must reproduce the
// state the source circuit produces. (1Q layers are position-independent
// bookkeeping in the IR and are omitted from both sides.)
func TestCompiledProgramsAreSemanticallyEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	circs := []*circuit.Circuit{
		workload.QAOARegular(12, 3, 1),
		workload.QAOARandom(10, 2),
		workload.QFT(9),
		workload.BV(10, 3),
		workload.VQE(11),
		workload.QSim(10, 4),
	}
	for _, c := range circs {
		for _, storage := range []bool{false, true} {
			a := arch.New(arch.Config{Qubits: c.Qubits})
			res, err := Compile(c, a, Options{UseStorage: storage})
			if err != nil {
				t.Fatalf("%s storage=%v: %v", c.Name, storage, err)
			}
			ref := statevec.NewRandom(c.Qubits, rng)
			got := ref.Clone()
			applyCZSequence(ref, originalCZOrder(c))
			applyCZSequence(got, compiledCZOrder(res.Program))
			if !got.Equal(ref, 1e-9) {
				t.Errorf("%s storage=%v: compiled program is not unitarily equivalent to the source circuit",
					c.Name, storage)
			}
		}
	}
}

// TestBlockOrderIsPreserved: the compiler may reorder gates within a
// block, but blocks are dependent and must retain their relative order.
// Verified structurally: the compiled gate sequence, partitioned at block
// boundaries by gate membership, is a concatenation of per-block
// permutations.
func TestBlockOrderIsPreserved(t *testing.T) {
	c := workload.QSim(12, 8) // many small dependent blocks
	a := arch.New(arch.Config{Qubits: 12})
	res, err := Compile(c, a, Options{UseStorage: true})
	if err != nil {
		t.Fatal(err)
	}
	compiled := compiledCZOrder(res.Program)
	idx := 0
	for bi, b := range c.Blocks {
		want := make(map[circuit.CZ]int)
		for _, g := range b.Gates {
			want[g]++
		}
		for count := len(b.Gates); count > 0; count-- {
			if idx >= len(compiled) {
				t.Fatalf("compiled stream ended inside block %d", bi)
			}
			g := compiled[idx]
			if want[g] == 0 {
				t.Fatalf("block %d: gate %v executed out of block order", bi, g)
			}
			want[g]--
			idx++
		}
	}
	if idx != len(compiled) {
		t.Fatalf("compiled stream has %d extra gates", len(compiled)-idx)
	}
}
