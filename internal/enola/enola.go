// Package enola is the configuration front end of the Enola baseline
// compiler the paper compares against (Sec. 3), reimplemented from its
// published description. The pass logic lives in internal/compiler's
// enola pipeline — validate → place → per block: mis-stage → per stage:
// route-home → group → batch → emit — over the same pass-manager driver
// as the zoned PowerMove pipeline, so the two schemes share one Stats
// type and one per-pass observability path and can no longer drift.
//
// Enola's defining characteristics, and the source of its limitations:
//
//   - Gate scheduling by iterated maximal-independent-set extraction on
//     the gate conflict graph, with randomized restarts seeking large
//     stages. This achieves near-optimal stage counts but is markedly
//     more expensive than PowerMove's one-shot greedy coloring.
//   - A fixed home layout in the computation zone. Every stage moves one
//     qubit of each CZ pair from its home site to its partner's home
//     site, and — to avoid the clustering of Fig. 3(b) — *reverts* every
//     mover to its home site before the next stage, doubling movement
//     and transfer volume.
//   - No storage zone: every idle qubit sits in the computation zone
//     during every Rydberg pulse and accrues excitation error.
package enola

import (
	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/compiler"
)

// Options configures the baseline.
type Options struct {
	// Restarts is the number of randomized restarts per
	// maximal-independent-set extraction. Zero selects the default
	// instance-scaled effort (see MinRestarts); the original system
	// runs solver-grade independent-set searches whose cost grows with
	// the instance, which is the source of its large compilation times.
	Restarts int
	// Seed drives the randomized restarts.
	Seed int64
}

// MinRestarts is the floor on the instance-scaled restart count; see
// compiler.MinRestarts.
const MinRestarts = compiler.MinRestarts

// Stats is the shared compiler statistics type; the baseline reports
// through the same fields (and per-pass breakdown) as the zoned
// pipeline.
type Stats = compiler.Stats

// Result carries the compiled baseline program and its home layout.
type Result = compiler.Result

// Pipeline maps opts onto a validated enola pass pipeline; negative
// restart counts are rejected here.
func Pipeline(opts Options) (*compiler.Pipeline, error) {
	return compiler.Enola(compiler.EnolaConfig{Restarts: opts.Restarts, Seed: opts.Seed})
}

// Compile lowers circ with the Enola movement scheme on architecture a.
// Only the computation zone of a is used; the program starts from and
// returns to the row-major home layout after every stage.
func Compile(circ *circuit.Circuit, a *arch.Arch, opts Options) (*Result, error) {
	p, err := Pipeline(opts)
	if err != nil {
		return nil, err
	}
	return p.Run(circ, a)
}
