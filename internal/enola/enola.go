// Package enola reimplements the Enola baseline compiler the paper
// compares against (Sec. 3), from its published description. Enola's
// defining characteristics, and the source of its limitations, are:
//
//   - Gate scheduling by iterated maximal-independent-set extraction on
//     the gate conflict graph, with randomized restarts seeking large
//     stages. This achieves near-optimal stage counts but is markedly
//     more expensive than PowerMove's one-shot greedy coloring.
//   - A fixed home layout in the computation zone. Every stage moves one
//     qubit of each CZ pair from its home site to its partner's home
//     site, and — to avoid the clustering of Fig. 3(b) — *reverts* every
//     mover to its home site before the next stage, doubling movement
//     and transfer volume.
//   - No storage zone: every idle qubit sits in the computation zone
//     during every Rydberg pulse and accrues excitation error.
package enola

import (
	"fmt"
	"math/rand"
	"time"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/collsched"
	"powermove/internal/graphutil"
	"powermove/internal/isa"
	"powermove/internal/layout"
	"powermove/internal/move"
	"powermove/internal/stage"
)

// Options configures the baseline.
type Options struct {
	// Restarts is the number of randomized restarts per
	// maximal-independent-set extraction. Zero selects the default
	// instance-scaled effort (see MinRestarts); the original system
	// runs solver-grade independent-set searches whose cost grows with
	// the instance, which is the source of its large compilation times.
	Restarts int
	// Seed drives the randomized restarts.
	Seed int64
}

// MinRestarts is the floor on the instance-scaled restart count: each
// stage extraction tries at least this many random greedy orders and
// keeps the largest independent set found. The default effort is
// max(MinRestarts, 2 * gates-in-block), approximating the scaling of the
// original's Maximum-Independent-Set solver.
const MinRestarts = 16

// Stats summarizes one baseline compilation.
type Stats struct {
	Blocks, Stages, Moves, CollMoves, Batches int
	CompileTime                               time.Duration
}

// Result carries the compiled baseline program and its home layout.
type Result struct {
	Program *isa.Program
	Initial *layout.Layout
	Stats   Stats
}

// Compile lowers circ with the Enola movement scheme on architecture a.
// Only the computation zone of a is used; the program starts from and
// returns to the row-major home layout after every stage.
func Compile(circ *circuit.Circuit, a *arch.Arch, opts Options) (*Result, error) {
	start := time.Now()
	if err := circ.Validate(); err != nil {
		return nil, fmt.Errorf("enola: %w", err)
	}
	if circ.Qubits > a.ComputeSites() {
		return nil, fmt.Errorf("enola: %d qubits exceed %d computation sites", circ.Qubits, a.ComputeSites())
	}
	if opts.Restarts < 0 {
		return nil, fmt.Errorf("enola: negative restart count %d", opts.Restarts)
	}

	home := layout.New(a, circ.Qubits)
	home.PlaceAll(arch.Compute)
	rng := rand.New(rand.NewSource(opts.Seed))
	prog := &isa.Program{Name: circ.Name, Qubits: circ.Qubits}
	var stats Stats

	stageID := 0
	for bi := range circ.Blocks {
		b := &circ.Blocks[bi]
		stats.Blocks++
		if b.OneQ > 0 {
			prog.Instr = append(prog.Instr, isa.OneQLayer{Count: b.OneQ})
		}
		restarts := opts.Restarts
		if restarts == 0 {
			restarts = 2 * len(b.Gates)
			if restarts < MinRestarts {
				restarts = MinRestarts
			}
		}
		for _, st := range misStages(b.Gates, restarts, rng) {
			forward := stageMoves(home, st)
			backward := reverse(forward)

			outBatches := collsched.Batch(move.GroupInOrder(forward), a.AODs)
			backBatches := collsched.Batch(move.GroupInOrder(backward), a.AODs)
			for _, batch := range outBatches {
				prog.Instr = append(prog.Instr, batch)
			}
			prog.Instr = append(prog.Instr, isa.Rydberg{Stage: stageID, Pairs: st.Gates})
			for _, batch := range backBatches {
				prog.Instr = append(prog.Instr, batch)
			}

			stats.Stages++
			stats.Moves += len(forward) + len(backward)
			stats.CollMoves += len(outBatches) + len(backBatches)
			stats.Batches += len(outBatches) + len(backBatches)
			stageID++
		}
	}

	initial := layout.New(a, circ.Qubits)
	initial.PlaceAll(arch.Compute)
	stats.CompileTime = time.Since(start)
	return &Result{Program: prog, Initial: initial, Stats: stats}, nil
}

// misStages partitions a commutable block into Rydberg stages by repeatedly
// extracting a maximal independent set from the gate conflict graph. Each
// extraction runs the deterministic min-residual-degree greedy plus the
// configured number of random-permutation restarts and keeps the largest
// set found, mirroring the baseline's quality-over-speed trade-off.
func misStages(gates []circuit.CZ, restarts int, rng *rand.Rand) []stage.Stage {
	if len(gates) == 0 {
		return nil
	}
	g := stage.ConflictGraph(gates)
	removed := make([]bool, len(gates))
	remaining := len(gates)
	var stages []stage.Stage
	for remaining > 0 {
		best := g.MaximalIndependentSet(removed)
		for r := 0; r < restarts; r++ {
			if cand := randomMIS(g, removed, rng); len(cand) > len(best) {
				best = cand
			}
		}
		st := stage.Stage{Gates: make([]circuit.CZ, 0, len(best))}
		for _, gi := range best {
			st.Gates = append(st.Gates, gates[gi])
			removed[gi] = true
		}
		remaining -= len(best)
		stages = append(stages, st)
	}
	return stages
}

// randomMIS builds a maximal independent set by scanning the unremoved
// vertices in a random order and keeping each vertex compatible with the
// set so far.
func randomMIS(g *graphutil.Graph, removed []bool, rng *rand.Rand) []int {
	order := rng.Perm(g.N())
	taken := make([]bool, g.N())
	var mis []int
	for _, v := range order {
		if removed[v] {
			continue
		}
		ok := true
		for _, u := range g.Adjacent(v) {
			if taken[u] {
				ok = false
				break
			}
		}
		if ok {
			taken[v] = true
			mis = append(mis, v)
		}
	}
	return mis
}

// stageMoves produces the baseline's forward movement for one stage: the
// lower-indexed qubit of each CZ pair travels to its partner's home site
// (the relocation distance is symmetric, so the choice is a deterministic
// convention). Home sites hold one qubit each, so the destination site
// ends with exactly the interacting pair and no clustering arises.
func stageMoves(home *layout.Layout, st stage.Stage) []move.Move {
	a := home.Arch()
	var moves []move.Move
	for _, g := range st.Gates {
		moves = append(moves, move.New(a, g.A, home.SiteOf(g.A), home.SiteOf(g.B)))
	}
	return moves
}

// reverse inverts a set of moves, sending each mover back home.
func reverse(moves []move.Move) []move.Move {
	out := make([]move.Move, len(moves))
	for i, m := range moves {
		out[i] = move.Move{
			Qubit:    m.Qubit,
			FromSite: m.ToSite,
			ToSite:   m.FromSite,
			From:     m.To,
			To:       m.From,
		}
	}
	return out
}
