package enola

import (
	"math/rand"
	"testing"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/layout"
	"powermove/internal/sim"
	"powermove/internal/stage"
	"powermove/internal/workload"
)

func TestCompileExecutesCleanly(t *testing.T) {
	circs := []*circuit.Circuit{
		workload.QAOARegular(20, 3, 1),
		workload.QFT(10),
		workload.BV(12, 2),
		workload.VQE(15),
		workload.QSim(12, 3),
	}
	for _, c := range circs {
		a := arch.New(arch.Config{Qubits: c.Qubits})
		res, err := Compile(c, a, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: compile: %v", c.Name, err)
		}
		exec, err := sim.Execute(res.Program, res.Initial)
		if err != nil {
			t.Fatalf("%s: execute: %v", c.Name, err)
		}
		if exec.Fidelity <= 0 || exec.Fidelity > 1 {
			t.Errorf("%s: fidelity %v out of (0, 1]", c.Name, exec.Fidelity)
		}
		if got := exec.Counts.CZGates; got != c.CZCount() {
			t.Errorf("%s: executed %d CZ gates, circuit has %d", c.Name, got, c.CZCount())
		}
	}
}

// TestRevertsToHome: after execution, every qubit is back at its home
// site — the defining behaviour of the baseline's movement scheme.
func TestRevertsToHome(t *testing.T) {
	c := workload.QAOARegular(16, 3, 5)
	a := arch.New(arch.Config{Qubits: 16})
	res, err := Compile(c, a, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := sim.Execute(res.Program, res.Initial)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 16; q++ {
		if exec.Final.SiteOf(q) != res.Initial.SiteOf(q) {
			t.Fatalf("qubit %d ended at %v, home is %v", q, exec.Final.SiteOf(q), res.Initial.SiteOf(q))
		}
	}
}

// TestNeverUsesStorage: the baseline is confined to the computation zone.
func TestNeverUsesStorage(t *testing.T) {
	c := workload.BV(12, 7)
	a := arch.New(arch.Config{Qubits: 12})
	res, err := Compile(c, a, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	count := res.Program.Count()
	if count.MovedQubits == 0 {
		t.Fatal("baseline moved nothing")
	}
	exec, err := sim.Execute(res.Program, res.Initial)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 12; q++ {
		if exec.Final.Zone(q) != arch.Compute {
			t.Fatalf("qubit %d in storage under the baseline", q)
		}
	}
}

// TestDoubleMovementVolume: the revert scheme moves exactly twice per
// forward relocation.
func TestDoubleMovementVolume(t *testing.T) {
	c := workload.QAOARegular(20, 3, 9)
	a := arch.New(arch.Config{Qubits: 20})
	res, err := Compile(c, a, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One forward move per gate, one revert per gate.
	if want := 2 * c.CZCount(); res.Stats.Moves != want {
		t.Errorf("Moves = %d, want %d (out and back per gate)", res.Stats.Moves, want)
	}
}

// TestMISStagesDisjointAndComplete validates the baseline's scheduler on
// random commutable blocks.
func TestMISStagesDisjointAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(20)
		var gates []circuit.CZ
		seen := make(map[circuit.CZ]bool)
		for k := 0; k < n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			g := circuit.NewCZ(a, b)
			if !seen[g] {
				seen[g] = true
				gates = append(gates, g)
			}
		}
		if len(gates) == 0 {
			continue
		}
		stages := misStages(gates, 4, rng)
		total := 0
		for _, st := range stages {
			if !st.Disjoint() {
				t.Fatalf("trial %d: stage not disjoint", trial)
			}
			total += len(st.Gates)
		}
		if total != len(gates) {
			t.Fatalf("trial %d: stages cover %d gates, want %d", trial, total, len(gates))
		}
	}
}

// TestMISFindsPerfectMatchingOnChain: with restarts, the baseline finds
// the 2-stage schedule of a linear chain, matching its near-optimal
// scheduling claim.
func TestMISFindsPerfectMatchingOnChain(t *testing.T) {
	var gates []circuit.CZ
	for i := 0; i+1 < 20; i++ {
		gates = append(gates, circuit.NewCZ(i, i+1))
	}
	stages := misStages(gates, 64, rand.New(rand.NewSource(1)))
	if len(stages) > 3 {
		t.Errorf("chain scheduled into %d stages, want <= 3", len(stages))
	}
}

func TestDeterministicBySeed(t *testing.T) {
	c := workload.QAOARegular(20, 3, 11)
	a := arch.New(arch.Config{Qubits: 20})
	r1, err := Compile(c, a, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Compile(c, a, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Program.Instr) != len(r2.Program.Instr) {
		t.Fatal("same seed produced different programs")
	}
	c1, c2 := r1.Program.Count(), r2.Program.Count()
	if c1 != c2 {
		t.Fatalf("same seed produced different instruction mixes: %+v vs %+v", c1, c2)
	}
}

func TestCompileRejections(t *testing.T) {
	a := arch.New(arch.Config{Qubits: 4})
	big := workload.VQE(10) // 10 qubits > 4 compute sites? 4 -> 2x2 grid
	if _, err := Compile(big, a, Options{}); err == nil {
		t.Error("oversized circuit accepted")
	}
	bad := circuit.New("bad", 4)
	bad.AddBlock(0, circuit.NewCZ(0, 9))
	if _, err := Compile(bad, arch.New(arch.Config{Qubits: 4}), Options{}); err == nil {
		t.Error("invalid circuit accepted")
	}
	good := workload.VQE(4)
	if _, err := Compile(good, arch.New(arch.Config{Qubits: 4}), Options{Restarts: -1}); err == nil {
		t.Error("negative restarts accepted")
	}
}

// TestStageMoves: the lower-indexed qubit travels to its partner's home.
func TestStageMoves(t *testing.T) {
	a := arch.New(arch.Config{Qubits: 4})
	l := layout.New(a, 4)
	l.PlaceAll(arch.Compute)
	st := stage.Stage{Gates: []circuit.CZ{circuit.NewCZ(2, 0)}}
	moves := stageMoves(l, st)
	if len(moves) != 1 {
		t.Fatalf("%d moves, want 1", len(moves))
	}
	if moves[0].Qubit != 0 || moves[0].ToSite != l.SiteOf(2) {
		t.Errorf("move = %v, want q0 -> site of q2", moves[0])
	}
	rev := reverse(moves)
	if rev[0].FromSite != moves[0].ToSite || rev[0].ToSite != moves[0].FromSite {
		t.Error("reverse did not invert endpoints")
	}
}
