package enola

import (
	"testing"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/sim"
	"powermove/internal/workload"
)

func TestCompileExecutesCleanly(t *testing.T) {
	circs := []*circuit.Circuit{
		workload.QAOARegular(20, 3, 1),
		workload.QFT(10),
		workload.BV(12, 2),
		workload.VQE(15),
		workload.QSim(12, 3),
	}
	for _, c := range circs {
		a := arch.New(arch.Config{Qubits: c.Qubits})
		res, err := Compile(c, a, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: compile: %v", c.Name, err)
		}
		exec, err := sim.Execute(res.Program, res.Initial)
		if err != nil {
			t.Fatalf("%s: execute: %v", c.Name, err)
		}
		if exec.Fidelity <= 0 || exec.Fidelity > 1 {
			t.Errorf("%s: fidelity %v out of (0, 1]", c.Name, exec.Fidelity)
		}
		if got := exec.Counts.CZGates; got != c.CZCount() {
			t.Errorf("%s: executed %d CZ gates, circuit has %d", c.Name, got, c.CZCount())
		}
	}
}

// TestRevertsToHome: after execution, every qubit is back at its home
// site — the defining behaviour of the baseline's movement scheme.
func TestRevertsToHome(t *testing.T) {
	c := workload.QAOARegular(16, 3, 5)
	a := arch.New(arch.Config{Qubits: 16})
	res, err := Compile(c, a, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := sim.Execute(res.Program, res.Initial)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 16; q++ {
		if exec.Final.SiteOf(q) != res.Initial.SiteOf(q) {
			t.Fatalf("qubit %d ended at %v, home is %v", q, exec.Final.SiteOf(q), res.Initial.SiteOf(q))
		}
	}
}

// TestNeverUsesStorage: the baseline is confined to the computation zone.
func TestNeverUsesStorage(t *testing.T) {
	c := workload.BV(12, 7)
	a := arch.New(arch.Config{Qubits: 12})
	res, err := Compile(c, a, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	count := res.Program.Count()
	if count.MovedQubits == 0 {
		t.Fatal("baseline moved nothing")
	}
	exec, err := sim.Execute(res.Program, res.Initial)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 12; q++ {
		if exec.Final.Zone(q) != arch.Compute {
			t.Fatalf("qubit %d in storage under the baseline", q)
		}
	}
}

// TestDoubleMovementVolume: the revert scheme moves exactly twice per
// forward relocation.
func TestDoubleMovementVolume(t *testing.T) {
	c := workload.QAOARegular(20, 3, 9)
	a := arch.New(arch.Config{Qubits: 20})
	res, err := Compile(c, a, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One forward move per gate, one revert per gate.
	if want := 2 * c.CZCount(); res.Stats.Moves != want {
		t.Errorf("Moves = %d, want %d (out and back per gate)", res.Stats.Moves, want)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	c := workload.QAOARegular(20, 3, 11)
	a := arch.New(arch.Config{Qubits: 20})
	r1, err := Compile(c, a, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Compile(c, a, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Program.Instr) != len(r2.Program.Instr) {
		t.Fatal("same seed produced different programs")
	}
	c1, c2 := r1.Program.Count(), r2.Program.Count()
	if c1 != c2 {
		t.Fatalf("same seed produced different instruction mixes: %+v vs %+v", c1, c2)
	}
}

func TestCompileRejections(t *testing.T) {
	a := arch.New(arch.Config{Qubits: 4})
	big := workload.VQE(10) // 10 qubits > 4 compute sites? 4 -> 2x2 grid
	if _, err := Compile(big, a, Options{}); err == nil {
		t.Error("oversized circuit accepted")
	}
	bad := circuit.New("bad", 4)
	bad.AddBlock(0, circuit.NewCZ(0, 9))
	if _, err := Compile(bad, arch.New(arch.Config{Qubits: 4}), Options{}); err == nil {
		t.Error("invalid circuit accepted")
	}
	good := workload.VQE(4)
	if _, err := Compile(good, arch.New(arch.Config{Qubits: 4}), Options{Restarts: -1}); err == nil {
		t.Error("negative restarts accepted")
	}
}

// TestPassBreakdown: the baseline reports through the shared compiler
// stats type, including a per-pass breakdown whose counters agree with
// the aggregate Stats.
func TestPassBreakdown(t *testing.T) {
	c := workload.QAOARegular(16, 3, 5)
	a := arch.New(arch.Config{Qubits: 16})
	res, err := Compile(c, a, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var moves int64
	for _, p := range res.Stats.Passes {
		moves += p.Counters["moves"]
	}
	if moves != int64(res.Stats.Moves) {
		t.Errorf("per-pass move counters sum to %d, Stats.Moves = %d", moves, res.Stats.Moves)
	}
}
