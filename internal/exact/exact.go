// Package exact computes provably optimal Rydberg-stage partitions for
// small commutable CZ blocks by branch and bound, the exact counterpart
// of the Stage Scheduler's greedy partitioner (Sec. 4.1 of the paper).
// The compiler never calls it — minimizing the number of stages is
// NP-hard in general, which is why the paper's pipeline is heuristic —
// but the test suite uses it
// to measure how far the production partitioner strays from optimal, and
// it is available for offline analysis of small kernels.
package exact

import (
	"fmt"
	"sort"

	"powermove/internal/circuit"
	"powermove/internal/stage"
)

// MaxGates bounds the instance size Partition accepts. Branch and bound
// on stage partitions is exponential in the worst case; two dozen gates
// stay comfortably sub-second.
const MaxGates = 24

// Partition returns a partition of the gates into the provably minimal
// number of stages (sets of qubit-disjoint gates). Gates must be distinct.
// It fails if the instance exceeds MaxGates.
func Partition(gates []circuit.CZ) ([]stage.Stage, error) {
	if len(gates) > MaxGates {
		return nil, fmt.Errorf("exact: %d gates exceed the %d-gate limit", len(gates), MaxGates)
	}
	if len(gates) == 0 {
		return nil, nil
	}
	seen := make(map[circuit.CZ]bool, len(gates))
	for _, g := range gates {
		if seen[g] {
			return nil, fmt.Errorf("exact: duplicate gate %v", g)
		}
		seen[g] = true
	}

	// Order gates by descending conflict degree: constraining the most
	// conflicted gates first tightens pruning dramatically.
	conflict := stage.ConflictGraph(gates)
	order := make([]int, len(gates))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return conflict.Degree(order[a]) > conflict.Degree(order[b])
	})
	ordered := make([]circuit.CZ, len(gates))
	for i, gi := range order {
		ordered[i] = gates[gi]
	}

	// Upper bound from the production heuristic; the search can only
	// improve on it.
	heuristic := stage.Partition(gates)
	s := &solver{
		gates: ordered,
		best:  len(heuristic),
		lower: MinStagesLowerBound(gates),
	}
	s.search(0, nil)
	if s.bestAssign == nil {
		// The heuristic bound was already optimal; reconstruct from it.
		return heuristic, nil
	}
	out := make([]stage.Stage, s.best)
	for gi, si := range s.bestAssign {
		out[si].Gates = append(out[si].Gates, ordered[gi])
	}
	return out, nil
}

// MinStages returns only the optimal stage count.
func MinStages(gates []circuit.CZ) (int, error) {
	stages, err := Partition(gates)
	if err != nil {
		return 0, err
	}
	return len(stages), nil
}

// MinStagesLowerBound returns the trivial lower bound on the stage count:
// the maximum number of gates sharing one qubit.
func MinStagesLowerBound(gates []circuit.CZ) int {
	deg := make(map[int]int)
	max := 0
	for _, g := range gates {
		deg[g.A]++
		deg[g.B]++
		if deg[g.A] > max {
			max = deg[g.A]
		}
		if deg[g.B] > max {
			max = deg[g.B]
		}
	}
	return max
}

type solver struct {
	gates      []circuit.CZ
	best       int   // best stage count found so far (upper bound)
	bestAssign []int // gate -> stage of the best solution, nil if none beat the heuristic
	lower      int
}

// search assigns gates[idx:] given the partial assignment in assign
// (one stage index per already-placed gate). usedStages is implied by
// assign's maximum + 1.
func (s *solver) search(idx int, assign []int) {
	usedStages := 0
	for _, si := range assign {
		if si+1 > usedStages {
			usedStages = si + 1
		}
	}
	if usedStages >= s.best {
		return // cannot improve
	}
	if idx == len(s.gates) {
		s.best = usedStages
		s.bestAssign = append([]int(nil), assign...)
		return
	}
	g := s.gates[idx]
	// Try existing stages first (symmetry: new stages are interchangeable,
	// so opening at most one new stage per level suffices).
	for si := 0; si < usedStages; si++ {
		if s.fits(assign, idx, si, g) {
			s.search(idx+1, append(assign, si))
			assign = assign[:idx]
			if s.best == s.lower {
				return // provably optimal already
			}
		}
	}
	if usedStages+1 < s.best {
		s.search(idx+1, append(assign, usedStages))
	}
}

// fits reports whether gate g can join stage si under the partial
// assignment of the first idx gates.
func (s *solver) fits(assign []int, idx, si int, g circuit.CZ) bool {
	for gi := 0; gi < idx; gi++ {
		if assign[gi] == si && s.gates[gi].Overlaps(g) {
			return false
		}
	}
	return true
}
