package exact

import (
	"math/rand"
	"testing"

	"powermove/internal/circuit"
	"powermove/internal/graphutil"
	"powermove/internal/stage"
)

func gatesOf(edges [][2]int) []circuit.CZ {
	out := make([]circuit.CZ, len(edges))
	for i, e := range edges {
		out[i] = circuit.NewCZ(e[0], e[1])
	}
	return out
}

func TestKnownChromaticIndexes(t *testing.T) {
	cases := []struct {
		name  string
		edges [][2]int
		want  int
	}{
		{"single edge", [][2]int{{0, 1}}, 1},
		{"path4", [][2]int{{0, 1}, {1, 2}, {2, 3}}, 2},
		{"triangle", [][2]int{{0, 1}, {1, 2}, {0, 2}}, 3},
		{"star5", [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, 4},
		{"C5 (class 2)", [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, 3},
		{"C6 (class 1)", [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}, 2},
		{"K4", [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, 3},
		{"two disjoint edges", [][2]int{{0, 1}, {2, 3}}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := MinStages(gatesOf(tc.edges))
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("MinStages = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestPartitionIsValid(t *testing.T) {
	gates := gatesOf([][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	stages, err := Partition(gates)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[circuit.CZ]bool)
	for _, st := range stages {
		if !st.Disjoint() {
			t.Fatalf("stage %v not disjoint", st.Gates)
		}
		for _, g := range st.Gates {
			if seen[g] {
				t.Fatalf("gate %v twice", g)
			}
			seen[g] = true
		}
	}
	if len(seen) != len(gates) {
		t.Fatalf("covered %d gates, want %d", len(seen), len(gates))
	}
}

func TestEmptyAndErrors(t *testing.T) {
	if got, err := Partition(nil); err != nil || got != nil {
		t.Errorf("Partition(nil) = %v, %v", got, err)
	}
	big := make([]circuit.CZ, MaxGates+1)
	for i := range big {
		big[i] = circuit.NewCZ(2*i, 2*i+1)
	}
	if _, err := Partition(big); err == nil {
		t.Error("oversized instance accepted")
	}
	if _, err := Partition([]circuit.CZ{circuit.NewCZ(0, 1), circuit.NewCZ(1, 0)}); err == nil {
		t.Error("duplicate gates accepted")
	}
}

func TestLowerBound(t *testing.T) {
	gates := gatesOf([][2]int{{0, 1}, {0, 2}, {0, 3}, {4, 5}})
	if got := MinStagesLowerBound(gates); got != 3 {
		t.Errorf("lower bound = %d, want 3", got)
	}
}

// TestHeuristicNearOptimal is the quality audit of the production
// partitioner: on random small blocks, stage.Partition uses at most one
// stage more than the provable optimum (Vizing's theorem guarantees the
// bound; in practice it is usually tight).
func TestHeuristicNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(8)
		g := graphutil.RandomGNP(n, 0.3+0.4*rng.Float64(), rng)
		var gates []circuit.CZ
		for _, e := range g.Edges() {
			gates = append(gates, circuit.NewCZ(e[0], e[1]))
			if len(gates) == MaxGates {
				break
			}
		}
		if len(gates) == 0 {
			continue
		}
		opt, err := MinStages(gates)
		if err != nil {
			t.Fatal(err)
		}
		heur := len(stage.Partition(gates))
		if heur > opt+1 {
			t.Errorf("trial %d: heuristic %d stages, optimum %d", trial, heur, opt)
		}
		if heur < opt {
			t.Fatalf("trial %d: heuristic %d beats 'optimum' %d — exact solver broken", trial, heur, opt)
		}
		if opt < MinStagesLowerBound(gates) {
			t.Fatalf("trial %d: optimum below lower bound", trial)
		}
	}
}
