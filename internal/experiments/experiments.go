// Package experiments defines the paper's evaluation (Sec. 7) as runnable
// experiments: the benchmark suite of Table 2, the three-way comparison of
// Table 3 (Enola baseline vs PowerMove non-storage vs PowerMove
// with-storage), the fidelity-component ablations of Fig. 6, and the
// multi-AOD sweep of Fig. 7. cmd/experiments and the repository's
// benchmark harness are thin wrappers over this package.
package experiments

import (
	"fmt"
	"time"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/core"
	"powermove/internal/enola"
	"powermove/internal/fidelity"
	"powermove/internal/sim"
	"powermove/internal/workload"
)

// Family names the benchmark generators of Sec. 7.1.
type Family string

// The benchmark families evaluated in the paper.
const (
	QAOARegular3 Family = "QAOA-regular3"
	QAOARegular4 Family = "QAOA-regular4"
	QAOARandom   Family = "QAOA-random"
	QFT          Family = "QFT"
	BV           Family = "BV"
	VQE          Family = "VQE"
	QSim         Family = "QSIM-rand"
)

// Spec identifies one benchmark instance: a family and a qubit count. The
// seed of every randomized generator is derived deterministically from the
// spec, so repeated runs are identical.
type Spec struct {
	Family Family
	Qubits int
}

// String returns the paper's "family-n" naming.
func (s Spec) String() string { return fmt.Sprintf("%s-%d", s.Family, s.Qubits) }

// seed derives a stable per-instance seed.
func (s Spec) seed() int64 {
	h := int64(1469598103934665603)
	for _, b := range []byte(s.Family) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return h ^ int64(s.Qubits)*2654435761
}

// Circuit instantiates the benchmark circuit.
func (s Spec) Circuit() (*circuit.Circuit, error) {
	switch s.Family {
	case QAOARegular3:
		return workload.QAOARegular(s.Qubits, 3, s.seed()), nil
	case QAOARegular4:
		return workload.QAOARegular(s.Qubits, 4, s.seed()), nil
	case QAOARandom:
		return workload.QAOARandom(s.Qubits, s.seed()), nil
	case QFT:
		return workload.QFT(s.Qubits), nil
	case BV:
		return workload.BV(s.Qubits, s.seed()), nil
	case VQE:
		return workload.VQE(s.Qubits), nil
	case QSim:
		return workload.QSim(s.Qubits, s.seed()), nil
	default:
		return nil, fmt.Errorf("experiments: unknown family %q", s.Family)
	}
}

// Arch returns the default Table-2 architecture for this instance with the
// given AOD count.
func (s Spec) Arch(aods int) *arch.Arch {
	return arch.New(arch.Config{Qubits: s.Qubits, AODs: aods})
}

// Table2Specs returns the 23 benchmark instances of Table 2, in table
// order.
func Table2Specs() []Spec {
	return []Spec{
		{QAOARegular3, 30}, {QAOARegular3, 40}, {QAOARegular3, 50},
		{QAOARegular3, 60}, {QAOARegular3, 80}, {QAOARegular3, 100},
		{QAOARegular4, 30}, {QAOARegular4, 40}, {QAOARegular4, 50},
		{QAOARegular4, 60}, {QAOARegular4, 80},
		{QAOARandom, 20}, {QAOARandom, 30},
		{QFT, 18}, {QFT, 29},
		{BV, 14}, {BV, 50}, {BV, 70},
		{VQE, 30}, {VQE, 50},
		{QSim, 10}, {QSim, 20}, {QSim, 40},
	}
}

// SchemeResult is one compiler's outcome on one benchmark instance.
type SchemeResult struct {
	// Fidelity is the headline output fidelity (Equation 1, 1Q term
	// excluded per Sec. 2.2).
	Fidelity float64
	// Components are the individual fidelity factors, for Fig. 6.
	Components fidelity.Components
	// Texe is the execution time in microseconds.
	Texe float64
	// Tcomp is the measured compilation time.
	Tcomp time.Duration
	// Stages is the number of Rydberg pulses the schedule uses.
	Stages int
	// Moves is the number of executed 1Q relocations.
	Moves int
}

// RowResult is one full Table-3 row: all three schemes on one instance.
type RowResult struct {
	Spec        Spec
	Enola       SchemeResult
	NonStorage  SchemeResult
	WithStorage SchemeResult
}

// FidelityImprovement returns the paper's "Fidelity Improv." column:
// with-storage fidelity over the baseline's.
func (r *RowResult) FidelityImprovement() float64 {
	if r.Enola.Fidelity == 0 {
		return 0
	}
	return r.WithStorage.Fidelity / r.Enola.Fidelity
}

// TexeImprovement returns the paper's "Texe Improv." column: the baseline
// execution time over the non-storage execution time (the paper's
// continuous-router speedup).
func (r *RowResult) TexeImprovement() float64 {
	if r.NonStorage.Texe == 0 {
		return 0
	}
	return r.Enola.Texe / r.NonStorage.Texe
}

// TcompImprovement returns the paper's "Tcomp Improv." column: baseline
// compile time over the mean of the two PowerMove compile times (the
// paper reports the average of its two scenarios).
func (r *RowResult) TcompImprovement() float64 {
	ours := (r.NonStorage.Tcomp + r.WithStorage.Tcomp) / 2
	if ours == 0 {
		return 0
	}
	return float64(r.Enola.Tcomp) / float64(ours)
}

// Run executes the full three-way comparison for one benchmark instance on
// its default single-AOD architecture.
func Run(spec Spec) (*RowResult, error) {
	return RunWithAODs(spec, 1)
}

// RunWithAODs executes the three-way comparison with the given number of
// AOD arrays (the baseline always uses one, as in the paper).
func RunWithAODs(spec Spec, aods int) (*RowResult, error) {
	circ, err := spec.Circuit()
	if err != nil {
		return nil, err
	}
	row := &RowResult{Spec: spec}

	row.Enola, err = runEnola(circ, spec.Arch(1))
	if err != nil {
		return nil, fmt.Errorf("experiments: %s baseline: %w", spec, err)
	}
	row.NonStorage, err = runPowerMove(circ, spec.Arch(aods), false)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s non-storage: %w", spec, err)
	}
	row.WithStorage, err = runPowerMove(circ, spec.Arch(aods), true)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s with-storage: %w", spec, err)
	}
	return row, nil
}

func runEnola(circ *circuit.Circuit, a *arch.Arch) (SchemeResult, error) {
	res, err := enola.Compile(circ, a, enola.Options{Seed: 1})
	if err != nil {
		return SchemeResult{}, err
	}
	exec, err := sim.Execute(res.Program, res.Initial)
	if err != nil {
		return SchemeResult{}, err
	}
	return SchemeResult{
		Fidelity:   exec.Fidelity,
		Components: exec.Components,
		Texe:       exec.Time,
		Tcomp:      res.Stats.CompileTime,
		Stages:     exec.Stages,
		Moves:      res.Stats.Moves,
	}, nil
}

func runPowerMove(circ *circuit.Circuit, a *arch.Arch, storage bool) (SchemeResult, error) {
	res, err := core.Compile(circ, a, core.Options{UseStorage: storage, Seed: 1})
	if err != nil {
		return SchemeResult{}, err
	}
	exec, err := sim.Execute(res.Program, res.Initial)
	if err != nil {
		return SchemeResult{}, err
	}
	return SchemeResult{
		Fidelity:   exec.Fidelity,
		Components: exec.Components,
		Texe:       exec.Time,
		Tcomp:      res.Stats.CompileTime,
		Stages:     exec.Stages,
		Moves:      res.Stats.Moves,
	}, nil
}
