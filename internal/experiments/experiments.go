// Package experiments defines the paper's evaluation (Sec. 7) as
// declarative job lists over the concurrent batch engine of
// internal/pipeline: the benchmark suite of Table 2 (Sec. 7.1), the
// three-way comparison of Table 3 (Enola baseline vs PowerMove
// non-storage vs PowerMove with-storage, Sec. 7.2), the
// fidelity-component ablations of Fig. 6 (Sec. 7.3), and the multi-AOD
// sweep of Fig. 7 (Sec. 7.4). cmd/experiments and the repository's
// benchmark harness are thin wrappers over this package.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/pipeline"
	"powermove/internal/verify"
	"powermove/internal/workload"
)

// Family names the benchmark generators of Sec. 7.1.
type Family string

// The benchmark families evaluated in the paper.
const (
	QAOARegular3 Family = "QAOA-regular3"
	QAOARegular4 Family = "QAOA-regular4"
	QAOARandom   Family = "QAOA-random"
	QFT          Family = "QFT"
	BV           Family = "BV"
	VQE          Family = "VQE"
	QSim         Family = "QSIM-rand"
)

// Spec identifies one benchmark instance: a family and a qubit count. The
// seed of every randomized generator is derived deterministically from the
// spec, so repeated runs are identical — the seeding contract the batch
// engine's cache and worker-count independence rest on (see
// docs/ARCHITECTURE.md).
type Spec struct {
	Family Family
	Qubits int
}

// String returns the paper's "family-n" naming.
func (s Spec) String() string { return fmt.Sprintf("%s-%d", s.Family, s.Qubits) }

// seed derives a stable per-instance seed.
func (s Spec) seed() int64 {
	h := int64(1469598103934665603)
	for _, b := range []byte(s.Family) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return h ^ int64(s.Qubits)*2654435761
}

// Circuit instantiates the benchmark circuit.
func (s Spec) Circuit() (*circuit.Circuit, error) {
	switch s.Family {
	case QAOARegular3:
		return workload.QAOARegular(s.Qubits, 3, s.seed()), nil
	case QAOARegular4:
		return workload.QAOARegular(s.Qubits, 4, s.seed()), nil
	case QAOARandom:
		return workload.QAOARandom(s.Qubits, s.seed()), nil
	case QFT:
		return workload.QFT(s.Qubits), nil
	case BV:
		return workload.BV(s.Qubits, s.seed()), nil
	case VQE:
		return workload.VQE(s.Qubits), nil
	case QSim:
		return workload.QSim(s.Qubits, s.seed()), nil
	default:
		return nil, fmt.Errorf("experiments: unknown family %q", s.Family)
	}
}

// Arch returns the default Table-2 architecture for this instance with the
// given AOD count.
func (s Spec) Arch(aods int) *arch.Arch {
	return arch.New(arch.Config{Qubits: s.Qubits, AODs: aods})
}

// Job returns the batch job for one evaluation point of this instance.
func (s Spec) Job(scheme pipeline.Scheme, aods int) pipeline.Job {
	return pipeline.NewJob(s.String(), scheme, aods, s.Circuit)
}

// ComparisonJobs returns the three jobs of one Table-3 row: the baseline
// (always single-AOD, as in the paper) and both PowerMove modes with the
// given AOD count. The benchmark circuit is synthesized once and shared
// across the three jobs.
func (s Spec) ComparisonJobs(aods int) []pipeline.Job {
	gen := sync.OnceValues(s.Circuit)
	return []pipeline.Job{
		{Key: s.Job(pipeline.Enola, 1).Key, Circuit: gen},
		{Key: s.Job(pipeline.NonStorage, aods).Key, Circuit: gen},
		{Key: s.Job(pipeline.WithStorage, aods).Key, Circuit: gen},
	}
}

// Table2Specs returns the 23 benchmark instances of Table 2, in table
// order.
func Table2Specs() []Spec {
	return []Spec{
		{QAOARegular3, 30}, {QAOARegular3, 40}, {QAOARegular3, 50},
		{QAOARegular3, 60}, {QAOARegular3, 80}, {QAOARegular3, 100},
		{QAOARegular4, 30}, {QAOARegular4, 40}, {QAOARegular4, 50},
		{QAOARegular4, 60}, {QAOARegular4, 80},
		{QAOARandom, 20}, {QAOARandom, 30},
		{QFT, 18}, {QFT, 29},
		{BV, 14}, {BV, 50}, {BV, 70},
		{VQE, 30}, {VQE, 50},
		{QSim, 10}, {QSim, 20}, {QSim, 40},
	}
}

// Table3Jobs returns the full Table-3 job list: three schemes for each of
// the 23 Table-2 instances, in table order.
func Table3Jobs() []pipeline.Job {
	var jobs []pipeline.Job
	for _, spec := range Table2Specs() {
		jobs = append(jobs, spec.ComparisonJobs(1)...)
	}
	return jobs
}

// SchemeResult is one compiler's outcome on one benchmark instance. It is
// the batch engine's outcome type: fidelity and components per Equation 1,
// execution time, measured compile time, and schedule counts.
type SchemeResult = pipeline.Outcome

// RowResult is one full Table-3 row: all three schemes on one instance.
type RowResult struct {
	Spec        Spec
	Enola       SchemeResult
	NonStorage  SchemeResult
	WithStorage SchemeResult
}

// Stabilize zeroes the row's measured wall-clock fields — the compile
// times and per-pass durations, the only nondeterministic part of a row
// — so documents built from it are byte-identical across runs and
// worker counts. Every front end's "stable" mode routes through here.
func (r *RowResult) Stabilize() {
	r.Enola.Stabilize()
	r.NonStorage.Stabilize()
	r.WithStorage.Stabilize()
}

// FidelityImprovement returns the paper's "Fidelity Improv." column:
// with-storage fidelity over the baseline's.
func (r *RowResult) FidelityImprovement() float64 {
	if r.Enola.Fidelity == 0 {
		return 0
	}
	return r.WithStorage.Fidelity / r.Enola.Fidelity
}

// TexeImprovement returns the paper's "Texe Improv." column: the baseline
// execution time over the non-storage execution time (the paper's
// continuous-router speedup).
func (r *RowResult) TexeImprovement() float64 {
	if r.NonStorage.Texe == 0 {
		return 0
	}
	return r.Enola.Texe / r.NonStorage.Texe
}

// TcompImprovement returns the paper's "Tcomp Improv." column: baseline
// compile time over the mean of the two PowerMove compile times (the
// paper reports the average of its two scenarios).
func (r *RowResult) TcompImprovement() float64 {
	ours := (r.NonStorage.Tcomp + r.WithStorage.Tcomp) / 2
	if ours == 0 {
		return 0
	}
	return float64(r.Enola.Tcomp) / float64(ours)
}

// Runner executes experiment job lists on the batch engine. The zero
// value runs with GOMAXPROCS workers and a fresh shared cache; a Runner
// reused across calls (e.g. Table3 then Figure6 then Figure7) shares its
// cache between them, so overlapping evaluation points compile once.
type Runner struct {
	// Jobs bounds worker concurrency; values < 1 select GOMAXPROCS.
	Jobs int
	// OnResult, when set, streams per-job completions (see
	// pipeline.Options.OnResult).
	OnResult func(done, total int, r pipeline.Result)
	// Cache, when set, backs every run of this runner, sharing outcomes
	// with other holders of the same cache (the compile service points
	// its shared LRU here so /v1/experiments reuses /v1/compile work and
	// vice versa). Nil allocates a private unbounded cache on first run.
	Cache *pipeline.Cache
	// Sem, when set, is an external concurrency gate shared with other
	// pipeline users (see pipeline.Options.Sem); the compile service
	// passes its compile semaphore so experiment runs respect the
	// service-wide worker bound.
	Sem chan struct{}
	// Snapshots, when set, is the incremental-compilation snapshot store
	// (see pipeline.Options.Snapshots); the compile service shares its
	// store so experiment sweeps resume from /v1/compile checkpoints and
	// vice versa. Nil compiles every point cold.
	Snapshots *pipeline.SnapshotStore

	stats  pipeline.Stats
	oracle verify.OracleStats
}

// Stats returns the accumulated engine accounting of every run so far.
func (rn *Runner) Stats() pipeline.Stats { return rn.stats }

// Oracle returns the accumulated state-vector oracle accounting of
// every verification sweep this runner ran (zero if none did).
func (rn *Runner) Oracle() verify.OracleStats { return rn.oracle }

// run executes jobs and indexes the outcomes by key. Per-job errors
// abort with the first failure; a cancelled context aborts with ctx.Err.
func (rn *Runner) run(ctx context.Context, jobs []pipeline.Job) (map[pipeline.Key]pipeline.Outcome, error) {
	if rn.Cache == nil {
		rn.Cache = pipeline.NewCache()
	}
	results, stats, err := pipeline.Run(ctx, jobs, pipeline.Options{
		Workers:   rn.Jobs,
		OnResult:  rn.OnResult,
		Cache:     rn.Cache,
		Sem:       rn.Sem,
		Snapshots: rn.Snapshots,
	})
	rn.stats.Jobs += stats.Jobs
	if stats.Workers > rn.stats.Workers {
		rn.stats.Workers = stats.Workers
	}
	rn.stats.Compiles += stats.Compiles
	rn.stats.CacheHits += stats.CacheHits
	rn.stats.Wall += stats.Wall
	if err != nil {
		return nil, err
	}
	if err := pipeline.FirstError(results); err != nil {
		return nil, err
	}
	outcomes := make(map[pipeline.Key]pipeline.Outcome, len(results))
	for _, r := range results {
		outcomes[r.Key] = r.Outcome
	}
	return outcomes, nil
}

// row assembles one Table-3 row from computed outcomes.
func row(spec Spec, aods int, outcomes map[pipeline.Key]pipeline.Outcome) *RowResult {
	return &RowResult{
		Spec:        spec,
		Enola:       outcomes[spec.Job(pipeline.Enola, 1).Key],
		NonStorage:  outcomes[spec.Job(pipeline.NonStorage, aods).Key],
		WithStorage: outcomes[spec.Job(pipeline.WithStorage, aods).Key],
	}
}

// Table3Rows runs the full Table-3 comparison concurrently and returns
// the rows in table order.
func (rn *Runner) Table3Rows(ctx context.Context) ([]*RowResult, error) {
	outcomes, err := rn.run(ctx, Table3Jobs())
	if err != nil {
		return nil, err
	}
	specs := Table2Specs()
	rows := make([]*RowResult, 0, len(specs))
	for _, spec := range specs {
		rows = append(rows, row(spec, 1, outcomes))
	}
	return rows, nil
}

// Run executes the full three-way comparison for one benchmark instance on
// its default single-AOD architecture, serially on the calling goroutine's
// budget (the batch path is Runner.Table3Rows).
func Run(spec Spec) (*RowResult, error) {
	return RunWithAODs(spec, 1)
}

// RunWithAODs executes the three-way comparison with the given number of
// AOD arrays (the baseline always uses one, as in the paper).
func RunWithAODs(spec Spec, aods int) (*RowResult, error) {
	rn := &Runner{Jobs: 1}
	outcomes, err := rn.run(context.Background(), spec.ComparisonJobs(aods))
	if err != nil {
		return nil, err
	}
	return row(spec, aods, outcomes), nil
}
