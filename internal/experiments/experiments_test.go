package experiments

import (
	"strings"
	"testing"
)

func TestTable2SpecsComplete(t *testing.T) {
	specs := Table2Specs()
	if len(specs) != 23 {
		t.Fatalf("%d benchmark rows, Table 2 has 23", len(specs))
	}
	families := make(map[Family]int)
	for _, s := range specs {
		families[s.Family]++
	}
	want := map[Family]int{
		QAOARegular3: 6, QAOARegular4: 5, QAOARandom: 2,
		QFT: 2, BV: 3, VQE: 2, QSim: 3,
	}
	for fam, n := range want {
		if families[fam] != n {
			t.Errorf("family %s has %d rows, want %d", fam, families[fam], n)
		}
	}
}

func TestSpecCircuits(t *testing.T) {
	for _, spec := range Table2Specs() {
		c, err := spec.Circuit()
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if c.Qubits != spec.Qubits {
			t.Errorf("%s: circuit has %d qubits", spec, c.Qubits)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
	}
	if _, err := (Spec{Family: "bogus", Qubits: 4}).Circuit(); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestSpecDeterministicSeeds(t *testing.T) {
	s := Spec{Family: QAOARandom, Qubits: 20}
	a, _ := s.Circuit()
	b, _ := s.Circuit()
	if a.CZCount() != b.CZCount() {
		t.Error("same spec produced different circuits")
	}
	other := Spec{Family: QAOARandom, Qubits: 21}
	if s.seed() == other.seed() {
		t.Error("different specs share a seed")
	}
	if s.seed() != (Spec{Family: QAOARandom, Qubits: 20}).seed() {
		t.Error("seed not stable")
	}
}

// TestRunSmallBenchmark runs the full three-way comparison on the
// smallest instance and checks the paper's qualitative orderings.
func TestRunSmallBenchmark(t *testing.T) {
	row, err := Run(Spec{Family: QSim, Qubits: 10})
	if err != nil {
		t.Fatal(err)
	}
	if row.WithStorage.Fidelity <= row.Enola.Fidelity {
		t.Errorf("with-storage fidelity %v not above baseline %v",
			row.WithStorage.Fidelity, row.Enola.Fidelity)
	}
	if row.WithStorage.Components.Excitation != 1 {
		t.Errorf("with-storage excitation component = %v, want 1",
			row.WithStorage.Components.Excitation)
	}
	if row.NonStorage.Texe >= row.Enola.Texe {
		t.Errorf("non-storage Texe %v not below baseline %v",
			row.NonStorage.Texe, row.Enola.Texe)
	}
	if row.FidelityImprovement() <= 1 {
		t.Errorf("fidelity improvement %v, want > 1", row.FidelityImprovement())
	}
	if row.TexeImprovement() <= 1 {
		t.Errorf("Texe improvement %v, want > 1", row.TexeImprovement())
	}
	if row.Enola.Tcomp <= 0 || row.NonStorage.Tcomp <= 0 {
		t.Error("compile times not recorded")
	}
}

func TestFigure6Sizes(t *testing.T) {
	for _, fam := range Figure6Families() {
		sizes := Figure6Sizes(fam)
		if len(sizes) < 3 {
			t.Errorf("%s: only %d sweep sizes", fam, len(sizes))
		}
		for i := 1; i < len(sizes); i++ {
			if sizes[i] <= sizes[i-1] {
				t.Errorf("%s: sizes not increasing: %v", fam, sizes)
			}
		}
	}
	if Figure6Sizes(QAOARegular4) != nil {
		t.Error("QAOA-regular4 is not a Fig. 6 panel")
	}
	if _, err := Figure6(QAOARegular4); err == nil {
		t.Error("Figure6 accepted a non-panel family")
	}
}

func TestFigure7Specs(t *testing.T) {
	specs := Figure7Specs()
	if len(specs) != 5 {
		t.Fatalf("%d Fig. 7 benchmarks, want 5", len(specs))
	}
	want := map[string]bool{
		"QAOA-regular3-100": true, "QSIM-rand-20": true,
		"QFT-18": true, "VQE-50": true, "BV-70": true,
	}
	for _, s := range specs {
		if !want[s.String()] {
			t.Errorf("unexpected Fig. 7 spec %s", s)
		}
	}
}

func TestStaticTables(t *testing.T) {
	t1 := Table1()
	out := t1.Render()
	for _, piece := range []string{"99.5%", "270 ns", "2750", "100 us"} {
		if !strings.Contains(out, piece) {
			t.Errorf("Table 1 missing %q:\n%s", piece, out)
		}
	}
	t2 := Table2()
	if len(t2.Rows) != 23 {
		t.Errorf("Table 2 has %d rows, want 23", len(t2.Rows))
	}
	out2 := t2.Render()
	for _, piece := range []string{"90 x 90", "150 x 300", "QAOA-regular3"} {
		if !strings.Contains(out2, piece) {
			t.Errorf("Table 2 missing %q", piece)
		}
	}
}

func TestSpecString(t *testing.T) {
	if got := (Spec{Family: BV, Qubits: 70}).String(); got != "BV-70" {
		t.Errorf("String = %q", got)
	}
}
