// Figure-level experiments: the per-component fidelity ablations of Fig. 6
// (Sec. 7.3) and the multi-AOD sweep of Fig. 7 (Sec. 7.4), as job lists
// over the batch engine.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"powermove/internal/pipeline"
)

// Figure6Sizes returns the qubit counts swept for each panel of Fig. 6,
// matching the x-axis ranges of the paper's plots.
func Figure6Sizes(f Family) []int {
	switch f {
	case QAOARegular3:
		return []int{20, 40, 60, 80, 100}
	case QSim:
		return []int{10, 20, 40, 60, 80}
	case QFT:
		return []int{18, 29, 44, 60}
	case VQE:
		return []int{10, 20, 30, 40, 50}
	case BV:
		return []int{14, 30, 50, 70}
	default:
		return nil
	}
}

// Figure6Families returns the panels of Fig. 6 in paper order.
func Figure6Families() []Family {
	return []Family{QAOARegular3, QSim, QFT, VQE, BV}
}

// Figure6Panels maps the paper's panel names ("6a".."6e") to their
// benchmark families — the one source of truth for every front end
// (cmd/experiments flags, the service's /v1/experiments/figure route).
func Figure6Panels() map[string]Family {
	return map[string]Family{
		"6a": QAOARegular3,
		"6b": QSim,
		"6c": QFT,
		"6d": VQE,
		"6e": BV,
	}
}

// Figure6Jobs returns one panel's job list: the family swept over its
// figure sizes, all three schemes per size.
func Figure6Jobs(f Family) ([]pipeline.Job, error) {
	sizes := Figure6Sizes(f)
	if sizes == nil {
		return nil, fmt.Errorf("experiments: family %q is not a Fig. 6 panel", f)
	}
	var jobs []pipeline.Job
	for _, n := range sizes {
		jobs = append(jobs, Spec{Family: f, Qubits: n}.ComparisonJobs(1)...)
	}
	return jobs, nil
}

// Figure6Point is one x-position of one Fig. 6 panel: the fidelity
// components of all three schemes at one qubit count.
type Figure6Point struct {
	Qubits int
	Row    *RowResult
}

// Figure6Panel runs one panel of Fig. 6 concurrently: the given family
// swept over its figure sizes, recording the per-component fidelity
// breakdown for the baseline and both PowerMove modes.
func (rn *Runner) Figure6Panel(ctx context.Context, f Family) ([]Figure6Point, error) {
	jobs, err := Figure6Jobs(f)
	if err != nil {
		return nil, err
	}
	outcomes, err := rn.run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	sizes := Figure6Sizes(f)
	points := make([]Figure6Point, 0, len(sizes))
	for _, n := range sizes {
		spec := Spec{Family: f, Qubits: n}
		points = append(points, Figure6Point{Qubits: n, Row: row(spec, 1, outcomes)})
	}
	return points, nil
}

// Figure6 runs one panel of Fig. 6 on a fresh serial runner; the batch
// path is Runner.Figure6Panel.
func Figure6(f Family) ([]Figure6Point, error) {
	rn := &Runner{Jobs: 1}
	return rn.Figure6Panel(context.Background(), f)
}

// Figure7Specs returns the five benchmark instances of the multi-AOD study
// (Fig. 7): 100-qubit QAOA-regular3, 20-qubit QSIM, 18-qubit QFT,
// 50-qubit VQE, and 70-qubit BV.
func Figure7Specs() []Spec {
	return []Spec{
		{QAOARegular3, 100},
		{QSim, 20},
		{QFT, 18},
		{VQE, 50},
		{BV, 70},
	}
}

// MaxAODs is the largest AOD count swept in Fig. 7.
const MaxAODs = 4

// Figure7Jobs returns the multi-AOD job list: the with-storage pipeline
// (the paper's full framework) at AOD counts 1..MaxAODs over the Fig. 7
// benchmarks, grouped per spec with AODs ascending.
func Figure7Jobs() []pipeline.Job {
	var jobs []pipeline.Job
	for _, spec := range Figure7Specs() {
		gen := sync.OnceValues(spec.Circuit)
		for aods := 1; aods <= MaxAODs; aods++ {
			jobs = append(jobs, pipeline.Job{
				Key:     spec.Job(pipeline.WithStorage, aods).Key,
				Circuit: gen,
			})
		}
	}
	return jobs
}

// Figure7Point records the full-pipeline result of one benchmark under one
// AOD count.
type Figure7Point struct {
	Spec   Spec
	AODs   int
	Result SchemeResult
}

// Figure7Sweep runs the Fig. 7 sweep concurrently, returning points
// grouped per spec with AODs ascending 1..MaxAODs.
func (rn *Runner) Figure7Sweep(ctx context.Context) ([]Figure7Point, error) {
	outcomes, err := rn.run(ctx, Figure7Jobs())
	if err != nil {
		return nil, err
	}
	var points []Figure7Point
	for _, spec := range Figure7Specs() {
		for aods := 1; aods <= MaxAODs; aods++ {
			points = append(points, Figure7Point{
				Spec:   spec,
				AODs:   aods,
				Result: outcomes[spec.Job(pipeline.WithStorage, aods).Key],
			})
		}
	}
	return points, nil
}

// Figure7 runs the sweep on a fresh serial runner; the batch path is
// Runner.Figure7Sweep.
func Figure7() ([]Figure7Point, error) {
	rn := &Runner{Jobs: 1}
	return rn.Figure7Sweep(context.Background())
}
