// Figure-level experiments: the per-component fidelity ablations of Fig. 6
// and the multi-AOD sweep of Fig. 7.
package experiments

import "fmt"

// Figure6Sizes returns the qubit counts swept for each panel of Fig. 6,
// matching the x-axis ranges of the paper's plots.
func Figure6Sizes(f Family) []int {
	switch f {
	case QAOARegular3:
		return []int{20, 40, 60, 80, 100}
	case QSim:
		return []int{10, 20, 40, 60, 80}
	case QFT:
		return []int{18, 29, 44, 60}
	case VQE:
		return []int{10, 20, 30, 40, 50}
	case BV:
		return []int{14, 30, 50, 70}
	default:
		return nil
	}
}

// Figure6Families returns the panels of Fig. 6 in paper order.
func Figure6Families() []Family {
	return []Family{QAOARegular3, QSim, QFT, VQE, BV}
}

// Figure6Point is one x-position of one Fig. 6 panel: the fidelity
// components of all three schemes at one qubit count.
type Figure6Point struct {
	Qubits int
	Row    *RowResult
}

// Figure6 runs one panel of Fig. 6: the given family swept over its
// figure sizes, recording the per-component fidelity breakdown for the
// baseline and both PowerMove modes.
func Figure6(f Family) ([]Figure6Point, error) {
	sizes := Figure6Sizes(f)
	if sizes == nil {
		return nil, fmt.Errorf("experiments: family %q is not a Fig. 6 panel", f)
	}
	points := make([]Figure6Point, 0, len(sizes))
	for _, n := range sizes {
		row, err := Run(Spec{Family: f, Qubits: n})
		if err != nil {
			return nil, err
		}
		points = append(points, Figure6Point{Qubits: n, Row: row})
	}
	return points, nil
}

// Figure7Specs returns the five benchmark instances of the multi-AOD study
// (Fig. 7): 100-qubit QAOA-regular3, 20-qubit QSIM, 18-qubit QFT,
// 50-qubit VQE, and 70-qubit BV.
func Figure7Specs() []Spec {
	return []Spec{
		{QAOARegular3, 100},
		{QSim, 20},
		{QFT, 18},
		{VQE, 50},
		{BV, 70},
	}
}

// MaxAODs is the largest AOD count swept in Fig. 7.
const MaxAODs = 4

// Figure7Point records the full-pipeline result of one benchmark under one
// AOD count.
type Figure7Point struct {
	Spec   Spec
	AODs   int
	Result SchemeResult
}

// Figure7 sweeps AOD counts 1..MaxAODs over the Fig. 7 benchmarks, running
// the with-storage pipeline (the paper's full framework).
func Figure7() ([]Figure7Point, error) {
	var points []Figure7Point
	for _, spec := range Figure7Specs() {
		circ, err := spec.Circuit()
		if err != nil {
			return nil, err
		}
		for aods := 1; aods <= MaxAODs; aods++ {
			res, err := runPowerMove(circ, spec.Arch(aods), true)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s with %d AODs: %w", spec, aods, err)
			}
			points = append(points, Figure7Point{Spec: spec, AODs: aods, Result: res})
		}
	}
	return points, nil
}
