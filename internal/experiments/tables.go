// Rendering of experiments as the paper's tables and figures, via
// internal/report.
package experiments

import (
	"context"
	"fmt"

	"powermove/internal/arch"
	"powermove/internal/phys"
	"powermove/internal/report"
)

// Table1 renders the hardware-parameter table (Table 1 of the paper)
// directly from the physical model's constants.
func Table1() *report.Table {
	t := report.NewTable("Table 1: fidelity and duration of NAQC operations",
		"Operation", "Fidelity", "Duration")
	t.AddRow("1Q gate", fmt.Sprintf("%.2f%%", phys.FidelityOneQubit*100), fmt.Sprintf("%.0f us", phys.DurationOneQubit))
	t.AddRow("CZ gate", fmt.Sprintf("%.1f%%", phys.FidelityCZ*100), fmt.Sprintf("%.0f ns", phys.DurationCZ*1000))
	t.AddRow("Excitation", fmt.Sprintf("%.2f%%", phys.FidelityExcitation*100), fmt.Sprintf("%.0f ns", phys.DurationCZ*1000))
	t.AddRow("Transfer", fmt.Sprintf("%.1f%%", phys.FidelityTransfer*100), fmt.Sprintf("%.0f us", phys.DurationTransfer))
	t.AddRow("Movement", fmt.Sprintf("~100%% if a < %.0f m/s^2", phys.MaxAcceleration),
		fmt.Sprintf("%.0f us (%.0f us) for 27.5 um (110 um)", phys.MoveTime(27.5), phys.MoveTime(110)))
	return t
}

// Table2 renders the benchmark/zone-size table (Table 2 of the paper) from
// the default architecture builder.
func Table2() *report.Table {
	t := report.NewTable("Table 2: benchmarks and hardware configuration",
		"Name", "#Qubits", "Compute Zone (um^2)", "Inter Zone (um^2)", "Storage Zone (um^2)")
	for _, spec := range Table2Specs() {
		a := spec.Arch(1)
		cz := a.ZoneRect(arch.Compute)
		iz := a.InterZoneRect()
		sz := a.ZoneRect(arch.Storage)
		t.AddRow(string(spec.Family), fmt.Sprintf("%d", spec.Qubits),
			fmt.Sprintf("%.0f x %.0f", cz.Width(), cz.Height()),
			fmt.Sprintf("%.0f x %.0f", iz.Width(), iz.Height()),
			fmt.Sprintf("%.0f x %.0f", sz.Width(), sz.Height()))
	}
	return t
}

// Table3Render renders computed Table-3 rows in the column layout of
// Table 3 of the paper. With stable set, the three wall-clock
// compile-time columns print as "-" so the rendered table is byte-for-byte
// reproducible across runs and worker counts (every other column is a
// deterministic function of the benchmark suite).
func Table3Render(rows []*RowResult, stable bool) *report.Table {
	t := report.NewTable("Table 3: main results (Enola baseline vs PowerMove)",
		"Benchmark", "Enola Fid", "Our Fid (non-st)", "Our Fid (storage)", "Fid Improv",
		"Enola Texe(us)", "Our Texe (non-st)", "Our Texe (storage)", "Texe Improv",
		"Enola Tcomp", "Our Tcomp", "Tcomp Improv")
	for _, row := range rows {
		ourTcomp := (row.NonStorage.Tcomp + row.WithStorage.Tcomp) / 2
		enolaTcomp, ourTcompS, improv := row.Enola.Tcomp.String(), ourTcomp.String(),
			report.Ratio(row.TcompImprovement())
		if stable {
			enolaTcomp, ourTcompS, improv = "-", "-", "-"
		}
		t.AddRow(row.Spec.String(),
			report.Sci(row.Enola.Fidelity),
			report.Sci(row.NonStorage.Fidelity),
			report.Sci(row.WithStorage.Fidelity),
			report.Ratio(row.FidelityImprovement()),
			report.Fixed(row.Enola.Texe, 1),
			report.Fixed(row.NonStorage.Texe, 1),
			report.Fixed(row.WithStorage.Texe, 1),
			report.Ratio(row.TexeImprovement()),
			enolaTcomp,
			ourTcompS,
			improv)
	}
	return t
}

// Table3 runs the full main-results comparison on a fresh serial runner
// and renders it; the batch path is Runner.Table3Rows + Table3Render.
func Table3() (*report.Table, []*RowResult, error) {
	rn := &Runner{Jobs: 1}
	rows, err := rn.Table3Rows(context.Background())
	if err != nil {
		return nil, nil, err
	}
	return Table3Render(rows, false), rows, nil
}

// Summary renders the aggregate claims of Sec. 7.2 from a set of Table-3
// rows: the execution-time improvement range, the largest fidelity
// improvement, and the largest compilation-time improvement. With stable
// set the wall-clock compile-time claim prints as "-" (the rows' measured
// compile times are excluded from reproducible output).
func Summary(rows []*RowResult, stable bool) *report.Table {
	t := report.NewTable("Sec. 7.2 aggregate claims", "Claim", "Paper", "Measured")
	minTexe, maxTexe := 0.0, 0.0
	maxFid, maxTcomp := 0.0, 0.0
	for i, r := range rows {
		texe := r.TexeImprovement()
		if i == 0 || texe < minTexe {
			minTexe = texe
		}
		if texe > maxTexe {
			maxTexe = texe
		}
		if f := r.FidelityImprovement(); f > maxFid {
			maxFid = f
		}
		if c := r.TcompImprovement(); c > maxTcomp {
			maxTcomp = c
		}
	}
	t.AddRow("Execution-time improvement range", "1.71x - 3.46x",
		fmt.Sprintf("%s - %s", report.Ratio(minTexe), report.Ratio(maxTexe)))
	t.AddRow("Max fidelity improvement", "1090x (BV-70)", report.Ratio(maxFid))
	measuredTcomp := report.Ratio(maxTcomp)
	if stable {
		measuredTcomp = "-"
	}
	t.AddRow("Max compile-time improvement", "213.5x (BV-70)", measuredTcomp)
	return t
}

// Figure6Table renders one Fig. 6 panel as a table: one row per scheme per
// qubit count, with the four fidelity components the figure stacks.
func Figure6Table(f Family, points []Figure6Point) *report.Table {
	t := report.NewTable(fmt.Sprintf("Figure 6: fidelity components, %s", f),
		"#Qubits", "Scheme", "Total", "Two-qubit", "Excitation", "Transfer", "Decoherence")
	for _, pt := range points {
		for _, s := range []struct {
			name string
			res  SchemeResult
		}{
			{"Enola", pt.Row.Enola},
			{"Ours (non-storage)", pt.Row.NonStorage},
			{"Ours (with-storage)", pt.Row.WithStorage},
		} {
			c := s.res.Components
			t.AddRow(fmt.Sprintf("%d", pt.Qubits), s.name,
				report.Sci(s.res.Fidelity),
				report.Sci(c.TwoQubit), report.Sci(c.Excitation),
				report.Sci(c.Transfer), report.Sci(c.Decoherence))
		}
	}
	return t
}

// Figure7Table renders the multi-AOD sweep of Fig. 7.
func Figure7Table(points []Figure7Point) *report.Table {
	t := report.NewTable("Figure 7: effect of multiple AODs (with-storage pipeline)",
		"Benchmark", "AODs", "Texe (us)", "Fidelity")
	for _, pt := range points {
		t.AddRow(pt.Spec.String(), fmt.Sprintf("%d", pt.AODs),
			report.Fixed(pt.Result.Texe, 1), report.Sci(pt.Result.Fidelity))
	}
	return t
}
