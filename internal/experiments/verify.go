// The verification sweep: every benchmark family of the paper's
// evaluation, compiled by every pipeline, run through the differential
// verification subsystem (internal/verify) on the batch engine.
// cmd/experiments -verify and the CI smoke test consume it; it is the
// whole-suite form of the per-request verify mode the compile service
// exposes.
package experiments

import (
	"context"
	"fmt"

	"powermove/internal/pipeline"
	"powermove/internal/report"
	"powermove/internal/verify"
)

// VerifySweepQubits is the instance size of the verification sweep:
// comfortably under verify.MaxOracleQubits, so every point gets the
// exact state-vector oracle rather than the structural fallback.
const VerifySweepQubits = 12

// VerifySweepSpecs returns one statevec-checkable instance per
// benchmark family, in Table-2 family order.
func VerifySweepSpecs() []Spec {
	families := []Family{QAOARegular3, QAOARegular4, QAOARandom, QFT, BV, VQE, QSim}
	specs := make([]Spec, len(families))
	for i, f := range families {
		specs[i] = Spec{Family: f, Qubits: VerifySweepQubits}
	}
	return specs
}

// VerifySweepJobs returns the sweep's job list: every sweep instance
// under all three schemes. The keys do not request per-job verification
// — the sweep verifies the whole corpus through the batched oracle
// (verify.AllBatch) after the compiles land, which also lets the
// compile outcomes share cache entries with unverified runs of the same
// points.
func VerifySweepJobs() []pipeline.Job {
	var jobs []pipeline.Job
	for _, spec := range VerifySweepSpecs() {
		for _, scheme := range []pipeline.Scheme{pipeline.Enola, pipeline.NonStorage, pipeline.WithStorage} {
			jobs = append(jobs, spec.Job(scheme, 1))
		}
	}
	return jobs
}

// VerifyPoint is one sweep result: the evaluation point plus its
// verification summary.
type VerifyPoint struct {
	Key     pipeline.Key    `json:"key"`
	Summary *verify.Summary `json:"summary"`
}

// OK reports whether the point verified clean.
func (p VerifyPoint) OK() bool { return p.Summary != nil && p.Summary.Violations == 0 }

// VerifySweep runs the verification sweep: every point compiles (and
// simulates) on the engine, then the whole corpus of compiled programs
// goes through verify.AllBatch, which simulates all state-vector oracle
// cases as shared batch runs instead of one independent simulation per
// point. It returns one point per job, in job order; the points' keys
// carry the verify marker even though the underlying compile keys do
// not (the verification happened, just outside the per-job path).
func (rn *Runner) VerifySweep(ctx context.Context) ([]VerifyPoint, error) {
	jobs := VerifySweepJobs()
	arts := make([]*pipeline.Artifacts, len(jobs))
	for i := range jobs {
		idx := i
		// Distinct slice elements: engine workers write disjoint slots,
		// and the engine's WaitGroup orders those writes before the
		// reads below.
		jobs[idx].Keep = func(a pipeline.Artifacts) { arts[idx] = &a }
	}
	if _, err := rn.run(ctx, jobs); err != nil {
		return nil, err
	}
	items := make([]verify.Item, len(jobs))
	for i := range jobs {
		if arts[i] == nil {
			// The compile was served from cache, which carries outcomes,
			// not artifacts: re-derive them outside the engine.
			a, err := pipeline.CompileJob(jobs[i])
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: recompile for verification: %w", jobs[i].Key, err)
			}
			arts[i] = &a
		}
		items[i] = verify.Item{Circ: arts[i].Circuit, Prog: arts[i].Program, Initial: arts[i].Initial}
	}
	reports, stats := verify.AllBatch(items, verify.BatchOptions{Workers: rn.Jobs})
	rn.oracle.Add(stats)
	points := make([]VerifyPoint, len(jobs))
	for i, job := range jobs {
		key := job.Key
		key.Verify = true
		points[i] = VerifyPoint{Key: key, Summary: reports[i].Summary()}
	}
	return points, nil
}

// VerifySweepTable renders the sweep as a table: one row per point with
// its equivalence mode and violation count.
func VerifySweepTable(points []VerifyPoint) *report.Table {
	t := report.NewTable("Verification sweep (physical legality + semantic equivalence)",
		"Benchmark", "Scheme", "Oracle", "Violations", "Status")
	for _, p := range points {
		mode, violations, status := "-", "-", "NOT RUN"
		if p.Summary != nil {
			mode = p.Summary.EquivalenceMode
			violations = fmt.Sprint(p.Summary.Violations)
			if p.OK() {
				status = "OK"
			} else {
				status = "FAIL"
			}
		}
		t.AddRow(p.Key.Bench, string(p.Key.Scheme), mode, violations, status)
	}
	return t
}

// VerifySweepErr returns an error describing the first failing point of
// a sweep, or nil when every point verified clean.
func VerifySweepErr(points []VerifyPoint) error {
	for _, p := range points {
		if !p.OK() {
			if p.Summary == nil {
				return fmt.Errorf("experiments: %s: verification did not run", p.Key)
			}
			msg := ""
			if len(p.Summary.Messages) > 0 {
				msg = ": " + p.Summary.Messages[0]
			}
			return fmt.Errorf("experiments: %s: %d violation(s)%s", p.Key, p.Summary.Violations, msg)
		}
	}
	return nil
}
