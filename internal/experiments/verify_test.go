package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestVerifySweepCleanAndComplete: the sweep covers every family under
// every scheme, every point verifies clean with the exact oracle, and
// the renderer and error helper agree.
func TestVerifySweepCleanAndComplete(t *testing.T) {
	rn := &Runner{Jobs: 2}
	points, err := rn.VerifySweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := 7 * 3; len(points) != want {
		t.Fatalf("%d sweep points, want %d", len(points), want)
	}
	seen := map[string]int{}
	for _, p := range points {
		if !p.OK() {
			t.Errorf("%s: %+v", p.Key, p.Summary)
		}
		if p.Summary.EquivalenceMode != "statevec" {
			t.Errorf("%s: oracle mode %q, want statevec", p.Key, p.Summary.EquivalenceMode)
		}
		if !p.Key.Verify {
			t.Errorf("%s: job key lost the verify flag", p.Key)
		}
		seen[string(p.Key.Scheme)]++
	}
	for _, scheme := range []string{"enola", "non-storage", "with-storage"} {
		if seen[scheme] != 7 {
			t.Errorf("scheme %s covered %d times, want 7", scheme, seen[scheme])
		}
	}
	if err := VerifySweepErr(points); err != nil {
		t.Errorf("VerifySweepErr on a clean sweep: %v", err)
	}
	table := VerifySweepTable(points).Render()
	if strings.Contains(table, "FAIL") || !strings.Contains(table, "OK") {
		t.Errorf("sweep table renders wrong statuses:\n%s", table)
	}
}

// TestVerifySweepErrReportsFailures: a tampered point is surfaced with
// its key and first message.
func TestVerifySweepErrReportsFailures(t *testing.T) {
	rn := &Runner{Jobs: 2}
	points, err := rn.VerifySweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	broken := append([]VerifyPoint(nil), points...)
	broken[3].Summary = nil
	if err := VerifySweepErr(broken); err == nil {
		t.Error("missing summary not reported")
	} else if !strings.Contains(err.Error(), broken[3].Key.String()) {
		t.Errorf("error does not name the failing point: %v", err)
	}
}
