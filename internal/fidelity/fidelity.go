// Package fidelity implements the output-fidelity model of Sec. 2.2 of the
// paper (Equation 1). The model decomposes circuit fidelity into five
// multiplicative components: single-qubit gates, CZ gates, Rydberg
// excitation error on idle computation-zone qubits, SLM<->AOD transfer
// error, and per-qubit decoherence proportional to time spent idle outside
// the storage zone.
package fidelity

import (
	"fmt"
	"strings"

	"powermove/internal/phys"
)

// Counts aggregates the raw event counts and idle times that determine the
// output fidelity. The executor produces one Counts per run.
type Counts struct {
	// OneQGates is g1, the number of single-qubit gates.
	OneQGates int
	// CZGates is g2, the number of two-qubit CZ gates.
	CZGates int
	// Excitations is the number of Rydberg pulses S.
	Excitations int
	// ExcitedIdle is the sum over pulses of the number of
	// non-interacting qubits caught in the computation zone
	// (sum of n_i in Equation 1).
	ExcitedIdle int
	// Transfers is N_trans, the number of SLM<->AOD qubit transfers
	// (two per moved qubit per Coll-Move: pickup and dropoff).
	Transfers int
	// IdleTime[q] is T_q: the total time qubit q spent outside the
	// storage zone while not being operated on, in microseconds.
	IdleTime []float64
}

// Add accumulates other into c. Idle-time slices must describe the same
// qubit count; Add panics otherwise.
func (c *Counts) Add(other Counts) {
	c.OneQGates += other.OneQGates
	c.CZGates += other.CZGates
	c.Excitations += other.Excitations
	c.ExcitedIdle += other.ExcitedIdle
	c.Transfers += other.Transfers
	if len(c.IdleTime) == 0 {
		c.IdleTime = append(c.IdleTime, other.IdleTime...)
		return
	}
	if len(other.IdleTime) == 0 {
		return
	}
	if len(other.IdleTime) != len(c.IdleTime) {
		panic(fmt.Sprintf("fidelity: mismatched qubit counts %d and %d", len(c.IdleTime), len(other.IdleTime)))
	}
	for q := range c.IdleTime {
		c.IdleTime[q] += other.IdleTime[q]
	}
}

// Components holds the five multiplicative fidelity factors of Equation 1.
type Components struct {
	// OneQubit is f1^g1. The paper omits this term from compiler
	// comparisons because 1Q layers are identical across compilers; it
	// is reported separately and excluded from Total.
	OneQubit float64
	// TwoQubit is f2^g2.
	TwoQubit float64
	// Excitation is f_exc^(sum n_i).
	Excitation float64
	// Transfer is f_trans^N_trans.
	Transfer float64
	// Decoherence is the product over qubits of (1 - T_q/T2).
	Decoherence float64
}

// Compute evaluates the fidelity model on the given counts.
func Compute(c Counts) Components {
	deco := 1.0
	for _, idle := range c.IdleTime {
		deco *= phys.DecoherenceFactor(idle)
	}
	return Components{
		OneQubit:    phys.Pow(phys.FidelityOneQubit, c.OneQGates),
		TwoQubit:    phys.Pow(phys.FidelityCZ, c.CZGates),
		Excitation:  phys.Pow(phys.FidelityExcitation, c.ExcitedIdle),
		Transfer:    phys.Pow(phys.FidelityTransfer, c.Transfers),
		Decoherence: deco,
	}
}

// Total returns the output fidelity used in the paper's comparisons: the
// product of the CZ, excitation, transfer, and decoherence components.
// Following Sec. 2.2, the single-qubit term is excluded because it is
// identical across the compared compilers.
func (f Components) Total() float64 {
	return f.TwoQubit * f.Excitation * f.Transfer * f.Decoherence
}

// TotalWithOneQubit returns the full Equation-1 product including the
// single-qubit term.
func (f Components) TotalWithOneQubit() float64 {
	return f.Total() * f.OneQubit
}

// String renders the components compactly for logs and reports.
func (f Components) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%.4g (2q=%.4g exc=%.4g trans=%.4g deco=%.4g 1q=%.4g)",
		f.Total(), f.TwoQubit, f.Excitation, f.Transfer, f.Decoherence, f.OneQubit)
	return b.String()
}
