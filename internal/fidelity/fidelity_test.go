package fidelity

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"powermove/internal/phys"
)

func TestComputeHandChecked(t *testing.T) {
	c := Counts{
		OneQGates:   10,
		CZGates:     20,
		Excitations: 3,
		ExcitedIdle: 5,
		Transfers:   8,
		IdleTime:    []float64{1000, 0, 150000},
	}
	f := Compute(c)
	approx := func(got, want float64, name string) {
		t.Helper()
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	approx(f.OneQubit, math.Pow(0.9999, 10), "OneQubit")
	approx(f.TwoQubit, math.Pow(0.995, 20), "TwoQubit")
	approx(f.Excitation, math.Pow(0.9975, 5), "Excitation")
	approx(f.Transfer, math.Pow(0.999, 8), "Transfer")
	wantDeco := (1 - 1000/phys.CoherenceTime) * 1 * (1 - 150000/phys.CoherenceTime)
	approx(f.Decoherence, wantDeco, "Decoherence")
	approx(f.Total(), f.TwoQubit*f.Excitation*f.Transfer*f.Decoherence, "Total")
	approx(f.TotalWithOneQubit(), f.Total()*f.OneQubit, "TotalWithOneQubit")
}

// TestTotalExcludesOneQubit pins the Sec. 2.2 convention: the headline
// fidelity omits the 1Q term.
func TestTotalExcludesOneQubit(t *testing.T) {
	with := Compute(Counts{OneQGates: 1000})
	without := Compute(Counts{})
	if with.Total() != without.Total() {
		t.Error("1Q gates leaked into Total()")
	}
	if with.TotalWithOneQubit() >= without.TotalWithOneQubit() {
		t.Error("1Q gates missing from TotalWithOneQubit()")
	}
}

func TestZeroCountsPerfectFidelity(t *testing.T) {
	f := Compute(Counts{})
	if f.Total() != 1 || f.TotalWithOneQubit() != 1 {
		t.Errorf("empty program fidelity = %v, want 1", f.Total())
	}
}

// TestComponentsBounded: fidelity components stay in [0, 1] for any
// non-negative counts.
func TestComponentsBounded(t *testing.T) {
	f := func(g1, g2, exc, tr uint16, idleRaw uint32) bool {
		idle := float64(idleRaw) // up to ~4.3e9 us, beyond T2
		c := Counts{
			OneQGates:   int(g1),
			CZGates:     int(g2),
			ExcitedIdle: int(exc),
			Transfers:   int(tr),
			IdleTime:    []float64{idle},
		}
		comp := Compute(c)
		for _, v := range []float64{comp.OneQubit, comp.TwoQubit, comp.Excitation, comp.Transfer, comp.Decoherence, comp.Total()} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdd(t *testing.T) {
	a := Counts{OneQGates: 1, CZGates: 2, Excitations: 1, ExcitedIdle: 3, Transfers: 4, IdleTime: []float64{10, 20}}
	b := Counts{OneQGates: 5, CZGates: 6, Excitations: 2, ExcitedIdle: 7, Transfers: 8, IdleTime: []float64{1, 2}}
	a.Add(b)
	if a.OneQGates != 6 || a.CZGates != 8 || a.Excitations != 3 || a.ExcitedIdle != 10 || a.Transfers != 12 {
		t.Errorf("Add scalar fields wrong: %+v", a)
	}
	if a.IdleTime[0] != 11 || a.IdleTime[1] != 22 {
		t.Errorf("Add idle times wrong: %v", a.IdleTime)
	}
}

func TestAddEmptySides(t *testing.T) {
	a := Counts{}
	a.Add(Counts{IdleTime: []float64{5}})
	if len(a.IdleTime) != 1 || a.IdleTime[0] != 5 {
		t.Error("Add into empty Counts lost idle times")
	}
	b := Counts{IdleTime: []float64{5}}
	b.Add(Counts{})
	if b.IdleTime[0] != 5 {
		t.Error("Add of empty Counts corrupted idle times")
	}
}

func TestAddPanicsOnMismatch(t *testing.T) {
	a := Counts{IdleTime: []float64{1}}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched qubit counts did not panic")
		}
	}()
	a.Add(Counts{IdleTime: []float64{1, 2}})
}

func TestString(t *testing.T) {
	f := Compute(Counts{CZGates: 1})
	s := f.String()
	for _, piece := range []string{"total=", "2q=", "exc=", "trans=", "deco=", "1q="} {
		if !strings.Contains(s, piece) {
			t.Errorf("String() = %q missing %q", s, piece)
		}
	}
}
