package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// memberHealth is one backend's view in the checker.
type memberHealth struct {
	url     string // base URL, no trailing slash
	healthy bool
	fails   int       // consecutive failed probes
	next    time.Time // earliest next probe (backoff schedule)
	lastErr string    // most recent probe or proxy error, for /metrics
}

// Checker actively probes each backend's GET /healthz and keeps a
// healthy/down verdict the router consults before proxying. Two
// signals feed it:
//
//   - active probes every Interval for healthy members; failed members
//     back off exponentially (Interval << fails, capped at MaxBackoff)
//     so a dead backend costs a bounded probe rate, not a hot loop;
//   - passive mark-downs from the router (MarkDown) when a proxied
//     request hits a transport error — the fleet reacts to a crash at
//     request speed instead of waiting out a probe interval.
//
// A single successful probe restores a member, zeroing its backoff.
type Checker struct {
	interval   time.Duration
	maxBackoff time.Duration
	client     *http.Client
	onChange   func(member string, healthy bool) // optional, called outside mu

	mu      sync.Mutex
	members map[string]*memberHealth

	stop chan struct{}
	done chan struct{}
}

// NewChecker builds a checker over member name → base URL. Members
// start healthy (optimistic — the first probe round corrects this
// within interval) so a fresh router serves immediately. interval <= 0
// defaults to 2s; probeTimeout <= 0 to 1s; maxBackoff <= 0 to 30s.
func NewChecker(members map[string]string, interval, probeTimeout, maxBackoff time.Duration) *Checker {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if probeTimeout <= 0 {
		probeTimeout = time.Second
	}
	if maxBackoff <= 0 {
		maxBackoff = 30 * time.Second
	}
	c := &Checker{
		interval:   interval,
		maxBackoff: maxBackoff,
		client:     &http.Client{Timeout: probeTimeout},
		members:    make(map[string]*memberHealth, len(members)),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	for name, url := range members {
		c.members[name] = &memberHealth{url: url, healthy: true}
	}
	return c
}

// Start launches the probe loop. Stop with Stop.
func (c *Checker) Start() {
	go c.loop()
}

// Stop halts the probe loop and waits for it to exit.
func (c *Checker) Stop() {
	close(c.stop)
	<-c.done
}

// Healthy reports the current verdict for member; unknown members are
// unhealthy.
func (c *Checker) Healthy(member string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[member]
	return ok && m.healthy
}

// MarkDown records a passive failure observed by the router. The next
// active probe is scheduled with the same bounded backoff as a failed
// probe; recovery is via probe only, so one flaky request doesn't
// flap the member back and forth.
func (c *Checker) MarkDown(member string, err error) {
	c.mu.Lock()
	m, ok := c.members[member]
	if !ok {
		c.mu.Unlock()
		return
	}
	wasHealthy := m.healthy
	m.healthy = false
	m.fails++
	m.lastErr = err.Error()
	m.next = time.Now().Add(c.backoff(m.fails))
	c.mu.Unlock()
	if wasHealthy && c.onChange != nil {
		c.onChange(member, false)
	}
}

// Status is one member's checker view, exposed on the router's
// /metrics.
type Status struct {
	Healthy bool `json:"healthy"`
	// ConsecutiveFails counts failed probes/proxies since the last
	// success; it also indexes the backoff schedule.
	ConsecutiveFails int    `json:"consecutive_fails,omitempty"`
	LastError        string `json:"last_error,omitempty"`
}

// Snapshot returns every member's current status.
func (c *Checker) Snapshot() map[string]Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]Status, len(c.members))
	for name, m := range c.members {
		out[name] = Status{Healthy: m.healthy, ConsecutiveFails: m.fails, LastError: m.lastErr}
	}
	return out
}

func (c *Checker) loop() {
	defer close(c.done)
	// Tick at a fraction of the interval so backoff deadlines are
	// honored promptly without busy-waiting.
	tick := c.interval / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	c.probeDue() // immediate first round
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeDue()
		}
	}
}

// probeDue probes every member whose schedule has come due, outside
// the lock (probes block up to the client timeout).
func (c *Checker) probeDue() {
	now := time.Now()
	type target struct{ name, url string }
	var due []target
	c.mu.Lock()
	for name, m := range c.members {
		if !now.Before(m.next) {
			due = append(due, target{name, m.url})
		}
	}
	c.mu.Unlock()
	for _, tg := range due {
		err := c.probe(tg.name, tg.url)
		c.record(tg.name, err)
	}
}

// probe hits GET /healthz and checks both liveness and identity: a
// backend started with -backend-id reports it as "instance", and a
// mismatch (two daemons swapped ports, say) counts as unhealthy —
// routing keys would otherwise land on the wrong cache silently.
func (c *Checker) probe(name, url string) error {
	resp, err := c.client.Get(url + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	var doc struct {
		Status   string `json:"status"`
		Instance string `json:"instance"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if doc.Status != "ok" {
		return fmt.Errorf("healthz: status %q", doc.Status)
	}
	if doc.Instance != "" && doc.Instance != name {
		return fmt.Errorf("healthz: backend identifies as %q, configured as %q", doc.Instance, name)
	}
	return nil
}

func (c *Checker) record(name string, probeErr error) {
	c.mu.Lock()
	m, ok := c.members[name]
	if !ok {
		c.mu.Unlock()
		return
	}
	var flipped bool
	var nowHealthy bool
	if probeErr == nil {
		flipped = !m.healthy
		nowHealthy = true
		m.healthy = true
		m.fails = 0
		m.lastErr = ""
		m.next = time.Now().Add(c.interval)
	} else {
		flipped = m.healthy
		m.healthy = false
		m.fails++
		m.lastErr = probeErr.Error()
		m.next = time.Now().Add(c.backoff(m.fails))
	}
	c.mu.Unlock()
	if flipped && c.onChange != nil {
		c.onChange(name, nowHealthy)
	}
}

// backoff returns the probe delay after fails consecutive failures:
// interval doubled per failure, capped at maxBackoff.
func (c *Checker) backoff(fails int) time.Duration {
	d := c.interval
	for i := 1; i < fails && d < c.maxBackoff; i++ {
		d *= 2
	}
	if d > c.maxBackoff {
		d = c.maxBackoff
	}
	return d
}
