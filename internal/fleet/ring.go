// Package fleet is the routing tier over N powermoved backends: a
// consistent-hash ring maps each request's canonical compile key
// (service.RoutingKey — the same pipeline.Key the LRU cache,
// singleflight group, and disk store address by) onto one backend, so
// identical compiles always land on the daemon whose caches already
// hold them. Around the ring sit an active health checker with bounded
// backoff (health.go) and a proxying router with next-replica failover
// and fleet-wide metrics aggregation (router.go).
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. Each member is
// hashed at vnodes points on a 64-bit circle; a key is owned by the
// first point clockwise of its hash. The properties the fleet needs:
//
//   - stable: the same key always maps to the same member while
//     membership holds, across processes and restarts (the point hash
//     is sha256-derived, not seeded);
//   - minimal disruption: adding or removing one member reassigns only
//     the keys that member's points covered (~1/N of the space) —
//     every other key keeps its backend, and so its warm caches;
//   - spread: vnodes per member smooths ownership to within a few
//     percent of uniform (see TestRingDistribution).
//
// A Ring is immutable after construction; membership changes build a
// new Ring, which is how the router swaps them atomically.
type Ring struct {
	points  []ringPoint // sorted by hash, ascending
	members []string    // distinct, sorted; for introspection
}

type ringPoint struct {
	hash   uint64
	member string
}

// DefaultVNodes is the virtual-node count used when NewRing is given
// n <= 0. 128 points per member keeps the max/min ownership ratio
// under ~1.3 for small fleets.
const DefaultVNodes = 128

// NewRing builds a ring over the given members (duplicates ignored)
// with vnodes virtual points each.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(fmt.Sprintf("%s#%d", m, i)),
				member: m,
			})
		}
	}
	sort.Strings(r.members)
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Tie-break by member name so equal hashes (vanishingly rare
		// but possible) still order deterministically across builds.
		return a.member < b.member
	})
	return r
}

// Members returns the distinct members on the ring, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Pick returns the member owning key, or "" on an empty ring.
func (r *Ring) Pick(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.successor(key)].member
}

// Sequence returns all distinct members in clockwise ring order
// starting from key's owner. It is the failover order: the router
// tries Sequence(key)[0], then [1], and so on — so a key's secondary
// is as stable as its primary, and a retried request lands on the
// same replica every time.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	start := r.successor(key)
	seq := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	for i := 0; i < len(r.points) && len(seq) < len(r.members); i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			seq = append(seq, m)
		}
	}
	return seq
}

// successor returns the index of the first point clockwise of key's
// hash, wrapping past the top of the circle.
func (r *Ring) successor(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hash64 maps s onto the ring's 64-bit circle. sha256 rather than
// fnv: member names are short and structured ("b1#0", "b1#1", ...),
// and a weak hash clusters such points badly enough to skew ownership.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
