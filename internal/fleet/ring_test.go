package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("workload=QFT/q=%d/scheme=serial/aods=%d", 4+i%28, 1+i%4)
	}
	return keys
}

func TestRingDeterministic(t *testing.T) {
	members := []string{"b1", "b2", "b3"}
	a := NewRing(members, 64)
	b := NewRing([]string{"b3", "b1", "b2", "b2"}, 64) // order and dups must not matter
	for _, k := range ringKeys(200) {
		if got, want := b.Pick(k), a.Pick(k); got != want {
			t.Fatalf("Pick(%q) differs across identical rings: %q vs %q", k, got, want)
		}
	}
	if !reflect.DeepEqual(a.Members(), []string{"b1", "b2", "b3"}) {
		t.Fatalf("Members() = %v", a.Members())
	}
}

// TestRingStability is the consistent-hashing contract: removing one
// member reassigns only that member's keys, and adding one steals keys
// only for itself. Everything else keeps its backend — and so its
// warm caches.
func TestRingStability(t *testing.T) {
	keys := ringKeys(1000)
	before := NewRing([]string{"b1", "b2", "b3", "b4"}, 0)
	after := NewRing([]string{"b1", "b2", "b4"}, 0) // b3 removed

	moved := 0
	for _, k := range keys {
		was, is := before.Pick(k), after.Pick(k)
		if was != "b3" && was != is {
			t.Fatalf("key %q moved %q → %q though neither is the removed member", k, was, is)
		}
		if was == "b3" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the removed member; distribution is broken")
	}

	grown := NewRing([]string{"b1", "b2", "b3", "b4", "b5"}, 0)
	for _, k := range keys {
		was, is := before.Pick(k), grown.Pick(k)
		if is != was && is != "b5" {
			t.Fatalf("key %q moved %q → %q though the only change was adding b5", k, was, is)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing([]string{"b1", "b2", "b3", "b4"}, 0)
	counts := map[string]int{}
	keys := ringKeys(4000)
	for _, k := range keys {
		counts[r.Pick(k)]++
	}
	for m, n := range counts {
		if frac := float64(n) / float64(len(keys)); frac < 0.10 {
			t.Errorf("member %s owns %.1f%% of keys; want ≥ 10%%", m, 100*frac)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d members own keys", len(counts))
	}
}

// TestSequence checks the failover order: distinct members starting at
// the key's owner, and — the property failover correctness leans on —
// removing an unrelated member leaves the relative order of the rest
// intact (their ring points don't move).
func TestSequence(t *testing.T) {
	r := NewRing([]string{"b1", "b2", "b3", "b4"}, 0)
	for _, k := range ringKeys(100) {
		seq := r.Sequence(k)
		if len(seq) != 4 {
			t.Fatalf("Sequence(%q) = %v; want 4 distinct members", k, seq)
		}
		if seq[0] != r.Pick(k) {
			t.Fatalf("Sequence(%q)[0] = %q; Pick = %q", k, seq[0], r.Pick(k))
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("Sequence(%q) repeats %q", k, m)
			}
			seen[m] = true
		}
	}

	shrunk := NewRing([]string{"b1", "b2", "b4"}, 0)
	for _, k := range ringKeys(100) {
		var want []string
		for _, m := range r.Sequence(k) {
			if m != "b3" {
				want = append(want, m)
			}
		}
		if got := shrunk.Sequence(k); !reflect.DeepEqual(got, want) {
			t.Fatalf("Sequence(%q) after removing b3 = %v; want %v (order preserved)", k, got, want)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Pick("k"); got != "" {
		t.Fatalf("empty ring Pick = %q", got)
	}
	if got := r.Sequence("k"); got != nil {
		t.Fatalf("empty ring Sequence = %v", got)
	}
}
