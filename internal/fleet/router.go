package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"powermove/internal/jobs"
	"powermove/internal/service"
)

// maxBodyBytes mirrors the service's request-body bound: the router
// buffers bodies for replay on failover, so it enforces the same cap
// before any backend sees the request.
const maxBodyBytes = 8 << 20

// Backend names one powermoved instance. Name must match the daemon's
// -backend-id (the health checker verifies this) and must not contain
// "." — it prefixes job ids, and "." is the separator.
type Backend struct {
	Name string
	URL  *url.URL
}

// Config configures a Router.
type Config struct {
	// Backends are the powermoved instances to route across.
	Backends []Backend
	// VNodes is the virtual-node count per backend on the hash ring;
	// <= 0 selects DefaultVNodes.
	VNodes int
	// HealthInterval is the active probe period for healthy backends;
	// <= 0 selects 2s. Failed backends back off exponentially from
	// this, capped at MaxBackoff.
	HealthInterval time.Duration
	// ProbeTimeout bounds one health probe; <= 0 selects 1s.
	ProbeTimeout time.Duration
	// MaxBackoff caps the probe backoff for failed backends; <= 0
	// selects 30s.
	MaxBackoff time.Duration
	// Transport proxies the requests; nil selects
	// http.DefaultTransport.
	Transport http.RoundTripper
}

// backendState is one backend's router-side ledger.
type backendState struct {
	name string
	url  *url.URL

	requests atomic.Int64 // proxied requests answered by this backend
	errors   atomic.Int64 // transport errors talking to it

	mu      sync.Mutex
	latency jobs.Histogram // per-backend proxy latency, queue-compatible buckets
}

// Router is the fleet tier's HTTP front end: it consistent-hash-routes
// every request onto a backend by the request's canonical compile key,
// fails over to the next replica in ring order on transport errors,
// and aggregates the fleet's metrics. Responses carry
// "X-Powermove-Backend: <name>" naming the backend that answered.
//
// Failover is attempted only before any response byte is committed —
// a backend that died mid-stream surfaces as a truncated response (the
// client retries; the ring sends it to the replica, which the checker
// has meanwhile marked primary-in-practice). Job-id requests
// (GET/DELETE /v1/jobs/{id}...) are pinned: the id's "<backend>."
// prefix names the only daemon holding that job, so they never fail
// over.
type Router struct {
	ring     *Ring
	backends map[string]*backendState
	checker  *Checker
	proxy    http.RoundTripper
	start    time.Time

	routed    atomic.Int64 // requests proxied (any outcome)
	keyed     atomic.Int64 // routed by canonical compile key (vs body hash/path)
	pinned    atomic.Int64 // routed by job-id backend prefix
	retried   atomic.Int64 // proxy attempts that hit a transport error
	failovers atomic.Int64 // requests answered by a non-primary replica
	failed    atomic.Int64 // requests no backend could answer (502)
}

// NewRouter builds the routing tier and starts its health checker;
// Close stops it.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("fleet: no backends configured")
	}
	rt := &Router{
		backends: make(map[string]*backendState, len(cfg.Backends)),
		proxy:    cfg.Transport,
		start:    time.Now(),
	}
	if rt.proxy == nil {
		rt.proxy = http.DefaultTransport
	}
	names := make([]string, 0, len(cfg.Backends))
	probeURLs := make(map[string]string, len(cfg.Backends))
	for _, b := range cfg.Backends {
		if b.Name == "" || b.URL == nil {
			return nil, fmt.Errorf("fleet: backend needs both a name and a URL")
		}
		if strings.Contains(b.Name, ".") {
			return nil, fmt.Errorf("fleet: backend name %q must not contain %q (the job-id separator)", b.Name, ".")
		}
		if _, dup := rt.backends[b.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate backend name %q", b.Name)
		}
		rt.backends[b.Name] = &backendState{name: b.Name, url: b.URL, latency: jobs.NewHistogram()}
		names = append(names, b.Name)
		probeURLs[b.Name] = strings.TrimRight(b.URL.String(), "/")
	}
	rt.ring = NewRing(names, cfg.VNodes)
	rt.checker = NewChecker(probeURLs, cfg.HealthInterval, cfg.ProbeTimeout, cfg.MaxBackoff)
	rt.checker.Start()
	return rt, nil
}

// Close stops the health checker.
func (rt *Router) Close() { rt.checker.Stop() }

// Handler returns the router's HTTP front end. Every /v1 route proxies
// (GET /v1/jobs merges the fleet's lists); /healthz and /metrics are
// answered by the router itself.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /v1/jobs", rt.handleJobList)
	mux.HandleFunc("/", rt.handleProxy)
	return mux
}

// handleProxy buffers the body, derives the routing key, and walks the
// key's replica sequence until a backend answers.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		if _, tooLarge := err.(*http.MaxBytesError); tooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		writeErrorDoc(w, status, "invalid_request", fmt.Sprintf("request body: %v", err))
		return
	}
	rt.routed.Add(1)

	var candidates []string
	if pin := rt.pinnedBackend(r); pin != "" {
		if _, ok := rt.backends[pin]; !ok {
			writeErrorDoc(w, http.StatusNotFound, "not_found",
				fmt.Sprintf("job id names backend %q, which is not in the fleet", pin))
			return
		}
		rt.pinned.Add(1)
		candidates = []string{pin}
	} else {
		key, keyed := rt.routingKey(r, body)
		if keyed {
			rt.keyed.Add(1)
		}
		candidates = rt.candidates(key)
	}

	for i, name := range candidates {
		b := rt.backends[name]
		resp, err := rt.forward(b, r, body)
		if err != nil {
			rt.retried.Add(1)
			b.errors.Add(1)
			rt.checker.MarkDown(name, err)
			continue
		}
		if i > 0 {
			rt.failovers.Add(1)
		}
		rt.respond(w, resp, b)
		return
	}
	rt.failed.Add(1)
	writeErrorDoc(w, http.StatusBadGateway, "no_backend", "no backend could answer the request")
}

// pinnedBackend extracts the backend name from a /v1/jobs/{id}... path
// whose id carries an "<instance>." prefix, or "" when the request is
// not job-id addressed. Jobs live only in the daemon that accepted
// them, so these requests bypass the ring.
func (rt *Router) pinnedBackend(r *http.Request) string {
	rest, ok := strings.CutPrefix(r.URL.Path, "/v1/jobs/")
	if !ok {
		return ""
	}
	id, _, _ := strings.Cut(rest, "/")
	name, _, ok := strings.Cut(id, ".")
	if !ok {
		return ""
	}
	return name
}

// routingKey derives the consistent-hash key for a request. The bool
// reports whether the key is a canonical compile key (the cache
// identity) rather than a body-hash or path fallback.
func (rt *Router) routingKey(r *http.Request, body []byte) (string, bool) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/v1/compile":
		var req service.CompileRequest
		if json.Unmarshal(body, &req) == nil {
			// Mirror the backend's ?verify=1 handling: it is part of
			// the compile key.
			switch r.URL.Query().Get("verify") {
			case "1", "true":
				req.Verify = true
			}
			if key, err := req.RoutingKey(); err == nil {
				return key, true
			}
		}
	case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
		var req service.JobRequest
		if json.Unmarshal(body, &req) == nil {
			if key, err := req.RoutingKey(); err == nil && key != "" {
				return key, true
			}
		}
	case strings.HasPrefix(r.URL.Path, "/v1/experiments/"):
		// Experiments are cacheable per endpoint identity.
		return r.URL.Path + "?" + r.URL.RawQuery, false
	}
	if len(body) > 0 {
		// Malformed or many-keyed bodies (batch) hash whole, so
		// identical submissions still co-locate.
		sum := sha256.Sum256(body)
		return "body:" + hex.EncodeToString(sum[:8]), false
	}
	return r.URL.Path, false
}

// candidates returns the key's replica sequence with unhealthy
// backends moved to the back: the healthy replica closest in ring
// order answers, but a fully-down fleet still attempts its primaries
// rather than refusing outright (the checker's verdict may be stale by
// one probe interval).
func (rt *Router) candidates(key string) []string {
	seq := rt.ring.Sequence(key)
	healthy := make([]string, 0, len(seq))
	var down []string
	for _, name := range seq {
		if rt.checker.Healthy(name) {
			healthy = append(healthy, name)
		} else {
			down = append(down, name)
		}
	}
	return append(healthy, down...)
}

// forward replays the buffered request against one backend. A non-nil
// error is a transport failure before any response arrived — safe to
// retry elsewhere. Any HTTP response, including 5xx, is final: the
// backend answered, and re-running a possibly-side-effecting request
// against a replica is the router's call to refuse.
func (rt *Router) forward(b *backendState, r *http.Request, body []byte) (*http.Response, error) {
	out := r.Clone(r.Context())
	out.RequestURI = "" // client requests must not set it
	out.URL.Scheme = b.url.Scheme
	out.URL.Host = b.url.Host
	out.Host = b.url.Host
	out.Body = io.NopCloser(bytes.NewReader(body))
	out.ContentLength = int64(len(body))
	dropHopByHop(out.Header)
	start := time.Now()
	resp, err := rt.proxy.RoundTrip(out)
	if err != nil {
		return nil, err
	}
	b.requests.Add(1)
	b.mu.Lock()
	b.latency.Observe(time.Since(start))
	b.mu.Unlock()
	return resp, nil
}

// respond streams resp to the client, flushing after every chunk so
// SSE events (GET /v1/jobs/{id}/events) pass through live instead of
// buffering to the stream's end.
func (rt *Router) respond(w http.ResponseWriter, resp *http.Response, b *backendState) {
	defer resp.Body.Close()
	dropHopByHop(resp.Header)
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	h.Set("X-Powermove-Backend", b.name)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// hopByHop are the connection-scoped headers a proxy must not forward
// (RFC 9110 §7.6.1).
var hopByHop = []string{
	"Connection", "Keep-Alive", "Proxy-Connection", "Te", "Trailer",
	"Transfer-Encoding", "Upgrade",
}

func dropHopByHop(h http.Header) {
	for _, k := range hopByHop {
		h.Del(k)
	}
}

// handleJobList is GET /v1/jobs at the fleet level: jobs live only in
// the daemon that accepted them, so the router fans the list out to
// every healthy backend and merges by creation time. Per-backend
// failures degrade the view rather than failing it; the "partial"
// field says so.
func (rt *Router) handleJobList(w http.ResponseWriter, r *http.Request) {
	type listed struct {
		raw     json.RawMessage
		created time.Time
	}
	var (
		mu      sync.Mutex
		merged  []listed
		partial bool
		wg      sync.WaitGroup
	)
	for name, b := range rt.backends {
		if !rt.checker.Healthy(name) {
			partial = true
			continue
		}
		wg.Add(1)
		go func(name string, b *backendState) {
			defer wg.Done()
			out := r.Clone(r.Context())
			out.RequestURI = ""
			out.URL.Scheme = b.url.Scheme
			out.URL.Host = b.url.Host
			out.Host = b.url.Host
			out.Body = http.NoBody
			resp, err := rt.proxy.RoundTrip(out)
			if err != nil {
				rt.checker.MarkDown(name, err)
				mu.Lock()
				partial = true
				mu.Unlock()
				return
			}
			defer resp.Body.Close()
			var doc struct {
				Jobs []json.RawMessage `json:"jobs"`
			}
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&doc) != nil {
				mu.Lock()
				partial = true
				mu.Unlock()
				return
			}
			mu.Lock()
			for _, raw := range doc.Jobs {
				var stamp struct {
					Created time.Time `json:"created"`
				}
				json.Unmarshal(raw, &stamp)
				merged = append(merged, listed{raw: raw, created: stamp.Created})
			}
			mu.Unlock()
		}(name, b)
	}
	wg.Wait()
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].created.Before(merged[j].created) })
	if v := r.URL.Query().Get("limit"); v != "" {
		// Each backend already applied the limit; re-apply it to the
		// merged view with the same keep-the-most-recent semantics.
		var n int
		if _, err := fmt.Sscanf(v, "%d", &n); err == nil && n > 0 && len(merged) > n {
			merged = merged[len(merged)-n:]
		}
	}
	jobsOut := make([]json.RawMessage, len(merged))
	for i, l := range merged {
		jobsOut[i] = l.raw
	}
	writeJSONDoc(w, http.StatusOK, map[string]any{"jobs": jobsOut, "partial": partial})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := rt.checker.Snapshot()
	healthy := 0
	states := make(map[string]bool, len(snap))
	for name, st := range snap {
		states[name] = st.Healthy
		if st.Healthy {
			healthy++
		}
	}
	status := "ok"
	code := http.StatusOK
	if healthy == 0 {
		// The router is alive but can serve nothing; tell the load
		// balancer above it.
		status = "degraded"
		code = http.StatusServiceUnavailable
	}
	writeJSONDoc(w, code, map[string]any{
		"status":   status,
		"role":     "router",
		"uptime_s": time.Since(rt.start).Seconds(),
		"backends": states,
	})
}

// FleetTotals sums the backends' scraped counters: the fleet-wide
// cache economy at a glance.
type FleetTotals struct {
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	StoreHits     int64 `json:"store_hits"`
	Compiles      int64 `json:"compiles"`
	QueueDepth    int   `json:"queue_depth"`
	QueueCapacity int   `json:"queue_capacity"`
	Shed          int64 `json:"shed"`
}

// BackendMetrics is one backend's row in the router's /metrics.
type BackendMetrics struct {
	URL string `json:"url"`
	Status
	// Requests and Errors are the router's own ledger: proxied
	// requests this backend answered, and transport errors talking to
	// it.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors,omitempty"`
	// LatencyMS is the router-observed proxy latency histogram, over
	// the same buckets as the backends' queue histograms.
	Latency jobs.Histogram `json:"latency"`
	// Backend is the backend's own scraped counters (its /metrics
	// "backend" block); null when the scrape failed.
	Backend *service.BackendBlock `json:"backend"`
}

// RouterMetrics is the router's GET /metrics document.
type RouterMetrics struct {
	UptimeS         float64 `json:"uptime_s"`
	Backends        int     `json:"backends"`
	HealthyBackends int     `json:"healthy_backends"`
	// Routed counts proxied requests; Keyed the subset routed by a
	// canonical compile key; Pinned the subset addressed to a specific
	// backend by job-id prefix.
	Routed int64 `json:"routed"`
	Keyed  int64 `json:"keyed"`
	Pinned int64 `json:"pinned"`
	// Retried counts proxy attempts that hit a transport error;
	// Failovers requests ultimately answered by a non-primary replica;
	// Failed requests no backend could answer.
	Retried    int64                     `json:"retried"`
	Failovers  int64                     `json:"failovers"`
	Failed     int64                     `json:"failed"`
	Fleet      FleetTotals               `json:"fleet"`
	PerBackend map[string]BackendMetrics `json:"per_backend"`
}

// Metrics assembles the router's document, scraping each healthy
// backend's /metrics concurrently for its "backend" block.
func (rt *Router) Metrics() RouterMetrics {
	health := rt.checker.Snapshot()
	doc := RouterMetrics{
		UptimeS:    time.Since(rt.start).Seconds(),
		Backends:   len(rt.backends),
		Routed:     rt.routed.Load(),
		Keyed:      rt.keyed.Load(),
		Pinned:     rt.pinned.Load(),
		Retried:    rt.retried.Load(),
		Failovers:  rt.failovers.Load(),
		Failed:     rt.failed.Load(),
		PerBackend: make(map[string]BackendMetrics, len(rt.backends)),
	}
	type scraped struct {
		name  string
		block *service.BackendBlock
	}
	results := make(chan scraped, len(rt.backends))
	var wg sync.WaitGroup
	for name, b := range rt.backends {
		if !health[name].Healthy {
			results <- scraped{name, nil}
			continue
		}
		wg.Add(1)
		go func(name string, b *backendState) {
			defer wg.Done()
			results <- scraped{name, rt.scrape(b)}
		}(name, b)
	}
	wg.Wait()
	close(results)
	blocks := make(map[string]*service.BackendBlock, len(rt.backends))
	for s := range results {
		blocks[s.name] = s.block
	}
	for name, b := range rt.backends {
		st := health[name]
		if st.Healthy {
			doc.HealthyBackends++
		}
		b.mu.Lock()
		hist := b.latency // value copy; Counts shares the backing array
		hist.Counts = append([]int64(nil), hist.Counts...)
		b.mu.Unlock()
		row := BackendMetrics{
			URL:      b.url.String(),
			Status:   st,
			Requests: b.requests.Load(),
			Errors:   b.errors.Load(),
			Latency:  hist,
			Backend:  blocks[name],
		}
		doc.PerBackend[name] = row
		if blk := blocks[name]; blk != nil {
			doc.Fleet.CacheHits += blk.CacheHits
			doc.Fleet.CacheMisses += blk.CacheMisses
			doc.Fleet.StoreHits += blk.StoreHits
			doc.Fleet.Compiles += blk.Compiles
			doc.Fleet.QueueDepth += blk.QueueDepth
			doc.Fleet.QueueCapacity += blk.QueueCapacity
			doc.Fleet.Shed += blk.Shed
		}
	}
	return doc
}

// scrape fetches one backend's /metrics "backend" block; nil when the
// backend is unreachable or predates -backend-id.
func (rt *Router) scrape(b *backendState) *service.BackendBlock {
	u := *b.url
	u.Path = strings.TrimRight(u.Path, "/") + "/metrics"
	req, err := http.NewRequest(http.MethodGet, u.String(), nil)
	if err != nil {
		return nil
	}
	client := &http.Client{Transport: rt.proxy, Timeout: 2 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var doc struct {
		Backend *service.BackendBlock `json:"backend"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil
	}
	return doc.Backend
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSONDoc(w, http.StatusOK, rt.Metrics())
}

// writeJSONDoc emits v with the service's canonical encoding, so
// router documents diff cleanly against backend ones.
func writeJSONDoc(w http.ResponseWriter, status int, v any) {
	out, err := service.EncodeJSON(v)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(out)
}

// writeErrorDoc emits the service's error envelope shape for errors
// the router itself originates, so clients parse one format fleet-wide.
func writeErrorDoc(w http.ResponseWriter, status int, code, msg string) {
	writeJSONDoc(w, status, map[string]any{
		"error": map[string]any{"code": code, "message": msg},
	})
}
