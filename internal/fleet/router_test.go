package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stub is a fake powermoved: it answers the endpoints the router
// touches and counts compiles, so tests can assert where requests
// landed.
type stub struct {
	name     string
	srv      *httptest.Server
	compiles atomic.Int64
	// release gates the second SSE event, so the streaming test can
	// prove events pass through before the response body ends.
	release chan struct{}
}

func newStub(t *testing.T, name string) *stub {
	t.Helper()
	s := &stub{name: name, release: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"status":"ok","instance":%q}`, s.name)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"backend":{"instance":%q,"uptime_s":1,"cache_hits":%d,"cache_misses":3,"store_hits":2,"compiles":%d,"queue_depth":1,"queue_capacity":8,"shed":1}}`,
			s.name, s.compiles.Load(), s.compiles.Load())
	})
	mux.HandleFunc("POST /v1/compile", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		s.compiles.Add(1)
		fmt.Fprintf(w, `{"backend":%q}`, s.name)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":"%s.j000001-abcd"}`, s.name)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"jobs":[{"id":"%s.j000001-abcd","state":"done","created":"2026-08-08T0%d:00:00Z"}]}`,
			s.name, 1+len(s.name)%8)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		io.WriteString(w, "data: one\n\n")
		fl.Flush()
		select {
		case <-s.release:
		case <-r.Context().Done():
			return
		}
		io.WriteString(w, "data: two\n\n")
		fl.Flush()
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"id":%q,"served_by":%q}`, r.PathValue("id"), s.name)
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

func (s *stub) backend(t *testing.T) Backend {
	t.Helper()
	u, err := url.Parse(s.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return Backend{Name: s.name, URL: u}
}

// newFleet builds n stub backends behind a router with fast health
// probing, returning the stubs and the router's base URL.
func newFleet(t *testing.T, n int) ([]*stub, *Router, string) {
	t.Helper()
	stubs := make([]*stub, n)
	backends := make([]Backend, n)
	for i := range stubs {
		stubs[i] = newStub(t, fmt.Sprintf("b%d", i+1))
		backends[i] = stubs[i].backend(t)
	}
	rt, err := NewRouter(Config{
		Backends:       backends,
		HealthInterval: 50 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		MaxBackoff:     250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return stubs, rt, front.URL
}

func postCompile(t *testing.T, base, body string) (backendHeader string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/compile: status %d", resp.StatusCode)
	}
	return resp.Header.Get("X-Powermove-Backend")
}

// TestRoutingLocality is the tentpole's acceptance criterion: the same
// logical compile routes to the same backend every time — including
// across cosmetically different JSON spellings, which hash to the same
// canonical pipeline.Key — so its cache hits concentrate on one
// daemon.
func TestRoutingLocality(t *testing.T) {
	stubs, rt, base := newFleet(t, 3)

	// Same request, two spellings: field order must not matter because
	// routing is by canonical key, not body bytes.
	spellA := `{"workload":{"family":"QFT","qubits":10}}`
	spellB := `{"workload":{"qubits":10,"family":"QFT"}}`
	first := postCompile(t, base, spellA)
	for i := 0; i < 50; i++ {
		if got := postCompile(t, base, spellA); got != first {
			t.Fatalf("request %d routed to %q; first went to %q", i, got, first)
		}
		if got := postCompile(t, base, spellB); got != first {
			t.Fatalf("respelled request routed to %q; canonical twin went to %q", got, first)
		}
	}

	var total int64
	for _, s := range stubs {
		n := s.compiles.Load()
		total += n
		if n != 0 && s.name != first {
			t.Errorf("backend %s saw %d compiles; all should land on %s", s.name, n, first)
		}
	}
	if total != 101 {
		t.Fatalf("fleet saw %d compiles; want 101", total)
	}
	m := rt.Metrics()
	if m.Keyed != 101 {
		t.Errorf("Keyed = %d; want 101 (every request had a canonical key)", m.Keyed)
	}
	if m.Routed != 101 || m.Failed != 0 || m.Failovers != 0 {
		t.Errorf("Routed/Failed/Failovers = %d/%d/%d; want 101/0/0", m.Routed, m.Failed, m.Failovers)
	}
}

// TestFailover kills the key's primary and asserts zero lost requests:
// the next request lands on the replica, and once the checker has
// marked the corpse down, later requests skip it without a retry.
func TestFailover(t *testing.T) {
	stubs, rt, base := newFleet(t, 2)

	body := `{"workload":{"family":"QFT","qubits":12}}`
	primary := postCompile(t, base, body)

	var dead, replica *stub
	for _, s := range stubs {
		if s.name == primary {
			dead = s
		} else {
			replica = s
		}
	}
	dead.srv.Close()

	if got := postCompile(t, base, body); got != replica.name {
		t.Fatalf("after killing %s, request routed to %q; want replica %s", primary, got, replica.name)
	}
	m := rt.Metrics()
	if m.Failovers < 1 || m.Retried < 1 {
		t.Fatalf("Failovers = %d, Retried = %d; want ≥ 1 after a dead primary", m.Failovers, m.Retried)
	}
	if m.Failed != 0 {
		t.Fatalf("Failed = %d; no request should have been lost", m.Failed)
	}

	// The passive mark-down (plus active probes) must steer subsequent
	// requests straight to the replica — no per-request retry tax.
	retriedBefore := rt.Metrics().Retried
	for i := 0; i < 5; i++ {
		if got := postCompile(t, base, body); got != replica.name {
			t.Fatalf("request %d after mark-down routed to %q", i, got)
		}
	}
	if m := rt.Metrics(); m.Retried != retriedBefore {
		t.Errorf("Retried grew %d → %d; marked-down backend should be skipped outright", retriedBefore, m.Retried)
	}
}

// TestJobPinning: job ids carry their daemon's identity, so job reads
// bypass the ring and land on the one backend holding the job.
func TestJobPinning(t *testing.T) {
	stubs, rt, base := newFleet(t, 3)

	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(`{"batch":{"points":[]}}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	owner, _, ok := strings.Cut(sub.ID, ".")
	if !ok {
		t.Fatalf("job id %q carries no backend prefix", sub.ID)
	}

	get, err := http.Get(base + "/v1/jobs/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var doc struct {
		ServedBy string `json:"served_by"`
	}
	if err := json.NewDecoder(get.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.ServedBy != owner {
		t.Fatalf("GET /v1/jobs/%s served by %q; id pins it to %q", sub.ID, doc.ServedBy, owner)
	}
	if m := rt.Metrics(); m.Pinned != 1 {
		t.Errorf("Pinned = %d; want 1", m.Pinned)
	}

	// An id naming a backend outside the fleet is a clean 404, not a
	// misroute.
	gone, err := http.Get(base + "/v1/jobs/zz.j000001-abcd")
	if err != nil {
		t.Fatal(err)
	}
	defer gone.Body.Close()
	if gone.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-backend job id: status %d; want 404", gone.StatusCode)
	}
	_ = stubs
}

// TestMergedJobList: the router's GET /v1/jobs is the union of every
// backend's list, ordered by creation time.
func TestMergedJobList(t *testing.T) {
	_, _, base := newFleet(t, 3)

	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Jobs []struct {
			ID      string    `json:"id"`
			Created time.Time `json:"created"`
		} `json:"jobs"`
		Partial bool `json:"partial"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Jobs) != 3 {
		t.Fatalf("merged list has %d jobs; want one per backend (3)", len(doc.Jobs))
	}
	if doc.Partial {
		t.Error("partial = true with every backend healthy")
	}
	for i := 1; i < len(doc.Jobs); i++ {
		if doc.Jobs[i].Created.Before(doc.Jobs[i-1].Created) {
			t.Fatalf("merged list out of creation order: %v after %v", doc.Jobs[i].Created, doc.Jobs[i-1].Created)
		}
	}
}

// TestMetricsAggregation: the router's fleet block is the sum of the
// backends' scraped counters, and each per-backend row carries the
// backend's own block.
func TestMetricsAggregation(t *testing.T) {
	stubs, rt, base := newFleet(t, 2)
	postCompile(t, base, `{"workload":{"family":"QFT","qubits":10}}`)
	postCompile(t, base, `{"workload":{"family":"QFT","qubits":11}}`)

	m := rt.Metrics()
	var wantHits int64
	for _, s := range stubs {
		wantHits += s.compiles.Load()
	}
	if m.Fleet.CacheHits != wantHits {
		t.Errorf("Fleet.CacheHits = %d; want %d (sum of backends)", m.Fleet.CacheHits, wantHits)
	}
	if m.Fleet.QueueCapacity != 16 || m.Fleet.Shed != 2 {
		t.Errorf("Fleet queue_capacity/shed = %d/%d; want 16/2", m.Fleet.QueueCapacity, m.Fleet.Shed)
	}
	for _, s := range stubs {
		row, ok := m.PerBackend[s.name]
		if !ok || row.Backend == nil {
			t.Fatalf("per-backend row for %s missing or unscraped", s.name)
		}
		if row.Backend.Instance != s.name {
			t.Errorf("scraped block for %s identifies as %q", s.name, row.Backend.Instance)
		}
	}
	if m.HealthyBackends != 2 {
		t.Errorf("HealthyBackends = %d; want 2", m.HealthyBackends)
	}
}

// TestSSEPassthrough proves the router streams events as they happen:
// the first event must arrive while the backend is still holding the
// response open, not after the body ends.
func TestSSEPassthrough(t *testing.T) {
	stubs, _, base := newFleet(t, 1)
	s := stubs[0]

	resp, err := http.Get(base + "/v1/jobs/b1.j000001-abcd/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading first event: %v", err)
	}
	if strings.TrimSpace(line) != "data: one" {
		t.Fatalf("first event = %q", line)
	}
	// The backend is still blocked on release: receiving event one
	// already proves the router flushed instead of buffering. Unblock
	// and drain the rest.
	close(s.release)
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rest), "data: two") {
		t.Fatalf("stream tail = %q; want the second event", rest)
	}
}

// TestBodyTooLarge: the router enforces the service's body cap itself
// rather than shipping an oversized body to a backend.
func TestBodyTooLarge(t *testing.T) {
	_, _, base := newFleet(t, 1)
	resp, err := http.Post(base+"/v1/compile", "application/json",
		strings.NewReader(`{"qasm":"`+strings.Repeat("x", maxBodyBytes+1)+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d; want 413", resp.StatusCode)
	}
}
