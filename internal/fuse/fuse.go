// Package fuse implements an optional circuit-level optimization pass
// that merges consecutive dependent CZ blocks whose gate supports are
// disjoint, extending the paper's pipeline ahead of the Stage Scheduler
// (Sec. 4). Gates on disjoint qubits commute, so such blocks can execute
// under shared Rydberg stages; fusing them lets the stage scheduler
// parallelize across what the front end emitted as sequential blocks.
// QSim-style workloads — many small Pauli-string blocks on scattered
// supports — benefit the most: independent strings share pulses instead
// of serializing.
//
// Soundness rests on one IR convention: a block's single-qubit layer acts
// only on that block's gate qubits (true for every internal/workload
// generator, where layers are basis changes on the participating qubits).
// The IR does not record 1Q-gate targets, so the pass cannot verify the
// convention; callers ingesting foreign circuits (e.g. via internal/qasm,
// whose layers may include rotations on other qubits) should either skip
// fusion or restrict it to blocks without 1Q gates via Options.
package fuse

import (
	"powermove/internal/circuit"
)

// Options controls the pass.
type Options struct {
	// RequireEmptyOneQ restricts fusion to candidate blocks with no
	// single-qubit layer, dropping the aligned-layer convention and
	// making the pass sound for arbitrary circuits.
	RequireEmptyOneQ bool
}

// Circuit returns a new circuit in which every maximal run of consecutive
// blocks with pairwise-disjoint gate supports is merged into one block
// (1Q layer counts summed, gate lists concatenated). The input is not
// modified. Blocks with no CZ gates merge into their predecessor's layer
// unconditionally when RequireEmptyOneQ is false; under RequireEmptyOneQ
// a 1Q-only block still ends the current run, preserving its barrier
// role.
func Circuit(c *circuit.Circuit, opts Options) *circuit.Circuit {
	out := circuit.New(c.Name, c.Qubits)
	var cur *circuit.Block
	var curQubits map[int]bool

	flush := func() {
		if cur != nil {
			out.Blocks = append(out.Blocks, *cur)
			cur, curQubits = nil, nil
		}
	}

	for bi := range c.Blocks {
		b := &c.Blocks[bi]
		if cur == nil {
			cur = cloneBlock(b)
			curQubits = supportOf(b)
			continue
		}
		if canFuse(cur, curQubits, b, opts) {
			cur.OneQ += b.OneQ
			cur.Gates = append(cur.Gates, b.Gates...)
			for q := range supportOf(b) {
				curQubits[q] = true
			}
			continue
		}
		flush()
		cur = cloneBlock(b)
		curQubits = supportOf(b)
	}
	flush()
	return out
}

// canFuse reports whether block b may merge into the accumulating block.
func canFuse(cur *circuit.Block, curQubits map[int]bool, b *circuit.Block, opts Options) bool {
	if opts.RequireEmptyOneQ && b.OneQ > 0 {
		return false
	}
	for _, g := range b.Gates {
		if curQubits[g.A] || curQubits[g.B] {
			return false
		}
		// The fused block must stay duplicate-free; disjointness with
		// curQubits already implies it, since a duplicate would share
		// both qubits.
	}
	_ = cur
	return true
}

func supportOf(b *circuit.Block) map[int]bool {
	s := make(map[int]bool, 2*len(b.Gates))
	for _, g := range b.Gates {
		s[g.A] = true
		s[g.B] = true
	}
	return s
}

func cloneBlock(b *circuit.Block) *circuit.Block {
	return &circuit.Block{OneQ: b.OneQ, Gates: append([]circuit.CZ(nil), b.Gates...)}
}

// Savings reports how many blocks the pass removes for the given circuit
// and options, without building the fused circuit twice.
func Savings(c *circuit.Circuit, opts Options) int {
	return len(c.Blocks) - len(Circuit(c, opts).Blocks)
}
