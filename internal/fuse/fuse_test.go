package fuse

import (
	"math/rand"
	"testing"

	"powermove/internal/circuit"
	"powermove/internal/statevec"
	"powermove/internal/workload"
)

func TestFusesDisjointRuns(t *testing.T) {
	c := circuit.New("f", 8)
	c.AddBlock(2, circuit.NewCZ(0, 1))
	c.AddBlock(2, circuit.NewCZ(2, 3)) // disjoint from block 0: fuses
	c.AddBlock(2, circuit.NewCZ(1, 4)) // overlaps qubit 1: new block
	c.AddBlock(0, circuit.NewCZ(5, 6)) // disjoint: fuses into previous

	got := Circuit(c, Options{})
	if len(got.Blocks) != 2 {
		t.Fatalf("%d blocks, want 2: %+v", len(got.Blocks), got.Blocks)
	}
	if got.Blocks[0].OneQ != 4 || len(got.Blocks[0].Gates) != 2 {
		t.Errorf("fused block 0 = %+v", got.Blocks[0])
	}
	if len(got.Blocks[1].Gates) != 2 {
		t.Errorf("fused block 1 = %+v", got.Blocks[1])
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	// The input is untouched.
	if len(c.Blocks) != 4 {
		t.Error("input circuit modified")
	}
}

func TestNoFusionOnOverlap(t *testing.T) {
	c := circuit.New("o", 4)
	c.AddBlock(0, circuit.NewCZ(0, 1))
	c.AddBlock(0, circuit.NewCZ(1, 2))
	got := Circuit(c, Options{})
	if len(got.Blocks) != 2 {
		t.Fatalf("overlapping blocks fused: %+v", got.Blocks)
	}
}

// TestRepeatedPairNeverFuses: two blocks repeating the same CZ share both
// qubits, so disjointness forbids the merge — the fused circuit would be
// invalid otherwise.
func TestRepeatedPairNeverFuses(t *testing.T) {
	c := circuit.New("r", 4)
	c.AddBlock(0, circuit.NewCZ(0, 1))
	c.AddBlock(0, circuit.NewCZ(0, 1))
	got := Circuit(c, Options{})
	if len(got.Blocks) != 2 {
		t.Fatal("repeated pair fused into an invalid block")
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRequireEmptyOneQ(t *testing.T) {
	c := circuit.New("e", 6)
	c.AddBlock(0, circuit.NewCZ(0, 1))
	c.AddBlock(1, circuit.NewCZ(2, 3)) // disjoint but carries a 1Q layer
	strict := Circuit(c, Options{RequireEmptyOneQ: true})
	if len(strict.Blocks) != 2 {
		t.Error("strict mode fused a block with a 1Q layer")
	}
	relaxed := Circuit(c, Options{})
	if len(relaxed.Blocks) != 1 {
		t.Error("relaxed mode did not fuse")
	}
}

// TestQSimBenefits: independent Pauli strings share stages after fusion.
func TestQSimBenefits(t *testing.T) {
	c := workload.QSim(20, 9)
	saved := Savings(c, Options{})
	if saved <= 0 {
		t.Errorf("fusion saved %d blocks on QSim-20; expected > 0", saved)
	}
	fused := Circuit(c, Options{})
	if fused.CZCount() != c.CZCount() || fused.OneQCount() != c.OneQCount() {
		t.Error("fusion changed gate counts")
	}
	if err := fused.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFusionPreservesUnitary: the fused circuit applies the same unitary
// (CZ gates commute when supports are disjoint; verified numerically on a
// random state).
func TestFusionPreservesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		c := workload.QSim(10, int64(trial))
		fused := Circuit(c, Options{})
		ref := statevec.NewRandom(10, rng)
		got := ref.Clone()
		for _, b := range c.Blocks {
			for _, g := range b.Gates {
				ref.CZ(g.A, g.B)
			}
		}
		for _, b := range fused.Blocks {
			for _, g := range b.Gates {
				got.CZ(g.A, g.B)
			}
		}
		if !got.Equal(ref, 1e-9) {
			t.Fatalf("trial %d: fusion changed the unitary", trial)
		}
	}
}

func TestEmptyCircuit(t *testing.T) {
	c := circuit.New("empty", 2)
	got := Circuit(c, Options{})
	if len(got.Blocks) != 0 {
		t.Error("empty circuit grew blocks")
	}
}
