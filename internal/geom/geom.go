// Package geom provides the 2D geometry primitives used throughout the
// PowerMove compiler: points in the plane (micrometre coordinates),
// axis-aligned rectangles, and the distance helpers the router (Sec. 5 of
// the paper) and the movement-time model (Sec. 2.1) rely on.
//
// Coordinates follow the convention fixed in docs/ARCHITECTURE.md: x grows to the
// right, y grows upward, and all lengths are in micrometres.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane, in micrometres.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Chebyshev returns the L-infinity distance between p and q. AOD rows and
// columns move independently, so the duration of a diagonal move is governed
// by the longer of its two axis projections.
func (p Point) Chebyshev(q Point) float64 {
	return math.Max(math.Abs(p.X-q.X), math.Abs(p.Y-q.Y))
}

// Eq reports whether p and q coincide exactly. Site coordinates are derived
// from integer grid indices scaled by the site pitch, so exact comparison is
// well defined for the layouts this compiler produces.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// Rect is an axis-aligned rectangle, inclusive of its boundary.
type Rect struct {
	Min, Max Point
}

// NewRect builds the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	r := Rect{Min: a, Max: b}
	if r.Min.X > r.Max.X {
		r.Min.X, r.Max.X = r.Max.X, r.Min.X
	}
	if r.Min.Y > r.Max.Y {
		r.Min.Y, r.Max.Y = r.Max.Y, r.Min.Y
	}
	return r
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r in square micrometres.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies in r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}

// Sign returns -1, 0, or +1 according to the sign of v. The AOD conflict
// predicate compares coordinate orderings before and after a move, which
// reduces to comparing signs of coordinate differences.
func Sign(v float64) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return +1
	default:
		return 0
	}
}
