package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(1, -2)
	if got := p.Add(q); got != Pt(4, 2) {
		t.Errorf("Add = %v, want (4, 2)", got)
	}
	if got := p.Sub(q); got != Pt(2, 6) {
		t.Errorf("Sub = %v, want (2, 6)", got)
	}
}

func TestDistances(t *testing.T) {
	tests := []struct {
		p, q                  Point
		dist, manhattan, cheb float64
	}{
		{Pt(0, 0), Pt(3, 4), 5, 7, 4},
		{Pt(1, 1), Pt(1, 1), 0, 0, 0},
		{Pt(-2, 0), Pt(2, 0), 4, 4, 4},
		{Pt(0, 0), Pt(-3, -4), 5, 7, 4},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); got != tt.dist {
			t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.dist)
		}
		if got := tt.p.Manhattan(tt.q); got != tt.manhattan {
			t.Errorf("Manhattan(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.manhattan)
		}
		if got := tt.p.Chebyshev(tt.q); got != tt.cheb {
			t.Errorf("Chebyshev(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.cheb)
		}
	}
}

// TestMetricInequalities checks Chebyshev <= Euclidean <= Manhattan for
// arbitrary point pairs, plus symmetry of all three metrics.
func TestMetricInequalities(t *testing.T) {
	f := func(px, py, qx, qy float64) bool {
		if anyAbnormal(px, py, qx, qy) {
			return true
		}
		p, q := Pt(px, py), Pt(qx, qy)
		d, m, c := p.Dist(q), p.Manhattan(q), p.Chebyshev(q)
		const slack = 1e-9
		if !(c <= d*(1+slack) && d <= m*(1+slack)+slack) {
			return false
		}
		return d == q.Dist(p) && m == q.Manhattan(p) && c == q.Chebyshev(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyAbnormal(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
			return true
		}
	}
	return false
}

func TestRectNormalization(t *testing.T) {
	r := NewRect(Pt(5, -1), Pt(-2, 3))
	if r.Min != Pt(-2, -1) || r.Max != Pt(5, 3) {
		t.Fatalf("NewRect did not normalize corners: %v", r)
	}
	if r.Width() != 7 || r.Height() != 4 {
		t.Errorf("Width/Height = %v/%v, want 7/4", r.Width(), r.Height())
	}
	if r.Area() != 28 {
		t.Errorf("Area = %v, want 28", r.Area())
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	for _, p := range []Point{Pt(0, 0), Pt(10, 10), Pt(5, 5), Pt(0, 10)} {
		if !r.Contains(p) {
			t.Errorf("Contains(%v) = false, want true (boundary inclusive)", p)
		}
	}
	for _, p := range []Point{Pt(-0.1, 5), Pt(5, 10.1), Pt(11, 11)} {
		if r.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(10, 10))
	tests := []struct {
		b    Rect
		want bool
	}{
		{NewRect(Pt(5, 5), Pt(15, 15)), true},
		{NewRect(Pt(10, 10), Pt(20, 20)), true}, // corner touch
		{NewRect(Pt(11, 0), Pt(20, 10)), false},
		{NewRect(Pt(0, -5), Pt(10, -1)), false},
		{NewRect(Pt(2, 2), Pt(3, 3)), true}, // contained
	}
	for _, tt := range tests {
		if got := a.Intersects(tt.b); got != tt.want {
			t.Errorf("Intersects(%v) = %v, want %v", tt.b, got, tt.want)
		}
		if got := tt.b.Intersects(a); got != tt.want {
			t.Errorf("Intersects not symmetric for %v", tt.b)
		}
	}
}

func TestSign(t *testing.T) {
	tests := []struct {
		v    float64
		want int
	}{
		{-3.5, -1}, {0, 0}, {2.2, 1}, {math.Copysign(0, -1), 0},
	}
	for _, tt := range tests {
		if got := Sign(tt.v); got != tt.want {
			t.Errorf("Sign(%v) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestEq(t *testing.T) {
	if !Pt(1, 2).Eq(Pt(1, 2)) {
		t.Error("Eq(identical) = false")
	}
	if Pt(1, 2).Eq(Pt(1, 2.0000001)) {
		t.Error("Eq is exact; near-equal points must differ")
	}
}

func TestStrings(t *testing.T) {
	if got := Pt(1.25, -2).String(); got != "(1.2, -2.0)" {
		t.Errorf("Point.String = %q", got)
	}
	r := NewRect(Pt(0, 0), Pt(1, 1))
	if got := r.String(); got != "[(0.0, 0.0) - (1.0, 1.0)]" {
		t.Errorf("Rect.String = %q", got)
	}
}
