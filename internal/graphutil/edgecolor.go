// Misra-Gries edge coloring. The stage scheduler partitions a CZ block
// into Rydberg stages by coloring the edges of the qubit interaction
// graph; Misra & Gries (1992) guarantees at most Delta+1 colors in
// O(V*E) time, keeping PowerMove's stage counts competitive with the
// baseline's iterated-MIS scheduling at a fraction of the cost.
package graphutil

import "fmt"

// edgeColorer carries the mutable state of one Misra-Gries run.
type edgeColorer struct {
	g      *Graph
	colors int     // palette size: maxDegree + 1
	at     [][]int // at[v][c] = neighbor joined to v by color c, or -1
	color  map[[2]int]int
}

// EdgeColoring colors the edges of g with at most MaxDegree()+1 colors so
// that edges sharing a vertex receive distinct colors. It returns a map
// from normalized edge (u < v) to color. The classic bound chi' <= Delta+1
// (Vizing) is achieved constructively by the Misra-Gries procedure.
func (g *Graph) EdgeColoring() map[[2]int]int {
	ec := &edgeColorer{
		g:      g,
		colors: g.MaxDegree() + 1,
		at:     make([][]int, g.N()),
		color:  make(map[[2]int]int, g.EdgeCount()),
	}
	for v := range ec.at {
		ec.at[v] = make([]int, ec.colors)
		for c := range ec.at[v] {
			ec.at[v][c] = -1
		}
	}
	for _, e := range g.Edges() {
		ec.colorEdge(e[0], e[1])
	}
	return ec.color
}

// ValidEdgeColoring reports whether coloring assigns every edge of g a
// non-negative color distinct from all adjacent edges' colors.
func (g *Graph) ValidEdgeColoring(coloring map[[2]int]int) bool {
	edges := g.Edges()
	if len(coloring) != len(edges) {
		return false
	}
	for _, e := range edges {
		c, ok := coloring[e]
		if !ok || c < 0 {
			return false
		}
	}
	for v := 0; v < g.N(); v++ {
		seen := make(map[int]bool)
		for _, u := range g.Adjacent(v) {
			c := coloring[normEdge(v, u)]
			if seen[c] {
				return false
			}
			seen[c] = true
		}
	}
	return true
}

func normEdge(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

func (ec *edgeColorer) getColor(u, v int) int {
	if c, ok := ec.color[normEdge(u, v)]; ok {
		return c
	}
	return -1
}

func (ec *edgeColorer) setColor(u, v, c int) {
	if old := ec.getColor(u, v); old >= 0 {
		ec.at[u][old] = -1
		ec.at[v][old] = -1
	}
	ec.color[normEdge(u, v)] = c
	ec.at[u][c] = v
	ec.at[v][c] = u
}

// freeColor returns the smallest color unused at v.
func (ec *edgeColorer) freeColor(v int) int {
	for c := 0; c < ec.colors; c++ {
		if ec.at[v][c] < 0 {
			return c
		}
	}
	panic(fmt.Sprintf("graphutil: vertex %d has no free color among %d", v, ec.colors))
}

func (ec *edgeColorer) isFree(v, c int) bool { return ec.at[v][c] < 0 }

// colorEdge colors the uncolored edge (u, v) by the Misra-Gries step:
// build a maximal fan of u from v, invert the cd-path at u, and rotate a
// prefix of the fan.
func (ec *edgeColorer) colorEdge(u, v int) {
	fan := ec.maximalFan(u, v)
	c := ec.freeColor(u)
	d := ec.freeColor(fan[len(fan)-1])
	ec.invertPath(u, c, d)
	// After inversion d is free at u. Pick the shortest fan prefix that
	// is still a valid fan under the updated colors and whose end
	// vertex has d free; Misra & Gries prove such a prefix exists.
	w := -1
	for i := range fan {
		if ec.isFree(fan[i], d) && ec.isFan(u, fan[:i+1]) {
			w = i
			break
		}
	}
	if w < 0 {
		panic(fmt.Sprintf("graphutil: no rotatable fan prefix for edge (%d, %d)", u, v))
	}
	ec.rotateFan(u, fan[:w+1])
	ec.setColor(u, fan[w], d)
}

// isFan reports whether the sequence is a valid fan of u under the current
// coloring: every edge (u, fan[i+1]) is colored with a color free at
// fan[i]. fan[0]'s edge is the uncolored edge being processed.
func (ec *edgeColorer) isFan(u int, fan []int) bool {
	for i := 0; i+1 < len(fan); i++ {
		cw := ec.getColor(u, fan[i+1])
		if cw < 0 || !ec.isFree(fan[i], cw) {
			return false
		}
	}
	return true
}

// maximalFan builds a maximal fan of u starting at v: a sequence of
// distinct neighbors x_0 = v, x_1, ... where the edge (u, x_{i+1}) is
// colored with a color free at x_i.
func (ec *edgeColorer) maximalFan(u, v int) []int {
	fan := []int{v}
	used := map[int]bool{v: true}
	for {
		last := fan[len(fan)-1]
		extended := false
		for _, w := range ec.g.Adjacent(u) {
			if used[w] {
				continue
			}
			cw := ec.getColor(u, w)
			if cw >= 0 && ec.isFree(last, cw) {
				fan = append(fan, w)
				used[w] = true
				extended = true
				break
			}
		}
		if !extended {
			return fan
		}
	}
}

// invertPath swaps colors c and d along the maximal path starting at u
// whose edges alternate between them (the first edge, if any, is colored
// d, because c is free at u). The path is collected first and re-colored
// afterwards: flipping in place would transiently corrupt the per-vertex
// color table that the walk itself reads.
func (ec *edgeColorer) invertPath(u, c, d int) {
	if c == d {
		return
	}
	type pathEdge struct{ a, b, col int }
	var path []pathEdge
	prev, cur, col := u, ec.at[u][d], d
	for cur >= 0 {
		if len(path) > ec.g.EdgeCount() {
			panic("graphutil: cd-path exceeds edge count; coloring state corrupted")
		}
		path = append(path, pathEdge{a: prev, b: cur, col: col})
		nextCol := opposite(col, c, d)
		next := ec.at[cur][nextCol]
		prev, cur, col = cur, next, nextCol
	}
	for _, e := range path {
		ec.clearColor(e.a, e.b)
	}
	for _, e := range path {
		ec.setColor(e.a, e.b, opposite(e.col, c, d))
	}
}

// clearColor removes the color of edge (u, v) from both the edge map and
// the per-vertex tables.
func (ec *edgeColorer) clearColor(u, v int) {
	if old := ec.getColor(u, v); old >= 0 {
		ec.at[u][old] = -1
		ec.at[v][old] = -1
		delete(ec.color, normEdge(u, v))
	}
}

func opposite(x, c, d int) int {
	if x == c {
		return d
	}
	return c
}

// rotateFan shifts the colors of the fan edges down: edge (u, fan[i])
// takes the color of edge (u, fan[i+1]); the final fan edge is left for
// the caller to color. Colors are captured before any mutation — shifting
// in place would clear entries of the per-vertex table that later shifts
// still need.
func (ec *edgeColorer) rotateFan(u int, fan []int) {
	shifted := make([]int, 0, len(fan)-1)
	for i := 0; i+1 < len(fan); i++ {
		shifted = append(shifted, ec.getColor(u, fan[i+1]))
	}
	for i := 1; i < len(fan); i++ {
		ec.clearColor(u, fan[i])
	}
	for i, c := range shifted {
		ec.setColor(u, fan[i], c)
	}
}
