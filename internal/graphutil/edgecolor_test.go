package graphutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycle(n int) *Graph {
	g := path(n)
	g.AddEdge(n-1, 0)
	return g
}

func star(n int) *Graph {
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

func complete(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func maxColor(coloring map[[2]int]int) int {
	max := -1
	for _, c := range coloring {
		if c > max {
			max = c
		}
	}
	return max
}

// TestEdgeColoringStructuredGraphs checks validity and the Vizing bound on
// the graph families that appear as interaction graphs in the benchmark
// suite: paths (VQE chains), stars (QFT blocks, BV), cycles, and cliques.
func TestEdgeColoringStructuredGraphs(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
	}{
		{"path10", path(10)},
		{"path2", path(2)},
		{"cycle5", cycle(5)},
		{"cycle6", cycle(6)},
		{"star8", star(8)},
		{"K4", complete(4)},
		{"K5", complete(5)},
		{"K7", complete(7)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			col := tt.g.EdgeColoring()
			if !tt.g.ValidEdgeColoring(col) {
				t.Fatal("invalid edge coloring")
			}
			if got, bound := maxColor(col), tt.g.MaxDegree(); got > bound {
				t.Errorf("used color %d, Vizing bound is %d (Delta+1 colors)", got, bound)
			}
		})
	}
}

// TestEdgeColoringStarIsTight: stars are class-1 graphs where even greedy
// achieves Delta; Misra-Gries must not exceed it (Delta colors = indices
// 0..Delta-1).
func TestEdgeColoringStarIsTight(t *testing.T) {
	g := star(9)
	col := g.EdgeColoring()
	if !g.ValidEdgeColoring(col) {
		t.Fatal("invalid coloring")
	}
	if got := maxColor(col); got != g.MaxDegree()-1 {
		t.Errorf("star used max color %d, want %d", got, g.MaxDegree()-1)
	}
}

func TestEdgeColoringEmptyAndSingle(t *testing.T) {
	g := NewGraph(5) // no edges
	if col := g.EdgeColoring(); len(col) != 0 {
		t.Errorf("empty graph colored %d edges", len(col))
	}
	g2 := NewGraph(2)
	g2.AddEdge(0, 1)
	col := g2.EdgeColoring()
	if len(col) != 1 || col[[2]int{0, 1}] != 0 {
		t.Errorf("single edge coloring = %v", col)
	}
}

// TestEdgeColoringRandom is the main correctness property: on arbitrary
// random graphs the coloring is proper and within Delta+1 colors.
func TestEdgeColoringRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(40)
		p := rng.Float64()
		g := RandomGNP(n, p, rng)
		col := g.EdgeColoring()
		if !g.ValidEdgeColoring(col) {
			t.Fatalf("trial %d: invalid coloring n=%d p=%.2f edges=%d", trial, n, p, g.EdgeCount())
		}
		if c := maxColor(col); c > g.MaxDegree() {
			t.Fatalf("trial %d: color %d exceeds Delta+1 = %d", trial, c, g.MaxDegree()+1)
		}
	}
}

// TestEdgeColoringQuick drives the same invariant through testing/quick.
func TestEdgeColoringQuick(t *testing.T) {
	f := func(seed int64, nRaw, pRaw uint8) bool {
		n := 2 + int(nRaw%25)
		p := float64(pRaw) / 255
		rng := rand.New(rand.NewSource(seed))
		g := RandomGNP(n, p, rng)
		col := g.EdgeColoring()
		return g.ValidEdgeColoring(col) && maxColor(col) <= g.MaxDegree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidEdgeColoringRejects(t *testing.T) {
	g := path(3) // edges (0,1), (1,2) share vertex 1
	if g.ValidEdgeColoring(map[[2]int]int{{0, 1}: 0, {1, 2}: 0}) {
		t.Error("adjacent edges with equal colors accepted")
	}
	if g.ValidEdgeColoring(map[[2]int]int{{0, 1}: 0}) {
		t.Error("missing edge accepted")
	}
	if g.ValidEdgeColoring(map[[2]int]int{{0, 1}: 0, {1, 2}: -1}) {
		t.Error("negative color accepted")
	}
	if !g.ValidEdgeColoring(map[[2]int]int{{0, 1}: 0, {1, 2}: 1}) {
		t.Error("proper coloring rejected")
	}
}

// TestEdgeColoringRegularGraphs exercises the benchmark-relevant case of
// random 3- and 4-regular interaction graphs.
func TestEdgeColoringRegularGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []int{3, 4} {
		for _, n := range []int{10, 20, 30, 50} {
			if n*d%2 != 0 {
				continue
			}
			g := RandomRegular(n, d, rng)
			col := g.EdgeColoring()
			if !g.ValidEdgeColoring(col) {
				t.Fatalf("d=%d n=%d: invalid coloring", d, n)
			}
			if c := maxColor(col); c > d {
				t.Errorf("d=%d n=%d: used %d colors, Vizing bound %d", d, n, c+1, d+1)
			}
		}
	}
}
