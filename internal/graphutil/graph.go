// Package graphutil provides the graph algorithms the compiler stack is
// built on: a compact undirected graph, the degree-ordered greedy coloring
// of Algorithm 1 of the paper (used by the Sec. 4 stage scheduler), the
// iterated maximal-independent-set extraction used by the Enola baseline
// (Sec. 3), and the random-graph generators behind the QAOA workloads
// (Sec. 7.1).
package graphutil

import (
	"fmt"
	"sort"

	"powermove/internal/bitset"
)

// Graph is an undirected graph on vertices 0..N-1 with an adjacency-list
// representation plus per-vertex adjacency bitsets, so HasEdge is a
// shift-and-mask instead of a map probe. Rows are allocated lazily on a
// vertex's first edge, keeping isolated vertices free. Parallel edges are
// collapsed; self-loops are rejected.
type Graph struct {
	n   int
	adj [][]int
	set []bitset.Set
}

// NewGraph returns an empty graph on n vertices.
// It panics if n is negative.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graphutil: negative vertex count %d", n))
	}
	return &Graph{
		n:   n,
		adj: make([][]int, n),
		set: make([]bitset.Set, n),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// row returns vertex v's adjacency bitset, sizing it on first use.
func (g *Graph) row(v int) *bitset.Set {
	s := &g.set[v]
	if s.Len() == 0 {
		s.Reset(g.n)
	}
	return s
}

// AddEdge inserts the undirected edge {u, v}, ignoring duplicates.
// It panics on self-loops or out-of-range vertices.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graphutil: self-loop on vertex %d", u))
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graphutil: edge (%d, %d) out of range for %d vertices", u, v, g.n))
	}
	ru := g.row(u)
	if ru.Contains(v) {
		return
	}
	ru.Add(v)
	g.row(v).Add(u)
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// HasEdge reports whether the edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	if g.set[u].Len() == 0 {
		return false
	}
	return g.set[u].Contains(v)
}

// Adjacent returns the neighbors of v. The returned slice is owned by the
// graph and must not be mutated.
func (g *Graph) Adjacent(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// EdgeCount returns the number of distinct edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Edges returns every edge once, as ordered pairs (u < v), sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// MaxDegree returns the largest vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// GreedyColoring implements Algorithm 1 of the paper ("optimized
// edge-coloring"): vertices are processed in descending degree order and
// each receives the smallest color not used by an already-colored neighbor.
// The returned slice maps vertex -> color; colors are 0-based and at most
// MaxDegree()+1 distinct colors are used.
func (g *Graph) GreedyColoring() []int {
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return len(g.adj[order[i]]) > len(g.adj[order[j]])
	})

	color := make([]int, g.n)
	for i := range color {
		color[i] = -1
	}
	available := make([]bool, g.n+1)
	for _, v := range order {
		for i := range available {
			available[i] = true
		}
		for _, u := range g.adj[v] {
			if color[u] >= 0 {
				available[color[u]] = false
			}
		}
		for c := range available {
			if available[c] {
				color[v] = c
				break
			}
		}
	}
	return color
}

// ColorClasses groups vertices by color, dropping any vertex colored -1.
// Classes are ordered by color index; vertices within a class keep their
// natural order.
func ColorClasses(color []int) [][]int {
	max := -1
	for _, c := range color {
		if c > max {
			max = c
		}
	}
	classes := make([][]int, max+1)
	for v, c := range color {
		if c >= 0 {
			classes[c] = append(classes[c], v)
		}
	}
	return classes
}

// ValidColoring reports whether color assigns every vertex a non-negative
// color distinct from all of its neighbors' colors.
func (g *Graph) ValidColoring(color []int) bool {
	if len(color) != g.n {
		return false
	}
	for v := 0; v < g.n; v++ {
		if color[v] < 0 {
			return false
		}
		for _, u := range g.adj[v] {
			if color[u] == color[v] {
				return false
			}
		}
	}
	return true
}

// MaximalIndependentSet returns a maximal independent set of the subgraph
// induced by the still-unmarked vertices (removed[v] == false), using the
// classic min-residual-degree greedy rule. The Enola baseline extracts its
// Rydberg stages by calling this repeatedly, which is the source of its
// higher compilation cost relative to one-shot coloring.
func (g *Graph) MaximalIndependentSet(removed []bool) []int {
	if len(removed) != g.n {
		panic(fmt.Sprintf("graphutil: removed mask has length %d, want %d", len(removed), g.n))
	}
	blocked := make([]bool, g.n)
	residual := make([]int, g.n)
	active := 0
	for v := 0; v < g.n; v++ {
		if removed[v] {
			blocked[v] = true
			continue
		}
		active++
		for _, u := range g.adj[v] {
			if !removed[u] {
				residual[v]++
			}
		}
	}
	var mis []int
	for picked := 0; picked < active; {
		best, bestDeg := -1, g.n+1
		for v := 0; v < g.n; v++ {
			if !blocked[v] && residual[v] < bestDeg {
				best, bestDeg = v, residual[v]
			}
		}
		if best < 0 {
			break
		}
		mis = append(mis, best)
		blocked[best] = true
		picked++
		for _, u := range g.adj[best] {
			if !blocked[u] {
				blocked[u] = true
				picked++
				for _, w := range g.adj[u] {
					residual[w]--
				}
			}
		}
	}
	sort.Ints(mis)
	return mis
}

// IsIndependent reports whether no two vertices of set share an edge.
func (g *Graph) IsIndependent(set []int) bool {
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for _, v := range set {
		for _, u := range g.adj[v] {
			if in[u] {
				return false
			}
		}
	}
	return true
}
