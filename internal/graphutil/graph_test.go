package graphutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeAndQueries(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate collapses
	if got := g.EdgeCount(); got != 2 {
		t.Errorf("EdgeCount = %d, want 2", got)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge must be orientation-independent")
	}
	if g.HasEdge(0, 2) || g.HasEdge(0, 9) || g.HasEdge(-1, 0) {
		t.Error("HasEdge reports phantom edges")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Error("Degree wrong")
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := NewGraph(3)
	for _, e := range [][2]int{{1, 1}, {0, 3}, {-1, 0}} {
		e := e
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%d, %d) did not panic", e[0], e[1])
				}
			}()
			g.AddEdge(e[0], e[1])
		}()
	}
}

func TestNewGraphPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGraph(-1) did not panic")
		}
	}()
	NewGraph(-1)
}

func TestEdgesSortedAndNormalized(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(4, 0)
	g.AddEdge(2, 1)
	g.AddEdge(3, 2)
	edges := g.Edges()
	want := [][2]int{{0, 4}, {1, 2}, {2, 3}}
	if len(edges) != len(want) {
		t.Fatalf("Edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", edges, want)
		}
	}
}

// TestGreedyColoringProper: the degree-ordered greedy of Algorithm 1
// always produces a proper coloring with at most MaxDegree+1 colors.
func TestGreedyColoringProper(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(30)
		g := RandomGNP(n, rng.Float64(), rng)
		color := g.GreedyColoring()
		if !g.ValidColoring(color) {
			t.Fatalf("trial %d: invalid coloring", trial)
		}
		for _, c := range color {
			if c > g.MaxDegree() {
				t.Fatalf("trial %d: color %d exceeds MaxDegree+1 = %d", trial, c, g.MaxDegree()+1)
			}
		}
	}
}

func TestColorClasses(t *testing.T) {
	classes := ColorClasses([]int{0, 1, 0, 2, -1, 1})
	if len(classes) != 3 {
		t.Fatalf("classes = %v, want 3 classes", classes)
	}
	if len(classes[0]) != 2 || classes[0][0] != 0 || classes[0][1] != 2 {
		t.Errorf("class 0 = %v, want [0 2]", classes[0])
	}
	// Vertex 4 (color -1) is dropped.
	total := 0
	for _, cl := range classes {
		total += len(cl)
	}
	if total != 5 {
		t.Errorf("classes cover %d vertices, want 5", total)
	}
}

func TestValidColoringRejects(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	if g.ValidColoring([]int{0, 0, 1}) {
		t.Error("adjacent same-color accepted")
	}
	if g.ValidColoring([]int{0, 1}) {
		t.Error("short coloring accepted")
	}
	if g.ValidColoring([]int{0, -1, 0}) {
		t.Error("uncolored vertex accepted")
	}
	if !g.ValidColoring([]int{0, 1, 0}) {
		t.Error("proper coloring rejected")
	}
}

// TestMISIndependentAndMaximal: every extracted set is independent, and no
// unremoved vertex outside the set could be added (maximality).
func TestMISIndependentAndMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(25)
		g := RandomGNP(n, rng.Float64(), rng)
		removed := make([]bool, n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.3 {
				removed[v] = true
			}
		}
		mis := g.MaximalIndependentSet(removed)
		if !g.IsIndependent(mis) {
			t.Fatalf("trial %d: set %v not independent", trial, mis)
		}
		in := make(map[int]bool)
		for _, v := range mis {
			if removed[v] {
				t.Fatalf("trial %d: removed vertex %d in set", trial, v)
			}
			in[v] = true
		}
		for v := 0; v < n; v++ {
			if removed[v] || in[v] {
				continue
			}
			conflict := false
			for _, u := range g.Adjacent(v) {
				if in[u] {
					conflict = true
					break
				}
			}
			if !conflict {
				t.Fatalf("trial %d: vertex %d could extend the set — not maximal", trial, v)
			}
		}
	}
}

func TestMISPanicsOnBadMask(t *testing.T) {
	g := NewGraph(3)
	defer func() {
		if recover() == nil {
			t.Fatal("MaximalIndependentSet with short mask did not panic")
		}
	}()
	g.MaximalIndependentSet(make([]bool, 2))
}

func TestIsIndependent(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if !g.IsIndependent([]int{0, 2}) {
		t.Error("independent set rejected")
	}
	if g.IsIndependent([]int{0, 1}) {
		t.Error("edge endpoints accepted as independent")
	}
	if !g.IsIndependent(nil) {
		t.Error("empty set must be independent")
	}
}

// TestGreedyColoringPropertyQuick drives the coloring invariant through
// testing/quick-generated adjacency.
func TestGreedyColoringPropertyQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		n := 2 + int(nRaw%20)
		p := float64(pRaw) / 255
		rng := rand.New(rand.NewSource(seed))
		g := RandomGNP(n, p, rng)
		return g.ValidColoring(g.GreedyColoring())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
