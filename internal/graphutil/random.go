// Random-graph generators for the QAOA workloads of Sec. 7.1: random
// d-regular graphs (QAOA-regular3 / QAOA-regular4) and Erdos-Renyi
// G(n, p) graphs (QAOA-random). All generators are deterministic given
// the supplied rand source.
package graphutil

import (
	"fmt"
	"math/rand"
)

// RandomRegular returns a simple d-regular graph on n vertices sampled with
// the configuration (pairing) model, retrying until the pairing yields no
// self-loops or parallel edges. It panics if n*d is odd or d >= n, the two
// cases for which no simple d-regular graph exists.
func RandomRegular(n, d int, rng *rand.Rand) *Graph {
	if n*d%2 != 0 {
		panic(fmt.Sprintf("graphutil: no %d-regular graph on %d vertices (odd degree sum)", d, n))
	}
	if d >= n {
		panic(fmt.Sprintf("graphutil: degree %d too large for %d vertices", d, n))
	}
	if d < 0 {
		panic(fmt.Sprintf("graphutil: negative degree %d", d))
	}
	for attempt := 0; ; attempt++ {
		if g, ok := tryPairing(n, d, rng); ok {
			return g
		}
		if attempt > 10000 {
			// The pairing model succeeds with probability bounded
			// away from zero for fixed d, so this is unreachable
			// for the degrees this repository uses (3 and 4).
			panic(fmt.Sprintf("graphutil: pairing model failed for n=%d d=%d", n, d))
		}
	}
}

// tryPairing attempts one round of the configuration model: each vertex
// contributes d stubs, the stubs are shuffled, and consecutive stubs are
// matched. The attempt fails if it would create a loop or multi-edge.
func tryPairing(n, d int, rng *rand.Rand) (*Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := NewGraph(n)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			return nil, false
		}
		g.AddEdge(u, v)
	}
	return g, true
}

// RandomGNP returns an Erdos-Renyi G(n, p) graph: each of the n*(n-1)/2
// possible edges is present independently with probability p.
func RandomGNP(n int, p float64, rng *rand.Rand) *Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graphutil: probability %v out of [0, 1]", p))
	}
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// IsRegular reports whether every vertex of g has degree d.
func (g *Graph) IsRegular(d int) bool {
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) != d {
			return false
		}
	}
	return true
}
