package graphutil

import (
	"math/rand"
	"testing"
)

func TestRandomRegularIsSimpleAndRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, d int }{
		{10, 3}, {30, 3}, {100, 3}, {20, 4}, {50, 4}, {6, 5}, {8, 0},
	} {
		g := RandomRegular(tc.n, tc.d, rng)
		if !g.IsRegular(tc.d) {
			t.Errorf("n=%d d=%d: graph not %d-regular", tc.n, tc.d, tc.d)
		}
		if g.EdgeCount() != tc.n*tc.d/2 {
			t.Errorf("n=%d d=%d: %d edges, want %d", tc.n, tc.d, g.EdgeCount(), tc.n*tc.d/2)
		}
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	a := RandomRegular(30, 3, rand.New(rand.NewSource(9)))
	b := RandomRegular(30, 3, rand.New(rand.NewSource(9)))
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}

func TestRandomRegularPanics(t *testing.T) {
	cases := []struct {
		name string
		n, d int
	}{
		{"odd degree sum", 5, 3},
		{"degree too large", 4, 4},
		{"negative degree", 4, -2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("RandomRegular(%d, %d) did not panic", tc.n, tc.d)
				}
			}()
			RandomRegular(tc.n, tc.d, rand.New(rand.NewSource(1)))
		})
	}
}

func TestRandomGNPExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	empty := RandomGNP(10, 0, rng)
	if empty.EdgeCount() != 0 {
		t.Errorf("G(10, 0) has %d edges", empty.EdgeCount())
	}
	full := RandomGNP(10, 1, rng)
	if full.EdgeCount() != 45 {
		t.Errorf("G(10, 1) has %d edges, want 45", full.EdgeCount())
	}
}

func TestRandomGNPDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := RandomGNP(60, 0.5, rng)
	max := 60 * 59 / 2
	// Loose 4-sigma band around the mean p*max.
	got := float64(g.EdgeCount())
	mean := 0.5 * float64(max)
	if got < mean-120 || got > mean+120 {
		t.Errorf("G(60, 0.5) has %v edges, far from mean %v", got, mean)
	}
}

func TestRandomGNPPanicsOnBadP(t *testing.T) {
	for _, p := range []float64{-0.1, 1.1} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RandomGNP(p=%v) did not panic", p)
				}
			}()
			RandomGNP(5, p, rand.New(rand.NewSource(1)))
		}()
	}
}

func TestIsRegular(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	if g.IsRegular(1) {
		t.Error("path3 prefix reported 1-regular despite isolated vertex")
	}
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if !g.IsRegular(2) {
		t.Error("triangle not reported 2-regular")
	}
}
