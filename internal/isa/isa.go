// Package isa defines the low-level instruction stream both compilers emit
// and the executor consumes: parallel single-qubit layers, batches of
// collective moves distributed across AOD arrays (the Coll-Moves of
// Sec. 6 of the paper), and the global Rydberg pulses of the Sec. 2.1
// execution model. A Program is the compiled artifact; it can be
// disassembled to a human-readable listing for inspection.
package isa

import (
	"fmt"
	"strings"

	"powermove/internal/circuit"
	"powermove/internal/move"
)

// Instruction is one step of a compiled program. Exactly three concrete
// types implement it: OneQLayer, MoveBatch, and Rydberg.
type Instruction interface {
	isInstruction()
	// Mnemonic returns a one-line textual rendering of the instruction.
	Mnemonic() string
}

// OneQLayer applies Count single-qubit gates in one parallel Raman layer
// (duration 1 us, Sec. 2.1).
type OneQLayer struct {
	Count int
}

func (OneQLayer) isInstruction() {}

// Mnemonic implements Instruction.
func (i OneQLayer) Mnemonic() string { return fmt.Sprintf("1q-layer   count=%d", i.Count) }

// MoveBatch executes one Coll-Move per AOD array simultaneously
// (Sec. 6.2). Groups[k] runs on AOD k; the batch completes when its
// slowest group does, after one pickup and one dropoff transfer interval.
type MoveBatch struct {
	Groups []move.CollMove
}

func (MoveBatch) isInstruction() {}

// Mnemonic implements Instruction.
func (i MoveBatch) Mnemonic() string {
	var parts []string
	for k, g := range i.Groups {
		parts = append(parts, fmt.Sprintf("aod%d:%d moves (%.1f um)", k, len(g.Moves), g.MaxDistance()))
	}
	return "move-batch " + strings.Join(parts, ", ")
}

// MovedQubits returns the total number of qubits the batch relocates.
func (i MoveBatch) MovedQubits() int {
	n := 0
	for _, g := range i.Groups {
		n += len(g.Moves)
	}
	return n
}

// Duration returns the wall-clock time of the batch in microseconds: one
// pickup and one dropoff transfer plus the slowest group's movement time.
func (i MoveBatch) Duration() float64 {
	max := 0.0
	for _, g := range i.Groups {
		if d := g.Duration(); d > max {
			max = d
		}
	}
	return 2*transferDuration + max
}

// Rydberg fires the global Rydberg laser over the computation zone,
// executing every scheduled CZ pair in parallel (duration 270 ns).
type Rydberg struct {
	// Stage identifies the Rydberg stage for tracing.
	Stage int
	// Pairs are the CZ gates this pulse executes.
	Pairs []circuit.CZ
}

func (Rydberg) isInstruction() {}

// Mnemonic implements Instruction.
func (i Rydberg) Mnemonic() string {
	return fmt.Sprintf("rydberg    stage=%d gates=%d", i.Stage, len(i.Pairs))
}

// transferDuration mirrors phys.DurationTransfer without importing phys
// into the hot path; the two are asserted equal by a test.
const transferDuration = 15.0

// Program is a compiled artifact ready for execution.
type Program struct {
	// Name echoes the source circuit's name.
	Name string
	// Qubits is the number of program qubits.
	Qubits int
	// Instr is the instruction stream in execution order.
	Instr []Instruction
}

// Counts tallies the instruction mix of the program.
type Counts struct {
	OneQLayers, MoveBatches, Rydbergs int
	CZGates, OneQGates, MovedQubits   int
}

// Count returns the instruction mix of p.
func (p *Program) Count() Counts {
	var c Counts
	for _, in := range p.Instr {
		switch in := in.(type) {
		case OneQLayer:
			c.OneQLayers++
			c.OneQGates += in.Count
		case MoveBatch:
			c.MoveBatches++
			c.MovedQubits += in.MovedQubits()
		case Rydberg:
			c.Rydbergs++
			c.CZGates += len(in.Pairs)
		}
	}
	return c
}

// Disassemble renders the program as a line-per-instruction listing.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s (%d qubits, %d instructions)\n", p.Name, p.Qubits, len(p.Instr))
	for idx, in := range p.Instr {
		fmt.Fprintf(&b, "%5d  %s\n", idx, in.Mnemonic())
	}
	return b.String()
}
