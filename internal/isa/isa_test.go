package isa

import (
	"math"
	"strings"
	"testing"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/move"
	"powermove/internal/phys"
)

func testProgram() *Program {
	a := arch.New(arch.Config{Qubits: 4})
	m := move.New(a, 0,
		arch.Site{Zone: arch.Compute, Row: 0, Col: 0},
		arch.Site{Zone: arch.Compute, Row: 0, Col: 1})
	return &Program{
		Name:   "test",
		Qubits: 4,
		Instr: []Instruction{
			OneQLayer{Count: 4},
			MoveBatch{Groups: []move.CollMove{{Moves: []move.Move{m}}}},
			Rydberg{Stage: 0, Pairs: []circuit.CZ{circuit.NewCZ(0, 1)}},
			OneQLayer{Count: 2},
		},
	}
}

// TestTransferDurationMatchesPhys guards the deliberate constant
// duplication in this package.
func TestTransferDurationMatchesPhys(t *testing.T) {
	if transferDuration != phys.DurationTransfer {
		t.Fatalf("isa transferDuration = %v, phys.DurationTransfer = %v", transferDuration, phys.DurationTransfer)
	}
}

func TestCount(t *testing.T) {
	c := testProgram().Count()
	if c.OneQLayers != 2 || c.OneQGates != 6 {
		t.Errorf("1Q counts = %d layers %d gates, want 2/6", c.OneQLayers, c.OneQGates)
	}
	if c.MoveBatches != 1 || c.MovedQubits != 1 {
		t.Errorf("move counts = %d batches %d qubits, want 1/1", c.MoveBatches, c.MovedQubits)
	}
	if c.Rydbergs != 1 || c.CZGates != 1 {
		t.Errorf("Rydberg counts = %d pulses %d gates, want 1/1", c.Rydbergs, c.CZGates)
	}
}

func TestMoveBatchDuration(t *testing.T) {
	a := arch.New(arch.Config{Qubits: 9})
	short := move.New(a, 0,
		arch.Site{Zone: arch.Compute, Row: 0, Col: 0},
		arch.Site{Zone: arch.Compute, Row: 0, Col: 1})
	long := move.New(a, 1,
		arch.Site{Zone: arch.Compute, Row: 0, Col: 0},
		arch.Site{Zone: arch.Storage, Row: 0, Col: 0})
	b := MoveBatch{Groups: []move.CollMove{
		{Moves: []move.Move{short}},
		{Moves: []move.Move{long}},
	}}
	want := 2*phys.DurationTransfer + long.Duration()
	if got := b.Duration(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Duration = %v, want %v (slowest group + 2 transfers)", got, want)
	}
	if b.MovedQubits() != 2 {
		t.Errorf("MovedQubits = %d, want 2", b.MovedQubits())
	}
}

func TestMnemonics(t *testing.T) {
	p := testProgram()
	wantPieces := []string{"1q-layer", "move-batch", "rydberg"}
	for i, piece := range wantPieces {
		if got := p.Instr[i].Mnemonic(); !strings.Contains(got, piece) {
			t.Errorf("instr %d mnemonic %q missing %q", i, got, piece)
		}
	}
	if got := (Rydberg{Stage: 3, Pairs: []circuit.CZ{circuit.NewCZ(0, 1)}}).Mnemonic(); !strings.Contains(got, "stage=3") {
		t.Errorf("Rydberg mnemonic = %q", got)
	}
}

func TestDisassemble(t *testing.T) {
	out := testProgram().Disassemble()
	if !strings.Contains(out, "program test (4 qubits, 4 instructions)") {
		t.Errorf("header missing: %q", out)
	}
	if got := strings.Count(out, "\n"); got != 5 {
		t.Errorf("listing has %d lines, want 5", got)
	}
}
