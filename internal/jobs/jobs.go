// Package jobs is the async job subsystem behind the service's /v1/jobs
// API: a bounded admission queue with explicit load-shedding, a worker
// pool draining it, job lifecycle states with per-state counters and a
// queue-latency histogram, cancellation, TTL'd retention of finished
// jobs, and a per-job event stream for SSE progress.
//
// The lifecycle is
//
//	queued ──────> running ──────> done | failed
//	   │              │
//	   └──────────────┴──────────> canceled
//
// Admission is strict: when the queue holds Depth jobs, Submit returns
// ErrFull and the caller sheds load (HTTP 429 + Retry-After) instead of
// queueing unbounded work. Within the queue, higher Priority runs first
// and equal priorities run FIFO.
//
// A submission carrying a non-empty Key whose key already has an active
// (queued or running) job does not consume a queue slot: it attaches to
// that leader and runs only once the leader finishes — by then the
// outcome is in the compile cache, so the follower's run is a cache hit
// and the pair costs one compile. If the leader is canceled instead, its
// followers are re-admitted through the normal bounded queue.
//
// The manager knows nothing about compiles: execution is delegated to
// the configured Runner, which receives the job's context (canceled by
// DELETE or manager shutdown) and a progress callback feeding the job's
// event stream.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is a job's lifecycle position.
type State string

// The job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Error is the structured failure attached to failed and canceled jobs;
// Code uses the service's stable machine-readable error codes.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Event is one entry of a job's event stream, named for the SSE event
// field: "state" events carry a stateData document, "progress" events a
// {"done","total"} document.
type Event struct {
	Name string          `json:"name"`
	Data json.RawMessage `json:"data"`
}

// stateData is the payload of a "state" event.
type stateData struct {
	ID         string `json:"id"`
	State      State  `json:"state"`
	AttachedTo string `json:"attached_to,omitempty"`
	Error      *Error `json:"error,omitempty"`
}

// Snapshot is the public view of a job at one instant.
type Snapshot struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	State    State  `json:"state"`
	Priority int    `json:"priority,omitempty"`
	// Created/Started/Finished timestamp the lifecycle transitions.
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// QueueMS is the measured admission-to-start latency.
	QueueMS float64 `json:"queue_ms,omitempty"`
	// AttachedTo names the leader this job attached to, when it rode an
	// in-flight submission of the same key instead of a queue slot.
	AttachedTo string `json:"attached_to,omitempty"`
	// Request echoes the submitted payload; Result carries the outcome
	// document once done. Both are omitted from List snapshots.
	Request json.RawMessage `json:"request,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	// Error is set on failed and canceled jobs.
	Error *Error `json:"error,omitempty"`
}

// Spec describes one submission.
type Spec struct {
	// Kind tags the work for the Runner's dispatch.
	Kind string
	// Payload is the opaque request document handed to the Runner and
	// echoed in snapshots.
	Payload json.RawMessage
	// Priority orders the queue: higher runs first, equal is FIFO.
	// Valid range [0, MaxPriority].
	Priority int
	// Key, when non-empty, is the job's dedup identity: a submission
	// whose key has an active job attaches to it instead of enqueueing.
	Key string
}

// MaxPriority bounds Spec.Priority.
const MaxPriority = 9

// Runner executes one job: ctx is canceled by DELETE /v1/jobs/{id} and
// by manager shutdown; progress feeds the job's event stream. The
// returned bytes become the job's result document.
type Runner func(ctx context.Context, snap Snapshot, progress func(done, total int)) (json.RawMessage, error)

// Config sizes a Manager.
type Config struct {
	// Depth bounds the admission queue; submissions beyond it shed with
	// ErrFull. Values < 1 select 256.
	Depth int
	// Workers is the number of jobs drained concurrently; values < 1
	// select 2.
	Workers int
	// TTL is how long finished jobs (and their results) are retained
	// for polling; values <= 0 select 15 minutes.
	TTL time.Duration
	// GCInterval is the retention sweep period; values <= 0 select
	// TTL/4 clamped to [100ms, 30s].
	GCInterval time.Duration
	// Run executes jobs. Required.
	Run Runner
	// CodeOf maps a Runner error to a stable machine-readable code for
	// the job's Error; nil maps everything to "internal".
	CodeOf func(error) string
	// IDPrefix, when non-empty, prefixes every job id as "<prefix>.jNN-..."
	// — the backend-identity half of fleet routing: a router in front of
	// N daemons recovers which backend owns a job from the id alone, so
	// polling a job needs no router-side state. Must not contain ".".
	IDPrefix string
	// Speculate, when set, is the idle-slot policy: a worker that finds
	// the queue empty offers its slot to this hook before blocking. The
	// hook performs at most one unit of opportunistic work (the service
	// precompiles a likely ablation variant) and reports whether it did
	// anything. Admitted jobs strictly precede speculation — the hook is
	// only ever invoked from a worker holding a drained queue, and the
	// ctx is canceled the moment real work is admitted or the manager
	// closes, so speculative work never delays an admitted job.
	Speculate func(context.Context) bool
}

// Sentinel errors of the admission and lookup surface.
var (
	// ErrFull reports a shed submission: the queue is at Depth.
	ErrFull = errors.New("jobs: queue full")
	// ErrNotFound reports an unknown (or TTL-expired) job id.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrTerminal reports a cancel of an already-finished job.
	ErrTerminal = errors.New("jobs: job already finished")
	// ErrClosed reports a submission to a closed manager.
	ErrClosed = errors.New("jobs: manager closed")
)

// latencyBucketsMS are the queue-latency histogram's upper bounds; the
// final implicit bucket is +Inf.
var latencyBucketsMS = []float64{1, 5, 25, 100, 500, 2500}

// Histogram is a fixed-bucket latency histogram.
type Histogram struct {
	// BucketMS are upper bounds in milliseconds; Counts has one more
	// entry than BucketMS — the overflow bucket.
	BucketMS []float64 `json:"bucket_ms"`
	Counts   []int64   `json:"counts"`
	Count    int64     `json:"count"`
	TotalMS  float64   `json:"total_ms"`
}

// NewHistogram returns an empty histogram over the package's standard
// latency buckets, for consumers (the fleet router's per-backend
// latency metrics) that want buckets comparable with the queue's.
func NewHistogram() Histogram {
	return Histogram{BucketMS: latencyBucketsMS, Counts: make([]int64, len(latencyBucketsMS)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.observe(d) }

func (h *Histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	h.Counts[i]++
	h.Count++
	h.TotalMS += ms
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed values
// in milliseconds: the upper bound of the bucket holding the q-th
// observation. A quantile landing in the overflow bucket has no upper
// bound to report, so it answers twice the last finite bound or the
// observed mean, whichever is larger (a queue draining far beyond the
// bucket range is better described by its mean than by a fixed bound).
// Returns 0 while the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.BucketMS) == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.BucketMS) {
				return h.BucketMS[i]
			}
			break
		}
	}
	over := 2 * h.BucketMS[len(h.BucketMS)-1]
	if mean := h.TotalMS / float64(h.Count); mean > over {
		return mean
	}
	return over
}

// Metrics is the /metrics view of the subsystem: cumulative per-state
// transition counters, current gauges, and the queue-latency histogram.
type Metrics struct {
	// Depth and Capacity describe the admission queue right now.
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
	Workers  int `json:"workers"`
	// Running and Retained are current gauges: jobs executing, and jobs
	// held in memory (including finished ones awaiting TTL expiry).
	Running  int `json:"running"`
	Retained int `json:"retained"`
	// Cumulative transition counters.
	Submitted int64 `json:"submitted"`
	Started   int64 `json:"started"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	// Attached counts submissions that rode an active job of their key
	// instead of a queue slot; Shed counts submissions rejected with
	// ErrFull (HTTP 429s).
	Attached int64 `json:"attached"`
	Shed     int64 `json:"shed"`
	// Speculations counts productive idle-slot speculation hook runs.
	Speculations int64 `json:"speculations,omitempty"`
	// QueueLatency is the admission-to-start histogram.
	QueueLatency Histogram `json:"queue_latency"`
}

// job is the manager's internal record.
type job struct {
	id       string
	seq      int64
	kind     string
	key      string
	priority int
	state    State

	created  time.Time
	started  time.Time
	finished time.Time

	payload json.RawMessage
	result  json.RawMessage
	jerr    *Error

	cancelRequested bool
	cancel          context.CancelFunc // non-nil while running

	attachedTo string
	followers  []*job

	// events is the replayable history; progress events are collapsed
	// to the latest so a 1000-point batch doesn't retain 1000 entries.
	events      []Event
	progressIdx int // index of the history's progress event, -1 if none
	subs        []chan Event
}

// Manager owns the queue, the worker pool, the job table, and the
// retention janitor. Construct with NewManager; stop with Close.
type Manager struct {
	cfg  Config
	mu   sync.Mutex
	cond *sync.Cond

	jobs   map[string]*job
	order  []*job          // creation order, for List
	queues [][]*job        // index = priority; FIFO within
	byKey  map[string]*job // active leader per dedup key
	depth  int
	seq    int64
	closed bool
	stop   chan struct{}

	submitted, started     int64
	done, failed, canceled int64
	attached, shed         int64
	hist                   Histogram

	// Speculation bookkeeping: in-flight hook invocations by sequence
	// (so admission can cancel them) and a count of productive ones.
	specSeq      int64
	specCancels  map[int64]context.CancelFunc
	speculations int64
}

// NewManager starts a manager: Workers drainer goroutines plus the
// retention janitor. Close releases them.
func NewManager(cfg Config) *Manager {
	if cfg.Depth < 1 {
		cfg.Depth = 256
	}
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 15 * time.Minute
	}
	if cfg.GCInterval <= 0 {
		cfg.GCInterval = cfg.TTL / 4
		if cfg.GCInterval < 100*time.Millisecond {
			cfg.GCInterval = 100 * time.Millisecond
		}
		if cfg.GCInterval > 30*time.Second {
			cfg.GCInterval = 30 * time.Second
		}
	}
	if cfg.Run == nil {
		panic("jobs: Config.Run is required")
	}
	m := &Manager{
		cfg:    cfg,
		jobs:   make(map[string]*job),
		queues: make([][]*job, MaxPriority+1),
		byKey:  make(map[string]*job),
		stop:   make(chan struct{}),
		hist:   Histogram{BucketMS: latencyBucketsMS, Counts: make([]int64, len(latencyBucketsMS)+1)},
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	go m.janitor()
	return m
}

// Close stops admission, cancels running jobs, and releases the workers
// and the janitor. In-flight Runner calls are canceled via their ctx but
// not waited for.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.stop)
	for _, j := range m.jobs {
		if j.state == StateRunning && j.cancel != nil {
			j.cancelRequested = true
			j.cancel()
		}
	}
	m.cancelSpeculationsLocked()
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Submit admits one job, returning its initial snapshot. ErrFull means
// the queue is at capacity and the submission was shed.
func (m *Manager) Submit(spec Spec) (Snapshot, error) {
	if spec.Priority < 0 || spec.Priority > MaxPriority {
		return Snapshot{}, fmt.Errorf("jobs: priority %d out of range [0, %d]", spec.Priority, MaxPriority)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Snapshot{}, ErrClosed
	}
	if spec.Key != "" {
		if leader, ok := m.byKey[spec.Key]; ok && !leader.state.Terminal() {
			j := m.newJobLocked(spec)
			j.attachedTo = leader.id
			leader.followers = append(leader.followers, j)
			m.attached++
			m.emitStateLocked(j)
			return j.snapshot(true), nil
		}
	}
	if m.depth >= m.cfg.Depth {
		m.shed++
		return Snapshot{}, ErrFull
	}
	j := m.newJobLocked(spec)
	if spec.Key != "" {
		m.byKey[spec.Key] = j
	}
	m.queues[j.priority] = append(m.queues[j.priority], j)
	m.depth++
	m.cancelSpeculationsLocked()
	m.emitStateLocked(j)
	m.cond.Signal()
	return j.snapshot(true), nil
}

// newJobLocked allocates and registers a queued job. Called with m.mu
// held.
func (m *Manager) newJobLocked(spec Spec) *job {
	m.seq++
	var nonce [4]byte
	rand.Read(nonce[:])
	id := fmt.Sprintf("j%06x-%s", m.seq, hex.EncodeToString(nonce[:]))
	if m.cfg.IDPrefix != "" {
		id = m.cfg.IDPrefix + "." + id
	}
	j := &job{
		id:          id,
		seq:         m.seq,
		kind:        spec.Kind,
		key:         spec.Key,
		priority:    spec.Priority,
		state:       StateQueued,
		created:     time.Now(),
		payload:     spec.Payload,
		progressIdx: -1,
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j)
	m.submitted++
	return j
}

// worker drains the queue until the manager closes. A worker that finds
// the queue drained offers its slot to the speculation hook before
// blocking; any admitted job preempts further speculation because the
// loop re-checks the queue after every hook invocation and the hook is
// never entered while a job is queued.
func (m *Manager) worker() {
	for {
		m.mu.Lock()
		var j *job
		for {
			if j = m.popLocked(); j != nil || m.closed {
				break
			}
			if m.cfg.Speculate != nil {
				did := m.trySpeculateLocked()
				if did || m.closed || m.depth > 0 {
					continue // re-evaluate queue and shutdown at the top
				}
			}
			m.cond.Wait()
		}
		if j == nil { // closed and drained
			m.mu.Unlock()
			return
		}
		ctx, cancel := context.WithCancel(context.Background())
		m.startLocked(j, cancel)
		m.mu.Unlock()
		m.execute(ctx, j)
	}
}

// trySpeculateLocked runs one speculation hook invocation, dropping the
// lock around the hook itself. The hook's context is canceled when a
// real job is admitted or the manager closes. Returns whether the hook
// did work. Called with m.mu held; returns with it held.
func (m *Manager) trySpeculateLocked() bool {
	m.specSeq++
	id := m.specSeq
	ctx, cancel := context.WithCancel(context.Background())
	if m.specCancels == nil {
		m.specCancels = make(map[int64]context.CancelFunc)
	}
	m.specCancels[id] = cancel
	m.mu.Unlock()
	did := m.cfg.Speculate(ctx)
	cancel()
	m.mu.Lock()
	delete(m.specCancels, id)
	if did {
		m.speculations++
	}
	return did
}

// cancelSpeculationsLocked cancels every in-flight speculation hook so
// admitted work reclaims the workers immediately. Called with m.mu held;
// each hook invocation removes its own entry when it returns.
func (m *Manager) cancelSpeculationsLocked() {
	for _, cancel := range m.specCancels {
		cancel()
	}
}

// Kick wakes idle workers so they re-poll the speculation hook — the
// hook's owner calls it after enqueueing new speculative work. A no-op
// without a configured hook or after Close.
func (m *Manager) Kick() {
	m.mu.Lock()
	if !m.closed && m.cfg.Speculate != nil {
		m.cond.Broadcast()
	}
	m.mu.Unlock()
}

// popLocked removes the next runnable job: highest priority first, FIFO
// within. Entries canceled while queued are skipped (their accounting
// happened at cancel time).
func (m *Manager) popLocked() *job {
	for p := MaxPriority; p >= 0; p-- {
		q := m.queues[p]
		for len(q) > 0 {
			j := q[0]
			q = q[1:]
			if j.state == StateQueued {
				m.queues[p] = q
				m.depth--
				return j
			}
		}
		m.queues[p] = q
	}
	return nil
}

// startLocked transitions a job to running. Called with m.mu held.
func (m *Manager) startLocked(j *job, cancel context.CancelFunc) {
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	m.started++
	m.hist.observe(j.started.Sub(j.created))
	m.emitStateLocked(j)
}

// execute runs one job through the Runner and records its terminal
// state.
func (m *Manager) execute(ctx context.Context, j *job) {
	out, err := m.cfg.Run(ctx, j.snapshot(true), func(done, total int) {
		m.emitProgress(j, done, total)
	})
	m.mu.Lock()
	defer m.mu.Unlock()
	j.cancel = nil
	switch {
	case j.cancelRequested || errors.Is(err, context.Canceled):
		m.finishLocked(j, StateCanceled, nil, &Error{Code: "canceled", Message: "job canceled"})
	case err != nil:
		code := "internal"
		if m.cfg.CodeOf != nil {
			code = m.cfg.CodeOf(err)
		}
		m.finishLocked(j, StateFailed, nil, &Error{Code: code, Message: err.Error()})
	default:
		m.finishLocked(j, StateDone, out, nil)
	}
}

// finishLocked records a terminal state, notifies subscribers, and
// settles followers: a done or failed leader releases them to run
// directly (their outcome is by now a cache hit — or the identical
// cached failure), a canceled leader re-admits them through the bounded
// queue. Called with m.mu held.
func (m *Manager) finishLocked(j *job, state State, result json.RawMessage, jerr *Error) {
	j.state = state
	j.finished = time.Now()
	j.result = result
	j.jerr = jerr
	switch state {
	case StateDone:
		m.done++
	case StateFailed:
		m.failed++
	case StateCanceled:
		m.canceled++
	}
	m.emitStateLocked(j)
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	if j.key != "" && m.byKey[j.key] == j {
		delete(m.byKey, j.key)
	}
	followers := j.followers
	j.followers = nil
	for _, f := range followers {
		if f.state != StateQueued || f.cancelRequested {
			continue // canceled while attached; already settled
		}
		if state == StateCanceled {
			m.readmitLocked(f)
		} else {
			go m.runFollower(f)
		}
	}
}

// readmitLocked moves a follower of a canceled leader into the normal
// queue, shedding it if the queue is full. Called with m.mu held.
func (m *Manager) readmitLocked(f *job) {
	if m.closed {
		m.finishLocked(f, StateCanceled, nil, &Error{Code: "canceled", Message: "job canceled: service shutting down"})
		return
	}
	if m.depth >= m.cfg.Depth {
		m.shed++
		m.finishLocked(f, StateFailed, nil, &Error{Code: "queue_full", Message: "leader canceled and the queue is full"})
		return
	}
	f.attachedTo = ""
	if f.key != "" {
		if _, taken := m.byKey[f.key]; !taken {
			m.byKey[f.key] = f
		}
	}
	m.queues[f.priority] = append(m.queues[f.priority], f)
	m.depth++
	m.cancelSpeculationsLocked()
	m.cond.Signal()
}

// runFollower executes a released follower outside the worker pool: its
// leader already computed the outcome, so this run is a cache hit and
// costs no compile slot (any genuine compile underneath is still
// bounded by the service's compile semaphore).
func (m *Manager) runFollower(f *job) {
	ctx, cancel := context.WithCancel(context.Background())
	m.mu.Lock()
	if f.state != StateQueued || f.cancelRequested {
		m.mu.Unlock()
		cancel()
		return
	}
	m.startLocked(f, cancel)
	m.mu.Unlock()
	m.execute(ctx, f)
}

// Cancel requests a job's cancellation: queued (or attached) jobs settle
// to canceled immediately and never run; running jobs have their context
// canceled and settle when the Runner returns. Canceling a finished job
// returns ErrTerminal with the job's final snapshot.
func (m *Manager) Cancel(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	switch {
	case j.state.Terminal():
		return j.snapshot(true), ErrTerminal
	case j.state == StateQueued:
		j.cancelRequested = true
		if j.attachedTo == "" {
			m.depth-- // popLocked will skip the stale queue entry
		}
		m.finishLocked(j, StateCanceled, nil, &Error{Code: "canceled", Message: "job canceled"})
	default: // running
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.snapshot(true), nil
}

// Get returns a job's current snapshot.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return j.snapshot(true), nil
}

// Result returns a done job's result document verbatim. The boolean
// reports whether the job is done; ErrNotFound reports an unknown id.
func (m *Manager) Result(id string) (json.RawMessage, State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, "", ErrNotFound
	}
	return j.result, j.state, nil
}

// Filter narrows List.
type Filter struct {
	// State and Kind, when non-empty, select matching jobs only.
	State State
	Kind  string
	// Limit caps the result count, keeping the most recent; <= 0 means
	// no cap.
	Limit int
}

// List returns job snapshots in creation order, without request/result
// payloads.
func (m *Manager) List(f Filter) []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, 0, len(m.order))
	for _, j := range m.order {
		if f.State != "" && j.state != f.State {
			continue
		}
		if f.Kind != "" && j.kind != f.Kind {
			continue
		}
		out = append(out, j.snapshot(false))
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Subscribe opens a job's event stream: the returned history replays
// everything so far, and live events follow on ch until the job reaches
// a terminal state, when ch is closed. ch is nil if the job is already
// terminal. Call cancel to detach early.
func (m *Manager) Subscribe(id string) (history []Event, ch <-chan Event, cancel func(), err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, nil, ErrNotFound
	}
	history = append([]Event(nil), j.events...)
	if j.state.Terminal() {
		return history, nil, func() {}, nil
	}
	c := make(chan Event, 64)
	j.subs = append(j.subs, c)
	cancel = func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, sub := range j.subs {
			if sub == c {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				close(c)
				return
			}
		}
	}
	return history, c, cancel, nil
}

// Metrics returns the subsystem's accounting snapshot.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	running := 0
	for _, j := range m.jobs {
		if j.state == StateRunning {
			running++
		}
	}
	h := m.hist
	h.Counts = append([]int64(nil), m.hist.Counts...)
	return Metrics{
		Depth:        m.depth,
		Capacity:     m.cfg.Depth,
		Workers:      m.cfg.Workers,
		Running:      running,
		Retained:     len(m.jobs),
		Submitted:    m.submitted,
		Started:      m.started,
		Done:         m.done,
		Failed:       m.failed,
		Canceled:     m.canceled,
		Attached:     m.attached,
		Shed:         m.shed,
		Speculations: m.speculations,
		QueueLatency: h,
	}
}

// TTL returns the configured retention window.
func (m *Manager) TTL() time.Duration { return m.cfg.TTL }

// The Retry-After hint's clamp: never tell a shed client to come back
// sooner than a second or later than half a minute.
const (
	minRetryAfter = time.Second
	maxRetryAfter = 30 * time.Second
)

// RetryAfter estimates how long a shed submission should wait before
// retrying: the live queue-latency histogram's p50 — how long a freshly
// admitted job has been waiting for a worker — clamped to
// [1s, 30s] and rounded up to whole seconds (Retry-After's resolution).
// A constant hint would synchronize every shed client's retry into the
// same instant; deriving it from the drain rate spreads fleet retries
// (and a router's failover traffic) across the window the queue
// actually needs to open a slot.
func (m *Manager) RetryAfter() time.Duration {
	m.mu.Lock()
	p50 := m.hist.Quantile(0.5)
	m.mu.Unlock()
	d := time.Duration(p50 * float64(time.Millisecond))
	if d < minRetryAfter {
		return minRetryAfter
	}
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	// Round up to whole seconds so the HTTP header never under-promises.
	return (d + time.Second - 1) / time.Second * time.Second
}

// janitor drops finished jobs older than the TTL.
func (m *Manager) janitor() {
	ticker := time.NewTicker(m.cfg.GCInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.purge(time.Now().Add(-m.cfg.TTL))
		}
	}
}

// purge removes terminal jobs finished before cutoff.
func (m *Manager) purge(cutoff time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	kept := m.order[:0]
	for _, j := range m.order {
		if j.state.Terminal() && j.finished.Before(cutoff) {
			delete(m.jobs, j.id)
			continue
		}
		kept = append(kept, j)
	}
	m.order = kept
}

// emitStateLocked appends and fans out a state event. Called with m.mu
// held.
func (m *Manager) emitStateLocked(j *job) {
	data, err := json.Marshal(stateData{ID: j.id, State: j.state, AttachedTo: j.attachedTo, Error: j.jerr})
	if err != nil {
		return
	}
	m.fanoutLocked(j, Event{Name: "state", Data: data})
}

// emitProgress appends and fans out a progress event, collapsing the
// history to the latest progress point.
func (m *Manager) emitProgress(j *job, done, total int) {
	data, err := json.Marshal(struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	}{done, total})
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ev := Event{Name: "progress", Data: data}
	if j.progressIdx >= 0 {
		j.events[j.progressIdx] = ev
	} else {
		j.events = append(j.events, ev)
		j.progressIdx = len(j.events) - 1
	}
	m.sendLocked(j, ev)
}

// fanoutLocked appends ev to the history and sends it to subscribers.
func (m *Manager) fanoutLocked(j *job, ev Event) {
	j.events = append(j.events, ev)
	m.sendLocked(j, ev)
}

// sendLocked delivers ev to subscribers, dropping it for any whose
// buffer is full — a slow SSE consumer loses intermediate events, never
// the terminal state (the handler re-reads the job after the channel
// closes).
func (m *Manager) sendLocked(j *job, ev Event) {
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// snapshot renders the job's public view. Called with m.mu held.
func (j *job) snapshot(payloads bool) Snapshot {
	s := Snapshot{
		ID:         j.id,
		Kind:       j.kind,
		State:      j.state,
		Priority:   j.priority,
		Created:    j.created,
		AttachedTo: j.attachedTo,
		Error:      j.jerr,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
		s.QueueMS = float64(j.started.Sub(j.created)) / float64(time.Millisecond)
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	if payloads {
		s.Request = j.payload
		s.Result = j.result
	}
	return s
}
