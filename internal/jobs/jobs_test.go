package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gateRunner blocks each job until released (or its ctx cancels),
// recording which jobs ran.
type gateRunner struct {
	mu      sync.Mutex
	ran     []string
	gates   map[string]chan struct{} // keyed by job kind; nil gate = run immediately
	started chan string
}

func newGateRunner() *gateRunner {
	return &gateRunner{gates: make(map[string]chan struct{}), started: make(chan string, 64)}
}

func (g *gateRunner) gate(kind string) chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch := make(chan struct{})
	g.gates[kind] = ch
	return ch
}

func (g *gateRunner) run(ctx context.Context, snap Snapshot, progress func(done, total int)) (json.RawMessage, error) {
	g.mu.Lock()
	gate := g.gates[snap.Kind]
	g.mu.Unlock()
	select {
	case g.started <- snap.ID:
	default:
	}
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	g.mu.Lock()
	g.ran = append(g.ran, snap.ID)
	g.mu.Unlock()
	return json.RawMessage(fmt.Sprintf(`{"job":%q}`, snap.ID)), nil
}

func (g *gateRunner) didRun(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.ran {
		if r == id {
			return true
		}
	}
	return false
}

func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if snap.State == want {
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	snap, _ := m.Get(id)
	t.Fatalf("job %s stuck in %s, want %s", id, snap.State, want)
	return Snapshot{}
}

// TestShedAtDepth: the queue admits exactly Depth jobs beyond the ones
// running; the next submission sheds with ErrFull and is counted.
func TestShedAtDepth(t *testing.T) {
	g := newGateRunner()
	release := g.gate("blocked")
	m := NewManager(Config{Depth: 3, Workers: 1, Run: g.run})
	defer m.Close()

	// Occupy the single worker.
	if _, err := m.Submit(Spec{Kind: "blocked"}); err != nil {
		t.Fatal(err)
	}
	<-g.started

	// Fill the queue to depth.
	for i := 0; i < 3; i++ {
		if _, err := m.Submit(Spec{Kind: "blocked"}); err != nil {
			t.Fatalf("submission %d within depth: %v", i, err)
		}
	}
	if _, err := m.Submit(Spec{Kind: "blocked"}); !errors.Is(err, ErrFull) {
		t.Fatalf("submission beyond depth: err = %v, want ErrFull", err)
	}
	met := m.Metrics()
	if met.Shed != 1 || met.Depth != 3 || met.Capacity != 3 {
		t.Errorf("metrics = depth %d/%d shed %d, want 3/3 with 1 shed", met.Depth, met.Capacity, met.Shed)
	}
	close(release)
}

// TestPriorityFIFO: higher priority pops first; equal priorities run in
// submission order.
func TestPriorityFIFO(t *testing.T) {
	g := newGateRunner()
	release := g.gate("plug")
	m := NewManager(Config{Depth: 10, Workers: 1, Run: g.run})
	defer m.Close()

	if _, err := m.Submit(Spec{Kind: "plug"}); err != nil {
		t.Fatal(err)
	}
	<-g.started

	var ids []string
	for _, p := range []int{0, 2, 0, 2, 5} {
		s, err := m.Submit(Spec{Kind: "w", Priority: p})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	close(release)
	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}

	g.mu.Lock()
	order := append([]string(nil), g.ran...)
	g.mu.Unlock()
	// ran[0] is the plug; expect 5, then the 2s in order, then the 0s.
	want := []string{ids[4], ids[1], ids[3], ids[0], ids[2]}
	for i, id := range want {
		if order[i+1] != id {
			t.Fatalf("run order %v, want plug then %v", order, want)
		}
	}
	if h := m.Metrics().QueueLatency; h.Count != 6 {
		t.Errorf("latency histogram observed %d starts, want 6", h.Count)
	}
}

// TestCancelQueued: a job canceled while queued never runs and frees
// its queue slot.
func TestCancelQueued(t *testing.T) {
	g := newGateRunner()
	release := g.gate("plug")
	m := NewManager(Config{Depth: 2, Workers: 1, Run: g.run})
	defer m.Close()

	if _, err := m.Submit(Spec{Kind: "plug"}); err != nil {
		t.Fatal(err)
	}
	<-g.started
	victim, err := m.Submit(Spec{Kind: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Cancel(victim.ID)
	if err != nil || snap.State != StateCanceled {
		t.Fatalf("Cancel = %+v, %v; want immediate canceled", snap, err)
	}
	if snap.Error == nil || snap.Error.Code != "canceled" {
		t.Errorf("canceled job error = %+v, want code canceled", snap.Error)
	}
	// The slot freed: two more submissions fit in a depth-2 queue.
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(Spec{Kind: "filler"}); err != nil {
			t.Fatalf("slot not freed after queued cancel: %v", err)
		}
	}
	close(release)
	waitState(t, m, victim.ID, StateCanceled)
	time.Sleep(20 * time.Millisecond) // let the queue drain fully
	if g.didRun(victim.ID) {
		t.Error("canceled-while-queued job was executed")
	}
	if _, err := m.Cancel(victim.ID); !errors.Is(err, ErrTerminal) {
		t.Errorf("re-cancel of terminal job: err = %v, want ErrTerminal", err)
	}
}

// TestCancelRunning: canceling a running job cancels its Runner ctx and
// settles it as canceled.
func TestCancelRunning(t *testing.T) {
	g := newGateRunner()
	g.gate("blocked") // never released: only ctx can free the runner
	m := NewManager(Config{Depth: 4, Workers: 1, Run: g.run})
	defer m.Close()

	snap, err := m.Submit(Spec{Kind: "blocked"})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	if _, err := m.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, snap.ID, StateCanceled)
	if final.Error == nil || final.Error.Code != "canceled" {
		t.Errorf("error = %+v, want canceled code", final.Error)
	}
	if g.didRun(snap.ID) {
		t.Error("canceled runner recorded a completed run")
	}
}

// TestAttach: a second submission of an active key attaches without a
// queue slot; when the leader finishes, the follower runs and finishes
// too.
func TestAttach(t *testing.T) {
	g := newGateRunner()
	release := g.gate("keyed")
	m := NewManager(Config{Depth: 1, Workers: 1, Run: g.run})
	defer m.Close()

	leader, err := m.Submit(Spec{Kind: "keyed", Key: "K"})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	follower, err := m.Submit(Spec{Kind: "keyed", Key: "K"})
	if err != nil {
		t.Fatal(err)
	}
	if follower.AttachedTo != leader.ID {
		t.Fatalf("follower attached_to = %q, want %q", follower.AttachedTo, leader.ID)
	}
	// The follower holds no slot: a depth-1 queue still accepts one more.
	other, err := m.Submit(Spec{Kind: "other"})
	if err != nil {
		t.Fatalf("attached follower consumed the queue slot: %v", err)
	}

	close(release)
	waitState(t, m, leader.ID, StateDone)
	waitState(t, m, follower.ID, StateDone)
	waitState(t, m, other.ID, StateDone)
	met := m.Metrics()
	if met.Attached != 1 {
		t.Errorf("attached counter = %d, want 1", met.Attached)
	}
	var res struct {
		Job string `json:"job"`
	}
	snap, _ := m.Get(follower.ID)
	if err := json.Unmarshal(snap.Result, &res); err != nil || res.Job != follower.ID {
		t.Errorf("follower result = %s (%v), want its own run's document", snap.Result, err)
	}
}

// TestAttachLeaderCanceled: canceling a leader re-admits its followers
// through the queue, and they complete on their own.
func TestAttachLeaderCanceled(t *testing.T) {
	g := newGateRunner()
	g.gate("leader") // leader blocks until ctx-canceled
	m := NewManager(Config{Depth: 2, Workers: 1, Run: g.run})
	defer m.Close()

	leader, err := m.Submit(Spec{Kind: "leader", Key: "K"})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	follower, err := m.Submit(Spec{Kind: "follower", Key: "K"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(leader.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, leader.ID, StateCanceled)
	final := waitState(t, m, follower.ID, StateDone)
	if final.AttachedTo != "" {
		t.Errorf("re-admitted follower still reports attached_to %q", final.AttachedTo)
	}
	if !g.didRun(follower.ID) {
		t.Error("re-admitted follower never executed")
	}
}

// TestCancelAttachedFollower: canceling an attached follower settles it
// immediately and the leader is unaffected.
func TestCancelAttachedFollower(t *testing.T) {
	g := newGateRunner()
	release := g.gate("keyed")
	m := NewManager(Config{Depth: 2, Workers: 1, Run: g.run})
	defer m.Close()

	leader, err := m.Submit(Spec{Kind: "keyed", Key: "K"})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	follower, err := m.Submit(Spec{Kind: "keyed", Key: "K"})
	if err != nil {
		t.Fatal(err)
	}
	if snap, err := m.Cancel(follower.ID); err != nil || snap.State != StateCanceled {
		t.Fatalf("cancel attached follower = %+v, %v", snap, err)
	}
	close(release)
	waitState(t, m, leader.ID, StateDone)
	time.Sleep(20 * time.Millisecond)
	if g.didRun(follower.ID) {
		t.Error("canceled follower was executed after leader finished")
	}
}

// TestFailedJob: a Runner error surfaces as failed with the mapped code.
func TestFailedJob(t *testing.T) {
	sentinel := errors.New("boom")
	m := NewManager(Config{Depth: 4, Workers: 1,
		Run: func(ctx context.Context, snap Snapshot, progress func(int, int)) (json.RawMessage, error) {
			return nil, sentinel
		},
		CodeOf: func(err error) string {
			if errors.Is(err, sentinel) {
				return "invalid_request"
			}
			return "internal"
		},
	})
	defer m.Close()
	snap, err := m.Submit(Spec{Kind: "bad"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, snap.ID, StateFailed)
	if final.Error == nil || final.Error.Code != "invalid_request" || final.Error.Message != "boom" {
		t.Errorf("failed job error = %+v", final.Error)
	}
	if met := m.Metrics(); met.Failed != 1 {
		t.Errorf("failed counter = %d, want 1", met.Failed)
	}
}

// TestTTLPurge: finished jobs vanish after the TTL; running jobs are
// retained.
func TestTTLPurge(t *testing.T) {
	g := newGateRunner()
	g.gate("held")
	m := NewManager(Config{Depth: 4, Workers: 2, TTL: 10 * time.Millisecond, GCInterval: 5 * time.Millisecond, Run: g.run})
	defer m.Close()

	done, err := m.Submit(Spec{Kind: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	held, err := m.Submit(Spec{Kind: "held"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, done.ID, StateDone)

	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := m.Get(done.ID); errors.Is(err, ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job not purged after TTL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := m.Get(held.ID); err != nil {
		t.Errorf("running job purged: %v", err)
	}
}

// TestEvents: subscribers replay history and receive live transitions;
// progress events collapse in history but stream live.
func TestEvents(t *testing.T) {
	progressed := make(chan struct{})
	release := make(chan struct{})
	m := NewManager(Config{Depth: 4, Workers: 1,
		Run: func(ctx context.Context, snap Snapshot, progress func(int, int)) (json.RawMessage, error) {
			progress(1, 3)
			progress(2, 3)
			close(progressed)
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return json.RawMessage(`{"ok":true}`), nil
		},
	})
	defer m.Close()

	snap, err := m.Submit(Spec{Kind: "ev"})
	if err != nil {
		t.Fatal(err)
	}
	<-progressed
	history, ch, cancel, err := m.Subscribe(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	// History: queued state, running state, one collapsed progress.
	var progressEvents, stateEvents int
	for _, ev := range history {
		switch ev.Name {
		case "progress":
			progressEvents++
		case "state":
			stateEvents++
		}
	}
	if stateEvents != 2 || progressEvents != 1 {
		t.Fatalf("history = %d state / %d progress events, want 2/1 (collapsed)", stateEvents, progressEvents)
	}
	var last struct {
		Done, Total int
	}
	if err := json.Unmarshal(history[len(history)-1].Data, &last); err != nil || last.Done != 2 {
		t.Errorf("collapsed progress = %+v (%v), want latest point (2/3)", last, err)
	}

	close(release)
	var sawDone bool
	for ev := range ch {
		if ev.Name == "state" {
			var sd struct {
				State State `json:"state"`
			}
			json.Unmarshal(ev.Data, &sd)
			if sd.State == StateDone {
				sawDone = true
			}
		}
	}
	if !sawDone {
		t.Error("live channel closed without delivering the done state")
	}

	// Subscribing to a terminal job: history only, nil channel.
	history2, ch2, _, err := m.Subscribe(snap.ID)
	if err != nil || ch2 != nil || len(history2) == 0 {
		t.Errorf("terminal subscribe = %d events, ch=%v, err=%v", len(history2), ch2, err)
	}
}

// TestListFilter: state/kind filters and the recency limit.
func TestListFilter(t *testing.T) {
	g := newGateRunner()
	g.gate("held")
	m := NewManager(Config{Depth: 8, Workers: 1, Run: g.run})
	defer m.Close()

	held, _ := m.Submit(Spec{Kind: "held"})
	<-g.started
	var quick []Snapshot
	for i := 0; i < 3; i++ {
		s, err := m.Submit(Spec{Kind: "quick"})
		if err != nil {
			t.Fatal(err)
		}
		quick = append(quick, s)
	}
	canceled, _ := m.Submit(Spec{Kind: "quick"})
	m.Cancel(canceled.ID)
	waitState(t, m, canceled.ID, StateCanceled)

	if got := m.List(Filter{Kind: "held"}); len(got) != 1 || got[0].ID != held.ID {
		t.Errorf("kind filter returned %d jobs", len(got))
	}
	if got := m.List(Filter{State: StateCanceled}); len(got) != 1 || got[0].ID != canceled.ID {
		t.Errorf("state filter returned %d jobs", len(got))
	}
	if got := m.List(Filter{Limit: 2}); len(got) != 2 || got[1].ID != canceled.ID {
		t.Errorf("limit filter = %d jobs, want the 2 most recent", len(got))
	}
	if got := m.List(Filter{}); len(got) != 5 {
		t.Errorf("unfiltered list = %d jobs, want 5", len(got))
	} else if got[0].Request != nil || got[0].Result != nil {
		t.Error("list snapshots must omit request/result payloads")
	}
	_ = quick
}

// TestCloseCancelsRunning: Close cancels in-flight runners and rejects
// new submissions.
func TestCloseCancelsRunning(t *testing.T) {
	g := newGateRunner()
	g.gate("held")
	m := NewManager(Config{Depth: 4, Workers: 1, Run: g.run})
	snap, err := m.Submit(Spec{Kind: "held"})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	m.Close()
	waitState(t, m, snap.ID, StateCanceled)
	if _, err := m.Submit(Spec{Kind: "late"}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
}

// TestConcurrentChurn hammers submit/cancel/get from many goroutines;
// meaningful under -race.
func TestConcurrentChurn(t *testing.T) {
	var runs atomic.Int64
	m := NewManager(Config{Depth: 64, Workers: 4,
		Run: func(ctx context.Context, snap Snapshot, progress func(int, int)) (json.RawMessage, error) {
			runs.Add(1)
			progress(1, 1)
			return json.RawMessage(`{}`), nil
		},
	})
	defer m.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				snap, err := m.Submit(Spec{Kind: "churn", Key: fmt.Sprintf("k%d", i%5), Priority: i % 3})
				if errors.Is(err, ErrFull) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				switch i % 4 {
				case 0:
					m.Cancel(snap.ID)
				case 1:
					m.Get(snap.ID)
				case 2:
					if _, ch, cancel, err := m.Subscribe(snap.ID); err == nil {
						go func() {
							for range ch {
							}
						}()
						defer cancel()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		met := m.Metrics()
		if met.Depth == 0 && met.Running == 0 {
			if met.Done+met.Failed+met.Canceled != met.Submitted {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("queue never drained: %+v", m.Metrics())
}
