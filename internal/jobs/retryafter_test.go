package jobs

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestHistogramQuantile pins the bucket-upper-bound estimator: empty
// histograms answer 0, observations land in the bucket whose bound
// covers them, and the overflow bucket reports twice the last finite
// bound.
func TestHistogramQuantile(t *testing.T) {
	h := Histogram{BucketMS: latencyBucketsMS, Counts: make([]int64, len(latencyBucketsMS)+1)}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}
	// Ten fast observations and two slow ones: the median lives in the
	// 5ms bucket, the p99 in the 2500ms bucket.
	for i := 0; i < 10; i++ {
		h.observe(3 * time.Millisecond)
	}
	h.observe(2 * time.Second)
	h.observe(2 * time.Second)
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("p50 = %v, want 5 (the covering bucket's bound)", got)
	}
	if got := h.Quantile(0.99); got != 2500 {
		t.Errorf("p99 = %v, want 2500", got)
	}
	// Overflow-only data reports the larger of the doubled last bound
	// and the observed mean — here the mean (10s ≫ 2×2500ms).
	h2 := Histogram{BucketMS: latencyBucketsMS, Counts: make([]int64, len(latencyBucketsMS)+1)}
	h2.observe(10 * time.Second)
	if got := h2.Quantile(0.5); got != 10000 {
		t.Errorf("overflow Quantile = %v, want the 10000ms mean", got)
	}
	// Overflow observations just past the last bound keep the doubled
	// bound (the mean would under-estimate the tail).
	h3 := Histogram{BucketMS: latencyBucketsMS, Counts: make([]int64, len(latencyBucketsMS)+1)}
	h3.observe(3 * time.Second)
	if got := h3.Quantile(0.5); got != 2*latencyBucketsMS[len(latencyBucketsMS)-1] {
		t.Errorf("overflow Quantile = %v, want %v", got, 2*latencyBucketsMS[len(latencyBucketsMS)-1])
	}
}

// TestRetryAfterClamped pins the shed hint's clamp: at least a second
// with an empty (or fast) histogram, capped at 30s however slow the
// queue, whole seconds in between.
func TestRetryAfterClamped(t *testing.T) {
	m := NewManager(Config{Run: func(ctx context.Context, snap Snapshot, progress func(int, int)) (json.RawMessage, error) {
		return nil, nil
	}})
	defer m.Close()
	if got := m.RetryAfter(); got != time.Second {
		t.Errorf("empty-histogram RetryAfter = %v, want 1s", got)
	}
	m.mu.Lock()
	m.hist.observe(90 * time.Second) // queue drains glacially
	m.mu.Unlock()
	if got := m.RetryAfter(); got != 30*time.Second {
		t.Errorf("slow-queue RetryAfter = %v, want the 30s cap", got)
	}
	m2 := NewManager(Config{Run: func(ctx context.Context, snap Snapshot, progress func(int, int)) (json.RawMessage, error) {
		return nil, nil
	}})
	defer m2.Close()
	m2.mu.Lock()
	for i := 0; i < 10; i++ {
		m2.hist.observe(2 * time.Second) // p50 -> 2500ms bucket
	}
	m2.mu.Unlock()
	if got := m2.RetryAfter(); got != 3*time.Second {
		t.Errorf("RetryAfter = %v, want 3s (2500ms rounded up)", got)
	}
}
