package jobs

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"
)

// TestSpeculationNeverPreemptsQueuedWork is the load-shedding
// acceptance: saturate the queue with blocked jobs and assert zero
// speculation hook runs while anything is queued — idle-slot
// speculation must strictly yield to admitted work.
func TestSpeculationNeverPreemptsQueuedWork(t *testing.T) {
	release := make(chan struct{})
	var queued atomic.Int64 // jobs admitted but not yet started
	var specCalls atomic.Int64
	var violations atomic.Int64

	m := NewManager(Config{
		Workers: 2,
		Run: func(ctx context.Context, snap Snapshot, progress func(int, int)) (json.RawMessage, error) {
			queued.Add(-1)
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return json.RawMessage(`{}`), nil
		},
		Speculate: func(ctx context.Context) bool {
			specCalls.Add(1)
			if queued.Load() > 0 {
				violations.Add(1)
			}
			return false
		},
	})
	defer m.Close()

	const jobs = 6 // 2 run, 4 sit in the queue
	ids := make([]string, jobs)
	for i := range ids {
		queued.Add(1)
		snap, err := m.Submit(Spec{Kind: "work"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = snap.ID
	}
	// Poke the workers; with a saturated queue this must not produce a
	// speculative start.
	m.Kick()
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) && m.Metrics().Depth > 0 {
		if specCalls.Load() > 0 && violations.Load() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("speculation hook ran %d times while jobs were queued", v)
	}

	// Once the queue drains, idle workers do offer their slots.
	m.Kick()
	deadline = time.Now().Add(2 * time.Second)
	for specCalls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if specCalls.Load() == 0 {
		t.Fatal("idle workers never offered a slot to the speculation hook")
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("speculation hook ran %d times while jobs were queued", v)
	}
}

// TestSpeculationPreemptedOnAdmission: a speculation hook in flight has
// its context canceled the moment real work is admitted, and the
// admitted job still runs promptly on the single worker.
func TestSpeculationPreemptedOnAdmission(t *testing.T) {
	var canceled atomic.Bool
	hookRunning := make(chan struct{}, 1)
	m := NewManager(Config{
		Workers: 1,
		Run: func(ctx context.Context, snap Snapshot, progress func(int, int)) (json.RawMessage, error) {
			return json.RawMessage(`{}`), nil
		},
		Speculate: func(ctx context.Context) bool {
			select {
			case hookRunning <- struct{}{}:
			default:
			}
			select {
			case <-ctx.Done():
				canceled.Store(true)
				return true
			case <-time.After(5 * time.Second):
				return false
			}
		},
	})
	defer m.Close()

	m.Kick()
	select {
	case <-hookRunning:
	case <-time.After(2 * time.Second):
		t.Fatal("speculation hook never started on the idle worker")
	}
	snap, err := m.Submit(Spec{Kind: "work"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateDone)
	if !canceled.Load() {
		t.Fatal("admission did not cancel the in-flight speculation hook")
	}
	if got := m.Metrics().Speculations; got < 1 {
		t.Fatalf("Speculations = %d, want >= 1 (the hook reported work)", got)
	}
}

// TestSpeculationCloseUnblocks: Close cancels an in-flight hook and the
// workers exit instead of re-polling a hook that keeps reporting work.
func TestSpeculationCloseUnblocks(t *testing.T) {
	hookRunning := make(chan struct{}, 1)
	m := NewManager(Config{
		Workers: 1,
		Run: func(ctx context.Context, snap Snapshot, progress func(int, int)) (json.RawMessage, error) {
			return json.RawMessage(`{}`), nil
		},
		Speculate: func(ctx context.Context) bool {
			select {
			case hookRunning <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return true
		},
	})
	m.Kick()
	select {
	case <-hookRunning:
	case <-time.After(2 * time.Second):
		t.Fatal("speculation hook never started")
	}
	done := make(chan struct{})
	go func() { m.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung on an in-flight speculation hook")
	}
}
