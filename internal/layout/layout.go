// Package layout tracks where every qubit sits on the zoned architecture
// and enforces the occupancy rules of Sec. 5.1 of the paper: a site can
// hold two interacting qubits, one non-interacting qubit, or be empty.
//
// The continuous router plans against a Layout, mutates it as it commits
// movement decisions, and the executor re-validates the same invariants
// independently at every Rydberg pulse. Occupancy lives in a flat slice
// indexed by arch.SiteIndex — layout updates are on the compiler's
// per-stage hot path.
package layout

import (
	"fmt"
	"sort"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/geom"
)

// unplaced is the per-qubit sentinel site index.
const unplaced = -1

// Layout is a mutable assignment of qubits to sites.
type Layout struct {
	arch *arch.Arch
	pos  []int   // qubit -> site index, or unplaced
	occ  [][]int // site index -> qubits (sorted, usually <= 2)
}

// New returns a layout for n qubits with nobody placed yet. Qubits must be
// placed with Place before any other method touches them.
func New(a *arch.Arch, n int) *Layout {
	if n <= 0 {
		panic(fmt.Sprintf("layout: non-positive qubit count %d", n))
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = unplaced
	}
	return &Layout{arch: a, pos: pos, occ: make([][]int, a.TotalSites())}
}

// Arch returns the architecture this layout lives on.
func (l *Layout) Arch() *arch.Arch { return l.arch }

// Qubits returns the number of qubits tracked.
func (l *Layout) Qubits() int { return len(l.pos) }

// Placed reports whether qubit q has been assigned a site.
func (l *Layout) Placed(q int) bool { return l.pos[q] != unplaced }

// SiteOf returns the site of qubit q. It panics if q is unplaced.
func (l *Layout) SiteOf(q int) arch.Site {
	if !l.Placed(q) {
		panic(fmt.Sprintf("layout: qubit %d is unplaced", q))
	}
	return l.arch.SiteAt(l.pos[q])
}

// IndexOf returns the arch.SiteIndex of qubit q's site — the layout's
// native representation, so the router's hot path compares and stores
// plain ints instead of materializing Sites. It panics if q is unplaced.
func (l *Layout) IndexOf(q int) int {
	if !l.Placed(q) {
		panic(fmt.Sprintf("layout: qubit %d is unplaced", q))
	}
	return l.pos[q]
}

// PosOf returns the physical position of qubit q, in micrometres.
func (l *Layout) PosOf(q int) geom.Point { return l.arch.Pos(l.SiteOf(q)) }

// Zone returns the zone qubit q currently sits in.
func (l *Layout) Zone(q int) arch.Zone { return l.SiteOf(q).Zone }

// At returns the qubits occupying site s, sorted ascending. The returned
// slice is owned by the layout and must not be mutated.
func (l *Layout) At(s arch.Site) []int { return l.occ[l.arch.SiteIndex(s)] }

// Occupancy returns the number of qubits at site s.
func (l *Layout) Occupancy(s arch.Site) int { return len(l.occ[l.arch.SiteIndex(s)]) }

// Place puts qubit q on site s. It panics if q is already placed or if s
// is out of bounds.
func (l *Layout) Place(q int, s arch.Site) {
	if l.Placed(q) {
		panic(fmt.Sprintf("layout: qubit %d already placed at %v", q, l.SiteOf(q)))
	}
	l.attach(q, s)
}

// Move relocates qubit q to site s. It panics if q is unplaced or s is
// out of bounds.
//
// Occupancy limits are deliberately not enforced here: a multi-step layout
// transition may pass a qubit through a still-occupied site before its
// resident departs in a later collective move. The two-qubits-per-site
// rule is physical only at Rydberg pulses, where Validate enforces it.
func (l *Layout) Move(q int, s arch.Site) {
	if !l.Placed(q) {
		panic(fmt.Sprintf("layout: cannot move unplaced qubit %d", q))
	}
	if l.pos[q] == l.arch.SiteIndex(s) {
		return
	}
	l.detach(q)
	l.attach(q, s)
}

func (l *Layout) attach(q int, s arch.Site) {
	idx := l.arch.SiteIndex(s)
	residents := append(l.occ[idx], q)
	sort.Ints(residents)
	l.occ[idx] = residents
	l.pos[q] = idx
}

func (l *Layout) detach(q int) {
	idx := l.pos[q]
	residents := l.occ[idx]
	for i, r := range residents {
		if r == q {
			l.occ[idx] = append(residents[:i], residents[i+1:]...)
			break
		}
	}
	l.pos[q] = unplaced
}

// BulkMove relocates several qubits at once: all movers are detached
// before any is re-attached, so swaps and chains apply cleanly. Like Move,
// it does not enforce occupancy limits; Validate does, at Rydberg time.
func (l *Layout) BulkMove(targets map[int]arch.Site) {
	order := make([]int, 0, len(targets))
	for q := range targets {
		if !l.Placed(q) {
			panic(fmt.Sprintf("layout: cannot move unplaced qubit %d", q))
		}
		l.detach(q)
		order = append(order, q)
	}
	// Attach in ascending qubit order for determinism.
	sort.Ints(order)
	for _, q := range order {
		l.attach(q, targets[q])
	}
}

// BulkMoveSorted is the allocation-free variant of BulkMove for callers
// that already hold their movers in ascending qubit order (the router's
// finish pass): qubits[i] relocates to sites[i]. All movers are detached
// before any is re-attached, exactly like BulkMove, and the ascending
// order reproduces BulkMove's deterministic attach order. It panics if
// the slices disagree in length, a qubit is unplaced, or the qubit order
// is not strictly ascending.
func (l *Layout) BulkMoveSorted(qubits []int, sites []arch.Site) {
	if len(qubits) != len(sites) {
		panic(fmt.Sprintf("layout: %d qubits for %d sites", len(qubits), len(sites)))
	}
	for i, q := range qubits {
		if i > 0 && qubits[i-1] >= q {
			panic(fmt.Sprintf("layout: BulkMoveSorted qubits not ascending at %d", i))
		}
		if !l.Placed(q) {
			panic(fmt.Sprintf("layout: cannot move unplaced qubit %d", q))
		}
		l.detach(q)
	}
	for i, q := range qubits {
		l.attach(q, sites[i])
	}
}

// Clone returns an independent deep copy of the layout.
func (l *Layout) Clone() *Layout {
	out := &Layout{
		arch: l.arch,
		pos:  append([]int(nil), l.pos...),
		occ:  make([][]int, len(l.occ)),
	}
	for i, qs := range l.occ {
		if len(qs) > 0 {
			out.occ[i] = append([]int(nil), qs...)
		}
	}
	return out
}

// InZone returns the qubits currently in zone z, sorted ascending.
func (l *Layout) InZone(z arch.Zone) []int {
	var out []int
	for q := range l.pos {
		if l.Placed(q) && l.Zone(q) == z {
			out = append(out, q)
		}
	}
	return out
}

// EmptySitesByDistance returns the empty sites of zone z ordered by
// Euclidean distance from p (ties broken by row, then column). The router
// uses this ordering for the nearest-empty-site searches of Sec. 5.2
// steps 1 and 3.
func (l *Layout) EmptySitesByDistance(z arch.Zone, p geom.Point) []arch.Site {
	var out []arch.Site
	for _, s := range l.arch.Sites(z) {
		if l.Occupancy(s) == 0 {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		di := l.arch.Pos(out[i]).Dist(p)
		dj := l.arch.Pos(out[j]).Dist(p)
		if di != dj {
			return di < dj
		}
		if out[i].Row != out[j].Row {
			return out[i].Row < out[j].Row
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// Validate checks the global occupancy invariants against the set of CZ
// pairs scheduled for the next Rydberg pulse: every qubit placed in
// bounds, no site with more than two qubits, and every doubly-occupied
// site holding exactly one scheduled pair, co-located in the computation
// zone. It returns the first violation found, or nil.
func (l *Layout) Validate(pairs []circuit.CZ) error {
	paired := make(map[int]int, 2*len(pairs))
	for _, g := range pairs {
		paired[g.A] = g.B
		paired[g.B] = g.A
	}
	for q := range l.pos {
		if !l.Placed(q) {
			return fmt.Errorf("layout: qubit %d unplaced", q)
		}
	}
	for idx, qs := range l.occ {
		switch len(qs) {
		case 0, 1:
			// Empty sites and lone qubits are fine anywhere.
		case 2:
			s := l.arch.SiteAt(idx)
			partner, ok := paired[qs[0]]
			if !ok || partner != qs[1] {
				return fmt.Errorf("layout: site %v holds non-interacting qubits %v", s, qs)
			}
			if s.Zone != arch.Compute {
				return fmt.Errorf("layout: interacting pair %v at storage site %v", qs, s)
			}
		default:
			return fmt.Errorf("layout: site %v holds %d qubits %v", l.arch.SiteAt(idx), len(qs), qs)
		}
	}
	for _, g := range pairs {
		sa, sb := l.SiteOf(g.A), l.SiteOf(g.B)
		if sa != sb {
			return fmt.Errorf("layout: pair %v split across %v and %v", g, sa, sb)
		}
	}
	return nil
}

// PlaceAll places qubits 0..n-1 in row-major order starting from row 0 of
// zone z. This is the initial layout of Sec. 4.2 (all qubits in storage
// for the zoned pipeline) and the home layout of the Enola baseline (all
// qubits in the computation zone). It panics if the zone cannot hold the
// qubits one per site.
func (l *Layout) PlaceAll(z arch.Zone) {
	sites := l.arch.Sites(z)
	if len(sites) < len(l.pos) {
		panic(fmt.Sprintf("layout: zone %v has %d sites for %d qubits", z, len(sites), len(l.pos)))
	}
	for q := range l.pos {
		l.Place(q, sites[q])
	}
}
