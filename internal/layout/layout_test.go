package layout

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"powermove/internal/arch"
	"powermove/internal/circuit"
)

func testArch() *arch.Arch { return arch.New(arch.Config{Qubits: 9}) }

func TestPlaceAndQueries(t *testing.T) {
	a := testArch()
	l := New(a, 3)
	if l.Placed(0) {
		t.Error("fresh qubit reported placed")
	}
	s := arch.Site{Zone: arch.Compute, Row: 1, Col: 2}
	l.Place(0, s)
	if !l.Placed(0) || l.SiteOf(0) != s {
		t.Error("Place did not stick")
	}
	if l.Zone(0) != arch.Compute {
		t.Error("Zone wrong")
	}
	if got := l.PosOf(0); got != a.Pos(s) {
		t.Errorf("PosOf = %v, want %v", got, a.Pos(s))
	}
	if got := l.At(s); len(got) != 1 || got[0] != 0 {
		t.Errorf("At = %v", got)
	}
	if l.Occupancy(s) != 1 {
		t.Error("Occupancy wrong")
	}
}

func TestPlacePanics(t *testing.T) {
	l := New(testArch(), 2)
	l.Place(0, arch.Site{Zone: arch.Compute, Row: 0, Col: 0})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Place did not panic")
			}
		}()
		l.Place(0, arch.Site{Zone: arch.Compute, Row: 0, Col: 1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Place out of bounds did not panic")
			}
		}()
		l.Place(1, arch.Site{Zone: arch.Compute, Row: 99, Col: 0})
	}()
}

func TestMove(t *testing.T) {
	l := New(testArch(), 2)
	s0 := arch.Site{Zone: arch.Compute, Row: 0, Col: 0}
	s1 := arch.Site{Zone: arch.Storage, Row: 3, Col: 1}
	l.Place(0, s0)
	l.Move(0, s1)
	if l.SiteOf(0) != s1 {
		t.Error("Move did not relocate")
	}
	if l.Occupancy(s0) != 0 {
		t.Error("Move left ghost occupancy behind")
	}
	l.Move(0, s1) // no-op move to same site
	if l.Occupancy(s1) != 1 {
		t.Error("self-move corrupted occupancy")
	}
	defer func() {
		if recover() == nil {
			t.Error("Move of unplaced qubit did not panic")
		}
	}()
	l.Move(1, s0)
}

func TestCohabitationSorted(t *testing.T) {
	l := New(testArch(), 3)
	s := arch.Site{Zone: arch.Compute, Row: 0, Col: 0}
	l.Place(2, s)
	l.Place(0, s)
	got := l.At(s)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("At = %v, want [0 2] sorted", got)
	}
}

// TestBulkMoveSwap: two qubits exchanging sites must not interfere.
func TestBulkMoveSwap(t *testing.T) {
	l := New(testArch(), 2)
	s0 := arch.Site{Zone: arch.Compute, Row: 0, Col: 0}
	s1 := arch.Site{Zone: arch.Compute, Row: 0, Col: 1}
	l.Place(0, s0)
	l.Place(1, s1)
	l.BulkMove(map[int]arch.Site{0: s1, 1: s0})
	if l.SiteOf(0) != s1 || l.SiteOf(1) != s0 {
		t.Error("swap failed")
	}
	if l.Occupancy(s0) != 1 || l.Occupancy(s1) != 1 {
		t.Error("swap corrupted occupancy")
	}
}

func TestBulkMovePanicsOnUnplaced(t *testing.T) {
	l := New(testArch(), 2)
	defer func() {
		if recover() == nil {
			t.Error("BulkMove of unplaced qubit did not panic")
		}
	}()
	l.BulkMove(map[int]arch.Site{0: {Zone: arch.Compute, Row: 0, Col: 0}})
}

func TestCloneIsolation(t *testing.T) {
	l := New(testArch(), 2)
	l.PlaceAll(arch.Compute)
	c := l.Clone()
	c.Move(0, arch.Site{Zone: arch.Storage, Row: 0, Col: 0})
	if l.Zone(0) != arch.Compute {
		t.Error("Clone shares state with original")
	}
	if c.Zone(0) != arch.Storage {
		t.Error("Clone move lost")
	}
}

func TestPlaceAll(t *testing.T) {
	l := New(testArch(), 5)
	l.PlaceAll(arch.Storage)
	for q := 0; q < 5; q++ {
		if l.Zone(q) != arch.Storage {
			t.Fatalf("qubit %d not in storage", q)
		}
	}
	// Row-major: qubit 0 at row 0 col 0, qubit 3 at row 1 col 0 (3 cols).
	if l.SiteOf(0) != (arch.Site{Zone: arch.Storage, Row: 0, Col: 0}) {
		t.Errorf("qubit 0 at %v", l.SiteOf(0))
	}
	if l.SiteOf(3) != (arch.Site{Zone: arch.Storage, Row: 1, Col: 0}) {
		t.Errorf("qubit 3 at %v", l.SiteOf(3))
	}
	if got := l.InZone(arch.Storage); len(got) != 5 {
		t.Errorf("InZone(storage) = %v", got)
	}
	if got := l.InZone(arch.Compute); len(got) != 0 {
		t.Errorf("InZone(compute) = %v", got)
	}
}

func TestPlaceAllPanicsWhenZoneTooSmall(t *testing.T) {
	l := New(testArch(), 10) // compute zone has 9 sites
	defer func() {
		if recover() == nil {
			t.Error("PlaceAll into undersized zone did not panic")
		}
	}()
	l.PlaceAll(arch.Compute)
}

func TestEmptySitesByDistanceOrder(t *testing.T) {
	a := testArch()
	l := New(a, 1)
	origin := arch.Site{Zone: arch.Compute, Row: 0, Col: 0}
	l.Place(0, origin)
	sites := l.EmptySitesByDistance(arch.Compute, a.Pos(origin))
	if len(sites) != a.ComputeSites()-1 {
		t.Fatalf("%d empty sites, want %d", len(sites), a.ComputeSites()-1)
	}
	for i := range sites {
		if sites[i] == origin {
			t.Fatal("occupied site listed as empty")
		}
		if i > 0 {
			di := a.Pos(sites[i-1]).Dist(a.Pos(origin))
			dj := a.Pos(sites[i]).Dist(a.Pos(origin))
			if di > dj {
				t.Fatalf("sites not sorted by distance: %v then %v", sites[i-1], sites[i])
			}
		}
	}
	// The two nearest sites are the axis neighbors at one pitch.
	if d := a.Pos(sites[0]).Dist(a.Pos(origin)); d != 15 {
		t.Errorf("nearest empty at distance %v, want 15", d)
	}
}

func TestValidateHappyPath(t *testing.T) {
	l := New(testArch(), 4)
	l.PlaceAll(arch.Compute)
	pair := circuit.NewCZ(0, 1)
	l.Move(0, l.SiteOf(1))
	if err := l.Validate([]circuit.CZ{pair}); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	a := testArch()

	t.Run("unplaced qubit", func(t *testing.T) {
		l := New(a, 2)
		l.Place(0, arch.Site{Zone: arch.Compute, Row: 0, Col: 0})
		if err := l.Validate(nil); err == nil || !strings.Contains(err.Error(), "unplaced") {
			t.Errorf("err = %v", err)
		}
	})

	t.Run("non-interacting cohabitants", func(t *testing.T) {
		l := New(a, 2)
		s := arch.Site{Zone: arch.Compute, Row: 0, Col: 0}
		l.Place(0, s)
		l.Place(1, s)
		if err := l.Validate(nil); err == nil || !strings.Contains(err.Error(), "non-interacting") {
			t.Errorf("err = %v", err)
		}
	})

	t.Run("pair in storage", func(t *testing.T) {
		l := New(a, 2)
		s := arch.Site{Zone: arch.Storage, Row: 0, Col: 0}
		l.Place(0, s)
		l.Place(1, s)
		err := l.Validate([]circuit.CZ{circuit.NewCZ(0, 1)})
		if err == nil || !strings.Contains(err.Error(), "storage") {
			t.Errorf("err = %v", err)
		}
	})

	t.Run("overfull site", func(t *testing.T) {
		l := New(a, 3)
		s := arch.Site{Zone: arch.Compute, Row: 0, Col: 0}
		for q := 0; q < 3; q++ {
			l.Place(q, s)
		}
		err := l.Validate([]circuit.CZ{circuit.NewCZ(0, 1)})
		if err == nil || !strings.Contains(err.Error(), "3 qubits") {
			t.Errorf("err = %v", err)
		}
	})

	t.Run("split pair", func(t *testing.T) {
		l := New(a, 2)
		l.PlaceAll(arch.Compute)
		err := l.Validate([]circuit.CZ{circuit.NewCZ(0, 1)})
		if err == nil || !strings.Contains(err.Error(), "split") {
			t.Errorf("err = %v", err)
		}
	})
}

func TestNewPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0 qubits) did not panic")
		}
	}()
	New(testArch(), 0)
}

// TestOccupancyConsistencyRandomOps: after a random sequence of moves, the
// position index and the occupancy table agree exactly.
func TestOccupancyConsistencyRandomOps(t *testing.T) {
	a := arch.New(arch.Config{Qubits: 20})
	l := New(a, 20)
	l.PlaceAll(arch.Storage)
	rng := rand.New(rand.NewSource(77))
	all := append(append([]arch.Site{}, a.Sites(arch.Compute)...), a.Sites(arch.Storage)...)
	for step := 0; step < 500; step++ {
		q := rng.Intn(20)
		l.Move(q, all[rng.Intn(len(all))])
	}
	counted := 0
	for _, s := range all {
		for _, q := range l.At(s) {
			if l.SiteOf(q) != s {
				t.Fatalf("occupancy lists qubit %d at %v but SiteOf = %v", q, s, l.SiteOf(q))
			}
			counted++
		}
	}
	if counted != 20 {
		t.Fatalf("occupancy covers %d qubits, want 20", counted)
	}
}

// TestBulkMoveEquivalentToSequential: for target sets without transient
// collisions, BulkMove and sequential Move agree — checked via
// testing/quick over random single-qubit relocations to empty sites.
func TestBulkMoveEquivalentToSequential(t *testing.T) {
	a := arch.New(arch.Config{Qubits: 9})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l1 := New(a, 6)
		l1.PlaceAll(arch.Compute)
		l2 := l1.Clone()
		// Move three qubits to distinct empty storage sites.
		targets := make(map[int]arch.Site)
		sites := a.Sites(arch.Storage)
		perm := rng.Perm(len(sites))
		for i, q := range rng.Perm(6)[:3] {
			targets[q] = sites[perm[i]]
		}
		l1.BulkMove(targets)
		for q, s := range targets {
			l2.Move(q, s)
		}
		for q := 0; q < 6; q++ {
			if l1.SiteOf(q) != l2.SiteOf(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
