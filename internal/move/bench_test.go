package move

import (
	"fmt"
	"math/rand"
	"testing"

	"powermove/internal/arch"
)

// benchMoves builds n random 1Q movements across both zones of an
// architecture sized for n qubits: the adversarial, group-heavy case.
func benchMoves(n int) []Move {
	a := arch.New(arch.Config{Qubits: n})
	rng := rand.New(rand.NewSource(7))
	return randomMoves(a, n, rng)
}

// benchShiftMoves builds n movements drawn from a handful of displacement
// vectors — the shape the router actually hands Group on layout
// transitions, where whole rows shift in tandem. Groups are few and
// large, so the per-group compatibility test dominates.
func benchShiftMoves(n int) []Move {
	a := arch.New(arch.Config{Qubits: n})
	rng := rand.New(rand.NewSource(8))
	sites := a.Sites(arch.Compute)
	shifts := [][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}, {1, 1}, {0, 2}}
	moves := make([]Move, 0, n)
	for q := 0; q < n; q++ {
		s := sites[rng.Intn(len(sites))]
		d := shifts[rng.Intn(len(shifts))]
		to := arch.Site{Zone: arch.Compute, Row: s.Row + d[0], Col: s.Col + d[1]}
		if !a.InBounds(to) {
			to = s
		}
		moves = append(moves, New(a, q, s, to))
	}
	return moves
}

// BenchmarkGroup measures the default displacement-bucketed grouping at
// several movement-set sizes and on the structured shift pattern. The
// interval-indexed compatibility test keeps it near-linear; the ISSUE-3
// acceptance gate is >=2x over the O(n^2) pairwise scan at n=1000
// (measured against BenchmarkGroupNaive).
func BenchmarkGroup(b *testing.B) {
	for _, n := range []int{100, 1000, 4000} {
		moves := benchMoves(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Group(moves)
			}
		})
	}
	moves := benchShiftMoves(1000)
	b.Run("shift-n=1000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Group(moves)
		}
	})
}

// BenchmarkGroupNaive runs the pre-index pairwise-scan reference
// (differential_test.go) on the same inputs as BenchmarkGroup, keeping the
// interval index's speedup visible in every bench run — the ratio of the
// two is the tentpole metric of ISSUE 3.
func BenchmarkGroupNaive(b *testing.B) {
	moves := benchMoves(1000)
	b.Run("n=1000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			naiveGroup(moves)
		}
	})
	shift := benchShiftMoves(1000)
	b.Run("shift-n=1000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			naiveGroup(shift)
		}
	})
}

// BenchmarkGroupByDistance measures the ascending-distance first-fit
// ablation baseline on the same movement sets.
func BenchmarkGroupByDistance(b *testing.B) {
	for _, n := range []int{100, 1000, 4000} {
		moves := benchMoves(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				GroupByDistance(moves)
			}
		})
	}
}

// BenchmarkGroupInOrder measures the arrival-order first-fit used by the
// Enola reimplementation.
func BenchmarkGroupInOrder(b *testing.B) {
	for _, n := range []int{100, 1000, 4000} {
		moves := benchMoves(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				GroupInOrder(moves)
			}
		})
	}
}
