package move

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"powermove/internal/arch"
)

// This file pins the interval-indexed grouping (groupIndex) to the naive
// O(n²) pairwise-scan implementations it replaced. The references below
// are verbatim copies of the pre-index algorithms; the property tests
// assert the optimized paths produce *identical* output — same groups,
// same order, same member order — on seeded random movement sets. The
// compiler's reproducibility gate (cmd/experiments -stable) rests on this
// equivalence.

func naiveFitsGroup(g CollMove, m Move) bool {
	for _, other := range g.Moves {
		if Conflicts(other, m) {
			return false
		}
	}
	return true
}

func naiveCompatible(g, b CollMove) bool {
	for _, m := range b.Moves {
		if !naiveFitsGroup(g, m) {
			return false
		}
	}
	return true
}

func naiveGroup(moves []Move) []CollMove {
	type displacement struct{ dx, dy float64 }
	index := make(map[displacement]int)
	var buckets []CollMove
	for _, m := range moves {
		if m.FromSite == m.ToSite {
			continue
		}
		d := displacement{dx: m.To.X - m.From.X, dy: m.To.Y - m.From.Y}
		i, ok := index[d]
		if !ok {
			i = len(buckets)
			index[d] = i
			buckets = append(buckets, CollMove{})
		}
		buckets[i].Moves = append(buckets[i].Moves, m)
	}
	sort.SliceStable(buckets, func(i, j int) bool {
		return buckets[i].MaxDistance() < buckets[j].MaxDistance()
	})

	var groups []CollMove
next:
	for _, b := range buckets {
		for gi := range groups {
			if naiveCompatible(groups[gi], b) {
				groups[gi].Moves = append(groups[gi].Moves, b.Moves...)
				continue next
			}
		}
		groups = append(groups, b)
	}
	return groups
}

func naiveGroupByDistance(moves []Move) []CollMove {
	sorted := make([]Move, 0, len(moves))
	for _, m := range moves {
		if m.FromSite != m.ToSite {
			sorted = append(sorted, m)
		}
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Distance() < sorted[j].Distance()
	})

	var groups []CollMove
next:
	for _, m := range sorted {
		for gi := range groups {
			if naiveFitsGroup(groups[gi], m) {
				groups[gi].Moves = append(groups[gi].Moves, m)
				continue next
			}
		}
		groups = append(groups, CollMove{Moves: []Move{m}})
	}
	return groups
}

func naiveGroupInOrder(moves []Move) []CollMove {
	var groups []CollMove
next:
	for _, m := range moves {
		if m.FromSite == m.ToSite {
			continue
		}
		for gi := range groups {
			if naiveFitsGroup(groups[gi], m) {
				groups[gi].Moves = append(groups[gi].Moves, m)
				continue next
			}
		}
		groups = append(groups, CollMove{Moves: []Move{m}})
	}
	return groups
}

// equalGroups demands full structural equality: group count, group order,
// and member order within every group.
func equalGroups(t *testing.T, name string, trial int, got, want []CollMove) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s trial %d: %d groups, reference has %d", name, trial, len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].Moves, want[i].Moves) {
			t.Fatalf("%s trial %d: group %d differs\n got: %v\nwant: %v",
				name, trial, i, got[i].Moves, want[i].Moves)
		}
	}
}

// TestGroupingsMatchNaiveReference cross-checks all three grouping
// strategies against their pairwise-scan references on random movement
// sets of varying size and structure (fully random, shift-heavy, and
// duplicate-coordinate-heavy).
func TestGroupingsMatchNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	strategies := []struct {
		name      string
		fast, ref func([]Move) []CollMove
	}{
		{"Group", Group, naiveGroup},
		{"GroupByDistance", GroupByDistance, naiveGroupByDistance},
		{"GroupInOrder", GroupInOrder, naiveGroupInOrder},
	}
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(150)
		a := arch.New(arch.Config{Qubits: 16 + rng.Intn(100)})
		var moves []Move
		switch trial % 3 {
		case 0: // fully random endpoints
			moves = randomMoves(a, n, rng)
		case 1: // shift-heavy: a few displacement vectors dominate
			sites := a.Sites(arch.Compute)
			for q := 0; q < n; q++ {
				s := sites[rng.Intn(len(sites))]
				d := arch.Site{
					Zone: arch.Compute,
					Row:  s.Row + rng.Intn(3) - 1,
					Col:  s.Col + rng.Intn(3) - 1,
				}
				if !a.InBounds(d) {
					d = s
				}
				moves = append(moves, New(a, q, s, d))
			}
		default: // repeated start coordinates across zones
			cs := a.Sites(arch.Compute)
			ss := a.Sites(arch.Storage)
			for q := 0; q < n; q++ {
				from := cs[rng.Intn(len(cs))%4]
				to := ss[rng.Intn(len(ss))]
				moves = append(moves, New(a, q, from, to))
			}
		}
		for _, s := range strategies {
			equalGroups(t, s.name, trial, s.fast(moves), s.ref(moves))
		}
	}
}

// TestGroupIndexMatchesFitsGroup drives the per-group index directly: a
// random conflict-free group is built move by move, and at every step the
// index's verdict on a fresh candidate must equal the pairwise scan's.
func TestGroupIndexMatchesFitsGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := arch.New(arch.Config{Qubits: 49})
	for trial := 0; trial < 200; trial++ {
		g := CollMove{}
		ix := &groupIndex{}
		for step := 0; step < 80; step++ {
			m := randomMoves(a, 1, rng)[0]
			if m.FromSite == m.ToSite {
				continue
			}
			want := naiveFitsGroup(g, m)
			if got := ix.fits(&m); got != want {
				t.Fatalf("trial %d step %d: index fits=%v, pairwise=%v (group %v, move %v)",
					trial, step, got, want, g.Moves, m)
			}
			if want {
				g.Moves = append(g.Moves, m)
				ix.add(&m)
			}
		}
	}
}
