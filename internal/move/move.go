// Package move defines single-qubit movements, the AOD conflict predicate
// of Sec. 5.3 / Fig. 5 of the paper, and the distance-aware grouping that
// packs conflict-free 1Q movements into collective moves (Coll-Moves).
package move

import (
	"fmt"
	"sort"

	"powermove/internal/arch"
	"powermove/internal/geom"
	"powermove/internal/phys"
)

// Move is one qubit's relocation between two sites, annotated with the
// physical endpoint coordinates the conflict predicate operates on.
type Move struct {
	// Qubit is the moved qubit.
	Qubit int
	// FromSite and ToSite are the grid endpoints.
	FromSite, ToSite arch.Site
	// From and To are the physical endpoints in micrometres.
	From, To geom.Point
}

// New builds a Move for qubit q between the two sites of a.
func New(a *arch.Arch, q int, from, to arch.Site) Move {
	return Move{
		Qubit:    q,
		FromSite: from,
		ToSite:   to,
		From:     a.Pos(from),
		To:       a.Pos(to),
	}
}

// Distance returns the Euclidean length of the move, in micrometres.
func (m Move) Distance() float64 { return m.From.Dist(m.To) }

// Duration returns the time the move takes under the acceleration limit,
// in microseconds.
func (m Move) Duration() float64 { return phys.MoveTime(m.Distance()) }

// CrossesZones reports whether the move transfers the qubit between the
// computation and storage zones.
func (m Move) CrossesZones() bool { return m.FromSite.Zone != m.ToSite.Zone }

// IntoStorage reports whether the move brings the qubit into storage.
func (m Move) IntoStorage() bool {
	return m.FromSite.Zone == arch.Compute && m.ToSite.Zone == arch.Storage
}

// OutOfStorage reports whether the move takes the qubit out of storage.
func (m Move) OutOfStorage() bool {
	return m.FromSite.Zone == arch.Storage && m.ToSite.Zone == arch.Compute
}

// String implements fmt.Stringer.
func (m Move) String() string {
	return fmt.Sprintf("q%d: %v -> %v", m.Qubit, m.FromSite, m.ToSite)
}

// Conflicts implements the conflict predicate of Sec. 5.3: two 1Q moves
// conflict when the relative order of their x or y coordinates changes
// between start and end. Rows and columns of one AOD array move in tandem
// and may stretch or contract but never cross or merge (Fig. 2c), so a
// pair of moves can share a Coll-Move only if the sign of their coordinate
// difference is preserved on both axes. This covers all three panels of
// Fig. 5: order inversions and start-distinct/end-equal merges conflict,
// and start-equal coordinates must stay equal.
func Conflicts(m1, m2 Move) bool {
	if geom.Sign(m1.From.X-m2.From.X) != geom.Sign(m1.To.X-m2.To.X) {
		return true
	}
	if geom.Sign(m1.From.Y-m2.From.Y) != geom.Sign(m1.To.Y-m2.To.Y) {
		return true
	}
	return false
}

// CollMove is one collective move: a set of pairwise conflict-free 1Q
// movements that a single AOD array executes together. Its duration is
// governed by its longest member.
type CollMove struct {
	Moves []Move
}

// Duration returns the movement time of the Coll-Move: the duration of its
// longest 1Q move (rows and columns travel simultaneously).
func (c CollMove) Duration() float64 {
	max := 0.0
	for _, m := range c.Moves {
		if d := m.Duration(); d > max {
			max = d
		}
	}
	return max
}

// MaxDistance returns the longest 1Q movement distance in the Coll-Move.
func (c CollMove) MaxDistance() float64 {
	max := 0.0
	for _, m := range c.Moves {
		if d := m.Distance(); d > max {
			max = d
		}
	}
	return max
}

// NetStorageFlow returns (move-ins - move-outs) with respect to the
// storage zone, the sort key of the intra-stage scheduler (Sec. 6.1).
func (c CollMove) NetStorageFlow() int {
	flow := 0
	for _, m := range c.Moves {
		if m.IntoStorage() {
			flow++
		} else if m.OutOfStorage() {
			flow--
		}
	}
	return flow
}

// Valid reports whether every pair of member moves is conflict-free.
func (c CollMove) Valid() bool {
	for i := range c.Moves {
		for j := i + 1; j < len(c.Moves); j++ {
			if Conflicts(c.Moves[i], c.Moves[j]) {
				return false
			}
		}
	}
	return true
}

// Group packs the given 1Q movements into Coll-Moves. It strengthens the
// distance-aware greedy of Sec. 5.3 with a structural observation: two
// moves with the *same displacement vector* can never conflict (the sign
// of their coordinate differences is translation-invariant), so moves are
// first bucketed by displacement — each bucket is a conflict-free
// Coll-Move by construction — and buckets are then greedily merged, in
// ascending order of their longest member, whenever no cross-bucket pair
// conflicts. The ascending-distance merge order preserves the paper's
// goal of grouping movements of similar length, which suppresses the
// per-group maximum distance and hence total movement time, while the
// bucketing collapses the uniform shift patterns that dominate real
// layout transitions into very few Coll-Moves.
//
// Zero-length moves are dropped: a qubit that stays put needs no AOD.
func Group(moves []Move) []CollMove {
	type displacement struct{ dx, dy float64 }
	index := make(map[displacement]int)
	var buckets []CollMove
	for _, m := range moves {
		if m.FromSite == m.ToSite {
			continue
		}
		d := displacement{dx: m.To.X - m.From.X, dy: m.To.Y - m.From.Y}
		i, ok := index[d]
		if !ok {
			i = len(buckets)
			index[d] = i
			buckets = append(buckets, CollMove{})
		}
		buckets[i].Moves = append(buckets[i].Moves, m)
	}
	sort.SliceStable(buckets, func(i, j int) bool {
		return buckets[i].MaxDistance() < buckets[j].MaxDistance()
	})

	var groups []CollMove
next:
	for _, b := range buckets {
		for gi := range groups {
			if compatible(groups[gi], b) {
				groups[gi].Moves = append(groups[gi].Moves, b.Moves...)
				continue next
			}
		}
		groups = append(groups, b)
	}
	return groups
}

// compatible reports whether every move of b can join group g without an
// AOD conflict.
func compatible(g, b CollMove) bool {
	for _, m := range b.Moves {
		if !fitsGroup(g, m) {
			return false
		}
	}
	return true
}

// GroupByDistance packs movements into Coll-Moves with the literal
// distance-aware greedy of Sec. 5.3: movements are sorted by ascending
// distance and each is placed into the first existing group it does not
// conflict with, or into a new group. It exists as the ablation baseline
// for the displacement-bucketed Group (BenchmarkAblationGrouping).
func GroupByDistance(moves []Move) []CollMove {
	sorted := make([]Move, 0, len(moves))
	for _, m := range moves {
		if m.FromSite != m.ToSite {
			sorted = append(sorted, m)
		}
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Distance() < sorted[j].Distance()
	})

	var groups []CollMove
next:
	for _, m := range sorted {
		for gi := range groups {
			if fitsGroup(groups[gi], m) {
				groups[gi].Moves = append(groups[gi].Moves, m)
				continue next
			}
		}
		groups = append(groups, CollMove{Moves: []Move{m}})
	}
	return groups
}

// GroupInOrder packs movements into Coll-Moves with the first-fit rule of
// GroupByDistance but without the ascending-distance sort. It is both the
// weakest ablation baseline and the grouping the Enola reimplementation
// uses.
func GroupInOrder(moves []Move) []CollMove {
	var groups []CollMove
next:
	for _, m := range moves {
		if m.FromSite == m.ToSite {
			continue
		}
		for gi := range groups {
			if fitsGroup(groups[gi], m) {
				groups[gi].Moves = append(groups[gi].Moves, m)
				continue next
			}
		}
		groups = append(groups, CollMove{Moves: []Move{m}})
	}
	return groups
}

func fitsGroup(g CollMove, m Move) bool {
	for _, other := range g.Moves {
		if Conflicts(other, m) {
			return false
		}
	}
	return true
}

// TotalDuration returns the summed duration of the groups executed
// sequentially on one AOD, excluding transfer overhead.
func TotalDuration(groups []CollMove) float64 {
	total := 0.0
	for _, g := range groups {
		total += g.Duration()
	}
	return total
}
