// Package move defines single-qubit movements, the AOD conflict predicate
// of Sec. 5.3 / Fig. 5 of the paper, and the distance-aware grouping that
// packs conflict-free 1Q movements into collective moves (Coll-Moves).
package move

import (
	"fmt"
	"slices"

	"powermove/internal/arch"
	"powermove/internal/geom"
	"powermove/internal/phys"
)

// Move is one qubit's relocation between two sites, annotated with the
// physical endpoint coordinates the conflict predicate operates on.
type Move struct {
	// Qubit is the moved qubit.
	Qubit int
	// FromSite and ToSite are the grid endpoints.
	FromSite, ToSite arch.Site
	// From and To are the physical endpoints in micrometres.
	From, To geom.Point
}

// New builds a Move for qubit q between the two sites of a.
func New(a *arch.Arch, q int, from, to arch.Site) Move {
	return Move{
		Qubit:    q,
		FromSite: from,
		ToSite:   to,
		From:     a.Pos(from),
		To:       a.Pos(to),
	}
}

// Distance returns the Euclidean length of the move, in micrometres.
func (m Move) Distance() float64 { return m.From.Dist(m.To) }

// Duration returns the time the move takes under the acceleration limit,
// in microseconds.
func (m Move) Duration() float64 { return phys.MoveTime(m.Distance()) }

// CrossesZones reports whether the move transfers the qubit between the
// computation and storage zones.
func (m Move) CrossesZones() bool { return m.FromSite.Zone != m.ToSite.Zone }

// IntoStorage reports whether the move brings the qubit into storage.
func (m Move) IntoStorage() bool {
	return m.FromSite.Zone == arch.Compute && m.ToSite.Zone == arch.Storage
}

// OutOfStorage reports whether the move takes the qubit out of storage.
func (m Move) OutOfStorage() bool {
	return m.FromSite.Zone == arch.Storage && m.ToSite.Zone == arch.Compute
}

// String implements fmt.Stringer.
func (m Move) String() string {
	return fmt.Sprintf("q%d: %v -> %v", m.Qubit, m.FromSite, m.ToSite)
}

// Conflicts implements the conflict predicate of Sec. 5.3: two 1Q moves
// conflict when the relative order of their x or y coordinates changes
// between start and end. Rows and columns of one AOD array move in tandem
// and may stretch or contract but never cross or merge (Fig. 2c), so a
// pair of moves can share a Coll-Move only if the sign of their coordinate
// difference is preserved on both axes. This covers all three panels of
// Fig. 5: order inversions and start-distinct/end-equal merges conflict,
// and start-equal coordinates must stay equal.
func Conflicts(m1, m2 Move) bool {
	if geom.Sign(m1.From.X-m2.From.X) != geom.Sign(m1.To.X-m2.To.X) {
		return true
	}
	if geom.Sign(m1.From.Y-m2.From.Y) != geom.Sign(m1.To.Y-m2.To.Y) {
		return true
	}
	return false
}

// CollMove is one collective move: a set of pairwise conflict-free 1Q
// movements that a single AOD array executes together. Its duration is
// governed by its longest member.
type CollMove struct {
	Moves []Move
}

// Duration returns the movement time of the Coll-Move: the duration of its
// longest 1Q move (rows and columns travel simultaneously).
func (c CollMove) Duration() float64 {
	max := 0.0
	for _, m := range c.Moves {
		if d := m.Duration(); d > max {
			max = d
		}
	}
	return max
}

// MaxDistance returns the longest 1Q movement distance in the Coll-Move.
func (c CollMove) MaxDistance() float64 {
	max := 0.0
	for _, m := range c.Moves {
		if d := m.Distance(); d > max {
			max = d
		}
	}
	return max
}

// NetStorageFlow returns (move-ins - move-outs) with respect to the
// storage zone, the sort key of the intra-stage scheduler (Sec. 6.1).
func (c CollMove) NetStorageFlow() int {
	flow := 0
	for _, m := range c.Moves {
		if m.IntoStorage() {
			flow++
		} else if m.OutOfStorage() {
			flow--
		}
	}
	return flow
}

// Valid reports whether every pair of member moves is conflict-free. Small
// groups use the literal pairwise scan; larger ones build the same
// interval index the grouping uses and check each member against its
// predecessors, which is equivalent — a conflicting pair exists exactly
// when some member conflicts with an earlier one — and turns the
// executor's per-batch revalidation from O(k²) into O(k log k).
func (c CollMove) Valid() bool {
	if len(c.Moves) <= 24 {
		for i := range c.Moves {
			for j := i + 1; j < len(c.Moves); j++ {
				if Conflicts(c.Moves[i], c.Moves[j]) {
					return false
				}
			}
		}
		return true
	}
	var ix groupIndex
	for i := range c.Moves {
		m := &c.Moves[i]
		if !ix.fits(m) {
			return false
		}
		ix.add(m)
	}
	return true
}

// axisIndex is one axis of a group's conflict index. The members of a
// conflict-free group satisfy, per axis, sign(f1-f2) == sign(t1-t2) for
// every pair — i.e. the member endpoints form a weakly monotone relation:
// equal start coordinates share one end coordinate, and distinct start
// coordinates map to strictly increasing end coordinates. The index
// therefore stores the *distinct* start coordinates in sorted order with
// their (unique) end coordinates, and a candidate move is conflict-free
// against every member iff it respects its two neighbors in that order:
//
//   - a member with the same start coordinate must have the same end;
//   - the largest smaller start must map to a smaller end;
//   - the smallest larger start must map to a larger end.
//
// That turns the O(|group|) pairwise membership scan into two binary
// searches over at most (#distinct site coordinates) entries, which is
// what makes grouping sub-quadratic. Site coordinates are exact multiples
// of the pitch, so float equality is well defined here.
type axisIndex struct {
	from []float64 // distinct start coordinates, ascending
	to   []float64 // to[i] is the end coordinate paired with from[i]; strictly ascending
}

// search returns the insertion position of f in ix.from.
func (ix *axisIndex) search(f float64) int {
	lo, hi := 0, len(ix.from)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.from[mid] < f {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// fits reports whether a move with axis endpoints (f, t) preserves
// coordinate order against every indexed member.
func (ix *axisIndex) fits(f, t float64) bool {
	i := ix.search(f)
	if i < len(ix.from) && ix.from[i] == f {
		return ix.to[i] == t
	}
	if i > 0 && ix.to[i-1] >= t {
		return false
	}
	if i < len(ix.from) && ix.to[i] <= t {
		return false
	}
	return true
}

// add records axis endpoints (f, t); the caller must have checked fits.
func (ix *axisIndex) add(f, t float64) {
	if ix.from == nil {
		// One distinct entry per site coordinate at most; starting at a
		// word of capacity avoids the first growslice ladder rungs.
		ix.from = make([]float64, 0, 16)
		ix.to = make([]float64, 0, 16)
	}
	i := ix.search(f)
	if i < len(ix.from) && ix.from[i] == f {
		return
	}
	ix.from = append(ix.from, 0)
	ix.to = append(ix.to, 0)
	copy(ix.from[i+1:], ix.from[i:])
	copy(ix.to[i+1:], ix.to[i:])
	ix.from[i], ix.to[i] = f, t
}

// groupIndex accelerates the "does this move conflict with any member of
// this group" test.
type groupIndex struct {
	x, y axisIndex
}

// fits reports whether m is conflict-free against every indexed move —
// exactly the pairwise scan's verdict over the same member set.
func (g *groupIndex) fits(m *Move) bool {
	return g.x.fits(m.From.X, m.To.X) && g.y.fits(m.From.Y, m.To.Y)
}

// add indexes m; the caller must have checked fits.
func (g *groupIndex) add(m *Move) {
	g.x.add(m.From.X, m.To.X)
	g.y.add(m.From.Y, m.To.Y)
}

// addAll indexes every move of a conflict-free bucket.
func (g *groupIndex) addAll(moves []Move) {
	for i := range moves {
		g.add(&moves[i])
	}
}

// fitsAll reports whether every move of b is conflict-free against every
// indexed move, without modifying the index.
func (g *groupIndex) fitsAll(b []Move) bool {
	for i := range b {
		if !g.fits(&b[i]) {
			return false
		}
	}
	return true
}

// witness is the first-fit scan's O(1) pre-filter: two representative
// members per group — the founding member and the most recently added one
// — stored as one flat struct (a single cache line per group) so
// rejecting a group is a handful of float comparisons with no pointer
// chasing. A candidate that conflicts with either witness conflicts with
// the group — the verdict is identical whichever member witnesses it — so
// only groups whose witnesses both pass pay the index's binary searches.
// Rejections vastly outnumber acceptances in first-fit scans, which makes
// this the scan's fast path; the second, drifting witness roughly halves
// the filter's false-pass rate on mixed movement sets. The per-axis test
// is phrased as comparison pairs — order changes iff (f1<f2) != (t1<t2)
// or (f2<f1) != (t2<t1), which also covers the equal-start/unequal-end
// merge case — matching Conflicts exactly while compiling to flag-setting
// compares.
type witness struct {
	fx, tx, fy, ty     float64 // founding member
	fx2, tx2, fy2, ty2 float64 // most recently added member
}

// refresh replaces the drifting second witness with the member just added
// to the group.
func (w *witness) refresh(fx, tx, fy, ty float64) {
	w.fx2, w.tx2, w.fy2, w.ty2 = fx, tx, fy, ty
}

// newWitness starts a group's filter with both witnesses on the founding
// member.
func newWitness(fx, tx, fy, ty float64) witness {
	return witness{fx: fx, tx: tx, fy: fy, ty: ty, fx2: fx, tx2: tx, fy2: fy, ty2: ty}
}

// rejectsX and rejectsY report whether a candidate's axis endpoints
// conflict with either witness on that axis — the shared fast path of all
// three first-fit scans, split per axis so each half stays under the
// compiler's inlining budget.
func (w *witness) rejectsX(fx, tx float64) bool {
	if (w.fx < fx) != (w.tx < tx) || (fx < w.fx) != (tx < w.tx) {
		return true
	}
	return (w.fx2 < fx) != (w.tx2 < tx) || (fx < w.fx2) != (tx < w.tx2)
}

func (w *witness) rejectsY(fy, ty float64) bool {
	if (w.fy < fy) != (w.ty < ty) || (fy < w.fy) != (ty < w.ty) {
		return true
	}
	return (w.fy2 < fy) != (w.ty2 < ty) || (fy < w.fy2) != (ty < w.ty2)
}

// Group packs the given 1Q movements into Coll-Moves. It strengthens the
// distance-aware greedy of Sec. 5.3 with a structural observation: two
// moves with the *same displacement vector* can never conflict (the sign
// of their coordinate differences is translation-invariant), so moves are
// first bucketed by displacement — each bucket is a conflict-free
// Coll-Move by construction — and buckets are then greedily merged, in
// ascending order of their longest member, whenever no cross-bucket pair
// conflicts. The ascending-distance merge order preserves the paper's
// goal of grouping movements of similar length, which suppresses the
// per-group maximum distance and hence total movement time, while the
// bucketing collapses the uniform shift patterns that dominate real
// layout transitions into very few Coll-Moves.
//
// Compatibility is decided through the per-group interval index
// (groupIndex), not a pairwise scan, so grouping n moves costs
// O(n · groups · log sites) instead of O(n²); the output is identical.
//
// Zero-length moves are dropped: a qubit that stays put needs no AOD.
func Group(moves []Move) []CollMove {
	type displacement struct{ dx, dy float64 }
	index := make(map[displacement]int)
	var buckets []CollMove
	for mi := range moves {
		m := &moves[mi]
		if m.FromSite == m.ToSite {
			continue
		}
		d := displacement{dx: m.To.X - m.From.X, dy: m.To.Y - m.From.Y}
		i, ok := index[d]
		if !ok {
			i = len(buckets)
			index[d] = i
			buckets = append(buckets, CollMove{})
		}
		buckets[i].Moves = append(buckets[i].Moves, *m)
	}
	// Sort keys are precomputed: the stable sort calls its comparison
	// O(b log b) times, and MaxDistance is linear in the bucket size.
	maxDist := make([]float64, len(buckets))
	for i, b := range buckets {
		maxDist[i] = b.MaxDistance()
	}
	order := make([]int, len(buckets))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		switch {
		case maxDist[a] < maxDist[b]:
			return -1
		case maxDist[a] > maxDist[b]:
			return 1
		}
		return 0
	})

	var groups []CollMove
	var indexes []groupIndex
	var wits []witness
next:
	for _, bi := range order {
		b := &buckets[bi]
		probe := &b.Moves[0]
		pfx, ptx, pfy, pty := probe.From.X, probe.To.X, probe.From.Y, probe.To.Y
		for gi := range wits {
			w := &wits[gi]
			if w.rejectsX(pfx, ptx) || w.rejectsY(pfy, pty) {
				continue
			}
			if indexes[gi].fitsAll(b.Moves) {
				groups[gi].Moves = append(groups[gi].Moves, b.Moves...)
				indexes[gi].addAll(b.Moves)
				w.refresh(pfx, ptx, pfy, pty)
				continue next
			}
		}
		var ix groupIndex
		ix.addAll(b.Moves)
		groups = append(groups, *b)
		indexes = append(indexes, ix)
		wits = append(wits, newWitness(pfx, ptx, pfy, pty))
	}
	return groups
}

// GroupByDistance packs movements into Coll-Moves with the literal
// distance-aware greedy of Sec. 5.3: movements are sorted by ascending
// distance and each is placed into the first existing group it does not
// conflict with, or into a new group. It exists as the ablation baseline
// for the displacement-bucketed Group (BenchmarkAblationGrouping).
func GroupByDistance(moves []Move) []CollMove {
	sorted := make([]Move, 0, len(moves))
	for mi := range moves {
		if moves[mi].FromSite != moves[mi].ToSite {
			sorted = append(sorted, moves[mi])
		}
	}
	dist := make([]float64, len(sorted))
	for i, m := range sorted {
		dist[i] = m.Distance()
	}
	order := make([]int, len(sorted))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		switch {
		case dist[a] < dist[b]:
			return -1
		case dist[a] > dist[b]:
			return 1
		}
		return 0
	})

	var groups []CollMove
	var indexes []groupIndex
	var wits []witness
next:
	for _, mi := range order {
		m := &sorted[mi]
		mfx, mtx, mfy, mty := m.From.X, m.To.X, m.From.Y, m.To.Y
		for gi := range wits {
			w := &wits[gi]
			if w.rejectsX(mfx, mtx) || w.rejectsY(mfy, mty) {
				continue
			}
			if indexes[gi].fits(m) {
				groups[gi].Moves = append(groups[gi].Moves, *m)
				indexes[gi].add(m)
				w.refresh(mfx, mtx, mfy, mty)
				continue next
			}
		}
		var ix groupIndex
		ix.add(m)
		groups = append(groups, CollMove{Moves: []Move{*m}})
		indexes = append(indexes, ix)
		wits = append(wits, newWitness(mfx, mtx, mfy, mty))
	}
	return groups
}

// GroupInOrder packs movements into Coll-Moves with the first-fit rule of
// GroupByDistance but without the ascending-distance sort. It is both the
// weakest ablation baseline and the grouping the Enola reimplementation
// uses.
func GroupInOrder(moves []Move) []CollMove {
	var groups []CollMove
	var indexes []groupIndex
	var wits []witness
next:
	for mi := range moves {
		m := &moves[mi]
		if m.FromSite == m.ToSite {
			continue
		}
		mfx, mtx, mfy, mty := m.From.X, m.To.X, m.From.Y, m.To.Y
		for gi := range wits {
			w := &wits[gi]
			if w.rejectsX(mfx, mtx) || w.rejectsY(mfy, mty) {
				continue
			}
			if indexes[gi].fits(m) {
				groups[gi].Moves = append(groups[gi].Moves, *m)
				indexes[gi].add(m)
				w.refresh(mfx, mtx, mfy, mty)
				continue next
			}
		}
		var ix groupIndex
		ix.add(m)
		groups = append(groups, CollMove{Moves: []Move{*m}})
		indexes = append(indexes, ix)
		wits = append(wits, newWitness(mfx, mtx, mfy, mty))
	}
	return groups
}

// TotalDuration returns the summed duration of the groups executed
// sequentially on one AOD, excluding transfer overhead.
func TotalDuration(groups []CollMove) float64 {
	total := 0.0
	for _, g := range groups {
		total += g.Duration()
	}
	return total
}
