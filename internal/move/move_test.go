package move

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"powermove/internal/arch"
	"powermove/internal/phys"
)

func testArch() *arch.Arch { return arch.New(arch.Config{Qubits: 25}) }

func mk(t *testing.T, a *arch.Arch, q int, fz arch.Zone, fr, fc int, tz arch.Zone, tr, tc int) Move {
	t.Helper()
	return New(a, q, arch.Site{Zone: fz, Row: fr, Col: fc}, arch.Site{Zone: tz, Row: tr, Col: tc})
}

func TestMoveBasics(t *testing.T) {
	a := testArch()
	m := mk(t, a, 3, arch.Compute, 0, 0, arch.Compute, 0, 2)
	if got := m.Distance(); got != 30 {
		t.Errorf("Distance = %v, want 30", got)
	}
	if got := m.Duration(); math.Abs(got-phys.MoveTime(30)) > 1e-12 {
		t.Errorf("Duration = %v, want %v", got, phys.MoveTime(30))
	}
	if m.CrossesZones() || m.IntoStorage() || m.OutOfStorage() {
		t.Error("intra-zone move misclassified")
	}

	down := mk(t, a, 1, arch.Compute, 0, 0, arch.Storage, 9, 0)
	if !down.CrossesZones() || !down.IntoStorage() || down.OutOfStorage() {
		t.Error("move into storage misclassified")
	}
	up := mk(t, a, 1, arch.Storage, 9, 0, arch.Compute, 0, 0)
	if !up.OutOfStorage() || up.IntoStorage() {
		t.Error("move out of storage misclassified")
	}
}

// TestConflictsFig5 encodes the three panels of Fig. 5 of the paper plus
// the compatible configurations around them (using site columns 0, 1, 2 at
// 15 um pitch on one row).
func TestConflictsFig5(t *testing.T) {
	a := testArch()
	at := func(c int) arch.Site { return arch.Site{Zone: arch.Compute, Row: 0, Col: c} }
	mv := func(q, from, to int) Move { return New(a, q, at(from), at(to)) }

	cases := []struct {
		name     string
		m1, m2   Move
		conflict bool
	}{
		{"equal start, diverging end (panel 1)", mv(1, 1, 0), mv(2, 1, 2), true},
		{"order inversion (panel 2)", mv(1, 2, 0), mv(2, 1, 2), true},
		{"distinct start, merged end (panel 3)", mv(1, 2, 1), mv(2, 0, 1), true},
		{"parallel shift", mv(1, 0, 1), mv(2, 1, 2), false},
		{"stretch", mv(1, 1, 0), mv(2, 2, 3), false},
		{"contract preserving order", mv(1, 0, 1), mv(2, 3, 2), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Conflicts(tc.m1, tc.m2); got != tc.conflict {
				t.Errorf("Conflicts = %v, want %v", got, tc.conflict)
			}
		})
	}
}

// TestConflictsYAxis: the same rules apply independently on y.
func TestConflictsYAxis(t *testing.T) {
	a := testArch()
	at := func(r int) arch.Site { return arch.Site{Zone: arch.Compute, Row: r, Col: 0} }
	m1 := New(a, 1, at(0), at(2))
	m2 := New(a, 2, at(2), at(1))
	if !Conflicts(m1, m2) {
		t.Error("row order inversion not detected")
	}
	m3 := New(a, 3, at(3), at(4))
	if Conflicts(m1, m3) {
		t.Error("order-preserving row moves flagged")
	}
}

// TestConflictsSymmetricQuick: the predicate is symmetric for arbitrary
// site pairs.
func TestConflictsSymmetricQuick(t *testing.T) {
	a := testArch()
	sites := append(append([]arch.Site{}, a.Sites(arch.Compute)...), a.Sites(arch.Storage)...)
	f := func(i1, j1, i2, j2 uint16) bool {
		n := len(sites)
		m1 := New(a, 0, sites[int(i1)%n], sites[int(j1)%n])
		m2 := New(a, 1, sites[int(i2)%n], sites[int(j2)%n])
		return Conflicts(m1, m2) == Conflicts(m2, m1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSameDisplacementNeverConflicts is the invariant the default
// grouping's bucketing rests on.
func TestSameDisplacementNeverConflicts(t *testing.T) {
	a := testArch()
	sites := a.Sites(arch.Compute)
	f := func(i1, i2 uint16, drRaw, dcRaw int8) bool {
		dr, dc := int(drRaw)%3, int(dcRaw)%3
		s1 := sites[int(i1)%len(sites)]
		s2 := sites[int(i2)%len(sites)]
		t1 := arch.Site{Zone: arch.Compute, Row: s1.Row + dr, Col: s1.Col + dc}
		t2 := arch.Site{Zone: arch.Compute, Row: s2.Row + dr, Col: s2.Col + dc}
		if !a.InBounds(t1) || !a.InBounds(t2) {
			return true
		}
		return !Conflicts(New(a, 0, s1, t1), New(a, 1, s2, t2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func randomMoves(a *arch.Arch, n int, rng *rand.Rand) []Move {
	sites := append(append([]arch.Site{}, a.Sites(arch.Compute)...), a.Sites(arch.Storage)...)
	moves := make([]Move, 0, n)
	for q := 0; q < n; q++ {
		from := sites[rng.Intn(len(sites))]
		to := sites[rng.Intn(len(sites))]
		moves = append(moves, New(a, q, from, to))
	}
	return moves
}

// TestGroupingsProduceValidCollMoves: all three grouping strategies yield
// groups whose members are pairwise conflict-free and cover every
// non-trivial move exactly once.
func TestGroupingsProduceValidCollMoves(t *testing.T) {
	a := testArch()
	rng := rand.New(rand.NewSource(5))
	strategies := map[string]func([]Move) []CollMove{
		"Group":           Group,
		"GroupByDistance": GroupByDistance,
		"GroupInOrder":    GroupInOrder,
	}
	for trial := 0; trial < 40; trial++ {
		moves := randomMoves(a, 1+rng.Intn(60), rng)
		wantCount := 0
		for _, m := range moves {
			if m.FromSite != m.ToSite {
				wantCount++
			}
		}
		for name, group := range strategies {
			groups := group(moves)
			total := 0
			seen := make(map[int]bool)
			for _, g := range groups {
				if !g.Valid() {
					t.Fatalf("%s trial %d: conflicting group", name, trial)
				}
				if len(g.Moves) == 0 {
					t.Fatalf("%s trial %d: empty group", name, trial)
				}
				for _, m := range g.Moves {
					if seen[m.Qubit] {
						t.Fatalf("%s trial %d: qubit %d grouped twice", name, trial, m.Qubit)
					}
					seen[m.Qubit] = true
				}
				total += len(g.Moves)
			}
			if total != wantCount {
				t.Fatalf("%s trial %d: grouped %d moves, want %d", name, trial, total, wantCount)
			}
		}
	}
}

// TestGroupDropsZeroMoves: a qubit staying on its site needs no Coll-Move.
func TestGroupDropsZeroMoves(t *testing.T) {
	a := testArch()
	s := arch.Site{Zone: arch.Compute, Row: 0, Col: 0}
	moves := []Move{New(a, 0, s, s)}
	for name, group := range map[string]func([]Move) []CollMove{
		"Group": Group, "GroupByDistance": GroupByDistance, "GroupInOrder": GroupInOrder,
	} {
		if got := group(moves); len(got) != 0 {
			t.Errorf("%s kept a zero-length move: %v", name, got)
		}
	}
}

// TestGroupMergesUniformShift: a uniform right-shift of many qubits packs
// into exactly one Coll-Move.
func TestGroupMergesUniformShift(t *testing.T) {
	a := testArch()
	var moves []Move
	for r := 0; r < 5; r++ {
		for c := 0; c < 4; c++ {
			moves = append(moves, mk(t, a, r*4+c, arch.Compute, r, c, arch.Compute, r, c+1))
		}
	}
	groups := Group(moves)
	if len(groups) != 1 {
		t.Fatalf("uniform shift grouped into %d Coll-Moves, want 1", len(groups))
	}
	if len(groups[0].Moves) != 20 {
		t.Fatalf("group has %d moves, want 20", len(groups[0].Moves))
	}
}

// TestGroupNeverWorseThanByDistance on the group-count objective for the
// uniform and random patterns exercised here.
func TestGroupBeatsOrMatchesFirstFitOnUniform(t *testing.T) {
	a := testArch()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		moves := randomMoves(a, 40, rng)
		merged := len(Group(moves))
		byDist := len(GroupByDistance(moves))
		if merged > byDist+2 {
			t.Errorf("trial %d: bucketed grouping used %d groups, first-fit %d", trial, merged, byDist)
		}
	}
}

func TestCollMoveMetrics(t *testing.T) {
	a := testArch()
	g := CollMove{Moves: []Move{
		mk(t, a, 0, arch.Compute, 0, 0, arch.Compute, 0, 1), // 15 um
		mk(t, a, 1, arch.Compute, 2, 0, arch.Compute, 2, 3), // 45 um
	}}
	if got := g.MaxDistance(); got != 45 {
		t.Errorf("MaxDistance = %v, want 45", got)
	}
	if got := g.Duration(); math.Abs(got-phys.MoveTime(45)) > 1e-12 {
		t.Errorf("Duration = %v, want %v", got, phys.MoveTime(45))
	}
	if TotalDuration([]CollMove{g, g}) != 2*g.Duration() {
		t.Error("TotalDuration wrong")
	}
}

func TestNetStorageFlow(t *testing.T) {
	a := testArch()
	g := CollMove{Moves: []Move{
		mk(t, a, 0, arch.Compute, 0, 0, arch.Storage, 9, 0), // in
		mk(t, a, 1, arch.Compute, 1, 1, arch.Storage, 9, 1), // in
		mk(t, a, 2, arch.Storage, 8, 0, arch.Compute, 0, 1), // out
		mk(t, a, 3, arch.Compute, 2, 2, arch.Compute, 2, 3), // neither
	}}
	if got := g.NetStorageFlow(); got != 1 {
		t.Errorf("NetStorageFlow = %d, want 1", got)
	}
}

func TestValidDetectsConflict(t *testing.T) {
	a := testArch()
	bad := CollMove{Moves: []Move{
		mk(t, a, 0, arch.Compute, 0, 0, arch.Compute, 0, 2),
		mk(t, a, 1, arch.Compute, 0, 2, arch.Compute, 0, 0),
	}}
	if bad.Valid() {
		t.Error("crossing moves accepted")
	}
}

func TestMoveString(t *testing.T) {
	a := testArch()
	m := mk(t, a, 7, arch.Compute, 0, 0, arch.Storage, 1, 2)
	if got := m.String(); got != "q7: compute[0,0] -> storage[1,2]" {
		t.Errorf("String = %q", got)
	}
}
