// Package phys encodes the physical model of the neutral-atom hardware that
// the PowerMove paper evaluates against (Table 1 of the paper): operation
// fidelities, operation durations, the AOD movement-time law, and the
// geometric constants of the zoned architecture.
//
// All durations are expressed in microseconds and all lengths in
// micrometres; fidelities are dimensionless probabilities in (0, 1].
package phys

import (
	"fmt"
	"math"
)

// Fidelities of the elementary operations (Table 1 of the paper).
const (
	// FidelityOneQubit is the fidelity of a single-qubit Raman rotation.
	FidelityOneQubit = 0.9999
	// FidelityCZ is the fidelity of a two-qubit CZ gate executed by a
	// global Rydberg pulse on a co-located pair.
	FidelityCZ = 0.995
	// FidelityExcitation is the fidelity retained by a non-interacting
	// qubit that sits in the computation zone during a Rydberg pulse.
	FidelityExcitation = 0.9975
	// FidelityTransfer is the fidelity of one qubit transfer between a
	// static SLM trap and a mobile AOD trap (pickup or dropoff).
	FidelityTransfer = 0.999
)

// Durations of the elementary operations, in microseconds (Table 1).
const (
	// DurationOneQubit is the duration of a parallel single-qubit layer.
	DurationOneQubit = 1.0
	// DurationCZ is the duration of the global Rydberg pulse that
	// executes all CZ gates of a stage.
	DurationCZ = 0.27
	// DurationTransfer is the duration of one SLM<->AOD transfer.
	DurationTransfer = 15.0
)

// CoherenceTime is the T2 coherence time of a neutral-atom qubit in the
// computation zone, in microseconds (1.5 s in the paper). Idle time T_q
// accumulated outside the storage zone contributes a multiplicative
// decoherence factor (1 - T_q/CoherenceTime) to the output fidelity.
const CoherenceTime = 1.5e6

// MaxAcceleration is the maximum AOD acceleration that preserves qubit
// fidelity, in m/s^2 (Sec. 2.1 of the paper).
const MaxAcceleration = 2750.0

// Geometry of the zoned architecture (Sec. 5.1 and Sec. 7.1 of the paper).
const (
	// SitePitch is the minimal spacing between adjacent qubit sites, in
	// micrometres.
	SitePitch = 15.0
	// ZoneGap is the vertical separation between the computation zone
	// and the storage zone, in micrometres.
	ZoneGap = 30.0
	// RydbergRadius is the maximal distance at which two atoms interact
	// under a Rydberg pulse, in micrometres.
	RydbergRadius = 6.0
	// MinSeparation is the minimal spacing that non-interacting qubits
	// must keep during a Rydberg pulse to avoid unwanted interactions,
	// in micrometres.
	MinSeparation = 10.0
)

// MoveTime returns the duration, in microseconds, of a collective move that
// covers dist micrometres under the acceleration limit of Sec. 2.1.
//
// The law is t = sqrt(d / a). It reproduces the paper's two worked
// examples: 100 us for a 27.5 um move and 200 us for a 110 um move.
func MoveTime(dist float64) float64 {
	if dist <= 0 {
		return 0
	}
	meters := dist * 1e-6
	seconds := math.Sqrt(meters / MaxAcceleration)
	return seconds * 1e6
}

// MoveDist inverts MoveTime: it returns the distance, in micrometres, that
// a collective move of the given duration (microseconds) covers.
func MoveDist(t float64) float64 {
	if t <= 0 {
		return 0
	}
	seconds := t * 1e-6
	return seconds * seconds * MaxAcceleration * 1e6
}

// DecoherenceFactor returns the fidelity retained by one qubit that spent
// idle microseconds outside the storage zone without being operated on:
// 1 - idle/T2, floored at zero for pathological inputs.
func DecoherenceFactor(idle float64) float64 {
	f := 1 - idle/CoherenceTime
	if f < 0 {
		return 0
	}
	return f
}

// Pow returns base^n for a non-negative integer exponent. It is the
// workhorse for the f^g terms of the output-fidelity formula and avoids
// the domain checks of math.Pow for the hot paths of the simulator.
func Pow(base float64, n int) float64 {
	if n < 0 {
		panic(fmt.Sprintf("phys.Pow: negative exponent %d", n))
	}
	result := 1.0
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			result *= base
		}
		base *= base
	}
	return result
}
