package phys

import (
	"math"
	"testing"
	"testing/quick"
)

// TestMoveTimeMatchesPaperExamples reproduces the two worked examples of
// Table 1 / Sec. 2.1 of the paper: a 27.5 um move takes 100 us and a
// 110 um move takes 200 us under the acceleration limit (experiment E10).
func TestMoveTimeMatchesPaperExamples(t *testing.T) {
	tests := []struct {
		dist, want float64
	}{
		{27.5, 100},
		{110, 200},
	}
	for _, tt := range tests {
		got := MoveTime(tt.dist)
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("MoveTime(%v um) = %v us, want %v us", tt.dist, got, tt.want)
		}
	}
}

func TestMoveTimeEdgeCases(t *testing.T) {
	if got := MoveTime(0); got != 0 {
		t.Errorf("MoveTime(0) = %v, want 0", got)
	}
	if got := MoveTime(-5); got != 0 {
		t.Errorf("MoveTime(-5) = %v, want 0 (clamped)", got)
	}
}

// TestMoveDistInvertsMoveTime checks the round-trip property on positive
// distances.
func TestMoveDistInvertsMoveTime(t *testing.T) {
	f := func(raw float64) bool {
		d := math.Mod(math.Abs(raw), 1e4) // plausible distances, um
		if d == 0 || math.IsNaN(d) {
			return true
		}
		back := MoveDist(MoveTime(d))
		return math.Abs(back-d) < 1e-6*d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if got := MoveDist(0); got != 0 {
		t.Errorf("MoveDist(0) = %v, want 0", got)
	}
	if got := MoveDist(-1); got != 0 {
		t.Errorf("MoveDist(-1) = %v, want 0 (clamped)", got)
	}
}

// TestMoveTimeMonotone: longer moves never take less time.
func TestMoveTimeMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		da := math.Mod(math.Abs(a), 1e4)
		db := math.Mod(math.Abs(b), 1e4)
		if math.IsNaN(da) || math.IsNaN(db) {
			return true
		}
		if da > db {
			da, db = db, da
		}
		return MoveTime(da) <= MoveTime(db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecoherenceFactor(t *testing.T) {
	if got := DecoherenceFactor(0); got != 1 {
		t.Errorf("DecoherenceFactor(0) = %v, want 1", got)
	}
	// Half the coherence time leaves half the fidelity under the
	// paper's linear model.
	if got := DecoherenceFactor(CoherenceTime / 2); got != 0.5 {
		t.Errorf("DecoherenceFactor(T2/2) = %v, want 0.5", got)
	}
	// Pathological idle times beyond T2 clamp at zero rather than
	// going negative.
	if got := DecoherenceFactor(2 * CoherenceTime); got != 0 {
		t.Errorf("DecoherenceFactor(2*T2) = %v, want 0", got)
	}
}

func TestPowMatchesMathPow(t *testing.T) {
	f := func(e uint8) bool {
		n := int(e % 64)
		want := math.Pow(FidelityCZ, float64(n))
		got := Pow(FidelityCZ, n)
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if got := Pow(0.5, 0); got != 1 {
		t.Errorf("Pow(x, 0) = %v, want 1", got)
	}
}

func TestPowPanicsOnNegativeExponent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pow(-1 exponent) did not panic")
		}
	}()
	Pow(0.5, -1)
}

// TestTable1Parameters pins the physical constants to the values of
// Table 1 of the paper (experiment E1). A change to any of
// these silently alters every reproduced number, so they are asserted
// exactly.
func TestTable1Parameters(t *testing.T) {
	checks := []struct {
		name      string
		got, want float64
	}{
		{"1Q fidelity", FidelityOneQubit, 0.9999},
		{"CZ fidelity", FidelityCZ, 0.995},
		{"excitation fidelity", FidelityExcitation, 0.9975},
		{"transfer fidelity", FidelityTransfer, 0.999},
		{"1Q duration (us)", DurationOneQubit, 1},
		{"CZ duration (us)", DurationCZ, 0.27},
		{"transfer duration (us)", DurationTransfer, 15},
		{"coherence time (us)", CoherenceTime, 1.5e6},
		{"max acceleration (m/s^2)", MaxAcceleration, 2750},
		{"site pitch (um)", SitePitch, 15},
		{"zone gap (um)", ZoneGap, 30},
		{"Rydberg radius (um)", RydbergRadius, 6},
		{"min separation (um)", MinSeparation, 10},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}
