package pipeline

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"powermove/internal/circuit"
	"powermove/internal/isa"
)

// incrCircuit builds a deterministic multi-block circuit; mutTail != 0
// perturbs the last block, mutHead != 0 the first.
func incrCircuit(n, blocks, mutHead, mutTail int) *circuit.Circuit {
	c := circuit.New("incr", n)
	for i := 0; i < blocks; i++ {
		a := i % (n - 3)
		oneQ := i % 3
		if i == 0 {
			oneQ += mutHead
		}
		if i == blocks-1 {
			oneQ += mutTail
		}
		c.AddBlock(oneQ, circuit.NewCZ(a, a+1), circuit.NewCZ(a+2, a+3))
	}
	return c
}

// incrJob wraps circ as a job under bench (distinct benches defeat the
// outcome cache so the snapshot path actually runs).
func incrJob(bench string, circ *circuit.Circuit, aods int) Job {
	return NewJob(bench, WithStorage, aods, func() (*circuit.Circuit, error) { return circ, nil })
}

// coldCompile compiles circ with no snapshot store and a private cache:
// the byte-identity reference.
func coldCompile(t *testing.T, bench string, circ *circuit.Circuit, aods int) Result {
	t.Helper()
	results, _, err := Run(context.Background(), []Job{incrJob(bench, circ, aods)},
		Options{Workers: 1, Cache: NewCache()})
	if err != nil || results[0].Err != nil {
		t.Fatal(err, results[0].Err)
	}
	return results[0]
}

// snapCompile compiles circ through snaps with a private cache,
// capturing artifacts.
func snapCompile(t *testing.T, snaps *SnapshotStore, bench string, circ *circuit.Circuit, aods int) (Result, Artifacts) {
	t.Helper()
	var art Artifacts
	job := incrJob(bench, circ, aods)
	job.Keep = func(a Artifacts) { art = a }
	results, _, err := Run(context.Background(), []Job{job},
		Options{Workers: 1, Cache: NewCache(), Snapshots: snaps})
	if err != nil || results[0].Err != nil {
		t.Fatal(err, results[0].Err)
	}
	return results[0], art
}

// identical asserts a snapshot-assisted outcome is byte-identical to
// the cold reference: same stabilized outcome (counters, fidelity,
// per-pass calls and counter deltas) and same program.
func identical(t *testing.T, label string, got, want Result, gotProg, wantProg *isa.Program) {
	t.Helper()
	g, w := got.Outcome, want.Outcome
	g.Tcomp, w.Tcomp = 0, 0
	g.Passes = g.Passes.Stabilized()
	w.Passes = w.Passes.Stabilized()
	if !reflect.DeepEqual(g, w) {
		t.Errorf("%s: outcome diverged from cold compile:\n got %+v\nwant %+v", label, g, w)
	}
	if gotProg != nil && wantProg != nil && !reflect.DeepEqual(gotProg.Instr, wantProg.Instr) {
		t.Errorf("%s: program diverged from cold compile", label)
	}
}

// TestIncrementalPrefixReuse is the prefix-reuse correctness table: a
// request sharing a block prefix with a cached compile resumes (and
// stays byte-identical to cold); a divergent first block gets no
// prefix; an identical circuit under a different bench replays the full
// prefix; an architecture change invalidates everything.
func TestIncrementalPrefixReuse(t *testing.T) {
	const n, blocks = 12, 10
	seedCirc := incrCircuit(n, blocks, 0, 0)

	cases := []struct {
		name       string
		circ       *circuit.Circuit
		aods       int
		prefixHits int64 // delta expected from this request
		warmStarts int64
	}{
		{"identical-other-bench", incrCircuit(n, blocks, 0, 0), 1, 1, 0},
		{"shared-prefix-tail-mutated", incrCircuit(n, blocks, 0, 2), 1, 1, 0},
		{"divergent-first-block", incrCircuit(n, blocks, 2, 0), 1, 0, 1},
		{"arch-change-full-invalidation", incrCircuit(n, blocks, 0, 0), 2, 0, 0},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snaps := NewSnapshotStore(0)
			// Seed the store with the donor compile (cold: empty store).
			seedRes, seedArt := snapCompile(t, snaps, "seed", seedCirc, 1)
			if st := snaps.Stats(); st.PrefixHits != 0 || st.Entries != 1 {
				t.Fatalf("seeding: stats = %+v, want 1 entry, 0 hits", st)
			}
			identical(t, "seed", seedRes, coldCompile(t, "seed", seedCirc, 1), seedArt.Program, nil)

			before := snaps.Stats()
			bench := fmt.Sprintf("case-%d", i)
			res, art := snapCompile(t, snaps, bench, tc.circ, tc.aods)
			after := snaps.Stats()
			if got := after.PrefixHits - before.PrefixHits; got != tc.prefixHits {
				t.Errorf("prefix hits delta = %d, want %d", got, tc.prefixHits)
			}
			if got := after.WarmStarts - before.WarmStarts; got != tc.warmStarts {
				t.Errorf("warm starts delta = %d, want %d", got, tc.warmStarts)
			}
			if after.Probes != before.Probes+1 {
				t.Errorf("probes delta = %d, want 1", after.Probes-before.Probes)
			}
			if tc.prefixHits > 0 && after.SavedMS <= before.SavedMS {
				t.Errorf("prefix hit did not grow the saved-time ledger: %v -> %v", before.SavedMS, after.SavedMS)
			}

			// Every row of the table — resumed, warm-started, or cold —
			// must be byte-identical to a cold compile of its circuit.
			coldRef := coldCompile(t, bench, tc.circ, tc.aods)
			var coldArt Artifacts
			coldJob := incrJob(bench, tc.circ, tc.aods)
			coldJob.Keep = func(a Artifacts) { coldArt = a }
			coldResults, _, err := Run(context.Background(), []Job{coldJob}, Options{Workers: 1, Cache: NewCache()})
			if err != nil || coldResults[0].Err != nil {
				t.Fatal(err, coldResults[0].Err)
			}
			identical(t, tc.name, res, coldRef, art.Program, coldArt.Program)
		})
	}
}

// TestIncrementalDisabledWarmStart: with warm-start off, a
// divergent-first-block request runs fully cold (no donation), while
// prefix resumption still works.
func TestIncrementalDisabledWarmStart(t *testing.T) {
	const n, blocks = 12, 10
	snaps := NewSnapshotStore(0)
	snaps.SetWarmStart(false)
	snapCompile(t, snaps, "seed", incrCircuit(n, blocks, 0, 0), 1)

	snapCompile(t, snaps, "head", incrCircuit(n, blocks, 2, 0), 1)
	if st := snaps.Stats(); st.WarmStarts != 0 {
		t.Errorf("warm starts = %d with warm-start disabled", st.WarmStarts)
	}
	snapCompile(t, snaps, "tail", incrCircuit(n, blocks, 0, 2), 1)
	if st := snaps.Stats(); st.PrefixHits != 1 {
		t.Errorf("prefix hits = %d, want 1 (resumption unaffected)", st.PrefixHits)
	}
}

// TestIncrementalLRU: the store retains at most its capacity, evicting
// least-recently-used entries.
func TestIncrementalLRU(t *testing.T) {
	const n, blocks = 12, 4
	snaps := NewSnapshotStore(2)
	for i := 0; i < 3; i++ {
		snapCompile(t, snaps, fmt.Sprintf("lru-%d", i), incrCircuit(n+2*i, blocks, 0, 0), 1)
	}
	if st := snaps.Stats(); st.Entries != 2 {
		t.Errorf("entries = %d, want 2 after eviction", st.Entries)
	}
}

// TestIncrementalConcurrent hammers one store from concurrent compiles
// of related circuits; run under -race this pins the locking. Every
// result must still be byte-identical to its cold compile.
func TestIncrementalConcurrent(t *testing.T) {
	const n, blocks, workers = 12, 8, 8
	snaps := NewSnapshotStore(0)
	colds := make([]Result, workers)
	circs := make([]*circuit.Circuit, workers)
	for i := range circs {
		circs[i] = incrCircuit(n, blocks, 0, i%3)
		colds[i] = coldCompile(t, fmt.Sprintf("conc-%d", i), circs[i], 1)
	}
	var wg sync.WaitGroup
	results := make([]Result, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, _, err := Run(context.Background(), []Job{incrJob(fmt.Sprintf("conc-%d", i), circs[i], 1)},
				Options{Workers: 1, Cache: NewCache(), Snapshots: snaps})
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = rs[0], rs[0].Err
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("concurrent-%d: %v", i, errs[i])
		}
		identical(t, fmt.Sprintf("concurrent-%d", i), results[i], colds[i], nil, nil)
	}
}
