// Package pipeline is the concurrent batch-compilation engine behind the
// paper's evaluation (Sec. 7): it fans independent compile-and-simulate
// jobs — one per (benchmark, scheme, AOD-count) point of Table 3, Fig. 6,
// and Fig. 7 — across a bounded pool of worker goroutines with
// deterministic per-job seeding, context cancellation, per-job timing, and
// a keyed in-memory result cache so evaluation points that share a
// compilation (the Fig. 6 panels re-sweep Table-3 instances, Fig. 7
// re-runs their with-storage compiles) compile once and are reused
// everywhere.
//
// Every job is a pure function of its Key: circuit generators derive
// their seeds from the benchmark identity (experiments.Spec.seed), both
// compilers are deterministic given their fixed option seeds, and the
// executor is deterministic given a program. The engine therefore
// guarantees that results are identical — byte for byte, excluding
// measured wall-clock compile times — whatever the worker count, and
// returns them in job order regardless of completion order.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"powermove/internal/arch"
	"powermove/internal/cache"
	"powermove/internal/circuit"
	"powermove/internal/compiler"
	"powermove/internal/fidelity"
	"powermove/internal/isa"
	"powermove/internal/layout"
	"powermove/internal/sim"
	"powermove/internal/verify"
)

// Scheme names one of the three compilation schemes the evaluation
// compares (the columns of Table 3).
type Scheme string

// The schemes of the paper's three-way comparison.
const (
	// Enola is the baseline compiler (Sec. 3): revert-to-home movement,
	// computation zone only, always a single AOD.
	Enola Scheme = "enola"
	// NonStorage is the PowerMove pipeline restricted to the
	// computation zone (continuous routing without the storage zone).
	NonStorage Scheme = "non-storage"
	// WithStorage is the full zoned PowerMove pipeline.
	WithStorage Scheme = "with-storage"
)

// Key identifies one evaluation point. It is the cache key: two jobs with
// equal keys must describe identical work, which holds whenever Circuit
// generators are deterministic functions of Bench (the repository-wide
// seeding contract, see docs/ARCHITECTURE.md).
type Key struct {
	// Bench names the benchmark instance, e.g. "BV-70".
	Bench string
	// Scheme selects the compiler.
	Scheme Scheme
	// AODs is the number of AOD arrays of the target architecture.
	AODs int
	// Grouping optionally substitutes the zoned pipeline's Coll-Move
	// grouping pass (a compiler.GroupingNames name); empty selects the
	// default. It is part of the key because it changes the compiled
	// program. The engine canonicalizes an explicit default to the
	// empty name before caching, so "merged" and "" share one entry
	// (Result.Key reports the canonical form). Ignored by the enola
	// scheme.
	Grouping string
	// Verify runs the differential verification subsystem
	// (internal/verify) over the compiled program and attaches its
	// summary to the outcome. It is part of the key because a verified
	// outcome carries data an unverified one lacks; the verification
	// itself is deterministic, so verified outcomes cache like any
	// other.
	Verify bool
}

// String renders the key as "bench/scheme/kaod", with a "/grouping"
// suffix when a non-default grouping pass is selected and a "/verify"
// suffix when verification is requested.
func (k Key) String() string {
	s := fmt.Sprintf("%s/%s/%daod", k.Bench, k.Scheme, k.AODs)
	if k.Grouping != "" {
		s += "/" + k.Grouping
	}
	if k.Verify {
		s += "/verify"
	}
	return s
}

// Job is one unit of batch work: generate a circuit, build the target
// hardware, compile with the key's scheme, and simulate the result.
type Job struct {
	Key Key
	// Canon is the key's canonical string rendering, computed once by
	// the submitter (after grouping normalization) and reused across
	// queue admission, cache probes, and store tiers — the engine never
	// re-serializes the key per probe. Empty means "derive it here":
	// runJob fills it from Key.String() after normalization, so ad-hoc
	// callers need not precompute it.
	Canon string
	// Circuit generates the benchmark circuit. It must be deterministic
	// in Key.Bench — derive any seed from the benchmark identity, never
	// from the clock — or caching and run-to-run reproducibility break.
	Circuit func() (*circuit.Circuit, error)
	// Arch builds the target hardware. Nil selects the default Table-2
	// geometry for the circuit's qubit count with Key.AODs arrays.
	Arch func() *arch.Arch
	// Keep, when set, receives the job's compile artifacts right after a
	// successful compile, before simulation. It fires only on fresh
	// compiles — a job served from the cache never re-derives its
	// artifacts (use CompileJob to recover them). Keep is not part of
	// the cache identity; it must not influence the outcome.
	Keep func(Artifacts)
}

// NewJob builds the standard job for one evaluation point: gen generates
// the circuit and the architecture defaults to the Table-2 geometry with
// the key's AOD count.
func NewJob(bench string, scheme Scheme, aods int, gen func() (*circuit.Circuit, error)) Job {
	return Job{
		Key:     Key{Bench: bench, Scheme: scheme, AODs: aods},
		Circuit: gen,
	}
}

// Artifacts are the intermediate products of one compile — what a
// consumer needs to verify the program outside the engine (the batched
// oracle of internal/verify consumes corpora of these).
type Artifacts struct {
	Circuit *circuit.Circuit
	Program *isa.Program
	Initial *layout.Layout
}

// Outcome is the evaluation payload of one job. Every field except Tcomp
// is a deterministic function of the job's key; Tcomp is the measured
// wall-clock compilation time and varies run to run.
type Outcome struct {
	// Fidelity is the headline output fidelity (Equation 1, 1Q term
	// excluded per Sec. 2.2).
	Fidelity float64
	// Components are the individual fidelity factors, for Fig. 6.
	Components fidelity.Components
	// Texe is the simulated execution time in microseconds.
	Texe float64
	// Tcomp is the measured compilation time.
	Tcomp time.Duration
	// Stages is the number of Rydberg pulses the schedule uses.
	Stages int
	// Moves is the number of executed 1Q relocations.
	Moves int
	// Passes is the compiler's per-pass breakdown: self-time, call
	// counts, and counter deltas per pass (see compiler.PassStats).
	// Calls and counters are deterministic functions of the key;
	// durations are measured wall clock and vary run to run.
	Passes compiler.PassStats `json:"Passes,omitempty"`
	// Verify is the differential verification summary, present only
	// when the job's key requested verification. It is a deterministic
	// function of the key (a compiled program either violates a
	// constraint or it does not).
	Verify *verify.Summary `json:"Verify,omitempty"`
}

// Stabilize zeroes the outcome's measured wall-clock fields — the
// compile time and the per-pass durations — so documents built from it
// are byte-identical across runs and worker counts. The per-pass
// breakdown is dropped entirely (not just zeroed) to keep stable
// documents identical to their pre-breakdown form.
func (o *Outcome) Stabilize() {
	o.Tcomp = 0
	o.Passes = nil
}

// Result pairs a job's outcome with its engine-level accounting.
type Result struct {
	Key     Key
	Outcome Outcome
	// Err is the job's failure, if any; other jobs keep running.
	Err error
	// Elapsed is the wall-clock time this job occupied a worker. For a
	// cache hit this is near zero when the outcome was already
	// computed, but includes the full wait when the job blocked on
	// another worker's in-flight compile of the same key.
	Elapsed time.Duration
	// Cached reports whether the outcome was served by the cache
	// rather than compiled by this job.
	Cached bool
}

// Options configures one batch run.
type Options struct {
	// Workers bounds the number of concurrent jobs; values < 1 select
	// GOMAXPROCS.
	Workers int
	// OnResult, when set, streams each result as it completes. Calls
	// are serialized; done counts completed jobs, total is len(jobs).
	// Completion order is nondeterministic — consumers needing job
	// order use the returned slice.
	OnResult func(done, total int, r Result)
	// Cache, when set, is consulted and filled by this run, sharing
	// outcomes with previous and concurrent runs. Nil uses a private
	// per-run cache (duplicate keys within the run still compile once).
	Cache *Cache
	// Sem, when set, is an external concurrency gate shared across
	// runs: every worker acquires a slot before executing a job and
	// releases it afterwards, so concurrent runs holding the same
	// channel are jointly bounded by its capacity (the compile service
	// shares one gate across all requests). Within a run, Workers still
	// applies; the effective bound is the smaller of the two.
	Sem chan struct{}
	// Snapshots, when set, is the per-pass snapshot store: fresh
	// compiles of resumable pipelines capture per-block checkpoints into
	// it, and later compiles sharing a block prefix resume from the
	// longest matching checkpoint (or warm-start placement from the
	// nearest neighbor) instead of compiling cold. Outputs are
	// byte-identical either way; nil disables incremental compilation.
	Snapshots *SnapshotStore
}

// Stats aggregates one run's engine accounting.
type Stats struct {
	// Jobs is the number of jobs submitted.
	Jobs int
	// Workers is the effective worker count of the run: the requested
	// bound after defaulting to GOMAXPROCS and clamping to the job
	// count.
	Workers int
	// Compiles is the number of jobs that actually compiled.
	Compiles int
	// CacheHits is the number of jobs served from the cache — including
	// jobs that waited on another in-flight job with the same key, and
	// jobs read through from the disk tier (Cache.SetTier).
	CacheHits int
	// Wall is the end-to-end batch duration.
	Wall time.Duration
}

// Cache is a keyed outcome cache safe for concurrent use, backed by the
// generic LRU of internal/cache. A key is computed at most once while its
// entry is resident: concurrent requests for an uncomputed key block
// until the first computation finishes and then share its outcome. A
// bounded cache (NewCacheBounded) evicts least-recently-used outcomes,
// trading recompilation for bounded memory — the right shape for a
// long-running server; batch runs use the unbounded NewCache, whose
// working set is the job list itself.
type Cache struct {
	init sync.Once
	cap  int
	lru  *cache.LRU[Key, *cacheEntry]
	// tier, when set, is the second cache level: consulted on a miss
	// before computing, written through after a fresh computation. Set
	// before concurrent use (SetTier); read without synchronization.
	tier Tier
}

type cacheEntry struct {
	once    sync.Once
	outcome Outcome
	err     error
	// tierHit records that outcome came from the second tier rather
	// than a computation; written inside once, read after it.
	tierHit bool
}

// Tier is a second cache level behind the in-memory Cache — typically a
// disk-backed store (DiskTier over internal/store) so outcomes survive
// restarts and are shareable between processes. Implementations must be
// safe for concurrent use; Get misses and Put failures are silent (the
// tier is an optimization, never a source of truth). Canon is the key's
// precomputed canonical string, so tiers address storage without
// re-serializing the key.
type Tier interface {
	Get(key Key, canon string) (Outcome, bool)
	Put(key Key, canon string, o Outcome)
}

// SetTier installs the cache's second level. Call before the cache is
// shared across goroutines; outcomes already resident are unaffected.
func (c *Cache) SetTier(t Tier) { c.tier = t }

// NewCache returns an empty unbounded cache, for sharing across batch
// runs.
func NewCache() *Cache { return &Cache{} }

// NewCacheBounded returns an empty cache holding at most capacity
// outcomes (0 means unbounded).
func NewCacheBounded(capacity int) *Cache { return &Cache{cap: capacity} }

// ensure lazily builds the backing LRU so the zero Cache is usable.
func (c *Cache) ensure() *cache.LRU[Key, *cacheEntry] {
	c.init.Do(func() { c.lru = cache.New[Key, *cacheEntry](c.cap) })
	return c.lru
}

// Len returns the number of cached keys (computed or in flight).
func (c *Cache) Len() int { return c.ensure().Len() }

// Stats returns the backing cache's hit/miss/eviction accounting. Its
// hit count includes requests that waited on an in-flight computation of
// their key.
func (c *Cache) Stats() cache.Stats { return c.ensure().Stats() }

// getOrCompute returns the outcome for key, running compute at most once
// per resident entry. The boolean reports whether the outcome was served
// rather than computed: either the entry already existed (possibly still
// in flight on another goroutine, in which case the call blocks until
// that computation finishes) or the second tier had it. Fresh
// computations are written through to the tier; cancellation errors are
// evicted so a canceled request never poisons the key for later callers.
func (c *Cache) getOrCompute(key Key, canon string, compute func() (Outcome, error)) (Outcome, error, bool) {
	e, hit := c.ensure().GetOrAdd(key, func() *cacheEntry { return &cacheEntry{} })
	e.once.Do(func() {
		if c.tier != nil {
			if o, ok := c.tier.Get(key, canon); ok {
				e.outcome, e.tierHit = o, true
				return
			}
		}
		e.outcome, e.err = compute()
		if c.tier != nil && e.err == nil {
			c.tier.Put(key, canon, e.outcome)
		}
	})
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		// Best-effort eviction: a concurrently re-added fresh entry may
		// be dropped too, costing only a recompute later.
		c.lru.Remove(key)
	}
	return e.outcome, e.err, hit || e.tierHit
}

// Run executes jobs across the worker pool and returns one result per
// job, in job order. Per-job failures are reported in Result.Err and do
// not stop the batch; FirstError collects them. The returned error is
// non-nil only when ctx is cancelled, in which case unstarted jobs are
// abandoned and in-flight jobs are drained before returning.
func Run(ctx context.Context, jobs []Job, opts Options) ([]Result, Stats, error) {
	start := time.Now()
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewCache()
	}

	results := make([]Result, len(jobs))
	var compiles, hits atomic.Int64

	indices := make(chan int)
	var wg sync.WaitGroup
	var done atomic.Int64
	var emitMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				var r Result
				if opts.Sem != nil {
					select {
					case opts.Sem <- struct{}{}:
					case <-ctx.Done():
						// The run is being abandoned; record the
						// cancellation rather than block on the gate.
						results[i] = Result{Key: jobs[i].Key, Err: ctx.Err()}
						continue
					}
					r = runJob(jobs[i], cache, opts.Snapshots, &compiles, &hits)
					<-opts.Sem
				} else {
					r = runJob(jobs[i], cache, opts.Snapshots, &compiles, &hits)
				}
				results[i] = r
				if opts.OnResult != nil {
					emitMu.Lock()
					opts.OnResult(int(done.Add(1)), len(jobs), r)
					emitMu.Unlock()
				}
			}
		}()
	}

	var runErr error
dispatch:
	for i := range jobs {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		select {
		case indices <- i:
		case <-ctx.Done():
			runErr = ctx.Err()
			break dispatch
		}
	}
	close(indices)
	wg.Wait()

	stats := Stats{
		Jobs:      len(jobs),
		Workers:   workers,
		Compiles:  int(compiles.Load()),
		CacheHits: int(hits.Load()),
		Wall:      time.Since(start),
	}
	if runErr != nil {
		return nil, stats, runErr
	}
	return results, stats, nil
}

// FirstError returns the first per-job failure in job order, or nil.
func FirstError(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("pipeline: %s: %w", r.Key, r.Err)
		}
	}
	return nil
}

func runJob(job Job, cache *Cache, snaps *SnapshotStore, compiles, hits *atomic.Int64) Result {
	jobStart := time.Now()
	// Canonicalize the cache identity here, at the one point every
	// entry point funnels through, so a job naming the default grouping
	// explicitly shares the default's cache entry and result key.
	job.Key.Grouping = compiler.NormalizeGrouping(job.Key.Grouping)
	if job.Canon == "" {
		job.Canon = job.Key.String()
	}
	outcome, err, hit := cache.getOrCompute(job.Key, job.Canon, func() (Outcome, error) {
		compiles.Add(1)
		return execute(job, snaps)
	})
	if hit {
		hits.Add(1)
	}
	return Result{
		Key:     job.Key,
		Outcome: outcome,
		Err:     err,
		Elapsed: time.Since(jobStart),
		Cached:  hit,
	}
}

// execute runs one job end to end: generate, build the key's pipeline
// on the shared pass-manager driver, compile (through the snapshot
// store when one is installed and the pipeline is resumable), simulate,
// and — when the key asks for it — verify the compiled program
// differentially.
func execute(job Job, snaps *SnapshotStore) (Outcome, error) {
	circ, err := job.Circuit()
	if err != nil {
		return Outcome{}, err
	}
	hw := defaultArch(job, circ)

	p, err := pipelineFor(job.Key)
	if err != nil {
		return Outcome{}, err
	}
	var res *compiler.Result
	if snaps != nil && len(circ.Blocks) > 0 && p.Resumable() {
		res, err = snaps.run(p, job.Key, job.Canon, circ, hw)
	} else {
		res, err = p.Run(circ, hw)
	}
	if err != nil {
		return Outcome{}, err
	}
	if job.Keep != nil {
		job.Keep(Artifacts{Circuit: circ, Program: res.Program, Initial: res.Initial})
	}
	out, err := simulate(res)
	if err != nil {
		return out, err
	}
	if job.Key.Verify {
		out.Verify = verify.All(circ, res.Program, res.Initial).Summary()
	}
	return out, nil
}

// CompileJob runs the job's generate-and-compile front half and returns
// the artifacts, skipping the cache, the simulator, and verification —
// the recompile fallback for consumers that need artifacts of a job the
// cache already served (the batched verify sweep).
func CompileJob(job Job) (Artifacts, error) {
	job.Key.Grouping = compiler.NormalizeGrouping(job.Key.Grouping)
	circ, err := job.Circuit()
	if err != nil {
		return Artifacts{}, err
	}
	hw := defaultArch(job, circ)
	p, err := pipelineFor(job.Key)
	if err != nil {
		return Artifacts{}, err
	}
	res, err := p.Run(circ, hw)
	if err != nil {
		return Artifacts{}, err
	}
	return Artifacts{Circuit: circ, Program: res.Program, Initial: res.Initial}, nil
}

// pipelineFor builds the validated pass pipeline a key selects. Both
// schemes run through internal/compiler's shared driver; the key's
// grouping name substitutes the zoned grouping pass.
func pipelineFor(key Key) (*compiler.Pipeline, error) {
	switch key.Scheme {
	case Enola:
		return compiler.Enola(compiler.EnolaConfig{Seed: 1})
	case NonStorage, WithStorage:
		return compiler.Zoned(compiler.ZonedConfig{
			UseStorage: key.Scheme == WithStorage,
			Seed:       1,
			Grouping:   key.Grouping,
		})
	default:
		return nil, fmt.Errorf("unknown scheme %q", key.Scheme)
	}
}

func defaultArch(job Job, circ *circuit.Circuit) *arch.Arch {
	if job.Arch != nil {
		return job.Arch()
	}
	return arch.New(arch.Config{Qubits: circ.Qubits, AODs: job.Key.AODs})
}

func simulate(res *compiler.Result) (Outcome, error) {
	exec, err := sim.Execute(res.Program, res.Initial)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Fidelity:   exec.Fidelity,
		Components: exec.Components,
		Texe:       exec.Time,
		Tcomp:      res.Stats.CompileTime,
		Stages:     exec.Stages,
		Moves:      res.Stats.Moves,
		Passes:     res.Stats.Passes,
	}, nil
}
