package pipeline_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"powermove/internal/circuit"
	"powermove/internal/experiments"
	"powermove/internal/pipeline"
)

// slice is a small Table-3 slice: the three-way comparison over three
// quick benchmark instances (nine jobs). The -race CI run executes every
// test in this file over it on eight workers.
func slice() []pipeline.Job {
	var jobs []pipeline.Job
	for _, spec := range []experiments.Spec{
		{Family: experiments.QSim, Qubits: 10},
		{Family: experiments.BV, Qubits: 14},
		{Family: experiments.QFT, Qubits: 18},
	} {
		jobs = append(jobs, spec.ComparisonJobs(1)...)
	}
	return jobs
}

// canonical marshals the deterministic payload of results: everything
// except the measured wall-clock fields (Tcomp, Elapsed) and the
// scheduling-dependent Cached flag.
func canonical(t *testing.T, results []pipeline.Result) string {
	t.Helper()
	var b []byte
	for _, r := range results {
		r.Outcome.Stabilize()
		r.Elapsed = 0
		r.Cached = false
		enc, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		b = append(b, enc...)
		b = append(b, '\n')
	}
	return string(b)
}

// TestDeterministicAcrossWorkers checks the engine's central guarantee:
// the same job list produces byte-identical results on one worker and on
// eight, in job order both times.
func TestDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	serial, _, err := pipeline.Run(ctx, slice(), pipeline.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := pipeline.Run(ctx, slice(), pipeline.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipeline.FirstError(serial); err != nil {
		t.Fatal(err)
	}
	a, b := canonical(t, serial), canonical(t, parallel)
	if a != b {
		t.Errorf("results differ between 1 and 8 workers:\n%s\nvs\n%s", a, b)
	}
	for i, r := range parallel {
		if want := slice()[i].Key; r.Key != want {
			t.Errorf("result %d has key %s, want %s (job order violated)", i, r.Key, want)
		}
	}
}

// TestCacheAccounting checks that duplicate keys compile once, that the
// stats ledger adds up, and that a shared cache carries outcomes across
// runs.
func TestCacheAccounting(t *testing.T) {
	jobs := append(slice(), slice()...) // every key twice
	results, stats, err := pipeline.Run(context.Background(), jobs, pipeline.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipeline.FirstError(results); err != nil {
		t.Fatal(err)
	}
	unique := len(slice())
	if stats.Jobs != 2*unique {
		t.Errorf("Jobs = %d, want %d", stats.Jobs, 2*unique)
	}
	if stats.Workers != 8 {
		t.Errorf("Workers = %d, want 8", stats.Workers)
	}
	if stats.Compiles != unique {
		t.Errorf("Compiles = %d, want %d (duplicate keys must share one compile)", stats.Compiles, unique)
	}
	if stats.CacheHits != unique {
		t.Errorf("CacheHits = %d, want %d", stats.CacheHits, unique)
	}
	for i := 0; i < unique; i++ {
		first, second := results[i], results[i+unique]
		if first.Key != second.Key {
			t.Fatalf("result order broken at %d", i)
		}
		a, b := first.Outcome, second.Outcome
		a.Stabilize()
		b.Stabilize()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: duplicate jobs disagree", first.Key)
		}
	}

	shared := pipeline.NewCache()
	_, warm, err := pipeline.Run(context.Background(), slice(), pipeline.Options{Workers: 2, Cache: shared})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Compiles != unique || warm.CacheHits != 0 {
		t.Errorf("cold shared run: %d compiles, %d hits", warm.Compiles, warm.CacheHits)
	}
	_, hot, err := pipeline.Run(context.Background(), slice(), pipeline.Options{Workers: 2, Cache: shared})
	if err != nil {
		t.Fatal(err)
	}
	if hot.Compiles != 0 || hot.CacheHits != unique {
		t.Errorf("warm shared run: %d compiles, %d hits, want 0 and %d", hot.Compiles, hot.CacheHits, unique)
	}
	if shared.Len() != unique {
		t.Errorf("shared cache holds %d keys, want %d", shared.Len(), unique)
	}
}

// TestCancellation checks that cancelling the context aborts dispatch:
// Run reports ctx.Err and stops issuing new jobs.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, _, err := pipeline.Run(ctx, slice(), pipeline.Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if results != nil {
		t.Errorf("cancelled run returned results")
	}

	// Cancel mid-run from the progress callback: later jobs must be
	// abandoned, and Run must still drain cleanly.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	_, stats, err := pipeline.Run(ctx, slice(), pipeline.Options{
		Workers: 1,
		OnResult: func(done, total int, r pipeline.Result) {
			if seen.Add(1) == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v, want context.Canceled", err)
	}
	if stats.Compiles >= len(slice()) {
		t.Errorf("mid-run cancel compiled all %d jobs", stats.Compiles)
	}
}

// TestStreamingProgress checks the OnResult contract: one serialized call
// per job with a monotonically complete done counter.
func TestStreamingProgress(t *testing.T) {
	jobs := slice()
	seen := make(map[int]bool)
	_, _, err := pipeline.Run(context.Background(), jobs, pipeline.Options{
		Workers: 4,
		OnResult: func(done, total int, r pipeline.Result) {
			if total != len(jobs) {
				t.Errorf("total = %d, want %d", total, len(jobs))
			}
			if seen[done] {
				t.Errorf("done=%d reported twice", done)
			}
			seen[done] = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= len(jobs); i++ {
		if !seen[i] {
			t.Errorf("no progress call with done=%d", i)
		}
	}
}

// TestJobErrors checks that one failing job does not poison the batch.
func TestJobErrors(t *testing.T) {
	boom := errors.New("boom")
	jobs := []pipeline.Job{
		pipeline.NewJob("bad", pipeline.WithStorage, 1, func() (*circuit.Circuit, error) {
			return nil, boom
		}),
		experiments.Spec{Family: experiments.QSim, Qubits: 10}.Job(pipeline.WithStorage, 1),
	}
	results, stats, err := pipeline.Run(context.Background(), jobs, pipeline.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, boom) {
		t.Errorf("results[0].Err = %v, want boom", results[0].Err)
	}
	if results[1].Err != nil || results[1].Outcome.Fidelity <= 0 {
		t.Errorf("healthy job failed alongside the bad one: %+v", results[1])
	}
	if err := pipeline.FirstError(results); !errors.Is(err, boom) {
		t.Errorf("FirstError = %v, want boom", err)
	}
	if stats.Compiles != 2 {
		t.Errorf("Compiles = %d, want 2 (a failed compile still counts)", stats.Compiles)
	}

	unknown := pipeline.Job{
		Key:     pipeline.Key{Bench: "x", Scheme: "bogus", AODs: 1},
		Circuit: experiments.Spec{Family: experiments.QSim, Qubits: 10}.Circuit,
	}
	results, _, err = pipeline.Run(context.Background(), []pipeline.Job{unknown}, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestMatchesSerialReference cross-checks the engine against the
// experiments package's serial per-row entry point.
func TestMatchesSerialReference(t *testing.T) {
	spec := experiments.Spec{Family: experiments.BV, Qubits: 14}
	want, err := experiments.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := pipeline.Run(context.Background(), spec.ComparisonJobs(1), pipeline.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipeline.FirstError(results); err != nil {
		t.Fatal(err)
	}
	got := map[pipeline.Scheme]pipeline.Outcome{}
	for _, r := range results {
		got[r.Key.Scheme] = r.Outcome
	}
	for _, cmp := range []struct {
		scheme pipeline.Scheme
		want   experiments.SchemeResult
	}{
		{pipeline.Enola, want.Enola},
		{pipeline.NonStorage, want.NonStorage},
		{pipeline.WithStorage, want.WithStorage},
	} {
		g := got[cmp.scheme]
		if g.Fidelity != cmp.want.Fidelity || g.Texe != cmp.want.Texe ||
			g.Stages != cmp.want.Stages || g.Moves != cmp.want.Moves ||
			g.Components != cmp.want.Components {
			t.Errorf("%s: batch outcome diverges from serial reference\nbatch:  %+v\nserial: %+v",
				cmp.scheme, g, cmp.want)
		}
	}
}

// TestKeyString pins the key rendering used by progress output and logs.
func TestKeyString(t *testing.T) {
	k := pipeline.Key{Bench: "BV-70", Scheme: pipeline.WithStorage, AODs: 2}
	if got, want := k.String(), "BV-70/with-storage/2aod"; got != want {
		t.Errorf("Key.String = %q, want %q", got, want)
	}
	if fmt.Sprint(k) != k.String() {
		t.Error("Key does not print via String")
	}
}

// TestGroupingKey: a non-default grouping changes the cache identity
// and the key rendering, while an explicit "merged" canonicalizes onto
// the default's cache entry at the engine layer — whatever front end
// built the job.
func TestGroupingKey(t *testing.T) {
	gen := func() (*circuit.Circuit, error) {
		c := circuit.New("tiny", 4)
		c.AddBlock(0, circuit.NewCZ(0, 1), circuit.NewCZ(2, 3))
		return c, nil
	}
	base := pipeline.NewJob("tiny", pipeline.WithStorage, 1, gen)
	merged := base
	merged.Key.Grouping = "merged"
	inOrder := base
	inOrder.Key.Grouping = "in-order"

	cache := pipeline.NewCache()
	results, stats, err := pipeline.Run(context.Background(), []pipeline.Job{base, merged, inOrder},
		pipeline.Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipeline.FirstError(results); err != nil {
		t.Fatal(err)
	}
	if stats.Compiles != 2 || stats.CacheHits != 1 {
		t.Errorf("compiles = %d, hits = %d; want 2 compiles (default + in-order) and 1 hit (explicit merged)",
			stats.Compiles, stats.CacheHits)
	}
	if results[1].Key.Grouping != "" {
		t.Errorf("explicit merged reported key grouping %q, want canonical empty", results[1].Key.Grouping)
	}
	if got, want := results[2].Key.String(), "tiny/with-storage/1aod/in-order"; got != want {
		t.Errorf("grouped key renders %q, want %q", got, want)
	}
}

// TestBoundedCache checks the LRU-backed cache honors its capacity: with
// room for one outcome, alternating between two keys recompiles every
// time, the eviction counter advances, and Len never exceeds the bound.
func TestBoundedCache(t *testing.T) {
	gen := func() (*circuit.Circuit, error) {
		c := circuit.New("tiny", 4)
		c.AddBlock(0, circuit.NewCZ(0, 1), circuit.NewCZ(2, 3))
		return c, nil
	}
	jobA := pipeline.NewJob("tiny-a", pipeline.NonStorage, 1, gen)
	jobB := pipeline.NewJob("tiny-b", pipeline.NonStorage, 1, gen)

	cache := pipeline.NewCacheBounded(1)
	var compiles int
	for _, job := range []pipeline.Job{jobA, jobB, jobA, jobB} {
		results, stats, err := pipeline.Run(context.Background(), []pipeline.Job{job}, pipeline.Options{Workers: 1, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Err != nil {
			t.Fatal(results[0].Err)
		}
		compiles += stats.Compiles
		if n := cache.Len(); n > 1 {
			t.Fatalf("cache holds %d keys, capacity is 1", n)
		}
	}
	if compiles != 4 {
		t.Errorf("compiles = %d, want 4 (every alternation evicts)", compiles)
	}
	cs := cache.Stats()
	if cs.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", cs.Evictions)
	}

	// The same sequence against an unbounded cache compiles each key once.
	shared := pipeline.NewCache()
	compiles = 0
	for _, job := range []pipeline.Job{jobA, jobB, jobA, jobB} {
		_, stats, err := pipeline.Run(context.Background(), []pipeline.Job{job}, pipeline.Options{Workers: 1, Cache: shared})
		if err != nil {
			t.Fatal(err)
		}
		compiles += stats.Compiles
	}
	if compiles != 2 {
		t.Errorf("unbounded compiles = %d, want 2", compiles)
	}
	if cs := shared.Stats(); cs.Evictions != 0 || cs.Hits != 2 || cs.Misses != 2 {
		t.Errorf("unbounded stats = %+v, want 2 hits / 2 misses / 0 evictions", cs)
	}
}

// TestSharedSemaphore checks Options.Sem jointly bounds concurrent runs:
// two runs of 4 workers each sharing a 2-slot gate never execute more
// than 2 jobs at once.
func TestSharedSemaphore(t *testing.T) {
	var inFlight, peak atomic.Int64
	gen := func() (*circuit.Circuit, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer inFlight.Add(-1)
		c := circuit.New("sem", 4)
		c.AddBlock(0, circuit.NewCZ(0, 1), circuit.NewCZ(2, 3))
		return c, nil
	}
	jobs := func(prefix string) []pipeline.Job {
		var js []pipeline.Job
		for i := 0; i < 6; i++ {
			js = append(js, pipeline.NewJob(fmt.Sprintf("%s-%d", prefix, i), pipeline.NonStorage, 1, gen))
		}
		return js
	}

	sem := make(chan struct{}, 2)
	errs := make(chan error, 2)
	for _, prefix := range []string{"a", "b"} {
		go func(prefix string) {
			results, _, err := pipeline.Run(context.Background(), jobs(prefix), pipeline.Options{Workers: 4, Sem: sem})
			if err == nil {
				err = pipeline.FirstError(results)
			}
			errs <- err
		}(prefix)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrent jobs = %d across two runs sharing a 2-slot gate", p)
	}
}
