package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/compiler"
	"powermove/internal/layout"
)

// SnapshotStore is the incremental-compilation cache: per-block compiler
// checkpoints indexed by content hashes, shared across requests. A fresh
// compile of a resumable pipeline captures a checkpoint after every
// block; a later compile whose circuit shares a leading block prefix
// with a stored entry (same scheme configuration, qubit count, and
// architecture shape) resumes from the longest matching checkpoint and
// lowers only the divergent tail — placement and the shared blocks are
// never re-run. When no prefix matches, a sufficiently similar neighbor
// donates its initial layout as a warm-start placement hint instead.
//
// The store is safe for concurrent use: checkpoints are immutable once
// captured, probes and inserts are serialized, and compilation happens
// outside the lock.
type SnapshotStore struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*snapEntry
	order   []string // LRU order, least recent first
	warm    bool

	probes     int64
	prefixHits int64
	warmStarts int64
	savedNS    int64
}

// snapEntry is one cached compilation's incremental state.
type snapEntry struct {
	canon    string
	configID string
	qubits   int
	archFP   uint64
	// hashes are the per-block content hashes of the compiled circuit;
	// cps[i] is the checkpoint after block i. len(cps) == len(hashes).
	hashes [][16]byte
	cps    []compiler.Checkpoint
	// initial is the compile's initial layout, the warm-start donation.
	initial *layout.Layout
}

// DefaultSnapshotCap is the default bound on retained snapshot entries.
// Checkpoints hold layout clones and program prefixes, so the store is
// deliberately much smaller than the outcome cache.
const DefaultSnapshotCap = 64

// NewSnapshotStore returns a store retaining at most capacity entries
// (<= 0 selects DefaultSnapshotCap). Warm-start donation is enabled;
// disable it with SetWarmStart(false).
func NewSnapshotStore(capacity int) *SnapshotStore {
	if capacity <= 0 {
		capacity = DefaultSnapshotCap
	}
	return &SnapshotStore{
		cap:     capacity,
		entries: make(map[string]*snapEntry),
		warm:    true,
	}
}

// SetWarmStart toggles warm-start placement donation (the -no-warm-start
// escape hatch). Prefix resumption is unaffected. Call before the store
// is shared across goroutines.
func (s *SnapshotStore) SetWarmStart(on bool) { s.warm = on }

// SnapshotStats is the store's observability snapshot.
type SnapshotStats struct {
	// Entries is the number of retained snapshot entries.
	Entries int `json:"entries"`
	// Probes counts incremental-path compiles that consulted the store.
	Probes int64 `json:"probes"`
	// PrefixHits counts compiles resumed from a shared-prefix
	// checkpoint.
	PrefixHits int64 `json:"incremental_prefix_hits"`
	// WarmStarts counts compiles whose placement was warm-started from
	// a neighbor's layout.
	WarmStarts int64 `json:"warm_starts"`
	// SavedMS is the cumulative compile wall clock the resumed prefixes
	// had already paid for — the saved-time ledger.
	SavedMS float64 `json:"saved_ms"`
}

// Stats returns the store's counters.
func (s *SnapshotStore) Stats() SnapshotStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SnapshotStats{
		Entries:    len(s.entries),
		Probes:     s.probes,
		PrefixHits: s.prefixHits,
		WarmStarts: s.warmStarts,
		SavedMS:    float64(s.savedNS) / 1e6,
	}
}

// configID renders the key fields that select the pipeline — scheme,
// AOD count, grouping — excluding the benchmark name (prefix sharing
// works across benchmarks) and the verify flag (verification consumes
// the compiled program, it does not change it).
func configID(key Key) string {
	return fmt.Sprintf("%s/%d/%s", key.Scheme, key.AODs, key.Grouping)
}

// blockHashes content-hashes every block of circ: the 1Q count and the
// normalized gate list, independent of the circuit's name. Equal hashes
// mean equal blocks, so a shared leading run of hashes is a shared
// compilation prefix.
func blockHashes(circ *circuit.Circuit) [][16]byte {
	hashes := make([][16]byte, len(circ.Blocks))
	var buf [8]byte
	for i := range circ.Blocks {
		b := &circ.Blocks[i]
		h := sha256.New()
		binary.LittleEndian.PutUint64(buf[:], uint64(b.OneQ))
		h.Write(buf[:])
		for _, g := range b.Gates {
			binary.LittleEndian.PutUint32(buf[:4], uint32(g.A))
			binary.LittleEndian.PutUint32(buf[4:], uint32(g.B))
			h.Write(buf[:])
		}
		copy(hashes[i][:], h.Sum(nil))
	}
	return hashes
}

// probe finds the best incremental starting point for a compile with the
// given identity: the longest shared block prefix among compatible
// entries (returning its checkpoints), or — failing that, when
// warm-start is enabled — the most similar neighbor's initial layout as
// a placement hint.
func (s *SnapshotStore) probe(cfg string, qubits int, archFP uint64, hashes [][16]byte) (prefix []compiler.Checkpoint, hint *layout.Layout) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probes++

	var best *snapEntry
	bestK := 0
	for _, e := range s.entries {
		if e.configID != cfg || e.qubits != qubits || e.archFP != archFP {
			continue
		}
		k := sharedPrefix(e.hashes, hashes)
		if k > bestK {
			best, bestK = e, k
		}
	}
	if bestK > 0 {
		s.prefixHits++
		s.savedNS += int64(best.cps[bestK-1].Elapsed)
		s.touch(best.canon)
		return best.cps[:bestK:bestK], nil
	}

	if !s.warm {
		return nil, nil
	}
	var bestSim float64
	for _, e := range s.entries {
		if e.configID != cfg || e.qubits != qubits || e.archFP != archFP {
			continue
		}
		if sim := hashSimilarity(e.hashes, hashes); sim > bestSim {
			best, bestSim = e, sim
		}
	}
	if best != nil && bestSim >= 0.5 && best.initial != nil {
		s.warmStarts++
		s.touch(best.canon)
		return nil, best.initial
	}
	return nil, nil
}

// sharedPrefix returns the length of the longest equal leading run of a
// and b.
func sharedPrefix(a, b [][16]byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// hashSimilarity is the cheap circuit-distance probe behind warm-start
// donation: the multiset overlap of block hashes, normalized by the
// request's block count. Order-insensitive, so a reordered circuit still
// finds its neighbor.
func hashSimilarity(donor, req [][16]byte) float64 {
	if len(req) == 0 {
		return 0
	}
	counts := make(map[[16]byte]int, len(donor))
	for _, h := range donor {
		counts[h]++
	}
	overlap := 0
	for _, h := range req {
		if counts[h] > 0 {
			counts[h]--
			overlap++
		}
	}
	return float64(overlap) / float64(len(req))
}

// add retains a completed compile's checkpoints, replacing any prior
// entry under the same canon and evicting the least recently used entry
// beyond capacity.
func (s *SnapshotStore) add(e *snapEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[e.canon]; !ok {
		s.order = append(s.order, e.canon)
	} else {
		s.touch(e.canon)
	}
	s.entries[e.canon] = e
	for len(s.order) > s.cap {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.entries, victim)
	}
}

// touch moves canon to the most-recent end of the LRU order. Caller
// holds the lock.
func (s *SnapshotStore) touch(canon string) {
	for i, c := range s.order {
		if c == canon {
			s.order = append(append(s.order[:i:i], s.order[i+1:]...), canon)
			return
		}
	}
}

// run compiles circ through the store: probe for a prefix or a
// warm-start hint, run the pipeline from the best starting point while
// capturing per-block checkpoints, and retain the completed compile for
// future probes. The caller guarantees p.Resumable() and a non-empty
// circuit.
func (s *SnapshotStore) run(p *compiler.Pipeline, key Key, canon string, circ *circuit.Circuit, hw *arch.Arch) (*compiler.Result, error) {
	hashes := blockHashes(circ)
	cfg := configID(key)
	fp := hw.Fingerprint()
	prefix, hint := s.probe(cfg, circ.Qubits, fp, hashes)

	cps := make([]compiler.Checkpoint, 0, len(circ.Blocks))
	cps = append(cps, prefix...)
	opts := compiler.RunOptions{
		WarmStart: hint,
		Capture:   func(cp compiler.Checkpoint) { cps = append(cps, cp) },
	}
	if len(prefix) > 0 {
		opts.Resume = &prefix[len(prefix)-1]
		opts.WarmStart = nil
	}
	res, err := p.RunOpts(circ, hw, opts)
	if err != nil {
		return nil, err
	}
	if len(cps) == len(circ.Blocks) {
		s.add(&snapEntry{
			canon:    canon,
			configID: cfg,
			qubits:   circ.Qubits,
			archFP:   fp,
			hashes:   hashes,
			cps:      cps,
			initial:  res.Initial,
		})
	}
	return res, nil
}

// Saved returns the cumulative wall clock the store's prefix hits have
// avoided recompiling, as a duration.
func (s *SnapshotStore) Saved() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.savedNS)
}
