package pipeline

import (
	"encoding/json"

	"powermove/internal/store"
)

// DiskTier adapts a disk store (internal/store) to the Cache's Tier
// interface: outcomes are marshaled as JSON under the key's canonical
// string form (the precomputed canon — the tier never re-serializes the
// key). Every outcome field serializes losslessly — the compile wall
// clock included, though consumers treat tier hits as cached and mask
// it — so a read-through outcome is indistinguishable from the
// in-memory entry it restores.
func DiskTier(st *store.Store) Tier { return diskTier{st} }

type diskTier struct{ st *store.Store }

func (d diskTier) Get(key Key, canon string) (Outcome, bool) {
	raw, ok := d.st.Get(canon)
	if !ok {
		return Outcome{}, false
	}
	var o Outcome
	if err := json.Unmarshal(raw, &o); err != nil {
		// Schema drift between builds sharing a store directory; treat
		// as a miss and recompile.
		return Outcome{}, false
	}
	return o, true
}

func (d diskTier) Put(key Key, canon string, o Outcome) {
	raw, err := json.Marshal(o)
	if err != nil {
		return
	}
	d.st.Put(canon, raw)
}
