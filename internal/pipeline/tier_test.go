package pipeline

import (
	"context"
	"errors"
	"sync"
	"testing"

	"powermove/internal/circuit"
	"powermove/internal/store"
)

// memTier is an in-memory Tier for observing read-through/write-through
// behavior.
type memTier struct {
	mu   sync.Mutex
	m    map[Key]Outcome
	gets int
	puts int
}

func (t *memTier) Get(key Key, canon string) (Outcome, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gets++
	o, ok := t.m[key]
	return o, ok
}

func (t *memTier) Put(key Key, canon string, o Outcome) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[Key]Outcome)
	}
	t.m[key] = o
	t.puts++
}

func tierJob(n int) Job {
	return NewJob("tier-test", WithStorage, 1, func() (*circuit.Circuit, error) {
		c := circuit.New("tier-test", n)
		c.AddBlock(0, circuit.NewCZ(0, 1))
		return c, nil
	})
}

// TestTierWriteThrough: a fresh compile lands in the tier; a second
// cache over the same tier serves it without compiling, reporting the
// job cached.
func TestTierWriteThrough(t *testing.T) {
	tier := &memTier{}
	c1 := NewCache()
	c1.SetTier(tier)
	results, stats, err := Run(context.Background(), []Job{tierJob(4)}, Options{Workers: 1, Cache: c1})
	if err != nil || results[0].Err != nil {
		t.Fatal(err, results[0].Err)
	}
	if results[0].Cached || stats.Compiles != 1 {
		t.Fatalf("cold run: cached=%v compiles=%d, want fresh compile", results[0].Cached, stats.Compiles)
	}
	if tier.puts != 1 {
		t.Fatalf("tier puts = %d, want 1 (write-through)", tier.puts)
	}

	c2 := NewCache() // a "restarted" in-memory cache sharing the tier
	c2.SetTier(tier)
	results2, stats2, err := Run(context.Background(), []Job{tierJob(4)}, Options{Workers: 1, Cache: c2})
	if err != nil || results2[0].Err != nil {
		t.Fatal(err, results2[0].Err)
	}
	if !results2[0].Cached || stats2.Compiles != 0 || stats2.CacheHits != 1 {
		t.Fatalf("tier run: cached=%v compiles=%d hits=%d, want tier hit", results2[0].Cached, stats2.Compiles, stats2.CacheHits)
	}
	got, want := results2[0].Outcome, results[0].Outcome
	if got.Fidelity != want.Fidelity || got.Stages != want.Stages || got.Moves != want.Moves {
		t.Errorf("tier outcome diverged: %+v vs %+v", got, want)
	}

	// The in-memory cache now holds the entry: a repeat must not
	// consult the tier again.
	gets := tier.gets
	if _, _, err := Run(context.Background(), []Job{tierJob(4)}, Options{Workers: 1, Cache: c2}); err != nil {
		t.Fatal(err)
	}
	if tier.gets != gets {
		t.Errorf("repeat request consulted the tier (%d -> %d gets)", gets, tier.gets)
	}
}

// TestDiskTierRoundTrip: the store-backed tier round-trips a full
// Outcome — including the pass breakdown and a verify summary — through
// JSON on disk.
func TestDiskTierRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tier := DiskTier(st)

	job := tierJob(4)
	job.Key.Verify = true
	c1 := NewCache()
	c1.SetTier(tier)
	results, _, err := Run(context.Background(), []Job{job}, Options{Workers: 1, Cache: c1})
	if err != nil || results[0].Err != nil {
		t.Fatal(err, results[0].Err)
	}
	want := results[0].Outcome
	if want.Verify == nil || len(want.Passes) == 0 {
		t.Fatalf("test outcome lacks verify/passes: %+v", want)
	}

	got, ok := tier.Get(job.Key, job.Key.String())
	if !ok {
		t.Fatal("disk tier missed a just-written key")
	}
	if got.Fidelity != want.Fidelity || got.Stages != want.Stages ||
		got.Verify == nil || got.Verify.Violations != want.Verify.Violations ||
		len(got.Passes) != len(want.Passes) {
		t.Errorf("disk round trip diverged:\n got %+v\nwant %+v", got, want)
	}
	if st.Stats().Hits != 1 {
		t.Errorf("store stats = %+v, want 1 hit", st.Stats())
	}
}

// TestCanceledErrorNotCached: a computation failing with a cancellation
// error must not poison the cache entry for later callers.
func TestCanceledErrorNotCached(t *testing.T) {
	c := NewCache()
	key := Key{Bench: "x", Scheme: WithStorage, AODs: 1}
	_, err, _ := c.getOrCompute(key, key.String(), func() (Outcome, error) {
		return Outcome{}, context.Canceled
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	ran := false
	o, err, hit := c.getOrCompute(key, key.String(), func() (Outcome, error) {
		ran = true
		return Outcome{Stages: 7}, nil
	})
	if !ran || err != nil || hit || o.Stages != 7 {
		t.Errorf("retry after cancellation: ran=%v err=%v hit=%v outcome=%+v; want a fresh compute", ran, err, hit, o)
	}
}
