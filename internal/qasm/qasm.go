// Package qasm ingests quantum programs written in a practical subset of
// OpenQASM 2.0 and lowers them to the compiler's synthesized IR
// (internal/circuit): the alternating single-qubit layers and commutable
// CZ blocks of Sec. 2.2 of the paper.
//
// Supported statements:
//
//	OPENQASM 2.0;
//	include "qelib1.inc";          // accepted and ignored
//	qreg q[n];                     // exactly one quantum register
//	creg c[n];                     // accepted and ignored
//	h|x|y|z|s|sdg|t|tdg q[i];      // single-qubit gates
//	sx|sxdg|id q[i];               // single-qubit gates
//	rx|ry|rz|u1|p (expr) q[i];     // parameterized single-qubit gates
//	u|u2|u3 (expr, ...) q[i];      // parameterized single-qubit gates
//	cz q[i], q[j];                 // native two-qubit gate
//	cx q[i], q[j];                 // lowered to H(t); CZ; H(t)
//	cp|crz (expr) q[i], q[j];      // lowered to CZ + single-qubit phases
//	barrier ...;                   // forces a new CZ block
//	measure q[i] -> c[i];          // accepted and ignored
//
// Gate parameters are not evaluated — scheduling depends only on gate
// placement — but their syntax is validated.
//
// Block formation follows the synthesis convention of Sec. 2.2: CZ gates
// accumulate into the current commutable block; a single-qubit gate on a
// qubit already touched by the current block's CZ gates closes the block
// (diagonal CZ gates commute with each other but not with that rotation),
// while single-qubit gates on untouched qubits join the layer that
// precedes the block.
package qasm

import (
	"fmt"
	"strconv"
	"strings"

	"powermove/internal/circuit"
)

// Program is the parsed form of a QASM source file.
type Program struct {
	// Qubits is the size of the quantum register.
	Qubits int
	// Circuit is the lowered IR.
	Circuit *circuit.Circuit
	// OneQGates and TwoQGates count the source-level gates after
	// lowering (a cx contributes two 1Q gates and one CZ).
	OneQGates, TwoQGates int
}

// SyntaxError reports a parse failure with its source line.
type SyntaxError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("qasm: line %d: %s", e.Line, e.Msg)
}

// Parse lowers QASM source text to the compiler IR. The circuit is named
// after the name argument.
func Parse(name, src string) (*Program, error) {
	p := &parser{name: name}
	if err := p.run(src); err != nil {
		return nil, err
	}
	return p.finish()
}

// oneQGates is the set of unparameterized single-qubit gate names.
var oneQGates = map[string]bool{
	"h": true, "x": true, "y": true, "z": true,
	"s": true, "sdg": true, "t": true, "tdg": true, "id": true,
	"sx": true, "sxdg": true,
}

// paramOneQGates is the set of parameterized single-qubit gate names.
var paramOneQGates = map[string]bool{
	"rx": true, "ry": true, "rz": true, "u1": true, "p": true,
	"u": true, "u2": true, "u3": true,
}

// paramTwoQGates is the set of parameterized controlled-phase gates that
// lower to CZ plus single-qubit corrections.
var paramTwoQGates = map[string]bool{
	"cp": true, "crz": true, "cu1": true,
}

// blockBuilder accumulates the current CZ block during parsing.
type blockBuilder struct {
	oneQ    int
	gates   []circuit.CZ
	touched map[int]bool
	seen    map[circuit.CZ]bool
}

func newBlockBuilder() *blockBuilder {
	return &blockBuilder{touched: make(map[int]bool), seen: make(map[circuit.CZ]bool)}
}

func (b *blockBuilder) empty() bool { return b.oneQ == 0 && len(b.gates) == 0 }

type parser struct {
	name    string
	line    int
	qubits  int
	regName string
	sawHdr  bool
	blocks  []circuit.Block
	cur     *blockBuilder
	oneQ    int
	twoQ    int
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &SyntaxError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) run(src string) error {
	p.cur = newBlockBuilder()
	for i, raw := range strings.Split(src, "\n") {
		p.line = i + 1
		line := stripComment(raw)
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := p.statement(stmt); err != nil {
				return err
			}
		}
	}
	return nil
}

func stripComment(line string) string {
	if i := strings.Index(line, "//"); i >= 0 {
		return line[:i]
	}
	return line
}

// statement dispatches one semicolon-terminated statement.
func (p *parser) statement(stmt string) error {
	head := stmt
	if i := strings.IndexAny(stmt, " \t("); i >= 0 {
		head = stmt[:i]
	}
	switch strings.ToLower(head) {
	case "openqasm":
		p.sawHdr = true
		return nil
	case "include", "creg", "measure", "reset":
		return nil
	case "qreg":
		return p.qreg(stmt)
	case "barrier":
		p.closeBlock()
		return nil
	case "cz", "cx":
		return p.twoQubit(strings.ToLower(head), stmt)
	}
	lower := strings.ToLower(head)
	if oneQGates[lower] {
		return p.oneQubit(stmt, false)
	}
	if paramOneQGates[lower] {
		return p.oneQubit(stmt, true)
	}
	if paramTwoQGates[lower] {
		return p.twoQubit(lower, stmt)
	}
	return p.errf("unsupported statement %q", stmt)
}

func (p *parser) qreg(stmt string) error {
	if p.qubits > 0 {
		return p.errf("multiple qreg declarations")
	}
	rest := strings.TrimSpace(strings.TrimPrefix(stmt, "qreg"))
	open := strings.Index(rest, "[")
	closing := strings.Index(rest, "]")
	if open < 0 || closing < open {
		return p.errf("malformed qreg %q", stmt)
	}
	n, err := strconv.Atoi(strings.TrimSpace(rest[open+1 : closing]))
	if err != nil || n <= 0 {
		return p.errf("bad register size in %q", stmt)
	}
	p.regName = strings.TrimSpace(rest[:open])
	if p.regName == "" {
		return p.errf("missing register name in %q", stmt)
	}
	p.qubits = n
	return nil
}

// operand parses "q[3]" into qubit index 3.
func (p *parser) operand(tok string) (int, error) {
	tok = strings.TrimSpace(tok)
	open := strings.Index(tok, "[")
	closing := strings.Index(tok, "]")
	if open < 0 || closing < open {
		return 0, p.errf("malformed operand %q", tok)
	}
	reg := strings.TrimSpace(tok[:open])
	if p.qubits == 0 {
		return 0, p.errf("gate before qreg declaration")
	}
	if reg != p.regName {
		return 0, p.errf("unknown register %q", reg)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(tok[open+1 : closing]))
	if err != nil {
		return 0, p.errf("bad qubit index in %q", tok)
	}
	if idx < 0 || idx >= p.qubits {
		return 0, p.errf("qubit index %d out of range [0, %d)", idx, p.qubits)
	}
	return idx, nil
}

// args splits the operand list after an optional "(param)" group.
func (p *parser) args(stmt string, param bool) ([]string, error) {
	rest := stmt
	if i := strings.IndexAny(rest, " \t("); i >= 0 {
		rest = rest[i:]
	} else {
		return nil, p.errf("missing operands in %q", stmt)
	}
	rest = strings.TrimSpace(rest)
	if param {
		if !strings.HasPrefix(rest, "(") {
			return nil, p.errf("missing parameter list in %q", stmt)
		}
		closing := strings.Index(rest, ")")
		if closing < 0 {
			return nil, p.errf("unterminated parameter list in %q", stmt)
		}
		if strings.TrimSpace(rest[1:closing]) == "" {
			return nil, p.errf("empty parameter list in %q", stmt)
		}
		rest = strings.TrimSpace(rest[closing+1:])
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
		if parts[i] == "" {
			return nil, p.errf("empty operand in %q", stmt)
		}
	}
	return parts, nil
}

func (p *parser) oneQubit(stmt string, param bool) error {
	ops, err := p.args(stmt, param)
	if err != nil {
		return err
	}
	if len(ops) != 1 {
		return p.errf("single-qubit gate with %d operands in %q", len(ops), stmt)
	}
	q, err := p.operand(ops[0])
	if err != nil {
		return err
	}
	p.addOneQ(q)
	return nil
}

func (p *parser) twoQubit(gate, stmt string) error {
	param := paramTwoQGates[gate]
	ops, err := p.args(stmt, param)
	if err != nil {
		return err
	}
	if len(ops) != 2 {
		return p.errf("two-qubit gate with %d operands in %q", len(ops), stmt)
	}
	a, err := p.operand(ops[0])
	if err != nil {
		return err
	}
	b, err := p.operand(ops[1])
	if err != nil {
		return err
	}
	if a == b {
		return p.errf("two-qubit gate on identical qubit %d", a)
	}
	switch gate {
	case "cz":
		p.addCZ(a, b)
	case "cx":
		// cx = (I ⊗ H) CZ (I ⊗ H): basis change on the target.
		p.addOneQ(b)
		p.addCZ(a, b)
		p.addOneQ(b)
	default:
		// Controlled-phase family: CZ up to single-qubit phases,
		// which merge into the surrounding layers.
		p.addOneQ(a)
		p.addOneQ(b)
		p.addCZ(a, b)
	}
	return nil
}

// addOneQ records a single-qubit gate on q. If the current block's CZ
// gates already touch q, the rotation does not commute with them and a new
// block begins; otherwise it joins the current block's leading layer.
func (p *parser) addOneQ(q int) {
	if p.cur.touched[q] {
		p.closeBlock()
	}
	p.cur.oneQ++
	p.oneQ++
}

// addCZ appends a CZ to the current block, closing the block first if the
// same pair already appears in it (two CZs on one pair cannot share a
// block's disjoint stages).
func (p *parser) addCZ(a, b int) {
	g := circuit.NewCZ(a, b)
	if p.cur.seen[g] {
		p.closeBlock()
	}
	p.cur.gates = append(p.cur.gates, g)
	p.cur.seen[g] = true
	p.cur.touched[a] = true
	p.cur.touched[b] = true
	p.twoQ++
}

func (p *parser) closeBlock() {
	if p.cur.empty() {
		return
	}
	p.blocks = append(p.blocks, circuit.Block{OneQ: p.cur.oneQ, Gates: p.cur.gates})
	p.cur = newBlockBuilder()
}

func (p *parser) finish() (*Program, error) {
	if !p.sawHdr {
		return nil, &SyntaxError{Line: 1, Msg: "missing OPENQASM header"}
	}
	if p.qubits == 0 {
		return nil, &SyntaxError{Line: 1, Msg: "missing qreg declaration"}
	}
	p.closeBlock()
	c := circuit.New(p.name, p.qubits)
	c.Blocks = p.blocks
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("qasm: lowered circuit invalid: %w", err)
	}
	return &Program{
		Qubits:    p.qubits,
		Circuit:   c,
		OneQGates: p.oneQ,
		TwoQGates: p.twoQ,
	}, nil
}
