package qasm

import (
	"errors"
	"strings"
	"testing"

	"powermove/internal/circuit"
)

const header = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\n"

func parse(t *testing.T, body string) *Program {
	t.Helper()
	p, err := Parse("test", header+body)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseMinimal(t *testing.T) {
	p := parse(t, "cz q[0], q[1];\n")
	if p.Qubits != 4 {
		t.Errorf("Qubits = %d, want 4", p.Qubits)
	}
	if p.TwoQGates != 1 || p.OneQGates != 0 {
		t.Errorf("gate counts = %d/%d", p.OneQGates, p.TwoQGates)
	}
	if len(p.Circuit.Blocks) != 1 || p.Circuit.Blocks[0].Gates[0] != circuit.NewCZ(0, 1) {
		t.Errorf("blocks = %+v", p.Circuit.Blocks)
	}
}

func TestParseOneQubitGates(t *testing.T) {
	p := parse(t, "h q[0];\nx q[1];\nrz(pi/4) q[2];\nu1(0.5) q[3];\nsdg q[0];\n")
	if p.OneQGates != 5 || p.TwoQGates != 0 {
		t.Errorf("gate counts = %d/%d, want 5/0", p.OneQGates, p.TwoQGates)
	}
	if len(p.Circuit.Blocks) != 1 || p.Circuit.Blocks[0].OneQ != 5 {
		t.Errorf("blocks = %+v", p.Circuit.Blocks)
	}
}

// TestParseExtendedOneQubitGates covers the wider qelib alphabet: y/s/t
// (now first-class program-layer gates), sx/sxdg, and the multi-parameter
// u/u2/u3 forms (parameters are validated syntactically, not evaluated).
func TestParseExtendedOneQubitGates(t *testing.T) {
	p := parse(t, "y q[0];\ns q[1];\nt q[2];\nsx q[3];\nsxdg q[0];\n"+
		"u(0.1,0.2,0.3) q[1];\nu2(0,pi) q[2];\nu3(pi/2,0,pi) q[3];\n")
	if p.OneQGates != 8 || p.TwoQGates != 0 {
		t.Errorf("gate counts = %d/%d, want 8/0", p.OneQGates, p.TwoQGates)
	}
	if len(p.Circuit.Blocks) != 1 || p.Circuit.Blocks[0].OneQ != 8 {
		t.Errorf("blocks = %+v", p.Circuit.Blocks)
	}
	if _, err := Parse("bad", "qreg q[2];\nu2 q[0];\n"); err == nil {
		t.Errorf("u2 without a parameter list should fail")
	}
}

// TestCXLowering: cx becomes H(target) CZ H(target).
func TestCXLowering(t *testing.T) {
	p := parse(t, "cx q[0], q[1];\n")
	if p.OneQGates != 2 || p.TwoQGates != 1 {
		t.Errorf("cx lowered to %d 1Q + %d CZ, want 2 + 1", p.OneQGates, p.TwoQGates)
	}
}

// TestCPLowering: controlled-phase becomes CZ plus two 1Q phases.
func TestCPLowering(t *testing.T) {
	p := parse(t, "cp(0.3) q[2], q[3];\ncrz(1.0) q[0], q[1];\n")
	if p.TwoQGates != 2 || p.OneQGates != 4 {
		t.Errorf("gate counts = %d/%d, want 4/2", p.OneQGates, p.TwoQGates)
	}
}

// TestBlockBreaking: a rotation on a qubit already touched by the current
// block's CZ gates starts a new block; rotations on untouched qubits
// do not.
func TestBlockBreaking(t *testing.T) {
	p := parse(t, "cz q[0], q[1];\nh q[3];\ncz q[2], q[3];\nh q[0];\ncz q[0], q[2];\n")
	// cz(0,1) and cz(2,3) share a block (the h on 3 precedes a CZ on 3
	// but 3 was untouched at that point... it touches after cz(2,3)).
	// Sequence: cz(0,1) -> block A gates {01}; h q[3]: 3 untouched in A
	// so joins A's layer; cz(2,3) joins A; h q[0]: 0 touched in A ->
	// new block B with the h; cz(0,2) joins B.
	if len(p.Circuit.Blocks) != 2 {
		t.Fatalf("%d blocks, want 2: %+v", len(p.Circuit.Blocks), p.Circuit.Blocks)
	}
	a, b := p.Circuit.Blocks[0], p.Circuit.Blocks[1]
	if len(a.Gates) != 2 || a.OneQ != 1 {
		t.Errorf("block A = %+v, want 2 CZ + 1 1Q", a)
	}
	if len(b.Gates) != 1 || b.OneQ != 1 {
		t.Errorf("block B = %+v, want 1 CZ + 1 1Q", b)
	}
}

// TestRepeatedPairBreaksBlock: the same CZ twice cannot share a block.
func TestRepeatedPairBreaksBlock(t *testing.T) {
	p := parse(t, "cz q[0], q[1];\ncz q[1], q[0];\n")
	if len(p.Circuit.Blocks) != 2 {
		t.Fatalf("%d blocks, want 2", len(p.Circuit.Blocks))
	}
}

func TestBarrierBreaksBlock(t *testing.T) {
	p := parse(t, "cz q[0], q[1];\nbarrier q;\ncz q[2], q[3];\n")
	if len(p.Circuit.Blocks) != 2 {
		t.Fatalf("%d blocks, want 2", len(p.Circuit.Blocks))
	}
}

func TestIgnoredStatements(t *testing.T) {
	p := parse(t, "creg c[4];\nmeasure q[0] -> c[0];\nreset q[1];\ncz q[0], q[1]; // trailing comment\n")
	if p.TwoQGates != 1 {
		t.Errorf("TwoQGates = %d, want 1", p.TwoQGates)
	}
}

func TestMultipleStatementsPerLine(t *testing.T) {
	p := parse(t, "h q[0]; h q[1]; cz q[0], q[1];\n")
	if p.OneQGates != 2 || p.TwoQGates != 1 {
		t.Errorf("gate counts = %d/%d", p.OneQGates, p.TwoQGates)
	}
}

func wantSyntaxError(t *testing.T, src, substr string, line int) {
	t.Helper()
	_, err := Parse("bad", src)
	if err == nil {
		t.Fatalf("accepted, want error containing %q", substr)
	}
	var se *SyntaxError
	if !errors.As(err, &se) {
		// Lowering errors (circuit validation) are not SyntaxErrors.
		if !strings.Contains(err.Error(), substr) {
			t.Fatalf("err = %v, want %q", err, substr)
		}
		return
	}
	if !strings.Contains(se.Msg, substr) {
		t.Fatalf("err = %v, want %q", se, substr)
	}
	if line > 0 && se.Line != line {
		t.Errorf("error line = %d, want %d", se.Line, line)
	}
}

// TestParseErrors is the table-driven sweep of the parser's error
// paths: every rejection carries a SyntaxError naming the problem and,
// where asserted, the offending source line. The header occupies lines
// 1-3, so the first body statement is line 4.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		substr string
		line   int
	}{
		{"missing header", "qreg q[4];\ncz q[0], q[1];\n", "OPENQASM", 0},
		{"gate before qreg", "OPENQASM 2.0;\ncz q[0], q[1];\n", "before qreg", 2},
		{"missing qreg", "OPENQASM 2.0;\n", "missing qreg", 0},
		{"malformed qreg brackets", "OPENQASM 2.0;\nqreg q4;\n", "malformed qreg", 2},
		{"malformed qreg reversed brackets", "OPENQASM 2.0;\nqreg q]4[;\n", "malformed qreg", 2},
		{"qreg size zero", "OPENQASM 2.0;\nqreg q[0];\n", "bad register size", 2},
		{"qreg size negative", "OPENQASM 2.0;\nqreg q[-3];\n", "bad register size", 2},
		{"qreg size non-numeric", "OPENQASM 2.0;\nqreg q[many];\n", "bad register size", 2},
		{"qreg without name", "OPENQASM 2.0;\nqreg [4];\n", "missing register name", 2},
		{"second qreg", header + "qreg r[2];\n", "multiple qreg", 4},
		{"operand out of range", header + "cz q[0], q[9];\n", "out of range", 4},
		{"operand negative", header + "h q[-1];\n", "out of range", 4},
		{"operand bad index", header + "h q[x];\n", "bad qubit index", 4},
		{"operand missing brackets", header + "h q0;\n", "malformed operand", 4},
		{"operand unknown register", header + "cz r[0], q[1];\n", "unknown register", 4},
		{"operand empty", header + "cz q[0], ;\n", "empty operand", 4},
		{"missing operands", header + "h;\n", "missing operands", 4},
		{"two-qubit identical operands", header + "cz q[1], q[1];\n", "identical", 4},
		{"unknown gate", header + "frobnicate q[0];\n", "unsupported", 4},
		{"unknown gate with params", header + "frob(0.1,0.2,0.3) q[0];\n", "unsupported", 4},
		{"two-qubit gate one operand", header + "cz q[0];\n", "1 operands", 4},
		{"one-qubit gate two operands", header + "h q[0], q[1];\n", "2 operands", 4},
		{"param gate without params", header + "rz q[0];\n", "parameter", 4},
		{"param list unterminated", header + "rz(0.5 q[0];\n", "unterminated", 4},
		{"param list empty", header + "rz() q[0];\n", "empty parameter", 4},
		{"param two-qubit without params", header + "cp q[0], q[1];\n", "parameter", 4},
		{"param two-qubit empty list", header + "crz() q[0], q[1];\n", "empty parameter", 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantSyntaxError(t, tc.src, tc.substr, tc.line)
		})
	}
}

func TestSyntaxErrorFormat(t *testing.T) {
	e := &SyntaxError{Line: 7, Msg: "boom"}
	if got := e.Error(); got != "qasm: line 7: boom" {
		t.Errorf("Error() = %q", got)
	}
}

// TestRoundTrip: Write then Parse reconstructs the same block structure
// and CZ gates.
func TestRoundTrip(t *testing.T) {
	orig := circuit.New("rt", 5)
	orig.AddBlock(5, circuit.NewCZ(0, 1), circuit.NewCZ(2, 3))
	orig.AddBlock(2, circuit.NewCZ(1, 2))
	orig.AddBlock(3)

	src := Write(orig)
	back, err := Parse("rt", src)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if back.Qubits != orig.Qubits {
		t.Fatalf("qubits = %d, want %d", back.Qubits, orig.Qubits)
	}
	if len(back.Circuit.Blocks) != len(orig.Blocks) {
		t.Fatalf("%d blocks, want %d", len(back.Circuit.Blocks), len(orig.Blocks))
	}
	for bi := range orig.Blocks {
		ob, nb := orig.Blocks[bi], back.Circuit.Blocks[bi]
		if ob.OneQ != nb.OneQ {
			t.Errorf("block %d: OneQ %d, want %d", bi, nb.OneQ, ob.OneQ)
		}
		if len(ob.Gates) != len(nb.Gates) {
			t.Fatalf("block %d: %d gates, want %d", bi, len(nb.Gates), len(ob.Gates))
		}
		for gi := range ob.Gates {
			if ob.Gates[gi] != nb.Gates[gi] {
				t.Errorf("block %d gate %d: %v, want %v", bi, gi, nb.Gates[gi], ob.Gates[gi])
			}
		}
	}
}

func TestWriteHeader(t *testing.T) {
	c := circuit.New("hdr", 3)
	c.AddBlock(1, circuit.NewCZ(0, 2))
	out := Write(c)
	for _, piece := range []string{"OPENQASM 2.0;", "qreg q[3];", "cz q[0], q[2];", "// hdr"} {
		if !strings.Contains(out, piece) {
			t.Errorf("Write output missing %q:\n%s", piece, out)
		}
	}
}
