// Serialization of the compiler IR back to OpenQASM 2.0.
package qasm

import (
	"fmt"
	"strings"

	"powermove/internal/circuit"
)

// Write renders a circuit as OpenQASM 2.0 source. The IR does not record
// which qubits the single-qubit layers act on (scheduling does not depend
// on it), so each layer is emitted as rz placeholders on qubits
// 0, 1, ... cycling through the register; the CZ structure — the part the
// compiler schedules — round-trips exactly. Blocks are separated by
// barriers so a re-parse reconstructs the same block boundaries.
func Write(c *circuit.Circuit) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s\n", c.Name)
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.Qubits)
	for bi, blk := range c.Blocks {
		if bi > 0 {
			b.WriteString("barrier q;\n")
		}
		for i := 0; i < blk.OneQ; i++ {
			fmt.Fprintf(&b, "rz(0) q[%d];\n", i%c.Qubits)
		}
		for _, g := range blk.Gates {
			fmt.Fprintf(&b, "cz q[%d], q[%d];\n", g.A, g.B)
		}
	}
	return b.String()
}
