// Package report renders experiment results as aligned ASCII tables and
// CSV, the output formats cmd/experiments uses to regenerate the tables
// and figures of the paper's evaluation (Sec. 7). It has no knowledge of
// the experiments themselves; it formats rows of strings.
package report

import (
	"fmt"
	"strings"
)

// Table is a rectangular grid of cells with a header row and a title.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns an empty table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row. The cell count must match the header count;
// AddRow panics otherwise, because a ragged table is always a programming
// error in the caller.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned monospace text. Columns are sized to
// their widest cell; a rule separates the header from the body.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		// Trim trailing padding of the last column.
		for b.Len() > 0 && b.String()[b.Len()-1] == ' ' {
			s := b.String()
			b.Reset()
			b.WriteString(strings.TrimRight(s, " "))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table in RFC-4180-style CSV: cells containing commas,
// quotes, or newlines are quoted with doubled inner quotes.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(escapeCSV(cell))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func escapeCSV(cell string) string {
	if !strings.ContainsAny(cell, ",\"\n") {
		return cell
	}
	return `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
}

// Fixed formats v with prec decimal places.
func Fixed(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// Sci formats v compactly: fixed-point with two decimals for values in
// [0.01, 10000), scientific notation otherwise. It mirrors the mixed
// formatting of the paper's Table 3.
func Sci(v float64) string {
	if v == 0 {
		return "0"
	}
	if av := abs(v); av >= 0.01 && av < 10000 {
		return fmt.Sprintf("%.2f", v)
	}
	return fmt.Sprintf("%.2e", v)
}

// Ratio formats a ratio as "12.34x"; ratios at or above 1000 switch to
// scientific notation, matching the paper's improvement columns.
func Ratio(v float64) string {
	if abs(v) >= 1000 {
		return fmt.Sprintf("%.2ex", v)
	}
	return fmt.Sprintf("%.2fx", v)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
