package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tbl := NewTable("Demo", "Name", "Value")
	tbl.AddRow("a", "1")
	tbl.AddRow("longer-name", "2.5")
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("%d lines, want 5:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	// "Value" must start at the same column in the header and each row.
	col := strings.Index(lines[1], "Value")
	if col < 0 {
		t.Fatal("header missing Value")
	}
	if lines[3][col] != '1' || lines[4][col] != '2' {
		t.Errorf("columns misaligned:\n%s", out)
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("rule line = %q", lines[2])
	}
}

func TestRenderNoTitle(t *testing.T) {
	tbl := NewTable("", "A")
	tbl.AddRow("x")
	if strings.HasPrefix(tbl.Render(), "\n") {
		t.Error("empty title produced leading newline")
	}
}

func TestAddRowPanicsOnArity(t *testing.T) {
	tbl := NewTable("t", "A", "B")
	defer func() {
		if recover() == nil {
			t.Fatal("ragged row did not panic")
		}
	}()
	tbl.AddRow("only-one")
}

func TestCSVEscaping(t *testing.T) {
	tbl := NewTable("t", "A", "B")
	tbl.AddRow(`plain`, `with,comma`)
	tbl.AddRow(`with"quote`, "with\nnewline")
	got := tbl.CSV()
	want := "A,B\nplain,\"with,comma\"\n\"with\"\"quote\",\"with\nnewline\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Fixed(3.14159, 2), "3.14"},
		{Fixed(2, 0), "2"},
		{Sci(0), "0"},
		{Sci(0.5), "0.50"},
		{Sci(1234.5), "1234.50"},
		{Sci(0.0001), "1.00e-04"},
		{Sci(123456), "1.23e+05"},
		{Sci(-0.002), "-2.00e-03"},
		{Ratio(2.5), "2.50x"},
		{Ratio(1090.36), "1.09e+03x"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("formatted %q, want %q", c.got, c.want)
		}
	}
}
