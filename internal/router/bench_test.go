package router

import (
	"fmt"
	"math/rand"
	"testing"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/layout"
	"powermove/internal/stage"
)

// benchStage builds a random disjoint stage over n qubits: n/4 CZ pairs
// drawn without replacement, the density a QAOA layer produces.
func benchStage(n int, rng *rand.Rand) stage.Stage {
	perm := rng.Perm(n)
	var gates []circuit.CZ
	for i := 0; i+1 < n/2; i += 2 {
		gates = append(gates, circuit.NewCZ(perm[i], perm[i+1]))
	}
	return stage.Stage{Gates: gates}
}

// BenchmarkRoute measures one full storage-mode layout transition — park
// non-interacting qubits, label the stage's pairs, place the undecided —
// at several register sizes. The per-iteration layout clone is included;
// it is a fraction of the routing work.
func BenchmarkRoute(b *testing.B) {
	for _, n := range []int{100, 400, 1000} {
		a := arch.New(arch.Config{Qubits: n})
		initial := layout.New(a, n)
		initial.PlaceAll(arch.Storage)
		rng := rand.New(rand.NewSource(17))
		stages := make([]stage.Stage, 8)
		for i := range stages {
			stages[i] = benchStage(n, rng)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l := initial.Clone()
				for _, st := range stages {
					if _, err := Route(l, st, true, nil); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkRouteNonStorage measures the computation-zone-only mode on the
// same stage sequences.
func BenchmarkRouteNonStorage(b *testing.B) {
	for _, n := range []int{100, 1000} {
		a := arch.New(arch.Config{Qubits: n})
		initial := layout.New(a, n)
		initial.PlaceAll(arch.Compute)
		rng := rand.New(rand.NewSource(18))
		stages := make([]stage.Stage, 8)
		for i := range stages {
			stages[i] = benchStage(n, rng)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l := initial.Clone()
				for _, st := range stages {
					if _, err := Route(l, st, false, nil); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
