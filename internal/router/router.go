// Package router implements the Continuous Router of Sec. 5 of the paper.
// Given the current qubit layout and the next Rydberg stage, it decides the
// single-qubit movements that realize every CZ pair of the stage and the
// required inter-zone traffic, transitioning the layout *directly* into the
// next stage's configuration instead of reverting to a fixed initial layout
// the way prior compilers do.
//
// The decision follows the three steps of Sec. 5.2:
//
//  1. Non-interacting qubits in the computation zone are sent down to the
//     nearest empty storage site (zoned mode only), farthest-from-storage
//     qubits choosing first.
//  2. Interacting qubits are labeled static, mobile, or undecided by a
//     case analysis on the zones of each CZ pair (Fig. 4).
//  3. Every undecided qubit is assigned the nearest empty computation-zone
//     site, and its mobile partner follows it there.
package router

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"

	"powermove/internal/arch"
	"powermove/internal/bitset"
	"powermove/internal/layout"
	"powermove/internal/move"
	"powermove/internal/stage"
)

// label is the per-qubit movement role of Sec. 5.2 step 2.
type label int

const (
	unlabeled label = iota
	static
	mobile
	undecided
)

// departed is the per-qubit sentinel for "destination not yet chosen".
const departed = -1

// pending is one undecided qubit awaiting a step-3 site, with the mobile
// partner that follows it there.
type pending struct{ undecidedQ, follower int }

// planner tracks the planned post-transition occupancy while movement
// decisions are being made. Qubits start planned at their current sites;
// deciding that a qubit moves removes it from its origin immediately (even
// before its destination is known), and commits it to its destination once
// chosen. All state lives in flat slices indexed by qubit or by
// arch.SiteIndex, plus a bitset over site indexes that makes the
// nearest-empty-site scans word-at-a-time; the planner runs once per
// Rydberg stage and is on the compiler's hot path, so instances are pooled
// and every per-Route buffer is reused across calls.
type planner struct {
	l        *layout.Layout
	occ      [][]int // site index -> planned occupants
	target   []int   // qubit -> planned site index, or departed
	label    []label
	inter    []bool     // interacting qubits of the stage
	occupied bitset.Set // site indexes with >= 1 planned occupant

	// Reusable scratch for parkNonInteracting, the step-2 waiting list,
	// and finish.
	parked  []parkedQ
	waiting []pending
	destQ   []int
	destS   []arch.Site
}

// parkedQ is one computation-zone qubit awaiting a storage site, with its
// y coordinate precomputed as the step-1 sort key.
type parkedQ struct {
	q int
	y float64
}

// plannerPool recycles planners across Route calls; Route is invoked once
// per Rydberg stage and the occupancy buffers dominate its allocations.
var plannerPool = sync.Pool{New: func() any { return new(planner) }}

// acquirePlanner returns a pooled planner reset for layout l.
func acquirePlanner(l *layout.Layout) *planner {
	p := plannerPool.Get().(*planner)
	n := l.Qubits()
	sites := l.Arch().TotalSites()
	p.l = l
	if cap(p.occ) < sites {
		p.occ = make([][]int, sites)
	} else {
		p.occ = p.occ[:sites]
		for i := range p.occ {
			p.occ[i] = p.occ[i][:0]
		}
	}
	p.target = resizeInts(p.target, n)
	if cap(p.label) < n {
		p.label = make([]label, n)
	} else {
		p.label = p.label[:n]
		for i := range p.label {
			p.label[i] = unlabeled
		}
	}
	if cap(p.inter) < n {
		p.inter = make([]bool, n)
	} else {
		p.inter = p.inter[:n]
		for i := range p.inter {
			p.inter[i] = false
		}
	}
	p.occupied.Reset(sites)
	p.parked = p.parked[:0]
	p.waiting = p.waiting[:0]
	p.destQ = p.destQ[:0]
	p.destS = p.destS[:0]

	for q := 0; q < n; q++ {
		idx := l.IndexOf(q)
		p.occ[idx] = append(p.occ[idx], q)
		p.target[q] = idx
		p.occupied.Add(idx)
	}
	return p
}

// release clears the planner's layout reference and returns it to the pool.
func (p *planner) release() {
	p.l = nil
	plannerPool.Put(p)
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// depart removes q from its planned site without assigning a destination.
func (p *planner) depart(q int) {
	idx := p.target[q]
	if idx == departed {
		return
	}
	residents := p.occ[idx]
	for i, r := range residents {
		if r == q {
			p.occ[idx] = append(residents[:i], residents[i+1:]...)
			break
		}
	}
	if len(p.occ[idx]) == 0 {
		p.occupied.Remove(idx)
	}
	p.target[q] = departed
}

// commit assigns destination s to qubit q, departing it first if needed.
func (p *planner) commit(q int, s arch.Site) {
	if p.target[q] != departed {
		p.depart(q)
	}
	idx := p.l.Arch().SiteIndex(s)
	p.occ[idx] = append(p.occ[idx], q)
	p.occupied.Add(idx)
	p.target[q] = idx
}

// blocked reports whether the site of qubit q holds, besides q itself, a
// resident that is certain to remain there: a qubit already labeled
// static, or a non-interacting qubit that is not scheduled to move away.
// Such a resident forces q to the undecided label (Fig. 4c case 2,
// Fig. 4d case 2), because the pair converging on this site would cluster.
func (p *planner) blocked(q int) bool {
	for _, r := range p.occ[p.l.IndexOf(q)] {
		if r == q {
			continue
		}
		if p.label[r] == static {
			return true
		}
		if !p.inter[r] {
			return true
		}
	}
	return false
}

// nearestEmpty returns the closest planned-empty site of zone z to qubit
// q's current position, breaking distance ties by row then column (the
// row-major order of arch.Sites). It scans the zone's contiguous site-index
// range through the occupancy bitset — skipping occupied sites a word at a
// time — and compares squared distances. Squared comparison selects the
// same site the Euclidean comparison did: site coordinates are integer
// multiples of the pitch, so distinct distances differ by far more than
// the rounding of math.Hypot ever could.
func (p *planner) nearestEmpty(z arch.Zone, q int) (arch.Site, bool) {
	a := p.l.Arch()
	from := p.l.PosOf(q)
	lo, hi := a.ZoneIndexRange(z)
	best := -1
	bestD2 := 0.0
	for idx := p.occupied.NextClear(lo); idx >= 0 && idx < hi; idx = p.occupied.NextClear(idx + 1) {
		pos := a.PosAt(idx)
		dx, dy := pos.X-from.X, pos.Y-from.Y
		d2 := dx*dx + dy*dy
		if best < 0 || d2 < bestD2 {
			best, bestD2 = idx, d2
		}
	}
	if best < 0 {
		return arch.Site{}, false
	}
	return a.SiteAt(best), true
}

// Route decides and applies the layout transition for the next stage. It
// returns the 1Q movements (one per qubit that changes site) and mutates l
// into the post-transition layout. When useStorage is false the router
// runs in computation-zone-only mode: step 1 is skipped and non-interacting
// qubits remain in place, as in the paper's non-storage evaluation column.
//
// For pairs that are both in the computation zone (Sec. 5.2 case 4), one
// qubit must be chosen as the mover. The paper chooses randomly; passing a
// non-nil rng reproduces that behaviour. Passing a nil rng selects the
// deterministic lower-index convention instead, which aligns the
// displacement directions of a stage's movements and lets the Coll-Move
// grouping pack them far more densely (see BenchmarkAblationMoverChoice);
// it is the default of the full pipeline.
func Route(l *layout.Layout, st stage.Stage, useStorage bool, rng *rand.Rand) ([]move.Move, error) {
	if !st.Disjoint() {
		return nil, fmt.Errorf("router: stage gates are not qubit-disjoint")
	}
	for _, g := range st.Gates {
		if g.B >= l.Qubits() {
			return nil, fmt.Errorf("router: gate qubit %d outside layout of %d qubits", g.B, l.Qubits())
		}
	}
	p := acquirePlanner(l)
	defer p.release()
	for _, g := range st.Gates {
		p.inter[g.A] = true
		p.inter[g.B] = true
	}

	if useStorage {
		if err := p.parkNonInteracting(); err != nil {
			return nil, err
		}
	} else if err := p.separateStalePairs(); err != nil {
		return nil, err
	}

	// Step 2: label interacting qubits gate by gate.
	for _, g := range st.Gates {
		qi, qj := g.A, g.B
		si, sj := l.SiteOf(qi), l.SiteOf(qj)
		if si == sj {
			if si.Zone == arch.Compute {
				// Already co-located at a computation site: both stay.
				p.label[qi], p.label[qj] = static, static
				continue
			}
			// Co-located in storage: the pair must surface to the
			// computation zone; fall through to the both-in-storage case.
		}
		zi, zj := si.Zone, sj.Zone
		switch {
		case zi == arch.Storage && zj == arch.Storage:
			// Case 1: interaction site chosen in step 3.
			p.label[qj] = undecided
			p.label[qi] = mobile
			p.depart(qj)
			p.depart(qi)
			p.waiting = append(p.waiting, pending{undecidedQ: qj, follower: qi})
		case zi == arch.Storage || zj == arch.Storage:
			// Cases 2 and 3 (symmetric): the storage qubit always moves out.
			storageQ, computeQ := qi, qj
			if zj == arch.Storage {
				storageQ, computeQ = qj, qi
			}
			p.label[storageQ] = mobile
			p.depart(storageQ)
			if p.blocked(computeQ) {
				p.label[computeQ] = undecided
				p.depart(computeQ)
				p.waiting = append(p.waiting, pending{undecidedQ: computeQ, follower: storageQ})
			} else {
				p.label[computeQ] = static
				p.commit(storageQ, l.SiteOf(computeQ))
			}
		default:
			// Case 4: both in the computation zone; one becomes mobile
			// (randomly with an rng, lower-index otherwise).
			mob, other := qi, qj
			if rng != nil && rng.Intn(2) == 1 {
				mob, other = qj, qi
			}
			p.label[mob] = mobile
			p.depart(mob)
			if p.blocked(other) {
				p.label[other] = undecided
				p.depart(other)
				p.waiting = append(p.waiting, pending{undecidedQ: other, follower: mob})
			} else {
				p.label[other] = static
				p.commit(mob, l.SiteOf(other))
			}
		}
	}

	// Step 3: place undecided qubits on the nearest empty computation
	// site; their partners follow.
	for _, w := range p.waiting {
		s, ok := p.nearestEmpty(arch.Compute, w.undecidedQ)
		if !ok {
			return nil, fmt.Errorf("router: no empty computation site for qubit %d", w.undecidedQ)
		}
		p.commit(w.undecidedQ, s)
		p.commit(w.follower, s)
	}

	return p.finish()
}

// parkNonInteracting implements step 1: every non-interacting qubit in the
// computation zone moves vertically down into storage, processed in
// descending order of y coordinate so qubits farther from the storage zone
// choose their sites first.
func (p *planner) parkNonInteracting() error {
	for q := 0; q < p.l.Qubits(); q++ {
		if !p.inter[q] && p.l.Zone(q) == arch.Compute {
			p.parked = append(p.parked, parkedQ{q: q, y: p.l.PosOf(q).Y})
		}
	}
	slices.SortStableFunc(p.parked, func(a, b parkedQ) int {
		switch {
		case a.y > b.y:
			return -1
		case a.y < b.y:
			return 1
		}
		return a.q - b.q
	})
	for _, pk := range p.parked {
		q := pk.q
		p.label[q] = mobile
		p.depart(q)
		s, ok := p.nearestEmpty(arch.Storage, q)
		if !ok {
			return fmt.Errorf("router: storage zone full, cannot park qubit %d", q)
		}
		p.commit(q, s)
	}
	return nil
}

// separateStalePairs handles the computation-zone-only counterpart of
// step 1. Without a storage zone, non-interacting qubits stay in place —
// but a pair co-located by the *previous* stage whose qubits are both idle
// in the next stage would remain clustered within the Rydberg radius and
// trigger an unwanted interaction at the next pulse. One qubit of every
// such stale pair (the higher-indexed one, for determinism) is relocated
// to the nearest empty computation site. Stale pairs with one interacting
// member need no handling here: the remaining idle resident blocks the
// site, so step 2 labels the interacting member mobile or undecided and it
// departs.
func (p *planner) separateStalePairs() error {
	for q := 0; q < p.l.Qubits(); q++ {
		if p.inter[q] {
			continue
		}
		residents := p.l.At(p.l.SiteOf(q))
		if len(residents) != 2 {
			continue
		}
		other := residents[0]
		if other == q {
			other = residents[1]
		}
		if p.inter[other] || q < other {
			continue
		}
		p.depart(q)
		s, ok := p.nearestEmpty(arch.Compute, q)
		if !ok {
			return fmt.Errorf("router: no empty computation site to separate stale pair at qubit %d", q)
		}
		p.commit(q, s)
	}
	return nil
}

// finish materializes the plan: it derives the 1Q moves, applies them to
// the layout, and returns them sorted by qubit for determinism. The
// destination buffers feed layout.BulkMoveSorted, so no per-call map is
// built.
func (p *planner) finish() ([]move.Move, error) {
	a := p.l.Arch()
	count := 0
	for q := 0; q < p.l.Qubits(); q++ {
		if p.target[q] == departed {
			return nil, fmt.Errorf("router: qubit %d left without destination", q)
		}
		if p.target[q] != p.l.IndexOf(q) {
			count++
		}
	}
	if count == 0 {
		return nil, nil
	}
	moves := make([]move.Move, 0, count)
	for q := 0; q < p.l.Qubits(); q++ {
		if p.target[q] == p.l.IndexOf(q) {
			continue
		}
		cur, dest := p.l.SiteOf(q), a.SiteAt(p.target[q])
		moves = append(moves, move.New(a, q, cur, dest))
		p.destQ = append(p.destQ, q)
		p.destS = append(p.destS, dest)
	}
	p.l.BulkMoveSorted(p.destQ, p.destS)
	return moves, nil
}
