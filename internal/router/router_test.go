package router

import (
	"math/rand"
	"strings"
	"testing"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/layout"
	"powermove/internal/stage"
)

// randomStage builds a random stage of disjoint pairs over n qubits.
func randomStage(n, pairs int, rng *rand.Rand) stage.Stage {
	perm := rng.Perm(n)
	var st stage.Stage
	for i := 0; i+1 < len(perm) && len(st.Gates) < pairs; i += 2 {
		st.Gates = append(st.Gates, circuit.NewCZ(perm[i], perm[i+1]))
	}
	return st
}

// TestRouteRandomStagesWithStorage is the router's central property test:
// starting from the all-in-storage initial layout and routing a long
// random sequence of stages, after every transition (a) the layout
// satisfies the occupancy invariants for that stage's pairs, (b) every
// pair is co-located in the computation zone, and (c) every
// non-interacting qubit sits in storage (storage mode shields them all).
func TestRouteRandomStagesWithStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(60)
		a := arch.New(arch.Config{Qubits: n})
		l := layout.New(a, n)
		l.PlaceAll(arch.Storage)
		for step := 0; step < 12; step++ {
			st := randomStage(n, 1+rng.Intn(n/2), rng)
			moves, err := Route(l, st, true, nil)
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if err := l.Validate(st.Gates); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			inter := st.QubitSet()
			for q := 0; q < n; q++ {
				if inter[q] && l.Zone(q) != arch.Compute {
					t.Fatalf("trial %d step %d: interacting qubit %d in %v", trial, step, q, l.Zone(q))
				}
				if !inter[q] && l.Zone(q) != arch.Storage {
					t.Fatalf("trial %d step %d: idle qubit %d left in %v", trial, step, q, l.Zone(q))
				}
			}
			for _, m := range moves {
				if m.FromSite == m.ToSite {
					t.Fatalf("trial %d step %d: zero-length move emitted", trial, step)
				}
			}
		}
	}
}

// TestRouteRandomStagesComputeOnly mirrors the storage property test for
// the non-storage mode: layouts stay legal and pairs co-locate, with
// everything in the computation zone.
func TestRouteRandomStagesComputeOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(60)
		a := arch.New(arch.Config{Qubits: n})
		l := layout.New(a, n)
		l.PlaceAll(arch.Compute)
		for step := 0; step < 12; step++ {
			st := randomStage(n, 1+rng.Intn(n/2), rng)
			if _, err := Route(l, st, false, nil); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if err := l.Validate(st.Gates); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			for q := 0; q < n; q++ {
				if l.Zone(q) != arch.Compute {
					t.Fatalf("trial %d step %d: qubit %d escaped to %v in compute-only mode", trial, step, q, l.Zone(q))
				}
			}
		}
	}
}

// TestRouteFullComputeZone exercises the tightest packing: n equals the
// number of computation sites (QAOA-regular3-100 hits this), where
// nearest-empty searches have the least slack.
func TestRouteFullComputeZone(t *testing.T) {
	n := 100 // 10x10 compute zone exactly full
	a := arch.New(arch.Config{Qubits: n})
	l := layout.New(a, n)
	l.PlaceAll(arch.Compute)
	rng := rand.New(rand.NewSource(303))
	for step := 0; step < 20; step++ {
		st := randomStage(n, 1+rng.Intn(50), rng)
		if _, err := Route(l, st, false, nil); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := l.Validate(st.Gates); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestRouteRepeatedStageIsFree: re-running the same stage from the layout
// it produced requires no movement in compute-only mode — pairs are
// already co-located.
func TestRouteRepeatedStageIsFree(t *testing.T) {
	n := 16
	a := arch.New(arch.Config{Qubits: n})
	l := layout.New(a, n)
	l.PlaceAll(arch.Compute)
	st := stage.Stage{Gates: []circuit.CZ{circuit.NewCZ(0, 1), circuit.NewCZ(2, 3)}}
	if _, err := Route(l, st, false, nil); err != nil {
		t.Fatal(err)
	}
	moves, err := Route(l, st, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Errorf("repeating a stage produced %d moves, want 0: %v", len(moves), moves)
	}
}

// TestRouteStorageParksIdle: after one stage in storage mode, a specific
// idle qubit has been parked and a specific pair co-located.
func TestRouteStorageParksIdle(t *testing.T) {
	n := 9
	a := arch.New(arch.Config{Qubits: n})
	l := layout.New(a, n)
	l.PlaceAll(arch.Storage)
	st := stage.Stage{Gates: []circuit.CZ{circuit.NewCZ(0, 1)}}
	moves, err := Route(l, st, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both pair members surface; everyone else never left storage, so
	// exactly two moves are needed.
	if len(moves) != 2 {
		t.Errorf("%d moves, want 2: %v", len(moves), moves)
	}
	if l.SiteOf(0) != l.SiteOf(1) || l.Zone(0) != arch.Compute {
		t.Error("pair not co-located in compute zone")
	}
	for q := 2; q < n; q++ {
		if l.Zone(q) != arch.Storage {
			t.Errorf("idle qubit %d left storage", q)
		}
	}
}

// TestRouteStaleSeparation: in compute-only mode a stale co-located pair
// with both members idle must be separated before the next pulse.
func TestRouteStaleSeparation(t *testing.T) {
	n := 9
	a := arch.New(arch.Config{Qubits: n})
	l := layout.New(a, n)
	l.PlaceAll(arch.Compute)
	first := stage.Stage{Gates: []circuit.CZ{circuit.NewCZ(0, 1)}}
	if _, err := Route(l, first, false, nil); err != nil {
		t.Fatal(err)
	}
	if l.SiteOf(0) != l.SiteOf(1) {
		t.Fatal("setup failed: pair not co-located")
	}
	// Next stage does not involve 0 or 1.
	second := stage.Stage{Gates: []circuit.CZ{circuit.NewCZ(2, 3)}}
	if _, err := Route(l, second, false, nil); err != nil {
		t.Fatal(err)
	}
	if l.SiteOf(0) == l.SiteOf(1) {
		t.Error("stale pair (0,1) still clustered")
	}
	if err := l.Validate(second.Gates); err != nil {
		t.Error(err)
	}
}

// TestRouteMoverChoiceModes: deterministic and random mover selection both
// produce legal layouts; the deterministic mode is reproducible.
func TestRouteMoverChoiceModes(t *testing.T) {
	n := 25
	a := arch.New(arch.Config{Qubits: n})
	mkLayout := func() *layout.Layout {
		l := layout.New(a, n)
		l.PlaceAll(arch.Compute)
		return l
	}
	st := randomStage(n, 10, rand.New(rand.NewSource(5)))

	l1, l2 := mkLayout(), mkLayout()
	m1, err := Route(l1, st, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Route(l2, st, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != len(m2) {
		t.Fatal("deterministic routing not reproducible")
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("deterministic routing not reproducible")
		}
	}

	l3 := mkLayout()
	if _, err := Route(l3, st, false, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if err := l3.Validate(st.Gates); err != nil {
		t.Errorf("random-mover mode produced illegal layout: %v", err)
	}
}

func TestRouteRejectsOverlappingStage(t *testing.T) {
	a := arch.New(arch.Config{Qubits: 4})
	l := layout.New(a, 4)
	l.PlaceAll(arch.Compute)
	st := stage.Stage{Gates: []circuit.CZ{circuit.NewCZ(0, 1), circuit.NewCZ(1, 2)}}
	_, err := Route(l, st, false, nil)
	if err == nil || !strings.Contains(err.Error(), "disjoint") {
		t.Errorf("err = %v, want disjointness rejection", err)
	}
}

func TestRouteRejectsOutOfRangeQubit(t *testing.T) {
	a := arch.New(arch.Config{Qubits: 4})
	l := layout.New(a, 4)
	l.PlaceAll(arch.Compute)
	st := stage.Stage{Gates: []circuit.CZ{circuit.NewCZ(0, 7)}}
	if _, err := Route(l, st, false, nil); err == nil {
		t.Error("out-of-range qubit accepted")
	}
}

// TestRouteCoLocatedStoragePairSurfaces: a pair parked together in
// storage (possible only through external layout manipulation) must be
// brought up to the computation zone.
func TestRouteCoLocatedStoragePairSurfaces(t *testing.T) {
	a := arch.New(arch.Config{Qubits: 4})
	l := layout.New(a, 4)
	l.PlaceAll(arch.Storage)
	l.Move(1, l.SiteOf(0)) // co-locate 0 and 1 in storage
	st := stage.Stage{Gates: []circuit.CZ{circuit.NewCZ(0, 1)}}
	if _, err := Route(l, st, true, nil); err != nil {
		t.Fatal(err)
	}
	if l.Zone(0) != arch.Compute || l.SiteOf(0) != l.SiteOf(1) {
		t.Error("storage-co-located pair not surfaced together")
	}
}

// TestRouteMinimalArch: routing works on the smallest architecture (one
// pair on a 2x2 compute grid).
func TestRouteMinimalArch(t *testing.T) {
	a := arch.New(arch.Config{Qubits: 2})
	l := layout.New(a, 2)
	l.PlaceAll(arch.Storage)
	st := stage.Stage{Gates: []circuit.CZ{circuit.NewCZ(0, 1)}}
	if _, err := Route(l, st, true, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(st.Gates); err != nil {
		t.Fatal(err)
	}
}
