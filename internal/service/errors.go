package service

import (
	"context"
	"errors"
	"net/http"

	"powermove/internal/jobs"
)

// The service's stable machine-readable error codes. Every error leaving
// a /v1 endpoint is the envelope {"error": {"code", "message", and
// optionally "details"}}; clients dispatch on the code, never on the
// message text.
const (
	// CodeInvalidRequest is a malformed or out-of-range request (400),
	// including bodies that fail strict decoding and oversized bodies
	// (413).
	CodeInvalidRequest = "invalid_request"
	// CodeUnknownGrouping names a grouping pass that does not exist
	// (400); its details list the valid names.
	CodeUnknownGrouping = "unknown_grouping"
	// CodeQueueFull is a shed submission: the async queue is at depth
	// (429, with Retry-After).
	CodeQueueFull = "queue_full"
	// CodeNotFound is an unknown (or TTL-expired) job id (404).
	CodeNotFound = "not_found"
	// CodeCanceled marks work canceled by the client — a canceled job,
	// or a request whose context died (499).
	CodeCanceled = "canceled"
	// CodeConflict is a request valid in itself but wrong for the job's
	// current state, e.g. canceling a finished job (409).
	CodeConflict = "conflict"
	// CodeNotReady marks a result fetched before the job finished (no
	// HTTP error — the result endpoint answers 202 with the snapshot).
	CodeNotReady = "not_ready"
	// CodeInternal is a compile-side failure (500).
	CodeInternal = "internal"
)

// APIError is a classified service error: the HTTP status it maps to
// plus the envelope body. Construction sites that know their code build
// it directly; everything else is classified by toAPIError.
type APIError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
	Details any    `json:"details,omitempty"`
}

func (e *APIError) Error() string { return e.Message }

// errorEnvelope is the wire shape of every error response.
type errorEnvelope struct {
	Error *APIError `json:"error"`
}

// toAPIError classifies err into the envelope, walking the wrap chain:
// explicit APIErrors keep their classification, oversized bodies are
// 413s, the job manager's sentinels map to their codes, cancellation is
// the client's doing, RequestError (and strict-decode failures, which it
// wraps) is a 400, and everything else is a compile-side 500.
func toAPIError(err error) *APIError {
	var api *APIError
	if errors.As(err, &api) {
		return api
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return &APIError{Status: http.StatusRequestEntityTooLarge, Code: CodeInvalidRequest, Message: err.Error()}
	}
	switch {
	case errors.Is(err, jobs.ErrFull):
		return &APIError{Status: http.StatusTooManyRequests, Code: CodeQueueFull,
			Message: "job queue is full; retry after the running work drains"}
	case errors.Is(err, jobs.ErrNotFound):
		return &APIError{Status: http.StatusNotFound, Code: CodeNotFound, Message: "no such job"}
	case errors.Is(err, jobs.ErrTerminal):
		return &APIError{Status: http.StatusConflict, Code: CodeConflict, Message: "job already finished"}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return &APIError{Status: 499, Code: CodeCanceled, Message: err.Error()}
	}
	var reqErr *RequestError
	if errors.As(err, &reqErr) {
		return &APIError{Status: http.StatusBadRequest, Code: CodeInvalidRequest, Message: err.Error()}
	}
	return &APIError{Status: http.StatusInternalServerError, Code: CodeInternal, Message: err.Error()}
}

// errorCode is the jobs.Config.CodeOf hook: the code a runner error
// lands in the job document under.
func errorCode(err error) string { return toAPIError(err).Code }
