package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// maxBodyBytes bounds request bodies; QASM sources for the paper's
// largest instances are a few hundred KB.
const maxBodyBytes = 8 << 20

// Handler returns the service's HTTP front end:
//
//	POST /v1/compile                     one evaluation point
//	POST /v1/batch                       many points on the worker pool
//	GET  /v1/experiments/table/{id}      tables 1, 2, 3        (?stable=1)
//	GET  /v1/experiments/figure/{id}     figures 6a..6e, 7     (?stable=1)
//	GET  /healthz                        liveness + uptime
//	GET  /metrics                        cache/compile/latency counters
//
// All responses are JSON; errors are {"error": "..."} with a 4xx status
// for request problems and 5xx for compile failures.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.instrument("compile", s.handleCompile))
	mux.HandleFunc("POST /v1/batch", s.instrument("batch", s.handleBatch))
	mux.HandleFunc("GET /v1/experiments/{kind}/{id}", s.instrument("experiments", s.handleExperiment))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	return mux
}

// statusRecorder captures the written status for the metrics ledger.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with body limiting and per-endpoint
// request/latency/error accounting.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		s.endpoints.observe(name, time.Since(start), rec.status >= 400)
	}
}

// writeJSON emits v with the service's canonical encoding.
func writeJSON(w http.ResponseWriter, status int, v any) {
	out, err := EncodeJSON(v)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(out)
}

// writeError maps an error to the JSON error envelope: RequestError and
// decode failures are the client's fault (400), anything else is a
// compile-side failure (500).
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var reqErr *RequestError
	if errors.As(err, &reqErr) {
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decode strictly parses the request body into v; unknown fields are
// rejected so typos fail loudly instead of silently selecting defaults.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &RequestError{fmt.Errorf("request body: %w", err)}
	}
	return nil
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	// ?verify=1 is the query-parameter spelling of the body's "verify"
	// field: either one turns differential verification on.
	switch v := r.URL.Query().Get("verify"); v {
	case "", "0", "false":
	case "1", "true":
		req.Verify = true
	default:
		writeError(w, &RequestError{fmt.Errorf("verify = %q; want 0/1/true/false", v)})
		return
	}
	resp, err := s.Compile(r.Context(), &req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.Batch(r.Context(), &req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	stable := false
	switch v := r.URL.Query().Get("stable"); v {
	case "", "0", "false":
	case "1", "true":
		stable = true
	default:
		writeError(w, &RequestError{fmt.Errorf("stable = %q; want 0/1/true/false", v)})
		return
	}
	doc, err := s.Experiment(r.Context(), r.PathValue("kind"), r.PathValue("id"), stable)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
