package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"
)

// maxBodyBytes bounds request bodies; QASM sources for the paper's
// largest instances are a few hundred KB.
const maxBodyBytes = 8 << 20

// Handler returns the service's HTTP front end:
//
//	GET    /v1                           endpoint catalog + build info
//	POST   /v1/compile                   one evaluation point, synchronous
//	POST   /v1/batch                     many points on the worker pool
//	GET    /v1/experiments/{kind}/{id}   tables 1, 2, 3; figures 6a..6e, 7  (?stable=1)
//	POST   /v1/jobs                      submit async work → 202 + job id
//	GET    /v1/jobs                      list jobs            (?state=&kind=&limit=)
//	GET    /v1/jobs/{id}                 job snapshot
//	GET    /v1/jobs/{id}/result         done job's document, verbatim
//	GET    /v1/jobs/{id}/events         SSE progress stream
//	DELETE /v1/jobs/{id}                 cancel
//	GET    /healthz                      liveness + uptime
//	GET    /metrics                      cache/compile/queue/store counters
//
// All responses are JSON. Errors are the envelope
// {"error": {"code", "message", ...}} with a stable machine-readable
// code (see errors.go): 4xx for request problems, 429 + Retry-After
// when the job queue sheds, 5xx for compile failures.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1", s.instrument("catalog", s.handleCatalog))
	mux.HandleFunc("POST /v1/compile", s.instrument("compile", successor(s.handleCompile)))
	mux.HandleFunc("POST /v1/batch", s.instrument("batch", successor(s.handleBatch)))
	mux.HandleFunc("GET /v1/experiments/{kind}/{id}", s.instrument("experiments", successor(s.handleExperiment)))
	mux.HandleFunc("POST /v1/jobs", s.instrument("jobs", s.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs", s.instrument("jobs", s.handleJobList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("jobs", s.handleJobGet))
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.instrument("jobs", s.handleJobResult))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("jobs_events", s.handleJobEvents))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("jobs", s.handleJobCancel))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	return mux
}

// successor marks a synchronous endpoint's responses with the RFC 8594
// deprecation headers pointing at the async successor. The sync
// endpoints are not deprecated ("Deprecation: false") — the headers
// advertise that long-running work has a backpressure-aware home at
// /v1/jobs ahead of any future deprecation.
func successor(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "false")
		w.Header().Set("Link", `</v1/jobs>; rel="successor-version"`)
		h(w, r)
	}
}

// statusRecorder captures the written status for the metrics ledger.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so the SSE handler can stream
// through the instrumentation wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with body limiting and per-endpoint
// request/latency/error accounting.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		s.endpoints.observe(name, time.Since(start), rec.status >= 400)
	}
}

// writeJSON emits v with the service's canonical encoding.
func writeJSON(w http.ResponseWriter, status int, v any) {
	out, err := EncodeJSON(v)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(out)
}

// writeError renders err as the unified JSON error envelope
// {"error": {"code", "message", ...}}, classified by toAPIError. Shed
// submissions additionally carry Retry-After, the contractual half of
// the 429 — derived from the live queue-latency histogram (the p50
// drain estimate, clamped) so a fleet of shed clients, and a router's
// failover retries, spread over the window the queue needs to open a
// slot instead of stampeding back in lockstep.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	api := toAPIError(err)
	if api.Code == CodeQueueFull {
		secs := int(s.jobs.RetryAfter() / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, api.Status, errorEnvelope{api})
}

// decode strictly parses the request body into v; unknown fields are
// rejected so typos fail loudly instead of silently selecting defaults.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &RequestError{fmt.Errorf("request body: %w", err)}
	}
	return nil
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	// ?verify=1 is the query-parameter spelling of the body's "verify"
	// field: either one turns differential verification on.
	switch v := r.URL.Query().Get("verify"); v {
	case "", "0", "false":
	case "1", "true":
		req.Verify = true
	default:
		s.writeError(w, &RequestError{fmt.Errorf("verify = %q; want 0/1/true/false", v)})
		return
	}
	resp, err := s.Compile(r.Context(), &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.Batch(r.Context(), &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	stable := false
	switch v := r.URL.Query().Get("stable"); v {
	case "", "0", "false":
	case "1", "true":
		stable = true
	default:
		s.writeError(w, &RequestError{fmt.Errorf("stable = %q; want 0/1/true/false", v)})
		return
	}
	doc, err := s.Experiment(r.Context(), r.PathValue("kind"), r.PathValue("id"), stable)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	doc := map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	}
	if s.instance != "" {
		// The fleet router's health checker confirms it probed the
		// backend it thinks it probed.
		doc["instance"] = s.instance
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// CatalogEndpoint describes one route of the /v1 surface.
type CatalogEndpoint struct {
	Method      string `json:"method"`
	Path        string `json:"path"`
	Description string `json:"description"`
	// Deprecated and Successor mirror the endpoint's Deprecation/Link
	// headers: the sync endpoints are not deprecated, but their
	// long-running use cases have an async successor.
	Deprecated bool   `json:"deprecated,omitempty"`
	Successor  string `json:"successor,omitempty"`
}

// CatalogDoc is the GET /v1 payload: what this API serves and what it
// was built from.
type CatalogDoc struct {
	Service    string `json:"service"`
	APIVersion string `json:"api_version"`
	GoVersion  string `json:"go_version"`
	// Revision is the VCS revision the binary was built from, when the
	// build recorded one.
	Revision string `json:"revision,omitempty"`
	// JobKinds are the work shapes POST /v1/jobs accepts.
	JobKinds  []string          `json:"job_kinds"`
	Endpoints []CatalogEndpoint `json:"endpoints"`
}

// handleCatalog is GET /v1: the endpoint catalog plus build info, so a
// client can discover the surface (and the sync→async successor
// relationships) without external docs.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	doc := CatalogDoc{
		Service:    "powermove",
		APIVersion: "v1",
		GoVersion:  runtime.Version(),
		JobKinds:   []string{JobCompile, JobVerify, JobBatch, JobExperiment},
		Endpoints: []CatalogEndpoint{
			{Method: "GET", Path: "/v1", Description: "this catalog"},
			{Method: "POST", Path: "/v1/compile", Description: "compile one evaluation point, synchronously", Successor: "/v1/jobs"},
			{Method: "POST", Path: "/v1/batch", Description: "compile many evaluation points on the worker pool", Successor: "/v1/jobs"},
			{Method: "GET", Path: "/v1/experiments/{kind}/{id}", Description: "regenerate a paper table or figure", Successor: "/v1/jobs"},
			{Method: "POST", Path: "/v1/jobs", Description: "submit async work (compile, verify, batch, experiment); 429 + Retry-After when the queue is full"},
			{Method: "GET", Path: "/v1/jobs", Description: "list jobs, filterable by state, kind, and limit"},
			{Method: "GET", Path: "/v1/jobs/{id}", Description: "job snapshot with request and result"},
			{Method: "GET", Path: "/v1/jobs/{id}/result", Description: "a done job's result document, byte-identical to the sync endpoint's"},
			{Method: "GET", Path: "/v1/jobs/{id}/events", Description: "Server-Sent-Events progress stream"},
			{Method: "DELETE", Path: "/v1/jobs/{id}", Description: "cancel a queued or running job"},
			{Method: "GET", Path: "/healthz", Description: "liveness and uptime"},
			{Method: "GET", Path: "/metrics", Description: "cache, compile, queue, and store counters"},
		},
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				doc.Revision = kv.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, doc)
}
