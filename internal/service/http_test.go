package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHTTPEndToEnd exercises the HTTP front end against a live handler:
// health, a compile round trip, a cache-hit repeat visible in /metrics,
// and the error envelope.
func TestHTTPEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v any
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("GET %s: non-JSON body: %v", path, err)
		}
		return resp.StatusCode
	}
	post := func(path, body string) (int, map[string]json.RawMessage) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		return resp.StatusCode, m
	}

	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}

	const req = `{"workload":{"family":"QFT","qubits":6},"scheme":"with-storage","stable":true}`
	code, body := post("/v1/compile", req)
	if code != http.StatusOK {
		t.Fatalf("/v1/compile = %d: %v", code, body)
	}
	if string(body["bench"]) != `"QFT-6"` || string(body["cached"]) != "false" {
		t.Errorf("cold compile response: bench=%s cached=%s", body["bench"], body["cached"])
	}
	if _, cachedBody := post("/v1/compile", req); string(cachedBody["cached"]) != "true" {
		t.Errorf("repeat compile not served from cache: %v", cachedBody["cached"])
	}

	// Error envelope: bad JSON, unknown field, and validation failures
	// are all 400s with an "error" key.
	for _, bad := range []string{
		`{not json`,
		`{"workload":{"family":"QFT","qubits":6},"wat":1}`,
		`{"workload":{"family":"QFT","qubits":6},"scheme":"turbo"}`,
		`{"workload":{"family":"QFT","qubits":6},"grouping":"turbo"}`,
		`{}`,
	} {
		code, body := post("/v1/compile", bad)
		if code != http.StatusBadRequest || body["error"] == nil {
			t.Errorf("bad request %q: code %d, body %v", bad, code, body)
		}
	}

	// Method and route misuse.
	if resp, err := http.Get(ts.URL + "/v1/compile"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/compile = %d, want 405", resp.StatusCode)
	}

	// Metrics reflect everything above.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Compiles != 1 {
		t.Errorf("metrics compiles = %d, want 1", m.Compiles)
	}
	if m.Cache.Hits < 1 {
		t.Errorf("metrics cache = %+v, want at least one hit", m.Cache)
	}
	ep := m.Endpoints["compile"]
	if ep.Requests != 7 || ep.Errors != 5 {
		t.Errorf("compile endpoint ledger = %+v, want 7 requests / 5 errors", ep)
	}
	if m.Passes["route"].Calls == 0 {
		t.Errorf("metrics pass ledger missing route: %+v", m.Passes)
	}
}

// TestHTTPBatch round-trips a small batch over HTTP.
func TestHTTPBatch(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"requests":[
		{"workload":{"family":"QFT","qubits":6},"stable":true},
		{"workload":{"family":"QFT","qubits":6},"stable":true}
	]}`
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || out.Results[0].Result == nil || out.Results[1].Result == nil {
		t.Fatalf("batch results = %+v", out.Results)
	}
	if out.Stats.Compiles != 1 || out.Stats.CacheHits != 1 {
		t.Errorf("engine stats = %+v, want 1 compile + 1 hit for the duplicate", out.Stats)
	}
}

// TestHTTPExperimentTable2 fetches a static table over the experiments
// route (table 2 builds circuits but compiles nothing, so it is fast).
func TestHTTPExperimentTable2(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/experiments/table/2?stable=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table 2 = %d", resp.StatusCode)
	}
	var doc struct {
		Table struct {
			Title string     `json:"Title"`
			Rows  [][]string `json:"Rows"`
		} `json:"table"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Table.Rows) == 0 {
		t.Error("table 2 has no rows")
	}

	if resp, err := http.Get(ts.URL + "/v1/experiments/table/9"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("table 9 = %d, want 400", resp.StatusCode)
	}
}
