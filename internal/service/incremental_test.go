package service

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// layeredQASM builds an n-qubit program of `layers` alternating h/cz
// layers: each h layer touches every qubit, closing the previous block,
// so each cz layer lands in its own block. shift rotates the final cz
// layer's pairs, mutating only the last block.
func layeredQASM(n, layers int, shift bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[%d];\n", n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			fmt.Fprintf(&b, "h q[%d];\n", q)
		}
		off := l % 2
		if shift && l == layers-1 {
			off = 1 - off
		}
		for a := off; a+1 < n; a += 2 {
			fmt.Fprintf(&b, "cz q[%d], q[%d];\n", a, a+1)
		}
	}
	return b.String()
}

// TestIncrementalPrefixHitAcrossRequests: two inline QASM programs
// sharing an 11-block prefix; the second compile resumes from the
// first's checkpoints (incremental_prefix_hits rises) and its response
// is byte-identical to a cold compile of the same program on a fresh
// server.
func TestIncrementalPrefixHitAcrossRequests(t *testing.T) {
	const n, layers = 10, 12
	base := layeredQASM(n, layers, false)
	mutated := layeredQASM(n, layers, true)
	req := func(src string) *CompileRequest {
		return &CompileRequest{QASM: src, CompileSpec: CompileSpec{Stable: true}}
	}

	s := New(Config{Workers: 2})
	defer s.Close()
	if _, err := s.Compile(context.Background(), req(base)); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if !m.Incremental.Enabled || m.Incremental.Entries != 1 {
		t.Fatalf("after seed compile: incremental = %+v, want enabled with 1 entry", m.Incremental)
	}
	warm, err := s.Compile(context.Background(), req(mutated))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cached {
		t.Fatal("mutated-tail request reported cached — it is a distinct key")
	}
	m = s.Metrics()
	if m.Incremental.PrefixHits < 1 {
		t.Fatalf("incremental_prefix_hits = %d, want >= 1", m.Incremental.PrefixHits)
	}
	if m.Incremental.SavedMS <= 0 {
		t.Errorf("saved_ms = %v, want > 0 after a prefix hit", m.Incremental.SavedMS)
	}

	cold := New(Config{Workers: 2, SnapshotCache: -1})
	defer cold.Close()
	ref, err := cold.Compile(context.Background(), req(mutated))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, ref) {
		t.Errorf("incremental response diverged from cold compile:\n got %+v\nwant %+v", warm, ref)
	}
}

// TestIncrementalDisabled: SnapshotCache < 0 turns the subsystem off.
func TestIncrementalDisabled(t *testing.T) {
	s := New(Config{Workers: 1, SnapshotCache: -1})
	defer s.Close()
	if _, err := s.Compile(context.Background(), qftRequest(6)); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics(); m.Incremental.Enabled || m.Incremental.Probes != 0 {
		t.Errorf("incremental = %+v, want disabled and idle", m.Incremental)
	}
}

// TestSpeculativePrecompilation: a fresh compile nominates its grouping
// and scheme variants; idle workers precompile them; the later real
// request for a variant is a cache hit credited to speculative_hits.
func TestSpeculativePrecompilation(t *testing.T) {
	s := New(Config{Workers: 2, Speculate: true})
	defer s.Close()
	if _, err := s.Compile(context.Background(), qftRequest(8)); err != nil {
		t.Fatal(err)
	}
	// Two grouping variants + the scheme flip.
	if m := s.Metrics(); m.Speculation.Candidates != 3 {
		t.Fatalf("candidates = %d, want 3", m.Speculation.Candidates)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := s.Metrics().Speculation
		if m.Queued == 0 && m.Compiles >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("speculation never drained: %+v", m)
		}
		time.Sleep(5 * time.Millisecond)
	}

	variant := qftRequest(8)
	variant.Grouping = "distance"
	resp, err := s.Compile(context.Background(), variant)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatal("speculated variant was not served from the cache")
	}
	m := s.Metrics().Speculation
	if m.Hits != 1 {
		t.Errorf("speculative_hits = %d, want 1", m.Hits)
	}
	if m.SavedMS <= 0 {
		t.Errorf("saved_ms = %v, want > 0 after a speculative hit", m.SavedMS)
	}

	// The speculated outcome must match a cold compile of the variant
	// byte-for-byte (modulo the Cached flag the hit path sets).
	cold := New(Config{Workers: 1})
	defer cold.Close()
	ref, err := cold.Compile(context.Background(), variant)
	if err != nil {
		t.Fatal(err)
	}
	got := *resp
	got.Cached = ref.Cached
	if !reflect.DeepEqual(&got, ref) {
		t.Errorf("speculated outcome diverged from cold compile:\n got %+v\nwant %+v", resp, ref)
	}
}

// TestSpeculationDisabledByDefault: without Config.Speculate nothing is
// nominated and the metrics section stays disabled.
func TestSpeculationDisabledByDefault(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Compile(context.Background(), qftRequest(6)); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics(); m.Speculation.Enabled || m.Speculation.Candidates != 0 {
		t.Errorf("speculation = %+v, want disabled and idle", m.Speculation)
	}
}
