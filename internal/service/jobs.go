package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"powermove/internal/experiments"
	"powermove/internal/jobs"
)

// The job kinds of the async API: what POST /v1/jobs accepts and the
// /v1/jobs list filters on. Each kind runs the same execution path as
// its synchronous endpoint, so an async result document is byte-for-byte
// what the sync endpoint would have returned for the same spec.
const (
	JobCompile    = "compile"
	JobVerify     = "verify"
	JobBatch      = "batch"
	JobExperiment = "experiment"
)

// JobRequest is the POST /v1/jobs body: exactly one of the work fields,
// plus an optional priority. Compile and verify jobs embed the same
// CompileRequest (and so the shared CompileSpec) as /v1/compile; verify
// is compile with verification forced on.
type JobRequest struct {
	// Priority orders the queue: higher runs first, equal priorities
	// run FIFO. Range [0, 9]; default 0.
	Priority int `json:"priority,omitempty"`
	// Compile asks for one evaluation point — the async /v1/compile.
	Compile *CompileRequest `json:"compile,omitempty"`
	// Verify is Compile with differential verification forced on.
	Verify *CompileRequest `json:"verify,omitempty"`
	// Batch asks for many points — the async /v1/batch.
	Batch *BatchRequest `json:"batch,omitempty"`
	// Experiment regenerates a paper table or figure — the async
	// /v1/experiments/{kind}/{id}.
	Experiment *ExperimentSpec `json:"experiment,omitempty"`
}

// ExperimentSpec names one experiments endpoint payload.
type ExperimentSpec struct {
	// Kind is "table" or "figure".
	Kind string `json:"kind"`
	// ID is "1".."3" for tables, "6a".."6e" or "7" for figures.
	ID string `json:"id"`
	// Stable zeroes wall-clock fields for reproducible documents.
	Stable bool `json:"stable,omitempty"`
}

// validate rejects unknown tables and figures without compiling
// anything, mirroring Experiment's own dispatch.
func (e *ExperimentSpec) validate() error {
	switch e.Kind {
	case "table":
		switch e.ID {
		case "1", "2", "3":
			return nil
		}
		return fmt.Errorf("unknown table %q (want 1, 2, or 3)", e.ID)
	case "figure":
		if e.ID == "7" {
			return nil
		}
		if _, ok := experiments.Figure6Panels()[e.ID]; ok {
			return nil
		}
		return fmt.Errorf("unknown figure %q (want 6a..6e or 7)", e.ID)
	default:
		return fmt.Errorf("unknown experiment kind %q (want table or figure)", e.Kind)
	}
}

// SubmitJob validates and enqueues one async job, returning its initial
// snapshot. Invalid requests fail here, before consuming a queue slot;
// a full queue surfaces jobs.ErrFull (HTTP 429 + Retry-After). Compile
// and verify jobs carry their pipeline key, so a submission whose key
// already has an active job attaches to it instead of enqueueing —
// the job-queue face of the singleflight dedup the sync path gets from
// flightGroup.
func (s *Server) SubmitJob(req *JobRequest) (jobs.Snapshot, error) {
	if req.Priority < 0 || req.Priority > jobs.MaxPriority {
		return jobs.Snapshot{}, &RequestError{fmt.Errorf("priority = %d out of range [0, %d]", req.Priority, jobs.MaxPriority)}
	}
	set := 0
	for _, ok := range []bool{req.Compile != nil, req.Verify != nil, req.Batch != nil, req.Experiment != nil} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return jobs.Snapshot{}, &RequestError{fmt.Errorf("specify exactly one of compile, verify, batch, and experiment")}
	}

	spec := jobs.Spec{Priority: req.Priority}
	switch {
	case req.Compile != nil:
		plan, err := req.Compile.validate()
		if err != nil {
			return jobs.Snapshot{}, &RequestError{err}
		}
		spec.Kind = JobCompile
		spec.Key = "compile:" + plan.canon
		spec.Payload, err = json.Marshal(req.Compile)
		if err != nil {
			return jobs.Snapshot{}, err
		}
	case req.Verify != nil:
		forced := *req.Verify
		forced.Verify = true
		plan, err := forced.validate()
		if err != nil {
			return jobs.Snapshot{}, &RequestError{err}
		}
		spec.Kind = JobVerify
		spec.Key = "compile:" + plan.canon
		spec.Payload, err = json.Marshal(&forced)
		if err != nil {
			return jobs.Snapshot{}, err
		}
	case req.Batch != nil:
		// Bounds only: per-item validation runs with the batch, and item
		// failures are part of the result document, as on /v1/batch.
		if len(req.Batch.Requests) == 0 {
			return jobs.Snapshot{}, &RequestError{fmt.Errorf("empty batch")}
		}
		if len(req.Batch.Requests) > MaxBatch {
			return jobs.Snapshot{}, &RequestError{fmt.Errorf("batch has %d requests; limit is %d", len(req.Batch.Requests), MaxBatch)}
		}
		spec.Kind = JobBatch
		var err error
		spec.Payload, err = json.Marshal(req.Batch)
		if err != nil {
			return jobs.Snapshot{}, err
		}
	case req.Experiment != nil:
		if err := req.Experiment.validate(); err != nil {
			return jobs.Snapshot{}, &RequestError{err}
		}
		spec.Kind = JobExperiment
		spec.Key = fmt.Sprintf("exp:%s/%s?stable=%v", req.Experiment.Kind, req.Experiment.ID, req.Experiment.Stable)
		var err error
		spec.Payload, err = json.Marshal(req.Experiment)
		if err != nil {
			return jobs.Snapshot{}, err
		}
	}
	return s.jobs.Submit(spec)
}

// runJob is the job manager's Runner: it dispatches a dequeued job
// through the same execution path as the kind's synchronous endpoint
// and encodes the result with the service's canonical encoding — so the
// bytes GET /v1/jobs/{id}/result serves are exactly what the sync
// endpoint would have written. ctx is the job's: canceled by DELETE and
// by shutdown, and (unlike the sync path) not detached, so canceling a
// job stops its work.
func (s *Server) runJob(ctx context.Context, snap jobs.Snapshot, progress func(done, total int)) (json.RawMessage, error) {
	switch snap.Kind {
	case JobCompile, JobVerify:
		var req CompileRequest
		if err := json.Unmarshal(snap.Request, &req); err != nil {
			return nil, err
		}
		resp, err := s.compile(ctx, &req, false)
		if err != nil {
			return nil, err
		}
		return EncodeJSON(resp)
	case JobBatch:
		var req BatchRequest
		if err := json.Unmarshal(snap.Request, &req); err != nil {
			return nil, err
		}
		resp, err := s.Batch(ctx, &req)
		if err != nil {
			return nil, err
		}
		return EncodeJSON(resp)
	case JobExperiment:
		var spec ExperimentSpec
		if err := json.Unmarshal(snap.Request, &spec); err != nil {
			return nil, err
		}
		doc, err := s.experiment(ctx, spec.Kind, spec.ID, spec.Stable, progress)
		if err != nil {
			return nil, err
		}
		return EncodeJSON(doc)
	default:
		return nil, fmt.Errorf("unknown job kind %q", snap.Kind)
	}
}

// handleJobSubmit is POST /v1/jobs: 202 Accepted with the queued job's
// snapshot and its Location, or 429 + Retry-After when the queue sheds.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	snap, err := s.SubmitJob(&req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+snap.ID)
	writeJSON(w, http.StatusAccepted, snap)
}

// handleJobList is GET /v1/jobs?state=&kind=&limit=: job snapshots in
// creation order, without request/result payloads.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := jobs.Filter{Kind: q.Get("kind")}
	switch st := jobs.State(q.Get("state")); st {
	case "", jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCanceled:
		f.State = st
	default:
		s.writeError(w, &RequestError{fmt.Errorf("state = %q; want queued, running, done, failed, or canceled", st)})
		return
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.writeError(w, &RequestError{fmt.Errorf("limit = %q; want a positive integer", v)})
			return
		}
		f.Limit = n
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.List(f)})
}

// handleJobGet is GET /v1/jobs/{id}: the job's full snapshot, request
// and result included.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	snap, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleJobResult is GET /v1/jobs/{id}/result. A done job's stored
// document is served verbatim — the exact bytes the synchronous
// endpoint would have written for the same spec. A failed or canceled
// job answers with its error envelope; a job still in flight answers
// 202 with its snapshot (poll again, or follow /events).
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	snap, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	switch snap.State {
	case jobs.StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(snap.Result)
	case jobs.StateFailed, jobs.StateCanceled:
		api := &APIError{Status: statusForCode(snap.Error.Code), Code: snap.Error.Code, Message: snap.Error.Message}
		writeJSON(w, api.Status, errorEnvelope{api})
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, snap)
	}
}

// statusForCode maps a stored job error code back to an HTTP status for
// the result endpoint.
func statusForCode(code string) int {
	switch code {
	case CodeInvalidRequest, CodeUnknownGrouping:
		return http.StatusBadRequest
	case CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeNotFound:
		return http.StatusNotFound
	case CodeConflict:
		return http.StatusConflict
	case CodeCanceled:
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// handleJobCancel is DELETE /v1/jobs/{id}: queued jobs settle canceled
// immediately and never run; running jobs have their context canceled
// and settle when the runner returns. Canceling a finished job is a 409.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	snap, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleJobEvents is GET /v1/jobs/{id}/events: a Server-Sent-Events
// stream replaying the job's history (state transitions plus its latest
// progress point) and following live until the job reaches a terminal
// state. Slow consumers may lose intermediate progress events — never
// the terminal state, which is re-read and re-sent after the live
// channel closes.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	history, live, detach, err := s.jobs.Subscribe(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer detach()
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, fmt.Errorf("response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	send := func(ev jobs.Event) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Name, ev.Data)
		flusher.Flush()
	}
	for _, ev := range history {
		send(ev)
	}
	if live == nil { // already terminal: history ends with the final state
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				// Terminal: the channel may have dropped events on a slow
				// consumer, so re-send the final state authoritatively.
				if snap, err := s.jobs.Get(r.PathValue("id")); err == nil {
					if data, err := json.Marshal(map[string]any{"id": snap.ID, "state": snap.State, "error": snap.Error}); err == nil {
						send(jobs.Event{Name: "state", Data: data})
					}
				}
				return
			}
			send(ev)
		case <-r.Context().Done():
			return
		}
	}
}
