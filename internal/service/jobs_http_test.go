package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"powermove/internal/jobs"
	"powermove/internal/pipeline"
	"powermove/internal/store"
)

// jobsServer builds a service + test server tuned for queue tests.
func jobsServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// envelopeCode extracts the stable error code from an error envelope.
func envelopeCode(t *testing.T, raw []byte) string {
	t.Helper()
	var env struct {
		Error *struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil {
		t.Fatalf("not an error envelope: %s", raw)
	}
	if env.Error.Message == "" {
		t.Errorf("envelope without message: %s", raw)
	}
	return env.Error.Code
}

func waitJobState(t *testing.T, base, id string, want string) map[string]json.RawMessage {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, raw := getJSON(t, base+"/v1/jobs/"+id)
		var snap map[string]json.RawMessage
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatalf("job snapshot: %v: %s", err, raw)
		}
		if string(snap["state"]) == `"`+want+`"` {
			return snap
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return nil
}

func submitJob(t *testing.T, base, body string) string {
	t.Helper()
	resp, raw := postJSON(t, base+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, raw)
	}
	var snap struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil || snap.ID == "" {
		t.Fatalf("submit response: %v: %s", err, raw)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+snap.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", loc, snap.ID)
	}
	return snap.ID
}

// blockingCompile replaces s.compileOne with a gate: every call parks on
// the returned channel (or its ctx) before delegating to the real
// implementation; calls counts entries.
func blockingCompile(s *Server, calls *atomic.Int32) (release chan struct{}) {
	real := s.compileOne
	release = make(chan struct{})
	s.compileOne = func(ctx context.Context, job pipeline.Job) (pipeline.Result, error) {
		calls.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return pipeline.Result{}, ctx.Err()
		}
		return real(ctx, job)
	}
	return release
}

const qft4Job = `{"compile":{"workload":{"family":"QFT","qubits":4},"stable":true}}`

// TestJobsQueueShedsAtDepth: with one worker occupied and the queue at
// depth, the next submission is a 429 with Retry-After and the
// queue_full code, and /metrics counts the shed.
func TestJobsQueueShedsAtDepth(t *testing.T) {
	s, ts := jobsServer(t, Config{Workers: 1, QueueDepth: 2})
	var calls atomic.Int32
	release := blockingCompile(s, &calls)

	// Occupy the worker, then fill the two queue slots with distinct
	// keys (identical keys would attach, consuming no slot).
	ids := []string{submitJob(t, ts.URL, qft4Job)}
	waitFor(t, func() bool { return calls.Load() == 1 })
	for _, n := range []int{6, 8} {
		ids = append(ids, submitJob(t, ts.URL,
			fmt.Sprintf(`{"compile":{"workload":{"family":"QFT","qubits":%d},"stable":true}}`, n)))
	}

	resp, raw := postJSON(t, ts.URL+"/v1/jobs",
		`{"compile":{"workload":{"family":"QFT","qubits":10},"stable":true}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit beyond depth = %d: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if code := envelopeCode(t, raw); code != CodeQueueFull {
		t.Errorf("shed code = %q, want %q", code, CodeQueueFull)
	}

	_, mraw := getJSON(t, ts.URL+"/metrics")
	var m MetricsSnapshot
	if err := json.Unmarshal(mraw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Jobs.Shed != 1 || m.Jobs.Depth != 2 || m.Jobs.Capacity != 2 {
		t.Errorf("jobs metrics = %+v, want 1 shed at depth 2/2", m.Jobs)
	}

	// Draining the queue makes room again.
	close(release)
	for _, id := range ids {
		waitJobState(t, ts.URL, id, "done")
	}
	if id := submitJob(t, ts.URL, `{"compile":{"workload":{"family":"QFT","qubits":12},"stable":true}}`); id == "" {
		t.Fatal("submission after drain rejected")
	}
}

// TestJobsCancelQueued: a job canceled while queued never runs.
func TestJobsCancelQueued(t *testing.T) {
	s, ts := jobsServer(t, Config{Workers: 1, QueueDepth: 4})
	var calls atomic.Int32
	release := blockingCompile(s, &calls)

	first := submitJob(t, ts.URL, qft4Job)
	waitFor(t, func() bool { return calls.Load() == 1 })
	victim := submitJob(t, ts.URL, `{"compile":{"workload":{"family":"QFT","qubits":6},"stable":true}}`)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+victim, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(raw, []byte(`"canceled"`)) {
		t.Fatalf("cancel = %d: %s", resp.StatusCode, raw)
	}

	close(release)
	waitJobState(t, ts.URL, first, "done")
	waitJobState(t, ts.URL, victim, "canceled")
	if calls.Load() != 1 {
		t.Errorf("canceled-while-queued job compiled (%d compile calls, want 1)", calls.Load())
	}

	// A second DELETE of the now-terminal job is a 409 conflict.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+victim, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel = %d: %s", resp.StatusCode, raw)
	}
	if code := envelopeCode(t, raw); code != CodeConflict {
		t.Errorf("re-cancel code = %q, want %q", code, CodeConflict)
	}
}

// TestJobsCancelRunningPropagatesContext: DELETE of a running job
// cancels the context its compile runs under — the async path does not
// detach the way the sync path does.
func TestJobsCancelRunningPropagatesContext(t *testing.T) {
	s, ts := jobsServer(t, Config{Workers: 1, QueueDepth: 4})
	var calls atomic.Int32
	release := blockingCompile(s, &calls) // never released: only ctx can free it
	defer close(release)

	id := submitJob(t, ts.URL, qft4Job)
	waitFor(t, func() bool { return calls.Load() == 1 })

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running = %d", resp.StatusCode)
	}
	snap := waitJobState(t, ts.URL, id, "canceled")
	var jerr struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(snap["error"], &jerr); err != nil || jerr.Code != CodeCanceled {
		t.Errorf("canceled job error = %s, want code %q", snap["error"], CodeCanceled)
	}

	// The result endpoint reports the cancellation as an envelope.
	rresp, rraw := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result")
	if rresp.StatusCode != 499 {
		t.Errorf("result of canceled job = %d, want 499", rresp.StatusCode)
	}
	if code := envelopeCode(t, rraw); code != CodeCanceled {
		t.Errorf("result code = %q, want %q", code, CodeCanceled)
	}
}

// TestJobsAttachSameKey: two submissions of one compile key while the
// first is running produce one underlying compile and two done jobs —
// the queue-side face of singleflight.
func TestJobsAttachSameKey(t *testing.T) {
	s, ts := jobsServer(t, Config{Workers: 2, QueueDepth: 4})
	var calls atomic.Int32
	release := blockingCompile(s, &calls)

	leader := submitJob(t, ts.URL, qft4Job)
	waitFor(t, func() bool { return calls.Load() == 1 })
	follower := submitJob(t, ts.URL, qft4Job)

	// The follower attached instead of queueing.
	var snap struct {
		AttachedTo string `json:"attached_to"`
	}
	_, raw := getJSON(t, ts.URL+"/v1/jobs/"+follower)
	if err := json.Unmarshal(raw, &snap); err != nil || snap.AttachedTo != leader {
		t.Fatalf("follower attached_to = %q (%v), want %q", snap.AttachedTo, err, leader)
	}

	close(release)
	waitJobState(t, ts.URL, leader, "done")
	waitJobState(t, ts.URL, follower, "done")

	if got := s.Metrics(); got.Compiles != 1 || got.Jobs.Attached != 1 {
		t.Errorf("compiles = %d, attached = %d; want 1 and 1", got.Compiles, got.Jobs.Attached)
	}
	// The follower's document reports the cache hit it was served from.
	_, fraw := getJSON(t, ts.URL+"/v1/jobs/"+follower+"/result")
	var fdoc CompileResponse
	if err := json.Unmarshal(fraw, &fdoc); err != nil {
		t.Fatal(err)
	}
	if !fdoc.Cached {
		t.Error("follower result not marked cached")
	}
}

// TestJobsAsyncMatchesSyncBytes: for a warmed cache, the async result
// document is byte-for-byte the sync /v1/compile response for the same
// spec.
func TestJobsAsyncMatchesSyncBytes(t *testing.T) {
	_, ts := jobsServer(t, Config{Workers: 2, QueueDepth: 8})
	const spec = `{"workload":{"family":"QFT","qubits":6},"scheme":"with-storage","stable":true}`

	// Warm the cache, then capture the warm sync document (cached=true,
	// like any repeat request — including the async one below).
	postJSON(t, ts.URL+"/v1/compile", spec)
	_, sync := postJSON(t, ts.URL+"/v1/compile", spec)

	id := submitJob(t, ts.URL, `{"compile":`+spec+`}`)
	waitJobState(t, ts.URL, id, "done")
	resp, async := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", resp.StatusCode, async)
	}
	if !bytes.Equal(sync, async) {
		t.Errorf("async result diverged from sync document:\nsync:  %s\nasync: %s", sync, async)
	}
}

// TestJobsResultBeforeDone: fetching a result early is a 202 with the
// snapshot, not an error.
func TestJobsResultBeforeDone(t *testing.T) {
	s, ts := jobsServer(t, Config{Workers: 1, QueueDepth: 4})
	var calls atomic.Int32
	release := blockingCompile(s, &calls)
	defer close(release)

	id := submitJob(t, ts.URL, qft4Job)
	waitFor(t, func() bool { return calls.Load() == 1 })
	resp, raw := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("early result = %d: %s", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte(`"running"`)) {
		t.Errorf("early result body = %s, want the running snapshot", raw)
	}
}

// TestJobsEventsSSE: the events endpoint streams state transitions as
// SSE, live while the job runs and ending with the terminal state.
func TestJobsEventsSSE(t *testing.T) {
	s, ts := jobsServer(t, Config{Workers: 1, QueueDepth: 4})
	var calls atomic.Int32
	release := blockingCompile(s, &calls)

	id := submitJob(t, ts.URL, qft4Job)
	waitFor(t, func() bool { return calls.Load() == 1 })

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	var states []string
	scanner := bufio.NewScanner(resp.Body)
	var event string
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "state":
			var sd struct {
				State string `json:"state"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &sd); err != nil {
				t.Fatalf("state event data: %v", err)
			}
			states = append(states, sd.State)
		}
	}
	// queued and running replay from history; done arrives live (and is
	// re-sent after the channel closes, so it may appear twice).
	joined := strings.Join(states, ",")
	if !strings.HasPrefix(joined, "queued,running") || !strings.Contains(joined, "done") {
		t.Errorf("state sequence = %v, want queued,running,...,done", states)
	}

	// A terminal job's stream replays history and closes immediately.
	resp2, raw := getJSON(t, ts.URL+"/v1/jobs/"+id+"/events")
	if resp2.StatusCode != http.StatusOK || !bytes.Contains(raw, []byte("event: state")) {
		t.Errorf("terminal stream = %d: %s", resp2.StatusCode, raw)
	}
}

// TestJobsListFilters: the list endpoint filters by state and kind and
// rejects junk filter values.
func TestJobsListFilters(t *testing.T) {
	_, ts := jobsServer(t, Config{Workers: 2, QueueDepth: 8})
	id := submitJob(t, ts.URL, qft4Job)
	waitJobState(t, ts.URL, id, "done")

	_, raw := getJSON(t, ts.URL+"/v1/jobs?state=done&kind=compile")
	var list struct {
		Jobs []struct {
			ID     string          `json:"id"`
			Result json.RawMessage `json:"result"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != id {
		t.Fatalf("filtered list = %s", raw)
	}
	if list.Jobs[0].Result != nil {
		t.Error("list snapshot carries a result payload")
	}
	if _, raw := getJSON(t, ts.URL+"/v1/jobs?state=none"); len(raw) > 0 {
		var probe struct {
			Jobs []any `json:"jobs"`
		}
		if json.Unmarshal(raw, &probe) == nil && probe.Jobs != nil {
			t.Error("bogus state filter accepted")
		}
	}
}

// TestStoreRestartReadThrough: a new Server over the same store
// directory serves a previously compiled point from disk — cached, no
// compile — the property -store-dir buys across daemon restarts.
func TestStoreRestartReadThrough(t *testing.T) {
	dir := t.TempDir()
	open := func() *Server {
		st, err := store.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		return New(Config{Workers: 1, Store: st})
	}

	s1 := open()
	cold, err := s1.Compile(context.Background(), qftRequest(6))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("cold compile reported cached")
	}
	if got := s1.Metrics(); got.Store == nil || got.Store.Puts != 1 {
		t.Fatalf("store metrics after compile = %+v, want 1 put", got.Store)
	}
	s1.Close()

	s2 := open() // the "restarted daemon"
	defer s2.Close()
	warm, err := s2.Compile(context.Background(), qftRequest(6))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("restarted server missed the disk store")
	}
	if warm.Fidelity != cold.Fidelity || warm.Stages != cold.Stages || warm.Moves != cold.Moves {
		t.Errorf("disk round trip diverged: %+v vs %+v", warm, cold)
	}
	m := s2.Metrics()
	if m.Compiles != 0 {
		t.Errorf("restarted server compiled %d times, want 0", m.Compiles)
	}
	if m.Store == nil || m.Store.Hits != 1 {
		t.Errorf("store metrics = %+v, want 1 hit", m.Store)
	}
}

// TestErrorEnvelopeTable drives every handler's error paths and pins the
// envelope shape and stable code each one answers with.
func TestErrorEnvelopeTable(t *testing.T) {
	_, ts := jobsServer(t, Config{Workers: 1, QueueDepth: 4})
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"compile bad json", "POST", "/v1/compile", `{not json`, 400, CodeInvalidRequest},
		{"compile unknown field", "POST", "/v1/compile", `{"workload":{"family":"QFT","qubits":4},"wat":1}`, 400, CodeInvalidRequest},
		{"compile no source", "POST", "/v1/compile", `{}`, 400, CodeInvalidRequest},
		{"compile bad scheme", "POST", "/v1/compile", `{"workload":{"family":"QFT","qubits":4},"scheme":"turbo"}`, 400, CodeInvalidRequest},
		{"compile unknown grouping", "POST", "/v1/compile", `{"workload":{"family":"QFT","qubits":4},"grouping":"turbo"}`, 400, CodeUnknownGrouping},
		{"compile bad verify param", "POST", "/v1/compile?verify=maybe", `{"workload":{"family":"QFT","qubits":4}}`, 400, CodeInvalidRequest},
		{"batch bad json", "POST", "/v1/batch", `]`, 400, CodeInvalidRequest},
		{"batch unknown field", "POST", "/v1/batch", `{"requests":[],"wat":1}`, 400, CodeInvalidRequest},
		{"batch empty", "POST", "/v1/batch", `{"requests":[]}`, 400, CodeInvalidRequest},
		{"experiment unknown kind", "GET", "/v1/experiments/plot/1?stable=1", "", 400, CodeInvalidRequest},
		{"experiment unknown table", "GET", "/v1/experiments/table/9?stable=1", "", 400, CodeInvalidRequest},
		{"experiment bad stable param", "GET", "/v1/experiments/table/1?stable=maybe", "", 400, CodeInvalidRequest},
		{"jobs bad json", "POST", "/v1/jobs", `{not json`, 400, CodeInvalidRequest},
		{"jobs unknown field", "POST", "/v1/jobs", `{"wat":1}`, 400, CodeInvalidRequest},
		{"jobs no work", "POST", "/v1/jobs", `{"priority":1}`, 400, CodeInvalidRequest},
		{"jobs two works", "POST", "/v1/jobs", `{"compile":{"workload":{"family":"QFT","qubits":4}},"batch":{"requests":[]}}`, 400, CodeInvalidRequest},
		{"jobs bad priority", "POST", "/v1/jobs", `{"priority":99,"compile":{"workload":{"family":"QFT","qubits":4}}}`, 400, CodeInvalidRequest},
		{"jobs invalid compile", "POST", "/v1/jobs", `{"compile":{"workload":{"family":"nope","qubits":4}}}`, 400, CodeInvalidRequest},
		{"jobs unknown grouping", "POST", "/v1/jobs", `{"compile":{"workload":{"family":"QFT","qubits":4},"grouping":"turbo"}}`, 400, CodeUnknownGrouping},
		{"jobs empty batch", "POST", "/v1/jobs", `{"batch":{"requests":[]}}`, 400, CodeInvalidRequest},
		{"jobs bad experiment", "POST", "/v1/jobs", `{"experiment":{"kind":"plot","id":"1"}}`, 400, CodeInvalidRequest},
		{"jobs list bad state", "GET", "/v1/jobs?state=bogus", "", 400, CodeInvalidRequest},
		{"jobs list bad limit", "GET", "/v1/jobs?limit=x", "", 400, CodeInvalidRequest},
		{"jobs get unknown", "GET", "/v1/jobs/nope", "", 404, CodeNotFound},
		{"jobs result unknown", "GET", "/v1/jobs/nope/result", "", 404, CodeNotFound},
		{"jobs events unknown", "GET", "/v1/jobs/nope/events", "", 404, CodeNotFound},
		{"jobs cancel unknown", "DELETE", "/v1/jobs/nope", "", 404, CodeNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.wantStatus, raw)
			}
			if code := envelopeCode(t, raw); code != tc.wantCode {
				t.Errorf("code = %q, want %q: %s", code, tc.wantCode, raw)
			}
		})
	}
}

// TestDecodeStrictness: every body-accepting endpoint rejects unknown
// fields — nested ones included — so typos fail loudly instead of
// silently selecting defaults.
func TestDecodeStrictness(t *testing.T) {
	_, ts := jobsServer(t, Config{Workers: 1, QueueDepth: 4})
	cases := []struct {
		endpoint string
		body     string
	}{
		{"/v1/compile", `{"workload":{"family":"QFT","qubits":4},"schem":"enola"}`},
		{"/v1/compile", `{"workload":{"family":"QFT","qubits":4,"size":9}}`},
		{"/v1/batch", `{"requests":[{"workload":{"family":"QFT","qubits":4},"stble":true}]}`},
		{"/v1/jobs", `{"compile":{"workload":{"family":"QFT","qubits":4}},"prio":3}`},
		{"/v1/jobs", `{"compile":{"workload":{"family":"QFT","qubits":4},"aod":2}}`},
		{"/v1/jobs", `{"experiment":{"kind":"table","id":"1","stble":true}}`},
	}
	for _, tc := range cases {
		resp, raw := postJSON(t, ts.URL+tc.endpoint, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400", tc.endpoint, tc.body, resp.StatusCode)
			continue
		}
		if code := envelopeCode(t, raw); code != CodeInvalidRequest {
			t.Errorf("%s %s: code %q", tc.endpoint, tc.body, code)
		}
	}
}

// TestCatalogAndSuccessorHeaders: GET /v1 describes the surface, and the
// sync endpoints advertise their async successor via headers.
func TestCatalogAndSuccessorHeaders(t *testing.T) {
	_, ts := jobsServer(t, Config{Workers: 1, QueueDepth: 4})

	resp, raw := getJSON(t, ts.URL+"/v1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1 = %d", resp.StatusCode)
	}
	var doc CatalogDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Service != "powermove" || doc.APIVersion != "v1" || doc.GoVersion == "" {
		t.Errorf("catalog header fields = %+v", doc)
	}
	if len(doc.Endpoints) < 10 || len(doc.JobKinds) != 4 {
		t.Errorf("catalog lists %d endpoints / %d job kinds", len(doc.Endpoints), len(doc.JobKinds))
	}
	var syncWithSuccessor int
	for _, ep := range doc.Endpoints {
		if ep.Successor != "" {
			syncWithSuccessor++
			if ep.Deprecated {
				t.Errorf("endpoint %s %s marked deprecated", ep.Method, ep.Path)
			}
		}
	}
	if syncWithSuccessor != 3 {
		t.Errorf("%d endpoints advertise a successor, want 3 (compile, batch, experiments)", syncWithSuccessor)
	}

	cresp, _ := postJSON(t, ts.URL+"/v1/compile", `{"workload":{"family":"QFT","qubits":4},"stable":true}`)
	if dep := cresp.Header.Get("Deprecation"); dep != "false" {
		t.Errorf("Deprecation header = %q, want false", dep)
	}
	if link := cresp.Header.Get("Link"); !strings.Contains(link, "/v1/jobs") || !strings.Contains(link, "successor-version") {
		t.Errorf("Link header = %q", link)
	}

	// The jobs endpoints carry no deprecation headers.
	jresp, _ := getJSON(t, ts.URL+"/v1/jobs")
	if jresp.Header.Get("Deprecation") != "" {
		t.Error("jobs endpoint carries a Deprecation header")
	}
}

// TestJobsExperimentAsync runs a static table through the async path and
// checks its document matches the sync experiments endpoint's bytes.
func TestJobsExperimentAsync(t *testing.T) {
	_, ts := jobsServer(t, Config{Workers: 1, QueueDepth: 4})
	_, sync := getJSON(t, ts.URL+"/v1/experiments/table/2?stable=1")

	id := submitJob(t, ts.URL, `{"experiment":{"kind":"table","id":"2","stable":true}}`)
	waitJobState(t, ts.URL, id, "done")
	resp, async := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d", resp.StatusCode)
	}
	if !bytes.Equal(sync, async) {
		t.Errorf("async experiment diverged from sync document:\nsync:  %.120s\nasync: %.120s", sync, async)
	}

	// Verify jobs force verification on.
	vid := submitJob(t, ts.URL, `{"verify":{"workload":{"family":"QFT","qubits":4},"stable":true}}`)
	waitJobState(t, ts.URL, vid, "done")
	_, vraw := getJSON(t, ts.URL+"/v1/jobs/"+vid+"/result")
	var vdoc CompileResponse
	if err := json.Unmarshal(vraw, &vdoc); err != nil {
		t.Fatal(err)
	}
	if vdoc.Verify == nil {
		t.Error("verify job result lacks a verification summary")
	}
}

// TestJobsBatchAsync runs a small batch through the queue.
func TestJobsBatchAsync(t *testing.T) {
	_, ts := jobsServer(t, Config{Workers: 2, QueueDepth: 4})
	id := submitJob(t, ts.URL, `{"batch":{"requests":[
		{"workload":{"family":"QFT","qubits":4},"stable":true},
		{"workload":{"family":"nope","qubits":4}}
	]}}`)
	waitJobState(t, ts.URL, id, "done")
	_, raw := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result")
	var doc BatchResponse
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 2 || doc.Results[0].Result == nil || doc.Results[1].Error == "" {
		t.Errorf("batch job results = %s", raw)
	}
}

// TestJobsManagerWiring sanity-checks the service-level TTL default
// plumbs through to the manager.
func TestJobsManagerWiring(t *testing.T) {
	s := New(Config{Workers: 1, JobTTL: 3 * time.Minute})
	defer s.Close()
	if got := s.jobs.TTL(); got != 3*time.Minute {
		t.Errorf("manager TTL = %v, want 3m", got)
	}
	if _, err := s.jobs.Get("nope"); err != jobs.ErrNotFound {
		t.Errorf("Get unknown = %v", err)
	}
}
