package service

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"powermove/internal/cache"
	"powermove/internal/compiler"
	"powermove/internal/jobs"
	"powermove/internal/store"
	"powermove/internal/verify"
)

// endpointMetrics accumulates per-endpoint request counts and latency
// under one small mutex; the service's hot path is the compile itself,
// not this bookkeeping.
type endpointMetrics struct {
	mu sync.Mutex
	m  map[string]*EndpointStats
}

// EndpointStats is the accounting of one endpoint.
type EndpointStats struct {
	// Requests counts calls, including failed ones.
	Requests int64 `json:"requests"`
	// Errors counts calls that returned a non-2xx status.
	Errors int64 `json:"errors"`
	// TotalMS and MaxMS describe observed handler latency; MeanMS is
	// TotalMS/Requests, computed at snapshot time.
	TotalMS float64 `json:"total_ms"`
	MaxMS   float64 `json:"max_ms"`
	MeanMS  float64 `json:"mean_ms"`
}

// observe records one call of endpoint.
func (em *endpointMetrics) observe(endpoint string, elapsed time.Duration, failed bool) {
	ms := float64(elapsed) / float64(time.Millisecond)
	em.mu.Lock()
	defer em.mu.Unlock()
	if em.m == nil {
		em.m = make(map[string]*EndpointStats)
	}
	st := em.m[endpoint]
	if st == nil {
		st = &EndpointStats{}
		em.m[endpoint] = st
	}
	st.Requests++
	if failed {
		st.Errors++
	}
	st.TotalMS += ms
	if ms > st.MaxMS {
		st.MaxMS = ms
	}
}

// snapshot copies the per-endpoint ledger, filling in means.
func (em *endpointMetrics) snapshot() map[string]EndpointStats {
	em.mu.Lock()
	defer em.mu.Unlock()
	out := make(map[string]EndpointStats, len(em.m))
	for k, st := range em.m {
		s := *st
		if s.Requests > 0 {
			s.MeanMS = s.TotalMS / float64(s.Requests)
		}
		out[k] = s
	}
	return out
}

// PassMetrics is the cumulative accounting of one compiler pass across
// every fresh compile the server has executed (compile, batch, and
// experiment requests alike; cache hits don't recount the compile that
// produced them). Calls and counters are monotone non-decreasing, so
// two scrapes bracket the pass-level work a request caused.
type PassMetrics struct {
	// Calls counts pass invocations (stage-level passes run once per
	// stage of every compiled circuit).
	Calls int64 `json:"calls"`
	// TotalMS is cumulative pass self-time.
	TotalMS float64 `json:"total_ms"`
	// Counters accumulates the pass's Stats counter deltas, e.g.
	// {"moves": N} for the routing pass.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// passLedger accumulates per-pass breakdowns under one small mutex,
// keyed by pass name.
type passLedger struct {
	mu sync.Mutex
	m  map[string]*PassMetrics
}

// observe folds one compile's breakdown into the ledger.
func (pl *passLedger) observe(ps compiler.PassStats) {
	if len(ps) == 0 {
		return
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.m == nil {
		pl.m = make(map[string]*PassMetrics)
	}
	for _, p := range ps {
		st := pl.m[p.Pass]
		if st == nil {
			st = &PassMetrics{}
			pl.m[p.Pass] = st
		}
		st.Calls += int64(p.Calls)
		st.TotalMS += float64(p.Duration) / float64(time.Millisecond)
		for k, v := range p.Counters {
			if st.Counters == nil {
				st.Counters = make(map[string]int64, len(p.Counters))
			}
			st.Counters[k] += v
		}
	}
}

// snapshot deep-copies the ledger.
func (pl *passLedger) snapshot() map[string]PassMetrics {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	out := make(map[string]PassMetrics, len(pl.m))
	for k, st := range pl.m {
		s := *st
		if len(st.Counters) > 0 {
			s.Counters = make(map[string]int64, len(st.Counters))
			for ck, cv := range st.Counters {
				s.Counters[ck] = cv
			}
		}
		out[k] = s
	}
	return out
}

// VerifyMetrics is the cumulative accounting of the differential
// verification subsystem (internal/verify) across every fresh verified
// compile: how many programs were checked, how many verified clean, and
// the total violations found. Cache hits reuse a verification already
// counted. A non-zero Violations is an alarm — it means a compiled
// program broke a physical constraint or diverged from its circuit.
type VerifyMetrics struct {
	// Checks counts verified compiles.
	Checks int64 `json:"checks"`
	// Clean counts verified compiles with no violations.
	Clean int64 `json:"clean"`
	// Violations is the cumulative violation count across all checks.
	Violations int64 `json:"violations"`
	// OracleStates and OracleAmps count the state-vector simulations the
	// equivalence oracle ran and the amplitudes they held — the oracle
	// throughput numerators.
	OracleStates int64 `json:"oracle_states"`
	OracleAmps   int64 `json:"oracle_amps"`
	// OracleGatesIn and OracleGatesApplied count gates handed to the
	// oracle before fusion and operations executed after it;
	// FusedGateRatio = 1 - applied/in, computed at snapshot time (0 when
	// the oracle has not run).
	OracleGatesIn      int64   `json:"oracle_gates_in"`
	OracleGatesApplied int64   `json:"oracle_gates_applied"`
	FusedGateRatio     float64 `json:"fused_gate_ratio"`
	// SweepPassesSaved counts the full state traversals the segment
	// executor folded away on top of fusion (diagonal runs and dense
	// neighbors merged into single sweeps).
	SweepPassesSaved int64 `json:"sweep_passes_saved"`
	// OracleAmpsPerSec is OracleAmps over cumulative oracle wall-clock,
	// computed at snapshot time (0 until the oracle has run).
	OracleAmpsPerSec float64 `json:"oracle_amps_per_sec"`
}

// verifyLedger accumulates VerifyMetrics atomically.
type verifyLedger struct {
	checks, clean, violations                      atomic.Int64
	oracleStates, oracleAmps                       atomic.Int64
	oracleGatesIn, oracleGatesApplied, oracleNanos atomic.Int64
	sweepPassesSaved                               atomic.Int64
}

// observe folds one verified compile's summary into the ledger; nil
// (unverified compile) is a no-op.
func (vl *verifyLedger) observe(s *verify.Summary) {
	if s == nil {
		return
	}
	vl.checks.Add(1)
	if s.Violations == 0 {
		vl.clean.Add(1)
	} else {
		vl.violations.Add(int64(s.Violations))
	}
	if s.Oracle != nil {
		vl.observeOracle(*s.Oracle)
	}
}

// observeOracle folds raw oracle accounting into the ledger — the
// batched sweep path reports its aggregate here directly (its per-item
// summaries carry no wall clock; the aggregate does).
func (vl *verifyLedger) observeOracle(o verify.OracleStats) {
	vl.oracleStates.Add(o.States)
	vl.oracleAmps.Add(o.Amps)
	vl.oracleGatesIn.Add(o.GatesIn)
	vl.oracleGatesApplied.Add(o.GatesApplied)
	vl.sweepPassesSaved.Add(o.SweepPassesSaved)
	vl.oracleNanos.Add(o.ElapsedNS)
}

// snapshot reads the ledger.
func (vl *verifyLedger) snapshot() VerifyMetrics {
	m := VerifyMetrics{
		Checks:             vl.checks.Load(),
		Clean:              vl.clean.Load(),
		Violations:         vl.violations.Load(),
		OracleStates:       vl.oracleStates.Load(),
		OracleAmps:         vl.oracleAmps.Load(),
		OracleGatesIn:      vl.oracleGatesIn.Load(),
		OracleGatesApplied: vl.oracleGatesApplied.Load(),
		SweepPassesSaved:   vl.sweepPassesSaved.Load(),
	}
	if m.OracleGatesIn > 0 {
		m.FusedGateRatio = 1 - float64(m.OracleGatesApplied)/float64(m.OracleGatesIn)
	}
	if ns := vl.oracleNanos.Load(); ns > 0 {
		m.OracleAmpsPerSec = float64(m.OracleAmps) / (float64(ns) / 1e9)
	}
	return m
}

// MemCounters is the allocation side of /metrics, read from
// runtime.MemStats at snapshot time. The compile hot path was tuned to
// run allocation-free (pooled router scratch, bitset sets, reused
// executor masks); these counters are what lets an operator confirm that
// holds in production — mallocs per compile should stay flat as traffic
// grows.
type MemCounters struct {
	// HeapAllocBytes is the live heap at snapshot time.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// TotalAllocBytes is cumulative bytes allocated since process start.
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	// Mallocs and Frees count heap objects allocated and freed.
	Mallocs uint64 `json:"mallocs"`
	Frees   uint64 `json:"frees"`
	// NumGC counts completed GC cycles.
	NumGC uint32 `json:"num_gc"`
	// PauseTotalMS is cumulative stop-the-world pause time.
	PauseTotalMS float64 `json:"pause_total_ms"`
}

// IncrementalMetrics is the incremental-compilation snapshot store's
// accounting: how many compiles probed it, how many resumed from a
// shared-prefix checkpoint or warm-started placement, and the compile
// wall clock the resumed prefixes avoided re-paying (the saved-time
// ledger).
type IncrementalMetrics struct {
	// Enabled reports whether the snapshot store is configured (it is by
	// default; -snapshot-cache 0 disables it).
	Enabled bool `json:"enabled"`
	// Entries is the number of retained snapshot entries.
	Entries int `json:"entries"`
	// Probes counts compiles that consulted the store.
	Probes int64 `json:"probes"`
	// PrefixHits counts compiles resumed from a shared-prefix checkpoint.
	PrefixHits int64 `json:"incremental_prefix_hits"`
	// WarmStarts counts compiles whose placement was warm-started from a
	// neighbor's layout.
	WarmStarts int64 `json:"warm_starts"`
	// SavedMS is the cumulative compile time the prefix hits skipped.
	SavedMS float64 `json:"saved_ms"`
}

// SpeculationMetrics is the speculative-precompilation accounting:
// variants nominated, variants actually precompiled on idle worker
// slots, and real requests later served from a speculated entry.
type SpeculationMetrics struct {
	// Enabled reports whether speculation is configured (-speculate).
	Enabled bool `json:"enabled"`
	// Queued is the pending variant backlog (including one in flight).
	Queued int `json:"queued"`
	// Candidates counts variants ever nominated.
	Candidates int64 `json:"candidates"`
	// Compiles counts variants actually precompiled.
	Compiles int64 `json:"speculative_compiles"`
	// Hits counts real requests served from a speculated entry.
	Hits int64 `json:"speculative_hits"`
	// SavedMS is the cumulative compile time those hits never waited for.
	SavedMS float64 `json:"saved_ms"`
}

// BackendBlock is the scrape-friendly digest of one backend for the
// fleet tier: the instance identity plus the handful of counters a
// router aggregates across N daemons — flattened here so the router
// (and any fleet dashboard) reads one stable shallow block instead of
// chasing fields through the full snapshot.
type BackendBlock struct {
	// Instance is the backend's fleet identity (Config.Instance).
	Instance string `json:"instance"`
	// UptimeS is seconds since the server was constructed.
	UptimeS float64 `json:"uptime_s"`
	// CacheHits/CacheMisses are the in-memory compile cache's counters;
	// a fleet router proves routing locality by watching hits rise on
	// exactly the backend a key hashes to.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// StoreHits counts disk-tier hits (0 without a -store-dir).
	StoreHits int64 `json:"store_hits"`
	// Compiles counts outcomes actually compiled.
	Compiles int64 `json:"compiles"`
	// QueueDepth/QueueCapacity describe the async admission queue now;
	// Shed counts submissions rejected with 429.
	QueueDepth    int   `json:"queue_depth"`
	QueueCapacity int   `json:"queue_capacity"`
	Shed          int64 `json:"shed"`
}

// MetricsSnapshot is the /metrics payload: cache, compile, dedup, memory,
// and per-endpoint latency accounting.
type MetricsSnapshot struct {
	// Backend is the fleet-facing digest block, present only when the
	// server was given an instance identity (-backend-id).
	Backend *BackendBlock `json:"backend,omitempty"`
	// UptimeS is seconds since the server was constructed.
	UptimeS float64 `json:"uptime_s"`
	// Workers is the compile-concurrency bound.
	Workers int `json:"workers"`
	// Cache is the shared compile cache's accounting. Its hit count
	// includes requests that attached to an in-flight compile of their
	// key inside the engine.
	Cache cache.Stats `json:"cache"`
	// Compiles counts outcomes actually compiled (cache misses that ran
	// the pipeline), across compile, batch, and experiment requests.
	Compiles int64 `json:"compiles"`
	// Deduped counts /v1/compile requests that joined a concurrent
	// identical request through the singleflight group.
	Deduped int64 `json:"deduped"`
	// Mem is the process's allocation accounting.
	Mem MemCounters `json:"mem"`
	// Endpoints is the per-endpoint request/latency ledger.
	Endpoints map[string]EndpointStats `json:"endpoints"`
	// Passes is the cumulative per-compiler-pass time/counter ledger
	// across every fresh compile the server has executed.
	Passes map[string]PassMetrics `json:"passes"`
	// Verify is the differential-verification ledger across every
	// fresh verified compile.
	Verify VerifyMetrics `json:"verify"`
	// Incremental is the snapshot store's prefix-reuse and warm-start
	// accounting.
	Incremental IncrementalMetrics `json:"incremental"`
	// Speculation is the speculative-precompilation accounting.
	Speculation SpeculationMetrics `json:"speculation"`
	// Jobs is the async queue's accounting: per-state transition
	// counters, current depth/running/retained gauges, shed and attach
	// counts, and the admission-to-start latency histogram.
	Jobs jobs.Metrics `json:"jobs"`
	// Store is the disk result store's accounting, present only when a
	// store is configured (-store-dir).
	Store *store.Stats `json:"store,omitempty"`
}

// Metrics returns a snapshot of the server's accounting.
func (s *Server) Metrics() MetricsSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap := MetricsSnapshot{
		UptimeS:  time.Since(s.start).Seconds(),
		Workers:  s.workers,
		Cache:    s.cache.Stats(),
		Compiles: s.compiles.Load(),
		Deduped:  s.flight.joins.Load(),
		Mem: MemCounters{
			HeapAllocBytes:  ms.HeapAlloc,
			TotalAllocBytes: ms.TotalAlloc,
			Mallocs:         ms.Mallocs,
			Frees:           ms.Frees,
			NumGC:           ms.NumGC,
			PauseTotalMS:    float64(ms.PauseTotalNs) / 1e6,
		},
		Endpoints: s.endpoints.snapshot(),
		Passes:    s.passes.snapshot(),
		Verify:    s.verifies.snapshot(),
		Jobs:      s.jobs.Metrics(),
	}
	if s.snaps != nil {
		st := s.snaps.Stats()
		snap.Incremental = IncrementalMetrics{
			Enabled:    true,
			Entries:    st.Entries,
			Probes:     st.Probes,
			PrefixHits: st.PrefixHits,
			WarmStarts: st.WarmStarts,
			SavedMS:    st.SavedMS,
		}
	}
	if s.spec != nil {
		snap.Speculation = s.spec.metrics()
	}
	if s.store != nil {
		st := s.store.Stats()
		snap.Store = &st
	}
	if s.instance != "" {
		b := &BackendBlock{
			Instance:      s.instance,
			UptimeS:       snap.UptimeS,
			CacheHits:     int64(snap.Cache.Hits),
			CacheMisses:   int64(snap.Cache.Misses),
			Compiles:      snap.Compiles,
			QueueDepth:    snap.Jobs.Depth,
			QueueCapacity: snap.Jobs.Capacity,
			Shed:          snap.Jobs.Shed,
		}
		if snap.Store != nil {
			b.StoreHits = snap.Store.Hits
		}
		snap.Backend = b
	}
	return snap
}
