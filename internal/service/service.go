// Package service is the compile-as-a-service layer over the batch
// engine: JSON request/response types, request validation, a shared
// size-bounded LRU compile cache (internal/cache via pipeline.Cache), a
// singleflight group collapsing concurrent identical requests into one
// execution, and bounded compile concurrency. cmd/powermoved serves it
// over HTTP; cmd/powermove -json and powermove.CompileJSON run the same
// path one-shot, which is why the CLI and the daemon produce
// byte-identical documents for the same request.
//
// The dataflow for one compile request is
//
//	validate → key → singleflight → semaphore → pipeline.Run → cache
//
// with the cache consulted inside pipeline.Run (a repeated request is a
// cache hit and never reaches a worker) and the singleflight group
// ensuring a concurrent burst of identical requests occupies one worker
// slot, not N.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"powermove/internal/circuit"
	"powermove/internal/compiler"
	"powermove/internal/experiments"
	"powermove/internal/fidelity"
	"powermove/internal/jobs"
	"powermove/internal/pipeline"
	"powermove/internal/qasm"
	"powermove/internal/store"
	"powermove/internal/verify"
	"powermove/internal/workload"
)

// MaxAODs bounds the accepted AOD-array count, one beyond the paper's
// Fig. 7 sweep ceiling times two; larger requests are almost certainly
// typos and the architecture model has never been validated there.
const MaxAODs = 8

// Config sizes a Server.
type Config struct {
	// Instance is this server's stable identity within a fleet — the
	// name a powermove-router knows the backend by. It prefixes job ids
	// ("<instance>.jNN-...") so routers recover job ownership from the
	// id alone, and it labels the /metrics backend block. Must not
	// contain "." (the id separator); empty means a standalone daemon.
	Instance string
	// Workers bounds concurrent compile executions across all requests;
	// values < 1 select GOMAXPROCS.
	Workers int
	// CacheSize bounds the shared compile cache in entries (one entry is
	// one compiled evaluation point); 0 means unbounded.
	CacheSize int
	// QueueDepth bounds the async job admission queue (/v1/jobs);
	// submissions beyond it are shed with 429 + Retry-After. Values < 1
	// select 256.
	QueueDepth int
	// JobTTL is how long finished jobs and their result documents are
	// retained for polling; values <= 0 select 15 minutes.
	JobTTL time.Duration
	// Store, when non-nil, is a disk-backed second cache tier behind the
	// in-memory LRU: fresh outcomes are written through to it, and an
	// in-memory miss reads through before compiling, so compiled results
	// survive daemon restarts. Open one with store.Open.
	Store *store.Store
	// SnapshotCache bounds the incremental-compilation snapshot store
	// (per-block compiler checkpoints, see pipeline.SnapshotStore): 0
	// selects pipeline.DefaultSnapshotCap, negative disables incremental
	// compilation entirely (every compile is cold).
	SnapshotCache int
	// NoWarmStart disables warm-start placement donation (the
	// -no-warm-start escape hatch); prefix resumption is unaffected.
	NoWarmStart bool
	// Speculate enables speculative precompilation: idle job-worker slots
	// precompile likely ablation variants (grouping and scheme
	// substitutions) of freshly compiled requests at lowest priority,
	// strictly load-shedding to real work.
	Speculate bool
}

// Server is the compile service: a shared LRU outcome cache, a
// singleflight group, and a compile semaphore. Construct with New; use
// Handler for the HTTP front end or Compile/Batch/Experiments directly.
type Server struct {
	instance string
	workers  int
	cache    *pipeline.Cache
	flight   flightGroup[*CompileResponse]
	sem      chan struct{}
	start    time.Time
	jobs     *jobs.Manager
	store    *store.Store
	snaps    *pipeline.SnapshotStore
	spec     *speculator

	// compileOne executes one validated job; tests substitute a
	// controlled implementation to observe dedup behavior.
	compileOne func(ctx context.Context, job pipeline.Job) (pipeline.Result, error)

	compiles  atomic.Int64
	endpoints endpointMetrics
	passes    passLedger
	verifies  verifyLedger
}

// New returns a ready Server. Release it with Close — the async job
// subsystem owns goroutines.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		instance: cfg.Instance,
		workers:  workers,
		cache:    pipeline.NewCacheBounded(cfg.CacheSize),
		sem:      make(chan struct{}, workers),
		start:    time.Now(),
		store:    cfg.Store,
	}
	s.compileOne = s.pipelineCompile
	if cfg.Store != nil {
		s.cache.SetTier(pipeline.DiskTier(cfg.Store))
	}
	if cfg.SnapshotCache >= 0 {
		s.snaps = pipeline.NewSnapshotStore(cfg.SnapshotCache)
		s.snaps.SetWarmStart(!cfg.NoWarmStart)
	}
	if cfg.Speculate {
		s.spec = newSpeculator(s)
	}
	// Job workers match the compile-concurrency bound: more would only
	// stack up on the compile semaphore.
	jc := jobs.Config{
		Depth:    cfg.QueueDepth,
		Workers:  workers,
		TTL:      cfg.JobTTL,
		Run:      s.runJob,
		CodeOf:   errorCode,
		IDPrefix: cfg.Instance,
	}
	if s.spec != nil {
		jc.Speculate = s.spec.speculate
	}
	s.jobs = jobs.NewManager(jc)
	return s
}

// Close releases the job subsystem's goroutines, canceling jobs still
// running.
func (s *Server) Close() { s.jobs.Close() }

// CompileSpec is the compilation knobs shared by every request shape
// that compiles — /v1/compile, each /v1/batch item, and async compile
// and verify jobs embed it, so the knobs validate in one place
// (normalize) and mean the same thing everywhere. Its fields marshal
// inline (Go's embedded-struct promotion), so the wire format is
// unchanged from when they were declared flat on CompileRequest.
type CompileSpec struct {
	// Scheme is "enola", "non-storage", or "with-storage" (the
	// default).
	Scheme string `json:"scheme,omitempty"`
	// AODs is the number of AOD arrays of the target architecture;
	// 0 defaults to 1.
	AODs int `json:"aods,omitempty"`
	// Grouping optionally substitutes the zoned pipeline's Coll-Move
	// grouping pass: "merged" (the default), "distance", or "in-order"
	// (compiler.GroupingNames). Unknown names are rejected as 400s with
	// code unknown_grouping; the enola baseline has a fixed grouping
	// and rejects the field.
	Grouping string `json:"grouping,omitempty"`
	// Stable zeroes the measured wall-clock fields of the response so
	// repeated requests (and the CLI's -json -stable mode) are
	// byte-identical.
	Stable bool `json:"stable,omitempty"`
	// Verify runs the differential verification subsystem
	// (internal/verify) over the compiled program — the physical
	// legality checker plus the semantic equivalence oracle — and
	// attaches its summary to the response. The HTTP front end also
	// accepts it as the ?verify=1 query parameter.
	Verify bool `json:"verify,omitempty"`
}

// normalize validates the spec and returns the normalized scheme, AOD
// count, and canonical grouping name (empty for the default, so an
// explicit "merged" shares the default's cache entry).
func (cs *CompileSpec) normalize() (pipeline.Scheme, int, string, error) {
	scheme := pipeline.Scheme(cs.Scheme)
	if cs.Scheme == "" {
		scheme = pipeline.WithStorage
	}
	switch scheme {
	case pipeline.Enola, pipeline.NonStorage, pipeline.WithStorage:
	default:
		return "", 0, "", fmt.Errorf("unknown scheme %q (want enola, non-storage, or with-storage)", cs.Scheme)
	}
	aods := cs.AODs
	if aods == 0 {
		aods = 1
	}
	if aods < 1 || aods > MaxAODs {
		return "", 0, "", fmt.Errorf("aods = %d out of range [1, %d]", cs.AODs, MaxAODs)
	}
	if scheme == pipeline.Enola && aods != 1 {
		return "", 0, "", fmt.Errorf("the enola baseline is single-AOD; got aods = %d", aods)
	}
	// The enola rejection must see the raw field — an explicit "merged"
	// is still a grouping request the baseline can't honor — and only
	// then does the name validate and normalize (an explicit default
	// collapses to the empty name so it shares the default's cache
	// entry; the engine normalizes again for direct job builders).
	grouping := cs.Grouping
	if grouping != "" {
		if scheme == pipeline.Enola {
			return "", 0, "", fmt.Errorf("the enola baseline has a fixed grouping; drop the grouping field")
		}
		if err := compiler.ValidateGrouping(grouping); err != nil {
			return "", 0, "", &APIError{Status: http.StatusBadRequest, Code: CodeUnknownGrouping,
				Message: err.Error(), Details: compiler.GroupingNames()}
		}
		grouping = compiler.NormalizeGrouping(grouping)
	}
	return scheme, aods, grouping, nil
}

// CompileRequest asks for one evaluation point: a circuit (an inline
// OpenQASM 2.0 source or a named benchmark workload) plus the shared
// compilation knobs. Exactly one of QASM and Workload must be set.
type CompileRequest struct {
	// QASM is an inline OpenQASM 2.0 program (see internal/qasm for the
	// supported subset).
	QASM string `json:"qasm,omitempty"`
	// Workload names a generated benchmark instance.
	Workload *WorkloadSpec `json:"workload,omitempty"`
	CompileSpec
}

// WorkloadSpec names a generated benchmark instance, mirroring
// experiments.Spec: without Seed the instance is the paper's, with its
// deterministic spec-derived seed; with Seed the family generator runs
// under that seed instead.
type WorkloadSpec struct {
	// Family is a benchmark family of Table 2, e.g. "QFT" or
	// "QAOA-regular3".
	Family string `json:"family"`
	// Qubits is the instance size.
	Qubits int `json:"qubits"`
	// Seed, when non-nil, overrides the spec-derived generator seed.
	Seed *int64 `json:"seed,omitempty"`
}

// CompileResponse is one compiled evaluation point. Every field except
// TcompMS and Cached is a deterministic function of the request.
type CompileResponse struct {
	// Bench is the cache identity of the circuit: the workload's
	// "family-n" name (suffixed "@seed" under an explicit seed) or
	// "qasm:<digest>" for inline sources.
	Bench string `json:"bench"`
	// Scheme and AODs echo the normalized request.
	Scheme string `json:"scheme"`
	AODs   int    `json:"aods"`
	// Qubits is the circuit's qubit count.
	Qubits int `json:"qubits"`
	// Fidelity is the headline output fidelity (Equation 1).
	Fidelity float64 `json:"fidelity"`
	// Components are the individual fidelity factors.
	Components fidelity.Components `json:"components"`
	// TexeUS is the simulated execution time in microseconds.
	TexeUS float64 `json:"texe_us"`
	// TcompMS is the measured compile time in milliseconds; zero under
	// Stable or on a cache hit.
	TcompMS float64 `json:"tcomp_ms"`
	// Stages and Moves count Rydberg pulses and executed relocations.
	Stages int `json:"stages"`
	Moves  int `json:"moves"`
	// Grouping echoes the non-default grouping pass of the request.
	Grouping string `json:"grouping,omitempty"`
	// Passes is the compiler's per-pass breakdown for this evaluation
	// point: self-time, call counts, and counter deltas per pass. The
	// durations are zeroed under Stable and on cache hits (calls and
	// counters are deterministic).
	Passes compiler.PassStats `json:"passes,omitempty"`
	// Verify is the differential verification summary, present only
	// when the request asked for verification. Deterministic, so it
	// survives Stable and cache hits unchanged.
	Verify *verify.Summary `json:"verify,omitempty"`
	// Cached reports whether the outcome came from the shared cache (or
	// an in-flight identical request) rather than a fresh compile.
	Cached bool `json:"cached"`
}

// compilePlan is a validated, normalized request: the batch job plus the
// request facts the response echoes. canon is the key's canonical string
// form, serialized once here and reused by every identity consumer —
// the singleflight group, the async dedup key, the cache's disk tier —
// instead of each re-serializing the key.
type compilePlan struct {
	job    pipeline.Job
	canon  string
	qubits int
	stable bool
}

// validate normalizes req into an executable plan or reports the first
// problem: the shared knobs through CompileSpec.normalize, then the
// circuit source, then the cache key — derived here, once, for every
// path that compiles (sync, batch, and async jobs alike). Inline QASM is
// parsed here too, so malformed programs fail before touching a worker
// and the job closure reuses the parse.
func (req *CompileRequest) validate() (*compilePlan, error) {
	scheme, aods, grouping, err := req.normalize()
	if err != nil {
		return nil, err
	}
	var job pipeline.Job
	var qubits int
	switch {
	case req.QASM != "" && req.Workload != nil:
		return nil, fmt.Errorf("specify only one of qasm and workload")
	case req.QASM != "":
		digest := sha256.Sum256([]byte(req.QASM))
		bench := "qasm:" + hex.EncodeToString(digest[:8])
		prog, err := qasm.Parse(bench, req.QASM)
		if err != nil {
			return nil, fmt.Errorf("qasm: %w", err)
		}
		circ := prog.Circuit
		job = pipeline.NewJob(bench, scheme, aods, func() (*circuit.Circuit, error) { return circ, nil })
		qubits = circ.Qubits
	case req.Workload != nil:
		w := req.Workload
		if w.Qubits < 2 {
			return nil, fmt.Errorf("workload qubits = %d; want at least 2", w.Qubits)
		}
		if !knownFamily(experiments.Family(w.Family)) {
			return nil, fmt.Errorf("unknown workload family %q", w.Family)
		}
		spec := experiments.Spec{Family: experiments.Family(w.Family), Qubits: w.Qubits}
		bench := spec.String()
		gen := spec.Circuit
		if w.Seed != nil {
			seed := *w.Seed
			bench = fmt.Sprintf("%s@%d", bench, seed)
			gen = func() (*circuit.Circuit, error) { return seededCircuit(spec.Family, w.Qubits, seed) }
		}
		job = pipeline.NewJob(bench, scheme, aods, gen)
		qubits = w.Qubits
	default:
		return nil, fmt.Errorf("specify one of qasm and workload")
	}
	job.Key.Grouping = grouping
	job.Key.Verify = req.Verify
	job.Canon = job.Key.String()
	return &compilePlan{job: job, canon: job.Canon, qubits: qubits, stable: req.Stable}, nil
}

// knownFamily reports whether family has a generator, without paying
// for a circuit: validation must stay cheap because it also runs on
// requests that will be served from the cache.
func knownFamily(family experiments.Family) bool {
	switch family {
	case experiments.QAOARegular3, experiments.QAOARegular4, experiments.QAOARandom,
		experiments.QFT, experiments.BV, experiments.VQE, experiments.QSim:
		return true
	default:
		return false
	}
}

// seededCircuit generates family with an explicit seed (deterministic
// families ignore it).
func seededCircuit(family experiments.Family, n int, seed int64) (*circuit.Circuit, error) {
	switch family {
	case experiments.QAOARegular3:
		return workload.QAOARegular(n, 3, seed), nil
	case experiments.QAOARegular4:
		return workload.QAOARegular(n, 4, seed), nil
	case experiments.QAOARandom:
		return workload.QAOARandom(n, seed), nil
	case experiments.QFT:
		return workload.QFT(n), nil
	case experiments.BV:
		return workload.BV(n, seed), nil
	case experiments.VQE:
		return workload.VQE(n), nil
	case experiments.QSim:
		return workload.QSim(n, seed), nil
	default:
		return nil, fmt.Errorf("experiments: unknown family %q", family)
	}
}

// Compile executes one request: validation, then the singleflight group,
// then a bounded-concurrency compile through the batch engine and the
// shared cache. Identical concurrent requests share one execution;
// identical repeated requests are cache hits.
func (s *Server) Compile(ctx context.Context, req *CompileRequest) (*CompileResponse, error) {
	return s.compile(ctx, req, true)
}

// compile is the shared execution path. detach controls whether the
// compile outlives ctx: the sync HTTP path detaches (joiners from other
// connections share the execution, so one client's disconnect must
// neither fail them nor keep the outcome out of the cache — joiners' own
// ctx still governs their wait, in flightGroup.do), while async jobs
// don't (DELETE /v1/jobs/{id} must actually stop the work).
func (s *Server) compile(ctx context.Context, req *CompileRequest, detach bool) (*CompileResponse, error) {
	spec, err := req.validate()
	if err != nil {
		return nil, &RequestError{err}
	}
	leaderCtx := ctx
	if detach {
		leaderCtx = context.WithoutCancel(ctx)
	}
	resp, err, joined := s.flight.do(ctx, spec.canon, func() (*CompileResponse, error) {
		result, err := s.compileOne(leaderCtx, spec.job)
		if err != nil {
			return nil, err
		}
		if result.Err != nil {
			return nil, result.Err
		}
		if !result.Cached {
			s.passes.observe(result.Outcome.Passes)
			s.verifies.observe(result.Outcome.Verify)
		}
		if s.spec != nil {
			// Drive the speculative-precompilation policy from the sync
			// compile path: a cache hit may redeem a speculated variant;
			// a fresh compile nominates its own ablation variants.
			if result.Cached {
				s.spec.creditHit(spec.canon)
			} else {
				s.spec.offer(spec.job)
			}
		}
		return s.response(spec, result), nil
	})
	if err != nil {
		return nil, err
	}
	if joined {
		// The joiner shares the leader's outcome on a copy: its own
		// request never compiled, which is what Cached (and the zeroed
		// wall-clock fields) report.
		shared := *resp
		shared.Cached = true
		shared.TcompMS = 0
		shared.Passes = shared.Passes.Stabilized()
		return &shared, nil
	}
	return resp, nil
}

// pipelineCompile runs one job on the batch engine against the shared
// cache, gated by the service-wide compile semaphore.
func (s *Server) pipelineCompile(ctx context.Context, job pipeline.Job) (pipeline.Result, error) {
	results, stats, err := pipeline.Run(ctx, []pipeline.Job{job}, pipeline.Options{Workers: 1, Cache: s.cache, Sem: s.sem, Snapshots: s.snaps})
	if err != nil {
		return pipeline.Result{}, err
	}
	s.compiles.Add(int64(stats.Compiles))
	return results[0], nil
}

// response assembles the JSON payload for one engine result.
func (s *Server) response(spec *compilePlan, r pipeline.Result) *CompileResponse {
	resp := &CompileResponse{
		Bench:      r.Key.Bench,
		Scheme:     string(r.Key.Scheme),
		AODs:       r.Key.AODs,
		Qubits:     spec.qubits,
		Fidelity:   r.Outcome.Fidelity,
		Components: r.Outcome.Components,
		TexeUS:     r.Outcome.Texe,
		TcompMS:    float64(r.Outcome.Tcomp) / float64(time.Millisecond),
		Stages:     r.Outcome.Stages,
		Moves:      r.Outcome.Moves,
		Grouping:   r.Key.Grouping,
		Passes:     r.Outcome.Passes,
		Verify:     r.Outcome.Verify,
		Cached:     r.Cached,
	}
	if spec.stable || r.Cached {
		resp.TcompMS = 0
		resp.Passes = resp.Passes.Stabilized()
	}
	return resp
}

// BatchRequest compiles many evaluation points in one call.
type BatchRequest struct {
	Requests []CompileRequest `json:"requests"`
}

// BatchItem is one batch result: a response or a per-item error; exactly
// one field is set. Item failures don't fail the batch.
type BatchItem struct {
	Result *CompileResponse `json:"result,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// BatchResponse returns the batch outcomes in request order plus the
// engine's accounting for the run.
type BatchResponse struct {
	Results  []BatchItem    `json:"results"`
	Stats    pipeline.Stats `json:"stats"`
	Duration string         `json:"duration,omitempty"`
}

// MaxBatch bounds the evaluation points of one batch request.
const MaxBatch = 1024

// Batch validates every sub-request, fans the valid ones across the
// engine's worker pool (bounded by Config.Workers) against the shared
// cache, and returns per-item results in request order. Invalid items
// carry their validation error; they cost no compile.
func (s *Server) Batch(ctx context.Context, req *BatchRequest) (*BatchResponse, error) {
	if len(req.Requests) == 0 {
		return nil, &RequestError{fmt.Errorf("empty batch")}
	}
	if len(req.Requests) > MaxBatch {
		return nil, &RequestError{fmt.Errorf("batch has %d requests; limit is %d", len(req.Requests), MaxBatch)}
	}
	specs := make([]*compilePlan, len(req.Requests))
	items := make([]BatchItem, len(req.Requests))
	var jobs []pipeline.Job
	jobIdx := make([]int, 0, len(req.Requests))
	for i := range req.Requests {
		spec, err := req.Requests[i].validate()
		if err != nil {
			items[i] = BatchItem{Error: err.Error()}
			continue
		}
		specs[i] = spec
		jobs = append(jobs, spec.job)
		jobIdx = append(jobIdx, i)
	}
	var stats pipeline.Stats
	if len(jobs) > 0 {
		results, st, err := pipeline.Run(ctx, jobs, pipeline.Options{Workers: s.workers, Cache: s.cache, Sem: s.sem, Snapshots: s.snaps})
		if err != nil {
			return nil, err
		}
		stats = st
		s.compiles.Add(int64(st.Compiles))
		// The raw Cached flags (pre-normalization) identify the items
		// that actually compiled, whose pass breakdowns feed the
		// cumulative /metrics ledger.
		for _, r := range results {
			if r.Err == nil && !r.Cached {
				s.passes.observe(r.Outcome.Passes)
				s.verifies.observe(r.Outcome.Verify)
			}
		}
		// Which duplicate of a key actually compiled is a scheduling
		// race inside the engine, so the raw Cached flags would make
		// stable batch documents flip run to run. Normalize them to
		// request order: if the batch compiled a key, its first item
		// reports the compile and later duplicates report cache hits.
		compiledHere := make(map[pipeline.Key]bool)
		for _, r := range results {
			if r.Err == nil && !r.Cached {
				compiledHere[r.Key] = true
			}
		}
		attributed := make(map[pipeline.Key]bool)
		for j, r := range results {
			i := jobIdx[j]
			if r.Err != nil {
				items[i] = BatchItem{Error: r.Err.Error()}
				continue
			}
			r.Cached = !(compiledHere[r.Key] && !attributed[r.Key])
			attributed[r.Key] = true
			items[i] = BatchItem{Result: s.response(specs[i], r)}
		}
	}
	resp := &BatchResponse{Results: items, Stats: stats}
	stable := true
	for i := range req.Requests {
		stable = stable && req.Requests[i].Stable
	}
	if !stable {
		resp.Duration = stats.Wall.Round(time.Millisecond).String()
	}
	resp.Stats.Wall = 0 // reported via Duration so stable output stays byte-identical
	return resp, nil
}

// ExperimentDoc is one experiments endpoint payload: exactly one of the
// fields is set, matching the requested table or figure.
type ExperimentDoc struct {
	Table   any    `json:"table,omitempty"`
	Figure  any    `json:"figure,omitempty"`
	Stable  bool   `json:"stable,omitempty"`
	Workers int    `json:"workers,omitempty"`
	Elapsed string `json:"elapsed,omitempty"`
}

// Experiment regenerates one table ("1", "2", "3") or figure ("6a".."6e",
// "7") of the paper's evaluation on the engine, sharing the service's
// compile cache, so points already compiled for /v1/compile (or a
// previous call) are served from cache. Stable zeroes the wall-clock
// fields for reproducible output.
func (s *Server) Experiment(ctx context.Context, kind, id string, stable bool) (*ExperimentDoc, error) {
	return s.experiment(ctx, kind, id, stable, nil)
}

// experiment is Experiment plus an optional per-point progress callback,
// which async experiment jobs stream to their event feed.
func (s *Server) experiment(ctx context.Context, kind, id string, stable bool, progress func(done, total int)) (*ExperimentDoc, error) {
	rn := &experiments.Runner{Jobs: s.workers, Cache: s.cache, Sem: s.sem, Snapshots: s.snaps,
		// Stream completions into the cumulative per-pass ledger;
		// cache hits carry a breakdown already accounted for by the
		// compile that produced them.
		OnResult: func(done, total int, r pipeline.Result) {
			if r.Err == nil && !r.Cached {
				s.passes.observe(r.Outcome.Passes)
				s.verifies.observe(r.Outcome.Verify)
			}
			if progress != nil {
				progress(done, total)
			}
		},
	}
	start := time.Now()
	doc := &ExperimentDoc{Stable: stable, Workers: s.workers}
	switch {
	case kind == "table" && id == "1":
		doc.Table = experiments.Table1()
	case kind == "table" && id == "2":
		doc.Table = experiments.Table2()
	case kind == "table" && id == "3":
		rows, err := rn.Table3Rows(ctx)
		if err != nil {
			return nil, err
		}
		if stable {
			for _, r := range rows {
				r.Stabilize()
			}
		}
		doc.Table = rows
	case kind == "figure" && id == "7":
		points, err := rn.Figure7Sweep(ctx)
		if err != nil {
			return nil, err
		}
		if stable {
			for i := range points {
				points[i].Result.Stabilize()
			}
		}
		doc.Figure = points
	case kind == "figure":
		fam, ok := experiments.Figure6Panels()[id]
		if !ok {
			return nil, &RequestError{fmt.Errorf("unknown figure %q (want 6a..6e or 7)", id)}
		}
		points, err := rn.Figure6Panel(ctx, fam)
		if err != nil {
			return nil, err
		}
		if stable {
			for _, pt := range points {
				pt.Row.Stabilize()
			}
		}
		doc.Figure = points
	case kind == "table":
		return nil, &RequestError{fmt.Errorf("unknown table %q (want 1, 2, or 3)", id)}
	default:
		return nil, &RequestError{fmt.Errorf("unknown experiment kind %q (want table or figure)", kind)}
	}
	s.compiles.Add(int64(rn.Stats().Compiles))
	if !stable {
		doc.Elapsed = time.Since(start).Round(time.Millisecond).String()
	}
	return doc, nil
}

// RoutingKey returns the request's canonical cache identity — the same
// pipeline.Key serialization the compile cache, the singleflight group,
// the async dedup key, and the disk store address by. It is the routing
// key of the fleet tier: a consistent-hash router maps it onto one
// backend so identical compiles always land on the daemon whose LRU and
// snapshot caches already hold them.
func (req *CompileRequest) RoutingKey() (string, error) {
	plan, err := req.validate()
	if err != nil {
		return "", err
	}
	return plan.canon, nil
}

// RoutingKey returns the job submission's routing key: compile and
// verify jobs route by their compile key (cache locality), experiment
// jobs by their endpoint identity. Batch jobs return "" — they span
// many keys, and the router hashes the raw body instead so identical
// batches still co-locate.
func (req *JobRequest) RoutingKey() (string, error) {
	switch {
	case req.Compile != nil:
		return req.Compile.RoutingKey()
	case req.Verify != nil:
		forced := *req.Verify
		forced.Verify = true
		return forced.RoutingKey()
	case req.Experiment != nil:
		return fmt.Sprintf("exp:%s/%s?stable=%v", req.Experiment.Kind, req.Experiment.ID, req.Experiment.Stable), nil
	default:
		return "", nil
	}
}

// RequestError marks a client-side problem (HTTP 400, not 500).
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// EncodeJSON is the service's canonical JSON encoding — two-space
// indented with a trailing newline — shared by the HTTP handlers and
// powermove.CompileJSON so the daemon and the CLI emit byte-identical
// documents.
func EncodeJSON(v any) ([]byte, error) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
