package service

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"powermove/internal/pipeline"
)

// qftRequest is the tiny evaluation point the tests compile: QFT is
// seedless, so its outcome is fully deterministic.
func qftRequest(n int) *CompileRequest {
	return &CompileRequest{
		Workload:    &WorkloadSpec{Family: "QFT", Qubits: n},
		CompileSpec: CompileSpec{Scheme: "with-storage", Stable: true},
	}
}

// TestCompileAndCacheHit checks the basic contract: a fresh request
// compiles, an identical repeat is a cache hit with the same payload,
// and the metrics ledger records exactly one compile.
func TestCompileAndCacheHit(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	cold, err := s.Compile(context.Background(), qftRequest(6))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Error("cold request reported cached")
	}
	if cold.Bench != "QFT-6" || cold.Qubits != 6 || cold.Fidelity <= 0 || cold.Fidelity > 1 {
		t.Errorf("implausible response %+v", cold)
	}

	warm, err := s.Compile(context.Background(), qftRequest(6))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("repeat request missed the cache")
	}
	if warm.Fidelity != cold.Fidelity || warm.TexeUS != cold.TexeUS || warm.Stages != cold.Stages {
		t.Errorf("warm response diverged: cold %+v, warm %+v", cold, warm)
	}

	m := s.Metrics()
	if m.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1", m.Compiles)
	}
	if m.Cache.Hits < 1 || m.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 miss and >= 1 hit", m.Cache)
	}
}

// TestSingleflightDedup drives N identical concurrent requests into a
// server whose compile function blocks until every request has arrived,
// and asserts exactly one underlying compile ran: one leader, N-1
// singleflight joiners sharing its outcome.
func TestSingleflightDedup(t *testing.T) {
	const n = 8
	s := New(Config{Workers: n}) // workers don't bound dedup; leave room
	defer s.Close()

	var calls int
	release := make(chan struct{})
	s.compileOne = func(ctx context.Context, job pipeline.Job) (pipeline.Result, error) {
		calls++ // never racy if dedup works: only the leader gets here
		<-release
		return pipeline.Result{
			Key:     job.Key,
			Outcome: pipeline.Outcome{Fidelity: 0.5, Texe: 1, Stages: 1},
		}, nil
	}

	var wg sync.WaitGroup
	responses := make([]*CompileResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = s.Compile(context.Background(), qftRequest(6))
		}(i)
	}

	// Release the leader only after the other n-1 requests have joined
	// the in-flight call, so every one of them exercises dedup.
	waitFor(t, func() bool { return s.flight.joins.Load() == n-1 })
	close(release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
	}
	if calls != 1 {
		t.Fatalf("%d underlying compiles for %d identical concurrent requests, want 1", calls, n)
	}
	var leaders, joiners int
	for _, r := range responses {
		if r.Fidelity != 0.5 {
			t.Fatalf("response diverged from leader outcome: %+v", r)
		}
		if r.Cached {
			joiners++
		} else {
			leaders++
		}
	}
	if leaders != 1 || joiners != n-1 {
		t.Errorf("leaders = %d, joiners = %d; want 1 and %d", leaders, joiners, n-1)
	}
	if d := s.Metrics().Deduped; d != n-1 {
		t.Errorf("Deduped = %d, want %d", d, n-1)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within deadline")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDistinctRequestsDontDedup checks the inverse: concurrent requests
// with different keys each compile.
func TestDistinctRequestsDontDedup(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	var mu sync.Mutex
	keys := map[string]int{}
	s.compileOne = func(ctx context.Context, job pipeline.Job) (pipeline.Result, error) {
		mu.Lock()
		keys[job.Key.String()]++
		mu.Unlock()
		return pipeline.Result{Key: job.Key, Outcome: pipeline.Outcome{Fidelity: 0.5}}, nil
	}
	var wg sync.WaitGroup
	for _, n := range []int{4, 6, 8} {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			if _, err := s.Compile(context.Background(), qftRequest(n)); err != nil {
				t.Error(err)
			}
		}(n)
	}
	wg.Wait()
	if len(keys) != 3 {
		t.Errorf("saw %d distinct compiles (%v), want 3", len(keys), keys)
	}
	if d := s.Metrics().Deduped; d != 0 {
		t.Errorf("Deduped = %d for distinct requests, want 0", d)
	}
}

// TestValidation covers the request-validation surface.
func TestValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	cases := []struct {
		name string
		req  CompileRequest
	}{
		{"empty", CompileRequest{}},
		{"both sources", CompileRequest{QASM: "x", Workload: &WorkloadSpec{Family: "QFT", Qubits: 4}}},
		{"bad scheme", CompileRequest{Workload: &WorkloadSpec{Family: "QFT", Qubits: 4}, CompileSpec: CompileSpec{Scheme: "turbo"}}},
		{"bad aods", CompileRequest{Workload: &WorkloadSpec{Family: "QFT", Qubits: 4}, CompileSpec: CompileSpec{AODs: MaxAODs + 1}}},
		{"negative aods", CompileRequest{Workload: &WorkloadSpec{Family: "QFT", Qubits: 4}, CompileSpec: CompileSpec{AODs: -1}}},
		{"enola multi-aod", CompileRequest{Workload: &WorkloadSpec{Family: "QFT", Qubits: 4}, CompileSpec: CompileSpec{Scheme: "enola", AODs: 2}}},
		{"unknown family", CompileRequest{Workload: &WorkloadSpec{Family: "nope", Qubits: 4}}},
		{"tiny workload", CompileRequest{Workload: &WorkloadSpec{Family: "QFT", Qubits: 1}}},
		{"bad qasm", CompileRequest{QASM: "OPENQASM 3.0;"}},
		{"unknown grouping", CompileRequest{Workload: &WorkloadSpec{Family: "QFT", Qubits: 4}, CompileSpec: CompileSpec{Grouping: "turbo"}}},
		{"enola grouping", CompileRequest{Workload: &WorkloadSpec{Family: "QFT", Qubits: 4}, CompileSpec: CompileSpec{Scheme: "enola", Grouping: "distance"}}},
		{"enola grouping merged", CompileRequest{Workload: &WorkloadSpec{Family: "QFT", Qubits: 4}, CompileSpec: CompileSpec{Scheme: "enola", Grouping: "merged"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Compile(context.Background(), &tc.req)
			if err == nil {
				t.Fatal("validation accepted a bad request")
			}
			var reqErr *RequestError
			if !errors.As(err, &reqErr) {
				t.Fatalf("error %v is not a RequestError", err)
			}
		})
	}
}

// TestPassBreakdownAndLedger: responses carry the compiler's per-pass
// breakdown (durations zeroed under Stable, calls/counters intact), and
// every fresh compile advances the cumulative /metrics pass ledger
// monotonically while cache hits leave it unchanged.
func TestPassBreakdownAndLedger(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	resp, err := s.Compile(context.Background(), qftRequest(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Passes) == 0 {
		t.Fatal("compile response has no pass breakdown")
	}
	byName := map[string]int{}
	for _, p := range resp.Passes {
		if p.Duration != 0 {
			t.Errorf("stable response carries a non-zero duration for pass %q", p.Pass)
		}
		byName[p.Pass] = p.Calls
	}
	if byName["route"] != resp.Stages {
		t.Errorf("route calls = %d, response reports %d stages", byName["route"], resp.Stages)
	}

	first := s.Metrics().Passes
	if len(first) == 0 {
		t.Fatal("metrics pass ledger empty after a compile")
	}
	if first["route"].Counters["moves"] != int64(resp.Moves) {
		t.Errorf("ledger route moves = %d, response reports %d", first["route"].Counters["moves"], resp.Moves)
	}

	// A cache hit must not recount the compile that produced it.
	if _, err := s.Compile(context.Background(), qftRequest(6)); err != nil {
		t.Fatal(err)
	}
	after := s.Metrics().Passes
	if after["route"].Calls != first["route"].Calls {
		t.Errorf("cache hit advanced the ledger: %d -> %d route calls", first["route"].Calls, after["route"].Calls)
	}

	// A fresh point advances every touched pass monotonically.
	if _, err := s.Compile(context.Background(), qftRequest(8)); err != nil {
		t.Fatal(err)
	}
	grown := s.Metrics().Passes
	for name, before := range first {
		now := grown[name]
		if now.Calls < before.Calls || now.TotalMS < before.TotalMS {
			t.Errorf("pass %q regressed: %+v -> %+v", name, before, now)
		}
		for k, v := range before.Counters {
			if now.Counters[k] < v {
				t.Errorf("pass %q counter %q regressed: %d -> %d", name, k, v, now.Counters[k])
			}
		}
	}
}

// TestGroupingSubstitution: the grouping field swaps the zoned grouping
// pass, is part of the cache identity, and echoes in the response.
func TestGroupingSubstitution(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	base, err := s.Compile(context.Background(), qftRequest(6))
	if err != nil {
		t.Fatal(err)
	}
	req := qftRequest(6)
	req.Grouping = "in-order"
	alt, err := s.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if alt.Cached {
		t.Error("non-default grouping was served from the default's cache entry")
	}
	if alt.Grouping != "in-order" {
		t.Errorf("response grouping = %q, want in-order", alt.Grouping)
	}
	if base.Grouping != "" {
		t.Errorf("default response grouping = %q, want empty", base.Grouping)
	}

	// An explicit "merged" is the default and shares its cache entry.
	req = qftRequest(6)
	req.Grouping = "merged"
	merged, err := s.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Cached {
		t.Error(`explicit "merged" did not normalize onto the default cache entry`)
	}
}

// TestQASMCompile checks the inline-QASM path end to end and that its
// cache key is the source digest: the same source twice is a hit, a
// different source is not.
func TestQASMCompile(t *testing.T) {
	const src = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cz q[0], q[1];
cz q[2], q[3];
cz q[0], q[2];
`
	s := New(Config{Workers: 1})
	defer s.Close()
	req := &CompileRequest{QASM: src, CompileSpec: CompileSpec{Scheme: "non-storage", Stable: true}}
	cold, err := s.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Qubits != 4 || cold.Scheme != "non-storage" || cold.Cached {
		t.Errorf("unexpected response %+v", cold)
	}
	warm, err := s.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("identical QASM source missed the cache")
	}
	other, err := s.Compile(context.Background(), &CompileRequest{QASM: src + "cz q[1], q[3];\n", CompileSpec: CompileSpec{Scheme: "non-storage", Stable: true}})
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached || other.Bench == cold.Bench {
		t.Errorf("different source shared a cache entry: %q vs %q", other.Bench, cold.Bench)
	}
}

// TestBatch checks ordering, per-item errors, and engine dedup across a
// batch.
func TestBatch(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	req := &BatchRequest{Requests: []CompileRequest{
		*qftRequest(6),
		{Workload: &WorkloadSpec{Family: "bogus", Qubits: 4}},
		*qftRequest(6), // duplicate of item 0: one compile, one hit
		{Workload: &WorkloadSpec{Family: "VQE", Qubits: 4}, CompileSpec: CompileSpec{Scheme: "enola", Stable: true}},
	}}
	resp, err := s.Batch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("%d results, want 4", len(resp.Results))
	}
	if resp.Results[0].Result == nil || resp.Results[0].Result.Bench != "QFT-6" {
		t.Errorf("item 0 = %+v", resp.Results[0])
	}
	if resp.Results[0].Result.Cached {
		t.Error("item 0 (first occurrence of a batch-compiled key) must report cached=false")
	}
	if resp.Results[1].Error == "" || resp.Results[1].Result != nil {
		t.Errorf("item 1 should carry a validation error, got %+v", resp.Results[1])
	}
	if resp.Results[2].Result == nil || !resp.Results[2].Result.Cached {
		t.Errorf("item 2 (duplicate) should be a cache hit, got %+v", resp.Results[2])
	}
	if resp.Results[3].Result == nil || resp.Results[3].Result.Scheme != "enola" {
		t.Errorf("item 3 = %+v", resp.Results[3])
	}
	if resp.Stats.Compiles != 2 {
		t.Errorf("batch compiled %d jobs, want 2", resp.Stats.Compiles)
	}

	if _, err := s.Batch(context.Background(), &BatchRequest{}); err == nil {
		t.Error("empty batch accepted")
	}
}

// TestStableDeterminism checks the reproducibility contract the CI smoke
// test relies on: two cold servers produce byte-identical stable
// documents for the same request.
func TestStableDeterminism(t *testing.T) {
	encode := func() string {
		s := New(Config{Workers: 3})
		defer s.Close()
		resp, err := s.Compile(context.Background(), qftRequest(8))
		if err != nil {
			t.Fatal(err)
		}
		out, err := EncodeJSON(resp)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	a, b := encode(), encode()
	if a != b {
		t.Errorf("stable documents diverged:\n%s\nvs\n%s", a, b)
	}
	var decoded CompileResponse
	if err := json.Unmarshal([]byte(a), &decoded); err != nil {
		t.Fatalf("document does not round-trip: %v", err)
	}
	if decoded.TcompMS != 0 {
		t.Errorf("stable document carries tcomp_ms = %v", decoded.TcompMS)
	}
}

// TestCacheEviction checks the service honors its LRU bound: with a
// capacity of 1, a third distinct request evicts the first, and the
// eviction counter says so.
func TestCacheEviction(t *testing.T) {
	s := New(Config{Workers: 1, CacheSize: 1})
	defer s.Close()
	for _, n := range []int{4, 6, 4} {
		if _, err := s.Compile(context.Background(), qftRequest(n)); err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	if m.Cache.Evictions < 1 {
		t.Errorf("cache stats = %+v; want at least one eviction at capacity 1", m.Cache)
	}
	if m.Cache.Size > 1 {
		t.Errorf("cache size = %d exceeds capacity 1", m.Cache.Size)
	}
	if m.Compiles != 3 { // the second QFT-4 recompiled after eviction
		t.Errorf("Compiles = %d, want 3 (eviction forces recompile)", m.Compiles)
	}
}

// TestExperimentUnknownIDs checks the experiments surface rejects junk.
func TestExperimentUnknownIDs(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	for _, tc := range [][2]string{{"table", "9"}, {"figure", "6z"}, {"plot", "1"}} {
		if _, err := s.Experiment(context.Background(), tc[0], tc[1], true); err == nil {
			t.Errorf("Experiment(%s, %s) accepted", tc[0], tc[1])
		}
	}
	// Table 1 is static and fast: a sanity pass through the happy path.
	doc, err := s.Experiment(context.Background(), "table", "1", true)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Table == nil {
		t.Error("table 1 document is empty")
	}
}
