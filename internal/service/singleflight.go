package service

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightGroup deduplicates concurrent calls by key: the first caller of a
// key (the leader) runs fn, later callers with the same key (joiners)
// block until the leader finishes and share its result. Unlike a cache,
// the group holds nothing once a call completes — completed results live
// in the compile cache; the group only collapses the in-flight window, so
// a burst of identical requests costs one compile and one worker slot
// instead of N.
type flightGroup[V any] struct {
	mu sync.Mutex
	m  map[string]*flightCall[V]
	// joins counts callers that attached to an in-flight leader,
	// recorded at join time (the /metrics "deduped" counter).
	joins atomic.Int64
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// do runs fn for key at most once concurrently. The boolean reports
// whether this caller joined an in-flight leader rather than running fn
// itself. A joiner whose ctx expires returns ctx.Err without waiting; the
// leader always runs to completion so its result reaches the cache.
func (g *flightGroup[V]) do(ctx context.Context, key string, fn func() (V, error)) (V, error, bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		g.joins.Add(1)
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err(), true
		}
	}
	c := &flightCall[V]{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
