package service

import (
	"context"
	"sync"

	"powermove/internal/compiler"
	"powermove/internal/pipeline"
)

// maxSpeculative bounds the pending speculative-variant queue; beyond it
// new nominations are dropped (the queue describes *likely next
// requests*, and a deep backlog of stale guesses is worth less than the
// memory it pins).
const maxSpeculative = 64

// speculator implements the speculative-precompilation policy behind
// Config.Speculate: every fresh compile on the sync path nominates its
// likely ablation variants — the other grouping substitutions and the
// flipped storage scheme, the axes the paper's evaluation sweeps — and
// idle job-worker slots (jobs.Config.Speculate) compile them one at a
// time, lowest priority, against the shared cache and snapshot store. A
// later real request for a speculated variant is then a cache hit; the
// speculator credits it to the saved-time ledger.
//
// Load shedding is strict by construction: the hook only runs when the
// job queue is empty (the manager's contract), acquires the compile
// semaphore non-blockingly, and its context is canceled the moment real
// work is admitted.
type speculator struct {
	s *Server

	mu       sync.Mutex
	queue    []pipeline.Job
	queued   map[string]bool  // canon -> pending in queue
	seen     map[string]bool  // canon -> already speculated or requested
	done     map[string]int64 // canon -> speculative compile ns, awaiting a hit
	inflight bool

	candidates int64
	compiles   int64
	hits       int64
	savedNS    int64
}

func newSpeculator(s *Server) *speculator {
	return &speculator{
		s:      s,
		queued: make(map[string]bool),
		seen:   make(map[string]bool),
		done:   make(map[string]int64),
	}
}

// offer nominates the ablation variants of a freshly compiled job:
// the other grouping passes under the same scheme, plus the flipped
// with-storage/non-storage scheme under the same grouping. Variants skip
// verification (the program, not its certificate, is what a sweep
// re-requests) and reuse the origin's circuit closure. Duplicates and
// already-requested keys are dropped; the job manager is kicked so an
// idle worker picks the queue up immediately.
func (sp *speculator) offer(job pipeline.Job) {
	if job.Key.Scheme == pipeline.Enola {
		return // the baseline has no grouping/scheme ablation axes
	}
	base := job
	base.Keep = nil
	base.Key.Verify = false

	var variants []pipeline.Job
	for _, g := range []string{"", compiler.GroupingDistance, compiler.GroupingInOrder} {
		if g == job.Key.Grouping {
			continue
		}
		v := base
		v.Key.Grouping = g
		variants = append(variants, v)
	}
	flip := base
	if flip.Key.Scheme == pipeline.WithStorage {
		flip.Key.Scheme = pipeline.NonStorage
	} else {
		flip.Key.Scheme = pipeline.WithStorage
	}
	variants = append(variants, flip)

	sp.mu.Lock()
	sp.seen[job.Canon] = true // the origin itself is compiled; never speculate it
	for _, v := range variants {
		v.Canon = v.Key.String()
		if sp.seen[v.Canon] || sp.queued[v.Canon] || len(sp.queue) >= maxSpeculative {
			continue
		}
		sp.queued[v.Canon] = true
		sp.candidates++
		sp.queue = append(sp.queue, v)
	}
	kick := len(sp.queue) > 0
	sp.mu.Unlock()
	if kick {
		sp.s.jobs.Kick()
	}
}

// creditHit redeems a speculated variant: the cache hit the caller just
// served was precompiled here, so its compile time moves to the
// saved-time ledger. Canons never speculated (or already credited) are
// recorded as seen so offer stops nominating work the client evidently
// orders directly.
func (sp *speculator) creditHit(canon string) {
	sp.mu.Lock()
	if ns, ok := sp.done[canon]; ok {
		sp.hits++
		sp.savedNS += ns
		delete(sp.done, canon)
	}
	sp.seen[canon] = true
	sp.mu.Unlock()
}

// speculate is the jobs.Config.Speculate hook: called with the manager
// unlocked, only when the job queue is empty, with ctx canceled the
// moment real work is admitted. It compiles at most one pending variant,
// acquiring the compile semaphore non-blockingly — if every slot is
// busy with real compiles, the variant goes back in the queue and the
// worker returns to waiting. Returns whether it did any work.
func (sp *speculator) speculate(ctx context.Context) bool {
	sp.mu.Lock()
	if sp.inflight || len(sp.queue) == 0 {
		sp.mu.Unlock()
		return false
	}
	job := sp.queue[0]
	sp.queue = append([]pipeline.Job(nil), sp.queue[1:]...)
	sp.inflight = true
	sp.mu.Unlock()

	requeue := func() {
		sp.mu.Lock()
		sp.queue = append([]pipeline.Job{job}, sp.queue...)
		sp.inflight = false
		sp.mu.Unlock()
	}
	if ctx.Err() != nil {
		requeue()
		return false
	}
	select {
	case sp.s.sem <- struct{}{}:
	default:
		requeue()
		return false
	}
	defer func() { <-sp.s.sem }()

	// No Sem in the options: the slot is already held above, and holding
	// it across the blocking acquire inside pipeline.Run would deadlock.
	results, stats, err := pipeline.Run(ctx, []pipeline.Job{job},
		pipeline.Options{Workers: 1, Cache: sp.s.cache, Snapshots: sp.s.snaps})
	if err != nil || ctx.Err() != nil {
		// Preempted by real admission (or shutdown) mid-compile: the
		// variant is still worth having, so it goes back in the queue.
		requeue()
		return false
	}
	sp.s.compiles.Add(int64(stats.Compiles))

	fresh := len(results) == 1 && results[0].Err == nil && !results[0].Cached
	sp.mu.Lock()
	sp.inflight = false
	delete(sp.queued, job.Canon)
	sp.seen[job.Canon] = true
	if fresh {
		sp.compiles++
		sp.done[job.Canon] = int64(results[0].Outcome.Tcomp)
	}
	sp.mu.Unlock()
	if fresh {
		sp.s.passes.observe(results[0].Outcome.Passes)
		sp.s.verifies.observe(results[0].Outcome.Verify)
	}
	// Errored or already-cached variants still count as a hook turn:
	// returning true keeps the worker polling the real queue instead of
	// sleeping on a non-empty speculative backlog.
	return true
}

// metrics snapshots the speculator's counters for /metrics.
func (sp *speculator) metrics() SpeculationMetrics {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	queued := len(sp.queue)
	if sp.inflight {
		queued++
	}
	return SpeculationMetrics{
		Enabled:    true,
		Queued:     queued,
		Candidates: sp.candidates,
		Compiles:   sp.compiles,
		Hits:       sp.hits,
		SavedMS:    float64(sp.savedNS) / 1e6,
	}
}
