package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"powermove/internal/compiler"
)

// TestCompileVerifyField: a request with verify set compiles, carries a
// clean verification summary, keeps it across cache hits, and advances
// the /metrics verification ledger exactly once.
func TestCompileVerifyField(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	req := qftRequest(6)
	req.Verify = true
	cold, err := s.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Verify == nil {
		t.Fatal("verified compile response carries no verify summary")
	}
	if cold.Verify.Violations != 0 || cold.Verify.EquivalenceMode != "statevec" {
		t.Fatalf("verify summary = %+v, want clean statevec", cold.Verify)
	}

	warm, err := s.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached || warm.Verify == nil || warm.Verify.Violations != 0 {
		t.Fatalf("cached verified response = cached=%v verify=%+v", warm.Cached, warm.Verify)
	}

	// An unverified request for the same point is a distinct cache
	// entry and must not carry a summary.
	plain, err := s.Compile(context.Background(), qftRequest(6))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Verify != nil {
		t.Fatalf("unverified response carries a verify summary: %+v", plain.Verify)
	}

	m := s.Metrics()
	if m.Verify.Checks != 1 || m.Verify.Clean != 1 || m.Verify.Violations != 0 {
		t.Fatalf("verify ledger = %+v, want 1 check / 1 clean / 0 violations", m.Verify)
	}
}

// TestHTTPVerifyQueryParam: ?verify=1 is the query spelling of the
// body field, and bad values are 400s.
func TestHTTPVerifyQueryParam(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const req = `{"workload":{"family":"QFT","qubits":6},"scheme":"with-storage","stable":true}`
	resp, err := http.Post(ts.URL+"/v1/compile?verify=1", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/compile?verify=1 = %d: %v", resp.StatusCode, body)
	}
	var sum struct {
		Violations int    `json:"violations"`
		Mode       string `json:"equivalence_mode"`
	}
	if err := json.Unmarshal(body["verify"], &sum); err != nil {
		t.Fatalf("response has no verify block: %v", err)
	}
	if sum.Violations != 0 || sum.Mode != "statevec" {
		t.Fatalf("verify block = %+v", sum)
	}

	bad, err := http.Post(ts.URL+"/v1/compile?verify=yes", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("verify=yes = %d, want 400", bad.StatusCode)
	}
}

// TestGroupingRegistryRoundTrip pins the registry contract end to end:
// every registered grouping name is accepted by the service's grouping
// field and echoed back normalized, unknown names are rejected, and the
// enola baseline rejects every grouping request — including an explicit
// default.
func TestGroupingRegistryRoundTrip(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	for _, name := range compiler.GroupingNames() {
		req := qftRequest(6)
		req.Grouping = name
		resp, err := s.Compile(context.Background(), req)
		if err != nil {
			t.Fatalf("grouping %q rejected: %v", name, err)
		}
		if want := compiler.NormalizeGrouping(name); resp.Grouping != want {
			t.Errorf("grouping %q echoed as %q, want %q", name, resp.Grouping, want)
		}

		enola := &CompileRequest{
			Workload:    &WorkloadSpec{Family: "QFT", Qubits: 6},
			CompileSpec: CompileSpec{Scheme: "enola", Grouping: name},
		}
		if _, err := s.Compile(context.Background(), enola); err == nil {
			t.Errorf("enola accepted grouping %q", name)
		} else if _, ok := err.(*RequestError); !ok {
			t.Errorf("enola grouping %q failed with %T, want *RequestError", name, err)
		}
	}

	req := qftRequest(6)
	req.Grouping = "no-such-grouping"
	if _, err := s.Compile(context.Background(), req); err == nil {
		t.Error("unknown grouping name accepted")
	} else if !strings.Contains(err.Error(), "no-such-grouping") {
		t.Errorf("unknown-grouping error does not name the offender: %v", err)
	}
}
