// Package sim executes compiled programs against the zoned-architecture
// hardware model and produces the paper's three evaluation metrics
// (Sec. 2.2 and Sec. 7): output fidelity (Equation 1), execution time,
// and the raw event counts behind both. The executor doubles as a validator: it re-checks every
// hardware constraint independently of the compiler — AOD ordering
// constraints within each collective move, trap-occupancy rules at every
// step, and co-location of every scheduled CZ pair at every Rydberg pulse —
// so a compiler bug that emits an illegal program fails execution instead
// of silently producing flattering numbers.
package sim

import (
	"fmt"
	"slices"

	"powermove/internal/arch"
	"powermove/internal/fidelity"
	"powermove/internal/isa"
	"powermove/internal/layout"
	"powermove/internal/phys"
	"powermove/internal/trace"
)

// Breakdown decomposes execution time by activity, in microseconds.
type Breakdown struct {
	OneQ     float64 // parallel single-qubit layers
	Move     float64 // collective movement
	Transfer float64 // SLM<->AOD pickup/dropoff intervals
	Rydberg  float64 // global Rydberg pulses
}

// Total returns the summed execution time.
func (b Breakdown) Total() float64 { return b.OneQ + b.Move + b.Transfer + b.Rydberg }

// Result is the outcome of executing one program.
type Result struct {
	// Time is the total execution time T_exe in microseconds.
	Time float64
	// Breakdown splits Time by activity.
	Breakdown Breakdown
	// Counts are the raw fidelity-relevant event counts.
	Counts fidelity.Counts
	// Components are the evaluated fidelity factors.
	Components fidelity.Components
	// Fidelity is Components.Total(): the paper's headline metric,
	// excluding the single-qubit term per Sec. 2.2.
	Fidelity float64
	// MoveBatches and Stages count executed batches and Rydberg pulses.
	MoveBatches, Stages int
	// Final is the layout after the last instruction.
	Final *layout.Layout
}

// Execute runs prog starting from the given initial layout. The layout is
// cloned; the caller's copy is not modified. Execution fails with a
// descriptive error on the first constraint violation.
func Execute(prog *isa.Program, initial *layout.Layout) (*Result, error) {
	return run(prog, initial, nil)
}

// ExecuteWithTrace runs prog like Execute and additionally records the
// execution timeline: one trace event per instruction with its start
// time, duration, and involved qubits.
func ExecuteWithTrace(prog *isa.Program, initial *layout.Layout) (*Result, *trace.Trace, error) {
	tr := &trace.Trace{Program: prog.Name, Qubits: prog.Qubits}
	res, err := run(prog, initial, tr)
	if err != nil {
		return nil, nil, err
	}
	return res, tr, nil
}

// scratch holds the executor's per-instruction working sets, allocated
// once per run and reused across the hundreds of move batches and Rydberg
// pulses of a program. Masks are unset entry-by-entry after use instead of
// cleared wholesale, so a batch that moves two qubits touches two entries.
type scratch struct {
	movedMask   []bool      // batch-scoped mover mask
	movers      []qubitSite // movers of the current batch, insertion order
	moveQ       []int       // BulkMoveSorted argument buffers
	moveS       []arch.Site
	interacting []bool // pulse-scoped interacting-qubit mask
}

// qubitSite is one mover's destination.
type qubitSite struct {
	q int
	s arch.Site
}

func run(prog *isa.Program, initial *layout.Layout, tr *trace.Trace) (*Result, error) {
	if prog.Qubits != initial.Qubits() {
		return nil, fmt.Errorf("sim: program has %d qubits, layout has %d", prog.Qubits, initial.Qubits())
	}
	l := initial.Clone()
	res := &Result{Final: l}
	res.Counts.IdleTime = make([]float64, l.Qubits())
	sc := &scratch{
		movedMask:   make([]bool, l.Qubits()),
		interacting: make([]bool, l.Qubits()),
	}

	for idx, in := range prog.Instr {
		before := res.Breakdown.Total()
		var err error
		var kind trace.Kind
		var qubits []int
		switch in := in.(type) {
		case isa.OneQLayer:
			err = execOneQ(in, l, res)
			kind = trace.KindOneQ
		case isa.MoveBatch:
			err = execMoveBatch(in, l, res, sc)
			kind = trace.KindMove
			if tr != nil {
				for _, g := range in.Groups {
					for _, m := range g.Moves {
						qubits = append(qubits, m.Qubit)
					}
				}
			}
		case isa.Rydberg:
			err = execRydberg(in, l, res, sc)
			kind = trace.KindRydberg
			if tr != nil {
				for _, p := range in.Pairs {
					qubits = append(qubits, p.A, p.B)
				}
			}
		default:
			err = fmt.Errorf("unknown instruction type %T", in)
		}
		if err != nil {
			return nil, fmt.Errorf("sim: instruction %d (%s): %w", idx, in.Mnemonic(), err)
		}
		if tr != nil {
			tr.Add(trace.Event{
				Index:    idx,
				Kind:     kind,
				Start:    before,
				Duration: res.Breakdown.Total() - before,
				Qubits:   qubits,
				Detail:   in.Mnemonic(),
			})
		}
	}

	res.Components = fidelity.Compute(res.Counts)
	res.Fidelity = res.Components.Total()
	res.Time = res.Breakdown.Total()
	return res, nil
}

// execOneQ advances time by one parallel Raman layer. Qubits in the
// computation zone are being driven (or are addressable and idle for only
// the layer's 1 us), so the layer contributes gate count but no idle time;
// storage-zone qubits are shielded as always.
func execOneQ(in isa.OneQLayer, l *layout.Layout, res *Result) error {
	if in.Count < 0 {
		return fmt.Errorf("negative 1Q gate count %d", in.Count)
	}
	res.Counts.OneQGates += in.Count
	res.Breakdown.OneQ += phys.DurationOneQubit
	return nil
}

// execMoveBatch validates and applies one parallel movement batch.
func execMoveBatch(in isa.MoveBatch, l *layout.Layout, res *Result, sc *scratch) error {
	if len(in.Groups) == 0 {
		return fmt.Errorf("empty move batch")
	}
	sc.movers = sc.movers[:0]
	for aod, g := range in.Groups {
		if !g.Valid() {
			return fmt.Errorf("AOD %d: conflicting moves within one collective move", aod)
		}
		for _, m := range g.Moves {
			if m.Qubit < 0 || m.Qubit >= l.Qubits() {
				return fmt.Errorf("AOD %d: move references qubit %d", aod, m.Qubit)
			}
			if sc.movedMask[m.Qubit] {
				return fmt.Errorf("AOD %d: qubit %d moved twice in one batch", aod, m.Qubit)
			}
			if got := l.SiteOf(m.Qubit); got != m.FromSite {
				return fmt.Errorf("AOD %d: qubit %d is at %v, move expects %v", aod, m.Qubit, got, m.FromSite)
			}
			if !l.Arch().InBounds(m.ToSite) {
				return fmt.Errorf("AOD %d: qubit %d target %v out of bounds", aod, m.Qubit, m.ToSite)
			}
			sc.movedMask[m.Qubit] = true
			sc.movers = append(sc.movers, qubitSite{q: m.Qubit, s: m.ToSite})
		}
	}

	dur := in.Duration()
	// Decoherence: storage-resident qubits that do not move are
	// shielded for the whole batch; everyone else (movers in transit,
	// computation-zone residents) idles for the batch duration.
	for q := 0; q < l.Qubits(); q++ {
		if !sc.movedMask[q] && l.Zone(q) == arch.Storage {
			continue
		}
		res.Counts.IdleTime[q] += dur
	}

	// BulkMoveSorted wants ascending qubit order — the same order
	// BulkMove's map variant attaches in.
	slices.SortFunc(sc.movers, func(a, b qubitSite) int { return a.q - b.q })
	for _, mv := range sc.movers {
		sc.movedMask[mv.q] = false
	}
	if len(sc.movers) > 0 {
		if cap(sc.moveQ) < len(sc.movers) {
			sc.moveQ = make([]int, 0, l.Qubits())
			sc.moveS = make([]arch.Site, 0, l.Qubits())
		}
		sc.moveQ = sc.moveQ[:0]
		sc.moveS = sc.moveS[:0]
		for _, mv := range sc.movers {
			sc.moveQ = append(sc.moveQ, mv.q)
			sc.moveS = append(sc.moveS, mv.s)
		}
		l.BulkMoveSorted(sc.moveQ, sc.moveS)
	}
	res.Counts.Transfers += 2 * len(sc.movers)
	res.Breakdown.Move += dur - 2*phys.DurationTransfer
	res.Breakdown.Transfer += 2 * phys.DurationTransfer
	res.MoveBatches++
	return nil
}

// execRydberg validates co-location and occupancy, then fires the global
// pulse: scheduled pairs gain a CZ each, idle computation-zone qubits gain
// one excitation-error event each, and storage-zone qubits are untouched.
func execRydberg(in isa.Rydberg, l *layout.Layout, res *Result, sc *scratch) error {
	if len(in.Pairs) == 0 {
		return fmt.Errorf("Rydberg pulse with no gates")
	}
	if err := l.Validate(in.Pairs); err != nil {
		return err
	}
	// The interacting mask is pulse-scoped scratch; entries are unset
	// again below (cheaper than clearing the whole slice per pulse).
	interacting := sc.interacting
	for _, g := range in.Pairs {
		if interacting[g.A] || interacting[g.B] {
			for _, h := range in.Pairs {
				interacting[h.A], interacting[h.B] = false, false
			}
			return fmt.Errorf("qubit reused within stage %d", in.Stage)
		}
		interacting[g.A] = true
		interacting[g.B] = true
	}

	for q := 0; q < l.Qubits(); q++ {
		if interacting[q] {
			continue // being operated on: no idle, no excitation error
		}
		if l.Zone(q) == arch.Compute {
			res.Counts.ExcitedIdle++
			res.Counts.IdleTime[q] += phys.DurationCZ
		}
	}
	for _, g := range in.Pairs {
		interacting[g.A], interacting[g.B] = false, false
	}
	res.Counts.CZGates += len(in.Pairs)
	res.Counts.Excitations++
	res.Breakdown.Rydberg += phys.DurationCZ
	res.Stages++
	return nil
}
