package sim

import (
	"math"
	"strings"
	"testing"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/isa"
	"powermove/internal/layout"
	"powermove/internal/move"
	"powermove/internal/phys"
)

// fixture builds a 4-qubit machine with everyone home in the compute zone.
func fixture() (*arch.Arch, *layout.Layout) {
	a := arch.New(arch.Config{Qubits: 4})
	l := layout.New(a, 4)
	l.PlaceAll(arch.Compute)
	return a, l
}

func computeSite(r, c int) arch.Site { return arch.Site{Zone: arch.Compute, Row: r, Col: c} }
func storageSite(r, c int) arch.Site { return arch.Site{Zone: arch.Storage, Row: r, Col: c} }

func batchOf(moves ...move.Move) isa.MoveBatch {
	return isa.MoveBatch{Groups: []move.CollMove{{Moves: moves}}}
}

// TestExecuteHandCheckedProgram walks a small program and verifies every
// metric against hand-computed values: qubit 1 moves next to qubit 0
// (one 15 um hop), a Rydberg pulse fires CZ(0,1) with qubits 2 and 3 idle
// in the computation zone.
func TestExecuteHandCheckedProgram(t *testing.T) {
	a, l := fixture()
	// Home layout (2x2 grid): q0 (0,0), q1 (0,1), q2 (1,0), q3 (1,1).
	m := move.New(a, 1, computeSite(0, 1), computeSite(0, 0))
	prog := &isa.Program{Name: "hand", Qubits: 4, Instr: []isa.Instruction{
		isa.OneQLayer{Count: 4},
		batchOf(m),
		isa.Rydberg{Stage: 0, Pairs: []circuit.CZ{circuit.NewCZ(0, 1)}},
	}}
	res, err := Execute(prog, l)
	if err != nil {
		t.Fatal(err)
	}

	moveDur := phys.MoveTime(15)
	wantTime := phys.DurationOneQubit + 2*phys.DurationTransfer + moveDur + phys.DurationCZ
	if math.Abs(res.Time-wantTime) > 1e-9 {
		t.Errorf("Time = %v, want %v", res.Time, wantTime)
	}
	if res.Counts.OneQGates != 4 || res.Counts.CZGates != 1 {
		t.Errorf("gate counts = %d/%d, want 4/1", res.Counts.OneQGates, res.Counts.CZGates)
	}
	if res.Counts.Transfers != 2 {
		t.Errorf("Transfers = %d, want 2 (pickup + dropoff)", res.Counts.Transfers)
	}
	if res.Counts.Excitations != 1 || res.Counts.ExcitedIdle != 2 {
		t.Errorf("excitation counts = %d pulses, %d idle, want 1/2", res.Counts.Excitations, res.Counts.ExcitedIdle)
	}
	// All four qubits idle through the move batch (all in compute);
	// during the pulse only the idle pair 2,3 accrues idle time.
	batchDur := 2*phys.DurationTransfer + moveDur
	for q, wantIdle := range []float64{batchDur, batchDur, batchDur + phys.DurationCZ, batchDur + phys.DurationCZ} {
		if got := res.Counts.IdleTime[q]; math.Abs(got-wantIdle) > 1e-9 {
			t.Errorf("IdleTime[%d] = %v, want %v", q, got, wantIdle)
		}
	}
	wantFid := phys.FidelityCZ * math.Pow(phys.FidelityExcitation, 2) * math.Pow(phys.FidelityTransfer, 2) *
		math.Pow(1-batchDur/phys.CoherenceTime, 2) * math.Pow(1-(batchDur+phys.DurationCZ)/phys.CoherenceTime, 2)
	if math.Abs(res.Fidelity-wantFid) > 1e-12 {
		t.Errorf("Fidelity = %v, want %v", res.Fidelity, wantFid)
	}
	if res.Stages != 1 || res.MoveBatches != 1 {
		t.Errorf("Stages/MoveBatches = %d/%d, want 1/1", res.Stages, res.MoveBatches)
	}
	if res.Final.SiteOf(0) != res.Final.SiteOf(1) {
		t.Error("final layout lost the move")
	}
	if l.SiteOf(1) != computeSite(0, 1) {
		t.Error("Execute mutated the caller's initial layout")
	}
}

// TestStorageShieldsFromEverything: a qubit parked in storage accrues no
// idle time and no excitation error.
func TestStorageShields(t *testing.T) {
	a, l := fixture()
	l.Move(3, storageSite(0, 0))
	m := move.New(a, 1, computeSite(0, 1), computeSite(0, 0))
	prog := &isa.Program{Name: "shield", Qubits: 4, Instr: []isa.Instruction{
		batchOf(m),
		isa.Rydberg{Stage: 0, Pairs: []circuit.CZ{circuit.NewCZ(0, 1)}},
	}}
	res, err := Execute(prog, l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.IdleTime[3] != 0 {
		t.Errorf("storage qubit accrued idle time %v", res.Counts.IdleTime[3])
	}
	if res.Counts.ExcitedIdle != 1 {
		t.Errorf("ExcitedIdle = %d, want 1 (only qubit 2)", res.Counts.ExcitedIdle)
	}
}

// TestMoverInTransitIdles: a qubit moving into storage pays idle time for
// its own batch but is shielded afterwards.
func TestMoverInTransitIdles(t *testing.T) {
	a, l := fixture()
	in := move.New(a, 3, computeSite(1, 1), storageSite(0, 1))
	later := move.New(a, 1, computeSite(0, 1), computeSite(0, 0))
	prog := &isa.Program{Name: "transit", Qubits: 4, Instr: []isa.Instruction{
		batchOf(in),
		batchOf(later),
	}}
	res, err := Execute(prog, l)
	if err != nil {
		t.Fatal(err)
	}
	firstDur := isa.MoveBatch{Groups: []move.CollMove{{Moves: []move.Move{in}}}}.Duration()
	if got := res.Counts.IdleTime[3]; math.Abs(got-firstDur) > 1e-9 {
		t.Errorf("IdleTime[3] = %v, want %v (its own batch only)", got, firstDur)
	}
}

// TestIntraStageOrderingMatters: executing the move-in before an unrelated
// slow batch shields the parked qubit during that batch; the reverse order
// does not. This is the mechanism the Sec. 6.1 scheduler exploits.
func TestIntraStageOrderingMatters(t *testing.T) {
	a := arch.New(arch.Config{Qubits: 9})
	mkLayout := func() *layout.Layout {
		l := layout.New(a, 9)
		l.PlaceAll(arch.Compute)
		return l
	}
	parkQ3 := move.New(a, 3, computeSite(1, 0), storageSite(0, 0))
	slow := move.New(a, 8, computeSite(2, 2), storageSite(0, 2))

	run := func(first, second isa.MoveBatch) float64 {
		prog := &isa.Program{Name: "order", Qubits: 9, Instr: []isa.Instruction{first, second}}
		res, err := Execute(prog, mkLayout())
		if err != nil {
			t.Fatal(err)
		}
		return res.Counts.IdleTime[3]
	}
	parkFirst := run(batchOf(parkQ3), batchOf(slow))
	parkLast := run(batchOf(slow), batchOf(parkQ3))
	if parkFirst >= parkLast {
		t.Errorf("park-first idle %v not less than park-last idle %v", parkFirst, parkLast)
	}
}

func mustFail(t *testing.T, prog *isa.Program, l *layout.Layout, wantSubstr string) {
	t.Helper()
	if _, err := Execute(prog, l); err == nil {
		t.Fatalf("program accepted, want error containing %q", wantSubstr)
	} else if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("err = %v, want substring %q", err, wantSubstr)
	}
}

func TestExecuteRejectsQubitCountMismatch(t *testing.T) {
	_, l := fixture()
	mustFail(t, &isa.Program{Name: "bad", Qubits: 5}, l, "5 qubits")
}

func TestExecuteRejectsConflictingGroup(t *testing.T) {
	a, l := fixture()
	cross1 := move.New(a, 0, computeSite(0, 0), computeSite(0, 1))
	cross2 := move.New(a, 1, computeSite(0, 1), computeSite(0, 0))
	prog := &isa.Program{Name: "conflict", Qubits: 4, Instr: []isa.Instruction{
		batchOf(cross1, cross2),
	}}
	mustFail(t, prog, l, "conflicting moves")
}

func TestExecuteRejectsStaleSource(t *testing.T) {
	a, l := fixture()
	wrong := move.New(a, 0, computeSite(1, 1), computeSite(0, 1)) // q0 is at (0,0)
	prog := &isa.Program{Name: "stale", Qubits: 4, Instr: []isa.Instruction{batchOf(wrong)}}
	mustFail(t, prog, l, "move expects")
}

func TestExecuteRejectsDoubleMove(t *testing.T) {
	a, l := fixture()
	m1 := move.New(a, 0, computeSite(0, 0), computeSite(1, 0))
	m2 := move.New(a, 0, computeSite(0, 0), computeSite(0, 1))
	p := &isa.Program{Name: "twice", Qubits: 4, Instr: []isa.Instruction{
		isa.MoveBatch{Groups: []move.CollMove{{Moves: []move.Move{m1}}, {Moves: []move.Move{m2}}}},
	}}
	mustFail(t, p, l, "moved twice")
}

func TestExecuteRejectsBadQubitInMove(t *testing.T) {
	a, l := fixture()
	m := move.New(a, 9, computeSite(0, 0), computeSite(0, 1))
	prog := &isa.Program{Name: "ghost", Qubits: 4, Instr: []isa.Instruction{batchOf(m)}}
	mustFail(t, prog, l, "references qubit")
}

func TestExecuteRejectsEmptyBatch(t *testing.T) {
	_, l := fixture()
	prog := &isa.Program{Name: "empty", Qubits: 4, Instr: []isa.Instruction{isa.MoveBatch{}}}
	mustFail(t, prog, l, "empty move batch")
}

func TestExecuteRejectsEmptyPulse(t *testing.T) {
	_, l := fixture()
	prog := &isa.Program{Name: "nopulse", Qubits: 4, Instr: []isa.Instruction{isa.Rydberg{}}}
	mustFail(t, prog, l, "no gates")
}

func TestExecuteRejectsSplitPair(t *testing.T) {
	_, l := fixture()
	prog := &isa.Program{Name: "split", Qubits: 4, Instr: []isa.Instruction{
		isa.Rydberg{Pairs: []circuit.CZ{circuit.NewCZ(0, 1)}},
	}}
	mustFail(t, prog, l, "split")
}

func TestExecuteRejectsClustering(t *testing.T) {
	a, l := fixture()
	// Move q2 onto q0's site, then pulse on (0,1): site (0,0) now holds
	// the non-interacting cohabitants 0 and 2.
	m := move.New(a, 2, computeSite(1, 0), computeSite(0, 0))
	m2 := move.New(a, 1, computeSite(0, 1), computeSite(1, 1))
	prog := &isa.Program{Name: "cluster", Qubits: 4, Instr: []isa.Instruction{
		batchOf(m), batchOf(m2),
		isa.Rydberg{Pairs: []circuit.CZ{circuit.NewCZ(0, 2), circuit.NewCZ(1, 3)}},
	}}
	// This one is legal (pairs co-located); now make it illegal by
	// pulsing a different pair set.
	if _, err := Execute(prog, l); err != nil {
		t.Fatalf("setup program rejected: %v", err)
	}
	bad := &isa.Program{Name: "cluster-bad", Qubits: 4, Instr: []isa.Instruction{
		batchOf(m),
		isa.Rydberg{Pairs: []circuit.CZ{circuit.NewCZ(1, 3)}},
	}}
	mustFail(t, bad, l, "non-interacting")
}

func TestExecuteRejectsQubitReuseInStage(t *testing.T) {
	// The only qubit reuse that survives layout validation is a
	// duplicated pair (a qubit cannot co-locate with two partners at
	// once); the executor must still reject it.
	a, l := fixture()
	m := move.New(a, 1, computeSite(0, 1), computeSite(0, 0))
	prog := &isa.Program{Name: "reuse", Qubits: 4, Instr: []isa.Instruction{
		batchOf(m),
		isa.Rydberg{Pairs: []circuit.CZ{circuit.NewCZ(0, 1), circuit.NewCZ(0, 1)}},
	}}
	mustFail(t, prog, l, "reused")
}

func TestExecuteRejectsNegativeOneQ(t *testing.T) {
	_, l := fixture()
	prog := &isa.Program{Name: "neg", Qubits: 4, Instr: []isa.Instruction{isa.OneQLayer{Count: -1}}}
	mustFail(t, prog, l, "negative")
}

func TestExecuteRejectsPairInStorage(t *testing.T) {
	a, l := fixture()
	m0 := move.New(a, 0, computeSite(0, 0), storageSite(0, 0))
	m1 := move.New(a, 1, computeSite(0, 1), storageSite(0, 0))
	prog := &isa.Program{Name: "storage-pair", Qubits: 4, Instr: []isa.Instruction{
		batchOf(m0), batchOf(m1),
		isa.Rydberg{Pairs: []circuit.CZ{circuit.NewCZ(0, 1)}},
	}}
	mustFail(t, prog, l, "storage")
}

func TestBreakdownSumsToTotal(t *testing.T) {
	a, l := fixture()
	m := move.New(a, 1, computeSite(0, 1), computeSite(0, 0))
	prog := &isa.Program{Name: "sum", Qubits: 4, Instr: []isa.Instruction{
		isa.OneQLayer{Count: 4},
		batchOf(m),
		isa.Rydberg{Pairs: []circuit.CZ{circuit.NewCZ(0, 1)}},
	}}
	res, err := Execute(prog, l)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Breakdown.OneQ + res.Breakdown.Move + res.Breakdown.Transfer + res.Breakdown.Rydberg
	if math.Abs(sum-res.Time) > 1e-9 {
		t.Errorf("breakdown sums to %v, Time = %v", sum, res.Time)
	}
}
