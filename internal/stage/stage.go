// Package stage implements the Stage Scheduler (Sec. 4 of the paper): it
// partitions each commutable CZ block into Rydberg stages of disjoint
// gates via the degree-ordered greedy coloring of Algorithm 1, and orders
// the stages to minimize qubit interchange between the computation and
// storage zones.
package stage

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"powermove/internal/bitset"
	"powermove/internal/circuit"
	"powermove/internal/graphutil"
)

// Stage is one Rydberg stage: a set of CZ gates on pairwise-disjoint
// qubits, executable under a single global Rydberg pulse.
type Stage struct {
	Gates []circuit.CZ
}

// Qubits returns the sorted, deduplicated set of interacting qubits of the
// stage. For a well-formed (disjoint) stage no qubit repeats and the
// result has exactly 2*len(Gates) entries; for an arbitrary gate list the
// duplicates are removed, so the result is a set either way.
func (s Stage) Qubits() []int {
	out := make([]int, 0, 2*len(s.Gates))
	for _, g := range s.Gates {
		out = append(out, g.A, g.B)
	}
	sort.Ints(out)
	return slices.Compact(out)
}

// QubitSet returns the interacting qubits of the stage as a set.
func (s Stage) QubitSet() map[int]bool {
	set := make(map[int]bool, 2*len(s.Gates))
	for _, g := range s.Gates {
		set[g.A] = true
		set[g.B] = true
	}
	return set
}

// maxQubit returns the largest qubit index of the stage, or -1 for an
// empty stage. CZ normalizes A < B, so only B values need scanning.
func (s Stage) maxQubit() int {
	max := -1
	for _, g := range s.Gates {
		if g.B > max {
			max = g.B
		}
	}
	return max
}

// qubitBits fills set (sized for at least maxQubit+1) with the stage's
// interacting qubits.
func (s Stage) qubitBits(set *bitset.Set) {
	for _, g := range s.Gates {
		set.Add(g.A)
		set.Add(g.B)
	}
}

// disjointPool recycles the scratch bitset of Disjoint, which the router
// calls once per Rydberg stage.
var disjointPool = sync.Pool{New: func() any { return new(bitset.Set) }}

// Disjoint reports whether the stage's gates act on pairwise-disjoint
// qubits, the defining property of a stage.
func (s Stage) Disjoint() bool {
	if len(s.Gates) == 0 {
		return true
	}
	seen := disjointPool.Get().(*bitset.Set)
	defer disjointPool.Put(seen)
	seen.Reset(s.maxQubit() + 1)
	for _, g := range s.Gates {
		if seen.Contains(g.A) || seen.Contains(g.B) {
			return false
		}
		seen.Add(g.A)
		seen.Add(g.B)
	}
	return true
}

// String implements fmt.Stringer.
func (s Stage) String() string {
	return fmt.Sprintf("stage(%d gates, %d qubits)", len(s.Gates), 2*len(s.Gates))
}

// ConflictGraph builds the gate conflict graph of a CZ block: one vertex
// per gate, with an edge between gates that share a qubit. Stages are
// exactly the independent sets of this graph, so partitioning a block into
// stages is vertex coloring of the conflict graph.
func ConflictGraph(gates []circuit.CZ) *graphutil.Graph {
	g := graphutil.NewGraph(len(gates))
	maxQ := Stage{Gates: gates}.maxQubit()
	byQubit := make([][]int, maxQ+1)
	for i, gate := range gates {
		byQubit[gate.A] = append(byQubit[gate.A], i)
		byQubit[gate.B] = append(byQubit[gate.B], i)
	}
	for _, members := range byQubit {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				g.AddEdge(members[i], members[j])
			}
		}
	}
	return g
}

// Partition splits the commutable gates of one CZ block into stages: the
// optimized edge coloring of Sec. 4.1. Gates are edges of the qubit
// interaction graph, and a proper edge coloring is exactly a partition
// into stages of qubit-disjoint gates; the Misra-Gries procedure bounds
// the stage count by MaxDegree+1 (Vizing's bound) in O(V*E) time. A
// linear compaction pass then retries gates of the later, smaller stages
// against the earlier ones, absorbing stages the coloring fragmented.
// Together these keep stage counts competitive with the baseline's far
// more expensive iterated-MIS scheduling while preserving the near-linear
// compilation cost the paper claims.
//
// The gates of one block must be distinct (circuit.Validate enforces
// this); Partition panics on duplicates, which could not be scheduled
// into disjoint stages of the same block anyway.
func Partition(gates []circuit.CZ) []Stage {
	if len(gates) == 0 {
		return nil
	}
	maxQ := 0
	for _, gate := range gates {
		if gate.B > maxQ {
			maxQ = gate.B
		}
	}
	g := graphutil.NewGraph(maxQ + 1)
	for _, gate := range gates {
		if g.HasEdge(gate.A, gate.B) {
			panic(fmt.Sprintf("stage: duplicate gate %v in one block", gate))
		}
		g.AddEdge(gate.A, gate.B)
	}
	coloring := g.EdgeColoring()
	byColor := make(map[int][]circuit.CZ)
	maxColor := 0
	for _, gate := range gates {
		c := coloring[[2]int{gate.A, gate.B}]
		byColor[c] = append(byColor[c], gate)
		if c > maxColor {
			maxColor = c
		}
	}
	stages := make([]Stage, 0, maxColor+1)
	for c := 0; c <= maxColor; c++ {
		if len(byColor[c]) > 0 {
			stages = append(stages, Stage{Gates: byColor[c]})
		}
	}
	stages = compact(stages)

	// Misra-Gries attains Vizing's Delta+1 bound but can miss the
	// optimum Delta on class-1 graphs (a 30-qubit VQE chain is a path:
	// chromatic index 2, Misra-Gries may use 3). Iterated greedy
	// matching exploits exactly such structure. Both run in near-linear
	// time; keep whichever partition uses fewer Rydberg stages.
	if alt := matchingPartition(gates); len(alt) < len(stages) {
		return alt
	}
	return stages
}

// matchingPartition repeatedly extracts a maximal matching from the
// remaining gates, scanning them in input order. Each matching is one
// stage.
func matchingPartition(gates []circuit.CZ) []Stage {
	maxQ := Stage{Gates: gates}.maxQubit()
	used := bitset.New(maxQ + 1)
	remaining := gates
	var stages []Stage
	for len(remaining) > 0 {
		used.Reset(maxQ + 1)
		var cur, rest []circuit.CZ
		for _, g := range remaining {
			if used.Contains(g.A) || used.Contains(g.B) {
				rest = append(rest, g)
				continue
			}
			used.Add(g.A)
			used.Add(g.B)
			cur = append(cur, g)
		}
		stages = append(stages, Stage{Gates: cur})
		remaining = rest
	}
	return stages
}

// compact greedily re-homes gates from the last stages into the earliest
// stage whose qubit set they do not intersect, dropping stages that empty
// out. One pass suffices: a gate that cannot move earlier now will not be
// unblocked by removing gates from strictly later stages.
func compact(stages []Stage) []Stage {
	maxQ := -1
	for _, s := range stages {
		if m := s.maxQubit(); m > maxQ {
			maxQ = m
		}
	}
	sets := make([]*bitset.Set, len(stages))
	for i, s := range stages {
		sets[i] = bitset.New(maxQ + 1)
		s.qubitBits(sets[i])
	}
	for i := len(stages) - 1; i > 0; i-- {
		var kept []circuit.CZ
		for _, gate := range stages[i].Gates {
			placed := false
			for j := 0; j < i; j++ {
				if !sets[j].Contains(gate.A) && !sets[j].Contains(gate.B) {
					stages[j].Gates = append(stages[j].Gates, gate)
					sets[j].Add(gate.A)
					sets[j].Add(gate.B)
					sets[i].Remove(gate.A)
					sets[i].Remove(gate.B)
					placed = true
					break
				}
			}
			if !placed {
				kept = append(kept, gate)
			}
		}
		stages[i].Gates = kept
	}
	out := stages[:0]
	for _, s := range stages {
		if len(s.Gates) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// DefaultAlpha is the weight the stage-ordering objective assigns to
// qubits that must newly enter the computation zone. The paper requires
// alpha < 1 so that moving qubits *into* storage is preferred over keeping
// them out of it (Sec. 4.2).
const DefaultAlpha = 0.5

// Order schedules the stages of one commutable block (Sec. 4.2). The first
// stage is the one with the fewest interacting qubits, keeping as many
// qubits as possible in storage. Each subsequent stage is greedily chosen
// to minimize
//
//	|Q_i \ Q_{i+1}| + alpha * |Q_{i+1} \ Q_i|
//
// the weighted symmetric difference of interacting-qubit sets between the
// current stage and the candidate. Ties are broken toward the earlier
// stage index so the result is deterministic. The input slice is not
// modified; a reordered copy is returned.
func Order(stages []Stage, alpha float64) []Stage {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stage: alpha %v outside (0, 1)", alpha))
	}
	if len(stages) <= 1 {
		return append([]Stage(nil), stages...)
	}

	used := make([]bool, len(stages))
	maxQ := -1
	for _, s := range stages {
		if m := s.maxQubit(); m > maxQ {
			maxQ = m
		}
	}
	sets := make([]*bitset.Set, len(stages))
	sizes := make([]int, len(stages))
	for i, s := range stages {
		sets[i] = bitset.New(maxQ + 1)
		s.qubitBits(sets[i])
		sizes[i] = sets[i].Count()
	}

	// First stage: fewest interacting qubits.
	first := 0
	for i := 1; i < len(stages); i++ {
		if sizes[i] < sizes[first] {
			first = i
		}
	}
	order := []int{first}
	used[first] = true

	for len(order) < len(stages) {
		cur := sets[order[len(order)-1]]
		best, bestCost := -1, 0.0
		for i := range stages {
			if used[i] {
				continue
			}
			cost := transitionCost(cur, sets[i], alpha)
			if best < 0 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		order = append(order, best)
		used[best] = true
	}

	out := make([]Stage, len(order))
	for i, idx := range order {
		out[i] = stages[idx]
	}
	return out
}

// transitionCost returns |cur \ next| + alpha * |next \ cur|, computed
// word-at-a-time on the stages' qubit bitsets.
func transitionCost(cur, next *bitset.Set, alpha float64) float64 {
	return float64(cur.AndNotCount(next)) + alpha*float64(next.AndNotCount(cur))
}

// TotalGates returns the number of gates across all stages.
func TotalGates(stages []Stage) int {
	n := 0
	for _, s := range stages {
		n += len(s.Gates)
	}
	return n
}
