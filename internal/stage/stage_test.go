package stage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"powermove/internal/bitset"
	"powermove/internal/circuit"
	"powermove/internal/graphutil"
)

func chain(n int) []circuit.CZ {
	gates := make([]circuit.CZ, 0, n-1)
	for i := 0; i+1 < n; i++ {
		gates = append(gates, circuit.NewCZ(i, i+1))
	}
	return gates
}

func starGates(n int) []circuit.CZ {
	gates := make([]circuit.CZ, 0, n-1)
	for i := 1; i < n; i++ {
		gates = append(gates, circuit.NewCZ(0, i))
	}
	return gates
}

func randomGates(n int, p float64, rng *rand.Rand) []circuit.CZ {
	g := graphutil.RandomGNP(n, p, rng)
	var gates []circuit.CZ
	for _, e := range g.Edges() {
		gates = append(gates, circuit.NewCZ(e[0], e[1]))
	}
	return gates
}

func checkPartition(t *testing.T, gates []circuit.CZ, stages []Stage) {
	t.Helper()
	seen := make(map[circuit.CZ]bool)
	for si, st := range stages {
		if !st.Disjoint() {
			t.Fatalf("stage %d gates overlap: %v", si, st.Gates)
		}
		if len(st.Gates) == 0 {
			t.Fatalf("stage %d empty", si)
		}
		for _, g := range st.Gates {
			if seen[g] {
				t.Fatalf("gate %v scheduled twice", g)
			}
			seen[g] = true
		}
	}
	if len(seen) != len(gates) {
		t.Fatalf("partition covers %d gates, want %d", len(seen), len(gates))
	}
	for _, g := range gates {
		if !seen[g] {
			t.Fatalf("gate %v missing from partition", g)
		}
	}
}

func TestPartitionEmpty(t *testing.T) {
	if got := Partition(nil); got != nil {
		t.Errorf("Partition(nil) = %v, want nil", got)
	}
}

// TestPartitionChain: a linear-entanglement chain (the VQE ansatz) is a
// path graph with chromatic index 2 — the partition must find exactly two
// stages, the property that keeps VQE's excitation error at par with the
// baseline's iterated-MIS scheduling.
func TestPartitionChain(t *testing.T) {
	for _, n := range []int{4, 11, 30, 51} {
		gates := chain(n)
		stages := Partition(gates)
		checkPartition(t, gates, stages)
		if len(stages) != 2 {
			t.Errorf("chain of %d qubits partitioned into %d stages, want 2", n, len(stages))
		}
	}
}

// TestPartitionStar: a star (QFT block, BV block) has chromatic index
// n-1; every stage holds exactly one gate.
func TestPartitionStar(t *testing.T) {
	gates := starGates(8)
	stages := Partition(gates)
	checkPartition(t, gates, stages)
	if len(stages) != 7 {
		t.Errorf("star partitioned into %d stages, want 7", len(stages))
	}
	for _, st := range stages {
		if len(st.Gates) != 1 {
			t.Errorf("star stage has %d gates, want 1", len(st.Gates))
		}
	}
}

// TestPartitionBoundedByVizing: stage count never exceeds Delta+1 on
// random interaction graphs.
func TestPartitionBoundedByVizing(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(30)
		gates := randomGates(n, rng.Float64(), rng)
		if len(gates) == 0 {
			continue
		}
		stages := Partition(gates)
		checkPartition(t, gates, stages)
		deg := make(map[int]int)
		maxDeg := 0
		for _, g := range gates {
			deg[g.A]++
			deg[g.B]++
			if deg[g.A] > maxDeg {
				maxDeg = deg[g.A]
			}
			if deg[g.B] > maxDeg {
				maxDeg = deg[g.B]
			}
		}
		if len(stages) > maxDeg+1 {
			t.Fatalf("trial %d: %d stages exceed Delta+1 = %d", trial, len(stages), maxDeg+1)
		}
	}
}

func TestPartitionPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate gate did not panic")
		}
	}()
	Partition([]circuit.CZ{circuit.NewCZ(0, 1), circuit.NewCZ(1, 0)})
}

func TestConflictGraph(t *testing.T) {
	gates := []circuit.CZ{circuit.NewCZ(0, 1), circuit.NewCZ(1, 2), circuit.NewCZ(3, 4)}
	g := ConflictGraph(gates)
	if g.N() != 3 {
		t.Fatalf("conflict graph has %d vertices, want 3", g.N())
	}
	if !g.HasEdge(0, 1) {
		t.Error("gates sharing qubit 1 not adjacent")
	}
	if g.HasEdge(0, 2) || g.HasEdge(1, 2) {
		t.Error("disjoint gates adjacent")
	}
}

func TestStageHelpers(t *testing.T) {
	st := Stage{Gates: []circuit.CZ{circuit.NewCZ(4, 1), circuit.NewCZ(2, 7)}}
	qs := st.Qubits()
	want := []int{1, 2, 4, 7}
	for i := range want {
		if qs[i] != want[i] {
			t.Fatalf("Qubits = %v, want %v", qs, want)
		}
	}
	set := st.QubitSet()
	if !set[4] || set[3] {
		t.Error("QubitSet wrong")
	}
	if !st.Disjoint() {
		t.Error("disjoint stage reported overlapping")
	}
	bad := Stage{Gates: []circuit.CZ{circuit.NewCZ(0, 1), circuit.NewCZ(1, 2)}}
	if bad.Disjoint() {
		t.Error("overlapping stage reported disjoint")
	}
	if TotalGates([]Stage{st, bad}) != 4 {
		t.Error("TotalGates wrong")
	}
}

// TestOrderIsPermutation: ordering preserves the multiset of stages.
func TestOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		gates := randomGates(12, 0.4, rng)
		if len(gates) == 0 {
			continue
		}
		stages := Partition(gates)
		ordered := Order(stages, DefaultAlpha)
		if len(ordered) != len(stages) {
			t.Fatalf("trial %d: order changed stage count", trial)
		}
		checkPartition(t, gates, ordered)
	}
}

// TestOrderFirstStageFewestQubits: the scheduler starts with the stage
// that keeps the most qubits in storage (Sec. 4.2).
func TestOrderFirstStageFewestQubits(t *testing.T) {
	stages := []Stage{
		{Gates: []circuit.CZ{circuit.NewCZ(0, 1), circuit.NewCZ(2, 3), circuit.NewCZ(4, 5)}},
		{Gates: []circuit.CZ{circuit.NewCZ(0, 2)}},
		{Gates: []circuit.CZ{circuit.NewCZ(1, 3), circuit.NewCZ(4, 6)}},
	}
	ordered := Order(stages, DefaultAlpha)
	if len(ordered[0].Gates) != 1 {
		t.Errorf("first stage has %d gates, want the 1-gate stage first", len(ordered[0].Gates))
	}
}

// TestOrderPrefersOverlappingSuccessor: among candidates, the stage whose
// qubit set differs least from the current one comes next.
func TestOrderPrefersOverlappingSuccessor(t *testing.T) {
	first := Stage{Gates: []circuit.CZ{circuit.NewCZ(0, 1)}}
	overlapping := Stage{Gates: []circuit.CZ{circuit.NewCZ(0, 1), circuit.NewCZ(2, 3)}}
	disjoint := Stage{Gates: []circuit.CZ{circuit.NewCZ(4, 5), circuit.NewCZ(6, 7)}}
	ordered := Order([]Stage{disjoint, overlapping, first}, DefaultAlpha)
	if len(ordered[0].Gates) != 1 {
		t.Fatalf("first stage wrong: %v", ordered[0])
	}
	// The overlapping stage shares {0,1} with the first; the disjoint
	// one shares nothing, so overlapping must be scheduled second.
	if len(ordered[1].Gates) != 2 || ordered[1].Gates[0] != circuit.NewCZ(0, 1) {
		t.Errorf("second stage = %v, want the overlapping stage", ordered[1].Gates)
	}
}

func TestOrderAlphaAsymmetry(t *testing.T) {
	// Moving out of the current set costs 1 per qubit; moving new
	// qubits in costs alpha < 1. From current {0,1,2,3} (two gates),
	// candidate A {0,1} leaves 2 and adds 0 (cost 2); candidate
	// B {0,1,2,3,4,5} leaves 0 and adds 2 (cost 2*alpha < 2), so B
	// must be preferred right after the current stage.
	cur := Stage{Gates: []circuit.CZ{circuit.NewCZ(0, 1), circuit.NewCZ(2, 3)}}
	a := Stage{Gates: []circuit.CZ{circuit.NewCZ(0, 1)}}
	b := Stage{Gates: []circuit.CZ{circuit.NewCZ(0, 1), circuit.NewCZ(2, 3), circuit.NewCZ(4, 5)}}
	// Force cur to be first by making it the smallest? cur has 4
	// qubits, a has 2 — a would be first. Instead check transition
	// costs directly.
	costA := transitionCost(bitsOf(cur), bitsOf(a), DefaultAlpha)
	costB := transitionCost(bitsOf(cur), bitsOf(b), DefaultAlpha)
	if costB >= costA {
		t.Errorf("cost into-storage-preferring order wrong: costA=%v costB=%v", costA, costB)
	}
}

// bitsOf builds the qubit bitset of a stage the way Order does.
func bitsOf(s Stage) *bitset.Set {
	set := bitset.New(s.maxQubit() + 1)
	s.qubitBits(set)
	return set
}

// TestTransitionCostMatchesMapReference pins the bitset-based cost to the
// map-based formula it replaced: |cur \ next| + alpha * |next \ cur|.
func TestTransitionCostMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		a := Stage{Gates: randomGates(16, 0.3, rng)}
		b := Stage{Gates: randomGates(16, 0.3, rng)}
		if len(a.Gates) == 0 || len(b.Gates) == 0 {
			continue
		}
		sa, sb := a.QubitSet(), b.QubitSet()
		leaving, entering := 0, 0
		for q := range sa {
			if !sb[q] {
				leaving++
			}
		}
		for q := range sb {
			if !sa[q] {
				entering++
			}
		}
		want := float64(leaving) + DefaultAlpha*float64(entering)
		if got := transitionCost(bitsOf(a), bitsOf(b), DefaultAlpha); got != want {
			t.Fatalf("trial %d: transitionCost = %v, map reference %v", trial, got, want)
		}
	}
}

// TestQubitsDedupes: Qubits claims to return a *set*; overlapping gates
// (a non-disjoint gate list, as handed to Partition) must not produce
// duplicate entries.
func TestQubitsDedupes(t *testing.T) {
	st := Stage{Gates: []circuit.CZ{circuit.NewCZ(0, 1), circuit.NewCZ(1, 2), circuit.NewCZ(0, 2)}}
	got := st.Qubits()
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Qubits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Qubits = %v, want %v", got, want)
		}
	}
}

func TestOrderPanicsOnBadAlpha(t *testing.T) {
	stages := []Stage{{Gates: []circuit.CZ{circuit.NewCZ(0, 1)}}, {Gates: []circuit.CZ{circuit.NewCZ(0, 2)}}}
	for _, alpha := range []float64{0, 1, -0.5, 1.5} {
		alpha := alpha
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Order(alpha=%v) did not panic", alpha)
				}
			}()
			Order(stages, alpha)
		}()
	}
}

func TestOrderSmallInputs(t *testing.T) {
	if got := Order(nil, DefaultAlpha); len(got) != 0 {
		t.Error("Order(nil) not empty")
	}
	one := []Stage{{Gates: []circuit.CZ{circuit.NewCZ(0, 1)}}}
	got := Order(one, DefaultAlpha)
	if len(got) != 1 || got[0].Gates[0] != one[0].Gates[0] {
		t.Error("Order(single) wrong")
	}
	// Order must not alias the input slice's backing array.
	got[0] = Stage{}
	if one[0].Gates == nil {
		t.Error("Order aliases input")
	}
}

// TestMatchingPartitionValid: the alternative partitioner also yields
// disjoint full-coverage stages.
func TestMatchingPartitionValid(t *testing.T) {
	f := func(seed int64, nRaw, pRaw uint8) bool {
		n := 4 + int(nRaw%20)
		rng := rand.New(rand.NewSource(seed))
		gates := randomGates(n, float64(pRaw)/255, rng)
		if len(gates) == 0 {
			return true
		}
		stages := matchingPartition(gates)
		total := 0
		for _, st := range stages {
			if !st.Disjoint() {
				return false
			}
			total += len(st.Gates)
		}
		return total == len(gates)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
