// The batched simulation engine. A Batch holds K states of the same
// register size in one contiguous structure-of-arrays amplitude buffer
// and applies gates across all of them in a single blocked pass — the
// N-independent-rollouts-as-one-linear-algebra-pass shape: the verify
// oracle simulates a whole sweep or fuzz corpus as a handful of Batch
// runs instead of thousands of independent simulations.
//
// Determinism contract: every Batch operation reuses the rank-range
// kernels of statevec.go on per-state subranges, so amplitudes are
// bit-identical to applying the same gates to K independent States —
// for every worker count, because chunk boundaries only tile the
// element-wise index space.
package statevec

import "fmt"

// BatchConfig configures a Batch.
type BatchConfig struct {
	// Qubits is the register size shared by every state in the batch.
	Qubits int
	// States is the number of states K.
	States int
	// Workers bounds the goroutines this batch's operations may use:
	// 0 falls back to the package default (SetParallelism), 1 forces
	// serial execution. Per-batch so concurrent batches with different
	// needs never fight over the package global.
	Workers int
}

// Batch is K quantum states on n qubits in one contiguous amplitude
// buffer, state s occupying amp[s*2^n : (s+1)*2^n]. All states start
// as |0...0>.
type Batch struct {
	n       int
	k       int
	amp     []complex128
	workers int
}

// NewBatch allocates a batch of cfg.States states, each |0...0> on
// cfg.Qubits qubits. It panics if the register size is outside
// (0, MaxQubits] or the state count is not positive.
func NewBatch(cfg BatchConfig) *Batch {
	if cfg.Qubits <= 0 || cfg.Qubits > MaxQubits {
		panic(fmt.Sprintf("statevec: qubit count %d outside (0, %d]", cfg.Qubits, MaxQubits))
	}
	if cfg.States <= 0 {
		panic(fmt.Sprintf("statevec: batch of %d states", cfg.States))
	}
	if cfg.Workers < 0 {
		cfg.Workers = 0
	}
	size := 1 << uint(cfg.Qubits)
	amp := make([]complex128, cfg.States*size)
	for s := 0; s < cfg.States; s++ {
		amp[s*size] = 1
	}
	return &Batch{n: cfg.Qubits, k: cfg.States, amp: amp, workers: cfg.Workers}
}

// Qubits returns the register size shared by the batch's states.
func (b *Batch) Qubits() int { return b.n }

// States returns the number of states in the batch.
func (b *Batch) States() int { return b.k }

// State returns a view of state i sharing the batch's amplitude buffer:
// reads and writes through the view are reads and writes of the batch.
// Views let callers fill slots (Randomize, CopyFrom) and inspect
// results without copying; they must not be used concurrently with
// batch operations.
func (b *Batch) State(i int) *State {
	b.checkState(i)
	size := 1 << uint(b.n)
	return &State{n: b.n, amp: b.amp[i*size : (i+1)*size : (i+1)*size]}
}

// SetState copies s into slot i. It panics on register-size mismatch.
func (b *Batch) SetState(i int, s *State) {
	b.State(i).CopyFrom(s)
}

func (b *Batch) checkState(i int) {
	if i < 0 || i >= b.k {
		panic(fmt.Sprintf("statevec: state %d outside batch of %d", i, b.k))
	}
}

// each tiles the batch-global rank space [0, k*half) across the batch's
// workers and invokes f with per-state amplitude slices and local rank
// ranges. half is the per-state rank count (2^(n-1) pair ranks for
// single-qubit kernels, 2^(n-2) quad ranks for CZ). A tile can span
// several states; the split points never influence results because the
// kernels are element-wise on disjoint index sets.
func (b *Batch) each(half int, f func(amp []complex128, lo, hi int)) {
	size := 1 << uint(b.n)
	amp := b.amp
	parallelFor(b.workers, b.k*half, len(amp), func(glo, ghi int) {
		for s := glo / half; s*half < ghi; s++ {
			lo, hi := glo-s*half, ghi-s*half
			if lo < 0 {
				lo = 0
			}
			if hi > half {
				hi = half
			}
			f(amp[s*size:(s+1)*size], lo, hi)
		}
	})
}

// ApplyH applies a Hadamard on qubit q to every state in the batch.
func (b *Batch) ApplyH(q int) {
	checkOp(b.n, GateH(q))
	bit := 1 << uint(q)
	mask := bit - 1
	b.each(1<<uint(b.n-1), func(amp []complex128, lo, hi int) {
		hKernel(amp, bit, mask, lo, hi)
	})
}

// ApplyX applies a Pauli-X on qubit q to every state in the batch.
func (b *Batch) ApplyX(q int) {
	checkOp(b.n, GateX(q))
	bit := 1 << uint(q)
	mask := bit - 1
	b.each(1<<uint(b.n-1), func(amp []complex128, lo, hi int) {
		xKernel(amp, bit, mask, lo, hi)
	})
}

// ApplyRZ applies diag(1, e^{i*theta}) on qubit q to every state in the
// batch.
func (b *Batch) ApplyRZ(q int, theta float64) {
	checkOp(b.n, GateRZ(q, theta))
	op := GateRZ(q, theta)
	phase := op.matrix()[3]
	bit := 1 << uint(q)
	mask := bit - 1
	b.each(1<<uint(b.n-1), func(amp []complex128, lo, hi int) {
		rzKernel(amp, bit, mask, phase, lo, hi)
	})
}

// ApplyU2 applies the row-major 2x2 matrix u on qubit q to every state
// in the batch.
func (b *Batch) ApplyU2(q int, u [4]complex128) {
	checkOp(b.n, Op{Kind: OpU2, Q: q})
	bit := 1 << uint(q)
	mask := bit - 1
	b.each(1<<uint(b.n-1), func(amp []complex128, lo, hi int) {
		u2Kernel(amp, bit, mask, u, lo, hi)
	})
}

// ApplyCZ applies a controlled-Z between qubits p and q to every state
// in the batch.
func (b *Batch) ApplyCZ(p, q int) {
	checkOp(b.n, GateCZ(p, q))
	loBit, hiBit := 1<<uint(p), 1<<uint(q)
	if loBit > hiBit {
		loBit, hiBit = hiBit, loBit
	}
	loMask, hiMask := loBit-1, hiBit-1
	b.each(1<<uint(b.n-2), func(amp []complex128, lo, hi int) {
		czKernel(amp, loBit, hiBit, loMask, hiMask, lo, hi)
	})
}

// ApplyCZRun applies a set of CZ gates to every state as one diagonal
// sign pass (see State.ApplyCZRun). The parity bitset is built once and
// shared read-only across all states.
func (b *Batch) ApplyCZRun(pairs [][2]int) {
	checkOp(b.n, Op{Kind: OpCZRun, Pairs: pairs})
	if len(pairs) == 0 {
		return
	}
	words := signMask(b.n, pairs)
	b.each(len(words), func(amp []complex128, lo, hi int) {
		applySigns(amp, words, lo, hi)
	})
}

// Run applies progs[i] to state i, parallelizing across states: each
// program is compiled once by the segment planner (NewPlan) and each
// state executes its plan serially with the shared kernels, so the
// result is bit-identical to State.Apply of the same program on an
// independent State — the shape verify.AllBatch uses to simulate a
// heterogeneous corpus in one pass. It panics if len(progs) != States()
// or any op is malformed; validation runs up front so panics surface on
// the caller's goroutine.
func (b *Batch) Run(progs [][]Op) {
	if len(progs) != b.k {
		panic(fmt.Sprintf("statevec: %d programs for batch of %d states", len(progs), b.k))
	}
	plans := make([]*Plan, len(progs))
	for i, prog := range progs {
		plans[i] = NewPlan(b.n, prog)
	}
	b.RunPlans(plans)
}

// RunPlans applies plans[i] to state i — Run for callers that compiled
// their programs up front (the verify oracle plans each case once and
// reuses the plans for accounting). Plans are read-only during
// execution, so one plan may be shared across states and batches. It
// panics if len(plans) != States() or any plan's register size differs
// from the batch's.
func (b *Batch) RunPlans(plans []*Plan) {
	if len(plans) != b.k {
		panic(fmt.Sprintf("statevec: %d plans for batch of %d states", len(plans), b.k))
	}
	for _, p := range plans {
		if p.n != b.n {
			panic(fmt.Sprintf("statevec: plan for %d qubits in batch of %d", p.n, b.n))
		}
	}
	size := 1 << uint(b.n)
	parallelFor(b.workers, b.k, len(b.amp), func(lo, hi int) {
		for s := lo; s < hi; s++ {
			view := &State{n: b.n, amp: b.amp[s*size : (s+1)*size : (s+1)*size]}
			view.runPlan(plans[s], 1)
		}
	})
}
