package statevec

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// This file pins the batch engine and the fusion rewrites to the naive
// single-state kernels. Two different contracts apply:
//
//   - Batched kernels, the CZ-run sign pass, and Batch.Run are
//     BIT-identical to the per-state kernels (same float ops on the
//     same elements, only tiled differently), for every worker count.
//   - 1Q gate fusion is tolerance-exact only (matrix products
//     reassociate floating point); TestFuseOneQProperty pins it to
//     1e-12.

// randomProg draws a random gate program, weighting CZ enough that
// fusion finds runs to collapse.
func randomProg(rng *rand.Rand, n, gates int) []Op {
	prog := make([]Op, 0, gates)
	for i := 0; i < gates; i++ {
		q := rng.Intn(n)
		switch rng.Intn(5) {
		case 0:
			prog = append(prog, GateH(q))
		case 1:
			prog = append(prog, GateX(q))
		case 2:
			prog = append(prog, GateRZ(q, rng.Float64()*2*math.Pi))
		default:
			if n < 2 {
				prog = append(prog, GateZ(q))
				continue
			}
			p := rng.Intn(n)
			if p == q {
				p = (q + 1) % n
			}
			prog = append(prog, GateCZ(q, p))
		}
	}
	return prog
}

// applyNaive runs prog through the naive mask-scan references from
// differential_test.go — the ground truth every tiling must match
// bit for bit. Fused ops are intentionally unsupported: callers pass
// unfused programs.
func applyNaive(s *State, prog []Op) {
	for _, op := range prog {
		switch op.Kind {
		case OpH:
			naiveH(s, op.Q)
		case OpX:
			naiveX(s, op.Q)
		case OpZ:
			naiveRZ(s, op.Q, math.Pi)
		case OpRZ:
			naiveRZ(s, op.Q, op.Theta)
		case OpCZ:
			naiveCZ(s, op.Q, op.Q2)
		default:
			panic("applyNaive: fused op in naive reference")
		}
	}
}

// batchApplyOp dispatches one op to the corresponding batched kernel.
func batchApplyOp(b *Batch, op Op) {
	switch op.Kind {
	case OpH:
		b.ApplyH(op.Q)
	case OpX:
		b.ApplyX(op.Q)
	case OpZ:
		b.ApplyRZ(op.Q, math.Pi)
	case OpRZ:
		b.ApplyRZ(op.Q, op.Theta)
	case OpCZ:
		b.ApplyCZ(op.Q, op.Q2)
	case OpU2:
		b.ApplyU2(op.Q, op.U)
	case OpCZRun:
		b.ApplyCZRun(op.Pairs)
	}
}

// TestBatchKernelsMatchSingleState drives the batched ApplyH/X/RZ/CZ
// kernels against the naive mask-scan references at qubit counts 1-12
// and worker counts 1/2/8, with the parallel threshold lowered so even
// tiny registers exercise the goroutine tiling. Amplitudes must be
// bit-identical; under -race this also proves the (state x block)
// tiling is data-race free.
func TestBatchKernelsMatchSingleState(t *testing.T) {
	oldThreshold := parallelThreshold.Load()
	defer func() { parallelThreshold.Store(oldThreshold) }()
	parallelThreshold.Store(4)

	for _, workers := range []int{1, 2, 8} {
		for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12} {
			const k, gates = 3, 80
			rng := rand.New(rand.NewSource(int64(1000*n + workers)))
			b := NewBatch(BatchConfig{Qubits: n, States: k, Workers: workers})
			refs := make([]*State, k)
			for i := range refs {
				b.State(i).Randomize(rng)
				refs[i] = b.State(i).Clone()
			}
			for step := 0; step < gates; step++ {
				prog := randomProg(rng, n, 1)
				batchApplyOp(b, prog[0])
				for i := range refs {
					applyNaive(refs[i], prog)
				}
			}
			for i := range refs {
				identical(t, fmt.Sprintf("n=%d/workers=%d/state=%d", n, workers, i), b.State(i), refs[i])
			}
		}
	}
}

// TestBatchKernelsMatchSingleStateLarge extends the differential pin to
// 15-20 qubit registers, where a naive mask-scan reference would
// dominate the -race budget: the reference is the single-State blocked
// kernel instead, itself pinned bit-identical to the naive loops by
// TestKernelsMatchNaiveReference, so the identity is transitive. The
// batch runs 8 workers against a reference whose worker count floats
// with the package default — a cross-worker-count identity check at
// full register size.
func TestBatchKernelsMatchSingleStateLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-MB registers")
	}
	oldThreshold := parallelThreshold.Load()
	defer func() { parallelThreshold.Store(oldThreshold) }()
	parallelThreshold.Store(4)

	for _, n := range []int{15, 18, 20} {
		const k, gates = 2, 6
		rng := rand.New(rand.NewSource(int64(n)))
		prog := randomProg(rng, n, gates)
		fused := Fuse(prog)
		b := NewBatch(BatchConfig{Qubits: n, States: k, Workers: 8})
		refs := make([]*State, k)
		for i := range refs {
			b.State(i).Randomize(rng)
			refs[i] = b.State(i).Clone()
		}
		for _, op := range prog {
			batchApplyOp(b, op)
		}
		for i := range refs {
			refs[i].ApplySequential(prog)
			identical(t, fmt.Sprintf("n=%d/state=%d", n, i), b.State(i), refs[i])
		}
		// Batch.Run and State.Apply share the segment executor, so they
		// are bit-identical on any program, fused or not.
		// (The segmented-vs-sequential contract itself is pinned in
		// segment_test.go.)
		got := NewBatch(BatchConfig{Qubits: n, States: 1, Workers: 8})
		got.State(0).Randomize(rand.New(rand.NewSource(int64(n) + 1000)))
		want := got.State(0).Clone()
		got.Run([][]Op{fused})
		want.Apply(fused)
		identical(t, fmt.Sprintf("n=%d/fused", n), got.State(0), want)
	}
}

// TestBatchRunMatchesStateApply runs heterogeneous per-state programs —
// both raw and fused — through Batch.Run and demands bit-identity with
// State.Apply of the same program, across worker counts. This is the
// exact shape verify.AllBatch relies on.
func TestBatchRunMatchesStateApply(t *testing.T) {
	oldThreshold := parallelThreshold.Load()
	defer func() { parallelThreshold.Store(oldThreshold) }()
	parallelThreshold.Store(4)

	for _, workers := range []int{1, 2, 8} {
		for _, fuse := range []bool{false, true} {
			const n, k = 7, 5
			rng := rand.New(rand.NewSource(int64(42 + workers)))
			progs := make([][]Op, k)
			for i := range progs {
				progs[i] = randomProg(rng, n, 10+rng.Intn(50))
				if fuse {
					progs[i] = Fuse(progs[i])
				}
			}
			b := NewBatch(BatchConfig{Qubits: n, States: k, Workers: workers})
			refs := make([]*State, k)
			for i := range refs {
				b.State(i).Randomize(rng)
				refs[i] = b.State(i).Clone()
			}
			b.Run(progs)
			for i := range refs {
				refs[i].Apply(progs[i])
				identical(t, fmt.Sprintf("workers=%d/fuse=%v/state=%d", workers, fuse, i), b.State(i), refs[i])
			}
		}
	}
}

// TestCZRunBitIdentical: a fused CZ run — including cancelled duplicate
// pairs — must land on exactly the amplitudes sequential naive CZ
// application produces, for State and Batch alike. Negation is exact
// and CZ diagonals commute, so this is bit-identity, not tolerance.
func TestCZRunBitIdentical(t *testing.T) {
	oldThreshold := parallelThreshold.Load()
	defer func() { parallelThreshold.Store(oldThreshold) }()
	parallelThreshold.Store(4)

	for _, workers := range []int{1, 2, 8} {
		for _, n := range []int{2, 3, 5, 8, 11} {
			rng := rand.New(rand.NewSource(int64(7*n + workers)))
			// Draw CZ gates with heavy pair reuse so cancellation triggers.
			gates := make([]Op, 0, 40)
			for i := 0; i < 40; i++ {
				a := rng.Intn(n)
				bq := (a + 1 + rng.Intn(n-1)) % n
				if rng.Intn(3) == 0 && len(gates) > 0 {
					gates = append(gates, gates[rng.Intn(len(gates))]) // duplicate
				} else {
					gates = append(gates, GateCZ(a, bq))
				}
			}
			fused := Fuse(gates)
			for _, op := range fused {
				if op.Kind != OpCZ && op.Kind != OpCZRun {
					t.Fatalf("n=%d: CZ-only program fused to kind %d", n, op.Kind)
				}
			}

			st := NewRandom(n, rng)
			ref := st.Clone()
			batch := NewBatch(BatchConfig{Qubits: n, States: 2, Workers: workers})
			batch.SetState(0, st)
			batch.SetState(1, st)

			SetParallelism(workers)
			st.Apply(fused)
			SetParallelism(0)
			applyNaive(ref, gates)
			batch.Run([][]Op{fused, fused})

			label := fmt.Sprintf("n=%d/workers=%d", n, workers)
			identical(t, label+"/state", st, ref)
			identical(t, label+"/batch0", batch.State(0), ref)
			identical(t, label+"/batch1", batch.State(1), ref)
		}
	}
}

// TestSignMaskMatchesDefinition cross-checks the word-stride bitset
// construction against the literal "both bits set, odd multiplicity"
// definition, covering qubits below and above the in-word boundary
// (bit 6) and sub-word registers.
func TestSignMaskMatchesDefinition(t *testing.T) {
	for _, n := range []int{2, 3, 6, 7, 9} {
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 20; trial++ {
			pairs := make([][2]int, 1+rng.Intn(4))
			for i := range pairs {
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				pairs[i] = [2]int{a, b}
			}
			words := signMask(n, pairs)
			for i := 0; i < 1<<uint(n); i++ {
				parity := 0
				for _, p := range pairs {
					both := 1<<uint(p[0]) | 1<<uint(p[1])
					if i&both == both {
						parity ^= 1
					}
				}
				got := int(words[i/64] >> uint(i%64) & 1)
				if got != parity {
					t.Fatalf("n=%d pairs=%v: bit %d = %d, want %d", n, pairs, i, got, parity)
				}
			}
			for i := 1 << uint(n); i < 64*len(words); i++ {
				if words[i/64]>>uint(i%64)&1 != 0 {
					t.Fatalf("n=%d pairs=%v: tail bit %d set", n, pairs, i)
				}
			}
		}
	}
}

// TestFuseOneQProperty is the gate-fusion property test: for random
// runs of H/X/Z/RZ gates on one qubit, applying the fused 2x2 product
// must agree with sequential application to 1e-12 in max-norm,
// including the empty-run and single-gate edge cases (which must pass
// through Fuse untouched, hence stay bit-identical).
func TestFuseOneQProperty(t *testing.T) {
	if got := Fuse(nil); len(got) != 0 {
		t.Fatalf("Fuse(nil) = %v, want empty", got)
	}
	if got := Fuse([]Op{}); len(got) != 0 {
		t.Fatalf("Fuse(empty) = %v, want empty", got)
	}

	rng := rand.New(rand.NewSource(99))
	oneQ := func(q int) Op {
		switch rng.Intn(4) {
		case 0:
			return GateH(q)
		case 1:
			return GateX(q)
		case 2:
			return GateZ(q)
		default:
			return GateRZ(q, rng.Float64()*2*math.Pi)
		}
	}

	// Single-gate runs: fusion must be the identity rewrite.
	for trial := 0; trial < 50; trial++ {
		prog := []Op{oneQ(0)}
		if got := Fuse(prog); !reflect.DeepEqual(got, prog) {
			t.Fatalf("single-gate run rewritten: %v -> %v", prog, got)
		}
	}

	// Runs of length 2..9: fused product within 1e-12 of sequential.
	const n = 5
	for trial := 0; trial < 200; trial++ {
		q := rng.Intn(n)
		run := make([]Op, 2+rng.Intn(8))
		for i := range run {
			run[i] = oneQ(q)
		}
		fused := Fuse(run)
		if len(fused) != 1 || fused[0].Kind != OpU2 || fused[0].Q != q {
			t.Fatalf("run of %d gates on q%d fused to %v", len(run), q, fused)
		}
		seq := NewRandom(n, rng)
		fst := seq.Clone()
		seq.Apply(run)
		fst.Apply(fused)
		if !seq.Equal(fst, 1e-12) {
			t.Fatalf("trial %d: fused run of %d gates deviates beyond 1e-12", trial, len(run))
		}
	}
}

// TestFuseStructure pins the rewrite rules: interleaved qubits break
// runs, CZ pairs cancel mod 2, a run collapsing to one pair stays a
// plain OpCZ, a fully cancelled run vanishes, and Fuse is idempotent.
func TestFuseStructure(t *testing.T) {
	prog := []Op{
		GateH(0), GateX(0), // run on q0 -> OpU2
		GateH(1),                                 // single -> untouched
		GateCZ(0, 1), GateCZ(1, 0), GateCZ(1, 2), // run: (0,1) cancels -> CZ(1,2)
		GateRZ(2, 0.5),
		GateCZ(0, 1), GateCZ(2, 1), GateCZ(0, 2), // run of 3 distinct -> OpCZRun
		GateCZ(3, 4), GateCZ(4, 3), // fully cancelled -> nothing
		GateX(3),
	}
	got := Fuse(prog)
	want := []OpKind{OpU2, OpH, OpCZ, OpRZ, OpCZRun, OpX}
	if len(got) != len(want) {
		t.Fatalf("Fuse produced %d ops %v, want kinds %v", len(got), got, want)
	}
	for i, k := range want {
		if got[i].Kind != k {
			t.Fatalf("op %d: kind %d, want %d (%v)", i, got[i].Kind, k, got)
		}
	}
	if got[2].Q != 1 || got[2].Q2 != 2 {
		t.Fatalf("cancelled CZ run left %v, want CZ(1,2)", got[2])
	}
	if len(got[4].Pairs) != 3 {
		t.Fatalf("CZ run pairs = %v, want 3 distinct", got[4].Pairs)
	}
	if again := Fuse(got); !reflect.DeepEqual(again, got) {
		t.Fatalf("Fuse not idempotent: %v -> %v", got, again)
	}
}

// TestBatchWorkersIndependentOfGlobal is the SetParallelism race audit:
// concurrent batches with different per-batch worker counts run while
// another goroutine hammers the package global. Under -race this must
// be clean, and every batch must land on the serial reference exactly
// (per-batch Workers pins the tiling; the global only feeds batches
// that left Workers at 0 — and either way results are bit-identical).
func TestBatchWorkersIndependentOfGlobal(t *testing.T) {
	oldThreshold := parallelThreshold.Load()
	defer func() { parallelThreshold.Store(oldThreshold); SetParallelism(0) }()
	parallelThreshold.Store(4)

	const n, k = 6, 4
	rng := rand.New(rand.NewSource(5))
	progs := make([][]Op, k)
	for i := range progs {
		progs[i] = randomProg(rng, n, 40)
	}
	seeds := make([]int64, k)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	runBatch := func(workers int) *Batch {
		b := NewBatch(BatchConfig{Qubits: n, States: k, Workers: workers})
		for i := 0; i < k; i++ {
			b.State(i).Randomize(rand.New(rand.NewSource(seeds[i])))
		}
		b.Run(progs)
		return b
	}
	want := runBatch(1)

	stop := make(chan struct{})
	var flipper sync.WaitGroup
	flipper.Add(1)
	go func() {
		defer flipper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				SetParallelism(1 + i%8)
			}
		}
	}()

	var wg sync.WaitGroup
	for _, workers := range []int{0, 1, 2, 8, 0, 3} {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			got := runBatch(workers)
			for i := 0; i < k; i++ {
				for j, a := range got.State(i).amp {
					if a != want.State(i).amp[j] {
						t.Errorf("workers=%d state=%d amp %d: %v vs %v", workers, i, j, a, want.State(i).amp[j])
						return
					}
				}
			}
		}(workers)
	}
	wg.Wait()
	close(stop)
	flipper.Wait()
}

// TestBatchViewsAndValidation covers the view/copy plumbing and the
// up-front validation contract.
func TestBatchViewsAndValidation(t *testing.T) {
	b := NewBatch(BatchConfig{Qubits: 3, States: 2})
	for i := 0; i < 2; i++ {
		if p := b.State(i).Probability(0); p != 1 {
			t.Fatalf("state %d not |000>: P(0)=%v", i, p)
		}
	}

	// Views share the buffer: writing through one is visible in the batch.
	rng := rand.New(rand.NewSource(11))
	b.State(1).Randomize(rng)
	standalone := NewRandom(3, rand.New(rand.NewSource(11)))
	identical(t, "view randomize", b.State(1), standalone)

	// SetState copies; mutating the source afterwards must not leak in.
	src := NewRandom(3, rng)
	b.SetState(0, src)
	saved := src.Clone()
	src.X(0)
	identical(t, "SetState copies", b.State(0), saved)

	mustPanic := func(label string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", label)
			}
		}()
		f()
	}
	mustPanic("qubits=0", func() { NewBatch(BatchConfig{Qubits: 0, States: 1}) })
	mustPanic("states=0", func() { NewBatch(BatchConfig{Qubits: 2, States: 0}) })
	mustPanic("state out of range", func() { b.State(2) })
	mustPanic("size mismatch", func() { b.SetState(0, NewZero(4)) })
	mustPanic("prog count", func() { b.Run(nil) })
	mustPanic("bad op validated up front", func() {
		b.Run([][]Op{{GateH(0)}, {GateCZ(1, 7)}})
	})
	mustPanic("cz same qubit", func() { b.ApplyCZ(1, 1) })
}
