package statevec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// benchGates measures one gate applied across every qubit of the
// register, serial vs parallel, at two register sizes. The parallel
// sub-benches only help above the threshold (2^14 amplitudes), which is
// why q=12 is expected to tie and q=18 to scale.
func benchGates(b *testing.B, name string, apply func(s *State, q int)) {
	for _, n := range []int{12, 18} {
		for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS
			rng := rand.New(rand.NewSource(3))
			s := NewRandom(n, rng)
			mode := "par"
			if workers == 1 {
				mode = "ser"
			}
			b.Run(fmt.Sprintf("%s/q=%d/%s", name, n, mode), func(b *testing.B) {
				SetParallelism(workers)
				defer SetParallelism(0)
				b.SetBytes(int64(16 << uint(n)))
				for i := 0; i < b.N; i++ {
					for q := 0; q < n; q++ {
						apply(s, q)
					}
				}
			})
		}
	}
}

func BenchmarkStatevecH(b *testing.B) {
	benchGates(b, "H", func(s *State, q int) { s.H(q) })
}

func BenchmarkStatevecRZ(b *testing.B) {
	benchGates(b, "RZ", func(s *State, q int) { s.RZ(q, math.Pi/7) })
}

func BenchmarkStatevecCZ(b *testing.B) {
	benchGates(b, "CZ", func(s *State, q int) { s.CZ(q, (q+1)%s.Qubits()) })
}

func BenchmarkStatevecNorm(b *testing.B) {
	for _, workers := range []int{1, 0} {
		rng := rand.New(rand.NewSource(4))
		s := NewRandom(18, rng)
		mode := "par"
		if workers == 1 {
			mode = "ser"
		}
		b.Run(fmt.Sprintf("q=18/%s", mode), func(b *testing.B) {
			SetParallelism(workers)
			defer SetParallelism(0)
			for i := 0; i < b.N; i++ {
				if s.Norm() == 0 {
					b.Fatal("zero norm")
				}
			}
		})
	}
}
