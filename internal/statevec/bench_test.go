package statevec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// benchGates measures one gate applied across every qubit of the
// register, serial vs parallel, at two register sizes. The parallel
// sub-benches only help above the threshold (2^14 amplitudes), which is
// why q=12 is expected to tie and q=18 to scale.
func benchGates(b *testing.B, name string, apply func(s *State, q int)) {
	for _, n := range []int{12, 18} {
		for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS
			rng := rand.New(rand.NewSource(3))
			s := NewRandom(n, rng)
			mode := "par"
			if workers == 1 {
				mode = "ser"
			}
			b.Run(fmt.Sprintf("%s/q=%d/%s", name, n, mode), func(b *testing.B) {
				SetParallelism(workers)
				defer SetParallelism(0)
				b.SetBytes(int64(16 << uint(n)))
				for i := 0; i < b.N; i++ {
					for q := 0; q < n; q++ {
						apply(s, q)
					}
				}
			})
		}
	}
}

func BenchmarkStatevecH(b *testing.B) {
	benchGates(b, "H", func(s *State, q int) { s.H(q) })
}

func BenchmarkStatevecRZ(b *testing.B) {
	benchGates(b, "RZ", func(s *State, q int) { s.RZ(q, math.Pi/7) })
}

func BenchmarkStatevecCZ(b *testing.B) {
	benchGates(b, "CZ", func(s *State, q int) { s.CZ(q, (q+1)%s.Qubits()) })
}

// benchBatch compares one batched gate pass over K states against the
// per-state loop it replaces: identical work (same kernels, same
// amplitudes), different tiling. The batched pass amortizes dispatch
// and parallelizes over (state x block) tiles, so it should win clearly
// at small registers (where per-state parallelism never engages) and
// tie or better at large ones.
func benchBatch(b *testing.B, name string, batched func(bt *Batch, q int), single func(s *State, q int)) {
	const k = 8
	for _, n := range []int{10, 16} {
		bt := NewBatch(BatchConfig{Qubits: n, States: k})
		states := make([]*State, k)
		rng := rand.New(rand.NewSource(9))
		for i := range states {
			bt.State(i).Randomize(rng)
			states[i] = bt.State(i).Clone()
		}
		bytes := int64(16) * int64(k) << uint(n)
		b.Run(fmt.Sprintf("%s/q=%d/batch", name, n), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				for q := 0; q < n; q++ {
					batched(bt, q)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/q=%d/perstate", name, n), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				for q := 0; q < n; q++ {
					for _, s := range states {
						single(s, q)
					}
				}
			}
		})
	}
}

func BenchmarkBatchApplyH(b *testing.B) {
	benchBatch(b, "H",
		func(bt *Batch, q int) { bt.ApplyH(q) },
		func(s *State, q int) { s.H(q) })
}

func BenchmarkBatchApplyCZ(b *testing.B) {
	benchBatch(b, "CZ",
		func(bt *Batch, q int) { bt.ApplyCZ(q, (q+1)%bt.Qubits()) },
		func(s *State, q int) { s.CZ(q, (q+1)%s.Qubits()) })
}

// BenchmarkBatchRun measures the oracle's shape end to end: K states,
// each with its own CZ-heavy program, fused vs unfused, batched vs a
// serial per-state loop. The fused variants collapse each program's CZ
// run into one sign pass — the rewrite that pays for the raised oracle
// ceiling.
func BenchmarkBatchRun(b *testing.B) {
	const n, k, gates = 12, 8, 256
	rng := rand.New(rand.NewSource(10))
	progs := make([][]Op, k)
	fused := make([][]Op, k)
	for i := range progs {
		prog := make([]Op, gates)
		for g := range prog {
			a := rng.Intn(n)
			bq := (a + 1 + rng.Intn(n-1)) % n
			prog[g] = GateCZ(a, bq)
		}
		progs[i] = prog
		fused[i] = Fuse(prog)
	}
	run := func(b *testing.B, ps [][]Op, batched bool) {
		bt := NewBatch(BatchConfig{Qubits: n, States: k})
		seed := rand.New(rand.NewSource(11))
		for i := 0; i < k; i++ {
			bt.State(i).Randomize(seed)
		}
		b.SetBytes(int64(16) * int64(k) << uint(n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if batched {
				bt.Run(ps)
			} else {
				for s := 0; s < k; s++ {
					bt.State(s).Apply(ps[s])
				}
			}
		}
	}
	b.Run("unfused/perstate", func(b *testing.B) { run(b, progs, false) })
	b.Run("unfused/batch", func(b *testing.B) { run(b, progs, true) })
	b.Run("fused/perstate", func(b *testing.B) { run(b, fused, false) })
	b.Run("fused/batch", func(b *testing.B) { run(b, fused, true) })
}

// BenchmarkProgramSweep measures the segment executor against op-by-op
// application on the compiled-circuit shape the planner targets: repeated
// "1Q layer, then a run of diagonal gates" rounds. The segmented variant
// folds each diagonal run into one phase pass and fuses the adjacent 1Q
// gate into the same traversal, so its sweep count — and wall clock —
// drops well below one pass per op.
func BenchmarkProgramSweep(b *testing.B) {
	const n, rounds = 18, 24
	rng := rand.New(rand.NewSource(12))
	var prog []Op
	for r := 0; r < rounds; r++ {
		q := rng.Intn(n)
		switch r % 3 {
		case 0:
			prog = append(prog, GateH(q))
		case 1:
			prog = append(prog, GateY(q))
		default:
			prog = append(prog, GateX(q))
		}
		for g := 0; g < 6; g++ {
			a := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				prog = append(prog, GateRZ(a, rng.Float64()))
			case 1:
				prog = append(prog, GateT(a))
			default:
				prog = append(prog, GateCZ(a, (a+1+rng.Intn(n-1))%n))
			}
		}
	}
	plan := NewPlan(n, prog)
	b.Logf("ops=%d sweeps=%d passes saved=%d isa=%s", plan.Ops(), plan.Sweeps(), plan.PassesSaved(), KernelISA)
	s := NewRandom(n, rng)
	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(int64(len(prog)) * 16 << uint(n))
		for i := 0; i < b.N; i++ {
			s.ApplySequential(prog)
		}
	})
	b.Run("segmented", func(b *testing.B) {
		b.SetBytes(int64(len(prog)) * 16 << uint(n))
		for i := 0; i < b.N; i++ {
			s.RunPlan(plan)
		}
	})
}

func BenchmarkStatevecNorm(b *testing.B) {
	for _, workers := range []int{1, 0} {
		rng := rand.New(rand.NewSource(4))
		s := NewRandom(18, rng)
		mode := "par"
		if workers == 1 {
			mode = "ser"
		}
		b.Run(fmt.Sprintf("q=18/%s", mode), func(b *testing.B) {
			SetParallelism(workers)
			defer SetParallelism(0)
			for i := 0; i < b.N; i++ {
				if s.Norm() == 0 {
					b.Fatal("zero norm")
				}
			}
		})
	}
}
