package statevec

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// This file pins the blocked, optionally parallel gate kernels to the
// naive mask-scan loops they replaced. The references below are verbatim
// copies of the pre-blocking implementations; the tests assert the new
// kernels produce bit-identical amplitudes — serial and parallel alike —
// on random states, so the simulator's semantic-equivalence checks keep
// their exact meaning.

func naiveH(s *State, q int) {
	bit := 1 << uint(q)
	inv := complex(1/math.Sqrt2, 0)
	for i := range s.amp {
		if i&bit == 0 {
			a, b := s.amp[i], s.amp[i|bit]
			s.amp[i] = inv * (a + b)
			s.amp[i|bit] = inv * (a - b)
		}
	}
}

func naiveX(s *State, q int) {
	bit := 1 << uint(q)
	for i := range s.amp {
		if i&bit == 0 {
			s.amp[i], s.amp[i|bit] = s.amp[i|bit], s.amp[i]
		}
	}
}

func naiveRZ(s *State, q int, theta float64) {
	bit := 1 << uint(q)
	phase := cmplx.Exp(complex(0, theta))
	for i := range s.amp {
		if i&bit != 0 {
			s.amp[i] *= phase
		}
	}
}

func naiveCZ(s *State, a, b int) {
	mask := 1<<uint(a) | 1<<uint(b)
	for i := range s.amp {
		if i&mask == mask {
			s.amp[i] = -s.amp[i]
		}
	}
}

// identical demands bit-identical amplitudes, not tolerance equality: the
// blocked kernels perform the same float operations on the same elements,
// so any difference is a kernel bug.
func identical(t *testing.T, label string, got, want *State) {
	t.Helper()
	for i := range want.amp {
		if got.amp[i] != want.amp[i] {
			t.Fatalf("%s: amplitude %d differs: %v vs %v", label, i, got.amp[i], want.amp[i])
		}
	}
}

// TestKernelsMatchNaiveReference applies long random gate sequences to
// random states through the blocked kernels and the naive references, at
// several register sizes and parallelism settings (the threshold is
// lowered so even small states exercise the goroutine path; run under
// -race this also proves the chunking is data-race free).
func TestKernelsMatchNaiveReference(t *testing.T) {
	oldThreshold := parallelThreshold.Load()
	defer func() { parallelThreshold.Store(oldThreshold); SetParallelism(0) }()

	for _, workers := range []int{1, 3, 8} {
		for _, n := range []int{1, 2, 5, 9, 12} {
			rng := rand.New(rand.NewSource(int64(100*n + workers)))
			fast := NewRandom(n, rng)
			ref := fast.Clone()
			parallelThreshold.Store(4) // force the parallel path on tiny states
			SetParallelism(workers)

			for step := 0; step < 120; step++ {
				q := rng.Intn(n)
				switch rng.Intn(4) {
				case 0:
					fast.H(q)
					naiveH(ref, q)
				case 1:
					fast.X(q)
					naiveX(ref, q)
				case 2:
					theta := rng.Float64() * 2 * math.Pi
					fast.RZ(q, theta)
					naiveRZ(ref, q, theta)
				default:
					if n < 2 {
						continue
					}
					p := rng.Intn(n)
					if p == q {
						p = (q + 1) % n
					}
					fast.CZ(q, p)
					naiveCZ(ref, q, p)
				}
			}
			identical(t, fmt.Sprintf("n=%d/workers=%d", n, workers), fast, ref)
		}
	}
}

// TestReductionsDeterministicAcrossParallelism: Norm and InnerProduct must
// return bit-identical values for every worker count — the fixed-chunk
// merge contract.
func TestReductionsDeterministicAcrossParallelism(t *testing.T) {
	oldThreshold := parallelThreshold.Load()
	defer func() { parallelThreshold.Store(oldThreshold); SetParallelism(0) }()
	parallelThreshold.Store(4)

	rng := rand.New(rand.NewSource(77))
	a := NewRandom(14, rng)
	b := NewRandom(14, rng)

	SetParallelism(1)
	wantNorm := a.Norm()
	wantIP := a.InnerProduct(b)
	for _, workers := range []int{2, 5, 16} {
		SetParallelism(workers)
		if got := a.Norm(); got != wantNorm {
			t.Fatalf("workers=%d: Norm = %v, serial %v", workers, got, wantNorm)
		}
		if got := a.InnerProduct(b); got != wantIP {
			t.Fatalf("workers=%d: InnerProduct = %v, serial %v", workers, got, wantIP)
		}
	}
}

// TestCXStillComposes: the compiled CX identity survives the kernel
// rewrite end to end.
func TestCXStillComposes(t *testing.T) {
	s := NewZero(2)
	s.X(0)     // |01>
	s.CX(0, 1) // control q0 -> |11>
	if p := s.Probability(3); math.Abs(p-1) > 1e-12 {
		t.Fatalf("P(|11>) = %v, want 1", p)
	}
}
