// Width-agnostic unrolled kernel blocks, shared by the build-tagged
// kernel drivers (kernels_portable.go, kernels_amd64v3.go). Each block
// applies one gate to four consecutive pair ranks with hand-unrolled
// real/imag float64 arithmetic: the four pairs are fully independent, so
// the compiler can keep all of them in flight instead of serializing on
// one complex accumulator chain.
//
// Bit-identity pact: every driver applies these blocks — and the scalar
// tails below them — in ascending pair order, so the per-amplitude
// operation order is identical across unroll widths and GOAMD64 levels.
// Two drivers may differ only in how many blocks they issue per loop
// iteration, never in what arithmetic a given amplitude sees. (gc does
// not contract a*b+c into FMA at any GOAMD64 level, so the portable and
// v3 binaries produce bit-identical amplitudes; the differential tests
// run under both in CI.)
//
// The explicit real/imag expressions reproduce Go's complex-multiply
// lowering term by term (re = ar*br - ai*bi, im = ar*bi + ai*br), with
// one deliberate simplification: multiplying by the real constant 1/√2
// in the Hadamard skips the "- 0*imag" term of the full product. The two
// forms differ only in the sign of an exactly-zero result, which no
// state reachable from a random start produces.
package statevec

import "math"

// invSqrt2 is the Hadamard normalization 1/√2, evaluated in constant
// arithmetic exactly like the complex(1/math.Sqrt2, 0) the pre-unroll
// kernel used.
const invSqrt2 = 1 / math.Sqrt2

// u2coef is a 2x2 matrix unpacked into float components once per kernel
// invocation, so the inner blocks read scalars instead of re-slicing a
// complex array.
type u2coef struct {
	u0r, u0i, u1r, u1i float64
	u2r, u2i, u3r, u3i float64
}

func unpackU2(u [4]complex128) u2coef {
	return u2coef{
		real(u[0]), imag(u[0]), real(u[1]), imag(u[1]),
		real(u[2]), imag(u[2]), real(u[3]), imag(u[3]),
	}
}

// h4 applies the Hadamard butterfly to pairs (i+k, i+k+bit), k = 0..3.
func h4(amp []complex128, i, bit int) {
	a0, b0 := amp[i], amp[i+bit]
	a1, b1 := amp[i+1], amp[i+1+bit]
	a2, b2 := amp[i+2], amp[i+2+bit]
	a3, b3 := amp[i+3], amp[i+3+bit]
	amp[i] = complex(invSqrt2*(real(a0)+real(b0)), invSqrt2*(imag(a0)+imag(b0)))
	amp[i+bit] = complex(invSqrt2*(real(a0)-real(b0)), invSqrt2*(imag(a0)-imag(b0)))
	amp[i+1] = complex(invSqrt2*(real(a1)+real(b1)), invSqrt2*(imag(a1)+imag(b1)))
	amp[i+1+bit] = complex(invSqrt2*(real(a1)-real(b1)), invSqrt2*(imag(a1)-imag(b1)))
	amp[i+2] = complex(invSqrt2*(real(a2)+real(b2)), invSqrt2*(imag(a2)+imag(b2)))
	amp[i+2+bit] = complex(invSqrt2*(real(a2)-real(b2)), invSqrt2*(imag(a2)-imag(b2)))
	amp[i+3] = complex(invSqrt2*(real(a3)+real(b3)), invSqrt2*(imag(a3)+imag(b3)))
	amp[i+3+bit] = complex(invSqrt2*(real(a3)-real(b3)), invSqrt2*(imag(a3)-imag(b3)))
}

// h1 is the scalar tail of h4.
func h1(amp []complex128, i, bit int) {
	a, b := amp[i], amp[i+bit]
	amp[i] = complex(invSqrt2*(real(a)+real(b)), invSqrt2*(imag(a)+imag(b)))
	amp[i+bit] = complex(invSqrt2*(real(a)-real(b)), invSqrt2*(imag(a)-imag(b)))
}

// x4 swaps pairs (i+k, i+k+bit), k = 0..3.
func x4(amp []complex128, i, bit int) {
	amp[i], amp[i+bit] = amp[i+bit], amp[i]
	amp[i+1], amp[i+1+bit] = amp[i+1+bit], amp[i+1]
	amp[i+2], amp[i+2+bit] = amp[i+2+bit], amp[i+2]
	amp[i+3], amp[i+3+bit] = amp[i+3+bit], amp[i+3]
}

// x1 is the scalar tail of x4.
func x1(amp []complex128, i, bit int) {
	amp[i], amp[i+bit] = amp[i+bit], amp[i]
}

// rz4 multiplies amp[i..i+3] by the phase (pr, pi).
func rz4(amp []complex128, i int, pr, pi float64) {
	a0, a1, a2, a3 := amp[i], amp[i+1], amp[i+2], amp[i+3]
	amp[i] = complex(real(a0)*pr-imag(a0)*pi, real(a0)*pi+imag(a0)*pr)
	amp[i+1] = complex(real(a1)*pr-imag(a1)*pi, real(a1)*pi+imag(a1)*pr)
	amp[i+2] = complex(real(a2)*pr-imag(a2)*pi, real(a2)*pi+imag(a2)*pr)
	amp[i+3] = complex(real(a3)*pr-imag(a3)*pi, real(a3)*pi+imag(a3)*pr)
}

// rz1 is the scalar tail of rz4.
func rz1(amp []complex128, i int, pr, pi float64) {
	a := amp[i]
	amp[i] = complex(real(a)*pr-imag(a)*pi, real(a)*pi+imag(a)*pr)
}

// cz4 negates amp[i..i+3].
func cz4(amp []complex128, i int) {
	amp[i] = -amp[i]
	amp[i+1] = -amp[i+1]
	amp[i+2] = -amp[i+2]
	amp[i+3] = -amp[i+3]
}

// u24 applies the 2x2 matrix c to pairs (i+k, i+k+bit), k = 0..3.
func u24(amp []complex128, i, bit int, c *u2coef) {
	u2pair(amp, i, bit, c)
	u2pair(amp, i+1, bit, c)
	u2pair(amp, i+2, bit, c)
	u2pair(amp, i+3, bit, c)
}

// u2pair applies the 2x2 matrix c to the pair (i, i+bit), with the same
// per-amplitude operation order as the complex expression
// u[0]*a + u[1]*b / u[2]*a + u[3]*b it replaces.
func u2pair(amp []complex128, i, bit int, c *u2coef) {
	a, b := amp[i], amp[i+bit]
	ar, ai := real(a), imag(a)
	br, bi := real(b), imag(b)
	amp[i] = complex((c.u0r*ar-c.u0i*ai)+(c.u1r*br-c.u1i*bi),
		(c.u0r*ai+c.u0i*ar)+(c.u1r*bi+c.u1i*br))
	amp[i+bit] = complex((c.u2r*ar-c.u2i*ai)+(c.u3r*br-c.u3i*bi),
		(c.u2r*ai+c.u2i*ar)+(c.u3r*bi+c.u3i*br))
}
