//go:build amd64.v3

// The GOAMD64=v3 kernel drivers, selected at build time when the
// toolchain may assume AVX2-class hardware. The drivers issue two
// independent 4-pair blocks per loop iteration — eight pairs in flight —
// which the wider register file and three-operand VEX encodings of a v3
// target can actually sustain. The arithmetic is the same unrolled
// blocks as the portable path (kernels.go), applied in the same
// ascending pair order, so amplitudes are bit-identical to a portable
// build; only the instruction scheduling differs.
package statevec

// KernelISA names the kernel dispatch path compiled into this binary.
const KernelISA = "amd64.v3"

// hKernel applies a Hadamard over pair ranks [lo, hi); bit = 1<<q,
// mask = bit-1.
func hKernel(amp []complex128, bit, mask, lo, hi int) {
	for p := lo; p < hi; {
		end := (p | mask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, mask)
		for ; p+8 <= end; p += 8 {
			h4(amp, i, bit)
			h4(amp, i+4, bit)
			i += 8
		}
		for ; p+4 <= end; p += 4 {
			h4(amp, i, bit)
			i += 4
		}
		for ; p < end; p++ {
			h1(amp, i, bit)
			i++
		}
	}
}

// xKernel applies a Pauli-X over pair ranks [lo, hi).
func xKernel(amp []complex128, bit, mask, lo, hi int) {
	for p := lo; p < hi; {
		end := (p | mask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, mask)
		for ; p+8 <= end; p += 8 {
			x4(amp, i, bit)
			x4(amp, i+4, bit)
			i += 8
		}
		for ; p+4 <= end; p += 4 {
			x4(amp, i, bit)
			i += 4
		}
		for ; p < end; p++ {
			x1(amp, i, bit)
			i++
		}
	}
}

// rzKernel multiplies the bit-set half of each pair by phase over pair
// ranks [lo, hi).
func rzKernel(amp []complex128, bit, mask int, phase complex128, lo, hi int) {
	pr, pi := real(phase), imag(phase)
	for p := lo; p < hi; {
		end := (p | mask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, mask) + bit
		for ; p+8 <= end; p += 8 {
			rz4(amp, i, pr, pi)
			rz4(amp, i+4, pr, pi)
			i += 8
		}
		for ; p+4 <= end; p += 4 {
			rz4(amp, i, pr, pi)
			i += 4
		}
		for ; p < end; p++ {
			rz1(amp, i, pr, pi)
			i++
		}
	}
}

// czKernel negates amplitudes with both bits set over quad ranks
// [lo, hi); loBit < hiBit, masks are bit-1.
func czKernel(amp []complex128, loBit, hiBit, loMask, hiMask, lo, hi int) {
	for p := lo; p < hi; {
		end := (p | loMask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, loMask)
		i = pairIndex(i, hiMask) | loBit | hiBit
		for ; p+8 <= end; p += 8 {
			cz4(amp, i)
			cz4(amp, i+4)
			i += 8
		}
		for ; p+4 <= end; p += 4 {
			cz4(amp, i)
			i += 4
		}
		for ; p < end; p++ {
			amp[i] = -amp[i]
			i++
		}
	}
}

// u2Kernel applies the 2x2 matrix u (row-major) to each (i, i+bit) pair
// over pair ranks [lo, hi) — the fused form of a run of single-qubit
// gates.
func u2Kernel(amp []complex128, bit, mask int, u [4]complex128, lo, hi int) {
	c := unpackU2(u)
	for p := lo; p < hi; {
		end := (p | mask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, mask)
		for ; p+8 <= end; p += 8 {
			u24(amp, i, bit, &c)
			u24(amp, i+4, bit, &c)
			i += 8
		}
		for ; p+4 <= end; p += 4 {
			u24(amp, i, bit, &c)
			i += 4
		}
		for ; p < end; p++ {
			u2pair(amp, i, bit, &c)
			i++
		}
	}
}
