//go:build !amd64.v3

// The portable kernel drivers: the default dispatch path, built whenever
// GOAMD64 is below v3 (or the target is not amd64). Each driver walks
// the contiguous pair runs of the blocked rank space and issues one
// unrolled 4-pair block per iteration; see kernels.go for the blocks and
// the bit-identity pact with the v3 drivers.
package statevec

// KernelISA names the kernel dispatch path compiled into this binary.
// Build-time dispatch: GOAMD64=v3 (or higher) selects the wider drivers
// in kernels_amd64v3.go; everything else gets this portable path. CI
// tests both.
const KernelISA = "portable"

// hKernel applies a Hadamard over pair ranks [lo, hi); bit = 1<<q,
// mask = bit-1.
func hKernel(amp []complex128, bit, mask, lo, hi int) {
	for p := lo; p < hi; {
		end := (p | mask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, mask)
		for ; p+4 <= end; p += 4 {
			h4(amp, i, bit)
			i += 4
		}
		for ; p < end; p++ {
			h1(amp, i, bit)
			i++
		}
	}
}

// xKernel applies a Pauli-X over pair ranks [lo, hi).
func xKernel(amp []complex128, bit, mask, lo, hi int) {
	for p := lo; p < hi; {
		end := (p | mask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, mask)
		for ; p+4 <= end; p += 4 {
			x4(amp, i, bit)
			i += 4
		}
		for ; p < end; p++ {
			x1(amp, i, bit)
			i++
		}
	}
}

// rzKernel multiplies the bit-set half of each pair by phase over pair
// ranks [lo, hi).
func rzKernel(amp []complex128, bit, mask int, phase complex128, lo, hi int) {
	pr, pi := real(phase), imag(phase)
	for p := lo; p < hi; {
		end := (p | mask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, mask) + bit
		for ; p+4 <= end; p += 4 {
			rz4(amp, i, pr, pi)
			i += 4
		}
		for ; p < end; p++ {
			rz1(amp, i, pr, pi)
			i++
		}
	}
}

// czKernel negates amplitudes with both bits set over quad ranks
// [lo, hi); loBit < hiBit, masks are bit-1.
func czKernel(amp []complex128, loBit, hiBit, loMask, hiMask, lo, hi int) {
	for p := lo; p < hi; {
		end := (p | loMask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, loMask)
		i = pairIndex(i, hiMask) | loBit | hiBit
		for ; p+4 <= end; p += 4 {
			cz4(amp, i)
			i += 4
		}
		for ; p < end; p++ {
			amp[i] = -amp[i]
			i++
		}
	}
}

// u2Kernel applies the 2x2 matrix u (row-major) to each (i, i+bit) pair
// over pair ranks [lo, hi) — the fused form of a run of single-qubit
// gates.
func u2Kernel(amp []complex128, bit, mask int, u [4]complex128, lo, hi int) {
	c := unpackU2(u)
	for p := lo; p < hi; {
		end := (p | mask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, mask)
		for ; p+4 <= end; p += 4 {
			u24(amp, i, bit, &c)
			i += 4
		}
		for ; p < end; p++ {
			u2pair(amp, i, bit, &c)
			i++
		}
	}
}
