// Gate programs and gate fusion. A []Op is a circuit in the simulator's
// own terms — the gate set the compiler IR needs, as data instead of
// method calls — which is what lets the verification oracle hand whole
// corpora of heterogeneous gate sequences to the batch engine and lets
// Fuse rewrite a sequence before any kernel touches an amplitude.
//
// Two rewrites matter for throughput:
//
//   - Runs of adjacent single-qubit gates on one qubit collapse into a
//     single 2x2 matrix application (one pass over the state instead of
//     one per gate). The product matrix is ordinary floating point, so
//     this rewrite is tolerance-exact (~1e-15 per gate), never
//     bit-identical; single-gate runs keep their dedicated kernel so an
//     unfusable program runs exactly as before.
//   - Runs of adjacent CZ gates collapse into one diagonal sign pass
//     (OpCZRun): CZ gates commute, square to the identity, and only
//     negate amplitudes — an operation IEEE floats perform exactly — so
//     pairs with even multiplicity cancel outright and the run applies
//     in a single sweep with amplitudes bit-identical to the sequential
//     kernels. This is the oracle's fast path: a CZ-only equivalence
//     check of G gates becomes a cheap bitset construction plus one
//     pass over the state, whatever G is.
package statevec

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// OpKind classifies one program operation.
type OpKind uint8

// The operation kinds: the IR gate set plus the two fused forms.
const (
	// OpH, OpX, OpZ, OpRZ, and OpCZ mirror the State methods of the
	// same names.
	OpH OpKind = iota
	OpX
	OpZ
	OpRZ
	OpCZ
	// OpU2 applies an arbitrary 2x2 matrix to one qubit — the fused
	// form of a run of single-qubit gates.
	OpU2
	// OpCZRun applies a set of CZ gates as one diagonal sign pass —
	// the fused form of a run of CZ gates.
	OpCZRun
	// OpY, OpS, and OpT extend the 1Q gate set (ROADMAP item 4): Y is a
	// dense single-qubit gate that joins H/X in 1Q fusion; S and T are
	// diagonal phase gates that fold into diagonal segments (and into
	// OpU2 products) like OpZ does.
	OpY
	OpS
	OpT
)

// Op is one operation of a gate program.
type Op struct {
	// Kind selects the operation.
	Kind OpKind
	// Q is the target qubit (all kinds except OpCZRun); Q2 is the
	// second qubit of an OpCZ.
	Q, Q2 int
	// Theta is the OpRZ rotation angle.
	Theta float64
	// U is the row-major 2x2 matrix of an OpU2.
	U [4]complex128
	// Pairs are the qubit pairs of an OpCZRun, each normalized low-high.
	Pairs [][2]int
}

// GateH returns a Hadamard on qubit q.
func GateH(q int) Op { return Op{Kind: OpH, Q: q} }

// GateX returns a Pauli-X on qubit q.
func GateX(q int) Op { return Op{Kind: OpX, Q: q} }

// GateZ returns a Pauli-Z on qubit q.
func GateZ(q int) Op { return Op{Kind: OpZ, Q: q} }

// GateRZ returns a phase rotation diag(1, e^{i*theta}) on qubit q.
func GateRZ(q int, theta float64) Op { return Op{Kind: OpRZ, Q: q, Theta: theta} }

// GateCZ returns a controlled-Z between qubits a and b.
func GateCZ(a, b int) Op { return Op{Kind: OpCZ, Q: a, Q2: b} }

// GateY returns a Pauli-Y on qubit q.
func GateY(q int) Op { return Op{Kind: OpY, Q: q} }

// GateS returns a phase gate diag(1, i) on qubit q.
func GateS(q int) Op { return Op{Kind: OpS, Q: q} }

// GateT returns a phase gate diag(1, e^{i*pi/4}) on qubit q.
func GateT(q int) Op { return Op{Kind: OpT, Q: q} }

// oneQ reports whether the op is a fusable single-qubit gate.
func (op Op) oneQ() bool {
	switch op.Kind {
	case OpH, OpX, OpZ, OpRZ, OpY, OpS, OpT:
		return true
	}
	return false
}

// matrix returns the 2x2 matrix of a single-qubit gate kind.
func (op Op) matrix() [4]complex128 {
	inv := complex(1/math.Sqrt2, 0)
	switch op.Kind {
	case OpH:
		return [4]complex128{inv, inv, inv, -inv}
	case OpX:
		return [4]complex128{0, 1, 1, 0}
	case OpY:
		return [4]complex128{0, complex(0, -1), complex(0, 1), 0}
	case OpZ:
		return [4]complex128{1, 0, 0, -1}
	case OpS:
		return [4]complex128{1, 0, 0, complex(0, 1)}
	case OpT:
		return [4]complex128{1, 0, 0, cmplx.Exp(complex(0, math.Pi/4))}
	case OpRZ:
		return [4]complex128{1, 0, 0, cmplx.Exp(complex(0, op.Theta))}
	default:
		panic(fmt.Sprintf("statevec: op kind %d has no 2x2 matrix", op.Kind))
	}
}

// mul2x2 returns the row-major product a*b.
func mul2x2(a, b [4]complex128) [4]complex128 {
	return [4]complex128{
		a[0]*b[0] + a[1]*b[2], a[0]*b[1] + a[1]*b[3],
		a[2]*b[0] + a[3]*b[2], a[2]*b[1] + a[3]*b[3],
	}
}

// Fuse rewrites prog with adjacent-gate fusion:
//
//   - A maximal run of two or more single-qubit gates on one qubit
//     becomes a single OpU2 carrying the product matrix (applied
//     last-times-first, matching sequential application).
//   - A maximal run of two or more CZ gates becomes one OpCZRun holding
//     the pairs with odd multiplicity, in first-occurrence order; a run
//     that cancels completely vanishes, and a run that reduces to one
//     pair stays a plain OpCZ.
//
// Single-op runs pass through untouched, as do already-fused ops, so
// fusing is idempotent. The CZ rewrite is bit-identical to sequential
// application (sign flips are exact and commute); the 1Q rewrite is
// tolerance-exact only, because matrix products reassociate floating
// point (TestFuseOneQProperty pins the error under 1e-12).
func Fuse(prog []Op) []Op {
	out := make([]Op, 0, len(prog))
	for i := 0; i < len(prog); {
		op := prog[i]
		switch {
		case op.oneQ():
			j := i + 1
			for j < len(prog) && prog[j].oneQ() && prog[j].Q == op.Q {
				j++
			}
			if j-i == 1 {
				out = append(out, op)
			} else {
				u := prog[i].matrix()
				for k := i + 1; k < j; k++ {
					u = mul2x2(prog[k].matrix(), u)
				}
				out = append(out, Op{Kind: OpU2, Q: op.Q, U: u})
			}
			i = j
		case op.Kind == OpCZ:
			j := i + 1
			for j < len(prog) && prog[j].Kind == OpCZ {
				j++
			}
			if j-i == 1 {
				out = append(out, op)
			} else if pairs := cancelCZ(prog[i:j]); len(pairs) == 1 {
				out = append(out, GateCZ(pairs[0][0], pairs[0][1]))
			} else if len(pairs) > 0 {
				out = append(out, Op{Kind: OpCZRun, Pairs: pairs})
			}
			i = j
		default:
			out = append(out, op)
			i++
		}
	}
	return out
}

// cancelCZ reduces a run of CZ ops to its odd-multiplicity pairs in
// first-occurrence order (CZ is an involution, so even counts are the
// identity).
func cancelCZ(run []Op) [][2]int {
	counts := make(map[[2]int]int, len(run))
	order := make([][2]int, 0, len(run))
	for _, op := range run {
		a, b := op.Q, op.Q2
		if a > b {
			a, b = b, a
		}
		p := [2]int{a, b}
		if counts[p] == 0 {
			order = append(order, p)
		}
		counts[p]++
	}
	pairs := order[:0]
	for _, p := range order {
		if counts[p]%2 == 1 {
			pairs = append(pairs, p)
		}
	}
	return pairs
}

// Apply runs the program on the state through the segment executor: the
// program is compiled to a Plan (diagonal runs folded into single phase
// sweeps, a neighboring 1Q matrix absorbed into the same traversal; see
// segment.go) and executed with the blocked, on large states parallel,
// kernels. Ops the planner cannot fold run exactly as ApplySequential
// would; folded diagonals agree with it to 1e-12 (sign-only folds are
// bit-identical).
func (s *State) Apply(prog []Op) {
	s.runPlan(NewPlan(s.n, prog), 0)
}

// ApplySequential runs the program op by op with the dedicated kernels,
// bypassing the segment planner — the reference semantics the segment
// executor is differentially tested against.
func (s *State) ApplySequential(prog []Op) {
	for _, op := range prog {
		s.applyOp(op, 0)
	}
}

// applyOp dispatches one op to its kernel with an explicit worker
// bound (0 = package default, 1 = serial — what Batch.Run uses so
// per-state programs never nest parallel dispatch).
func (s *State) applyOp(op Op, workers int) {
	switch op.Kind {
	case OpH:
		s.h(op.Q, workers)
	case OpX:
		s.x(op.Q, workers)
	case OpY:
		s.applyU2(op.Q, op.matrix(), workers)
	case OpZ:
		s.rz(op.Q, math.Pi, workers)
	case OpS:
		s.rz(op.Q, math.Pi/2, workers)
	case OpT:
		s.rz(op.Q, math.Pi/4, workers)
	case OpRZ:
		s.rz(op.Q, op.Theta, workers)
	case OpCZ:
		s.cz(op.Q, op.Q2, workers)
	case OpU2:
		s.applyU2(op.Q, op.U, workers)
	case OpCZRun:
		s.applyCZRun(op.Pairs, workers)
	default:
		panic(fmt.Sprintf("statevec: unknown op kind %d", op.Kind))
	}
}

// checkOp validates one op against an n-qubit register, panicking like
// the corresponding State method would. Batch.Run validates whole
// programs up front so a malformed op panics on the caller's goroutine,
// not inside a worker.
func checkOp(n int, op Op) {
	check := func(q int) {
		if q < 0 || q >= n {
			panic(fmt.Sprintf("statevec: qubit %d outside register of %d", q, n))
		}
	}
	switch op.Kind {
	case OpH, OpX, OpY, OpZ, OpS, OpT, OpRZ, OpU2:
		check(op.Q)
	case OpCZ:
		check(op.Q)
		check(op.Q2)
		if op.Q == op.Q2 {
			panic(fmt.Sprintf("statevec: CZ on identical qubit %d", op.Q))
		}
	case OpCZRun:
		for _, p := range op.Pairs {
			check(p[0])
			check(p[1])
			if p[0] == p[1] {
				panic(fmt.Sprintf("statevec: CZ on identical qubit %d", p[0]))
			}
		}
	default:
		panic(fmt.Sprintf("statevec: unknown op kind %d", op.Kind))
	}
}

// ApplyCZRun applies a set of CZ gates as one diagonal sign pass:
// a parity bitset marks every basis index an odd number of the pairs
// negate, then a single sweep flips exactly those amplitudes. The
// result is bit-identical to applying each CZ kernel in sequence —
// negation is exact and order-free — while touching the amplitude
// array once instead of len(pairs) times.
func (s *State) ApplyCZRun(pairs [][2]int) { s.applyCZRun(pairs, 0) }

func (s *State) applyCZRun(pairs [][2]int, workers int) {
	for _, p := range pairs {
		s.checkQubit(p[0])
		s.checkQubit(p[1])
		if p[0] == p[1] {
			panic(fmt.Sprintf("statevec: CZ on identical qubit %d", p[0]))
		}
	}
	if len(pairs) == 0 {
		return
	}
	words := signMask(s.n, pairs)
	amp := s.amp
	parallelFor(workers, len(words), len(amp), func(lo, hi int) {
		applySigns(amp, words, lo, hi)
	})
}

// lowBitMask[q] has bit i set exactly when index bit q of i is set, for
// the six index bits that live inside one 64-bit word.
var lowBitMask = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// signMask builds the parity bitset of a CZ run on an n-qubit register:
// bit i of the result is set when an odd number of pairs have both
// their qubit bits set in i. The bitset is 2^n bits — 1/128th of the
// amplitude array — so constructing it is cheap even when the run is
// long: each pair flips 2^n/4 bits word-wise (whole words for qubits
// >= 6, repeating in-word masks below).
func signMask(n int, pairs [][2]int) []uint64 {
	amps := 1 << uint(n)
	nw := (amps + 63) / 64
	words := make([]uint64, nw)
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		if a > b {
			a, b = b, a
		}
		inWord := ^uint64(0)
		if a < 6 {
			inWord &= lowBitMask[a]
		}
		if b < 6 {
			inWord &= lowBitMask[b]
		}
		switch {
		case b < 6:
			// Both qubits live inside the word: every word takes the
			// combined in-word mask.
			for w := range words {
				words[w] ^= inWord
			}
		case a < 6:
			// The high qubit selects word blocks, the low one masks
			// within them.
			wb := 1 << uint(b-6)
			for base := wb; base < nw; base += 2 * wb {
				for w := base; w < base+wb; w++ {
					words[w] ^= inWord
				}
			}
		default:
			// Both qubits select whole words: flip every word with both
			// word-index bits set.
			wa, wb := 1<<uint(a-6), 1<<uint(b-6)
			for base := wb; base < nw; base += 2 * wb {
				for mid := wa; mid < wb; mid += 2 * wa {
					for w := base + mid; w < base+mid+wa; w++ {
						words[w] ^= ^uint64(0)
					}
				}
			}
		}
	}
	// Registers below one word leave garbage above 2^n; clear it so the
	// apply sweep never indexes past the amplitude array.
	if amps < 64 {
		words[0] &= (1 << uint(amps)) - 1
	}
	return words
}

// applySigns negates amp[i] for every set bit of words over the word
// range [lo, hi).
func applySigns(amp []complex128, words []uint64, lo, hi int) {
	for w := lo; w < hi; w++ {
		word := words[w]
		if word == 0 {
			continue
		}
		base := w * 64
		for word != 0 {
			i := base + bits.TrailingZeros64(word)
			amp[i] = -amp[i]
			word &= word - 1
		}
	}
}
