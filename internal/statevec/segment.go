// The program-segment executor: compiles a gate program into
// single-sweep passes before any kernel touches an amplitude.
//
// A fused program still pays one full traversal of the 2^n-amplitude
// state per op. The planner here collapses that further:
//
//   - Diagonal folding: a maximal run of diagonal ops (OpZ/OpS/OpT/
//     OpRZ/OpCZ/OpCZRun) merges into ONE phase pass. CZ content becomes
//     a parity bitset (signMask); rotation content becomes per-qubit
//     phase factors, expanded at execution time from a 64-entry in-word
//     table plus per-word factors for qubits >= 6 — the same
//     word-blocked decomposition the sign pass uses. A run that is pure
//     sign content executes through applySigns and stays bit-identical
//     to sequential application; runs with rotation content agree with
//     the sequential kernels to 1e-12 (phase products reassociate
//     floating point, like 1Q fusion).
//
//   - Neighbor fusion: a dense 1Q op (OpH/OpX/OpY/OpU2) adjacent to a
//     diagonal segment applies in the same traversal — sign/phase and
//     2x2 in one load/store of each cache block — so a typical compiled
//     block of "1Q layer + CZ stage" touches the state once. When the
//     diagonal side is pure sign content the fused pass is bit-identical
//     to [u2Kernel; applySigns] in sequence (negation is exact); an
//     OpH/OpX/OpY neighbor is lowered to its 2x2 matrix, which is
//     tolerance-exact like OpU2 fusion.
//
// Single ops that nothing folds with keep their dedicated kernels, so an
// unfoldable program runs exactly as ApplySequential would.
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Plan is a gate program compiled into single-sweep segments. Plans are
// immutable after construction and safe to share: Batch.RunPlans
// executes one plan per state concurrently, and repeated runs reuse the
// folded bitsets and phase tables.
type Plan struct {
	n      int
	segs   []segment
	ops    int
	sweeps int
}

// NewPlan compiles prog for an n-qubit register. It panics like
// State.Apply would on a malformed op; validation runs up front so a bad
// op never surfaces from inside a worker goroutine.
func NewPlan(n int, prog []Op) *Plan {
	if n <= 0 || n > MaxQubits {
		panic(fmt.Sprintf("statevec: qubit count %d outside (0, %d]", n, MaxQubits))
	}
	for _, op := range prog {
		checkOp(n, op)
	}
	p := &Plan{n: n, ops: len(prog)}
	var dense *Op // pending dense 1Q op, may lead a diagonal segment
	var diag *diagBuilder

	// flush emits everything pending, pairing a leading dense op with the
	// diagonal run behind it when both exist. A lone single-op diagonal
	// run passes through as itself, keeping the dedicated kernels.
	flush := func() {
		switch {
		case diag == nil && dense == nil:
		case diag == nil:
			p.segs = append(p.segs, segment{kind: segOp, op: *dense})
		case dense == nil && len(diag.ops) == 1:
			p.segs = append(p.segs, segment{kind: segOp, op: diag.ops[0]})
		case dense == nil:
			p.segs = append(p.segs, segment{kind: segDiag, diag: diag.finalize(n)})
		default:
			p.segs = append(p.segs, segment{
				kind: segDiagU2, diag: diag.finalize(n),
				q: dense.Q, u: dense.denseMatrix(), u2First: true,
			})
		}
		dense, diag = nil, nil
	}

	for i := range prog {
		op := prog[i]
		switch {
		case op.isDiagonal():
			if diag == nil {
				diag = &diagBuilder{n: n}
			}
			diag.add(op)
		case op.isDenseOneQ():
			if diag != nil {
				if dense != nil {
					// A dense-diag-dense sandwich exceeds one traversal:
					// emit the leading fusion, pend this op for the next.
					flush()
				} else {
					// Trailing fusion: the diagonal run and this op share
					// one traversal.
					p.segs = append(p.segs, segment{
						kind: segDiagU2, diag: diag.finalize(n),
						q: op.Q, u: op.denseMatrix(), u2First: false,
					})
					diag = nil
					continue
				}
			} else if dense != nil {
				p.segs = append(p.segs, segment{kind: segOp, op: *dense})
			}
			o := op
			dense = &o
		default:
			flush()
			p.segs = append(p.segs, segment{kind: segOp, op: op})
		}
	}
	flush()
	p.sweeps = len(p.segs)
	return p
}

// Qubits returns the register size the plan was compiled for.
func (p *Plan) Qubits() int { return p.n }

// Ops returns the source program's op count.
func (p *Plan) Ops() int { return p.ops }

// Sweeps returns the number of state traversals the plan performs — one
// per segment.
func (p *Plan) Sweeps() int { return p.sweeps }

// PassesSaved returns how many state traversals segment folding removed:
// source ops minus sweeps. This feeds the verify oracle's
// sweep_passes_saved accounting.
func (p *Plan) PassesSaved() int { return p.ops - p.sweeps }

// segKind classifies one plan segment.
type segKind uint8

const (
	// segOp runs a single op through its dedicated kernel — the
	// bit-identical unfolded path.
	segOp segKind = iota
	// segDiag is a folded diagonal run: one phase/sign sweep.
	segDiag
	// segDiagU2 is a folded diagonal run plus a neighboring dense 1Q
	// matrix, applied in the same traversal. u2First orders the matrix
	// before the diagonal when the dense op preceded the run.
	segDiagU2
)

type segment struct {
	kind    segKind
	op      Op            // segOp
	diag    *diagPass     // segDiag, segDiagU2
	q       int           // segDiagU2: matrix target qubit
	u       [4]complex128 // segDiagU2: row-major 2x2 matrix
	u2First bool          // segDiagU2: matrix applies before the diagonal
}

// isDiagonal reports whether the op folds into a diagonal segment.
func (op Op) isDiagonal() bool {
	switch op.Kind {
	case OpZ, OpS, OpT, OpRZ, OpCZ, OpCZRun:
		return true
	}
	return false
}

// isDenseOneQ reports whether the op is a non-diagonal single-qubit gate
// the planner can absorb into a diagonal segment's traversal as a 2x2
// matrix.
func (op Op) isDenseOneQ() bool {
	switch op.Kind {
	case OpH, OpX, OpY, OpU2:
		return true
	}
	return false
}

// denseMatrix returns the 2x2 matrix of a dense 1Q op: the carried
// matrix for OpU2, the gate matrix otherwise.
func (op Op) denseMatrix() [4]complex128 {
	if op.Kind == OpU2 {
		return op.U
	}
	return op.matrix()
}

// diagPhase returns the phase a diagonal 1Q op applies to the bit-set
// half of its qubit's pairs — computed exactly like the sequential
// dispatch (applyOp) computes it, so folding deviates from the
// sequential reference only by reassociation.
func (op Op) diagPhase() complex128 {
	switch op.Kind {
	case OpZ:
		return cmplx.Exp(complex(0, math.Pi))
	case OpS:
		return cmplx.Exp(complex(0, math.Pi/2))
	case OpT:
		return cmplx.Exp(complex(0, math.Pi/4))
	case OpRZ:
		return cmplx.Exp(complex(0, op.Theta))
	default:
		panic(fmt.Sprintf("statevec: op kind %d is not a 1Q diagonal", op.Kind))
	}
}

// diagBuilder accumulates one maximal diagonal run during planning.
type diagBuilder struct {
	n      int
	ops    []Op
	pairs  [][2]int
	qphase []complex128 // per-qubit phase product; nil until a rotation lands
}

func (d *diagBuilder) add(op Op) {
	d.ops = append(d.ops, op)
	switch op.Kind {
	case OpCZ:
		d.pairs = append(d.pairs, [2]int{op.Q, op.Q2})
	case OpCZRun:
		d.pairs = append(d.pairs, op.Pairs...)
	default: // OpZ, OpS, OpT, OpRZ — validated by checkOp
		if d.qphase == nil {
			d.qphase = make([]complex128, d.n)
			for q := range d.qphase {
				d.qphase[q] = 1
			}
		}
		d.qphase[op.Q] *= op.diagPhase()
	}
}

// diagPass is the executable form of a folded diagonal run. The phase of
// basis index i decomposes as low[i&63] (qubits 0..5, one in-word table
// lookup) times the product of highP[k] over set word-index bits (qubits
// >= 6, recomputed once per 64-amplitude word), negated when the CZ
// parity bit of i is set.
type diagPass struct {
	ops   int      // source ops folded into this pass
	signs []uint64 // CZ parity bitset; nil when the run has no CZ content
	rot   bool     // any rotation content (low/highQ/highP are live)
	low   [64]complex128
	highQ []uint // word-index shift amounts (qubit - 6)
	highP []complex128
}

func (d *diagBuilder) finalize(n int) *diagPass {
	p := &diagPass{ops: len(d.ops)}
	if len(d.pairs) > 0 {
		p.signs = signMask(n, d.pairs)
	}
	if d.qphase != nil {
		p.rot = true
		for j := 0; j < 64; j++ {
			ph := complex(1, 0)
			for q := 0; q < 6 && q < n; q++ {
				if j>>uint(q)&1 == 1 {
					ph *= d.qphase[q]
				}
			}
			p.low[j] = ph
		}
		for q := 6; q < n; q++ {
			if d.qphase[q] != 1 {
				p.highQ = append(p.highQ, uint(q-6))
				p.highP = append(p.highP, d.qphase[q])
			}
		}
	}
	return p
}

// highPhase returns the product of the pass's high-qubit phases selected
// by word index w.
func (d *diagPass) highPhase(w int) complex128 {
	hp := complex(1, 0)
	for k, sh := range d.highQ {
		if w>>sh&1 == 1 {
			hp *= d.highP[k]
		}
	}
	return hp
}

// RunPlan executes a compiled plan on the state. The plan must have been
// compiled for the state's register size.
func (s *State) RunPlan(p *Plan) { s.runPlan(p, 0) }

func (s *State) runPlan(p *Plan, workers int) {
	if s.n != p.n {
		panic(fmt.Sprintf("statevec: plan for %d qubits on register of %d", p.n, s.n))
	}
	amp := s.amp
	for si := range p.segs {
		seg := &p.segs[si]
		switch seg.kind {
		case segOp:
			s.applyOp(seg.op, workers)
		case segDiag:
			d := seg.diag
			if !d.rot {
				if d.signs == nil {
					continue // fully cancelled: the identity
				}
				parallelFor(workers, len(d.signs), len(amp), func(lo, hi int) {
					applySigns(amp, d.signs, lo, hi)
				})
				continue
			}
			words := (len(amp) + 63) / 64
			parallelFor(workers, words, len(amp), func(lo, hi int) {
				diagKernel(amp, d, lo, hi)
			})
		case segDiagU2:
			d := seg.diag
			bit := 1 << uint(seg.q)
			mask := bit - 1
			switch {
			case !d.rot && d.signs == nil: // diagonal side cancelled entirely
				parallelFor(workers, len(amp)/2, len(amp), func(lo, hi int) {
					u2Kernel(amp, bit, mask, seg.u, lo, hi)
				})
			case !d.rot:
				parallelFor(workers, len(amp)/2, len(amp), func(lo, hi int) {
					signU2Kernel(amp, bit, mask, seg.u, d.signs, seg.u2First, lo, hi)
				})
			default:
				parallelFor(workers, len(amp)/2, len(amp), func(lo, hi int) {
					diagU2Kernel(amp, bit, mask, seg.u, d, seg.u2First, lo, hi)
				})
			}
		}
	}
}

// diagKernel applies a rotation-bearing diagonal pass over the word
// range [lo, hi): per word one high-qubit phase product, per amplitude
// one table lookup, one conditional negation, and one complex multiply.
func diagKernel(amp []complex128, d *diagPass, lo, hi int) {
	for w := lo; w < hi; w++ {
		hp := d.highPhase(w)
		var word uint64
		if d.signs != nil {
			word = d.signs[w]
		}
		base := w * 64
		end := base + 64
		if end > len(amp) {
			end = len(amp)
		}
		for i := base; i < end; i++ {
			ph := hp * d.low[i-base]
			if word>>uint(i-base)&1 == 1 {
				ph = -ph
			}
			a := amp[i]
			amp[i] = complex(real(a)*real(ph)-imag(a)*imag(ph),
				real(a)*imag(ph)+imag(a)*real(ph))
		}
	}
}

// diagU2Kernel applies a rotation-bearing diagonal pass and a 2x2 matrix
// on qubit q (bit = 1<<q) in one traversal of pair ranks [lo, hi). The
// pair walk is sub-blocked at 64-amplitude word boundaries so the
// high-qubit phase products and sign words hoist out of the per-pair
// loop: within a sub-block both halves stay inside one word each (for
// bit < 64 the pair lands in a single word — power-of-two blocks never
// straddle a boundary; for bit >= 64 the halves share the in-word
// offset).
func diagU2Kernel(amp []complex128, bit, mask int, u [4]complex128, d *diagPass, u2First bool, lo, hi int) {
	c := unpackU2(u)
	for p := lo; p < hi; {
		end := (p | mask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, mask)
		for p < end {
			run := end - p
			if rem := 64 - (i & 63); run > rem {
				run = rem
			}
			j := i + bit
			wi, wj := i>>6, j>>6
			hpA := d.highPhase(wi)
			hpB := hpA
			if wj != wi {
				hpB = d.highPhase(wj)
			}
			var swA, swB uint64
			if d.signs != nil {
				swA, swB = d.signs[wi], d.signs[wj]
			}
			offA, offB := uint(i)&63, uint(j)&63
			for k := 0; k < run; k++ {
				pa := hpA * d.low[offA]
				if swA>>offA&1 == 1 {
					pa = -pa
				}
				pb := hpB * d.low[offB]
				if swB>>offB&1 == 1 {
					pb = -pb
				}
				a, b := amp[i], amp[j]
				ar, ai := real(a), imag(a)
				br, bi := real(b), imag(b)
				if u2First {
					nar := (c.u0r*ar - c.u0i*ai) + (c.u1r*br - c.u1i*bi)
					nai := (c.u0r*ai + c.u0i*ar) + (c.u1r*bi + c.u1i*br)
					nbr := (c.u2r*ar - c.u2i*ai) + (c.u3r*br - c.u3i*bi)
					nbi := (c.u2r*ai + c.u2i*ar) + (c.u3r*bi + c.u3i*br)
					amp[i] = complex(nar*real(pa)-nai*imag(pa), nar*imag(pa)+nai*real(pa))
					amp[j] = complex(nbr*real(pb)-nbi*imag(pb), nbr*imag(pb)+nbi*real(pb))
				} else {
					tar := ar*real(pa) - ai*imag(pa)
					tai := ar*imag(pa) + ai*real(pa)
					tbr := br*real(pb) - bi*imag(pb)
					tbi := br*imag(pb) + bi*real(pb)
					amp[i] = complex((c.u0r*tar-c.u0i*tai)+(c.u1r*tbr-c.u1i*tbi),
						(c.u0r*tai+c.u0i*tar)+(c.u1r*tbi+c.u1i*tbr))
					amp[j] = complex((c.u2r*tar-c.u2i*tai)+(c.u3r*tbr-c.u3i*tbi),
						(c.u2r*tai+c.u2i*tar)+(c.u3r*tbi+c.u3i*tbr))
				}
				i++
				j++
				offA++
				offB++
			}
			p += run
		}
	}
}

// signU2Kernel applies a pure-sign diagonal pass and a 2x2 matrix on
// qubit q in one traversal of pair ranks [lo, hi). Negation is exact, so
// the result is bit-identical to running applySigns and u2Kernel in
// sequence (in either order, per u2First) — the fused fast path for the
// oracle's "CZ stage next to a 1Q layer" shape.
func signU2Kernel(amp []complex128, bit, mask int, u [4]complex128, signs []uint64, u2First bool, lo, hi int) {
	c := unpackU2(u)
	for p := lo; p < hi; {
		end := (p | mask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, mask)
		for ; p < end; p++ {
			j := i + bit
			sa := signs[i>>6]>>(uint(i)&63)&1 == 1
			sb := signs[j>>6]>>(uint(j)&63)&1 == 1
			a, b := amp[i], amp[j]
			ar, ai := real(a), imag(a)
			br, bi := real(b), imag(b)
			if u2First {
				nar := (c.u0r*ar - c.u0i*ai) + (c.u1r*br - c.u1i*bi)
				nai := (c.u0r*ai + c.u0i*ar) + (c.u1r*bi + c.u1i*br)
				nbr := (c.u2r*ar - c.u2i*ai) + (c.u3r*br - c.u3i*bi)
				nbi := (c.u2r*ai + c.u2i*ar) + (c.u3r*bi + c.u3i*br)
				if sa {
					nar, nai = -nar, -nai
				}
				if sb {
					nbr, nbi = -nbr, -nbi
				}
				amp[i] = complex(nar, nai)
				amp[j] = complex(nbr, nbi)
			} else {
				if sa {
					ar, ai = -ar, -ai
				}
				if sb {
					br, bi = -br, -bi
				}
				amp[i] = complex((c.u0r*ar-c.u0i*ai)+(c.u1r*br-c.u1i*bi),
					(c.u0r*ai+c.u0i*ar)+(c.u1r*bi+c.u1i*br))
				amp[j] = complex((c.u2r*ar-c.u2i*ai)+(c.u3r*br-c.u3i*bi),
					(c.u2r*ai+c.u2i*ar)+(c.u3r*bi+c.u3i*br))
			}
			i++
		}
	}
}
