package statevec

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// This file pins the segment executor (Plan/RunPlan, the path behind
// State.Apply and Batch.Run) to ApplySequential — the op-by-op reference
// semantics. Two contracts, mirroring the fusion contracts of program.go:
//
//   - sign-only folds (CZ/CZRun content, with or without a dense 1Q
//     neighbor) and passthrough segments are bit-identical to sequential
//     application;
//   - rotation-bearing folds agree to 1e-12 per amplitude (phase
//     products reassociate floating point, like 1Q fusion).

// segTol is the per-amplitude tolerance for rotation-bearing folds.
const segTol = 1e-12

// within demands per-amplitude agreement to tol.
func within(t *testing.T, label string, got, want *State, tol float64) {
	t.Helper()
	for i := range want.amp {
		if d := cmplx.Abs(got.amp[i] - want.amp[i]); d > tol {
			t.Fatalf("%s: amplitude %d differs by %g: %v vs %v",
				label, i, d, got.amp[i], want.amp[i])
		}
	}
}

// randomSegProg draws a random program over the full planner alphabet:
// dense 1Q (H/X/Y/U2), diagonal 1Q (Z/S/T/RZ), and CZ/CZRun — weighted
// so diagonal runs and dense/diagonal neighbors occur often.
func randomSegProg(rng *rand.Rand, n, gates int) []Op {
	prog := make([]Op, 0, gates)
	for i := 0; i < gates; i++ {
		q := rng.Intn(n)
		switch rng.Intn(10) {
		case 0:
			prog = append(prog, GateH(q))
		case 1:
			prog = append(prog, GateX(q))
		case 2:
			prog = append(prog, GateY(q))
		case 3:
			theta := rng.Float64() * 2 * math.Pi
			u := [4]complex128{
				complex(math.Cos(theta/2), 0), complex(0, -math.Sin(theta/2)),
				complex(0, -math.Sin(theta/2)), complex(math.Cos(theta/2), 0),
			}
			prog = append(prog, Op{Kind: OpU2, Q: q, U: u})
		case 4:
			prog = append(prog, GateZ(q))
		case 5:
			prog = append(prog, GateS(q))
		case 6:
			prog = append(prog, GateT(q))
		case 7:
			prog = append(prog, GateRZ(q, rng.Float64()*2*math.Pi))
		case 8:
			if n < 2 {
				prog = append(prog, GateS(q))
				continue
			}
			pairs := make([][2]int, 1+rng.Intn(3))
			for j := range pairs {
				a, b := rng.Intn(n), rng.Intn(n)
				if a == b {
					b = (a + 1) % n
				}
				pairs[j] = [2]int{a, b}
			}
			prog = append(prog, Op{Kind: OpCZRun, Pairs: pairs})
		default:
			if n < 2 {
				prog = append(prog, GateT(q))
				continue
			}
			p := rng.Intn(n)
			if p == q {
				p = (q + 1) % n
			}
			prog = append(prog, GateCZ(q, p))
		}
	}
	return prog
}

// TestSegmentMatchesSequential differentially tests the segment executor
// against ApplySequential on random mixed programs across register sizes
// 1..20 and several worker counts (the parallel threshold is lowered so
// small registers exercise the goroutine path; under -race this also
// audits the folded kernels' chunking). Gate counts shrink with n to
// keep the -race budget sane.
func TestSegmentMatchesSequential(t *testing.T) {
	oldThreshold := parallelThreshold.Load()
	defer func() { parallelThreshold.Store(oldThreshold); SetParallelism(0) }()
	parallelThreshold.Store(4)

	for _, workers := range []int{1, 2, 8} {
		for n := 1; n <= 20; n++ {
			gates := 60
			switch {
			case n > 16:
				gates = 6
			case n > 12:
				gates = 16
			}
			if testing.Short() && n > 14 {
				continue
			}
			SetParallelism(workers)
			rng := rand.New(rand.NewSource(int64(1000*n + workers)))
			prog := randomSegProg(rng, n, gates)
			seg := NewRandom(n, rng)
			ref := seg.Clone()
			seg.Apply(prog)
			ref.ApplySequential(prog)
			within(t, fmt.Sprintf("workers=%d/n=%d", workers, n), seg, ref, segTol)
		}
	}
}

// TestDiagonalFoldingProperty is the folding analogue of the Fuse
// property test: programs of nothing but diagonal ops collapse to a
// single phase pass, which must agree with op-by-op application to
// segTol on every amplitude of a random state.
func TestDiagonalFoldingProperty(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		n := 2 + rng.Intn(9)
		prog := make([]Op, 0, 24)
		for len(prog) < 24 {
			q := rng.Intn(n)
			switch rng.Intn(5) {
			case 0:
				prog = append(prog, GateZ(q))
			case 1:
				prog = append(prog, GateS(q))
			case 2:
				prog = append(prog, GateT(q))
			case 3:
				prog = append(prog, GateRZ(q, rng.Float64()*2*math.Pi))
			default:
				p := rng.Intn(n)
				if p == q {
					p = (q + 1) % n
				}
				prog = append(prog, GateCZ(q, p))
			}
		}
		plan := NewPlan(n, prog)
		if plan.Sweeps() != 1 {
			t.Fatalf("trial %d: all-diagonal program compiled to %d sweeps", trial, plan.Sweeps())
		}
		seg := NewRandom(n, rng)
		ref := seg.Clone()
		seg.RunPlan(plan)
		ref.ApplySequential(prog)
		within(t, fmt.Sprintf("trial=%d/n=%d", trial, n), seg, ref, segTol)
	}
}

// TestSignOnlyFoldsBitIdentical pins the exactness half of the contract:
// CZ/CZRun-only folds, their fusions with a dense neighbor that
// sequential dispatch also routes through u2Kernel (OpY, OpU2), and
// lone-op passthrough segments must match sequential application bit for
// bit — negation is exact and passthrough reuses the dedicated kernels.
// (An OpH/OpX neighbor is excluded: its sequential path is a dedicated
// kernel, so its matrix-lowered fusion is tolerance-only.)
func TestSignOnlyFoldsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 10
	cz := func() Op {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			b = (a + 1) % n
		}
		return GateCZ(a, b)
	}
	cases := []struct {
		name string
		prog []Op
	}{
		{"diag-run", []Op{cz(), cz(), cz(), Op{Kind: OpCZRun, Pairs: [][2]int{{0, 3}, {2, 7}}}, cz()}},
		{"leading-dense", []Op{GateY(4), cz(), cz(), Op{Kind: OpCZRun, Pairs: [][2]int{{1, 5}}}}},
		{"leading-u2", []Op{{Kind: OpU2, Q: 6, U: [4]complex128{complex(0.6, 0), complex(0, 0.8), complex(0, 0.8), complex(0.6, 0)}}, cz(), cz()}},
		{"trailing-dense", []Op{cz(), cz(), cz(), GateY(2)}},
		{"lone-cz-passthrough", []Op{GateCZ(0, 1)}},
		{"lone-rz-passthrough", []Op{GateRZ(3, 1.25)}},
		{"dense-only", []Op{GateH(0), GateX(1), GateY(2), GateH(3)}},
	}
	for _, c := range cases {
		seg := NewRandom(n, rng)
		ref := seg.Clone()
		seg.Apply(c.prog)
		ref.ApplySequential(c.prog)
		identical(t, c.name, seg, ref)
	}
}

// TestPlanStructure pins the planner's folding rules: what merges, what
// passes through, and the sweep/passes-saved accounting the verify
// oracle reports.
func TestPlanStructure(t *testing.T) {
	cases := []struct {
		name   string
		prog   []Op
		sweeps int
		kinds  []segKind
	}{
		{"empty", nil, 0, nil},
		{"lone-diag-passthrough", []Op{GateCZ(0, 1)}, 1, []segKind{segOp}},
		{"diag-run-folds", []Op{GateZ(0), GateS(1), GateCZ(0, 1), GateT(2)}, 1, []segKind{segDiag}},
		{"leading-dense-fuses", []Op{GateH(0), GateCZ(0, 1), GateCZ(1, 2)}, 1, []segKind{segDiagU2}},
		{"trailing-dense-fuses", []Op{GateCZ(0, 1), GateRZ(1, 0.5), GateX(2)}, 1, []segKind{segDiagU2}},
		{"sandwich-splits", []Op{GateH(0), GateCZ(0, 1), GateCZ(1, 2), GateH(0)}, 2, []segKind{segDiagU2, segOp}},
		{"dense-dense-no-fold", []Op{GateH(0), GateH(0)}, 2, []segKind{segOp, segOp}},
		{"lone-dense-diag-pair", []Op{GateY(1), GateT(1)}, 1, []segKind{segDiagU2}},
	}
	for _, c := range cases {
		p := NewPlan(4, c.prog)
		if p.Sweeps() != c.sweeps {
			t.Errorf("%s: sweeps = %d, want %d", c.name, p.Sweeps(), c.sweeps)
		}
		if p.Ops() != len(c.prog) {
			t.Errorf("%s: ops = %d, want %d", c.name, p.Ops(), len(c.prog))
		}
		if saved := p.PassesSaved(); saved != len(c.prog)-c.sweeps {
			t.Errorf("%s: passes saved = %d, want %d", c.name, saved, len(c.prog)-c.sweeps)
		}
		if len(p.segs) != len(c.kinds) {
			t.Errorf("%s: %d segments, want %d", c.name, len(p.segs), len(c.kinds))
			continue
		}
		for i, k := range c.kinds {
			if p.segs[i].kind != k {
				t.Errorf("%s: segment %d kind = %d, want %d", c.name, i, p.segs[i].kind, k)
			}
		}
	}
	if u2 := NewPlan(4, []Op{GateH(0), GateCZ(0, 1), GateCZ(1, 2)}).segs[0]; !u2.u2First {
		t.Errorf("leading dense op should set u2First")
	}
	if u2 := NewPlan(4, []Op{GateCZ(0, 1), GateCZ(1, 2), GateH(0)}).segs[0]; u2.u2First {
		t.Errorf("trailing dense op should clear u2First")
	}
}

// TestKernelISAReported logs which kernel dispatch path this build uses —
// the CI bench job greps the output to record whether the GOAMD64=v3
// variants or the portable fallback ran.
func TestKernelISAReported(t *testing.T) {
	if KernelISA == "" {
		t.Fatal("KernelISA is empty")
	}
	t.Logf("kernel dispatch path: %s", KernelISA)
}
