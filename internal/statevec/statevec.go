// Package statevec is a dense state-vector simulator for small quantum
// registers. The compiler never needs it — scheduling is purely
// combinatorial — but the test suite uses it to prove *semantic*
// correctness: a compiled program applies exactly the circuit's unitary,
// because reordering gates within a commutable CZ block of the Sec. 2.2
// IR (the only liberty the Sec. 4 stage scheduler takes) cannot change
// the state. It is also a useful
// standalone tool for validating small workloads end to end.
//
// The simulator supports the gate set the IR needs: Hadamard, Pauli gates,
// phase rotations, and CZ. States are vectors of 2^n complex amplitudes;
// qubit 0 is the least significant bit of the basis index.
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxQubits bounds the register size; 2^24 amplitudes (256 MiB of
// complex128) is already beyond what the test suite exercises.
const MaxQubits = 24

// parallelism is the configured package-default worker count for gate
// kernels; 0 selects GOMAXPROCS. It is read atomically so concurrent
// simulations and a configuration change never race. A Batch can carry
// its own worker bound (BatchConfig.Workers) and fall back here only
// when unset, so concurrent batches with different parallelism needs
// never fight over this global.
var parallelism atomic.Int32

// parallelThreshold is the minimum amplitude count before a gate kernel
// fans out to goroutines; below it the dispatch overhead exceeds the
// work. It is atomic because tests lower it to drive the parallel path
// on small states while kernels on other goroutines are reading it.
var parallelThreshold atomic.Int64

func init() { parallelThreshold.Store(1 << 14) }

// SetParallelism sets the package-default number of goroutines gate
// kernels may use on large states: n <= 0 restores the default
// (GOMAXPROCS), 1 forces serial execution. Kernels are element-wise on
// disjoint index sets and the reductions accumulate over fixed chunk
// boundaries, so results are byte-identical for every setting. Batches
// can override the default per instance via BatchConfig.Workers.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the effective package-default worker count.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor splits [0, total) into one contiguous chunk per worker and
// runs f on each chunk in its own goroutine. It runs f(0, total) inline
// when the state is below the parallel threshold or one worker is
// requested. Chunk boundaries never influence results: gate kernels are
// element-wise, and reductions fix their own accumulation grain
// (reduceChunk) independent of the split. workers <= 0 selects the
// package default.
func parallelFor(workers, total, amps int, f func(lo, hi int)) {
	if workers <= 0 {
		workers = Parallelism()
	}
	if workers > total {
		workers = total
	}
	if workers <= 1 || int64(amps) < parallelThreshold.Load() {
		f(0, total)
		return
	}
	chunk := (total + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// State is a normalized quantum state on n qubits.
type State struct {
	n   int
	amp []complex128
}

// NewZero returns |0...0> on n qubits.
// It panics if n is out of (0, MaxQubits].
func NewZero(n int) *State {
	if n <= 0 || n > MaxQubits {
		panic(fmt.Sprintf("statevec: qubit count %d outside (0, %d]", n, MaxQubits))
	}
	amp := make([]complex128, 1<<uint(n))
	amp[0] = 1
	return &State{n: n, amp: amp}
}

// NewRandom returns a random product-free state: amplitudes with
// independent uniform real and imaginary parts, normalized. Every
// amplitude is nonzero almost surely, which is what makes unitary
// comparisons sensitive to any gate discrepancy.
func NewRandom(n int, rng *rand.Rand) *State {
	s := NewZero(n)
	s.Randomize(rng)
	return s
}

// Randomize overwrites the state with NewRandom's distribution. It draws
// exactly one value from rng — the seed of an inline splitmix64 stream
// that generates the amplitudes — so filling a Batch slot through a view
// produces amplitudes bit-identical to a standalone NewRandom under the
// same seed. The oracle fills two fresh states per equivalence check,
// which made the previous per-amplitude Gaussian draw (two ziggurat
// samples behind a rand.Rand call each) the single largest cost of a
// verification sweep; the inlined generator is pure integer arithmetic.
func (s *State) Randomize(rng *rand.Rand) {
	x := uint64(rng.Int63())
	norm := 0.0
	for i := range s.amp {
		// splitmix64: a full-period 2^64 stream with strong avalanche —
		// more than enough independence for test-state generation.
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		z ^= z >> 31
		re := float64(int32(z)) * 0x1p-31     // the two 32-bit halves give
		im := float64(int32(z>>32)) * 0x1p-31 // independent uniforms in [-1, 1)
		s.amp[i] = complex(re, im)
		norm += re*re + im*im
	}
	if norm == 0 {
		s.amp[0] = 1
		return
	}
	scale := 1 / math.Sqrt(norm)
	for i := range s.amp {
		a := s.amp[i]
		s.amp[i] = complex(scale*real(a), scale*imag(a))
	}
}

// CopyFrom overwrites the state with o's amplitudes.
// It panics on register-size mismatch.
func (s *State) CopyFrom(o *State) {
	if s.n != o.n {
		panic(fmt.Sprintf("statevec: register sizes %d and %d differ", s.n, o.n))
	}
	copy(s.amp, o.amp)
}

// Qubits returns the register size.
func (s *State) Qubits() int { return s.n }

// Clone returns an independent copy.
func (s *State) Clone() *State {
	return &State{n: s.n, amp: append([]complex128(nil), s.amp...)}
}

// Amplitude returns the amplitude of basis state idx.
func (s *State) Amplitude(idx int) complex128 {
	return s.amp[idx]
}

// Probability returns |amplitude|^2 of basis state idx.
func (s *State) Probability(idx int) float64 {
	return real(s.amp[idx])*real(s.amp[idx]) + imag(s.amp[idx])*imag(s.amp[idx])
}

// reduceChunk is the fixed accumulation grain of the parallel reductions:
// partial sums are formed over [c*reduceChunk, (c+1)*reduceChunk) and
// combined in ascending chunk order, so the floating-point result is
// identical for every parallelism setting — the deterministic merge the
// fidelity comparisons rely on.
const reduceChunk = 1 << 13

// norm2Range sums |a|^2 over one reduction chunk with four independent
// accumulator lanes, merged in a fixed order: element i feeds lane i%4
// (tails feed lane 0), and the lanes combine as ((s0+s1)+s2)+s3. The
// lane structure breaks the serial one-accumulator dependency chain —
// each float64 add no longer waits on the previous one — and, being a
// pure function of the chunk contents, keeps the reduction bit-identical
// across worker counts.
func norm2Range(amp []complex128) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(amp); i += 4 {
		a0, a1, a2, a3 := amp[i], amp[i+1], amp[i+2], amp[i+3]
		s0 += real(a0)*real(a0) + imag(a0)*imag(a0)
		s1 += real(a1)*real(a1) + imag(a1)*imag(a1)
		s2 += real(a2)*real(a2) + imag(a2)*imag(a2)
		s3 += real(a3)*real(a3) + imag(a3)*imag(a3)
	}
	for ; i < len(amp); i++ {
		a := amp[i]
		s0 += real(a)*real(a) + imag(a)*imag(a)
	}
	return ((s0 + s1) + s2) + s3
}

// Norm returns the 2-norm of the state (1 for any valid state).
func (s *State) Norm() float64 {
	amp := s.amp
	if len(amp) <= reduceChunk {
		return math.Sqrt(norm2Range(amp))
	}
	chunks := (len(amp) + reduceChunk - 1) / reduceChunk
	partials := make([]float64, chunks)
	parallelFor(0, chunks, len(amp), func(lo, hi int) {
		for c := lo; c < hi; c++ {
			end := (c + 1) * reduceChunk
			if end > len(amp) {
				end = len(amp)
			}
			partials[c] = norm2Range(amp[c*reduceChunk : end])
		}
	})
	total := 0.0
	for _, p := range partials {
		total += p
	}
	return math.Sqrt(total)
}

func (s *State) checkQubit(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d outside register of %d", q, s.n))
	}
}

// The gate kernels below are cache-blocked: instead of scanning all 2^n
// indexes and masking out the relevant ones, they enumerate the affected
// index set directly as contiguous runs. A single-qubit gate on qubit q
// touches pairs (i, i+bit) whose low index has bit q clear; ranking those
// pairs 0..2^(n-1)-1 and expanding rank p to index
// ((p &^ (bit-1)) << 1) | (p & (bit-1)) walks the pairs in runs of length
// bit with unit stride — sequential memory on both halves of each block.
// The rank space is also what the goroutine dispatcher splits: chunks are
// disjoint index sets, so parallel execution is trivially deterministic.

// pairIndex expands pair rank p to the low index of its (i, i+bit) pair.
func pairIndex(p, mask int) int {
	return ((p &^ mask) << 1) | (p & mask)
}

// The rank-range kernels (hKernel/xKernel/rzKernel/czKernel/u2Kernel)
// are the shared inner loops of State and Batch: each walks pair ranks
// [lo, hi) of one state's amplitude slice. They are element-wise on
// disjoint index sets, so any tiling of the rank space — per-state,
// per-block, or across a whole batch — produces bit-identical
// amplitudes. Their bodies live in the build-tagged kernel driver files
// (kernels_portable.go by default, kernels_amd64v3.go under GOAMD64=v3)
// over the shared unrolled blocks of kernels.go.

// H applies a Hadamard to qubit q.
func (s *State) H(q int) { s.h(q, 0) }

func (s *State) h(q, workers int) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	amp := s.amp
	mask := bit - 1
	parallelFor(workers, len(amp)/2, len(amp), func(lo, hi int) {
		hKernel(amp, bit, mask, lo, hi)
	})
}

// X applies a Pauli-X (NOT) to qubit q.
func (s *State) X(q int) { s.x(q, 0) }

func (s *State) x(q, workers int) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	amp := s.amp
	mask := bit - 1
	parallelFor(workers, len(amp)/2, len(amp), func(lo, hi int) {
		xKernel(amp, bit, mask, lo, hi)
	})
}

// Z applies a Pauli-Z to qubit q.
func (s *State) Z(q int) {
	s.RZ(q, math.Pi)
}

// RZ applies a phase rotation diag(1, e^{i*theta}) to qubit q.
func (s *State) RZ(q int, theta float64) { s.rz(q, theta, 0) }

func (s *State) rz(q int, theta float64, workers int) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	phase := cmplx.Exp(complex(0, theta))
	amp := s.amp
	mask := bit - 1
	parallelFor(workers, len(amp)/2, len(amp), func(lo, hi int) {
		rzKernel(amp, bit, mask, phase, lo, hi)
	})
}

// ApplyU2 applies an arbitrary 2x2 matrix u (row-major) to qubit q —
// the kernel behind fused runs of single-qubit gates (see Fuse).
func (s *State) ApplyU2(q int, u [4]complex128) { s.applyU2(q, u, 0) }

func (s *State) applyU2(q int, u [4]complex128, workers int) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	amp := s.amp
	mask := bit - 1
	parallelFor(workers, len(amp)/2, len(amp), func(lo, hi int) {
		u2Kernel(amp, bit, mask, u, lo, hi)
	})
}

// CZ applies a controlled-Z between qubits a and b.
// It panics if a == b.
func (s *State) CZ(a, b int) { s.cz(a, b, 0) }

func (s *State) cz(a, b, workers int) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		panic(fmt.Sprintf("statevec: CZ on identical qubit %d", a))
	}
	loBit, hiBit := 1<<uint(a), 1<<uint(b)
	if loBit > hiBit {
		loBit, hiBit = hiBit, loBit
	}
	loMask, hiMask := loBit-1, hiBit-1
	amp := s.amp
	// Rank space: indexes with both bits set, enumerated by expanding the
	// rank around the low bit, then the high bit, in runs of loBit.
	parallelFor(workers, len(amp)/4, len(amp), func(lo, hi int) {
		czKernel(amp, loBit, hiBit, loMask, hiMask, lo, hi)
	})
}

// CX applies a controlled-X with control c and target t, via the
// H-CZ-H identity the hardware compiles it to.
func (s *State) CX(c, t int) {
	s.H(t)
	s.CZ(c, t)
	s.H(t)
}

// dotRange sums conj(sa[i])*oa[i] over one reduction chunk with the same
// four-lane fixed-merge structure as norm2Range, in explicit real/imag
// arithmetic (conj(a)*b has re = ar*br + ai*bi, im = ar*bi - ai*br).
func dotRange(sa, oa []complex128) complex128 {
	var r0, r1, r2, r3, m0, m1, m2, m3 float64
	i := 0
	for ; i+4 <= len(sa); i += 4 {
		a0, b0 := sa[i], oa[i]
		a1, b1 := sa[i+1], oa[i+1]
		a2, b2 := sa[i+2], oa[i+2]
		a3, b3 := sa[i+3], oa[i+3]
		r0 += real(a0)*real(b0) + imag(a0)*imag(b0)
		m0 += real(a0)*imag(b0) - imag(a0)*real(b0)
		r1 += real(a1)*real(b1) + imag(a1)*imag(b1)
		m1 += real(a1)*imag(b1) - imag(a1)*real(b1)
		r2 += real(a2)*real(b2) + imag(a2)*imag(b2)
		m2 += real(a2)*imag(b2) - imag(a2)*real(b2)
		r3 += real(a3)*real(b3) + imag(a3)*imag(b3)
		m3 += real(a3)*imag(b3) - imag(a3)*real(b3)
	}
	for ; i < len(sa); i++ {
		a, b := sa[i], oa[i]
		r0 += real(a)*real(b) + imag(a)*imag(b)
		m0 += real(a)*imag(b) - imag(a)*real(b)
	}
	return complex(((r0+r1)+r2)+r3, ((m0+m1)+m2)+m3)
}

// InnerProduct returns <s|o>, accumulated over the fixed reduceChunk
// grain so the result is identical for every parallelism setting.
// It panics on register-size mismatch.
func (s *State) InnerProduct(o *State) complex128 {
	if s.n != o.n {
		panic(fmt.Sprintf("statevec: register sizes %d and %d differ", s.n, o.n))
	}
	sa, oa := s.amp, o.amp
	if len(sa) <= reduceChunk {
		return dotRange(sa, oa)
	}
	chunks := (len(sa) + reduceChunk - 1) / reduceChunk
	partials := make([]complex128, chunks)
	parallelFor(0, chunks, len(sa), func(lo, hi int) {
		for c := lo; c < hi; c++ {
			end := (c + 1) * reduceChunk
			if end > len(sa) {
				end = len(sa)
			}
			partials[c] = dotRange(sa[c*reduceChunk:end], oa[c*reduceChunk:end])
		}
	})
	var total complex128
	for _, p := range partials {
		total += p
	}
	return total
}

// Fidelity returns |<s|o>|^2, the overlap probability of the two states.
func (s *State) Fidelity(o *State) float64 {
	ip := s.InnerProduct(o)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// Equal reports whether the states coincide up to tolerance tol in the
// max-norm of the amplitude difference (global phase NOT factored out;
// the gate set here is deterministic about phases). The comparison is
// |d|^2 <= tol^2 — same verdict as a hypot-based |d| <= tol on every
// finite input (squaring is monotone; amplitudes are bounded by 1, so
// the square cannot overflow) without the library call per amplitude —
// and treats NaN amplitudes as unequal.
func (s *State) Equal(o *State, tol float64) bool {
	if s.n != o.n {
		return false
	}
	t2 := tol * tol
	for i := range s.amp {
		d := s.amp[i] - o.amp[i]
		if !(real(d)*real(d)+imag(d)*imag(d) <= t2) {
			return false
		}
	}
	return true
}
