// Package statevec is a dense state-vector simulator for small quantum
// registers. The compiler never needs it — scheduling is purely
// combinatorial — but the test suite uses it to prove *semantic*
// correctness: a compiled program applies exactly the circuit's unitary,
// because reordering gates within a commutable CZ block of the Sec. 2.2
// IR (the only liberty the Sec. 4 stage scheduler takes) cannot change
// the state. It is also a useful
// standalone tool for validating small workloads end to end.
//
// The simulator supports the gate set the IR needs: Hadamard, Pauli gates,
// phase rotations, and CZ. States are vectors of 2^n complex amplitudes;
// qubit 0 is the least significant bit of the basis index.
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// MaxQubits bounds the register size; 2^24 amplitudes (256 MiB of
// complex128) is already beyond what the test suite exercises.
const MaxQubits = 24

// State is a normalized quantum state on n qubits.
type State struct {
	n   int
	amp []complex128
}

// NewZero returns |0...0> on n qubits.
// It panics if n is out of (0, MaxQubits].
func NewZero(n int) *State {
	if n <= 0 || n > MaxQubits {
		panic(fmt.Sprintf("statevec: qubit count %d outside (0, %d]", n, MaxQubits))
	}
	amp := make([]complex128, 1<<uint(n))
	amp[0] = 1
	return &State{n: n, amp: amp}
}

// NewRandom returns a Haar-ish random product-free state: amplitudes drawn
// from independent Gaussians and normalized. Random states make unitary
// comparisons sensitive to any gate discrepancy.
func NewRandom(n int, rng *rand.Rand) *State {
	s := NewZero(n)
	norm := 0.0
	for i := range s.amp {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		s.amp[i] = complex(re, im)
		norm += re*re + im*im
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range s.amp {
		s.amp[i] *= scale
	}
	return s
}

// Qubits returns the register size.
func (s *State) Qubits() int { return s.n }

// Clone returns an independent copy.
func (s *State) Clone() *State {
	return &State{n: s.n, amp: append([]complex128(nil), s.amp...)}
}

// Amplitude returns the amplitude of basis state idx.
func (s *State) Amplitude(idx int) complex128 {
	return s.amp[idx]
}

// Probability returns |amplitude|^2 of basis state idx.
func (s *State) Probability(idx int) float64 {
	return real(s.amp[idx])*real(s.amp[idx]) + imag(s.amp[idx])*imag(s.amp[idx])
}

// Norm returns the 2-norm of the state (1 for any valid state).
func (s *State) Norm() float64 {
	total := 0.0
	for _, a := range s.amp {
		total += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(total)
}

func (s *State) checkQubit(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d outside register of %d", q, s.n))
	}
}

// H applies a Hadamard to qubit q.
func (s *State) H(q int) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	inv := complex(1/math.Sqrt2, 0)
	for i := range s.amp {
		if i&bit == 0 {
			a, b := s.amp[i], s.amp[i|bit]
			s.amp[i] = inv * (a + b)
			s.amp[i|bit] = inv * (a - b)
		}
	}
}

// X applies a Pauli-X (NOT) to qubit q.
func (s *State) X(q int) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	for i := range s.amp {
		if i&bit == 0 {
			s.amp[i], s.amp[i|bit] = s.amp[i|bit], s.amp[i]
		}
	}
}

// Z applies a Pauli-Z to qubit q.
func (s *State) Z(q int) {
	s.RZ(q, math.Pi)
}

// RZ applies a phase rotation diag(1, e^{i*theta}) to qubit q.
func (s *State) RZ(q int, theta float64) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	phase := cmplx.Exp(complex(0, theta))
	for i := range s.amp {
		if i&bit != 0 {
			s.amp[i] *= phase
		}
	}
}

// CZ applies a controlled-Z between qubits a and b.
// It panics if a == b.
func (s *State) CZ(a, b int) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		panic(fmt.Sprintf("statevec: CZ on identical qubit %d", a))
	}
	mask := 1<<uint(a) | 1<<uint(b)
	for i := range s.amp {
		if i&mask == mask {
			s.amp[i] = -s.amp[i]
		}
	}
}

// CX applies a controlled-X with control c and target t, via the
// H-CZ-H identity the hardware compiles it to.
func (s *State) CX(c, t int) {
	s.H(t)
	s.CZ(c, t)
	s.H(t)
}

// InnerProduct returns <s|o>.
// It panics on register-size mismatch.
func (s *State) InnerProduct(o *State) complex128 {
	if s.n != o.n {
		panic(fmt.Sprintf("statevec: register sizes %d and %d differ", s.n, o.n))
	}
	var total complex128
	for i := range s.amp {
		total += cmplx.Conj(s.amp[i]) * o.amp[i]
	}
	return total
}

// Fidelity returns |<s|o>|^2, the overlap probability of the two states.
func (s *State) Fidelity(o *State) float64 {
	ip := s.InnerProduct(o)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// Equal reports whether the states coincide up to tolerance tol in the
// max-norm of the amplitude difference (global phase NOT factored out;
// the gate set here is deterministic about phases).
func (s *State) Equal(o *State, tol float64) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.amp {
		if cmplx.Abs(s.amp[i]-o.amp[i]) > tol {
			return false
		}
	}
	return true
}
