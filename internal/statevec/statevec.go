// Package statevec is a dense state-vector simulator for small quantum
// registers. The compiler never needs it — scheduling is purely
// combinatorial — but the test suite uses it to prove *semantic*
// correctness: a compiled program applies exactly the circuit's unitary,
// because reordering gates within a commutable CZ block of the Sec. 2.2
// IR (the only liberty the Sec. 4 stage scheduler takes) cannot change
// the state. It is also a useful
// standalone tool for validating small workloads end to end.
//
// The simulator supports the gate set the IR needs: Hadamard, Pauli gates,
// phase rotations, and CZ. States are vectors of 2^n complex amplitudes;
// qubit 0 is the least significant bit of the basis index.
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxQubits bounds the register size; 2^24 amplitudes (256 MiB of
// complex128) is already beyond what the test suite exercises.
const MaxQubits = 24

// parallelism is the configured package-default worker count for gate
// kernels; 0 selects GOMAXPROCS. It is read atomically so concurrent
// simulations and a configuration change never race. A Batch can carry
// its own worker bound (BatchConfig.Workers) and fall back here only
// when unset, so concurrent batches with different parallelism needs
// never fight over this global.
var parallelism atomic.Int32

// parallelThreshold is the minimum amplitude count before a gate kernel
// fans out to goroutines; below it the dispatch overhead exceeds the
// work. It is atomic because tests lower it to drive the parallel path
// on small states while kernels on other goroutines are reading it.
var parallelThreshold atomic.Int64

func init() { parallelThreshold.Store(1 << 14) }

// SetParallelism sets the package-default number of goroutines gate
// kernels may use on large states: n <= 0 restores the default
// (GOMAXPROCS), 1 forces serial execution. Kernels are element-wise on
// disjoint index sets and the reductions accumulate over fixed chunk
// boundaries, so results are byte-identical for every setting. Batches
// can override the default per instance via BatchConfig.Workers.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the effective package-default worker count.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor splits [0, total) into one contiguous chunk per worker and
// runs f on each chunk in its own goroutine. It runs f(0, total) inline
// when the state is below the parallel threshold or one worker is
// requested. Chunk boundaries never influence results: gate kernels are
// element-wise, and reductions fix their own accumulation grain
// (reduceChunk) independent of the split. workers <= 0 selects the
// package default.
func parallelFor(workers, total, amps int, f func(lo, hi int)) {
	if workers <= 0 {
		workers = Parallelism()
	}
	if workers > total {
		workers = total
	}
	if workers <= 1 || int64(amps) < parallelThreshold.Load() {
		f(0, total)
		return
	}
	chunk := (total + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// State is a normalized quantum state on n qubits.
type State struct {
	n   int
	amp []complex128
}

// NewZero returns |0...0> on n qubits.
// It panics if n is out of (0, MaxQubits].
func NewZero(n int) *State {
	if n <= 0 || n > MaxQubits {
		panic(fmt.Sprintf("statevec: qubit count %d outside (0, %d]", n, MaxQubits))
	}
	amp := make([]complex128, 1<<uint(n))
	amp[0] = 1
	return &State{n: n, amp: amp}
}

// NewRandom returns a Haar-ish random product-free state: amplitudes drawn
// from independent Gaussians and normalized. Random states make unitary
// comparisons sensitive to any gate discrepancy.
func NewRandom(n int, rng *rand.Rand) *State {
	s := NewZero(n)
	s.Randomize(rng)
	return s
}

// Randomize overwrites the state with NewRandom's distribution, drawing
// from rng in the same order, so filling a Batch slot through a view
// produces amplitudes bit-identical to a standalone NewRandom under the
// same seed.
func (s *State) Randomize(rng *rand.Rand) {
	norm := 0.0
	for i := range s.amp {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		s.amp[i] = complex(re, im)
		norm += re*re + im*im
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range s.amp {
		s.amp[i] *= scale
	}
}

// CopyFrom overwrites the state with o's amplitudes.
// It panics on register-size mismatch.
func (s *State) CopyFrom(o *State) {
	if s.n != o.n {
		panic(fmt.Sprintf("statevec: register sizes %d and %d differ", s.n, o.n))
	}
	copy(s.amp, o.amp)
}

// Qubits returns the register size.
func (s *State) Qubits() int { return s.n }

// Clone returns an independent copy.
func (s *State) Clone() *State {
	return &State{n: s.n, amp: append([]complex128(nil), s.amp...)}
}

// Amplitude returns the amplitude of basis state idx.
func (s *State) Amplitude(idx int) complex128 {
	return s.amp[idx]
}

// Probability returns |amplitude|^2 of basis state idx.
func (s *State) Probability(idx int) float64 {
	return real(s.amp[idx])*real(s.amp[idx]) + imag(s.amp[idx])*imag(s.amp[idx])
}

// reduceChunk is the fixed accumulation grain of the parallel reductions:
// partial sums are formed over [c*reduceChunk, (c+1)*reduceChunk) and
// combined in ascending chunk order, so the floating-point result is
// identical for every parallelism setting — the deterministic merge the
// fidelity comparisons rely on.
const reduceChunk = 1 << 13

// Norm returns the 2-norm of the state (1 for any valid state).
func (s *State) Norm() float64 {
	amp := s.amp
	if len(amp) <= reduceChunk {
		total := 0.0
		for _, a := range amp {
			total += real(a)*real(a) + imag(a)*imag(a)
		}
		return math.Sqrt(total)
	}
	chunks := (len(amp) + reduceChunk - 1) / reduceChunk
	partials := make([]float64, chunks)
	parallelFor(0, chunks, len(amp), func(lo, hi int) {
		for c := lo; c < hi; c++ {
			end := (c + 1) * reduceChunk
			if end > len(amp) {
				end = len(amp)
			}
			sum := 0.0
			for _, a := range amp[c*reduceChunk : end] {
				sum += real(a)*real(a) + imag(a)*imag(a)
			}
			partials[c] = sum
		}
	})
	total := 0.0
	for _, p := range partials {
		total += p
	}
	return math.Sqrt(total)
}

func (s *State) checkQubit(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d outside register of %d", q, s.n))
	}
}

// The gate kernels below are cache-blocked: instead of scanning all 2^n
// indexes and masking out the relevant ones, they enumerate the affected
// index set directly as contiguous runs. A single-qubit gate on qubit q
// touches pairs (i, i+bit) whose low index has bit q clear; ranking those
// pairs 0..2^(n-1)-1 and expanding rank p to index
// ((p &^ (bit-1)) << 1) | (p & (bit-1)) walks the pairs in runs of length
// bit with unit stride — sequential memory on both halves of each block.
// The rank space is also what the goroutine dispatcher splits: chunks are
// disjoint index sets, so parallel execution is trivially deterministic.

// pairIndex expands pair rank p to the low index of its (i, i+bit) pair.
func pairIndex(p, mask int) int {
	return ((p &^ mask) << 1) | (p & mask)
}

// The rank-range kernels below are the shared inner loops of State and
// Batch: each walks pair ranks [lo, hi) of one state's amplitude slice.
// They are element-wise on disjoint index sets, so any tiling of the
// rank space — per-state, per-block, or across a whole batch — produces
// bit-identical amplitudes.

// hKernel applies a Hadamard over pair ranks [lo, hi); bit = 1<<q,
// mask = bit-1.
func hKernel(amp []complex128, bit, mask, lo, hi int) {
	inv := complex(1/math.Sqrt2, 0)
	for p := lo; p < hi; {
		end := (p | mask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, mask)
		for ; p < end; p++ {
			a, b := amp[i], amp[i+bit]
			amp[i] = inv * (a + b)
			amp[i+bit] = inv * (a - b)
			i++
		}
	}
}

// xKernel applies a Pauli-X over pair ranks [lo, hi).
func xKernel(amp []complex128, bit, mask, lo, hi int) {
	for p := lo; p < hi; {
		end := (p | mask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, mask)
		for ; p < end; p++ {
			amp[i], amp[i+bit] = amp[i+bit], amp[i]
			i++
		}
	}
}

// rzKernel multiplies the bit-set half of each pair by phase over pair
// ranks [lo, hi).
func rzKernel(amp []complex128, bit, mask int, phase complex128, lo, hi int) {
	for p := lo; p < hi; {
		end := (p | mask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, mask) + bit
		for ; p < end; p++ {
			amp[i] *= phase
			i++
		}
	}
}

// czKernel negates amplitudes with both bits set over quad ranks
// [lo, hi); loBit < hiBit, masks are bit-1.
func czKernel(amp []complex128, loBit, hiBit, loMask, hiMask, lo, hi int) {
	for p := lo; p < hi; {
		end := (p | loMask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, loMask)
		i = pairIndex(i, hiMask) | loBit | hiBit
		for ; p < end; p++ {
			amp[i] = -amp[i]
			i++
		}
	}
}

// u2Kernel applies the 2x2 matrix u (row-major) to each (i, i+bit) pair
// over pair ranks [lo, hi) — the fused form of a run of single-qubit
// gates.
func u2Kernel(amp []complex128, bit, mask int, u [4]complex128, lo, hi int) {
	for p := lo; p < hi; {
		end := (p | mask) + 1
		if end > hi {
			end = hi
		}
		i := pairIndex(p, mask)
		for ; p < end; p++ {
			a, b := amp[i], amp[i+bit]
			amp[i] = u[0]*a + u[1]*b
			amp[i+bit] = u[2]*a + u[3]*b
			i++
		}
	}
}

// H applies a Hadamard to qubit q.
func (s *State) H(q int) { s.h(q, 0) }

func (s *State) h(q, workers int) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	amp := s.amp
	mask := bit - 1
	parallelFor(workers, len(amp)/2, len(amp), func(lo, hi int) {
		hKernel(amp, bit, mask, lo, hi)
	})
}

// X applies a Pauli-X (NOT) to qubit q.
func (s *State) X(q int) { s.x(q, 0) }

func (s *State) x(q, workers int) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	amp := s.amp
	mask := bit - 1
	parallelFor(workers, len(amp)/2, len(amp), func(lo, hi int) {
		xKernel(amp, bit, mask, lo, hi)
	})
}

// Z applies a Pauli-Z to qubit q.
func (s *State) Z(q int) {
	s.RZ(q, math.Pi)
}

// RZ applies a phase rotation diag(1, e^{i*theta}) to qubit q.
func (s *State) RZ(q int, theta float64) { s.rz(q, theta, 0) }

func (s *State) rz(q int, theta float64, workers int) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	phase := cmplx.Exp(complex(0, theta))
	amp := s.amp
	mask := bit - 1
	parallelFor(workers, len(amp)/2, len(amp), func(lo, hi int) {
		rzKernel(amp, bit, mask, phase, lo, hi)
	})
}

// ApplyU2 applies an arbitrary 2x2 matrix u (row-major) to qubit q —
// the kernel behind fused runs of single-qubit gates (see Fuse).
func (s *State) ApplyU2(q int, u [4]complex128) { s.applyU2(q, u, 0) }

func (s *State) applyU2(q int, u [4]complex128, workers int) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	amp := s.amp
	mask := bit - 1
	parallelFor(workers, len(amp)/2, len(amp), func(lo, hi int) {
		u2Kernel(amp, bit, mask, u, lo, hi)
	})
}

// CZ applies a controlled-Z between qubits a and b.
// It panics if a == b.
func (s *State) CZ(a, b int) { s.cz(a, b, 0) }

func (s *State) cz(a, b, workers int) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		panic(fmt.Sprintf("statevec: CZ on identical qubit %d", a))
	}
	loBit, hiBit := 1<<uint(a), 1<<uint(b)
	if loBit > hiBit {
		loBit, hiBit = hiBit, loBit
	}
	loMask, hiMask := loBit-1, hiBit-1
	amp := s.amp
	// Rank space: indexes with both bits set, enumerated by expanding the
	// rank around the low bit, then the high bit, in runs of loBit.
	parallelFor(workers, len(amp)/4, len(amp), func(lo, hi int) {
		czKernel(amp, loBit, hiBit, loMask, hiMask, lo, hi)
	})
}

// CX applies a controlled-X with control c and target t, via the
// H-CZ-H identity the hardware compiles it to.
func (s *State) CX(c, t int) {
	s.H(t)
	s.CZ(c, t)
	s.H(t)
}

// InnerProduct returns <s|o>, accumulated over the fixed reduceChunk
// grain so the result is identical for every parallelism setting.
// It panics on register-size mismatch.
func (s *State) InnerProduct(o *State) complex128 {
	if s.n != o.n {
		panic(fmt.Sprintf("statevec: register sizes %d and %d differ", s.n, o.n))
	}
	sa, oa := s.amp, o.amp
	if len(sa) <= reduceChunk {
		var total complex128
		for i := range sa {
			total += cmplx.Conj(sa[i]) * oa[i]
		}
		return total
	}
	chunks := (len(sa) + reduceChunk - 1) / reduceChunk
	partials := make([]complex128, chunks)
	parallelFor(0, chunks, len(sa), func(lo, hi int) {
		for c := lo; c < hi; c++ {
			end := (c + 1) * reduceChunk
			if end > len(sa) {
				end = len(sa)
			}
			var sum complex128
			for i := c * reduceChunk; i < end; i++ {
				sum += cmplx.Conj(sa[i]) * oa[i]
			}
			partials[c] = sum
		}
	})
	var total complex128
	for _, p := range partials {
		total += p
	}
	return total
}

// Fidelity returns |<s|o>|^2, the overlap probability of the two states.
func (s *State) Fidelity(o *State) float64 {
	ip := s.InnerProduct(o)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// Equal reports whether the states coincide up to tolerance tol in the
// max-norm of the amplitude difference (global phase NOT factored out;
// the gate set here is deterministic about phases).
func (s *State) Equal(o *State, tol float64) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.amp {
		if cmplx.Abs(s.amp[i]-o.amp[i]) > tol {
			return false
		}
	}
	return true
}
