package statevec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func TestZeroState(t *testing.T) {
	s := NewZero(3)
	if s.Probability(0) != 1 {
		t.Error("|000> amplitude wrong")
	}
	if math.Abs(s.Norm()-1) > tol {
		t.Error("norm != 1")
	}
}

func TestNewZeroPanics(t *testing.T) {
	for _, n := range []int{0, -1, MaxQubits + 1} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZero(%d) did not panic", n)
				}
			}()
			NewZero(n)
		}()
	}
}

// TestHIsInvolution: H twice is the identity.
func TestHIsInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewRandom(4, rng)
	orig := s.Clone()
	s.H(2)
	s.H(2)
	if !s.Equal(orig, 1e-9) {
		t.Error("H^2 != I")
	}
}

// TestXAndCZInvolutions: X^2 = CZ^2 = I.
func TestXAndCZInvolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewRandom(4, rng)
	orig := s.Clone()
	s.X(1)
	s.X(1)
	s.CZ(0, 3)
	s.CZ(0, 3)
	if !s.Equal(orig, 1e-9) {
		t.Error("involutions failed")
	}
}

// TestBellViaCX: H + CX produce the Bell state with the right amplitudes.
func TestBellViaCX(t *testing.T) {
	s := NewZero(2)
	s.H(0)
	s.CX(0, 1)
	want := 1 / math.Sqrt2
	if math.Abs(real(s.Amplitude(0))-want) > tol || math.Abs(real(s.Amplitude(3))-want) > tol {
		t.Errorf("Bell amplitudes: %v, %v", s.Amplitude(0), s.Amplitude(3))
	}
	if p := s.Probability(1) + s.Probability(2); p > tol {
		t.Errorf("odd-parity probability %v, want 0", p)
	}
}

// TestCZSymmetric: CZ(a,b) == CZ(b,a).
func TestCZSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewRandom(4, rng)
	b := a.Clone()
	a.CZ(1, 3)
	b.CZ(3, 1)
	if !a.Equal(b, tol) {
		t.Error("CZ not symmetric")
	}
}

// TestCZGatesCommute is the algebraic fact the whole stage scheduler
// rests on: any two CZ gates commute, so reordering a commutable block
// preserves the unitary.
func TestCZGatesCommute(t *testing.T) {
	f := func(seed int64, a1, b1, a2, b2 uint8) bool {
		n := 5
		q := func(x uint8) int { return int(x) % n }
		if q(a1) == q(b1) || q(a2) == q(b2) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		s1 := NewRandom(n, rng)
		s2 := s1.Clone()
		s1.CZ(q(a1), q(b1))
		s1.CZ(q(a2), q(b2))
		s2.CZ(q(a2), q(b2))
		s2.CZ(q(a1), q(b1))
		return s1.Equal(s2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestGatesPreserveNorm: all gates are unitary.
func TestGatesPreserveNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewRandom(5, rng)
	ops := []func(){
		func() { s.H(0) }, func() { s.X(1) }, func() { s.Z(2) },
		func() { s.RZ(3, 0.7) }, func() { s.CZ(0, 4) }, func() { s.CX(2, 3) },
	}
	for i, op := range ops {
		op()
		if math.Abs(s.Norm()-1) > 1e-9 {
			t.Fatalf("op %d broke normalization: %v", i, s.Norm())
		}
	}
}

func TestRZPhase(t *testing.T) {
	s := NewZero(1)
	s.X(0) // |1>
	s.RZ(0, math.Pi/2)
	got := s.Amplitude(1)
	if math.Abs(real(got)) > tol || math.Abs(imag(got)-1) > tol {
		t.Errorf("RZ(pi/2)|1> = %v, want i", got)
	}
	// Z == RZ(pi).
	a := NewZero(1)
	a.X(0)
	a.Z(0)
	if math.Abs(real(a.Amplitude(1))+1) > tol {
		t.Errorf("Z|1> = %v, want -1", a.Amplitude(1))
	}
}

func TestFidelityAndInnerProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewRandom(4, rng)
	if f := s.Fidelity(s); math.Abs(f-1) > 1e-9 {
		t.Errorf("self-fidelity = %v", f)
	}
	o := s.Clone()
	o.X(0)
	if f := s.Fidelity(o); f > 0.999 {
		t.Errorf("orthogonal-ish states report fidelity %v", f)
	}
	zero, one := NewZero(1), NewZero(1)
	one.X(0)
	if f := zero.Fidelity(one); f > tol {
		t.Errorf("<0|1> fidelity = %v", f)
	}
}

func TestPanicsOnBadQubits(t *testing.T) {
	s := NewZero(2)
	cases := []func(){
		func() { s.H(2) },
		func() { s.CZ(0, 0) },
		func() { s.CZ(0, 5) },
		func() { s.InnerProduct(NewZero(3)) },
	}
	for i, op := range cases {
		i, op := i, op
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			op()
		}()
	}
}

func TestEqualSizeMismatch(t *testing.T) {
	if NewZero(2).Equal(NewZero(3), tol) {
		t.Error("different registers reported equal")
	}
}
