package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// Two Store handles on one directory stand in for two powermoved
// processes sharing a -store-dir — the fleet deployment. These tests pin
// the cross-process contracts: a peer's GC reads as a clean miss, a
// peer's writes are adopted into the local index, and the byte budget
// bounds the directory, not each process's private write history.

// peerPayload pads entries to a stable size so byte-budget arithmetic in
// the tests is easy to reason about.
func peerPayload(v int) []byte {
	return []byte(fmt.Sprintf(`{"v":%d,"pad":%q}`, v, strings.Repeat("x", 200)))
}

// indexConsistent recomputes a store's byte accounting from its index
// and fails the test if the cached total diverged.
func indexConsistent(t *testing.T, s *Store) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum int64
	for _, st := range s.index {
		sum += st.size
	}
	if sum != s.bytes {
		t.Errorf("index sums to %d bytes but store accounts %d", sum, s.bytes)
	}
	if s.bytes < 0 {
		t.Errorf("negative byte accounting: %d", s.bytes)
	}
}

// TestPeerEvictionMiss: an entry deleted out from under this process by
// a peer's GC is a clean miss — counted, stale index entry dropped,
// bytes decremented — never an error or a corrupt count.
func TestPeerEvictionMiss(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("key-a", peerPayload(1)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats(); got.Files != 1 {
		t.Fatalf("peer store did not index the existing entry: %+v", got)
	}

	// The "peer GC": remove the file behind s2's back.
	if err := os.Remove(filepath.Join(dir, fileFor("key-a"))); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("key-a"); ok {
		t.Error("peer-evicted entry served as a hit")
	}
	st := s2.Stats()
	if st.Misses != 1 || st.Corrupt != 0 {
		t.Errorf("peer eviction miscounted: %+v, want 1 clean miss", st)
	}
	if st.Files != 0 || st.Bytes != 0 {
		t.Errorf("stale index entry survived the miss: %+v", st)
	}
	indexConsistent(t, s2)
}

// TestPeerWriteAdoption: an entry a peer wrote after this process's Open
// serves as a hit and is adopted into the local index, so GC accounting
// sees it.
func TestPeerWriteAdoption(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("key-a", peerPayload(1)); err != nil {
		t.Fatal(err)
	}

	got, ok := s2.Get("key-a")
	if !ok || string(got) != string(peerPayload(1)) {
		t.Fatalf("peer-written entry not served: %q, %v", got, ok)
	}
	st := s2.Stats()
	if st.Files != 1 || st.Bytes == 0 {
		t.Errorf("peer-written entry not adopted into the index: %+v", st)
	}
	indexConsistent(t, s2)
}

// TestPeerPutAfterPeerGC: Put must not trust a stale index entry — if a
// peer GC'd the file, the second Put rewrites it.
func TestPeerPutAfterPeerGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-a", peerPayload(1)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, fileFor("key-a"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-a", peerPayload(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("key-a"); !ok {
		t.Error("entry missing after re-Put over a peer-GC'd file")
	}
	indexConsistent(t, s)
}

// TestPeerBudgetGlobal: two processes writing through one directory must
// together respect the byte budget — the GC counts peer writes, so the
// directory never settles above MaxBytes no matter which handle wrote
// what.
func TestPeerBudgetGlobal(t *testing.T) {
	dir := t.TempDir()
	entry := peerPayload(0)
	// Envelope overhead is small; budget for ~4 entries.
	probe, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Put("sizing", entry); err != nil {
		t.Fatal(err)
	}
	entryBytes := probe.Stats().Bytes
	budget := 4*entryBytes + entryBytes/2

	s1, err := Open(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave writes across the handles: 10 entries against a
	// 4.5-entry budget. Each handle alone wrote well under budget.
	for i := 0; i < 10; i++ {
		h := s1
		if i%2 == 1 {
			h = s2
		}
		if err := h.Put(fmt.Sprintf("key-%d", i), peerPayload(i)); err != nil {
			t.Fatal(err)
		}
	}

	var onDisk int64
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		info, err := f.Info()
		if err != nil {
			t.Fatal(err)
		}
		onDisk += info.Size()
	}
	if onDisk > budget {
		t.Errorf("directory holds %d bytes, budget is %d: peer writes escaped the GC", onDisk, budget)
	}
	indexConsistent(t, s1)
	indexConsistent(t, s2)
}

// TestTwoHandlesConcurrent hammers one directory through two handles
// with concurrent Put/Get/peer-unlink traffic under a tight budget; run
// with -race. The invariants: no errors, and each handle's byte
// accounting matches its index when the dust settles.
func TestTwoHandlesConcurrent(t *testing.T) {
	dir := t.TempDir()
	budget := int64(1 << 14)
	s1, err := Open(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	stores := []*Store{s1, s2}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := stores[g%2]
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("key-%d", (g*31+i)%25)
				switch i % 4 {
				case 0, 1:
					if err := s.Put(key, peerPayload(i)); err != nil {
						t.Errorf("Put(%s): %v", key, err)
						return
					}
				case 2:
					s.Get(key)
				case 3:
					// A hostile peer: unlink directly, as a foreign
					// process's GC would.
					os.Remove(filepath.Join(dir, fileFor(key)))
				}
			}
		}(g)
	}
	wg.Wait()
	// Force a final reconcile on both handles, then check accounting.
	for _, s := range stores {
		s.mu.Lock()
		s.rescanLocked()
		s.mu.Unlock()
		indexConsistent(t, s)
		if st := s.Stats(); st.Bytes > budget {
			t.Errorf("settled store holds %d bytes over budget %d", st.Bytes, budget)
		}
	}
}
