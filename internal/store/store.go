// Package store is a disk-backed, content-addressed result store: the
// persistence tier under the in-memory compile cache. Each entry is one
// JSON file named by the SHA-256 of its cache key, holding the key, a
// checksum, and the payload, so a restarted daemon — or a second daemon
// pointed at the same directory — serves previously compiled outcomes
// without recompiling them.
//
// The store is deliberately dumb about payloads: it moves opaque bytes.
// internal/pipeline's DiskTier adapter marshals Outcomes through it, and
// nothing else needs to agree on a schema.
//
// Durability and safety properties:
//
//   - Writes are atomic: payloads land in a temp file in the store
//     directory and are renamed into place, so a crash never leaves a
//     half-written entry and concurrent processes sharing a directory
//     never observe torn reads.
//   - Reads are integrity-checked: an entry whose embedded key does not
//     match the request (a SHA-256 prefix collision, or a file copied
//     between stores) or whose checksum does not match its payload is
//     treated as a miss, counted, and deleted.
//   - Size is bounded: when the configured byte budget is exceeded, the
//     least recently used entries (by file mtime, refreshed on every
//     hit) are garbage-collected oldest-first until the store fits.
//   - Peers are first-class: N processes may point at one directory.
//     An entry a peer garbage-collected reads as a clean miss (the
//     stale index entry is dropped, never an error), an entry a peer
//     wrote is adopted into this process's index when read, and the GC
//     re-scans the directory before evicting so the byte budget bounds
//     what is actually on disk, not just what this process wrote.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// entrySuffix names store entries; anything else in the directory is
// ignored (and "tmp-*" leftovers from a crashed writer are cleaned at
// Open).
const entrySuffix = ".json"

// envelope is the on-disk schema of one entry.
type envelope struct {
	// Key is the full cache key the entry stores, checked verbatim on
	// read so filename collisions cannot alias entries.
	Key string `json:"key"`
	// Sum is the hex SHA-256 of Payload's bytes as written.
	Sum string `json:"sum"`
	// Payload is the opaque value; the store never interprets it.
	Payload json.RawMessage `json:"payload"`
}

// Stats is a snapshot of a store's accounting.
type Stats struct {
	// Hits and Misses count Get outcomes; integrity failures are misses
	// and additionally counted in Corrupt.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Puts counts entries written (an existing entry is not rewritten).
	Puts int64 `json:"puts"`
	// Corrupt counts entries dropped on read for failing the key or
	// checksum match.
	Corrupt int64 `json:"corrupt"`
	// GCFiles and GCBytes count entries and bytes evicted to respect
	// MaxBytes.
	GCFiles int64 `json:"gc_files"`
	GCBytes int64 `json:"gc_bytes"`
	// Files and Bytes describe the resident store.
	Files int   `json:"files"`
	Bytes int64 `json:"bytes"`
	// MaxBytes is the configured bound; 0 means unbounded.
	MaxBytes int64 `json:"max_bytes"`
}

// Store is a disk-backed key→bytes map safe for concurrent use within a
// process and safe to share across processes (atomic writes; GC and
// eviction tolerate concurrent unlinks).
type Store struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	index map[string]fileState // filename → size/mtime, for GC ordering
	bytes int64
	stats Stats
}

type fileState struct {
	size  int64
	mtime time.Time
}

// Open returns a store rooted at dir, creating it if needed, scanning
// existing entries into the GC index, and removing temp files left by a
// crashed writer. maxBytes bounds the resident size (0 = unbounded).
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, index: make(map[string]fileState)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "tmp-") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if e.IsDir() || !strings.HasSuffix(name, entrySuffix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		s.index[name] = fileState{size: info.Size(), mtime: info.ModTime()}
		s.bytes += info.Size()
	}
	s.gcLocked()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// fileFor maps a key to its entry filename: a SHA-256 prefix long enough
// that collisions are astronomically unlikely — and harmless anyway,
// because reads check the embedded key.
func fileFor(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:16]) + entrySuffix
}

// Get returns the payload stored for key, if any. A present-but-corrupt
// entry (checksum or key mismatch, unparseable envelope) is deleted and
// reported as a miss.
func (s *Store) Get(key string) ([]byte, bool) {
	name := fileFor(key)
	path := filepath.Join(s.dir, name)
	raw, err := os.ReadFile(path)
	if err != nil {
		// Never written — or deleted out from under us by a peer
		// process's GC. Either way it's a clean miss; drop any stale
		// index entry so the byte accounting tracks the directory.
		s.mu.Lock()
		s.stats.Misses++
		if st, ok := s.index[name]; ok {
			s.bytes -= st.size
			delete(s.index, name)
		}
		s.mu.Unlock()
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Key != key || env.Sum != payloadSum(env.Payload) {
		s.dropCorrupt(name, path)
		return nil, false
	}
	now := time.Now()
	// Best-effort LRU touch; GC orders by mtime. The in-memory mtime
	// only advances when the touch actually landed — if the syscall
	// failed (say, a peer unlinked the file between the read and here),
	// recording `now` would protect a doomed entry from GC.
	touched := os.Chtimes(path, now, now) == nil
	s.mu.Lock()
	s.stats.Hits++
	if st, ok := s.index[name]; ok {
		if touched {
			st.mtime = now
			s.index[name] = st
		}
	} else if touched {
		// A peer process wrote this entry after we opened the store:
		// adopt it so GC accounting sees the directory's real size.
		// (touched proves the file still exists under this name.)
		s.index[name] = fileState{size: int64(len(raw)), mtime: now}
		s.bytes += int64(len(raw))
	}
	s.mu.Unlock()
	return env.Payload, true
}

// dropCorrupt removes an entry that failed integrity checks.
func (s *Store) dropCorrupt(name, path string) {
	os.Remove(path)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Misses++
	s.stats.Corrupt++
	if st, ok := s.index[name]; ok {
		s.bytes -= st.size
		delete(s.index, name)
	}
}

// Put writes payload under key, atomically, and garbage-collects if the
// store outgrew its budget. An entry already present for key is left
// untouched: keys are content addresses, so equal keys mean equal
// payloads.
func (s *Store) Put(key string, payload []byte) error {
	name := fileFor(key)
	path := filepath.Join(s.dir, name)
	s.mu.Lock()
	_, exists := s.index[name]
	s.mu.Unlock()
	if exists {
		if _, err := os.Stat(path); err == nil {
			return nil
		}
		// The index says present but the file is gone: a peer's GC
		// removed it. Drop the stale entry and write fresh below.
		s.mu.Lock()
		if st, ok := s.index[name]; ok {
			s.bytes -= st.size
			delete(s.index, name)
		}
		s.mu.Unlock()
	}
	if info, err := os.Stat(path); err == nil {
		// Another process wrote it; adopt it into the index.
		s.adopt(name, info.Size(), info.ModTime())
		return nil
	}
	env := envelope{Key: key, Sum: payloadSum(payload), Payload: payload}
	raw, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "tmp-")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	s.stats.Puts++
	// A concurrent rescan (or adopting Get) may have indexed the entry
	// between the rename and here; replace its accounting, don't stack.
	if st, ok := s.index[name]; ok {
		s.bytes -= st.size
	}
	s.index[name] = fileState{size: int64(len(raw)), mtime: time.Now()}
	s.bytes += int64(len(raw))
	s.gcLocked()
	s.mu.Unlock()
	return nil
}

// adopt records an entry written by another process.
func (s *Store) adopt(name string, size int64, mtime time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[name]; ok {
		return
	}
	s.index[name] = fileState{size: size, mtime: mtime}
	s.bytes += size
	s.gcLocked()
}

// rescanLocked reconciles the index with the directory: entries written
// by peer processes are adopted and entries they removed are dropped, so
// GC decisions are made against the directory's true occupancy rather
// than this process's write history. In-memory mtimes are kept when
// fresher (they carry LRU touches). Called with s.mu held.
func (s *Store) rescanLocked() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	seen := make(map[string]struct{}, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, entrySuffix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // unlinked mid-scan by a peer
		}
		seen[name] = struct{}{}
		if st, ok := s.index[name]; ok {
			if st.size != info.Size() {
				s.bytes += info.Size() - st.size
				st.size = info.Size()
			}
			if info.ModTime().After(st.mtime) {
				st.mtime = info.ModTime()
			}
			s.index[name] = st
			continue
		}
		s.index[name] = fileState{size: info.Size(), mtime: info.ModTime()}
		s.bytes += info.Size()
	}
	for name, st := range s.index {
		if _, ok := seen[name]; !ok {
			s.bytes -= st.size
			delete(s.index, name)
		}
	}
}

// gcLocked evicts least-recently-used entries (oldest mtime first) until
// the store fits its byte budget. The directory is re-scanned first so
// peer processes' writes count against the budget — without that, N
// daemons sharing one directory would each stay under budget while the
// directory grows N-fold. Called with s.mu held. Unlink races with other
// processes are tolerated: the accounting drops the entry either way.
func (s *Store) gcLocked() {
	if s.maxBytes <= 0 {
		return
	}
	s.rescanLocked()
	if s.bytes <= s.maxBytes {
		return
	}
	type aged struct {
		name string
		fileState
	}
	order := make([]aged, 0, len(s.index))
	for name, st := range s.index {
		order = append(order, aged{name, st})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].mtime.Before(order[j].mtime) })
	for _, e := range order {
		if s.bytes <= s.maxBytes {
			break
		}
		os.Remove(filepath.Join(s.dir, e.name))
		delete(s.index, e.name)
		s.bytes -= e.size
		s.stats.GCFiles++
		s.stats.GCBytes += e.size
	}
}

// Stats returns a snapshot of the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Files = len(s.index)
	st.Bytes = s.bytes
	st.MaxBytes = s.maxBytes
	return st
}

// payloadSum is the hex SHA-256 of payload as written.
func payloadSum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}
