package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRoundTrip: a put is readable back, byte-identical, and counted.
func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"fidelity":0.5,"stages":3}`)
	if err := s.Put("QFT-6/with-storage/1aod", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("QFT-6/with-storage/1aod")
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
	if _, ok := s.Get("QFT-8/with-storage/1aod"); ok {
		t.Error("Get of an unwritten key reported a hit")
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 || st.Files != 1 {
		t.Errorf("stats = %+v, want 1 put / 1 hit / 1 miss / 1 file", st)
	}
}

// TestRestartReadThrough: a fresh Store over the same directory serves
// entries written by a previous one — the property that makes compile
// caches survive daemon restarts.
func TestRestartReadThrough(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("key-a", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("key-a")
	if !ok || string(got) != `{"v":1}` {
		t.Fatalf("restarted store Get = %q, %v", got, ok)
	}
	if st := s2.Stats(); st.Files != 1 || st.Bytes == 0 {
		t.Errorf("restarted store did not index existing entries: %+v", st)
	}
}

// TestIntegrity: a corrupted entry and an entry whose embedded key does
// not match the request are both misses, counted, and removed.
func TestIntegrity(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-a", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}

	// Flip payload bytes on disk without updating the checksum.
	path := filepath.Join(dir, fileFor("key-a"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(raw), `{"v":1}`, `{"v":9}`, 1)
	if tampered == string(raw) {
		t.Fatal("test setup: payload not found in envelope")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("key-a"); ok {
		t.Error("tampered entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("tampered entry not deleted")
	}

	// A valid envelope filed under the wrong name (key mismatch).
	if err := s.Put("key-b", []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	misfiled := filepath.Join(dir, fileFor("key-c"))
	src, err := os.ReadFile(filepath.Join(dir, fileFor("key-b")))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(misfiled, src, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("key-c"); ok {
		t.Error("entry with mismatched embedded key served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 2 {
		t.Errorf("Corrupt = %d, want 2", st.Corrupt)
	}
}

// TestGC: exceeding the byte budget evicts oldest-mtime entries first,
// and a Get refreshes an entry's position in the LRU order.
func TestGC(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`{"pad":"` + strings.Repeat("x", 200) + `"}`)
	entryBytes := int64(0)

	s, err := Open(dir, 1<<20) // no GC while seeding
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so LRU order is well defined even on coarse
		// filesystem timestamps.
		old := time.Now().Add(time.Duration(i-10) * time.Hour)
		os.Chtimes(filepath.Join(dir, fileFor(fmt.Sprintf("key-%d", i))), old, old)
	}
	entryBytes = s.Stats().Bytes / 4

	// Reopen with a budget of ~2 entries: the two oldest must go.
	s2, err := Open(dir, 2*entryBytes+entryBytes/2)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Files != 2 || st.GCFiles != 2 {
		t.Fatalf("after GC: %+v, want 2 resident / 2 evicted", st)
	}
	if _, ok := s2.Get("key-0"); ok {
		t.Error("oldest entry survived GC")
	}
	if _, ok := s2.Get("key-3"); !ok {
		t.Error("newest entry evicted")
	}

	// Touch key-2 via Get, then overflow: key-2 must survive over an
	// untouched older sibling... seed two more to force eviction.
	if _, ok := s2.Get("key-2"); !ok {
		t.Fatal("key-2 missing before touch test")
	}
	if err := s2.Put("key-4", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("key-2"); !ok {
		t.Error("recently touched entry was evicted before older ones")
	}
}

// TestTempCleanup: leftover tmp- files from a crashed writer are removed
// at Open and never counted as entries.
func TestTempCleanup(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "tmp-123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Files != 0 || st.Bytes != 0 {
		t.Errorf("temp file counted as an entry: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "tmp-123")); !os.IsNotExist(err) {
		t.Error("temp file not cleaned at Open")
	}
}

// TestConcurrent hammers one store from many goroutines; run with -race.
func TestConcurrent(t *testing.T) {
	s, err := Open(t.TempDir(), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key-%d", i%20)
				if i%3 == 0 {
					s.Put(key, []byte(fmt.Sprintf(`{"v":%d}`, i%20)))
				} else {
					s.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Puts == 0 {
		t.Errorf("no puts recorded: %+v", st)
	}
}
