// Package trace records the timeline of a simulated execution under the
// duration model of Sec. 2.1 of the paper: one event per instruction with
// its start time, duration, and the qubits involved.
// Traces serialize to JSON for external tooling and render as an ASCII
// Gantt chart for quick inspection (cmd/powermove -trace).
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Kind classifies an event by the instruction that produced it.
type Kind string

// The event kinds, one per instruction type.
const (
	KindOneQ    Kind = "1q-layer"
	KindMove    Kind = "move-batch"
	KindRydberg Kind = "rydberg"
)

// Event is one instruction's execution window.
type Event struct {
	// Index is the instruction index in the program.
	Index int `json:"index"`
	// Kind classifies the instruction.
	Kind Kind `json:"kind"`
	// Start and Duration are in microseconds from program start.
	Start    float64 `json:"start_us"`
	Duration float64 `json:"duration_us"`
	// Qubits are the qubits the instruction operates on (moved qubits
	// for a batch, interacting qubits for a pulse, empty for a 1Q
	// layer, which addresses the whole plane).
	Qubits []int `json:"qubits,omitempty"`
	// Detail is a short human-readable annotation.
	Detail string `json:"detail,omitempty"`
}

// End returns the event's end time in microseconds.
func (e Event) End() float64 { return e.Start + e.Duration }

// Trace is the full timeline of one execution.
type Trace struct {
	// Program and Qubits echo the executed program's identity.
	Program string `json:"program"`
	Qubits  int    `json:"qubits"`
	// Events are in execution order.
	Events []Event `json:"events"`
}

// Add appends an event; the executor calls it once per instruction.
func (t *Trace) Add(e Event) { t.Events = append(t.Events, e) }

// Span returns the total timeline length in microseconds.
func (t *Trace) Span() float64 {
	end := 0.0
	for _, e := range t.Events {
		if e.End() > end {
			end = e.End()
		}
	}
	return end
}

// JSON serializes the trace with indentation.
func (t *Trace) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// ParseJSON inverts JSON.
func ParseJSON(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &t, nil
}

// ByKind returns the summed duration per event kind.
func (t *Trace) ByKind() map[Kind]float64 {
	out := make(map[Kind]float64)
	for _, e := range t.Events {
		out[e.Kind] += e.Duration
	}
	return out
}

// Gantt renders the timeline as an ASCII chart with one row per event
// kind, width columns wide. Each cell shows whether an event of that kind
// is active in the corresponding time slice ('#') or not ('.'); the time
// axis is annotated in microseconds.
func (t *Trace) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	span := t.Span()
	if span == 0 {
		return "(empty trace)\n"
	}
	kinds := []Kind{KindOneQ, KindMove, KindRydberg}
	rows := make(map[Kind][]byte, len(kinds))
	for _, k := range kinds {
		rows[k] = []byte(strings.Repeat(".", width))
	}
	for _, e := range t.Events {
		row, ok := rows[e.Kind]
		if !ok {
			continue
		}
		lo := int(e.Start / span * float64(width))
		hi := int(e.End() / span * float64(width))
		if hi <= lo {
			hi = lo + 1
		}
		for i := lo; i < hi && i < width; i++ {
			row[i] = '#'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d qubits, %d events, %.1f us\n", t.Program, t.Qubits, len(t.Events), span)
	label := map[Kind]string{KindOneQ: "1q     ", KindMove: "move   ", KindRydberg: "rydberg"}
	for _, k := range kinds {
		fmt.Fprintf(&b, "%s |%s|\n", label[k], rows[k])
	}
	fmt.Fprintf(&b, "        0%sus %.1f\n", strings.Repeat(" ", width-len(fmt.Sprintf("us %.1f", span))), span)
	return b.String()
}

// Busiest returns the qubits sorted by total event participation time,
// most-involved first. Useful for spotting routing hotspots.
func (t *Trace) Busiest() []int {
	total := make(map[int]float64)
	for _, e := range t.Events {
		for _, q := range e.Qubits {
			total[q] += e.Duration
		}
	}
	out := make([]int, 0, len(total))
	for q := range total {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool {
		if total[out[i]] != total[out[j]] {
			return total[out[i]] > total[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
