package trace

import (
	"math"
	"strings"
	"testing"
)

func sample() *Trace {
	t := &Trace{Program: "demo", Qubits: 4}
	t.Add(Event{Index: 0, Kind: KindOneQ, Start: 0, Duration: 1})
	t.Add(Event{Index: 1, Kind: KindMove, Start: 1, Duration: 100, Qubits: []int{0, 1}})
	t.Add(Event{Index: 2, Kind: KindRydberg, Start: 101, Duration: 0.27, Qubits: []int{0, 1}})
	t.Add(Event{Index: 3, Kind: KindMove, Start: 101.27, Duration: 50, Qubits: []int{1}})
	return t
}

func TestSpan(t *testing.T) {
	tr := sample()
	if got := tr.Span(); math.Abs(got-151.27) > 1e-9 {
		t.Errorf("Span = %v, want 151.27", got)
	}
	if got := (&Trace{}).Span(); got != 0 {
		t.Errorf("empty span = %v", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sample()
	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Program != tr.Program || back.Qubits != tr.Qubits || len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for i := range tr.Events {
		if back.Events[i].Kind != tr.Events[i].Kind || back.Events[i].Start != tr.Events[i].Start {
			t.Fatalf("event %d differs", i)
		}
	}
	if _, err := ParseJSON([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestByKind(t *testing.T) {
	totals := sample().ByKind()
	if totals[KindMove] != 150 {
		t.Errorf("move total = %v, want 150", totals[KindMove])
	}
	if totals[KindOneQ] != 1 {
		t.Errorf("1q total = %v, want 1", totals[KindOneQ])
	}
}

func TestGantt(t *testing.T) {
	out := sample().Gantt(40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header, three rows, axis
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "demo") || !strings.Contains(lines[0], "151.3 us") {
		t.Errorf("header = %q", lines[0])
	}
	moveRow := lines[2]
	if !strings.Contains(moveRow, "#") {
		t.Errorf("move row has no activity: %q", moveRow)
	}
	// The 1q layer is a sliver at t=0: its cell is the first column.
	oneQRow := lines[1]
	if !strings.Contains(oneQRow, "#") {
		t.Errorf("1q row has no activity: %q", oneQRow)
	}
	if got := (&Trace{}).Gantt(40); got != "(empty trace)\n" {
		t.Errorf("empty gantt = %q", got)
	}
	// Tiny widths are clamped rather than crashing.
	if out := sample().Gantt(1); !strings.Contains(out, "|") {
		t.Error("clamped width render failed")
	}
}

func TestBusiest(t *testing.T) {
	got := sample().Busiest()
	if len(got) != 2 {
		t.Fatalf("Busiest = %v, want 2 qubits", got)
	}
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("Busiest = %v, want [1 0] (qubit 1 in both moves)", got)
	}
}
