// Batched verification: AllBatch runs the full checker suite over a
// whole corpus, simulating every deferred state-vector case through the
// statevec batch engine instead of one independent simulation per item.
// The structural and physical checkers are untouched — only the oracle
// tier batches — and verdicts are bit-identical to calling All per item,
// because the batch kernels are bit-identical to the single-state ones
// and every case keeps its own seeded start state.
package verify

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"powermove/internal/circuit"
	"powermove/internal/isa"
	"powermove/internal/layout"
	"powermove/internal/statevec"
)

// Item is one verification job: the source circuit, the compiled
// program, and the initial layout the program starts from.
type Item struct {
	Circ    *circuit.Circuit
	Prog    *isa.Program
	Initial *layout.Layout
}

// BatchOptions tunes AllBatch.
type BatchOptions struct {
	// Workers bounds the goroutines the batched simulations use;
	// 0 falls back to the statevec package default.
	Workers int
}

// maxBatchAmps caps the amplitude buffer of one Batch run (2^24
// complex128 = 256 MiB): corpora whose combined state exceeds it are
// simulated in successive chunks rather than one giant allocation.
const maxBatchAmps = 1 << 24

// AllBatch verifies every item — physical legality, structural
// equivalence, and the state-vector oracle — and returns one report per
// item plus the aggregate oracle accounting. Oracle cases are grouped
// by register size and simulated as shared Batch runs; each report's
// verdict and violations are identical to All(item...), with per-item
// Oracle stats attached (per-item ElapsedNS stays zero — wall-clock
// lives on the aggregate, which in-process consumers read).
func AllBatch(items []Item, opts BatchOptions) ([]*Report, OracleStats) {
	reports := make([]*Report, len(items))
	type pending struct {
		idx int
		c   *oracleCase
	}
	byQubits := make(map[int][]pending)
	for i, it := range items {
		r := CheckPhysical(it.Prog, it.Initial)
		eq := &Report{}
		if c := checkEquivalenceStructural(eq, it.Circ, it.Prog); c != nil {
			byQubits[c.n] = append(byQubits[c.n], pending{i, c})
		}
		r.merge(eq)
		reports[i] = r
	}

	var agg OracleStats
	start := time.Now()
	sizes := make([]int, 0, len(byQubits))
	for n := range byQubits {
		sizes = append(sizes, n)
	}
	sort.Ints(sizes) // deterministic run order (stats are order-free anyway)
	for _, n := range sizes {
		cases := byQubits[n]
		// Chunk so one run's buffer stays under maxBatchAmps (every case
		// needs two states of 2^n amplitudes; at n = MaxOracleQubits a
		// chunk is a single case).
		perChunk := maxBatchAmps / (2 << uint(n))
		if perChunk < 1 {
			perChunk = 1
		}
		for lo := 0; lo < len(cases); lo += perChunk {
			hi := lo + perChunk
			if hi > len(cases) {
				hi = len(cases)
			}
			chunk := cases[lo:hi]
			b := statevec.NewBatch(statevec.BatchConfig{
				Qubits:  n,
				States:  2 * len(chunk),
				Workers: opts.Workers,
			})
			// Fill reference slots from each case's own seed (bit-identical
			// to the standalone oracle's NewRandom) and copy into the
			// compiled slots. Slots are disjoint, so filling parallelizes
			// over cases.
			fillers := opts.Workers
			if fillers <= 0 {
				fillers = statevec.Parallelism()
			}
			if fillers > len(chunk) {
				fillers = len(chunk)
			}
			var wg sync.WaitGroup
			for w := 0; w < fillers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for j := w; j < len(chunk); j += fillers {
						rng := rand.New(rand.NewSource(chunk[j].c.seed))
						b.State(2 * j).Randomize(rng)
						b.State(2*j + 1).CopyFrom(b.State(2 * j))
					}
				}(w)
			}
			wg.Wait()
			// Each case's programs were compiled once at construction; the
			// plans are read-only, so interleaving shares them with the
			// standalone path (run) and across chunks.
			plans := make([]*statevec.Plan, 2*len(chunk))
			for j, p := range chunk {
				plans[2*j] = p.c.srcPlan
				plans[2*j+1] = p.c.cmpPlan
			}
			b.RunPlans(plans)
			for j, p := range chunk {
				compareOracle(reports[p.idx], b.State(2*j), b.State(2*j+1))
				st := p.c.stats()
				if reports[p.idx].Oracle == nil {
					reports[p.idx].Oracle = &OracleStats{}
				}
				reports[p.idx].Oracle.accumulate(st)
				agg.accumulate(st)
			}
		}
	}
	agg.ElapsedNS = time.Since(start).Nanoseconds()
	return reports, agg
}
