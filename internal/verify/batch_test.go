package verify

import (
	"testing"

	"powermove/internal/workload"
)

// TestAllBatchMatchesAll is the batched oracle's agreement theorem in
// deterministic form (the fuzz harness asserts the same property on
// everything it explores): over a corpus mixing register sizes, oracle
// tiers, clean compiles, and deliberately broken pairings, AllBatch
// must reproduce All's reports exactly — violations, equivalence mode,
// and oracle accounting — and its aggregate stats must be the sum of
// the per-item ones.
func TestAllBatchMatchesAll(t *testing.T) {
	var items []Item
	add := func(it Item) { items = append(items, it) }

	// Clean compiles across sizes and schemes (statevec tier).
	for _, n := range []int{6, 10, 12} {
		cfg := workload.RandomConfig{Qubits: n, Blocks: 3, Density: 0.4}
		c := workload.Random(cfg, int64(n))
		res := compile(t, c, "with-storage", 1)
		add(Item{Circ: c, Prog: res.Program, Initial: res.Initial})
	}
	// Same register size twice — these share one Batch run.
	{
		c := workload.QFT(9)
		res := compile(t, c, "enola", 1)
		add(Item{Circ: c, Prog: res.Program, Initial: res.Initial})
		c2 := workload.BV(9, 5)
		res2 := compile(t, c2, "non-storage", 1)
		add(Item{Circ: c2, Prog: res2.Program, Initial: res2.Initial})
	}
	// Structural tier: above MaxOracleQubits, no simulation, no Oracle
	// stats.
	{
		cfg := workload.RandomConfig{Qubits: MaxOracleQubits + 1, Blocks: 2, Density: 0.05}
		c := workload.Random(cfg, 99)
		res := compile(t, c, "non-storage", 1)
		add(Item{Circ: c, Prog: res.Program, Initial: res.Initial})
	}
	// Broken pairings: two different 8-qubit circuits with their
	// programs swapped — the oracle must convict both, identically in
	// both paths.
	{
		ca := workload.Random(workload.RandomConfig{Qubits: 8, Blocks: 3, Density: 0.5}, 1)
		cb := workload.Random(workload.RandomConfig{Qubits: 8, Blocks: 3, Density: 0.5}, 2)
		ra := compile(t, ca, "with-storage", 1)
		rb := compile(t, cb, "with-storage", 1)
		add(Item{Circ: ca, Prog: rb.Program, Initial: rb.Initial})
		add(Item{Circ: cb, Prog: ra.Program, Initial: ra.Initial})
	}
	// Nil program: reported structurally, no oracle case.
	add(Item{Circ: workload.QFT(5), Prog: nil, Initial: nil})

	batched, agg := AllBatch(items, BatchOptions{})
	if len(batched) != len(items) {
		t.Fatalf("AllBatch returned %d reports for %d items", len(batched), len(items))
	}
	var want OracleStats
	sawViolations, sawStructural := false, false
	for i, it := range items {
		r := All(it.Circ, it.Prog, it.Initial)
		rb := batched[i]
		if len(rb.Violations) != len(r.Violations) {
			t.Fatalf("item %d: batched %d violation(s), per-item %d:\nbatched: %s\nper-item: %s",
				i, len(rb.Violations), len(r.Violations), rb, r)
		}
		for j, v := range r.Violations {
			bv := rb.Violations[j]
			if bv.Code != v.Code || bv.Instr != v.Instr || bv.Detail != v.Detail {
				t.Errorf("item %d violation %d differs:\nbatched: %s\nper-item: %s", i, j, bv, v)
			}
		}
		if rb.EquivalenceMode != r.EquivalenceMode {
			t.Errorf("item %d: batched mode %q, per-item %q", i, rb.EquivalenceMode, r.EquivalenceMode)
		}
		if rb.OK() != r.OK() {
			t.Errorf("item %d: batched OK=%v, per-item OK=%v", i, rb.OK(), r.OK())
		}
		if (r.Oracle == nil) != (rb.Oracle == nil) {
			t.Fatalf("item %d: oracle stats presence differs (batched %+v, per-item %+v)", i, rb.Oracle, r.Oracle)
		}
		if r.Oracle != nil {
			if rb.Oracle.States != r.Oracle.States || rb.Oracle.Amps != r.Oracle.Amps ||
				rb.Oracle.GatesIn != r.Oracle.GatesIn || rb.Oracle.GatesApplied != r.Oracle.GatesApplied {
				t.Errorf("item %d: oracle stats differ (batched %+v, per-item %+v)", i, rb.Oracle, r.Oracle)
			}
			if rb.Oracle.ElapsedNS != 0 {
				t.Errorf("item %d: batched per-item ElapsedNS = %d, want 0 (wall clock lives on the aggregate)", i, rb.Oracle.ElapsedNS)
			}
			want.Add(*rb.Oracle)
		}
		if !r.OK() {
			sawViolations = true
		}
		if r.EquivalenceMode == "structural" {
			sawStructural = true
		}
	}
	if !sawViolations {
		t.Error("corpus produced no violations — the broken pairings should convict")
	}
	if !sawStructural {
		t.Error("corpus exercised no structural-tier item")
	}
	if agg.States != want.States || agg.Amps != want.Amps ||
		agg.GatesIn != want.GatesIn || agg.GatesApplied != want.GatesApplied {
		t.Errorf("aggregate stats %+v are not the sum of per-item stats %+v", agg, want)
	}
	if agg.States == 0 {
		t.Error("aggregate counted no simulated states")
	}
}

// TestAllBatchWorkersAgree pins the batched verdicts worker-independent:
// every Workers setting must produce identical reports (the kernels are
// bit-identical under any tiling).
func TestAllBatchWorkersAgree(t *testing.T) {
	var items []Item
	for seed := int64(0); seed < 4; seed++ {
		cfg := workload.RandomConfig{Qubits: 10, Blocks: 3, Density: 0.5}
		c := workload.Random(cfg, seed)
		res := compile(t, c, "with-storage", 1)
		items = append(items, Item{Circ: c, Prog: res.Program, Initial: res.Initial})
	}
	ref, refAgg := AllBatch(items, BatchOptions{Workers: 1})
	for _, workers := range []int{0, 2, 8} {
		got, agg := AllBatch(items, BatchOptions{Workers: workers})
		for i := range items {
			if got[i].String() != ref[i].String() {
				t.Errorf("workers=%d item %d: report differs:\n%s\nvs workers=1:\n%s", workers, i, got[i], ref[i])
			}
		}
		if agg.States != refAgg.States || agg.Amps != refAgg.Amps ||
			agg.GatesIn != refAgg.GatesIn || agg.GatesApplied != refAgg.GatesApplied {
			t.Errorf("workers=%d: aggregate %+v differs from workers=1 %+v", workers, agg, refAgg)
		}
	}
}
