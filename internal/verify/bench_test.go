package verify

import (
	"math/rand"
	"sync"
	"testing"

	"powermove/internal/compiler"
	"powermove/internal/statevec"
	"powermove/internal/workload"
)

// The oracle-sweep benchmark corpus: a miniature verification sweep
// (three schemes x seven seeds, like cmd/experiments -verify) compiled
// once and reused across sub-benchmarks. 16-qubit registers are large
// enough that the oracle dominates and small enough that the unfused
// baseline still finishes.
var (
	sweepOnce  sync.Once
	sweepItems []Item
)

func sweepCorpus(b *testing.B) []Item {
	sweepOnce.Do(func() {
		for seed := int64(1); seed <= 7; seed++ {
			cfg := workload.RandomConfig{Qubits: 16, Blocks: 4, Density: 0.4}
			circ := workload.Random(cfg, seed)
			hw := workload.RandomArch(cfg.Qubits, seed)
			for scheme := 0; scheme < 3; scheme++ {
				var (
					p   *compiler.Pipeline
					err error
				)
				switch scheme {
				case 0:
					p, err = compiler.Enola(compiler.EnolaConfig{Seed: seed})
				case 1:
					p, err = compiler.Zoned(compiler.ZonedConfig{UseStorage: false})
				default:
					p, err = compiler.Zoned(compiler.ZonedConfig{UseStorage: true})
				}
				if err != nil {
					panic(err)
				}
				res, err := p.Run(circ, hw)
				if err != nil {
					panic(err)
				}
				sweepItems = append(sweepItems, Item{Circ: circ, Prog: res.Program, Initial: res.Initial})
			}
		}
	})
	return sweepItems
}

// legacyVerify preserves the pre-batch oracle as the benchmark baseline:
// the full per-item checker suite with a gate-by-gate (unfused,
// unbatched) state-vector simulation — exactly what All did before gate
// fusion and the batch engine. Its verdicts still agree with the modern
// paths (fusion and batching are bit-identical), which the differential
// tests assert; here it exists only to be raced against.
func legacyVerify(it Item) *Report {
	r := CheckPhysical(it.Prog, it.Initial)
	eq := &Report{}
	if c := checkEquivalenceStructural(eq, it.Circ, it.Prog); c != nil {
		rng := rand.New(rand.NewSource(c.seed))
		ref := statevec.NewRandom(c.n, rng)
		got := ref.Clone()
		for bi := range it.Circ.Blocks {
			for _, g := range it.Circ.Blocks[bi].Gates {
				ref.CZ(g.A, g.B)
			}
		}
		for _, g := range compiledCZOrder(it.Prog) {
			got.CZ(g.A, g.B)
		}
		compareOracle(eq, ref, got)
	}
	r.merge(eq)
	return r
}

// BenchmarkOracleSweep measures a full verification sweep three ways:
// the historical per-state unfused oracle (baseline), the fused
// standalone oracle (All per item), and the batched engine (AllBatch).
// The batched/baseline ratio is the acceptance evidence for the oracle
// rework; benchgate pins all three so neither path regresses silently.
func BenchmarkOracleSweep(b *testing.B) {
	items := sweepCorpus(b)
	b.Run("unfused-perstate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, it := range items {
				if r := legacyVerify(it); !r.OK() {
					b.Fatalf("sweep item failed verification:\n%s", r)
				}
			}
		}
	})
	b.Run("fused-perstate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, it := range items {
				if r := All(it.Circ, it.Prog, it.Initial); !r.OK() {
					b.Fatalf("sweep item failed verification:\n%s", r)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reports, _ := AllBatch(items, BatchOptions{})
			for _, r := range reports {
				if !r.OK() {
					b.Fatalf("sweep item failed verification:\n%s", r)
				}
			}
		}
	})
}
