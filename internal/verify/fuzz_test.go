package verify

import (
	"reflect"
	"testing"

	"powermove/internal/compiler"
	"powermove/internal/workload"
)

// FuzzCompileVerify is the subsystem's fuzzing harness: it maps the
// fuzzer's raw inputs onto a seeded random circuit (internal/workload's
// generator layer), a randomized architecture, and a pipeline
// configuration, compiles, and demands the result verifies clean under
// the physical legality checker and the semantic equivalence oracle.
// Any violation is a real compiler bug: the generated circuits always
// validate and the architectures always have capacity, so compilation
// must succeed and the product must be legal and equivalent.
//
// The committed seed corpus (testdata/fuzz/FuzzCompileVerify) pins one
// input per pipeline x grouping x AOD shape, plus one per register size
// of the >18-qubit oracle tier (19..22, the fused batched path); `go
// test` replays it on every run, and CI's fuzz job explores beyond it.
//
// Every execution also runs the batched oracle (AllBatch) over the same
// compile and demands verdict agreement with the per-item path — the
// two must produce identical violations, because the batch kernels are
// bit-identical to the single-state ones.
func FuzzCompileVerify(f *testing.F) {
	//            seed  qubits blocks density scheme aods grouping
	f.Add(int64(1), int64(8), int64(3), int64(30), int64(0), int64(1), int64(0))
	f.Add(int64(2), int64(10), int64(4), int64(50), int64(1), int64(1), int64(0))
	f.Add(int64(3), int64(12), int64(5), int64(20), int64(2), int64(2), int64(1))
	f.Add(int64(4), int64(6), int64(2), int64(80), int64(2), int64(4), int64(2))
	f.Add(int64(5), int64(2), int64(1), int64(99), int64(1), int64(3), int64(1))
	f.Add(int64(6), int64(14), int64(6), int64(10), int64(0), int64(1), int64(0))
	// The deep-oracle tier: qubits = 15, 31, 47, 63 select registers of
	// 19, 20, 21, and 22 qubits (see the mapping below) — the sizes the
	// unfused oracle could never afford. Densities are kept low so the
	// compiles stay cheap; the oracle cost is dominated by the register.
	f.Add(int64(7), int64(15), int64(1), int64(5), int64(1), int64(1), int64(0))
	f.Add(int64(8), int64(31), int64(1), int64(8), int64(2), int64(2), int64(1))
	f.Add(int64(9), int64(47), int64(0), int64(6), int64(0), int64(1), int64(0))
	f.Add(int64(10), int64(63), int64(0), int64(4), int64(2), int64(1), int64(2))
	f.Fuzz(func(t *testing.T, seed, qubits, blocks, density, scheme, aods, grouping int64) {
		// 15 of every 16 inputs land in 2..14 (cheap, dense coverage);
		// the 16th lands in 19..22, exercising the deep oracle tier on
		// multi-MB registers.
		q := abs(qubits)
		n := 2 + q%13
		if q%16 == 15 {
			n = 19 + (q/16)%4
			if raceEnabled {
				// Race shadow memory makes 2^21+-amplitude simulations
				// prohibitively slow; keep the deep tier but cap it at
				// 20 qubits so -race runs stay in budget.
				n = 19 + (q/16)%2
			}
		}
		cfg := workload.RandomConfig{
			Qubits:  n,
			Blocks:  1 + abs(blocks)%6, // 1..6 dependent blocks
			Density: 0.05 + float64(abs(density)%100)/110.0,
		}
		circ := workload.Random(cfg, seed)
		hw := workload.RandomArch(cfg.Qubits, seed)
		// The fuzzer also steers the AOD count directly; AODs is a plain
		// capacity field with no derived caches, so mutation is safe.
		hw.AODs = 1 + abs(aods)%4

		var (
			p   *compiler.Pipeline
			err error
		)
		switch abs(scheme) % 3 {
		case 0:
			hw.AODs = 1 // the baseline is single-AOD
			p, err = compiler.Enola(compiler.EnolaConfig{Seed: seed})
		case 1:
			p, err = compiler.Zoned(compiler.ZonedConfig{
				UseStorage: false,
				Grouping:   groupingName(grouping),
			})
		default:
			p, err = compiler.Zoned(compiler.ZonedConfig{
				UseStorage: true,
				Grouping:   groupingName(grouping),
			})
		}
		if err != nil {
			t.Fatalf("pipeline construction: %v", err)
		}
		res, err := p.Run(circ, hw)
		if err != nil {
			t.Fatalf("compile %s: %v", circ.Name, err)
		}
		r := All(circ, res.Program, res.Initial)
		batched, _ := AllBatch([]Item{{Circ: circ, Prog: res.Program, Initial: res.Initial}}, BatchOptions{})
		rb := batched[0]
		// Verdict agreement between the per-item and batched oracle
		// paths: identical violations (the amplitudes are bit-identical,
		// so even the rendered details must coincide) and mode.
		if len(rb.Violations) != len(r.Violations) {
			t.Fatalf("batched oracle found %d violation(s), per-item %d:\nbatched: %s\nper-item: %s",
				len(rb.Violations), len(r.Violations), rb, r)
		}
		for i, v := range r.Violations {
			bv := rb.Violations[i]
			if bv.Code != v.Code || bv.Instr != v.Instr || bv.Detail != v.Detail {
				t.Fatalf("batched violation %d differs:\nbatched: %s\nper-item: %s", i, bv, v)
			}
		}
		if rb.EquivalenceMode != r.EquivalenceMode {
			t.Fatalf("batched oracle mode %q, per-item %q", rb.EquivalenceMode, r.EquivalenceMode)
		}
		if (r.Oracle == nil) != (rb.Oracle == nil) {
			t.Fatalf("oracle accounting presence differs: batched %+v, per-item %+v", rb.Oracle, r.Oracle)
		}
		if r.Oracle != nil {
			if rb.Oracle.States != r.Oracle.States || rb.Oracle.Amps != r.Oracle.Amps ||
				rb.Oracle.GatesIn != r.Oracle.GatesIn || rb.Oracle.GatesApplied != r.Oracle.GatesApplied ||
				rb.Oracle.SweepPassesSaved != r.Oracle.SweepPassesSaved {
				t.Fatalf("oracle accounting differs: batched %+v, per-item %+v", rb.Oracle, r.Oracle)
			}
		}
		// The segmented oracle must agree with the pre-fusion gate-by-gate
		// reference on the verdict: folding reorders only exact sign flips
		// here, so any disagreement is a segment-executor bug.
		if legacy := legacyVerify(Item{Circ: circ, Prog: res.Program, Initial: res.Initial}); legacy.OK() != r.OK() {
			t.Fatalf("legacy oracle verdict %v, segmented %v:\nlegacy: %s\nsegmented: %s",
				legacy.OK(), r.OK(), legacy, r)
		}
		if !r.OK() {
			t.Fatalf("compile %s (%d AODs) produced an illegal or inequivalent program:\n%s",
				circ.Name, hw.AODs, r)
		}

		// Mutate-and-recompile mode: for resumable pipelines, capture
		// per-block checkpoints, perturb the last block, and demand the
		// incremental recompile (resume from the deepest shared
		// checkpoint) is byte-identical to a cold compile of the mutated
		// circuit — and still verifies clean.
		if p.Resumable() && len(circ.Blocks) >= 2 {
			var cps []compiler.Checkpoint
			if _, err := p.RunOpts(circ, hw, compiler.RunOptions{
				Capture: func(cp compiler.Checkpoint) { cps = append(cps, cp) },
			}); err != nil {
				t.Fatalf("captured recompile of %s: %v", circ.Name, err)
			}
			mut := circ.Clone()
			last := &mut.Blocks[len(mut.Blocks)-1]
			if len(last.Gates) > 0 {
				last.Gates = last.Gates[:len(last.Gates)-1]
			} else {
				last.OneQ++
			}
			cold, err := p.Run(mut, hw)
			if err != nil {
				t.Fatalf("cold compile of mutated %s: %v", circ.Name, err)
			}
			inc, err := p.RunOpts(mut, hw, compiler.RunOptions{Resume: &cps[len(cps)-2]})
			if err != nil {
				t.Fatalf("incremental recompile of mutated %s: %v", circ.Name, err)
			}
			if !reflect.DeepEqual(inc.Program.Instr, cold.Program.Instr) {
				t.Fatalf("incremental recompile of %s diverged from the cold compile", circ.Name)
			}
			for q := 0; q < mut.Qubits; q++ {
				if inc.Initial.SiteOf(q) != cold.Initial.SiteOf(q) {
					t.Fatalf("incremental recompile of %s moved qubit %d's initial placement", circ.Name, q)
				}
			}
			if ri := All(mut, inc.Program, inc.Initial); !ri.OK() {
				t.Fatalf("incremental recompile of %s failed verification:\n%s", circ.Name, ri)
			}
		}
	})
}

func abs(v int64) int {
	if v < 0 {
		v = -v
	}
	if v < 0 {
		return 0 // MinInt64
	}
	return int(v)
}

// groupingName maps a fuzz input onto the grouping registry.
func groupingName(v int64) string {
	names := compiler.GroupingNames()
	return names[abs(v)%len(names)]
}
