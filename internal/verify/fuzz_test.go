package verify

import (
	"testing"

	"powermove/internal/compiler"
	"powermove/internal/workload"
)

// FuzzCompileVerify is the subsystem's fuzzing harness: it maps the
// fuzzer's raw inputs onto a seeded random circuit (internal/workload's
// generator layer), a randomized architecture, and a pipeline
// configuration, compiles, and demands the result verifies clean under
// the physical legality checker and the semantic equivalence oracle.
// Any violation is a real compiler bug: the generated circuits always
// validate and the architectures always have capacity, so compilation
// must succeed and the product must be legal and equivalent.
//
// The committed seed corpus (testdata/fuzz/FuzzCompileVerify) pins one
// input per pipeline x grouping x AOD shape; `go test` replays it on
// every run, and CI's fuzz job explores beyond it.
func FuzzCompileVerify(f *testing.F) {
	//            seed  qubits blocks density scheme aods grouping
	f.Add(int64(1), int64(8), int64(3), int64(30), int64(0), int64(1), int64(0))
	f.Add(int64(2), int64(10), int64(4), int64(50), int64(1), int64(1), int64(0))
	f.Add(int64(3), int64(12), int64(5), int64(20), int64(2), int64(2), int64(1))
	f.Add(int64(4), int64(6), int64(2), int64(80), int64(2), int64(4), int64(2))
	f.Add(int64(5), int64(2), int64(1), int64(99), int64(1), int64(3), int64(1))
	f.Add(int64(6), int64(14), int64(6), int64(10), int64(0), int64(1), int64(0))
	f.Fuzz(func(t *testing.T, seed, qubits, blocks, density, scheme, aods, grouping int64) {
		cfg := workload.RandomConfig{
			Qubits:  2 + abs(qubits)%13, // 2..14: statevec oracle always applies
			Blocks:  1 + abs(blocks)%6,  // 1..6 dependent blocks
			Density: 0.05 + float64(abs(density)%100)/110.0,
		}
		circ := workload.Random(cfg, seed)
		hw := workload.RandomArch(cfg.Qubits, seed)
		// The fuzzer also steers the AOD count directly; AODs is a plain
		// capacity field with no derived caches, so mutation is safe.
		hw.AODs = 1 + abs(aods)%4

		var (
			p   *compiler.Pipeline
			err error
		)
		switch abs(scheme) % 3 {
		case 0:
			hw.AODs = 1 // the baseline is single-AOD
			p, err = compiler.Enola(compiler.EnolaConfig{Seed: seed})
		case 1:
			p, err = compiler.Zoned(compiler.ZonedConfig{
				UseStorage: false,
				Grouping:   groupingName(grouping),
			})
		default:
			p, err = compiler.Zoned(compiler.ZonedConfig{
				UseStorage: true,
				Grouping:   groupingName(grouping),
			})
		}
		if err != nil {
			t.Fatalf("pipeline construction: %v", err)
		}
		res, err := p.Run(circ, hw)
		if err != nil {
			t.Fatalf("compile %s: %v", circ.Name, err)
		}
		if r := All(circ, res.Program, res.Initial); !r.OK() {
			t.Fatalf("compile %s (%d AODs) produced an illegal or inequivalent program:\n%s",
				circ.Name, hw.AODs, r)
		}
	})
}

func abs(v int64) int {
	if v < 0 {
		v = -v
	}
	if v < 0 {
		return 0 // MinInt64
	}
	return int(v)
}

// groupingName maps a fuzz input onto the grouping registry.
func groupingName(v int64) string {
	names := compiler.GroupingNames()
	return names[abs(v)%len(names)]
}
