// The semantic equivalence oracle: proves a compiled program applies
// exactly the unitary of its source circuit. The only liberty the
// compilers take is reordering gates *within* a commutable CZ block, so
// equivalence decomposes into (a) gate accounting — the compiled stream
// is a concatenation of per-block permutations with the 1Q totals
// preserved — and (b) a numeric state-vector check that the gate
// sequences agree on a random state, which catches any discrepancy the
// structural walk can express but mis-judges.
package verify

import (
	"math/rand"

	"powermove/internal/circuit"
	"powermove/internal/exact"
	"powermove/internal/isa"
	"powermove/internal/statevec"
)

// MaxOracleQubits bounds the register size the state-vector oracle
// simulates (2^18 amplitudes, a few milliseconds per check). Larger
// registers fall back to the structural check plus exact spot checks.
const MaxOracleQubits = 18

// OracleTolerance is the max-norm amplitude tolerance of the
// state-vector comparison; the gate set is phase-exact, so any genuine
// discrepancy lands far above it.
const OracleTolerance = 1e-9

// maxExactSpotChecks bounds how many small blocks the structural mode
// re-verifies against the branch-and-bound partitioner per circuit.
const maxExactSpotChecks = 4

// CheckEquivalence verifies that prog is semantically equivalent to
// circ. Registers up to MaxOracleQubits get the exact state-vector
// oracle on top of the structural walk; larger ones get the structural
// walk plus internal/exact spot checks of their small blocks.
func CheckEquivalence(circ *circuit.Circuit, prog *isa.Program) *Report {
	r := &Report{}
	if circ == nil || prog == nil {
		r.add(GateLoss, -1, nil, "nil circuit or program")
		return r
	}
	if circ.Qubits != prog.Qubits {
		r.add(GateLoss, -1, nil, "circuit has %d qubits, program has %d", circ.Qubits, prog.Qubits)
		return r
	}
	structuralCheck(r, circ, prog)
	if circ.Qubits <= MaxOracleQubits {
		r.EquivalenceMode = "statevec"
		statevecCheck(r, circ, prog)
	} else {
		r.EquivalenceMode = "structural"
		exactSpotCheck(r, circ, prog)
	}
	return r
}

// compiledCZOrder extracts the CZ gates prog executes, in pulse order.
func compiledCZOrder(prog *isa.Program) []circuit.CZ {
	var out []circuit.CZ
	for _, in := range prog.Instr {
		if p, ok := in.(isa.Rydberg); ok {
			out = append(out, p.Pairs...)
		}
	}
	return out
}

// structuralCheck walks the compiled CZ stream against the circuit's
// dependent blocks: each block's gates must appear as a contiguous
// multiset permutation, in block order, and the 1Q layer totals must
// match. It reports cross-block reorderings (BlockOrder) and any
// multiset discrepancy (GateLoss, OneQLoss).
func structuralCheck(r *Report, circ *circuit.Circuit, prog *isa.Program) {
	compiled := compiledCZOrder(prog)
	idx := 0
	for bi := range circ.Blocks {
		b := &circ.Blocks[bi]
		want := make(map[circuit.CZ]int, len(b.Gates))
		for _, g := range b.Gates {
			want[g]++
		}
		for count := len(b.Gates); count > 0; count-- {
			if idx >= len(compiled) {
				r.add(GateLoss, -1, nil, "compiled stream ended inside block %d (%d gate(s) missing)", bi, count)
				return
			}
			g := compiled[idx]
			if want[g] == 0 {
				r.add(BlockOrder, -1, []int{g.A, g.B}, "gate %v executed during block %d, which does not contain it", g, bi)
				return
			}
			want[g]--
			idx++
		}
	}
	if idx != len(compiled) {
		r.add(GateLoss, -1, nil, "compiled stream has %d extra gate(s) after the last block", len(compiled)-idx)
	}

	oneQ := 0
	for _, in := range prog.Instr {
		if l, ok := in.(isa.OneQLayer); ok {
			oneQ += l.Count
		}
	}
	if oneQ != circ.OneQCount() {
		r.add(OneQLoss, -1, nil, "compiled stream applies %d single-qubit gates, circuit has %d", oneQ, circ.OneQCount())
	}
}

// oracleSeed derives a deterministic RNG seed from the circuit identity
// (FNV over the name, mixed with the qubit count), so verification is a
// pure function of its inputs — the property the outcome cache and
// byte-stable documents rely on.
func oracleSeed(circ *circuit.Circuit) int64 {
	h := int64(1469598103934665603)
	for _, b := range []byte(circ.Name) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return h ^ int64(circ.Qubits)*2654435761
}

// statevecCheck runs the source and compiled CZ sequences on one seeded
// random state and demands they coincide amplitude for amplitude. CZ
// gates are diagonal and phase-exact, so equality is exact up to float
// roundoff; a random (entangled, dense) start state makes the check
// sensitive to any single gate discrepancy. 1Q layers carry no gate
// identity in the IR and are accounted structurally instead.
func statevecCheck(r *Report, circ *circuit.Circuit, prog *isa.Program) {
	rng := rand.New(rand.NewSource(oracleSeed(circ)))
	ref := statevec.NewRandom(circ.Qubits, rng)
	got := ref.Clone()
	for bi := range circ.Blocks {
		for _, g := range circ.Blocks[bi].Gates {
			ref.CZ(g.A, g.B)
		}
	}
	for _, g := range compiledCZOrder(prog) {
		if g.A < 0 || g.B < 0 || g.A >= circ.Qubits || g.B >= circ.Qubits || g.A == g.B {
			// Already reported structurally; the oracle cannot apply it.
			return
		}
		got.CZ(g.A, g.B)
	}
	if !got.Equal(ref, OracleTolerance) {
		r.add(StateMismatch, -1, nil,
			"state-vector oracle: compiled program diverges from the source circuit (fidelity %.12f)",
			ref.Fidelity(got))
	}
}

// exactSpotCheck re-derives, for up to maxExactSpotChecks small blocks,
// the provably minimal stage count via internal/exact and asserts the
// compiled pulse schedule respects it: a block lowered in fewer pulses
// than the optimum has merged overlapping gates into one pulse (its
// pulses cannot all be disjoint), and more pulses than gates means a
// pulse fired without work.
func exactSpotCheck(r *Report, circ *circuit.Circuit, prog *isa.Program) {
	// Reconstruct per-block pulse counts by walking pulses against the
	// block gate totals (the structural check has already pinned the
	// stream to block order; bail out if it could not).
	if !r.OK() {
		return
	}
	pulses := make([]int, len(circ.Blocks))
	bi := 0
	remaining := 0
	if len(circ.Blocks) > 0 {
		remaining = len(circ.Blocks[0].Gates)
	}
	for _, in := range prog.Instr {
		p, ok := in.(isa.Rydberg)
		if !ok {
			continue
		}
		for bi < len(circ.Blocks) && remaining == 0 {
			bi++
			if bi < len(circ.Blocks) {
				remaining = len(circ.Blocks[bi].Gates)
			}
		}
		if bi >= len(circ.Blocks) {
			return // extra pulses already reported as GateLoss
		}
		pulses[bi]++
		remaining -= len(p.Pairs)
		if remaining < 0 {
			// The pulse straddles a block boundary: per-block pulse
			// counts cannot be attributed cleanly, so skip the spot
			// check (the physical checker judges the pulse on its own
			// terms) rather than risk false StageCount findings.
			return
		}
	}
	checked := 0
	for bi, b := range circ.Blocks {
		if checked >= maxExactSpotChecks {
			return
		}
		if len(b.Gates) == 0 || len(b.Gates) > exact.MaxGates {
			continue
		}
		checked++
		min, err := exact.MinStages(b.Gates)
		if err != nil {
			continue
		}
		if pulses[bi] < min || pulses[bi] > len(b.Gates) {
			r.add(StageCount, -1, nil,
				"block %d lowered in %d pulse(s); optimal partition needs %d and %d gates bound it above",
				bi, pulses[bi], min, len(b.Gates))
		}
	}
}
